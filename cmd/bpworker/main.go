// Command bpworker executes streaming sessions on behalf of a bpserve
// frontend: it compiles pipelines into a local registry, listens for
// cluster connections, and runs each placed session on the in-process
// runtime, streaming results back over the wire protocol. Pipelines a
// frontend asks for that are not pre-compiled are compiled on demand
// (suite benchmarks by ID, JSON applications from the shipped
// descriptor). See docs/cluster.md.
//
// Usage:
//
//	bpworker -addr :9090 -apps all
//	bpworker -addr :9091 -apps none -name gpu-box -executor workers
//
// Pair with: bpserve -cluster host:9090,host:9091
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"blockpar/internal/apps"
	"blockpar/internal/cluster"
	"blockpar/internal/machine"
	"blockpar/internal/runtime"
	"blockpar/internal/serve"
)

func main() {
	addr := flag.String("addr", ":9090", "listen address for frontend connections")
	appIDs := flag.String("apps", "all", "comma-separated benchmark ids to compile at startup ("+strings.Join(apps.IDs(), ", ")+"), or \"all\", or \"none\"")
	var descFiles stringList
	flag.Var(&descFiles, "desc", "JSON application description to compile at startup (repeatable)")
	name := flag.String("name", "", "worker name reported to frontends (default worker-<pid>)")
	executor := flag.String("executor", "goroutines", "session execution engine: goroutines (one per kernel) or workers (fixed pool)")
	workers := flag.Int("workers", 0, "worker-pool size for -executor workers (0 = GOMAXPROCS)")
	var drain time.Duration
	flag.DurationVar(&drain, "drain", 30*time.Second, "graceful-shutdown drain budget: in-flight sessions finish before exit")
	flag.DurationVar(&drain, "drain-timeout", 30*time.Second, "alias for -drain")
	flag.Parse()

	// A drain that abandons work exits nonzero so orchestration (and CI)
	// can tell a clean drain from frames thrown away.
	if err := run(*addr, *appIDs, descFiles, *name, runtime.ExecutorKind(*executor), *workers, drain); err != nil {
		fmt.Fprintln(os.Stderr, "bpworker:", err)
		os.Exit(1)
	}
}

func run(addr, appIDs string, descFiles []string, name string, executor runtime.ExecutorKind, workers int, drain time.Duration) error {
	reg := serve.NewRegistry(machine.Embedded())
	switch appIDs {
	case "none":
	case "all", "":
		if err := reg.AddSuite(); err != nil {
			return err
		}
	default:
		if err := reg.AddSuite(strings.Split(appIDs, ",")...); err != nil {
			return err
		}
	}
	for _, f := range descFiles {
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		if _, err := reg.AddJSON(data); err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
	}
	for _, p := range reg.List() {
		fmt.Printf("compiled %-14s %-16s %3d nodes in %v\n", p.ID, p.Name, p.Nodes, p.CompileTime.Round(time.Millisecond))
	}

	w := cluster.NewWorker(reg, cluster.WorkerOptions{
		Name:     name,
		Executor: executor,
		Workers:  workers,
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() { errc <- w.Serve(ln) }()
	fmt.Printf("bpworker %s listening on %s (%d pipelines)\n", w.Name(), addr, len(reg.List()))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("bpworker: %v: draining sessions...\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	return w.Shutdown(ctx)
}

// stringList is a repeatable string flag.
type stringList []string

func (l *stringList) String() string { return strings.Join(*l, ",") }
func (l *stringList) Set(s string) error {
	*l = append(*l, s)
	return nil
}
