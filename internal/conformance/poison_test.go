package conformance

import "blockpar/internal/frame"

// The differential suite runs with use-after-release poisoning on, so
// any ownership-protocol violation in the zero-copy data plane shows
// up as a NaN divergence from the sequential oracle.
func init() { frame.SetPoison(true) }
