package graph

import (
	"strings"
	"testing"

	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/token"
)

func TestStringers(t *testing.T) {
	if In.String() != "in" || Out.String() != "out" {
		t.Error("Dir strings wrong")
	}
	for kind, want := range map[NodeKind]string{
		KindKernel: "kernel", KindBuffer: "buffer", KindSplit: "split",
		KindJoin: "join", KindReplicate: "replicate", KindInset: "inset",
		KindPad: "pad", KindFeedback: "feedback", NodeKind(42): "NodeKind(42)",
	} {
		if kind.String() != want {
			t.Errorf("kind %d = %q, want %q", int(kind), kind.String(), want)
		}
	}
	n := NewNode("X", KindBuffer)
	if n.String() != "X(buffer)" {
		t.Errorf("node String = %q", n.String())
	}
	p := n.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	if p.String() != "X.in" {
		t.Errorf("port String = %q", p.String())
	}
	g := New("g")
	a := g.AddInput("A", geom.Sz(2, 2), geom.Sz(1, 1), geom.FInt(1))
	b := g.AddOutput("B", geom.Sz(1, 1))
	e := g.Connect(a, "out", b, "in")
	if e.String() != "A.out -> B.in" {
		t.Errorf("edge String = %q", e.String())
	}
}

func TestItemHelpers(t *testing.T) {
	d := DataItem(frame.NewWindow(3, 2))
	if d.IsToken || d.Words() != 6 {
		t.Errorf("data item wrong: %+v", d)
	}
	if d.String() != "Window(3x2)" {
		t.Errorf("data String = %q", d.String())
	}
	tk := TokenItem(token.EOF(4))
	if !tk.IsToken || tk.Words() != 1 {
		t.Errorf("token item wrong: %+v", tk)
	}
	if tk.String() != "EOF#4" {
		t.Errorf("token String = %q", tk.String())
	}
}

func TestMethodDynamicAndAlloc(t *testing.T) {
	m := &Method{Cycles: 10}
	if m.Dynamic() || m.AllocCycles() != 10 {
		t.Error("static method misclassified")
	}
	m.Bound = 40
	if !m.Dynamic() || m.AllocCycles() != 40 {
		t.Error("dynamic method misclassified")
	}
}

func TestRegisterMethodForward(t *testing.T) {
	n := NewNode("K", KindKernel)
	n.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	n.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	n.RegisterMethod("m", 1, 0)
	n.RegisterMethodInputToken("m", "in", token.EndOfFrame, "")
	n.RegisterMethodForward("m", "out")
	if got := n.Method("m").ForwardOnly; len(got) != 1 || got[0] != "out" {
		t.Fatalf("ForwardOnly = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown forward output accepted")
		}
	}()
	n.RegisterMethodForward("m", "nope")
}

func TestRunnerBehaviorDetection(t *testing.T) {
	n := NewNode("K", KindKernel)
	if _, ok := RunnerBehavior(n); ok {
		t.Error("nil behavior detected as runner")
	}
	n.Behavior = fakeRunner{}
	if _, ok := RunnerBehavior(n); !ok {
		t.Error("runner behavior not detected")
	}
}

type fakeRunner struct{}

func (fakeRunner) Clone() Behavior          { return fakeRunner{} }
func (fakeRunner) Run(ctx RunContext) error { return nil }

func TestValidateRejectsBadPortsAndMethods(t *testing.T) {
	g := New("bad-ports")
	in := g.AddInput("Input", geom.Sz(4, 4), geom.Sz(1, 1), geom.FInt(1))
	k := NewNode("K", KindKernel)
	k.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	bad := k.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	bad.Step = geom.St(0, 1) // corrupt the step
	m := k.RegisterMethod("m", -5, 0)
	k.RegisterMethodInput("m", "in")
	k.RegisterMethodOutput("m", "out")
	_ = m
	g.Add(k)
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", k, "in")
	g.Connect(k, "out", out, "in")

	err := g.Validate()
	if err == nil {
		t.Fatal("bad step/resources accepted")
	}
	for _, want := range []string{"non-positive step", "negative resources"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q: %v", want, err)
		}
	}
}

func TestValidateRejectsMethodlessKernel(t *testing.T) {
	g := New("no-methods")
	in := g.AddInput("Input", geom.Sz(4, 4), geom.Sz(1, 1), geom.FInt(1))
	k := NewNode("K", KindKernel)
	k.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	k.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	g.Add(k)
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", k, "in")
	g.Connect(k, "out", out, "in")
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "no methods") {
		t.Fatalf("methodless kernel accepted: %v", err)
	}
}

func TestValidateRejectsCustomTriggerWithoutName(t *testing.T) {
	g := New("anon-custom")
	in := g.AddInput("Input", geom.Sz(4, 1), geom.Sz(1, 1), geom.FInt(1))
	k := NewNode("K", KindKernel)
	k.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	k.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	k.RegisterMethod("m", 1, 0)
	k.RegisterMethodInputToken("m", "in", token.Custom, "")
	k.RegisterMethodOutput("m", "out")
	g.Add(k)
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", k, "in")
	g.Connect(k, "out", out, "in")
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "missing token name") {
		t.Fatalf("anonymous custom trigger accepted: %v", err)
	}
}

func TestDupNodePanicsAndForeignDep(t *testing.T) {
	g := New("dups")
	g.AddInput("A", geom.Sz(2, 2), geom.Sz(1, 1), geom.FInt(1))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate node name accepted")
			}
		}()
		g.Add(NewNode("A", KindKernel))
	}()
	// Dep edges referencing foreign nodes are caught by Validate.
	foreign := NewNode("F", KindKernel)
	g.AddDep(g.Node("A"), foreign)
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "foreign node") {
		t.Fatalf("foreign dep accepted: %v", err)
	}
}

func TestRenamePanics(t *testing.T) {
	g := New("ren")
	a := g.AddInput("A", geom.Sz(2, 2), geom.Sz(1, 1), geom.FInt(1))
	g.AddOutput("B", geom.Sz(1, 1))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("rename to taken name accepted")
			}
		}()
		g.Rename(a, "B")
	}()
	foreign := NewNode("X", KindKernel)
	defer func() {
		if recover() == nil {
			t.Error("rename of foreign node accepted")
		}
	}()
	g.Rename(foreign, "Y")
}
