// Package token defines the control tokens of the block-parallel
// programming model (paper §II-C).
//
// Control tokens travel in-band with data on the stream channels, in
// order. Two kinds are generated automatically by every application
// input: end-of-line (after the last sample of each row) and
// end-of-frame (after the last sample of each frame). Kernels may also
// define custom tokens, provided they declare the maximum rate at which
// they can be generated so the compiler can budget resources for the
// methods that handle them.
package token

import "fmt"

// Kind identifies a class of control token.
type Kind int

const (
	// None means "not a control token" (plain data); it is the zero
	// value so that unset trigger fields mean data-triggered methods.
	None Kind = iota
	// EndOfLine is emitted by application inputs after each row.
	EndOfLine
	// EndOfFrame is emitted by application inputs after each frame.
	EndOfFrame
	// Custom is a kernel-defined token, distinguished by name.
	Custom
)

// String returns the conventional short name for the kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "data"
	case EndOfLine:
		return "EOL"
	case EndOfFrame:
		return "EOF"
	case Custom:
		return "custom"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Token is a control token instance.
type Token struct {
	Kind Kind
	// Name distinguishes custom tokens; empty for EOL/EOF.
	Name string
	// Seq is the index of the line/frame the token terminates,
	// counted from zero within the stream. It is informational and
	// used by tests and the runtime for cross-checking ordering.
	Seq int64
}

// EOL returns an end-of-line token for row seq.
func EOL(seq int64) Token { return Token{Kind: EndOfLine, Seq: seq} }

// EOF returns an end-of-frame token for frame seq.
func EOF(seq int64) Token { return Token{Kind: EndOfFrame, Seq: seq} }

// NewCustom returns a custom token with the given name.
func NewCustom(name string, seq int64) Token {
	return Token{Kind: Custom, Name: name, Seq: seq}
}

// Matches reports whether the token triggers a method registered for
// kind k and (for custom tokens) name.
func (t Token) Matches(k Kind, name string) bool {
	if t.Kind != k {
		return false
	}
	if t.Kind == Custom {
		return t.Name == name
	}
	return true
}

func (t Token) String() string {
	if t.Kind == Custom {
		return fmt.Sprintf("%s(%s)#%d", t.Kind, t.Name, t.Seq)
	}
	return fmt.Sprintf("%s#%d", t.Kind, t.Seq)
}
