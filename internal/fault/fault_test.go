package fault

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"blockpar/internal/wire"
)

// sinkConn is a net.Conn that captures writes, for asserting exactly
// what a fault let through.
type sinkConn struct {
	buf    bytes.Buffer
	closed bool
}

func (s *sinkConn) Write(b []byte) (int, error)        { return s.buf.Write(b) }
func (s *sinkConn) Read(b []byte) (int, error)         { return 0, net.ErrClosed }
func (s *sinkConn) Close() error                       { s.closed = true; return nil }
func (s *sinkConn) LocalAddr() net.Addr                { return nil }
func (s *sinkConn) RemoteAddr() net.Addr               { return nil }
func (s *sinkConn) SetDeadline(t time.Time) error      { return nil }
func (s *sinkConn) SetReadDeadline(t time.Time) error  { return nil }
func (s *sinkConn) SetWriteDeadline(t time.Time) error { return nil }

func TestFaultKindsDeliver(t *testing.T) {
	payload := []byte("block-parallel wire frame payload")

	t.Run("corrupt", func(t *testing.T) {
		sink := &sinkConn{}
		inj := NewInjector(7, Profile{Corrupt: 1})
		c := inj.Wrap(sink)
		if _, err := c.Write(payload); err != nil {
			t.Fatal(err)
		}
		got := sink.buf.Bytes()
		if len(got) != len(payload) {
			t.Fatalf("corrupt wrote %d bytes, want %d", len(got), len(payload))
		}
		if bytes.Equal(got, payload) {
			t.Fatal("corrupt fault delivered the frame unmodified")
		}
		diff := 0
		for i := range got {
			diff += bytesDiffBits(got[i], payload[i])
		}
		if diff != 1 {
			t.Errorf("corrupt flipped %d bits, want exactly 1", diff)
		}
		if inj.Stats().Corrupted != 1 {
			t.Errorf("stats %+v, want Corrupted=1", inj.Stats())
		}
	})

	t.Run("drop", func(t *testing.T) {
		sink := &sinkConn{}
		inj := NewInjector(7, Profile{Drop: 1})
		c := inj.Wrap(sink)
		n, err := c.Write(payload)
		if err != nil || n != len(payload) {
			t.Fatalf("drop must report success, got n=%d err=%v", n, err)
		}
		if sink.buf.Len() != 0 {
			t.Errorf("drop let %d bytes through", sink.buf.Len())
		}
		if inj.Stats().Dropped != 1 {
			t.Errorf("stats %+v, want Dropped=1", inj.Stats())
		}
	})

	t.Run("partial", func(t *testing.T) {
		sink := &sinkConn{}
		inj := NewInjector(7, Profile{Partial: 1})
		c := inj.Wrap(sink)
		if _, err := c.Write(payload); err == nil {
			t.Fatal("partial write must surface an error")
		}
		if sink.buf.Len() == 0 || sink.buf.Len() >= len(payload) {
			t.Errorf("partial wrote %d of %d bytes, want a strict prefix", sink.buf.Len(), len(payload))
		}
		if !sink.closed {
			t.Error("partial must sever the connection")
		}
		if inj.Stats().Partials != 1 {
			t.Errorf("stats %+v, want Partials=1", inj.Stats())
		}
	})

	t.Run("close", func(t *testing.T) {
		sink := &sinkConn{}
		inj := NewInjector(7, Profile{Close: 1})
		c := inj.Wrap(sink)
		if _, err := c.Write(payload); err == nil {
			t.Fatal("abrupt close must surface an error")
		}
		if sink.buf.Len() != 0 {
			t.Errorf("close let %d bytes through", sink.buf.Len())
		}
		if !sink.closed {
			t.Error("close must sever the connection")
		}
		if inj.Stats().Closed != 1 {
			t.Errorf("stats %+v, want Closed=1", inj.Stats())
		}
	})

	t.Run("delay-and-stall", func(t *testing.T) {
		sink := &sinkConn{}
		inj := NewInjector(7, Profile{Delay: 0.5, DelayMax: time.Millisecond, Stall: 0.5, StallFor: time.Millisecond})
		c := inj.Wrap(sink)
		for i := 0; i < 64; i++ {
			if _, err := c.Write(payload); err != nil {
				t.Fatal(err)
			}
		}
		st := inj.Stats()
		if st.Delayed == 0 || st.Stalled == 0 {
			t.Errorf("stats %+v, want both delays and stalls over 64 writes", st)
		}
		if sink.buf.Len() != 64*len(payload) {
			t.Errorf("delays must not lose bytes: %d, want %d", sink.buf.Len(), 64*len(payload))
		}
	})
}

func bytesDiffBits(a, b byte) int {
	d, n := a^b, 0
	for ; d != 0; d &= d - 1 {
		n++
	}
	return n
}

// TestFaultDeterminism: the same seed must reproduce the same fault
// sequence over the same operations — the property that makes a chaos
// failure replayable — and a different seed must diverge.
func TestFaultDeterminism(t *testing.T) {
	run := func(seed uint64) Stats {
		inj := NewInjector(seed, Profile{
			Corrupt: 0.1, Drop: 0.1, Partial: 0.05, Close: 0.05,
			Delay: 0.1, DelayMax: time.Microsecond,
		})
		payload := bytes.Repeat([]byte{0xAB}, 64)
		for conn := 0; conn < 4; conn++ {
			c := inj.Wrap(&sinkConn{})
			for i := 0; i < 100; i++ {
				c.Write(payload)
			}
		}
		return inj.Stats()
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if c := run(43); c == a {
		t.Fatalf("seeds 42 and 43 produced identical fault sequences: %+v", c)
	}
	if a.Corrupted == 0 || a.Dropped == 0 || a.Closed == 0 {
		t.Errorf("mixed profile over 400 writes delivered no faults of some kind: %+v", a)
	}
}

// TestFaultCorruptionIsTyped pairs the injector with the wire codec:
// a corrupted frame must surface as wire.ErrCorrupt on the reader —
// the CRC trailer turning silent bit rot into a typed connection
// error — never as a decoded message with wrong bytes.
func TestFaultCorruptionIsTyped(t *testing.T) {
	a, b := net.Pipe()
	inj := NewInjector(99, Profile{Corrupt: 1})
	wc := wire.NewConn(inj.Wrap(a))
	rc := wire.NewConn(b)
	go wc.Write(&wire.Feed{SID: 1, Seq: 0})
	_, err := rc.Read()
	if err == nil {
		t.Fatal("reader decoded a corrupted frame")
	}
	if !errors.Is(err, wire.ErrCorrupt) {
		t.Fatalf("corrupted frame read error %v, want wire.ErrCorrupt", err)
	}
	wc.Close()
	rc.Close()
}
