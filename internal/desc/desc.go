// Package desc is the textual surface of the block-parallel language:
// a JSON application description that names inputs (with frame sizes
// and real-time rates), outputs, kernels from the library (by type and
// parameters), stream edges, and data-dependency edges. It parses to a
// graph.Graph ready for compilation, and graphs built from library
// constructors encode back losslessly (kernel constructors tag their
// nodes with ktype/kparams attributes).
//
// Example:
//
//	{
//	  "name": "edges",
//	  "inputs":  [{"name": "Input", "frame": [64, 48], "chunk": [1, 1], "rate": "300"}],
//	  "outputs": [{"name": "Output", "chunk": [1, 1]}],
//	  "kernels": [{"name": "5x5 Conv", "type": "convolution", "params": "5"}],
//	  "edges":   [{"from": "Input.out", "to": "5x5 Conv.in"}],
//	  "deps":    []
//	}
package desc

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"blockpar/internal/conn"
	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
)

// File is the JSON document shape.
type File struct {
	Name    string       `json:"name"`
	Inputs  []InputDesc  `json:"inputs"`
	Outputs []OutputDesc `json:"outputs"`
	Kernels []KernelDesc `json:"kernels"`
	Edges   []EdgeDesc   `json:"edges"`
	Conns   []ConnDesc   `json:"conns,omitempty"`
	Deps    []DepDesc    `json:"deps,omitempty"`
}

// InputDesc describes an application input.
type InputDesc struct {
	Name  string `json:"name"`
	Frame [2]int `json:"frame"`
	Chunk [2]int `json:"chunk"`
	// Rate is an exact rational frame rate: "30" or "1500000/768".
	Rate string `json:"rate"`
	// Elem is the element kind of the samples this input produces:
	// "u8", "f32", or "f64" (the default when omitted).
	Elem string `json:"elem,omitempty"`
	// TokenRates optionally declares custom-token bounds (per frame).
	TokenRates map[string]string `json:"tokenRates,omitempty"`
}

// OutputDesc describes an application output.
type OutputDesc struct {
	Name  string `json:"name"`
	Chunk [2]int `json:"chunk"`
}

// KernelDesc instantiates a library kernel by type.
type KernelDesc struct {
	Name string `json:"name"`
	Type string `json:"type"`
	// Params is the kernel's compact parameter string (e.g. "5" for a
	// 5×5 convolution, "2.5,0,255" for a threshold).
	Params string `json:"params,omitempty"`
}

// EdgeDesc connects "node.port" to "node.port".
type EdgeDesc struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// DepDesc is a data-dependency edge between node names.
type DepDesc struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// ConnDesc declares a generalized connection group over edges that must
// already appear in the edges section: family "broadcast" marks a
// zero-copy fan-out (consumers may land on different partitions),
// family "share" asks the compiler to lower the consumers' window
// buffers onto one shared ring (consumers are then co-located).
// Scatter-gather is expressed as kernels ("scatter"/"gather" types),
// not as a connection record — the schedule lives on the kernel.
type ConnDesc struct {
	Name   string   `json:"name"`
	Family string   `json:"family"`
	From   string   `json:"from"`
	To     []string `json:"to"`
}

// ParseRate parses "30" or "1500000/768" into an exact rational.
func ParseRate(s string) (geom.Frac, error) {
	num, den := s, "1"
	if i := strings.IndexByte(s, '/'); i >= 0 {
		num, den = s[:i], s[i+1:]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(num), 10, 64)
	if err != nil {
		return geom.Frac{}, fmt.Errorf("desc: bad rate %q: %w", s, err)
	}
	d, err := strconv.ParseInt(strings.TrimSpace(den), 10, 64)
	if err != nil || d == 0 {
		return geom.Frac{}, fmt.Errorf("desc: bad rate denominator in %q", s)
	}
	return geom.F(n, d), nil
}

// FormatRate renders a rational as ParseRate's input.
func FormatRate(f geom.Frac) string {
	if f.IsInt() {
		return strconv.FormatInt(f.Int(), 10)
	}
	return fmt.Sprintf("%d/%d", f.Num, f.Den)
}

// Parse builds an application graph from a JSON description.
func Parse(data []byte) (*graph.Graph, error) {
	var f File
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("desc: %w", err)
	}
	return Build(&f)
}

// Build constructs the graph from a decoded File. Descriptions come
// from untrusted network clients (the serve registry), so every
// malformed shape must surface as an error: graph-layer panics are
// pre-checked here and any remaining one is recovered into an error.
func Build(f *File) (g *graph.Graph, err error) {
	defer func() {
		if r := recover(); r != nil {
			g, err = nil, fmt.Errorf("desc: invalid description: %v", r)
		}
	}()
	if f.Name == "" {
		return nil, fmt.Errorf("desc: application needs a name")
	}
	names := make(map[string]bool)
	claim := func(kind, name string) error {
		if name == "" {
			return fmt.Errorf("desc: %s needs a name", kind)
		}
		if names[name] {
			return fmt.Errorf("desc: duplicate node name %q", name)
		}
		names[name] = true
		return nil
	}
	dims := func(what, name string, d [2]int) error {
		if d[0] < 1 || d[1] < 1 {
			return fmt.Errorf("desc: %s %q size %dx%d must be positive", what, name, d[0], d[1])
		}
		return nil
	}
	g = graph.New(f.Name)
	for _, in := range f.Inputs {
		if err := claim("input", in.Name); err != nil {
			return nil, err
		}
		if err := dims("input frame", in.Name, in.Frame); err != nil {
			return nil, err
		}
		if err := dims("input chunk", in.Name, in.Chunk); err != nil {
			return nil, err
		}
		rate, err := ParseRate(in.Rate)
		if err != nil {
			return nil, err
		}
		if rate.Num <= 0 {
			return nil, fmt.Errorf("desc: input %q rate %q must be positive", in.Name, in.Rate)
		}
		n := g.AddInput(in.Name, geom.Sz(in.Frame[0], in.Frame[1]),
			geom.Sz(in.Chunk[0], in.Chunk[1]), rate)
		elem, err := frame.ParseKind(in.Elem)
		if err != nil {
			return nil, fmt.Errorf("desc: input %q: %w", in.Name, err)
		}
		n.Output("out").Elem = elem
		if len(in.TokenRates) > 0 {
			n.TokenRates = make(map[string]geom.Frac, len(in.TokenRates))
			for tok, rs := range in.TokenRates {
				r, err := ParseRate(rs)
				if err != nil {
					return nil, err
				}
				n.TokenRates[tok] = r
			}
		}
	}
	for _, out := range f.Outputs {
		if err := claim("output", out.Name); err != nil {
			return nil, err
		}
		if err := dims("output chunk", out.Name, out.Chunk); err != nil {
			return nil, err
		}
		g.AddOutput(out.Name, geom.Sz(out.Chunk[0], out.Chunk[1]))
	}
	for _, k := range f.Kernels {
		if err := claim("kernel", k.Name); err != nil {
			return nil, err
		}
		n, err := Instantiate(k.Name, k.Type, k.Params)
		if err != nil {
			return nil, err
		}
		g.Add(n)
	}
	for _, e := range f.Edges {
		fn, fp, err := splitRef(e.From)
		if err != nil {
			return nil, err
		}
		tn, tp, err := splitRef(e.To)
		if err != nil {
			return nil, err
		}
		from, to := g.Node(fn), g.Node(tn)
		if from == nil || to == nil {
			return nil, fmt.Errorf("desc: edge %s -> %s references unknown node", e.From, e.To)
		}
		if from.Output(fp) == nil {
			return nil, fmt.Errorf("desc: edge %s -> %s: %q has no output %q", e.From, e.To, fn, fp)
		}
		tport := to.Input(tp)
		if tport == nil {
			return nil, fmt.Errorf("desc: edge %s -> %s: %q has no input %q", e.From, e.To, tn, tp)
		}
		if g.EdgeTo(tport) != nil {
			return nil, fmt.Errorf("desc: input %s already connected", e.To)
		}
		g.Connect(from, fp, to, tp)
	}
	connNames := make(map[string]bool)
	for _, c := range f.Conns {
		if c.Name == "" {
			return nil, fmt.Errorf("desc: connection needs a name")
		}
		if connNames[c.Name] {
			return nil, fmt.Errorf("desc: duplicate connection name %q", c.Name)
		}
		connNames[c.Name] = true
		fam, err := conn.ParseFamily(c.Family)
		if err != nil {
			return nil, fmt.Errorf("desc: connection %q: %w", c.Name, err)
		}
		fn, fp, err := splitRef(c.From)
		if err != nil {
			return nil, fmt.Errorf("desc: connection %q: %w", c.Name, err)
		}
		from := g.Node(fn)
		if from == nil || from.Output(fp) == nil {
			return nil, fmt.Errorf("desc: connection %q: no output port %q", c.Name, c.From)
		}
		tos := make([]*graph.Port, len(c.To))
		for i, ref := range c.To {
			tn, tp, err := splitRef(ref)
			if err != nil {
				return nil, fmt.Errorf("desc: connection %q: %w", c.Name, err)
			}
			to := g.Node(tn)
			if to == nil || to.Input(tp) == nil {
				return nil, fmt.Errorf("desc: connection %q: no input port %q", c.Name, ref)
			}
			tos[i] = to.Input(tp)
		}
		// AddConn enforces the remaining structure (family, edge
		// membership, distinct consumers) and panics on violations; the
		// recover above converts those to errors for wire-borne files.
		g.AddConn(c.Name, fam, from.Output(fp), tos)
	}
	for _, d := range f.Deps {
		from, to := g.Node(d.From), g.Node(d.To)
		if from == nil || to == nil {
			return nil, fmt.Errorf("desc: dep %s -> %s references unknown node", d.From, d.To)
		}
		g.AddDep(from, to)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("desc: %w", err)
	}
	return g, nil
}

func splitRef(s string) (node, port string, err error) {
	i := strings.LastIndexByte(s, '.')
	if i <= 0 || i == len(s)-1 {
		return "", "", fmt.Errorf("desc: port reference %q must be \"node.port\"", s)
	}
	return s[:i], s[i+1:], nil
}

// Builder constructs a kernel node from its name and compact params.
type Builder func(name, params string) (*graph.Node, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Builder{}
)

// RegisterType adds (or replaces) a custom kernel type in the
// description registry, so applications using custom kernels can still
// be loaded from JSON (§IV-C lets the programmer supply their own
// kernels and parallelizations). Builders should set the node's
// ktype/kparams attributes if the graph must encode back.
func RegisterType(ktype string, b Builder) {
	regMu.Lock()
	registry[ktype] = b
	regMu.Unlock()
}

// Instantiate builds a library kernel by type name and compact params.
// Custom registered types take precedence over the built-in library.
// Constructor panics (the library's contract for programmer errors) are
// converted to errors here, since descriptions arrive from the wire.
func Instantiate(name, ktype, params string) (n *graph.Node, err error) {
	defer func() {
		if r := recover(); r != nil {
			n, err = nil, fmt.Errorf("desc: kernel %q type %q params %q: %v", name, ktype, params, r)
		}
	}()
	regMu.RLock()
	custom := registry[ktype]
	regMu.RUnlock()
	if custom != nil {
		return custom(name, params)
	}
	return instantiateBuiltin(name, ktype, params)
}

// Parameter bounds for built-in kernels: the constructors only reject
// nonsense (even window sizes, zero bins); the wire format also caps
// magnitudes so a hostile description cannot request absurd geometry.
const (
	maxWindowParam = 99
	maxBinsParam   = 4096
	maxFactorParam = 64
)

func boundInt(name, what string, v, lo, hi int) error {
	if v < lo || v > hi {
		return fmt.Errorf("desc: kernel %q %s %d out of range [%d, %d]", name, what, v, lo, hi)
	}
	return nil
}

func instantiateBuiltin(name, ktype, params string) (*graph.Node, error) {
	ints := func(n int) ([]int, error) {
		parts := splitParams(params, n)
		if parts == nil {
			return nil, fmt.Errorf("desc: kernel %q type %q wants %d params, got %q", name, ktype, n, params)
		}
		out := make([]int, n)
		for i, p := range parts {
			v, err := strconv.Atoi(p)
			if err != nil {
				return nil, fmt.Errorf("desc: kernel %q param %q: %w", name, p, err)
			}
			out[i] = v
		}
		return out, nil
	}
	floats := func(n int) ([]float64, error) {
		parts := splitParams(params, n)
		if parts == nil {
			return nil, fmt.Errorf("desc: kernel %q type %q wants %d params, got %q", name, ktype, n, params)
		}
		out := make([]float64, n)
		for i, p := range parts {
			v, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return nil, fmt.Errorf("desc: kernel %q param %q: %w", name, p, err)
			}
			out[i] = v
		}
		return out, nil
	}

	switch ktype {
	case "convolution":
		v, err := ints(1)
		if err != nil {
			return nil, err
		}
		if err := boundInt(name, "size", v[0], 1, maxWindowParam); err != nil {
			return nil, err
		}
		return kernel.Convolution(name, v[0]), nil
	case "median":
		v, err := ints(1)
		if err != nil {
			return nil, err
		}
		if err := boundInt(name, "size", v[0], 1, maxWindowParam); err != nil {
			return nil, err
		}
		return kernel.Median(name, v[0]), nil
	case "subtract":
		return kernel.Subtract(name), nil
	case "histogram":
		v, err := ints(1)
		if err != nil {
			return nil, err
		}
		if err := boundInt(name, "bins", v[0], 1, maxBinsParam); err != nil {
			return nil, err
		}
		return kernel.Histogram(name, v[0]), nil
	case "merge":
		v, err := ints(1)
		if err != nil {
			return nil, err
		}
		if err := boundInt(name, "bins", v[0], 1, maxBinsParam); err != nil {
			return nil, err
		}
		return kernel.Merge(name, v[0]), nil
	case "bayer":
		return kernel.BayerDemosaic(name), nil
	case "gain":
		v, err := floats(1)
		if err != nil {
			return nil, err
		}
		return kernel.Gain(name, v[0]), nil
	case "downsample":
		v, err := ints(1)
		if err != nil {
			return nil, err
		}
		if err := boundInt(name, "factor", v[0], 1, maxFactorParam); err != nil {
			return nil, err
		}
		return kernel.Downsample(name, v[0]), nil
	case "fir":
		v, err := ints(1)
		if err != nil {
			return nil, err
		}
		if err := boundInt(name, "taps", v[0], 1, maxWindowParam); err != nil {
			return nil, err
		}
		return kernel.FIR(name, v[0]), nil
	case "upsample":
		v, err := ints(1)
		if err != nil {
			return nil, err
		}
		if err := boundInt(name, "factor", v[0], 1, maxFactorParam); err != nil {
			return nil, err
		}
		return kernel.Upsample(name, v[0]), nil
	case "magnitude":
		return kernel.Magnitude(name), nil
	case "threshold":
		v, err := floats(3)
		if err != nil {
			return nil, err
		}
		return kernel.Threshold(name, v[0], v[1], v[2]), nil
	case "motion":
		v, err := ints(2)
		if err != nil {
			return nil, err
		}
		if err := boundInt(name, "block size", v[0], 1, maxFactorParam); err != nil {
			return nil, err
		}
		if err := boundInt(name, "search range", v[1], 1, maxFactorParam); err != nil {
			return nil, err
		}
		return kernel.MotionSearch(name, v[0], v[1]), nil
	case "accumulator":
		return kernel.Accumulator(name), nil
	case "convert":
		k, err := frame.ParseKind(params)
		if err != nil {
			return nil, fmt.Errorf("desc: kernel %q: %w", name, err)
		}
		return kernel.Convert(name, k), nil
	case "scatter", "gather":
		v, err := ints(4)
		if err != nil {
			return nil, err
		}
		if err := boundInt(name, "ways", v[0], 2, conn.MaxWays); err != nil {
			return nil, err
		}
		if err := boundInt(name, "stride", v[1], 1, conn.MaxStride); err != nil {
			return nil, err
		}
		if err := boundInt(name, "item width", v[2], 1, maxBinsParam); err != nil {
			return nil, err
		}
		if err := boundInt(name, "item height", v[3], 1, maxBinsParam); err != nil {
			return nil, err
		}
		sched := conn.Schedule{Ways: v[0], Stride: v[1]}
		item := geom.Sz(v[2], v[3])
		if ktype == "scatter" {
			return kernel.Scatter(name, sched, item), nil
		}
		return kernel.Gather(name, sched, item), nil
	case "morphology":
		v, err := ints(2)
		if err != nil {
			return nil, err
		}
		if err := boundInt(name, "size", v[0], 1, maxWindowParam); err != nil {
			return nil, err
		}
		if err := boundInt(name, "op", v[1], int(kernel.Erode), int(kernel.Dilate)); err != nil {
			return nil, err
		}
		return kernel.Morphology(name, v[0], kernel.MorphOp(v[1])), nil
	default:
		return nil, fmt.Errorf("desc: unknown kernel type %q", ktype)
	}
}

func splitParams(params string, n int) []string {
	if n == 0 {
		return []string{}
	}
	parts := strings.Split(params, ",")
	if len(parts) != n {
		return nil
	}
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// Encode renders a programmer-level graph back into its description.
// Every kernel must carry the ktype attribute the library constructors
// set; compiler-inserted kinds (buffers, splits, ...) are rejected —
// encode before compiling.
func Encode(g *graph.Graph) ([]byte, error) {
	f := File{Name: g.Name}
	for _, n := range g.Nodes() {
		switch n.Kind {
		case graph.KindInput:
			chunk := n.Output("out").Size
			in := InputDesc{
				Name:  n.Name(),
				Frame: [2]int{n.FrameSize.W, n.FrameSize.H},
				Chunk: [2]int{chunk.W, chunk.H},
				Rate:  FormatRate(n.Rate),
			}
			if elem := n.Output("out").Elem; elem != frame.F64 {
				in.Elem = elem.String()
			}
			if len(n.TokenRates) > 0 {
				in.TokenRates = make(map[string]string, len(n.TokenRates))
				for tok, r := range n.TokenRates {
					in.TokenRates[tok] = FormatRate(r)
				}
			}
			f.Inputs = append(f.Inputs, in)
		case graph.KindOutput:
			chunk := n.Input("in").Size
			f.Outputs = append(f.Outputs, OutputDesc{
				Name: n.Name(), Chunk: [2]int{chunk.W, chunk.H},
			})
		case graph.KindKernel:
			ktype := n.Attrs["ktype"]
			if ktype == "" {
				return nil, fmt.Errorf("desc: kernel %q has no ktype attribute (custom kernel?)", n.Name())
			}
			f.Kernels = append(f.Kernels, KernelDesc{
				Name: n.Name(), Type: ktype, Params: n.Attrs["kparams"],
			})
		case graph.KindSplit, graph.KindJoin:
			// Programmer-level scatter/gather kernels carry ktype like any
			// library kernel; compiler-inserted splits and joins do not.
			ktype := n.Attrs["ktype"]
			if ktype == "" {
				return nil, fmt.Errorf("desc: cannot encode compiler kernel %q (%s); encode before compiling",
					n.Name(), n.Kind)
			}
			f.Kernels = append(f.Kernels, KernelDesc{
				Name: n.Name(), Type: ktype, Params: n.Attrs["kparams"],
			})
		default:
			return nil, fmt.Errorf("desc: cannot encode compiler kernel %q (%s); encode before compiling",
				n.Name(), n.Kind)
		}
	}
	for _, e := range g.Edges() {
		f.Edges = append(f.Edges, EdgeDesc{
			From: e.From.Node().Name() + "." + e.From.Name,
			To:   e.To.Node().Name() + "." + e.To.Name,
		})
	}
	for _, c := range g.Conns() {
		cd := ConnDesc{
			Name:   c.Name,
			Family: c.Family.String(),
			From:   c.From.Node().Name() + "." + c.From.Name,
		}
		for _, p := range c.To {
			cd.To = append(cd.To, p.Node().Name()+"."+p.Name)
		}
		f.Conns = append(f.Conns, cd)
	}
	for _, d := range g.Deps() {
		f.Deps = append(f.Deps, DepDesc{From: d.From.Name(), To: d.To.Name()})
	}
	return json.MarshalIndent(&f, "", "  ")
}
