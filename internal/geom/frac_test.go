package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFracNormalization(t *testing.T) {
	cases := []struct {
		num, den int64
		wantN    int64
		wantD    int64
	}{
		{1, 2, 1, 2},
		{2, 4, 1, 2},
		{-2, 4, -1, 2},
		{2, -4, -1, 2},
		{-2, -4, 1, 2},
		{0, 5, 0, 1},
		{6, 3, 2, 1},
		{7, 1, 7, 1},
	}
	for _, c := range cases {
		got := F(c.num, c.den)
		if got.Num != c.wantN || got.Den != c.wantD {
			t.Errorf("F(%d,%d) = %d/%d, want %d/%d", c.num, c.den, got.Num, got.Den, c.wantN, c.wantD)
		}
	}
}

func TestFracZeroDenominatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("F(1,0) did not panic")
		}
	}()
	F(1, 0)
}

func TestFracDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	F(1, 2).Div(Frac{})
}

func TestFracArithmetic(t *testing.T) {
	half := F(1, 2)
	third := F(1, 3)
	if got := half.Add(third); !got.Equal(F(5, 6)) {
		t.Errorf("1/2 + 1/3 = %v, want 5/6", got)
	}
	if got := half.Sub(third); !got.Equal(F(1, 6)) {
		t.Errorf("1/2 - 1/3 = %v, want 1/6", got)
	}
	if got := half.Mul(third); !got.Equal(F(1, 6)) {
		t.Errorf("1/2 * 1/3 = %v, want 1/6", got)
	}
	if got := half.Div(third); !got.Equal(F(3, 2)) {
		t.Errorf("(1/2)/(1/3) = %v, want 3/2", got)
	}
	if got := half.MulInt(4); !got.Equal(FInt(2)) {
		t.Errorf("1/2 * 4 = %v, want 2", got)
	}
	if got := half.Neg(); !got.Equal(F(-1, 2)) {
		t.Errorf("-(1/2) = %v, want -1/2", got)
	}
}

func TestFracZeroValueIsUsable(t *testing.T) {
	// The zero value Frac{} must behave as 0/1 in every operation.
	var z Frac
	if !z.IsZero() || !z.IsInt() {
		t.Fatalf("zero value not recognized as zero integer: %+v", z)
	}
	if got := z.Add(F(1, 2)); !got.Equal(F(1, 2)) {
		t.Errorf("0 + 1/2 = %v", got)
	}
	if got := F(1, 2).Mul(z); !got.IsZero() {
		t.Errorf("1/2 * 0 = %v", got)
	}
	if z.String() != "0" {
		t.Errorf("zero String() = %q", z.String())
	}
	if z.Cmp(FInt(0)) != 0 {
		t.Errorf("zero Cmp(0) != 0")
	}
}

func TestFracFloorCeil(t *testing.T) {
	cases := []struct {
		f           Frac
		floor, ceil int64
	}{
		{F(7, 2), 3, 4},
		{F(-7, 2), -4, -3},
		{F(4, 2), 2, 2},
		{F(0, 3), 0, 0},
		{F(-4, 2), -2, -2},
		{F(1, 3), 0, 1},
		{F(-1, 3), -1, 0},
	}
	for _, c := range cases {
		if got := c.f.Floor(); got != c.floor {
			t.Errorf("%v.Floor() = %d, want %d", c.f, got, c.floor)
		}
		if got := c.f.Ceil(); got != c.ceil {
			t.Errorf("%v.Ceil() = %d, want %d", c.f, got, c.ceil)
		}
	}
}

func TestFracCmp(t *testing.T) {
	if F(1, 3).Cmp(F(1, 2)) != -1 {
		t.Error("1/3 should be < 1/2")
	}
	if F(2, 4).Cmp(F(1, 2)) != 0 {
		t.Error("2/4 should equal 1/2")
	}
	if !F(1, 3).Less(F(1, 2)) {
		t.Error("Less(1/3, 1/2) should be true")
	}
	if F(-1, 2).Cmp(F(1, 2)) != -1 {
		t.Error("-1/2 should be < 1/2")
	}
}

func TestFracString(t *testing.T) {
	if got := F(5, 2).String(); got != "5/2" {
		t.Errorf("String(5/2) = %q", got)
	}
	if got := F(4, 2).String(); got != "2" {
		t.Errorf("String(4/2) = %q", got)
	}
	if got := F(-3, 6).String(); got != "-1/2" {
		t.Errorf("String(-3/6) = %q", got)
	}
}

func TestFracFromFloat(t *testing.T) {
	if got := FracFromFloat(2.5, 16); !got.Equal(F(5, 2)) {
		t.Errorf("FracFromFloat(2.5) = %v, want 5/2", got)
	}
	if got := FracFromFloat(2.0, 16); !got.Equal(FInt(2)) {
		t.Errorf("FracFromFloat(2.0) = %v, want 2", got)
	}
	if got := FracFromFloat(1.0/3.0, 16); !got.Equal(F(1, 3)) {
		t.Errorf("FracFromFloat(1/3) = %v, want 1/3", got)
	}
	if got := FracFromFloat(-0.75, 4); !got.Equal(F(-3, 4)) {
		t.Errorf("FracFromFloat(-0.75) = %v, want -3/4", got)
	}
}

func TestFracFromFloatNonFinitePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FracFromFloat(NaN) did not panic")
		}
	}()
	FracFromFloat(math.NaN(), 8)
}

// clampFrac maps arbitrary quick-generated integers into a valid Frac
// with small components so products cannot overflow int64.
func clampFrac(n, d int64) Frac {
	n %= 1000
	d %= 1000
	if d == 0 {
		d = 1
	}
	return F(n, d)
}

func TestFracAddCommutesQuick(t *testing.T) {
	prop := func(an, ad, bn, bd int64) bool {
		a, b := clampFrac(an, ad), clampFrac(bn, bd)
		return a.Add(b).Equal(b.Add(a))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFracMulDistributesQuick(t *testing.T) {
	prop := func(an, ad, bn, bd, cn, cd int64) bool {
		a, b, c := clampFrac(an, ad), clampFrac(bn, bd), clampFrac(cn, cd)
		lhs := a.Mul(b.Add(c))
		rhs := a.Mul(b).Add(a.Mul(c))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFracAlwaysNormalizedQuick(t *testing.T) {
	prop := func(an, ad, bn, bd int64) bool {
		a, b := clampFrac(an, ad), clampFrac(bn, bd)
		s := a.Add(b)
		if s.Den <= 0 {
			return false
		}
		return gcd64(abs64(s.Num), s.Den) == 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFracFloorCeilOrderingQuick(t *testing.T) {
	prop := func(an, ad int64) bool {
		a := clampFrac(an, ad)
		fl, cl := a.Floor(), a.Ceil()
		if fl > cl {
			return false
		}
		if FInt(fl).Cmp(a) > 0 || FInt(cl).Cmp(a) < 0 {
			return false
		}
		return cl-fl <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
