package runtime

import "blockpar/internal/frame"

// Every runtime test runs with use-after-release poisoning on: a stale
// reader of recycled pool storage then sees NaN and diverges from the
// golden outputs instead of silently passing.
func init() { frame.SetPoison(true) }
