package conformance

import (
	"fmt"

	"blockpar/internal/conn"
	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
	"blockpar/internal/token"
)

// Oracle is the plain sequential reference interpreter: it executes
// the *untransformed* application graph one frame at a time, walking
// every kernel's iteration space in scan order with no buffers, splits,
// or insets. Multi-input methods iterate over the intersection of
// their inputs' aligned coverage (the Trim policy of §III-C), which is
// exactly the region the compiled graph produces, so oracle outputs
// are byte-comparable to every transformed execution path.
//
// Kernel math runs through the same Behavior implementations as the
// goroutine runtime: the harness tests the compiler's transformations
// and the execution engines, not the arithmetic.
type Oracle struct {
	g       *graph.Graph
	order   []*graph.Node
	sources map[string]frame.Generator
	frame   int64
}

// plane is one output port's per-frame product: an item grid plus a
// sample-coordinate origin (the §III-C inset) used to align joining
// branches.
type plane struct {
	items  []frame.Window
	nx, ny int
	itemW  int
	itemH  int
	// ox, oy locate the first item in application sample coordinates
	// (fractional for downsampling offsets).
	ox, oy geom.Frac
}

func (p *plane) item(u, v int) frame.Window { return p.items[v*p.nx+u] }

// assemble flattens a 1×1-item plane into one window for sliding
// windows over it, preserving the items' element kind so typed kernels
// see the same native samples the runtime delivers.
func (p *plane) assemble() frame.Window {
	k := frame.F64
	if len(p.items) > 0 {
		k = p.items[0].Kind
	}
	w := frame.NewWindowKind(k, p.nx, p.ny)
	for i, it := range p.items {
		w.Set(i%p.nx, i/p.nx, it.At(0, 0))
	}
	return w
}

// NewOracle clones the graph (behaviors carry state across frames) and
// prepares a sequential interpreter. Frames are executed in order:
// Frame(0), Frame(1), ... — matching how stateful kernels see the
// stream.
func NewOracle(g *graph.Graph, sources map[string]frame.Generator) (*Oracle, error) {
	gc := g.Clone()
	if err := gc.Validate(); err != nil {
		return nil, fmt.Errorf("conformance: oracle graph: %w", err)
	}
	order, err := gc.Topological()
	if err != nil {
		return nil, fmt.Errorf("conformance: oracle order: %w", err)
	}
	return &Oracle{g: gc, order: order, sources: sources}, nil
}

// Frame executes the next frame (seq must advance by one from zero)
// and returns the data windows every application output receives, in
// stream order.
func (o *Oracle) Frame(seq int64) (map[string][]frame.Window, error) {
	if seq != o.frame {
		return nil, fmt.Errorf("conformance: oracle frames must run in order: got %d, want %d", seq, o.frame)
	}
	o.frame++

	planes := make(map[*graph.Port]*plane)
	outs := make(map[string][]frame.Window)
	for _, n := range o.order {
		switch n.Kind {
		case graph.KindInput:
			if err := o.evalInput(n, seq, planes); err != nil {
				return nil, err
			}
		case graph.KindOutput:
			e := o.g.EdgeTo(n.Input("in"))
			pl := planes[e.From]
			if pl == nil {
				return nil, fmt.Errorf("conformance: output %q has no arriving plane", n.Name())
			}
			outs[n.Name()] = pl.items
		case graph.KindKernel:
			if err := o.evalKernel(n, seq, planes); err != nil {
				return nil, err
			}
		case graph.KindSplit:
			if sched, ok := kernel.ScatterSched(n); ok {
				if err := o.evalScatter(n, sched, planes); err != nil {
					return nil, err
				}
				continue
			}
			return nil, fmt.Errorf("conformance: oracle wants an untransformed graph, found %s node %q", n.Kind, n.Name())
		case graph.KindJoin:
			if sched, ok := kernel.GatherSched(n); ok {
				if err := o.evalGather(n, sched, planes); err != nil {
					return nil, err
				}
				continue
			}
			return nil, fmt.Errorf("conformance: oracle wants an untransformed graph, found %s node %q", n.Kind, n.Name())
		default:
			return nil, fmt.Errorf("conformance: oracle wants an untransformed graph, found %s node %q", n.Kind, n.Name())
		}
	}
	return outs, nil
}

func (o *Oracle) evalInput(n *graph.Node, seq int64, planes map[*graph.Port]*plane) error {
	gen := o.sources[n.Name()]
	if gen == nil {
		gen = frame.Gradient
	}
	img := gen(seq, n.FrameSize.W, n.FrameSize.H)
	out := n.Output("out")
	chunk := out.Size
	if n.FrameSize.W%chunk.W != 0 || n.FrameSize.H%chunk.H != 0 {
		return fmt.Errorf("conformance: input %q frame %v not divisible by chunk %v", n.Name(), n.FrameSize, chunk)
	}
	pl := &plane{
		nx: n.FrameSize.W / chunk.W, ny: n.FrameSize.H / chunk.H,
		itemW: chunk.W, itemH: chunk.H,
	}
	for y := 0; y+chunk.H <= n.FrameSize.H; y += chunk.H {
		for x := 0; x+chunk.W <= n.FrameSize.W; x += chunk.W {
			pl.items = append(pl.items, img.Sub(x, y, chunk.W, chunk.H))
		}
	}
	planes[out] = pl
	return nil
}

// evalScatter deals the arriving item grid across the branches on the
// schedule: item j of each row goes to branch (j/stride) mod ways. A raw
// 1×1-sample plane is first chunked into the scatter's declared item
// size (the compiled graph gets a non-overlapping buffer for this; the
// oracle chunks directly). Rows must divide into whole schedule cycles —
// the analysis reports the violation as a Misaligned problem, so the
// oracle only ever sees conforming graphs and errors otherwise.
func (o *Oracle) evalScatter(n *graph.Node, sched conn.Schedule, planes map[*graph.Port]*plane) error {
	in := n.Input("in")
	e := o.g.EdgeTo(in)
	if e == nil {
		return fmt.Errorf("conformance: scatter input %s unconnected", in)
	}
	pl := planes[e.From]
	if pl == nil {
		return fmt.Errorf("conformance: no plane for %s", e.From)
	}
	switch {
	case pl.itemW == in.Size.W && pl.itemH == in.Size.H:
		// Item-aligned.
	case pl.itemW == 1 && pl.itemH == 1 && (in.Size.W != 1 || in.Size.H != 1):
		// Chunk the raw plane into non-overlapping scatter items.
		whole := pl.assemble()
		if pl.nx%in.Size.W != 0 || pl.ny%in.Size.H != 0 {
			return fmt.Errorf("conformance: scatter %q: %dx%d samples not divisible into %v items",
				n.Name(), pl.nx, pl.ny, in.Size)
		}
		chunked := &plane{
			nx: pl.nx / in.Size.W, ny: pl.ny / in.Size.H,
			itemW: in.Size.W, itemH: in.Size.H,
			ox: pl.ox, oy: pl.oy,
		}
		for y := 0; y+in.Size.H <= pl.ny; y += in.Size.H {
			for x := 0; x+in.Size.W <= pl.nx; x += in.Size.W {
				chunked.items = append(chunked.items, whole.Sub(x, y, in.Size.W, in.Size.H))
			}
		}
		pl = chunked
	default:
		return fmt.Errorf("conformance: scatter %q: %v items cannot feed %v scatter",
			n.Name(), geom.Sz(pl.itemW, pl.itemH), in.Size)
	}
	if !sched.DividesRow(pl.nx) {
		return fmt.Errorf("conformance: scatter %q: row of %d items does not divide into %d-way stride-%d cycles",
			n.Name(), pl.nx, sched.Ways, sched.Stride)
	}
	bw := pl.nx / sched.Ways
	for b, op := range n.Outputs() {
		branch := &plane{
			nx: bw, ny: pl.ny,
			itemW: pl.itemW, itemH: pl.itemH,
			ox: pl.ox, oy: pl.oy,
		}
		for v := 0; v < pl.ny; v++ {
			for l := 0; l < bw; l++ {
				branch.items = append(branch.items, pl.item(int(sched.GlobalIndex(b, int64(l))), v))
			}
		}
		planes[op] = branch
	}
	return nil
}

// evalGather interleaves the branch planes by the gather's own schedule:
// output item j of each row comes from branch (j/stride) mod ways. The
// output is defined purely by this schedule, so a gather paired with a
// differently-scheduled scatter yields a well-defined permutation — the
// same one the runtime produces.
func (o *Oracle) evalGather(n *graph.Node, sched conn.Schedule, planes map[*graph.Port]*plane) error {
	branches := make([]*plane, len(n.Inputs()))
	for i, p := range n.Inputs() {
		e := o.g.EdgeTo(p)
		if e == nil {
			return fmt.Errorf("conformance: gather input %s unconnected", p)
		}
		pl := planes[e.From]
		if pl == nil {
			return fmt.Errorf("conformance: no plane for %s", e.From)
		}
		branches[i] = pl
		first := branches[0]
		if pl.nx != first.nx || pl.ny != first.ny || pl.itemW != first.itemW || pl.itemH != first.itemH {
			return fmt.Errorf("conformance: gather %q: branch %d carries %dx%d items of %v, branch 0 carries %dx%d of %v",
				n.Name(), i, pl.nx, pl.ny, geom.Sz(pl.itemW, pl.itemH),
				first.nx, first.ny, geom.Sz(first.itemW, first.itemH))
		}
	}
	first := branches[0]
	if first.nx%sched.Stride != 0 {
		return fmt.Errorf("conformance: gather %q: branch row of %d items does not divide by stride %d",
			n.Name(), first.nx, sched.Stride)
	}
	out := &plane{
		nx: first.nx * sched.Ways, ny: first.ny,
		itemW: first.itemW, itemH: first.itemH,
		ox: first.ox, oy: first.oy,
	}
	out.items = make([]frame.Window, out.nx*out.ny)
	for v := 0; v < out.ny; v++ {
		for b, pl := range branches {
			for l := 0; l < pl.nx; l++ {
				out.items[v*out.nx+int(sched.GlobalIndex(b, int64(l)))] = pl.item(l, v)
			}
		}
	}
	planes[n.Output("out")] = out
	return nil
}

// trig is one data trigger's iteration view: where its windows start
// in aligned sample coordinates, how far each iteration advances, and
// how many fit.
type trig struct {
	port     *graph.Port
	pl       *plane
	windowed bool // slide port.Size over an assembled 1×1-item plane
	plane    frame.Window
	sx, sy   geom.Frac // start (origin + port offset)
	px, py   int       // per-iteration pitch in aligned coordinates
	nx, ny   int
}

func (o *Oracle) evalKernel(n *graph.Node, seq int64, planes map[*graph.Port]*plane) error {
	inv, ok := n.Behavior.(graph.Invoker)
	if !ok {
		return fmt.Errorf("conformance: kernel %q has no Invoker behavior", n.Name())
	}
	arrive := func(name string) (*plane, error) {
		p := n.Input(name)
		if p == nil {
			return nil, fmt.Errorf("conformance: %q has no input %q", n.Name(), name)
		}
		e := o.g.EdgeTo(p)
		if e == nil {
			return nil, fmt.Errorf("conformance: input %s unconnected", p)
		}
		pl := planes[e.From]
		if pl == nil {
			return nil, fmt.Errorf("conformance: no plane for %s", e.From)
		}
		return pl, nil
	}

	// Split the methods the way the runtime driver does: config
	// methods (all triggers on replicated inputs) fire first each
	// frame, then data methods, then end-of-frame token methods.
	var configs, datas, eofs []*graph.Method
	for _, m := range n.Methods() {
		switch {
		case isConfig(n, m):
			configs = append(configs, m)
		case isEOFMethod(m):
			eofs = append(eofs, m)
		case len(m.DataTriggers()) == len(m.Triggers) && len(m.Triggers) > 0:
			datas = append(datas, m)
		default:
			return fmt.Errorf("conformance: method %q of %q mixes trigger kinds the oracle does not model", m.Name, n.Name())
		}
	}

	for _, m := range configs {
		if err := o.fireGrid(n, inv, m, seq, planes, arrive); err != nil {
			return err
		}
	}
	for _, m := range datas {
		if err := o.fireGrid(n, inv, m, seq, planes, arrive); err != nil {
			return err
		}
	}
	for _, m := range eofs {
		ctx := &oracleCtx{
			node: n,
			toks: map[string]token.Token{m.Triggers[0].Input: token.EOF(seq)},
		}
		if err := inv.Invoke(m.Name, ctx); err != nil {
			return fmt.Errorf("conformance: %q.%s: %w", n.Name(), m.Name, err)
		}
		if err := collectEmissions(n, m, ctx, 1, 1, geom.Frac{}, geom.Frac{}, planes); err != nil {
			return err
		}
	}
	return nil
}

// fireGrid fires one data (or config) method across its iteration
// grid in scan order and installs the emitted planes.
func (o *Oracle) fireGrid(n *graph.Node, inv graph.Invoker, m *graph.Method, seq int64,
	planes map[*graph.Port]*plane, arrive func(string) (*plane, error)) error {

	trigs := make([]*trig, len(m.Triggers))
	for i, t := range m.Triggers {
		pl, err := arrive(t.Input)
		if err != nil {
			return err
		}
		p := n.Input(t.Input)
		tr := &trig{port: p, pl: pl}
		switch {
		case pl.itemW == p.Size.W && pl.itemH == p.Size.H:
			// Item-aligned: one arriving item per iteration.
			tr.px, tr.py = pl.itemW, pl.itemH
			tr.nx, tr.ny = pl.nx, pl.ny
		case pl.itemW == 1 && pl.itemH == 1:
			// Windowed: slide the port's window over the raw plane.
			tr.windowed = true
			tr.plane = pl.assemble()
			tr.px, tr.py = p.Step.X, p.Step.Y
			tr.nx, tr.ny = geom.Iterations(geom.Sz(pl.nx, pl.ny), p.Size, p.Step)
		default:
			return fmt.Errorf("conformance: %s: %v items cannot feed a %v window", p, geom.Sz(pl.itemW, pl.itemH), p.Size)
		}
		tr.sx = pl.ox.Add(p.Offset.X)
		tr.sy = pl.oy.Add(p.Offset.Y)
		trigs[i] = tr
	}

	// The common grid: all triggers advance with the same pitch, and
	// iteration happens over the intersection of their coverage
	// (§III-C trim). Starts must differ by whole iterations.
	t0 := trigs[0]
	lox, loy := t0.sx, t0.sy
	hix := t0.sx.Add(geom.FInt(int64(t0.nx * t0.px)))
	hiy := t0.sy.Add(geom.FInt(int64(t0.ny * t0.py)))
	for _, tr := range trigs[1:] {
		if tr.px != t0.px || tr.py != t0.py {
			return fmt.Errorf("conformance: %q.%s: trigger pitches disagree (%dx%d vs %dx%d)",
				n.Name(), m.Name, tr.px, tr.py, t0.px, t0.py)
		}
		if lox.Less(tr.sx) {
			lox = tr.sx
		}
		if loy.Less(tr.sy) {
			loy = tr.sy
		}
		if ex := tr.sx.Add(geom.FInt(int64(tr.nx * tr.px))); ex.Less(hix) {
			hix = ex
		}
		if ey := tr.sy.Add(geom.FInt(int64(tr.ny * tr.py))); ey.Less(hiy) {
			hiy = ey
		}
	}
	gnx, gny := 0, 0
	if lox.Less(hix) && loy.Less(hiy) {
		gnx = int(hix.Sub(lox).Int()) / t0.px
		gny = int(hiy.Sub(loy).Int()) / t0.py
	}
	// Per-trigger index displacement of the grid origin.
	offx := make([]int, len(trigs))
	offy := make([]int, len(trigs))
	for i, tr := range trigs {
		dx, dy := lox.Sub(tr.sx), loy.Sub(tr.sy)
		if !dx.IsInt() || !dy.IsInt() ||
			dx.Int()%int64(tr.px) != 0 || dy.Int()%int64(tr.py) != 0 {
			return fmt.Errorf("conformance: %q.%s: trigger %q misaligned by %s,%s (not whole iterations)",
				n.Name(), m.Name, tr.port.Name, dx, dy)
		}
		offx[i] = int(dx.Int()) / tr.px
		offy[i] = int(dy.Int()) / tr.py
	}

	ctx := &oracleCtx{node: n, emitted: make(map[string][]frame.Window)}
	for v := 0; v < gny; v++ {
		for u := 0; u < gnx; u++ {
			ctx.ins = make(map[string]frame.Window, len(trigs))
			for i, tr := range trigs {
				iu, iv := u+offx[i], v+offy[i]
				if tr.windowed {
					ctx.ins[tr.port.Name] = tr.plane.Sub(iu*tr.px, iv*tr.py, tr.port.Size.W, tr.port.Size.H)
				} else {
					ctx.ins[tr.port.Name] = tr.pl.item(iu, iv)
				}
			}
			if err := inv.Invoke(m.Name, ctx); err != nil {
				return fmt.Errorf("conformance: %q.%s: %w", n.Name(), m.Name, err)
			}
		}
	}
	return collectEmissions(n, m, ctx, gnx, gny, lox, loy, planes)
}

// collectEmissions installs the method's per-output emissions as the
// output ports' planes for this frame.
func collectEmissions(n *graph.Node, m *graph.Method, ctx *oracleCtx, nx, ny int,
	ox, oy geom.Frac, planes map[*graph.Port]*plane) error {
	for _, outName := range m.Outputs {
		p := n.Output(outName)
		got := ctx.emitted[outName]
		if len(got) != nx*ny {
			return fmt.Errorf("conformance: %q.%s emitted %d items on %q, want %d",
				n.Name(), m.Name, len(got), outName, nx*ny)
		}
		planes[p] = &plane{
			items: got, nx: nx, ny: ny,
			itemW: p.Size.W, itemH: p.Size.H,
			ox: ox, oy: oy,
		}
	}
	return nil
}

// isConfig mirrors the runtime driver's rule: every trigger is a data
// trigger on a replicated input (fires once per frame, before data).
func isConfig(n *graph.Node, m *graph.Method) bool {
	if len(m.Triggers) == 0 {
		return false
	}
	for _, t := range m.Triggers {
		if !t.IsData() {
			return false
		}
		p := n.Input(t.Input)
		if p == nil || !p.Replicated {
			return false
		}
	}
	return true
}

func isEOFMethod(m *graph.Method) bool {
	return len(m.Triggers) == 1 && m.Triggers[0].Token == token.EndOfFrame
}

// oracleCtx is the sequential ExecContext: inputs come from the
// precomputed iteration windows, emissions accumulate per output.
type oracleCtx struct {
	node    *graph.Node
	ins     map[string]frame.Window
	toks    map[string]token.Token
	emitted map[string][]frame.Window
}

func (c *oracleCtx) Input(name string) frame.Window {
	w, ok := c.ins[name]
	if !ok {
		panic(fmt.Sprintf("conformance: method read un-triggered input %q of %q", name, c.node.Name()))
	}
	return w
}

func (c *oracleCtx) Token(name string) token.Token { return c.toks[name] }

func (c *oracleCtx) Emit(output string, w frame.Window) {
	if c.emitted == nil {
		c.emitted = make(map[string][]frame.Window)
	}
	c.emitted[output] = append(c.emitted[output], w)
}

// EmitToken is a no-op: the oracle models framing implicitly (one
// Frame call per frame); EOL/EOF forwarding is the runtime's concern.
func (c *oracleCtx) EmitToken(output string, t token.Token) {}
