package cluster

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"blockpar/internal/frame"
	"blockpar/internal/graph"
	"blockpar/internal/placement"
	"blockpar/internal/registry"
	"blockpar/internal/runtime"
	"blockpar/internal/serve"
	"blockpar/internal/wire"
)

// DispatcherOptions tunes the frontend side of the cluster. The zero
// value is production-ready; tests shrink the intervals.
type DispatcherOptions struct {
	// Dial opens a connection to a worker address (default net.Dial
	// over TCP with a 5s timeout).
	Dial func(addr string) (net.Conn, error)
	// PingInterval paces worker health probes (default 2s); a worker
	// that misses pongs for PingTimeout (default 3×PingInterval) is
	// declared dead and reconnected.
	PingInterval time.Duration
	PingTimeout  time.Duration
	// ReconnectMin/Max bound the exponential backoff between dial
	// attempts (defaults 100ms and 5s).
	ReconnectMin time.Duration
	ReconnectMax time.Duration
	// BreakerFailures consecutive connection-level failures open a
	// worker's circuit breaker (default 3); after BreakerCooldown
	// (default 5s) it goes half-open and one placement may probe it.
	BreakerFailures int
	BreakerCooldown time.Duration
	// OpenTimeout bounds pipeline-ensure and session-open round trips,
	// which may include a worker-side compile (default 30s).
	OpenTimeout time.Duration
	// CloseTimeout bounds the wait for a worker to drain and
	// acknowledge a session close (default 10s).
	CloseTimeout time.Duration
	// FailoverTimeout bounds one session's recovery after its worker
	// dies: finding a surviving worker, reopening, and replaying the
	// feed history (default 30s). A session deadline shortens it.
	FailoverTimeout time.Duration
	// ReplayBudget caps the bytes of explicit input windows a session
	// retains for failover replay (default 32 MiB). Generated inputs
	// cost nothing — the worker regenerates them from the frame index.
	// A session past its budget stops being failoverable: its worker
	// dying becomes a typed serve.ErrSessionLost instead of a replay.
	// Negative disables failover entirely (PR 4 semantics).
	ReplayBudget int64
	// StallTimeout bounds how long a session with frames in flight may
	// go without any progress (results or credits arriving) before the
	// dispatcher declares its worker wedged and fails the session over
	// (default 30s; negative disables). This is the recovery for
	// messages lost on an otherwise-healthy connection — a dropped
	// frame, a silently stuck worker — which connection-level health
	// checks can never see.
	StallTimeout time.Duration
	// Partitions, when 2 or more, splits each session's compiled graph
	// across that many workers using internal/placement and co-schedules
	// one partition per worker, with the cut edges relayed through the
	// dispatcher (see docs/cluster.md "Partitioned sessions"). Pipelines
	// whose placement collapses to one partition run whole, as before.
	// Partitioned sessions recover per partition: within ReplayBudget,
	// one partition's death re-plans just that partition onto a survivor
	// and replays its inputs, invisibly to the client. Past the budget —
	// or on a second failure mid-recovery — the session ends with a
	// typed serve.ErrSessionLost.
	Partitions int
}

func (o *DispatcherOptions) defaults() {
	if o.Dial == nil {
		o.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	if o.PingInterval <= 0 {
		o.PingInterval = 2 * time.Second
	}
	if o.PingTimeout <= 0 {
		o.PingTimeout = 3 * o.PingInterval
	}
	if o.ReconnectMin <= 0 {
		o.ReconnectMin = 100 * time.Millisecond
	}
	if o.ReconnectMax <= 0 {
		o.ReconnectMax = 5 * time.Second
	}
	if o.BreakerFailures <= 0 {
		o.BreakerFailures = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	if o.OpenTimeout <= 0 {
		o.OpenTimeout = 30 * time.Second
	}
	if o.CloseTimeout <= 0 {
		o.CloseTimeout = 10 * time.Second
	}
	if o.FailoverTimeout <= 0 {
		o.FailoverTimeout = 30 * time.Second
	}
	if o.ReplayBudget == 0 {
		o.ReplayBudget = 32 << 20
	}
	if o.StallTimeout == 0 {
		o.StallTimeout = 30 * time.Second
	}
}

// Dispatcher places sessions on cluster workers and proxies their
// frames. It implements serve.Backend, so bpserve swaps it in for the
// in-process executor without the HTTP layer noticing.
type Dispatcher struct {
	opts    DispatcherOptions
	nextSID atomic.Uint64

	// Membership. Static dispatchers fix it at construction; registered
	// dispatchers mutate it as fleet events arrive, so every reader
	// goes through snapshot().
	wmu     sync.RWMutex
	workers []*workerRef
	byName  map[string]*workerRef // member name → ref
	ring    *registry.Ring        // non-nil in registered mode

	// registered marks a dispatcher whose membership follows a
	// registry.Fleet: placement consults the consistent-hash ring for
	// keyed sessions, bin-packs keyless ones by analysis cycles/sec,
	// and admission control gates opens on fleet capacity.
	registered  bool
	unsubscribe func()

	// Admission accounting (registered mode): cycles/sec admitted by
	// this frontend, compared against the fleet's registered capacity.
	admitMu      sync.Mutex
	admittedCyc  float64
	admitRejects atomic.Int64

	// plans caches one placement plan per pipeline ID (partitioned mode).
	planMu sync.Mutex
	plans  map[string]*placement.Plan

	// Failover counters, surfaced by BackendStats under /metrics.
	sessionsFailedOver   atomic.Int64
	partitionsFailedOver atomic.Int64
	sessionsMigrated     atomic.Int64
	framesReplayed       atomic.Int64
	shedTotal            atomic.Int64

	closeOnce sync.Once
	closed    chan struct{}
}

// NewDispatcher starts one connection manager per worker address. The
// managers connect in the background; use WaitReady to block until the
// cluster can place sessions.
func NewDispatcher(addrs []string, opts DispatcherOptions) *Dispatcher {
	opts.defaults()
	d := &Dispatcher{
		opts:   opts,
		byName: make(map[string]*workerRef),
		plans:  make(map[string]*placement.Plan),
		closed: make(chan struct{}),
	}
	for _, addr := range addrs {
		d.AddWorker(addr, addr, 0)
	}
	return d
}

// NewRegisteredDispatcher builds a dispatcher whose membership follows
// a registry.Fleet: a worker registering adds a managed connection and
// a ring member, a deregistration or lease expiry removes both — and
// cancels the reconnect loop, so a drained worker is never pinged at a
// dead address. Breakers, credits, failover, and replay all work
// exactly as with a static list; only membership and placement differ.
func NewRegisteredDispatcher(fleet *registry.Fleet, opts DispatcherOptions) *Dispatcher {
	opts.defaults()
	d := &Dispatcher{
		opts:       opts,
		byName:     make(map[string]*workerRef),
		ring:       registry.NewRing(0),
		registered: true,
		plans:      make(map[string]*placement.Plan),
		closed:     make(chan struct{}),
	}
	ch, cancel := fleet.Subscribe()
	d.unsubscribe = cancel
	go func() {
		for ev := range ch {
			switch ev.Kind {
			case registry.EventJoin:
				d.AddWorker(ev.Member.Name, ev.Member.Addr, ev.Member.CyclesPerSec)
			case registry.EventLeave:
				d.RemoveWorker(ev.Member.Name)
			case registry.EventDrain:
				// The worker announced planned maintenance in a heartbeat:
				// stop placing here and migrate its sessions off before
				// its Goaway lands.
				d.DrainWorker(ev.Member.Name)
			}
		}
	}()
	return d
}

// snapshot returns the current worker set; safe to iterate without the
// membership lock.
func (d *Dispatcher) snapshot() []*workerRef {
	d.wmu.RLock()
	defer d.wmu.RUnlock()
	return append([]*workerRef(nil), d.workers...)
}

// AddWorker adds a member and starts its connection manager. Adding an
// existing member with an unchanged address refreshes nothing (the
// manager is already running); a changed address replaces the ref.
func (d *Dispatcher) AddWorker(member, addr string, capacityCyc float64) {
	d.wmu.Lock()
	if old, ok := d.byName[member]; ok {
		if old.addr == addr {
			old.mu.Lock()
			old.capacity = capacityCyc
			old.mu.Unlock()
			d.wmu.Unlock()
			return
		}
		d.removeLocked(old)
		old.halt()
	}
	w := &workerRef{d: d, addr: addr, member: member, capacity: capacityCyc, stop: make(chan struct{})}
	d.workers = append(d.workers, w)
	d.byName[member] = w
	if d.ring != nil {
		d.ring.Add(member)
	}
	d.wmu.Unlock()
	go w.manage()
}

// RemoveWorker drops a member from placement and cancels its reconnect
// loop. A live connection is not torn down: in-flight sessions drain
// through the worker's own Goaway path (or fail over when it dies),
// but once the connection ends the manager exits instead of redialing.
func (d *Dispatcher) RemoveWorker(member string) {
	d.wmu.Lock()
	w := d.byName[member]
	if w != nil {
		d.removeLocked(w)
	}
	d.wmu.Unlock()
	if w != nil {
		w.halt()
	}
}

// DrainWorker quiesces one worker from the frontend side: no further
// placements land on it and every resident session migrates to a
// survivor (falling back to a quiesce-and-close when it cannot). The
// worker process itself keeps running — this is the frontend half of a
// planned drain, reached from a draining heartbeat in registered mode,
// the worker's own Goaway, or the /drain-worker admin endpoint. In
// static mode the member name is the worker's address.
func (d *Dispatcher) DrainWorker(member string) error {
	d.wmu.RLock()
	w := d.byName[member]
	d.wmu.RUnlock()
	if w == nil {
		return fmt.Errorf("cluster: unknown worker %q", member)
	}
	w.mu.Lock()
	w.draining = true
	sessions := make([]placedSession, 0, len(w.sessions))
	for _, rs := range w.sessions {
		sessions = append(sessions, rs)
	}
	w.mu.Unlock()
	for _, rs := range sessions {
		rs.drainClose(w)
	}
	return nil
}

// removeLocked unlinks w from the membership structures. Caller holds
// d.wmu.
func (d *Dispatcher) removeLocked(w *workerRef) {
	delete(d.byName, w.member)
	for i, x := range d.workers {
		if x == w {
			d.workers = append(d.workers[:i], d.workers[i+1:]...)
			break
		}
	}
	if d.ring != nil {
		d.ring.Remove(w.member)
	}
}

// PlaceableWorkers reports how many members can take a session right
// now.
func (d *Dispatcher) PlaceableWorkers() int {
	n := 0
	for _, w := range d.snapshot() {
		if w.placeable() {
			n++
		}
	}
	return n
}

// PlacementFor reports the ring's preference order for a session key —
// every frontend sharing the fleet computes the same answer. Empty in
// static mode.
func (d *Dispatcher) PlacementFor(key string) []string {
	d.wmu.RLock()
	defer d.wmu.RUnlock()
	if d.ring == nil {
		return nil
	}
	return d.ring.LookupN(key, d.ring.Len())
}

// WaitReady blocks until at least one worker is connected, or the
// timeout expires.
func (d *Dispatcher) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		for _, w := range d.snapshot() {
			if w.placeable() {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: no worker reachable within %v", timeout)
		}
		select {
		case <-d.closed:
			return errors.New("cluster: dispatcher closed")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Open implements serve.Backend: place the session on the least-loaded
// healthy worker, trying the next candidate when one refuses. With no
// placeable worker it sheds with serve.ErrUnavailable (HTTP 503).
func (d *Dispatcher) Open(p *serve.Pipeline, opts serve.OpenOptions) (serve.SessionHandle, error) {
	select {
	case <-d.closed:
		return nil, fmt.Errorf("%w: dispatcher closed", serve.ErrUnavailable)
	default:
	}
	if d.opts.Partitions >= 2 {
		h, err := d.openPartitioned(p, opts)
		if !errors.Is(err, errPlanWhole) {
			return h, err
		}
		// The placement collapsed to one partition: run the session
		// whole on a single worker, exactly the unpartitioned path.
	}

	// Admission control (registered mode): the new session's projected
	// demand — Σ over its nodes of analysis cycles/sec — must fit in
	// the fleet's registered capacity alongside everything this
	// frontend already admitted. A healthy-but-full fleet rejects with
	// the 429 retry contract, not a 503.
	var admitted float64
	if d.registered {
		demand := p.CyclesPerSec
		capacity := d.fleetCapacity()
		if len(d.snapshot()) == 0 {
			// An empty fleet is unavailable, not full: the 503 retry
			// contract, matching Readiness, not the 429 one.
			return nil, fmt.Errorf("%w: no workers registered with the fleet", serve.ErrUnavailable)
		}
		d.admitMu.Lock()
		if demand > 0 && d.admittedCyc+demand > capacity {
			have := capacity - d.admittedCyc
			d.admitMu.Unlock()
			d.admitRejects.Add(1)
			return nil, fmt.Errorf("%w: pipeline %s needs %.3g cycles/s, fleet has %.3g of %.3g free",
				serve.ErrOverloaded, p.ID, demand, have, capacity)
		}
		d.admittedCyc += demand
		d.admitMu.Unlock()
		admitted = demand
	}

	var lastErr error
	for _, w := range d.candidates(p, opts) {
		h, err := w.open(p, opts)
		if err == nil {
			// Hand the admission hold to the session so failSession —
			// the single termination funnel — returns it. If the
			// session already ended (worker died in the gap), its
			// failSession saw admitted == 0, so the hold is still ours
			// to release.
			h.mu.Lock()
			if h.ended {
				h.mu.Unlock()
				if admitted > 0 {
					d.releaseAdmission(admitted)
				}
			} else {
				h.admitted = admitted
				h.mu.Unlock()
			}
			return h, nil
		}
		lastErr = err
	}
	if admitted > 0 {
		d.releaseAdmission(admitted)
	}
	d.shedTotal.Add(1)
	if lastErr != nil {
		return nil, fmt.Errorf("%w: %v", serve.ErrUnavailable, lastErr)
	}
	return nil, fmt.Errorf("%w: no healthy cluster worker", serve.ErrUnavailable)
}

// candidates orders the placeable workers for one open. Keyed sessions
// in registered mode walk the consistent-hash ring, so every frontend
// sharing the fleet agrees where a key lives; keyless registered
// sessions bin-pack by analysis cycles/sec (best fit: the busiest
// worker the session still fits on, the paper's Section V greedy
// multiplexing lifted from PEs to workers); everything else tries
// least-loaded first, the static behavior.
func (d *Dispatcher) candidates(p *serve.Pipeline, opts serve.OpenOptions) []*workerRef {
	if d.registered && opts.Key != "" {
		d.wmu.RLock()
		order := d.ring.LookupN(opts.Key, d.ring.Len())
		refs := make([]*workerRef, 0, len(order))
		for _, name := range order {
			if w := d.byName[name]; w != nil {
				refs = append(refs, w)
			}
		}
		d.wmu.RUnlock()
		placeable := refs[:0]
		for _, w := range refs {
			if w.placeable() {
				placeable = append(placeable, w)
			}
		}
		return placeable
	}

	var cands []*workerRef
	for _, w := range d.snapshot() {
		if w.placeable() {
			cands = append(cands, w)
		}
	}
	if d.registered && p.CyclesPerSec > 0 {
		demand := p.CyclesPerSec
		sort.SliceStable(cands, func(i, j int) bool {
			ri := cands[i].remainingCyc()
			rj := cands[j].remainingCyc()
			fi, fj := ri >= demand, rj >= demand
			if fi != fj {
				return fi // workers the session fits on come first
			}
			if fi {
				return ri < rj // tightest fit first packs sessions together
			}
			return ri > rj // nothing fits: most headroom first
		})
		return cands
	}
	sort.SliceStable(cands, func(i, j int) bool {
		return cands[i].sessionCount() < cands[j].sessionCount()
	})
	return cands
}

// fleetCapacity sums the registered cycles/sec of every current
// member. Membership — not momentary connectivity — defines capacity:
// a worker mid-reconnect still holds its lease and its share.
func (d *Dispatcher) fleetCapacity() float64 {
	total := 0.0
	for _, w := range d.snapshot() {
		w.mu.Lock()
		total += w.capacity
		w.mu.Unlock()
	}
	return total
}

// releaseAdmission returns a session's admitted demand to the pool.
func (d *Dispatcher) releaseAdmission(cyc float64) {
	d.admitMu.Lock()
	d.admittedCyc -= cyc
	if d.admittedCyc < 0 {
		d.admittedCyc = 0
	}
	d.admitMu.Unlock()
}

// Readiness implements serve.ReadinessReporter: "ok" with every worker
// placeable, "degraded" while sessions still place but capacity is
// reduced (workers down, draining, or breaker-open), "unavailable"
// when nothing can place.
func (d *Dispatcher) Readiness() serve.Readiness {
	workers := d.snapshot()
	up := 0
	for _, w := range workers {
		if w.placeable() {
			up++
		}
	}
	total := len(workers)
	if d.registered && total == 0 {
		return serve.Readiness{
			Status: "unavailable",
			Detail: "no workers registered with the fleet",
		}
	}
	switch {
	case up == 0:
		return serve.Readiness{
			Status: "unavailable",
			Detail: fmt.Sprintf("0/%d cluster workers placeable", total),
		}
	case up < total:
		return serve.Readiness{
			Status: "degraded",
			Detail: fmt.Sprintf("%d/%d cluster workers placeable", up, total),
		}
	}
	return serve.Readiness{Status: "ok"}
}

// pick returns the placeable worker with the fewest sessions, skipping
// already-tried candidates.
func (d *Dispatcher) pick(tried map[*workerRef]bool) *workerRef {
	var best *workerRef
	bestLoad := 0
	for _, w := range d.snapshot() {
		if tried[w] || !w.placeable() {
			continue
		}
		load := w.sessionCount()
		if best == nil || load < bestLoad {
			best, bestLoad = w, load
		}
	}
	return best
}

// Close tears down every worker connection; in-flight sessions fail.
func (d *Dispatcher) Close() error {
	d.closeOnce.Do(func() {
		close(d.closed)
		if d.unsubscribe != nil {
			d.unsubscribe()
		}
		for _, w := range d.snapshot() {
			w.halt()
			w.mu.Lock()
			c := w.conn
			w.mu.Unlock()
			if c != nil {
				c.Close()
			}
		}
	})
	return nil
}

// WorkerStats is one worker's row in /metrics.
type WorkerStats struct {
	Addr            string  `json:"addr"`
	Name            string  `json:"name,omitempty"`
	Member          string  `json:"member,omitempty"`
	State           string  `json:"state"`
	Breaker         string  `json:"breaker"`
	Draining        bool    `json:"draining,omitempty"`
	Sessions        int     `json:"sessions"`
	CapacityCyc     float64 `json:"capacity_cycles_per_sec,omitempty"`
	DemandCyc       float64 `json:"demand_cycles_per_sec,omitempty"`
	FramesRouted    int64   `json:"frames_routed"`
	ResultsReceived int64   `json:"results_received"`
	CreditsInFlight int     `json:"credits_in_flight"`
	Reconnects      int64   `json:"reconnects"`
}

// SessionStats is one open session's row in /metrics: the worker (or
// workers, for a partitioned session), how many partitions execute it,
// and the bytes its failover replay log retains.
type SessionStats struct {
	Pipeline    string   `json:"pipeline"`
	Workers     []string `json:"workers"`
	Partitions  int      `json:"partitions"`
	ReplayBytes int64    `json:"replay_bytes"`
}

// BackendStats implements serve.StatsReporter: the per-worker gauges
// surfaced under "cluster" in /metrics, plus one row per open session.
func (d *Dispatcher) BackendStats() any {
	workers := d.snapshot()
	rows := make([]WorkerStats, 0, len(workers))
	seen := make(map[uint64]bool)
	var sessions []SessionStats
	for _, w := range workers {
		rows = append(rows, w.stats())
		w.mu.Lock()
		placed := make([]placedSession, 0, len(w.sessions))
		for _, ps := range w.sessions {
			placed = append(placed, ps)
		}
		w.mu.Unlock()
		for _, ps := range placed {
			row, key := ps.sessionRow()
			if !seen[key] {
				seen[key] = true
				sessions = append(sessions, row)
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Addr < rows[j].Addr })
	sort.Slice(sessions, func(i, j int) bool {
		if sessions[i].Pipeline != sessions[j].Pipeline {
			return sessions[i].Pipeline < sessions[j].Pipeline
		}
		return sessions[i].Partitions < sessions[j].Partitions
	})
	out := map[string]any{
		"workers":                rows,
		"sessions":               sessions,
		"sessions_failed_over":   d.sessionsFailedOver.Load(),
		"partitions_failed_over": d.partitionsFailedOver.Load(),
		"sessions_migrated":      d.sessionsMigrated.Load(),
		"frames_replayed":        d.framesReplayed.Load(),
		"shed_total":             d.shedTotal.Load(),
	}
	if d.registered {
		d.admitMu.Lock()
		admitted := d.admittedCyc
		d.admitMu.Unlock()
		out["fleet"] = map[string]any{
			"members":                 len(workers),
			"capacity_cycles_per_sec": d.fleetCapacity(),
			"admitted_cycles_per_sec": admitted,
			"admission_rejects":       d.admitRejects.Load(),
		}
	}
	return out
}

// placedSession is one session's presence on one worker connection:
// either a whole remoteSession or one partitionHalf of a partitioned
// session. The worker read loop routes frames through it without
// knowing which.
type placedSession interface {
	deliver(w *workerRef, m *wire.Result)
	addCredits(n int)
	edgeFrame(w *workerRef, m *wire.EdgeFrame)
	edgeCredit(w *workerRef, m *wire.EdgeCredit)
	onClosed(w *workerRef, m *wire.SessionClosed)
	failSession(err error)
	connLost(cause error)
	drainClose(w *workerRef)
	creditsOut() int
	// demandCyc is the session's analysis-priced cycles/sec demand,
	// the bin-packing weight in registered mode. Must not block: it is
	// called under the owning worker's lock.
	demandCyc() float64
	// sessionRow reports the session's /metrics row and a key that
	// deduplicates a partitioned session appearing on several workers.
	sessionRow() (SessionStats, uint64)
}

// workerRef is the dispatcher's view of one worker: a managed
// connection with reconnection, health pings, and a circuit breaker,
// plus the sessions currently placed on it.
type workerRef struct {
	d      *Dispatcher
	addr   string
	member string // ring identity (registration name; the address in static mode)

	// stop cancels the manage loop: closed when the member deregisters
	// (or the dispatcher closes it out of the fleet), so a removed
	// worker's backoff never pings its dead address again.
	stop     chan struct{}
	stopOnce sync.Once

	mu       sync.Mutex
	capacity float64    // registered cycles/sec (0 in static mode)
	conn     *wire.Conn // nil while disconnected
	epoch    uint64     // bumped per successful connect
	name     string     // from Welcome
	draining bool       // saw Goaway
	known    map[string]bool
	sessions map[uint64]placedSession
	pending  map[uint64]chan *wire.SessionOpened
	ensure   map[string][]chan *wire.PipelineReady

	consecFails int
	openUntil   time.Time // breaker open until this instant
	lastPong    atomic.Int64

	framesRouted atomic.Int64
	resultsRecv  atomic.Int64
	reconnects   atomic.Int64
}

// halt cancels the manage loop. Idempotent; a live connection is left
// to finish on its own (sessions drain or fail over when it dies), but
// no redial ever follows.
func (w *workerRef) halt() {
	w.stopOnce.Do(func() { close(w.stop) })
}

// halted reports whether the member was removed.
func (w *workerRef) halted() bool {
	select {
	case <-w.stop:
		return true
	default:
		return false
	}
}

// manage owns the connection lifecycle: dial + handshake with
// exponential backoff, then read until the connection dies, failing
// that epoch's sessions and starting over. Deregistration (halt)
// cancels the loop: a removed worker's address is never redialed —
// previously a drained worker was pinged forever, holding its breaker
// half-open.
func (w *workerRef) manage() {
	backoff := w.d.opts.ReconnectMin
	connected := false
	for {
		select {
		case <-w.d.closed:
			return
		case <-w.stop:
			return
		default:
		}
		conn, welcome, err := w.dial()
		if err != nil {
			w.recordFailure()
			select {
			case <-w.d.closed:
				return
			case <-w.stop:
				return
			case <-time.After(backoff):
			}
			// Decorrelated jitter: frontends that lost the same worker at
			// the same instant spread their redials instead of thundering
			// back in lockstep.
			backoff = registry.JitterBackoff(backoff, w.d.opts.ReconnectMin, w.d.opts.ReconnectMax)
			continue
		}
		if connected {
			w.reconnects.Add(1)
		}
		connected = true
		backoff = w.d.opts.ReconnectMin
		w.attach(conn, welcome)

		pingStop := make(chan struct{})
		go w.pingLoop(conn, pingStop)
		err = w.readLoop(conn)
		close(pingStop)
		conn.Close()
		w.detach(conn, err)
		w.recordFailure()
	}
}

func (w *workerRef) dial() (*wire.Conn, *wire.Welcome, error) {
	nc, err := w.d.opts.Dial(w.addr)
	if err != nil {
		return nil, nil, err
	}
	conn := wire.NewConn(nc)
	// Bound the handshake: a Welcome lost in transit must surface as a
	// dial failure and a backoff retry, not a manager wedged forever on
	// the read.
	conn.SetReadDeadline(time.Now().Add(w.d.opts.OpenTimeout))
	welcome, err := conn.Handshake()
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	conn.SetReadDeadline(time.Time{})
	return conn, welcome, nil
}

func (w *workerRef) attach(conn *wire.Conn, welcome *wire.Welcome) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.conn = conn
	w.epoch++
	w.name = welcome.Worker
	w.draining = false
	w.known = make(map[string]bool, len(welcome.Pipelines))
	for _, id := range welcome.Pipelines {
		w.known[id] = true
	}
	w.sessions = make(map[uint64]placedSession)
	w.pending = make(map[uint64]chan *wire.SessionOpened)
	w.ensure = make(map[string][]chan *wire.PipelineReady)
	// A successful handshake is the breaker's probe: it closes.
	w.consecFails = 0
	w.openUntil = time.Time{}
	w.lastPong.Store(time.Now().UnixNano())
}

// detach hands every session placed over the dead connection to the
// failover path (or fails it, when it cannot be replayed). The cause
// names the worker, so a client whose session could not be recovered
// sees exactly why its stream died while unrelated sessions keep
// running.
func (w *workerRef) detach(conn *wire.Conn, cause error) {
	w.mu.Lock()
	if w.conn != conn {
		w.mu.Unlock()
		return
	}
	w.conn = nil
	sessions := w.sessions
	pending := w.pending
	ensure := w.ensure
	w.sessions = nil
	w.pending = nil
	w.ensure = nil
	name := w.name
	w.mu.Unlock()

	err := fmt.Errorf("cluster: worker %s at %s lost: %v", name, w.addr, cause)
	for _, rs := range sessions {
		rs.connLost(err)
	}
	for _, ch := range pending {
		close(ch)
	}
	for _, chs := range ensure {
		for _, ch := range chs {
			close(ch)
		}
	}
}

func (w *workerRef) recordFailure() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.consecFails++
	if w.consecFails >= w.d.opts.BreakerFailures {
		w.openUntil = time.Now().Add(w.d.opts.BreakerCooldown)
	}
}

// breakerState reports "closed", "open", or "half-open". Half-open
// means the cooldown elapsed: the next placement may probe the worker,
// and a handshake success closes the breaker again.
func (w *workerRef) breakerState() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.breakerStateLocked()
}

func (w *workerRef) breakerStateLocked() string {
	if w.consecFails < w.d.opts.BreakerFailures {
		return "closed"
	}
	if time.Now().Before(w.openUntil) {
		return "open"
	}
	return "half-open"
}

// placeable reports whether new sessions may land here: connected, not
// draining, not removed from the fleet, breaker not open.
func (w *workerRef) placeable() bool {
	if w.halted() {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.conn != nil && !w.draining && w.breakerStateLocked() != "open"
}

// remainingCyc reports the capacity left after the analysis-priced
// demand of every session currently placed here — the bin-packing
// signal in registered mode.
func (w *workerRef) remainingCyc() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	rem := w.capacity
	for _, ps := range w.sessions {
		rem -= ps.demandCyc()
	}
	return rem
}

func (w *workerRef) sessionCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.sessions)
}

func (w *workerRef) pingLoop(conn *wire.Conn, stop chan struct{}) {
	t := time.NewTicker(w.d.opts.PingInterval)
	defer t.Stop()
	nonce := uint64(0)
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			nonce++
			if conn.Write(&wire.Ping{Nonce: nonce}) != nil {
				conn.Close()
				return
			}
			last := time.Unix(0, w.lastPong.Load())
			if time.Since(last) > w.d.opts.PingTimeout {
				// Health check failed: the worker stopped answering.
				conn.Close()
				return
			}
		}
	}
}

func (w *workerRef) readLoop(conn *wire.Conn) error {
	for {
		m, err := conn.Read()
		if err != nil {
			return err
		}
		switch m := m.(type) {
		case *wire.Pong:
			w.lastPong.Store(time.Now().UnixNano())
		case *wire.PipelineReady:
			w.mu.Lock()
			chs := w.ensure[m.ID]
			delete(w.ensure, m.ID)
			if m.Err == "" && w.known != nil {
				w.known[m.ID] = true
			}
			w.mu.Unlock()
			for _, ch := range chs {
				ch <- m
			}
		case *wire.SessionOpened:
			w.mu.Lock()
			ch := w.pending[m.SID]
			delete(w.pending, m.SID)
			w.mu.Unlock()
			if ch != nil {
				ch <- m
			}
			if err := w.drainedHangup(); err != nil {
				return err
			}
		case *wire.Result:
			w.resultsRecv.Add(1)
			if rs := w.session(m.SID); rs != nil {
				rs.deliver(w, m)
			} else {
				releaseResult(m)
			}
		case *wire.Credit:
			if rs := w.session(m.SID); rs != nil {
				rs.addCredits(int(m.N))
			}
		case *wire.SessionClosed:
			w.mu.Lock()
			rs := w.sessions[m.SID]
			delete(w.sessions, m.SID)
			w.mu.Unlock()
			if rs != nil {
				rs.onClosed(w, m)
			}
			if err := w.drainedHangup(); err != nil {
				return err
			}
		case *wire.Error:
			if m.SID == 0 {
				return fmt.Errorf("worker error: %s", m.Msg)
			}
			if rs := w.session(m.SID); rs != nil {
				rs.failSession(fmt.Errorf("cluster: worker %s: %s", w.addr, m.Msg))
			}
		case *wire.EdgeFrame:
			if rs := w.session(m.SID); rs != nil {
				rs.edgeFrame(w, m)
			} else {
				releaseWireItems(m.Items)
			}
		case *wire.EdgeCredit:
			if rs := w.session(m.SID); rs != nil {
				rs.edgeCredit(w, m)
			}
		case *wire.Goaway:
			// The worker is draining: stop placing sessions here and move
			// every resident session to a survivor (falling back to a
			// quiesce-and-close when migration is impossible) before the
			// worker exits.
			w.mu.Lock()
			w.draining = true
			sessions := make([]placedSession, 0, len(w.sessions))
			for _, rs := range w.sessions {
				sessions = append(sessions, rs)
			}
			w.mu.Unlock()
			for _, rs := range sessions {
				rs.drainClose(w)
			}
			if err := w.drainedHangup(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unexpected %s frame", m.Type())
		}
	}
}

// errDrained ends the read loop of a fully-drained connection: the
// frontend hangs up so the worker sees a clean EOF with nothing unread
// (closing from the worker side could RST the final SessionClosed away).
var errDrained = errors.New("worker drained")

// drainedHangup reports errDrained once a draining worker has no
// sessions or opens left on this connection.
func (w *workerRef) drainedHangup() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.draining && len(w.sessions) == 0 && len(w.pending) == 0 && len(w.ensure) == 0 {
		return errDrained
	}
	return nil
}

func (w *workerRef) session(sid uint64) placedSession {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sessions[sid]
}

// open ensures the pipeline exists on the worker, then opens a remote
// session over the current connection.
func (w *workerRef) open(p *serve.Pipeline, opts serve.OpenOptions) (*remoteSession, error) {
	rs := &remoteSession{
		d:           w.d,
		p:           p,
		maxInFlight: opts.MaxInFlight,
		credits:     opts.MaxInFlight,
		results:     make(chan *runtime.StreamResult, opts.MaxInFlight+1),
		done:        make(chan struct{}),
	}
	if opts.Deadline > 0 {
		rs.deadline = time.Now().Add(opts.Deadline)
	}
	if w.d.opts.ReplayBudget < 0 {
		rs.logFull = true // failover disabled by configuration
	}
	att, err := w.place(rs)
	if err != nil {
		return nil, err
	}
	rs.mu.Lock()
	rs.att = att
	rs.statsID = att.sid
	rs.opened = true
	rs.lastProgress = time.Now()
	rs.mu.Unlock()
	if w.d.opts.StallTimeout > 0 {
		go rs.stallWatch()
	}
	return rs, nil
}

// place opens a worker-side session for rs on this worker and returns
// the resulting attachment without installing it — the caller decides
// when feeds may flow (immediately for a first open, only after the
// history replay for a failover).
func (w *workerRef) place(rs *remoteSession) (*attachment, error) {
	w.mu.Lock()
	conn := w.conn
	needEnsure := !w.known[rs.p.ID]
	w.mu.Unlock()
	if conn == nil {
		return nil, fmt.Errorf("cluster: worker %s not connected", w.addr)
	}
	if needEnsure {
		if err := w.ensurePipeline(conn, rs.p); err != nil {
			return nil, err
		}
	}

	var deadlineMs uint32
	if !rs.deadline.IsZero() {
		rem := time.Until(rs.deadline)
		if rem <= 0 {
			return nil, fmt.Errorf("cluster: session deadline exceeded before open on %s", w.addr)
		}
		ms := int64((rem + time.Millisecond - 1) / time.Millisecond)
		if ms > int64(^uint32(0)) {
			ms = int64(^uint32(0))
		}
		deadlineMs = uint32(ms)
	}

	sid := w.d.nextSID.Add(1)
	reply := make(chan *wire.SessionOpened, 1)
	// Register the session before OpenSession hits the wire: any event
	// naming this sid afterwards — an unsolicited SessionClosed, a
	// Goaway drain — finds it in w.sessions instead of landing in an
	// unregistered gap where it would be silently dropped (leaving the
	// session to hang until CloseTimeout and the worker's drain to
	// block until its context expires).
	w.mu.Lock()
	if w.conn != conn {
		w.mu.Unlock()
		return nil, fmt.Errorf("cluster: worker %s reconnected during open", w.addr)
	}
	w.pending[sid] = reply
	w.sessions[sid] = rs
	w.mu.Unlock()

	m := &wire.OpenSession{
		SID:         sid,
		Pipeline:    rs.p.ID,
		MaxInFlight: uint32(rs.maxInFlight),
		DeadlineMs:  deadlineMs,
	}
	if err := conn.Write(m); err != nil {
		w.unregister(conn, sid)
		conn.Close()
		return nil, fmt.Errorf("cluster: open on %s: %w", w.addr, err)
	}
	select {
	case m, ok := <-reply:
		if !ok {
			return nil, fmt.Errorf("cluster: worker %s lost during open", w.addr)
		}
		if m.Err != "" {
			w.unregister(conn, sid)
			return nil, fmt.Errorf("cluster: worker %s refused session: %s", w.addr, m.Err)
		}
	case <-time.After(w.d.opts.OpenTimeout):
		w.unregister(conn, sid)
		return nil, fmt.Errorf("cluster: open on %s timed out after %v", w.addr, w.d.opts.OpenTimeout)
	}
	return &attachment{w: w, sid: sid, conn: conn}, nil
}

// unregister drops a failed open's session and pending entries. When
// that leaves a draining connection fully idle it hangs the connection
// up here: the read loop's drained-hangup check only runs on frame
// arrival, and no further frame may ever come.
func (w *workerRef) unregister(conn *wire.Conn, sid uint64) {
	w.mu.Lock()
	if w.conn != conn {
		w.mu.Unlock()
		return
	}
	delete(w.pending, sid)
	delete(w.sessions, sid)
	hangup := w.draining && len(w.sessions) == 0 && len(w.pending) == 0 && len(w.ensure) == 0
	w.mu.Unlock()
	if hangup {
		conn.Close()
	}
}

// ensurePipeline asks the worker to register p, shipping the JSON
// descriptor when the pipeline has one; suite pipelines compile from
// their ID alone.
func (w *workerRef) ensurePipeline(conn *wire.Conn, p *serve.Pipeline) error {
	reply := make(chan *wire.PipelineReady, 1)
	w.mu.Lock()
	if w.conn != conn {
		w.mu.Unlock()
		return fmt.Errorf("cluster: worker %s reconnected during ensure", w.addr)
	}
	first := len(w.ensure[p.ID]) == 0
	w.ensure[p.ID] = append(w.ensure[p.ID], reply)
	w.mu.Unlock()

	if first {
		m := &wire.EnsurePipeline{ID: p.ID, Source: p.Source, Desc: p.Descriptor()}
		if err := conn.Write(m); err != nil {
			conn.Close()
			return fmt.Errorf("cluster: ensure %q on %s: %w", p.ID, w.addr, err)
		}
	}
	select {
	case m, ok := <-reply:
		if !ok {
			return fmt.Errorf("cluster: worker %s lost during ensure", w.addr)
		}
		if m.Err != "" {
			return fmt.Errorf("cluster: worker %s cannot serve %q: %s", w.addr, p.ID, m.Err)
		}
		return nil
	case <-time.After(w.d.opts.OpenTimeout):
		w.abandonEnsure(p.ID, reply)
		return fmt.Errorf("cluster: ensure %q on %s timed out", p.ID, w.addr)
	}
}

// abandonEnsure removes a timed-out waiter from the ensure list so one
// unanswered EnsurePipeline cannot wedge every later ensure of the same
// pipeline: once the list drains back to empty, the next caller sends a
// fresh EnsurePipeline frame instead of waiting on the dead request.
func (w *workerRef) abandonEnsure(id string, ch chan *wire.PipelineReady) {
	w.mu.Lock()
	defer w.mu.Unlock()
	chs := w.ensure[id]
	for i, c := range chs {
		if c == ch {
			chs = append(chs[:i], chs[i+1:]...)
			break
		}
	}
	if len(chs) == 0 {
		delete(w.ensure, id)
	} else {
		w.ensure[id] = chs
	}
}

func (w *workerRef) stats() WorkerStats {
	w.mu.Lock()
	state := "down"
	if w.conn != nil {
		state = "connected"
	}
	if w.halted() {
		state = "removed"
	}
	credits := 0
	demand := 0.0
	for _, rs := range w.sessions {
		credits += rs.creditsOut()
		demand += rs.demandCyc()
	}
	member := w.member
	if member == w.addr {
		member = "" // static mode: the member column adds nothing
	}
	s := WorkerStats{
		Addr:            w.addr,
		Name:            w.name,
		Member:          member,
		State:           state,
		Breaker:         w.breakerStateLocked(),
		Draining:        w.draining,
		Sessions:        len(w.sessions),
		CapacityCyc:     w.capacity,
		DemandCyc:       demand,
		CreditsInFlight: credits,
	}
	w.mu.Unlock()
	s.FramesRouted = w.framesRouted.Load()
	s.ResultsReceived = w.resultsRecv.Load()
	s.Reconnects = w.reconnects.Load()
	return s
}

func releaseResult(m *wire.Result) {
	for _, out := range m.Outputs {
		for _, win := range out.Wins {
			win.Release()
		}
	}
}

// attachment binds a session to one worker-side session instance: the
// connection its frames travel on and the SID namespacing them there.
// Failover replaces the whole attachment atomically; a nil attachment
// means the session is between workers (feeds see backpressure).
type attachment struct {
	w    *workerRef
	sid  uint64
	conn *wire.Conn
}

// logEntry is one fed frame in the session's replay history. Generated
// frames (nil inputs) carry nothing — the worker regenerates them from
// the frame index; explicit inputs hold one arena reference per window
// until the session ends.
type logEntry struct {
	inputs []wire.NamedWindow
}

// remoteSession proxies one streaming session to a worker. It
// implements serve.SessionHandle with the same error vocabulary as the
// in-process runtime: ErrQueueFull when out of credits, ErrBadFrame on
// local input validation, a "timed out" error on Collect deadlines.
//
// Failover model: every fed frame is appended to a replay log. When
// the session's worker dies, the dispatcher reopens it on a surviving
// worker and replays the entire history from seq 0 — frame generators
// are keyed by absolute frame index and kernels may carry cross-frame
// state, so only a full re-run reproduces byte-identical outputs.
// Results the client already saw arrive again and are deduplicated by
// seq (at-most-once delivery); fresh results flow as if nothing
// happened.
type remoteSession struct {
	d           *Dispatcher
	p           *serve.Pipeline
	maxInFlight int
	deadline    time.Time // zero = unbounded
	statsID     uint64    // stable key for the /metrics sessions table
	admitted    float64   // cycles/sec held from the admission pool; returned when the session ends

	// sendMu orders this session's frames on the wire: TryFeed holds it
	// from seq assignment through the connection write, so concurrent
	// feeders cannot interleave Seq order (the worker tears the session
	// down on any gap), and a CloseSession always follows the last
	// accepted feed.
	sendMu sync.Mutex

	mu           sync.Mutex
	att          *attachment // nil while detached / failing over
	credits      int
	lastProgress time.Time // last result/credit arrival, for the stall watchdog
	fed          int64
	completed    int64 // results delivered to the results channel (dedup watermark)
	collected    int64 // results handed to Collect callers
	log          []logEntry
	logBytes     int64
	logFull      bool // replay budget exceeded: no longer failoverable
	opened       bool // initial placement acknowledged
	failingOver  bool // a failover goroutine owns recovery right now
	err          error
	noFeed       error // feeds refused (worker draining); results still flow
	ended        bool  // done closed (failure or SessionClosed)
	closeSent    bool

	results chan *runtime.StreamResult
	done    chan struct{}
}

// failSession marks the session dead and frees its replay log; Collect
// surfaces the error after draining buffered results, feeds fail
// immediately.
func (rs *remoteSession) failSession(err error) {
	rs.mu.Lock()
	if rs.ended {
		rs.mu.Unlock()
		return
	}
	rs.ended = true
	if rs.err == nil {
		rs.err = err
	}
	rs.releaseLogLocked()
	admitted := rs.admitted
	rs.admitted = 0
	rs.mu.Unlock()
	if admitted > 0 {
		// Every session termination funnels through here exactly once
		// (guarded by rs.ended), so the admission pool balances.
		rs.d.releaseAdmission(admitted)
	}
	close(rs.done)
}

// releaseLogLocked returns every retained replay window to the arena.
// Caller holds rs.mu. In-flight encodes are safe: they take their own
// reference under rs.mu before writing.
func (rs *remoteSession) releaseLogLocked() {
	for _, e := range rs.log {
		for _, in := range e.inputs {
			in.Win.Release()
		}
	}
	rs.log = nil
	rs.logBytes = 0
}

// logFeedLocked appends one fed frame to the replay history, taking
// over the caller's window references. Caller holds rs.mu. Returns
// false when the frame was not retained — the budget is exhausted and
// the session just stopped being failoverable (its whole history was
// released, since a partial history can never replay).
func (rs *remoteSession) logFeedLocked(entry logEntry) bool {
	if rs.logFull {
		return false
	}
	var sz int64
	for _, in := range entry.inputs {
		sz += int64(in.Win.W) * int64(in.Win.H) * 8
	}
	if rs.logBytes+sz > rs.d.opts.ReplayBudget {
		rs.logFull = true
		rs.releaseLogLocked()
		return false
	}
	rs.log = append(rs.log, entry)
	rs.logBytes += sz
	return true
}

// connLost reacts to the session's connection dying: recoverable
// sessions hand off to a failover goroutine, the rest fail with a
// typed serve.ErrSessionLost. A session whose close already fully
// drained just completes cleanly.
func (rs *remoteSession) connLost(cause error) {
	rs.mu.Lock()
	if rs.ended {
		rs.mu.Unlock()
		return
	}
	rs.att = nil
	rs.credits = 0
	if rs.failingOver {
		// The running failover's writes will fail and it retries or
		// sheds on its own deadline; a second recovery goroutine would
		// race it.
		rs.mu.Unlock()
		return
	}
	if !rs.opened {
		// Initial placement still in flight: open() surfaces the error
		// and the dispatcher retries placement itself.
		rs.mu.Unlock()
		rs.failSession(cause)
		return
	}
	if rs.closeSent && rs.completed == rs.fed {
		// Everything fed was delivered and the close was already sent;
		// only the SessionClosed ack died with the worker. That is a
		// clean shutdown, not a lost session.
		rs.mu.Unlock()
		rs.failSession(runtime.ErrSessionClosed)
		return
	}
	if rs.logFull {
		rs.mu.Unlock()
		rs.failSession(fmt.Errorf("%w: %v (session past its replay budget)", serve.ErrSessionLost, cause))
		return
	}
	rs.failingOver = true
	rs.mu.Unlock()
	go rs.failover(cause, false)
}

// stallWatch runs for the session's lifetime and recovers it from
// silent stalls — the failure mode connection health checks cannot
// see: a frame lost in transit on an otherwise-healthy connection, or
// a worker that wedged without dying. With frames in flight and no
// progress (no result, no credit) within StallTimeout, the session
// detaches from its worker — aborting the wedged worker-side half —
// and fails over exactly as if the connection had died: the replay
// resends whatever was lost. While idle it also resyncs credits to
// the full window, healing a credit grant lost in transit that would
// otherwise shrink the feed window forever.
func (rs *remoteSession) stallWatch() {
	interval := rs.d.opts.StallTimeout / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-rs.done:
			return
		case <-rs.d.closed:
			return
		case <-t.C:
		}
		rs.mu.Lock()
		if rs.ended || rs.att == nil || rs.failingOver {
			rs.mu.Unlock()
			continue
		}
		if rs.completed >= rs.fed {
			// Idle: the worker owes nothing, so its queue is empty and
			// the true window is the full maxInFlight.
			rs.lastProgress = time.Now()
			rs.credits = rs.maxInFlight
			rs.mu.Unlock()
			continue
		}
		if time.Since(rs.lastProgress) <= rs.d.opts.StallTimeout {
			rs.mu.Unlock()
			continue
		}
		att := rs.att
		rs.att = nil
		rs.credits = 0
		cause := fmt.Errorf("cluster: worker %s stalled: no progress on %d in-flight frames within %v",
			att.w.addr, rs.fed-rs.completed, rs.d.opts.StallTimeout)
		recoverable := !rs.logFull
		if recoverable {
			rs.failingOver = true
		}
		rs.mu.Unlock()
		// Abort the wedged worker-side session and forget its sid; a
		// late result or close notice for it now finds nothing. The
		// writes happen outside rs.mu (unregister takes w.mu, which
		// stats paths acquire before rs.mu).
		att.conn.Write(&wire.Error{SID: att.sid, Msg: "session stalled"})
		att.w.unregister(att.conn, att.sid)
		if recoverable {
			go rs.failover(cause, false)
			continue
		}
		rs.failSession(fmt.Errorf("%w: %v (session past its replay budget)", serve.ErrSessionLost, cause))
	}
}

// failover reopens the session on a surviving worker and replays its
// history, retrying across workers until the failover timeout (or the
// session deadline) expires — then sheds with a typed 503. migration
// marks a planned move off a draining worker, counted separately from
// crash recovery in /metrics.
func (rs *remoteSession) failover(cause error, migration bool) {
	deadline := time.Now().Add(rs.d.opts.FailoverTimeout)
	if !rs.deadline.IsZero() && rs.deadline.Before(deadline) {
		deadline = rs.deadline
	}
	lastErr := cause
	for {
		select {
		case <-rs.done:
			return
		case <-rs.d.closed:
			rs.failSession(fmt.Errorf("%w: dispatcher closed during failover: %v", serve.ErrSessionLost, lastErr))
			return
		default:
		}
		if time.Now().After(deadline) {
			rs.d.shedTotal.Add(1)
			rs.failSession(fmt.Errorf("%w: %w: session not recovered within failover window: %v",
				serve.ErrSessionLost, serve.ErrUnavailable, lastErr))
			return
		}
		w := rs.d.pick(nil)
		if w == nil {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		err := rs.reattach(w, deadline)
		if err == nil {
			if migration {
				rs.d.sessionsMigrated.Add(1)
			} else {
				rs.d.sessionsFailedOver.Add(1)
			}
			return
		}
		if errors.Is(err, errSessionEnded) {
			return
		}
		lastErr = err
	}
}

// errSessionEnded aborts a replay whose session terminated concurrently
// (client close timeout, dispatcher shutdown).
var errSessionEnded = errors.New("session ended during failover")

// reattach opens a fresh worker-side session on w and replays the full
// feed history from seq 0, paced by the new session's credits. Only
// after the last historical frame is on the wire does the attachment
// install and new feeds flow, preserving seq order. Duplicate results
// produced by the replay are dropped in deliver.
func (rs *remoteSession) reattach(w *workerRef, deadline time.Time) error {
	att, err := w.place(rs)
	if err != nil {
		return err
	}
	abort := func(reason string) {
		// Tear the half-replayed worker session down and forget it;
		// a late SessionClosed for this sid finds nothing.
		att.conn.Write(&wire.Error{SID: att.sid, Msg: reason})
		w.unregister(att.conn, att.sid)
	}

	rs.mu.Lock()
	total := int64(len(rs.log))
	rs.credits = rs.maxInFlight
	rs.mu.Unlock()

	for seq := int64(0); seq < total; seq++ {
		for {
			rs.mu.Lock()
			if rs.ended {
				rs.mu.Unlock()
				abort("session ended during replay")
				return errSessionEnded
			}
			if rs.credits > 0 {
				rs.credits--
				m := &wire.Feed{SID: att.sid, Seq: seq}
				for _, in := range rs.log[seq].inputs {
					// Hold an encode reference so a concurrent terminal
					// release cannot poison the samples mid-write.
					in.Win.Retain(1)
					m.Inputs = append(m.Inputs, in)
				}
				rs.mu.Unlock()
				err := att.conn.Write(m)
				for _, in := range m.Inputs {
					in.Win.Release()
				}
				if err != nil {
					att.conn.Close()
					w.unregister(att.conn, att.sid)
					return fmt.Errorf("cluster: replay to %s: %w", w.addr, err)
				}
				w.framesRouted.Add(1)
				rs.d.framesReplayed.Add(1)
				break
			}
			rs.mu.Unlock()
			// Waiting on credits that can never arrive is pointless once
			// the connection under us died; detach already unregistered
			// the sid, so just report and let the failover loop retry.
			w.mu.Lock()
			connAlive := w.conn == att.conn
			w.mu.Unlock()
			if !connAlive {
				return fmt.Errorf("cluster: worker %s lost mid-replay", w.addr)
			}
			if time.Now().After(deadline) {
				abort("replay stalled")
				return fmt.Errorf("cluster: replay to %s stalled at frame %d/%d", w.addr, seq, total)
			}
			time.Sleep(time.Millisecond)
		}
	}

	rs.mu.Lock()
	if rs.ended {
		rs.mu.Unlock()
		abort("session ended during replay")
		return errSessionEnded
	}
	rs.att = att
	rs.failingOver = false
	rs.lastProgress = time.Now()
	closeSent := rs.closeSent
	rs.mu.Unlock()
	if closeSent {
		// The client closed while we were between workers; finish the
		// close on the new attachment, after the last replayed feed.
		att.conn.Write(&wire.CloseSession{SID: att.sid})
	}
	return nil
}

// onClosed handles the worker's SessionClosed notice: a clean close
// surfaces ErrSessionClosed, a drain surfaces the draining notice, and
// a reported failure surfaces that error.
func (rs *remoteSession) onClosed(w *workerRef, m *wire.SessionClosed) {
	rs.mu.Lock()
	noFeed := rs.noFeed
	rs.mu.Unlock()
	var err error
	switch {
	case m.Err != "":
		err = fmt.Errorf("cluster: worker %s closed session: %s", w.addr, m.Err)
	case noFeed != nil:
		err = noFeed
	default:
		err = runtime.ErrSessionClosed
	}
	rs.failSession(err)
}

// drainClose reacts to the worker draining. The preferred path is a
// live migration: abort the resident instance and reuse the ordinary
// failover machinery — reopen on a survivor, replay the feed history,
// dedup the results — so the client's stream continues uninterrupted.
// When the session cannot migrate (replay budget spent, a failover
// already running, no surviving worker, or the placement never
// attached) it falls back to the pre-v7 quiesce-and-close: refuse
// further feeds, then close so everything already fed flushes.
func (rs *remoteSession) drainClose(w *workerRef) {
	rs.mu.Lock()
	if rs.ended || rs.closeSent {
		rs.mu.Unlock()
		return
	}
	migratable := rs.att != nil && !rs.failingOver && !rs.logFull && rs.opened
	rs.mu.Unlock()
	// pick touches worker locks that order before rs.mu, so probe for a
	// destination outside the session lock and re-validate after.
	if migratable && rs.d.pick(nil) != nil {
		rs.mu.Lock()
		if !rs.ended && !rs.closeSent && rs.att != nil && !rs.failingOver && !rs.logFull {
			att := rs.att
			rs.att = nil
			rs.credits = 0
			rs.failingOver = true
			rs.mu.Unlock()
			// Abort the resident instance outside rs.mu (unregister takes
			// w.mu, which stats paths acquire before rs.mu); the replay
			// regenerates anything it had in flight.
			att.conn.Write(&wire.Error{SID: att.sid, Msg: "session migrating off draining worker"})
			att.w.unregister(att.conn, att.sid)
			go rs.failover(fmt.Errorf("cluster: worker %s at %s draining", w.name, w.addr), true)
			return
		}
		rs.mu.Unlock()
	}
	rs.mu.Lock()
	if rs.ended || rs.closeSent {
		rs.mu.Unlock()
		return
	}
	if rs.failingOver {
		// A failover (possibly this very migration, when the drain
		// heartbeat races the worker's own Goaway) is already moving the
		// session; it reattaches to a non-draining worker, so closing
		// here would only end the client's stream early.
		rs.mu.Unlock()
		return
	}
	if rs.noFeed == nil {
		rs.noFeed = fmt.Errorf("cluster: worker %s at %s is draining", w.name, w.addr)
	}
	rs.closeSent = true
	detached := rs.att == nil
	rs.mu.Unlock()
	if detached {
		// Initial placement or a torn-down attachment: nothing to close
		// on this worker.
		return
	}
	// A send failure means the connection died under the close; connLost
	// owns recovery, and with closeSent set the failover (or the clean
	// fully-drained path) finishes the close.
	rs.send(&wire.CloseSession{})
}

// deliver queues a result for Collect, deduplicating failover replays:
// completed is the watermark of results already handed over, so a
// replayed frame below it is dropped (at-most-once) and anything past
// it is a protocol break. The channel is sized for the credit bound,
// so a blocked send means the worker broke the protocol.
func (rs *remoteSession) deliver(w *workerRef, m *wire.Result) {
	outputs := make(map[string][]frame.Window, len(m.Outputs))
	for _, out := range m.Outputs {
		outputs[out.Name] = out.Wins
	}
	rs.mu.Lock()
	if rs.ended || m.Seq < rs.completed {
		rs.mu.Unlock()
		serveReleaseOutputs(outputs)
		return
	}
	if m.Seq > rs.completed {
		rs.mu.Unlock()
		serveReleaseOutputs(outputs)
		rs.failSession(fmt.Errorf("cluster: worker %s delivered frame %d, want %d", w.addr, m.Seq, rs.completed))
		return
	}
	rs.completed++
	rs.lastProgress = time.Now()
	rs.mu.Unlock()
	res := &runtime.StreamResult{Seq: m.Seq, Outputs: outputs}
	select {
	case rs.results <- res:
	default:
		serveReleaseOutputs(outputs)
		rs.failSession(fmt.Errorf("cluster: worker %s overran the result window", w.addr))
	}
}

// edgeFrame and edgeCredit are partition-plane frames; a whole session
// receiving one means the worker broke the protocol.
func (rs *remoteSession) edgeFrame(w *workerRef, m *wire.EdgeFrame) {
	releaseWireItems(m.Items)
	rs.failSession(fmt.Errorf("cluster: worker %s sent an edge frame to an unpartitioned session", w.addr))
}

func (rs *remoteSession) edgeCredit(w *workerRef, m *wire.EdgeCredit) {
	rs.failSession(fmt.Errorf("cluster: worker %s sent an edge credit to an unpartitioned session", w.addr))
}

func (rs *remoteSession) sessionRow() (SessionStats, uint64) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	row := SessionStats{
		Pipeline:    rs.p.ID,
		Partitions:  1,
		ReplayBytes: rs.logBytes,
	}
	if rs.att != nil {
		row.Workers = []string{rs.att.w.addr}
	}
	return row, rs.statsID
}

func (rs *remoteSession) addCredits(n int) {
	rs.mu.Lock()
	rs.credits += n
	if rs.credits > rs.maxInFlight {
		rs.credits = rs.maxInFlight
	}
	rs.lastProgress = time.Now()
	rs.mu.Unlock()
}

func (rs *remoteSession) demandCyc() float64 { return rs.p.CyclesPerSec }

func (rs *remoteSession) creditsOut() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := rs.maxInFlight - rs.credits
	if out < 0 {
		out = 0
	}
	return out
}

// TryFeed validates the frame locally (same checks and error values as
// runtime.Session), spends a credit, logs the frame for failover
// replay, and ships it. Zero credits — or a failover in progress —
// means ErrQueueFull, exactly the local backpressure signal.
// Ownership matches the local runtime's Feed: on success the transport
// owns the pooled inputs; with failover enabled they stay retained in
// the replay log until the session ends, otherwise they release once
// encoded.
func (rs *remoteSession) TryFeed(inputs map[string]frame.Window) (int64, error) {
	if err := validateInputs(rs.p, inputs); err != nil {
		return 0, err
	}
	rs.sendMu.Lock()
	rs.mu.Lock()
	if rs.ended {
		err := rs.err
		rs.mu.Unlock()
		rs.sendMu.Unlock()
		if errors.Is(err, runtime.ErrSessionClosed) {
			return 0, runtime.ErrSessionClosed
		}
		return 0, err
	}
	if rs.noFeed != nil {
		err := rs.noFeed
		rs.mu.Unlock()
		rs.sendMu.Unlock()
		return 0, err
	}
	// Three bounds, all ErrQueueFull: a failover in progress (the
	// session has no wire until the replay lands), credits (the worker
	// still owes results), and fed-minus-collected (the caller stopped
	// collecting — the same bound a local session enforces, and what
	// keeps buffered results within the channel's capacity).
	if rs.att == nil || rs.credits <= 0 || rs.fed-rs.collected >= int64(rs.maxInFlight) {
		rs.mu.Unlock()
		rs.sendMu.Unlock()
		return 0, runtime.ErrQueueFull
	}
	att := rs.att
	rs.credits--
	seq := rs.fed
	rs.fed++
	rs.lastProgress = time.Now()
	m := &wire.Feed{SID: att.sid, Seq: seq}
	var entry logEntry
	for name, win := range inputs {
		nw := wire.NamedWindow{Name: name, Win: win}
		m.Inputs = append(m.Inputs, nw)
		entry.inputs = append(entry.inputs, nw)
	}
	if rs.logFeedLocked(entry) {
		// The log took over the caller's references; hold an extra
		// encode reference per window so a concurrent terminal release
		// cannot poison the samples mid-write.
		for _, in := range m.Inputs {
			in.Win.Retain(1)
		}
	}
	rs.mu.Unlock()

	err := att.conn.Write(m)
	for _, in := range m.Inputs {
		in.Win.Release()
	}
	rs.sendMu.Unlock()
	if err != nil {
		// The connection died under the feed. The frame is in the
		// replay log, so the session's fate rests with connLost: either
		// a failover replays it or the session fails with a typed
		// error. Either way this feed was accepted.
		att.conn.Close()
	}
	att.w.framesRouted.Add(1)
	return seq, nil
}

// send writes one session-scoped frame over the current attachment,
// stamping its SID. Caller passes the message with SID zeroed.
func (rs *remoteSession) send(m wire.Msg) error {
	rs.sendMu.Lock()
	defer rs.sendMu.Unlock()
	rs.mu.Lock()
	att := rs.att
	rs.mu.Unlock()
	if att == nil {
		return errors.New("connection lost")
	}
	switch m := m.(type) {
	case *wire.CloseSession:
		m.SID = att.sid
	case *wire.Feed:
		m.SID = att.sid
	}
	if err := att.conn.Write(m); err != nil {
		att.conn.Close()
		return err
	}
	return nil
}

// workerAddr reports the address of the worker currently executing the
// session, or "" while it is detached (failing over or failed).
func (rs *remoteSession) workerAddr() string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.att == nil {
		return ""
	}
	return rs.att.w.addr
}

func (rs *remoteSession) sessionErr() error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.err != nil {
		return rs.err
	}
	return errors.New("cluster: session failed")
}

// Collect returns the next completed frame in order. Its timeout error
// says "timed out" so the HTTP layer maps it to 504 like a local
// session's.
func (rs *remoteSession) Collect(timeout time.Duration) (*runtime.StreamResult, error) {
	var tc <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		tc = t.C
	}
	select {
	case res := <-rs.results:
		rs.noteCollected()
		return res, nil
	case <-tc:
		return nil, fmt.Errorf("cluster: session collect timed out after %v", timeout)
	case <-rs.done:
		// Results buffered before the failure are still deliverable.
		select {
		case res := <-rs.results:
			rs.noteCollected()
			return res, nil
		default:
		}
		return nil, rs.sessionErr()
	}
}

func (rs *remoteSession) noteCollected() {
	rs.mu.Lock()
	rs.collected++
	rs.mu.Unlock()
}

// Fed reports frames shipped to the worker.
func (rs *remoteSession) Fed() int64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.fed
}

// Completed reports results received back from the worker.
func (rs *remoteSession) Completed() int64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.completed
}

// InFlight reports frames fed but not yet collected by the caller.
func (rs *remoteSession) InFlight() int64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.fed - rs.collected
}

// Close asks the worker to drain the session and waits for its
// SessionClosed (bounded by CloseTimeout), then releases any buffered
// results the caller never collected. It returns the session's failure,
// if any — a clean shutdown (including one recovered by failover)
// returns nil.
func (rs *remoteSession) Close() error {
	rs.mu.Lock()
	already := rs.closeSent
	rs.closeSent = true
	ended := rs.ended
	detached := rs.att == nil
	rs.mu.Unlock()
	if !already && !ended && !detached {
		// A send failure means the connection died under the close;
		// connLost owns recovery and the failover re-sends the close
		// (closeSent is set). If the session is unrecoverable, connLost
		// fails it and the wait below returns immediately.
		rs.send(&wire.CloseSession{})
	}
	select {
	case <-rs.done:
	case <-time.After(rs.d.opts.CloseTimeout):
		rs.failSession(fmt.Errorf("cluster: session close not acknowledged within %v",
			rs.d.opts.CloseTimeout))
	}
	// Drop the session from its worker's table (already gone if the
	// worker reported SessionClosed or the connection died).
	rs.mu.Lock()
	att := rs.att
	rs.mu.Unlock()
	if att != nil {
		att.w.mu.Lock()
		if att.w.sessions != nil {
			delete(att.w.sessions, att.sid)
		}
		att.w.mu.Unlock()
	}
	for {
		select {
		case res := <-rs.results:
			serveReleaseOutputs(res.Outputs)
		default:
			rs.mu.Lock()
			err := rs.err
			rs.mu.Unlock()
			if errors.Is(err, runtime.ErrSessionClosed) {
				return nil
			}
			return err
		}
	}
}

// validateInputs applies the runtime's feed-time checks locally so bad
// frames bounce at the frontend without a round trip, with the same
// ErrBadFrame tag the HTTP layer maps to 400.
func validateInputs(p *serve.Pipeline, inputs map[string]frame.Window) error {
	g := p.Graph()
	for name, w := range inputs {
		n := g.Node(name)
		if n == nil || n.Kind != graph.KindInput {
			return fmt.Errorf("%w: unknown input %q", runtime.ErrBadFrame, name)
		}
		if w.W != n.FrameSize.W || w.H != n.FrameSize.H {
			return fmt.Errorf("%w: input %q is %dx%d, want %dx%d",
				runtime.ErrBadFrame, name, w.W, w.H, n.FrameSize.W, n.FrameSize.H)
		}
		if want := n.Output("out").Elem; w.Kind != want {
			return fmt.Errorf("%w: input %q carries %s samples, declared %s",
				runtime.ErrBadFrame, name, w.Kind, want)
		}
	}
	return nil
}

// serveReleaseOutputs returns a result's pooled windows to the arena.
func serveReleaseOutputs(outs map[string][]frame.Window) {
	for _, ws := range outs {
		for _, w := range ws {
			w.Release()
		}
	}
}
