package registry

import (
	"fmt"
	"net"
	"testing"
	"time"
)

func TestRingDeterministicAcrossJoinOrder(t *testing.T) {
	a := NewRing(64)
	b := NewRing(64)
	members := []string{"w0", "w1", "w2", "w3", "w4"}
	for _, m := range members {
		a.Add(m)
	}
	for i := len(members) - 1; i >= 0; i-- {
		b.Add(members[i])
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("session-%d", i)
		if a.Lookup(key) != b.Lookup(key) {
			t.Fatalf("key %q: ring A says %s, ring B says %s — placement depends on join order",
				key, a.Lookup(key), b.Lookup(key))
		}
	}
}

func TestRingLookupN(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("w%d", i))
	}
	got := r.LookupN("some-session", 3)
	if len(got) != 3 {
		t.Fatalf("LookupN(3) returned %d members: %v", len(got), got)
	}
	if got[0] != r.Lookup("some-session") {
		t.Fatalf("LookupN[0]=%s != Lookup=%s", got[0], r.Lookup("some-session"))
	}
	seen := map[string]bool{}
	for _, m := range got {
		if seen[m] {
			t.Fatalf("LookupN returned duplicate member %s: %v", m, got)
		}
		seen[m] = true
	}
	if n := len(r.LookupN("k", 10)); n != 4 {
		t.Fatalf("LookupN(10) on 4-member ring returned %d", n)
	}
	if NewRing(8).Lookup("k") != "" || NewRing(8).LookupN("k", 2) != nil {
		t.Fatal("empty ring should return no members")
	}
}

// TestRingRebalanceBound is the ISSUE's property test: on a single
// leave, the only keys that move are those the departed member owned —
// exactly K/n in expectation, and never a key between two survivors.
// On a single join, the new member takes ~K/(n+1) keys and no key
// moves between two old members.
func TestRingRebalanceBound(t *testing.T) {
	const K = 2000
	keys := make([]string, K)
	for i := range keys {
		keys[i] = fmt.Sprintf("sess-%d", i)
	}
	owner := func(r *Ring) map[string]string {
		m := make(map[string]string, K)
		for _, k := range keys {
			m[k] = r.Lookup(k)
		}
		return m
	}

	r := NewRing(0)
	n := 6
	for i := 0; i < n; i++ {
		r.Add(fmt.Sprintf("w%d", i))
	}
	before := owner(r)

	// Leave: every moved key must have belonged to the removed member.
	r.Remove("w3")
	after := owner(r)
	moved := 0
	for _, k := range keys {
		if before[k] != after[k] {
			moved++
			if before[k] != "w3" {
				t.Fatalf("key %s moved %s -> %s on w3's departure: survivors must keep their keys",
					k, before[k], after[k])
			}
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved when a member left")
	}
	// With vnodes the per-member share concentrates near K/n; allow 2x.
	if max := 2 * K / n; moved > max {
		t.Fatalf("leave moved %d keys, want ≤ %d (2·K/n)", moved, max)
	}

	// Join: every moved key must now belong to the joiner.
	before = owner(r) // 5 members
	r.Add("w9")
	after = owner(r)
	moved = 0
	for _, k := range keys {
		if before[k] != after[k] {
			moved++
			if after[k] != "w9" {
				t.Fatalf("key %s moved %s -> %s on w9's arrival: only the joiner may gain keys",
					k, before[k], after[k])
			}
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved when a member joined")
	}
	if max := 2 * K / 6; moved > max {
		t.Fatalf("join moved %d keys, want ≤ %d (2·K/(n+1))", moved, max)
	}
}

func member(name string) Member {
	return Member{Name: name, Addr: name + ".example:9000", CyclesPerSec: 1e8, Executor: "workers"}
}

func waitEvent(t *testing.T, ch <-chan Event) Event {
	t.Helper()
	select {
	case ev, ok := <-ch:
		if !ok {
			t.Fatal("event channel closed")
		}
		return ev
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for membership event")
	}
	panic("unreachable")
}

func TestFleetSubscribeSnapshotAndLiveEvents(t *testing.T) {
	f := NewFleet(FleetOptions{Frontend: "fe0", Logf: t.Logf})
	defer f.Close()
	if err := f.Register(member("w0")); err != nil {
		t.Fatal(err)
	}

	ch, cancel := f.Subscribe()
	defer cancel()
	if ev := waitEvent(t, ch); ev.Kind != EventJoin || ev.Member.Name != "w0" {
		t.Fatalf("want snapshot join for w0, got %v %s", ev.Kind, ev.Member.Name)
	}

	if err := f.Register(member("w1")); err != nil {
		t.Fatal(err)
	}
	if ev := waitEvent(t, ch); ev.Kind != EventJoin || ev.Member.Name != "w1" {
		t.Fatalf("want live join for w1, got %v %s", ev.Kind, ev.Member.Name)
	}

	// Same identity re-registration is a silent lease refresh.
	if err := f.Register(member("w1")); err != nil {
		t.Fatal(err)
	}
	// Changed data-plane address must re-announce.
	m := member("w1")
	m.Addr = "elsewhere:9000"
	if err := f.Register(m); err != nil {
		t.Fatal(err)
	}
	if ev := waitEvent(t, ch); ev.Kind != EventLeave || ev.Member.Name != "w1" {
		t.Fatalf("want leave for re-identified w1, got %v %s", ev.Kind, ev.Member.Name)
	}
	if ev := waitEvent(t, ch); ev.Kind != EventJoin || ev.Member.Addr != "elsewhere:9000" {
		t.Fatalf("want re-join with new addr, got %v %s", ev.Kind, ev.Member.Addr)
	}

	f.Deregister("w0", "drain")
	if ev := waitEvent(t, ch); ev.Kind != EventLeave || ev.Member.Name != "w0" {
		t.Fatalf("want leave for w0, got %v %s", ev.Kind, ev.Member.Name)
	}
	if got := len(f.Members()); got != 1 {
		t.Fatalf("want 1 member after deregister, got %d", got)
	}
}

func TestFleetLeaseExpiry(t *testing.T) {
	f := NewFleet(FleetOptions{Frontend: "fe0", Lease: 50 * time.Millisecond, Logf: t.Logf})
	defer f.Close()
	ch, cancel := f.Subscribe()
	defer cancel()

	if err := f.Register(member("w0")); err != nil {
		t.Fatal(err)
	}
	waitEvent(t, ch) // join

	// Heartbeats keep it alive well past the lease...
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		if !f.Heartbeat("w0", 1, 5e5, false) {
			t.Fatal("heartbeat rejected while member should be alive")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// ...then silence evicts it.
	if ev := waitEvent(t, ch); ev.Kind != EventLeave || ev.Member.Name != "w0" {
		t.Fatalf("want lease-expiry leave, got %v %s", ev.Kind, ev.Member.Name)
	}
	if f.Heartbeat("w0", 1, 5e5, false) {
		t.Fatal("heartbeat after eviction must report unknown member")
	}
}

// TestJoinerEndToEnd drives the full wire path: a worker joins two
// frontends over TCP, both see it with the advertised capacity and
// cache inventory, heartbeats outlive the lease, and a graceful Leave
// removes it from both immediately.
func TestJoinerEndToEnd(t *testing.T) {
	const lease = 100 * time.Millisecond
	var fleets []*Fleet
	var addrs []string
	for i := 0; i < 2; i++ {
		f := NewFleet(FleetOptions{Frontend: fmt.Sprintf("fe%d", i), Lease: lease, Logf: t.Logf})
		defer f.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		f.Serve(ln)
		fleets = append(fleets, f)
		addrs = append(addrs, ln.Addr().String())
	}

	chans := make([]<-chan Event, 2)
	for i, f := range fleets {
		ch, cancel := f.Subscribe()
		defer cancel()
		chans[i] = ch
	}

	j, err := Join(JoinConfig{
		Frontends: addrs,
		Self: Member{Name: "w0", Addr: "127.0.0.1:7777", CyclesPerSec: 1.6e8,
			Executor: "workers", Pipelines: []string{"edges"}},
		Load:     func() (uint32, float64) { return 2, 3e5 },
		RetryMin: 10 * time.Millisecond,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	for i := range fleets {
		ev := waitEvent(t, chans[i])
		if ev.Kind != EventJoin || ev.Member.Name != "w0" {
			t.Fatalf("frontend %d: want join for w0, got %v %s", i, ev.Kind, ev.Member.Name)
		}
		if ev.Member.CyclesPerSec != 1.6e8 || len(ev.Member.Pipelines) != 1 {
			t.Fatalf("frontend %d: registration lost capacity or cache inventory: %+v", i, ev.Member)
		}
	}

	// Stay registered across several lease periods (heartbeats work),
	// and load reports flow through.
	time.Sleep(4 * lease)
	for i, f := range fleets {
		ms := f.Members()
		if len(ms) != 1 {
			t.Fatalf("frontend %d: member evicted despite heartbeats", i)
		}
		if ms[0].Sessions != 2 || ms[0].LoadCyclesPerSec != 3e5 {
			t.Fatalf("frontend %d: heartbeat load not recorded: %+v", i, ms[0])
		}
	}

	j.Leave("drain")
	for i := range fleets {
		ev := waitEvent(t, chans[i])
		if ev.Kind != EventLeave || ev.Member.Name != "w0" {
			t.Fatalf("frontend %d: want leave on drain, got %v %s", i, ev.Kind, ev.Member.Name)
		}
		if n := len(fleets[i].Members()); n != 0 {
			t.Fatalf("frontend %d: %d members left after graceful leave", i, n)
		}
	}
}

// TestJoinerRedialsAfterConnLoss kills the registration listener's
// accepted conn indirectly by closing the whole fleet, restarts a new
// fleet on the same address, and requires the joiner to re-register on
// its own.
func TestJoinerRedialsAfterConnLoss(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	f1 := NewFleet(FleetOptions{Frontend: "fe0", Lease: 100 * time.Millisecond, Logf: t.Logf})
	f1.Serve(ln)

	j, err := Join(JoinConfig{
		Frontends: []string{addr},
		Self:      member("w0"),
		RetryMin:  10 * time.Millisecond,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	ch1, cancel1 := f1.Subscribe()
	if ev := waitEvent(t, ch1); ev.Kind != EventJoin {
		t.Fatalf("want join, got %v", ev.Kind)
	}
	cancel1()
	f1.Close() // hangs up the registration conn

	// New frontend process on the same address: the joiner must find it.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	f2 := NewFleet(FleetOptions{Frontend: "fe0b", Lease: 100 * time.Millisecond, Logf: t.Logf})
	defer f2.Close()
	ch2, cancel2 := f2.Subscribe()
	defer cancel2()
	f2.Serve(ln2)
	if ev := waitEvent(t, ch2); ev.Kind != EventJoin || ev.Member.Name != "w0" {
		t.Fatalf("want re-registration join on new fleet, got %v %s", ev.Kind, ev.Member.Name)
	}
}

// TestFleetDrainEvent: the false→true drain transition in a heartbeat
// publishes exactly one EventDrain — repeats renew the lease silently —
// and the member stays listed (still serving) with Draining set.
func TestFleetDrainEvent(t *testing.T) {
	f := NewFleet(FleetOptions{Frontend: "fe0", Logf: t.Logf})
	defer f.Close()
	if err := f.Register(member("w0")); err != nil {
		t.Fatal(err)
	}
	ch, cancel := f.Subscribe()
	defer cancel()
	waitEvent(t, ch) // snapshot join

	if !f.Heartbeat("w0", 3, 5e5, true) {
		t.Fatal("draining heartbeat rejected")
	}
	if ev := waitEvent(t, ch); ev.Kind != EventDrain || ev.Member.Name != "w0" {
		t.Fatalf("want drain event for w0, got %v %s", ev.Kind, ev.Member.Name)
	}
	if ms := f.Members(); len(ms) != 1 || !ms[0].Draining {
		t.Fatalf("draining member must stay listed with Draining set, got %+v", ms)
	}
	// Repeated draining heartbeats must not re-announce.
	f.Heartbeat("w0", 3, 5e5, true)
	f.Heartbeat("w0", 3, 5e5, true)
	f.Deregister("w0", "drained")
	if ev := waitEvent(t, ch); ev.Kind != EventLeave {
		t.Fatalf("want the leave next (no duplicate drain events), got %v", ev.Kind)
	}
}

// TestJoinerSetDraining drives the drain announcement over the wire:
// SetDraining sends a flagged heartbeat immediately (not waiting out
// the heartbeat interval), and the frontend's subscribers see the
// drain event while the member remains registered.
func TestJoinerSetDraining(t *testing.T) {
	f := NewFleet(FleetOptions{Frontend: "fe0", Lease: time.Minute, Logf: t.Logf})
	defer f.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f.Serve(ln)
	ch, cancel := f.Subscribe()
	defer cancel()

	j, err := Join(JoinConfig{
		Frontends: []string{ln.Addr().String()},
		Self:      Member{Name: "w0", Addr: "127.0.0.1:7777", CyclesPerSec: 1e8},
		Load:      func() (uint32, float64) { return 1, 0 },
		RetryMin:  10 * time.Millisecond,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if ev := waitEvent(t, ch); ev.Kind != EventJoin {
		t.Fatalf("want join, got %v", ev.Kind)
	}
	// The join event fires when the fleet processes Register; wait for
	// the joiner's side of the conn too, so SetDraining has a live
	// registration to flag immediately.
	connected := time.Now().Add(5 * time.Second)
	for {
		j.mu.Lock()
		n := len(j.conns)
		j.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(connected) {
			t.Fatal("joiner never recorded its registration conn")
		}
		time.Sleep(2 * time.Millisecond)
	}

	j.SetDraining()
	if ev := waitEvent(t, ch); ev.Kind != EventDrain || ev.Member.Name != "w0" {
		t.Fatalf("want drain event for w0, got %v %s", ev.Kind, ev.Member.Name)
	}
	if ms := f.Members(); len(ms) != 1 {
		t.Fatalf("draining worker deregistered too early: %+v", ms)
	}
	j.Leave("drained")
	if ev := waitEvent(t, ch); ev.Kind != EventLeave {
		t.Fatalf("want leave after drain completes, got %v", ev.Kind)
	}
}

// TestJitterBackoff pins the decorrelated-jitter contract: every draw
// lands in [min, max], growth from a small prev can reach 3×prev, and
// degenerate inputs (prev below min, max below min) stay sane.
func TestJitterBackoff(t *testing.T) {
	const min, max = 10 * time.Millisecond, 300 * time.Millisecond
	prev := min
	for i := 0; i < 1000; i++ {
		next := JitterBackoff(prev, min, max)
		if next < min || next > max {
			t.Fatalf("draw %d: %v outside [%v, %v] (prev %v)", i, next, min, max, prev)
		}
		if next >= 3*prev && next != max {
			t.Fatalf("draw %d: %v >= 3x prev %v without hitting the cap", i, next, prev)
		}
		prev = next
	}
	if got := JitterBackoff(0, min, max); got < min || got > max {
		t.Fatalf("prev below min: got %v", got)
	}
	if got := JitterBackoff(time.Second, min, 5*time.Millisecond); got != min {
		t.Fatalf("max below min must clamp to min: got %v", got)
	}
}
