package conformance

import (
	"testing"

	"blockpar/internal/apps"
	"blockpar/internal/frame"
	"blockpar/internal/geom"
)

// promoted lifts a typed generator to the f64 stream the reference
// twin feeds the oracle: the same post-quantization values, eight
// bytes wide. Diffing against this twin isolates the typed data
// plane — any divergence is typed kernel arithmetic, never input
// quantization.
func promoted(g frame.Generator) frame.Generator {
	return func(seq int64, w, h int) frame.Window {
		return g(seq, w, h).Convert(frame.F64)
	}
}

func typedCase(app *apps.App) *Case {
	return &Case{Name: app.Name, Graph: app.Graph, Sources: app.Sources}
}

// TestTypedToleranceGate holds the typed data plane to the f64 oracle:
// the u8 Bayer pipeline must reproduce the quantized oracle
// byte-for-byte (its interpolation arithmetic is f64 either way), and
// the f32 convolution chain must stay within the per-kernel forward
// error bound — a tolerance TypedTolerances derives from the actual
// coefficient magnitudes, not a hand-tuned epsilon.
func TestTypedToleranceGate(t *testing.T) {
	t.Run("bayer-u8", func(t *testing.T) {
		cfg := apps.BayerCfg{W: 16, H: 12, Rate: geom.FInt(10)}
		typed := typedCase(apps.BayerU8("bayer-u8", cfg))
		refApp := apps.Bayer("bayer-u8-ref", cfg)
		refApp.Sources["Input"] = promoted(typed.Sources["Input"])
		ref := typedCase(refApp)

		tol, err := TypedTolerances(typed)
		if err != nil {
			t.Fatalf("tolerances: %v", err)
		}
		for _, out := range []string{"R", "G", "B"} {
			if tol[out] != 0 {
				t.Errorf("output %q: u8 path got tolerance %g, want 0 (byte-identical)", out, tol[out])
			}
		}
		if err := CheckTyped(typed, ref, 2); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("multiconv-f32", func(t *testing.T) {
		cfg := apps.MultiConvCfg{W: 20, H: 16, Rate: geom.FInt(10), Sizes: []int{3, 5}}
		typed := typedCase(apps.MultiConvF32("multiconv-f32", cfg))
		refApp := apps.MultiConv("multiconv-f32-ref", cfg)
		refApp.Sources["Input"] = promoted(typed.Sources["Input"])
		ref := typedCase(refApp)

		tol, err := TypedTolerances(typed)
		if err != nil {
			t.Fatalf("tolerances: %v", err)
		}
		// The gate must neither be vacuous (f32 accumulation does round)
		// nor useless (the bound must stay far below signal magnitude,
		// which reaches the tens of thousands after two convolutions).
		if tol["result"] <= 0 {
			t.Fatalf("f32 chain got tolerance %g, want > 0", tol["result"])
		}
		if tol["result"] > 10 {
			t.Fatalf("f32 chain tolerance %g is too loose to catch real bugs", tol["result"])
		}
		if err := CheckTyped(typed, ref, 2); err != nil {
			t.Fatal(err)
		}
	})
}
