package wire

import (
	"errors"
	"net"
	"reflect"
	"testing"

	"blockpar/internal/frame"
	"blockpar/internal/token"
)

func TestWindowRoundTrip(t *testing.T) {
	cases := []frame.Window{
		{},
		frame.Scalar(3.25),
		frame.FromRows([][]float64{{1, 2, 3}, {4, 5, 6}}),
		frame.NewWindow(7, 1),
	}
	// A strided view must encode identically to its dense copy.
	parent := frame.FromRows([][]float64{
		{0, 1, 2, 3},
		{4, 5, 6, 7},
		{8, 9, 10, 11},
	})
	cases = append(cases, parent.View(1, 1, 2, 2))

	for _, w := range cases {
		b := AppendWindow(nil, w)
		got, err := DecodeWindow(b)
		if err != nil {
			t.Fatalf("decode %v: %v", w, err)
		}
		if !got.Equal(w) {
			t.Errorf("round trip of %v changed samples", w)
		}
		if w.W*w.H > 0 && !got.Pooled() {
			t.Errorf("decoded %v is not arena-backed", w)
		}
		got.Release()
	}
}

func TestWindowDecodeRejectsCorruption(t *testing.T) {
	good := AppendWindow(nil, frame.FromRows([][]float64{{1, 2}, {3, 4}}))
	cases := map[string][]byte{
		"empty":          {},
		"truncated dims": good[:6],
		"truncated pix":  good[:len(good)-3],
		"trailing":       append(append([]byte{}, good...), 0),
		"huge dims":      {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
	}
	for name, b := range cases {
		if _, err := DecodeWindow(b); err == nil {
			t.Errorf("%s: decode accepted corrupt window", name)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error %v is not tagged ErrCorrupt", name, err)
		}
	}
}

func TestTokenRoundTrip(t *testing.T) {
	for _, tok := range []token.Token{
		token.EOL(3),
		token.EOF(0),
		token.NewCustom("sync", 17),
		{Kind: token.None, Seq: -1},
	} {
		got, err := DecodeToken(AppendToken(nil, tok))
		if err != nil {
			t.Fatalf("decode %v: %v", tok, err)
		}
		if got != tok {
			t.Errorf("round trip changed %v into %v", tok, got)
		}
	}
	if _, err := DecodeToken([]byte{99, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("decode accepted an unknown token kind")
	}
}

func TestItemRoundTrip(t *testing.T) {
	items := []Item{
		{Win: frame.Scalar(1.5)},
		{IsToken: true, Tok: token.EOF(2)},
		{Win: frame.FromRows([][]float64{{1, 2, 3, 4, 5}}), B: Batch{N: 2, Sx: 2, Bw: 3}},
		{Win: frame.FromRows([][]float64{{1, 2, 3, 4, 5, 6}}), B: Batch{N: 3, Sx: 2, Bw: 2}},
	}
	for _, it := range items {
		got, err := DecodeItem(AppendItem(nil, it))
		if err != nil {
			t.Fatalf("decode item: %v", err)
		}
		if got.IsToken != it.IsToken {
			t.Fatalf("item tag flipped")
		}
		if it.IsToken {
			if got.Tok != it.Tok {
				t.Errorf("token changed: %v -> %v", it.Tok, got.Tok)
			}
		} else {
			if !got.Win.Equal(it.Win) {
				t.Errorf("window changed")
			}
			if got.B != it.B {
				t.Errorf("batch descriptor changed: %+v -> %+v", it.B, got.B)
			}
			got.Win.Release()
		}
	}
}

// TestItemBatchCorrupt exercises the v6 batch descriptor's bounds: a
// degenerate count, a zero step, and a descriptor whose span disagrees
// with the carried window must all fail as corruption without leaking
// pooled windows.
func TestItemBatchCorrupt(t *testing.T) {
	ok := AppendItem(nil, Item{
		Win: frame.FromRows([][]float64{{1, 2, 3, 4, 5}}), B: Batch{N: 2, Sx: 2, Bw: 3},
	})
	corrupt := func(mutate func(b []byte)) {
		t.Helper()
		b := append([]byte(nil), ok...)
		mutate(b)
		live := frame.Stats().Live
		if _, err := DecodeItem(b); err == nil {
			t.Errorf("decode accepted corrupt batch item %x", b)
		}
		if got := frame.Stats().Live; got != live {
			t.Errorf("corrupt decode leaked %d pooled windows", got-live)
		}
	}
	// Layout after the tag byte: N, Sx, Bw as big-endian u32.
	corrupt(func(b []byte) { b[4] = 1 })  // N = 1: not a batch
	corrupt(func(b []byte) { b[8] = 0 })  // Sx = 0
	corrupt(func(b []byte) { b[12] = 0 }) // Bw = 0
	corrupt(func(b []byte) { b[12] = 4 }) // span 6 != window width 5
}

// sampleMsgs is one instance of every frame type, shared by the
// round-trip test and the fuzz corpus.
func sampleMsgs() []Msg {
	return []Msg{
		&Hello{Version: Version},
		&Welcome{Version: Version, Worker: "w0", Pipelines: []string{"1", "edges"}},
		&EnsurePipeline{ID: "edges", Source: "json", Desc: []byte(`{"name":"edges"}`)},
		&PipelineReady{ID: "edges"},
		&PipelineReady{ID: "bad", Err: "compile failed"},
		&OpenSession{SID: 7, Pipeline: "1", MaxInFlight: 8, DeadlineMs: 30_000},
		&SessionOpened{SID: 7},
		&Feed{SID: 7, Seq: 3, Inputs: []NamedWindow{
			{Name: "in", Win: frame.FromRows([][]float64{{1, 2}, {3, 4}})},
		}},
		&Result{SID: 7, Seq: 3, Outputs: []NamedWindows{
			{Name: "out", Wins: []frame.Window{frame.Scalar(9), frame.Scalar(-1)}},
			{Name: "hist", Wins: nil},
		}},
		&Credit{SID: 7, N: 1},
		&CloseSession{SID: 7},
		&SessionClosed{SID: 7, Completed: 4},
		&Error{SID: 7, Msg: "kernel panic"},
		&Ping{Nonce: 99},
		&Pong{Nonce: 99},
		&Goaway{Reason: "draining"},
		&OpenPartition{SID: 7, Pipeline: "1", Partition: 1, MaxInFlight: 8, DeadlineMs: 30_000,
			Nodes: []string{"sobel", "thresh"},
			Edges: []EdgeSpec{
				{ID: 0, Dir: EdgeIn, Credit: 64, FromNode: "blur", FromPort: "out", ToNode: "sobel", ToPort: "in"},
				{ID: 1, Dir: EdgeOut, Credit: 64, FromNode: "thresh", FromPort: "out", ToNode: "sink", ToPort: "in"},
			}},
		&EdgeFrame{SID: 7, Edge: 1, Items: []Item{
			{Win: frame.FromRows([][]float64{{1, 2}, {3, 4}})},
			{IsToken: true, Tok: token.EOL(0)},
			// A v6 row batch: 3 overlapping 3-wide windows, step 2.
			{Win: frame.FromRows([][]float64{{1, 2, 3, 4, 5, 6, 7}}), B: Batch{N: 3, Sx: 2, Bw: 3}},
		}},
		&EdgeFrame{SID: 7, Edge: 1, EOS: true},
		&EdgeCredit{SID: 7, Edge: 1, N: 2},
		&Register{Name: "w0", Addr: "10.0.0.7:9000", CyclesPerSec: 8 * 20e6,
			Executor: "workers", Pipelines: []string{"1", "edges"}},
		&RegisterAck{LeaseMs: 5_000},
		&RegisterAck{Err: "name already registered"},
		&Heartbeat{Sessions: 3, CyclesPerSec: 1.5e6},
		&Heartbeat{Sessions: 1, CyclesPerSec: 4e5, Draining: true},
		&Deregister{Reason: "draining"},
		&ReopenPartition{SID: 7, Pipeline: "1", Partition: 1, MaxInFlight: 8, DeadlineMs: 30_000,
			ResumeResults: 12,
			Nodes:         []string{"sobel", "thresh"},
			Edges: []EdgeSpec{
				{ID: 0, Dir: EdgeIn, Credit: 64, FromNode: "blur", FromPort: "out", ToNode: "sobel", ToPort: "in"},
				{ID: 1, Dir: EdgeOut, Credit: 61, FromNode: "thresh", FromPort: "out", ToNode: "sink", ToPort: "in"},
			},
			Resume: []EdgeResume{
				{Edge: 1, SkipItems: 43},
			}},
	}
}

func releaseMsg(m Msg) {
	switch m := m.(type) {
	case *Feed:
		releaseWindows(m.Inputs)
	case *Result:
		for _, out := range m.Outputs {
			for _, w := range out.Wins {
				w.Release()
			}
		}
	case *EdgeFrame:
		releaseItems(m.Items)
	}
}

func TestMsgRoundTrip(t *testing.T) {
	for _, m := range sampleMsgs() {
		b := Append(nil, m)
		// Re-decode through the frame layer: length, type, payload.
		got, err := Decode(MsgType(b[4]), b[5:])
		if err != nil {
			t.Fatalf("%s: decode: %v", m.Type(), err)
		}
		if !msgEqual(m, got) {
			t.Errorf("%s: round trip changed message:\n  sent %#v\n  got  %#v", m.Type(), m, got)
		}
		releaseMsg(got)
	}
}

// msgEqual compares messages, treating windows by value.
func msgEqual(a, b Msg) bool {
	if a.Type() != b.Type() {
		return false
	}
	switch a := a.(type) {
	case *Feed:
		bf := b.(*Feed)
		if a.SID != bf.SID || a.Seq != bf.Seq || len(a.Inputs) != len(bf.Inputs) {
			return false
		}
		for i := range a.Inputs {
			if a.Inputs[i].Name != bf.Inputs[i].Name || !a.Inputs[i].Win.Equal(bf.Inputs[i].Win) {
				return false
			}
		}
		return true
	case *Result:
		br := b.(*Result)
		if a.SID != br.SID || a.Seq != br.Seq || len(a.Outputs) != len(br.Outputs) {
			return false
		}
		for i := range a.Outputs {
			if a.Outputs[i].Name != br.Outputs[i].Name || len(a.Outputs[i].Wins) != len(br.Outputs[i].Wins) {
				return false
			}
			for j := range a.Outputs[i].Wins {
				if !a.Outputs[i].Wins[j].Equal(br.Outputs[i].Wins[j]) {
					return false
				}
			}
		}
		return true
	case *EdgeFrame:
		be := b.(*EdgeFrame)
		if a.SID != be.SID || a.Edge != be.Edge || a.EOS != be.EOS || len(a.Items) != len(be.Items) {
			return false
		}
		for i := range a.Items {
			if a.Items[i].IsToken != be.Items[i].IsToken {
				return false
			}
			if a.Items[i].IsToken {
				if a.Items[i].Tok != be.Items[i].Tok {
					return false
				}
			} else if !a.Items[i].Win.Equal(be.Items[i].Win) || a.Items[i].B != be.Items[i].B {
				return false
			}
		}
		return true
	default:
		return reflect.DeepEqual(a, b)
	}
}

func TestConnFraming(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer ca.Close()
	defer cb.Close()

	go func() {
		for _, m := range sampleMsgs() {
			if err := ca.Write(m); err != nil {
				t.Errorf("write %s: %v", m.Type(), err)
				return
			}
		}
	}()
	for _, want := range sampleMsgs() {
		got, err := cb.Read()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !msgEqual(want, got) {
			t.Fatalf("conn delivered %s differently", want.Type())
		}
		releaseMsg(got)
	}
}

// TestConnRejectsBitFlips corrupts every single byte position of an
// encoded frame in turn and requires the reader to reject each one as
// ErrCorrupt. Without the CRC trailer a flipped sample bit would
// decode cleanly into silently wrong data, which the fault-injection
// chaos mode could never distinguish from a real miscomputation.
func TestConnRejectsBitFlips(t *testing.T) {
	// Capture the exact bytes Write emits for one Feed frame.
	client, server := net.Pipe()
	cw := NewConn(client)
	var raw []byte
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 1<<16)
		n, _ := server.Read(buf)
		raw = append(raw, buf[:n]...)
	}()
	feed := &Feed{SID: 9, Seq: 1, Inputs: []NamedWindow{
		{Name: "in", Win: frame.FromRows([][]float64{{1, 2}, {3, 4}})},
	}}
	if err := cw.Write(feed); err != nil {
		t.Fatalf("write: %v", err)
	}
	<-done
	client.Close()
	server.Close()
	if len(raw) < 9 {
		t.Fatalf("captured only %d bytes", len(raw))
	}

	// The intact frame must read back.
	deliver := func(b []byte) (Msg, error) {
		a, bconn := net.Pipe()
		defer a.Close()
		defer bconn.Close()
		go func() { a.Write(b); a.Close() }()
		return NewConn(bconn).Read()
	}
	if m, err := deliver(raw); err != nil {
		t.Fatalf("intact frame rejected: %v", err)
	} else {
		releaseMsg(m)
	}

	// Flip one bit in every byte past the length prefix: type, payload,
	// and the trailer itself must all be covered.
	for i := 4; i < len(raw); i++ {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x10
		m, err := deliver(mut)
		if err == nil {
			releaseMsg(m)
			t.Fatalf("bit flip at offset %d decoded cleanly", i)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at offset %d returned untyped error %v", i, err)
		}
	}
}

func TestHandshake(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer ca.Close()
	defer cb.Close()

	errc := make(chan error, 1)
	go func() { errc <- cb.AcceptHandshake("w0", []string{"1", "2"}) }()
	w, err := ca.Handshake()
	if err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("server handshake: %v", err)
	}
	if w.Worker != "w0" || len(w.Pipelines) != 2 {
		t.Fatalf("welcome carried %+v", w)
	}
}

func TestDecodeUnknownType(t *testing.T) {
	if _, err := Decode(MsgType(200), nil); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown type decoded: %v", err)
	}
}

// TestWriteRejectsOverflowingCounts checks a message whose element count
// cannot fit its u16 wire field fails its own Write — a silent
// truncation would corrupt the stream and kill the connection — and
// that the connection stays usable afterwards.
func TestWriteRejectsOverflowingCounts(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer ca.Close()
	defer cb.Close()

	feed := &Feed{SID: 1, Inputs: make([]NamedWindow, 1<<16)}
	if err := ca.Write(feed); err == nil {
		t.Fatal("write accepted a feed with 65536 inputs")
	}
	res := &Result{SID: 1, Outputs: make([]NamedWindows, 1<<16)}
	if err := ca.Write(res); err == nil {
		t.Fatal("write accepted a result with 65536 outputs")
	}

	// Nothing hit the wire, so the next frame must still round-trip.
	go func() { ca.Write(&Ping{Nonce: 5}) }()
	m, err := cb.Read()
	if err != nil {
		t.Fatalf("read after rejected writes: %v", err)
	}
	if p, ok := m.(*Ping); !ok || p.Nonce != 5 {
		t.Fatalf("connection delivered %#v after rejected writes", m)
	}
}

// TestWriteRejectsOverflowingEdgeCounts mirrors
// TestWriteRejectsOverflowingCounts for the partition-plane frames: an
// EdgeFrame item batch or OpenPartition catalogue past the u16 count
// must fail its own Write without poisoning the connection.
func TestWriteRejectsOverflowingEdgeCounts(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer ca.Close()
	defer cb.Close()

	ef := &EdgeFrame{SID: 1, Edge: 0, Items: make([]Item, 1<<16)}
	if err := ca.Write(ef); err == nil {
		t.Fatal("write accepted an edge frame with 65536 items")
	}
	op := &OpenPartition{SID: 1, Pipeline: "1", Nodes: make([]string, 1<<16)}
	if err := ca.Write(op); err == nil {
		t.Fatal("write accepted an open-partition with 65536 nodes")
	}
	op = &OpenPartition{SID: 1, Pipeline: "1", Edges: make([]EdgeSpec, 1<<16)}
	if err := ca.Write(op); err == nil {
		t.Fatal("write accepted an open-partition with 65536 edges")
	}

	go func() { ca.Write(&Ping{Nonce: 6}) }()
	m, err := cb.Read()
	if err != nil {
		t.Fatalf("read after rejected writes: %v", err)
	}
	if p, ok := m.(*Ping); !ok || p.Nonce != 6 {
		t.Fatalf("connection delivered %#v after rejected writes", m)
	}
}

// TestEdgeFrameDecodeRejectsCorruption truncates and mutates an
// encoded EdgeFrame and requires typed decode errors with no leaked
// arena windows.
func TestEdgeFrameDecodeRejectsCorruption(t *testing.T) {
	base := frame.Stats().Live
	ef := &EdgeFrame{SID: 3, Edge: 2, Items: []Item{
		{Win: frame.FromRows([][]float64{{1, 2}, {3, 4}})},
		{IsToken: true, Tok: token.EOF(1)},
	}}
	good := Append(nil, ef)
	payload := good[5:]

	for name, b := range map[string][]byte{
		"empty":          {},
		"truncated head": payload[:8],
		"truncated item": payload[:len(payload)-5],
		"trailing":       append(append([]byte{}, payload...), 0xee),
	} {
		if m, err := Decode(TypeEdgeFrame, b); err == nil {
			releaseMsg(m)
			t.Errorf("%s: decode accepted corrupt edge frame", name)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error %v is not tagged ErrCorrupt", name, err)
		}
	}
	// A flags byte past the defined bits is corruption, not an item.
	bad := append([]byte(nil), payload...)
	bad[12] = 0x7f
	if m, err := Decode(TypeEdgeFrame, bad); err == nil {
		releaseMsg(m)
		t.Error("decode accepted an edge frame with unknown flags")
	}
	if live := frame.Stats().Live; live != base {
		t.Fatalf("corrupt edge-frame decodes leaked %d arena windows", live-base)
	}
}

// typedTestWindow builds a kind-typed window with a deterministic ramp.
func typedTestWindow(k frame.Kind, w, h int) frame.Window {
	win := frame.NewWindowKind(k, w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			win.Set(x, y, float64((y*w+x)%251))
		}
	}
	return win
}

func TestWindowTypedRoundTrip(t *testing.T) {
	for _, k := range []frame.Kind{frame.U8, frame.F32, frame.F64} {
		w := typedTestWindow(k, 5, 3)
		b := AppendWindow(nil, w)
		// Native width on the wire: header (u32 W, u32 H, u8 kind) plus
		// one sample per element at the kind's storage width.
		if want := 9 + 5*3*k.Bytes(); len(b) != want {
			t.Errorf("%s window encodes to %d bytes, want %d", k, len(b), want)
		}
		got, err := DecodeWindow(b)
		if err != nil {
			t.Fatalf("decode %s window: %v", k, err)
		}
		if got.Kind != k {
			t.Errorf("decoded kind %s, want %s", got.Kind, k)
		}
		if !got.Equal(w) {
			t.Errorf("%s round trip changed samples", k)
		}
		got.Release()

		// A strided typed view encodes identically to its dense clone.
		view := w.View(1, 1, 3, 2)
		dense := view.Clone()
		if vb, db := AppendWindow(nil, view), AppendWindow(nil, dense); string(vb) != string(db) {
			t.Errorf("%s strided view encodes differently from dense copy", k)
		}
		dense.Release()
	}
}

func TestWindowDecodeRejectsMalformedKind(t *testing.T) {
	good := AppendWindow(nil, typedTestWindow(frame.U8, 2, 2))
	for kind := byte(3); kind != 0; kind += 61 {
		bad := append([]byte{}, good...)
		bad[8] = kind
		if _, err := DecodeWindow(bad); err == nil {
			t.Fatalf("decode accepted element kind %d", kind)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("kind %d: error %v is not tagged ErrCorrupt", kind, err)
		}
	}
}
