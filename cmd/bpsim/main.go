// Command bpsim compiles a benchmark application, maps it to PEs, and
// runs the timing simulation, reporting throughput, real-time status,
// and per-PE utilization broken into run/read/write time.
//
// Usage:
//
//	bpsim -app SF -mapping greedy -frames 4
//	bpsim -app 3 -mapping 1:1 -per-pe
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"blockpar/internal/apps"
	"blockpar/internal/core"
	"blockpar/internal/frame"
	"blockpar/internal/graph"
	"blockpar/internal/machine"
	"blockpar/internal/mapping"
	"blockpar/internal/runtime"
	"blockpar/internal/sim"
)

func main() {
	appID := flag.String("app", "5", "benchmark id: "+strings.Join(apps.IDs(), ", "))
	mapKind := flag.String("mapping", "greedy", "kernel-to-PE mapping: 1:1, greedy")
	frames := flag.Int("frames", 2, "input frames to simulate")
	perPE := flag.Bool("per-pe", false, "print per-PE utilization")
	place := flag.Bool("place", false, "run simulated-annealing placement and report comm cost")
	dot := flag.Bool("dot", false, "emit the Figure 12-style clustered DOT instead of simulating")
	traceFile := flag.String("trace", "", "write a CSV firing trace to this file")
	traceJSON := flag.String("trace-json", "", "write a Chrome trace_event JSON firing trace to this file (chrome://tracing, Perfetto)")
	gantt := flag.Bool("gantt", false, "print an ASCII Gantt chart of PE occupancy")
	runExec := flag.String("run", "", "execute functionally on the given engine (goroutines, workers) and report wall time, samples/s, and pool stats instead of simulating")
	flag.Parse()

	if *runExec != "" {
		if err := runFunctional(*appID, *runExec, *frames); err != nil {
			fmt.Fprintln(os.Stderr, "bpsim:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*appID, *mapKind, *frames, *perPE, *place, *dot, *traceFile, *traceJSON, *gantt); err != nil {
		fmt.Fprintln(os.Stderr, "bpsim:", err)
		os.Exit(1)
	}
}

// runFunctional executes the compiled app on the functional runtime
// with the chosen engine and reports throughput plus window-arena
// statistics — the quickest way to compare the executors and observe
// the zero-copy data plane's pool behavior on a real workload.
func runFunctional(appID, exec string, frames int) error {
	app, err := apps.ByID(appID)
	if err != nil {
		return err
	}
	m := machine.Embedded()
	c, err := core.Compile(app.Graph, core.Config{
		Machine: m, Parallelize: true, BufferStriping: true,
	})
	if err != nil {
		return err
	}
	var samples int64
	for _, n := range c.Graph.Nodes() {
		if n.Kind == graph.KindInput {
			samples += int64(n.FrameSize.W) * int64(n.FrameSize.H) * int64(frames)
		}
	}
	frame.ResetStats()
	start := time.Now()
	res, err := runtime.Run(c.Graph, runtime.Options{
		Frames: frames, Sources: app.Sources, Executor: runtime.ExecutorKind(exec),
	})
	if err != nil {
		return err
	}
	wall := time.Since(start)
	var items int
	for _, s := range res.Outputs {
		items += len(s)
	}
	ps := frame.Stats()
	fmt.Printf("app %s, %s engine\n", app.Name, exec)
	fmt.Printf("  wall:      %.3f ms for %d frames\n", float64(wall)/float64(time.Millisecond), frames)
	fmt.Printf("  samples/s: %.3g (%d input samples)\n", float64(samples)/wall.Seconds(), samples)
	fmt.Printf("  outputs:   %d stream items\n", items)
	fmt.Printf("  pool:      %d gets, %.1f%% hit rate, %d live, %d bytes parked\n",
		ps.Gets, 100*ps.HitRate(), ps.Live, ps.PooledBytes)
	return nil
}

func run(appID, mapKind string, frames int, perPE, place, dot bool, traceFile, traceJSON string, gantt bool) error {
	app, err := apps.ByID(appID)
	if err != nil {
		return err
	}
	m := machine.Embedded()
	c, err := core.Compile(app.Graph, core.Config{
		Machine: m, Parallelize: true, BufferStriping: true,
	})
	if err != nil {
		return err
	}

	var assign *mapping.Assignment
	switch mapKind {
	case "1:1", "one-to-one":
		assign = mapping.OneToOne(c.Graph)
	case "greedy", "gm":
		assign, err = mapping.Greedy(c.Graph, c.Analysis, m)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown mapping %q", mapKind)
	}

	if dot {
		fmt.Print(mapping.Dot(c.Graph, assign))
		return nil
	}

	opts := sim.Options{Machine: m, Frames: frames}
	if traceFile != "" || traceJSON != "" || gantt {
		opts.TraceLimit = 1 << 20
	}
	res, err := sim.Simulate(c.Graph, assign, opts)
	if err != nil {
		return err
	}

	rt := "met"
	if !res.RealTimeMet() {
		rt = fmt.Sprintf("MISSED (%d stalls, %.3g s late)", res.InputStalls, res.StallTime)
	}
	run, read, write := res.Breakdown()
	fmt.Printf("app %s on %s, %s mapping\n", app.Name, m.Name, mapKind)
	fmt.Printf("  PEs:         %d\n", assign.NumPEs)
	fmt.Printf("  makespan:    %.6f s for %d frames (%.1f frames/s)\n", res.Time, frames, res.Throughput)
	fmt.Printf("  real-time:   %s\n", rt)
	fmt.Printf("  utilization: %.1f%% mean (run %.1f%% + read %.1f%% + write %.1f%%)\n",
		100*res.MeanUtilization(), 100*run, 100*read, 100*write)
	fmt.Printf("  latency:     %.6f s worst frame\n", res.MaxLatency())
	if n := res.TotalExceptions(); n > 0 {
		fmt.Printf("  exceptions:  %d dynamic-kernel bound violations\n", n)
	}

	if perPE {
		fmt.Println("  per-PE:")
		for i, pe := range res.PEs {
			names := []string{}
			for _, n := range assign.NodesOn(c.Graph, i) {
				names = append(names, n.Name())
			}
			fmt.Printf("    PE%-3d %5.1f%%  %s\n", i, 100*pe.Busy()/res.Time, strings.Join(names, " + "))
		}
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.Trace.WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("  trace:       %d firings written to %s\n", len(res.Trace.Events), traceFile)
	}
	if traceJSON != "" {
		f, err := os.Create(traceJSON)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.Trace.WriteTraceJSON(f); err != nil {
			return err
		}
		fmt.Printf("  trace-json:  %d firings written to %s\n", len(res.Trace.Events), traceJSON)
	}
	if res.Trace != nil && res.Trace.Dropped > 0 {
		fmt.Fprintf(os.Stderr, "bpsim: warning: firing trace truncated, %d events dropped beyond the %d-event limit\n",
			res.Trace.Dropped, opts.TraceLimit)
	}
	if gantt {
		fmt.Println("  PE occupancy (time left to right):")
		fmt.Print(indent(res.Trace.Gantt(assign.NumPEs, res.Time, 72), "    "))
	}
	if place {
		p := mapping.Anneal(c.Graph, assign, 42)
		em := mapping.DefaultEnergy()
		fmt.Printf("  placement:   %dx%d grid, comm cost %.0f word-hops/frame-set\n",
			p.GridW, p.GridH, mapping.CommCost(c.Graph, assign, p))
		fmt.Printf("  energy:      %.0f units/frame (placed), model %v\n",
			mapping.EnergyPerFrame(c.Graph, c.Analysis, m, assign, p, em), em)
	}
	return nil
}

// indent prefixes every line of s.
func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
