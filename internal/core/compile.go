// Package core is the compiler driver: it sequences the paper's
// analyses and transformations — pad-alignment (if selected), buffer
// insertion, trim-alignment, parallelization — and re-verifies the
// result, turning a programmer-level application description into a
// deployable graph (the Figure 1(b) → Figure 4 journey).
package core

import (
	"fmt"

	"blockpar/internal/analysis"
	"blockpar/internal/graph"
	"blockpar/internal/machine"
	"blockpar/internal/transform"
)

// Config selects the compilation pipeline's options.
type Config struct {
	Machine machine.Machine
	// Align picks trim vs pad for halo misalignment (§III-C); the
	// choice changes results, so it belongs to the programmer.
	Align transform.AlignPolicy
	// Parallelize enables §IV (off: the graph is only buffered and
	// aligned, like Figure 3).
	Parallelize bool
	// BufferStriping controls the Figure 9 reuse optimization; see
	// transform.Options.
	BufferStriping bool
}

// DefaultConfig compiles like the paper: trim alignment, striped
// buffers, full parallelization on the embedded machine.
func DefaultConfig() Config {
	return Config{
		Machine:        machine.Embedded(),
		Align:          transform.Trim,
		Parallelize:    true,
		BufferStriping: true,
	}
}

// Compiled is the result of a compilation.
type Compiled struct {
	// Graph is the transformed application (the input graph mutated in
	// place).
	Graph *graph.Graph
	// Analysis is the final post-transformation analysis.
	Analysis *analysis.Result
	// Report describes the parallelization (nil if disabled).
	Report *transform.Report
}

// Compile runs the transformation pipeline on g, mutating it in place.
func Compile(g *graph.Graph, cfg Config) (*Compiled, error) {
	if err := cfg.Machine.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: input graph invalid: %w", err)
	}
	if cfg.Align == transform.PadInputs {
		if err := transform.Align(g, transform.PadInputs); err != nil {
			return nil, fmt.Errorf("core: pad alignment: %w", err)
		}
	}
	// Conversions go in before buffers so the converted — usually
	// narrower — stream is what gets buffered and windowed.
	if err := transform.InsertConversions(g); err != nil {
		return nil, fmt.Errorf("core: element conversions: %w", err)
	}
	if err := transform.InsertBuffers(g); err != nil {
		return nil, fmt.Errorf("core: buffering: %w", err)
	}
	if cfg.Align == transform.Trim {
		if err := transform.Align(g, transform.Trim); err != nil {
			return nil, fmt.Errorf("core: trim alignment: %w", err)
		}
		// Trimming can shrink a stream below what its buffer was planned
		// for; re-derive the stale data extents.
		if err := transform.RefreshBufferPlans(g); err != nil {
			return nil, fmt.Errorf("core: buffer replanning: %w", err)
		}
	}
	var rep *transform.Report
	if cfg.Parallelize {
		var err error
		rep, err = transform.Parallelize(g, transform.Options{
			Machine:        cfg.Machine,
			BufferStriping: cfg.BufferStriping,
		})
		if err != nil {
			return nil, fmt.Errorf("core: parallelization: %w", err)
		}
	}
	r, err := analysis.Analyze(g)
	if err != nil {
		return nil, fmt.Errorf("core: final analysis: %w", err)
	}
	if r.HasProblems() {
		return nil, fmt.Errorf("core: transformed graph still has problems: %v", r.Problems[0])
	}
	ek, err := analysis.ElemKinds(g)
	if err != nil {
		return nil, fmt.Errorf("core: element-kind analysis: %w", err)
	}
	if len(ek.Violations) > 0 {
		return nil, fmt.Errorf("core: transformed graph still has element-kind violations: %v",
			ek.Violations[0])
	}
	return &Compiled{Graph: g, Analysis: r, Report: rep}, nil
}
