// Package registry is the fleet-membership layer for multi-frontend
// scale-out: workers dial into a frontend's Fleet and register
// (capabilities, analysis-derived capacity, compiled-pipeline cache),
// renew their membership with heartbeat leases, and deregister on
// drain. Placement goes through a consistent-hash Ring so any frontend
// that sees the same member set computes the same worker for a given
// session key — no coordination between frontends required.
package registry

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring with virtual nodes. The point set is
// a pure function of the member names (FNV-1a over name#vnode), so two
// frontends that agree on membership agree on every lookup, regardless
// of join order. Ring is not synchronized; callers serialize access.
type Ring struct {
	vnodes  int
	members map[string]struct{}
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member string
}

// DefaultVNodes is the virtual-node count per member. 128 keeps the
// max/mean load ratio under ~1.2 for small fleets while a full rebuild
// of a 100-member ring stays well under a millisecond.
const DefaultVNodes = 128

// NewRing returns an empty ring. vnodes <= 0 selects DefaultVNodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]struct{})}
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	// FNV-1a avalanches poorly on short keys with sequential suffixes
	// (exactly what name#vnode is), which skews arc ownership badly;
	// a splitmix64 finalizer restores uniformity.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a member. Adding an existing member is a no-op.
func (r *Ring) Add(member string) {
	if _, ok := r.members[member]; ok {
		return
	}
	r.members[member] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{
			hash:   ringHash(member + "#" + strconv.Itoa(i)),
			member: member,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member and its virtual nodes. Removing an unknown
// member is a no-op.
func (r *Ring) Remove(member string) {
	if _, ok := r.members[member]; !ok {
		return
	}
	delete(r.members, member)
	keep := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			keep = append(keep, p)
		}
	}
	r.points = keep
}

// Len reports the member count.
func (r *Ring) Len() int { return len(r.members) }

// Members returns the member names in sorted order.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Lookup maps a key to its owning member: the first virtual node at or
// clockwise of the key's hash. Empty ring returns "".
func (r *Ring) Lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(ringHash(key))].member
}

// LookupN walks the ring clockwise from the key's position and returns
// up to n distinct members in preference order. The first entry equals
// Lookup(key); later entries are the deterministic failover order every
// frontend agrees on.
func (r *Ring) LookupN(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	start := r.search(ringHash(key))
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		m := r.points[(start+i)%len(r.points)].member
		if _, dup := seen[m]; dup {
			continue
		}
		seen[m] = struct{}{}
		out = append(out, m)
	}
	return out
}

// search returns the index of the first point with hash >= h, wrapping
// to 0 past the end.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}
