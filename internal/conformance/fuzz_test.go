package conformance

import (
	"testing"

	"blockpar/internal/machine"
)

// FuzzDiff lets the native fuzzer drive the generator seed directly:
// every input derives a graph and runs the full differential check at
// one starved PE budget (the configuration that forces the most
// parallelization, and historically the most bugs). Crashers minimize
// to a seed that replays with
//
//	go test ./internal/conformance -run Diff -conformance.seed=N -conformance.n=1
func FuzzDiff(f *testing.F) {
	for seed := uint64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		c := Generate(seed)
		err := Check(c, CheckOptions{
			Frames:   1,
			Variants: []Variant{{Name: "small", Machine: machine.Small(), Striping: true}},
		})
		if err != nil {
			t.Fatalf("case %s (seed %d): %v", c.Name, seed, err)
		}
	})
}
