package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"blockpar/internal/apps"
	"blockpar/internal/serve"
)

// startRegistered brings up a registered fleet over loopback with test
// patience intervals, registering cleanup.
func startRegistered(t *testing.T, frontends, workers int, cfg RegisteredClusterConfig) *RegisteredCluster {
	t.Helper()
	if cfg.Dispatcher.PingInterval == 0 {
		cfg.Dispatcher = fastOpts()
	}
	if cfg.MakeWorker == nil {
		cfg.MakeWorker = func(i int) *Worker {
			return NewWorker(suiteRegistry(t, "5"), WorkerOptions{Name: fmt.Sprintf("rw%d", i)})
		}
	}
	c, err := StartRegisteredCluster(frontends, workers, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestRegisteredPlacementAgreement is the multi-frontend acceptance
// check: two frontends that never talk to each other, fed only by the
// workers' own registrations, must compute identical ring placement for
// every session key — and a keyed session opened on either frontend
// must land on the ring's first choice.
func TestRegisteredPlacementAgreement(t *testing.T) {
	c := startRegistered(t, 2, 3, RegisteredClusterConfig{})

	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("session-%d", i)
		a := c.Dispatchers[0].PlacementFor(key)
		b := c.Dispatchers[1].PlacementFor(key)
		if len(a) != 3 || len(b) != 3 {
			t.Fatalf("key %q: placement lengths %d/%d, want 3", key, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("key %q: frontends disagree on placement: %v vs %v", key, a, b)
			}
		}
	}

	// A keyed open on each frontend independently lands on the ring's
	// first choice, and the stream is byte-identical to the batch golden.
	app, err := apps.ByID("5")
	if err != nil {
		t.Fatal(err)
	}
	const frames = 4
	want := batchFrames(t, app, frames)
	byAddr := make(map[string]string, len(c.Workers))
	for _, rw := range c.Workers {
		byAddr[rw.Addr] = rw.Name
	}
	for fe, d := range c.Dispatchers {
		frontend := suiteRegistry(t, "5")
		p, _ := frontend.Get("5")
		key := "agreement-key"
		h, err := d.Open(p, serve.OpenOptions{MaxInFlight: frames, Key: key})
		if err != nil {
			t.Fatalf("frontend %d: open: %v", fe, err)
		}
		got := byAddr[h.(*remoteSession).workerAddr()]
		if first := d.PlacementFor(key)[0]; got != first {
			t.Fatalf("frontend %d: keyed session placed on %q, ring says %q", fe, got, first)
		}
		if err := streamSession(h, frames, want); err != nil {
			t.Fatalf("frontend %d: %v", fe, err)
		}
	}
}

// TestRegisteredDrainCancelsReconnect is the regression test for the
// reconnect-loop bug: draining a worker (Deregister, then shutdown)
// must cancel the dispatcher's reconnect loop so the dead address is
// never redialed — and a later rejoin under the same name starts a
// fresh manager that places again.
func TestRegisteredDrainCancelsReconnect(t *testing.T) {
	var mu sync.Mutex
	dials := make(map[string]int)
	opts := fastOpts()
	opts.Dial = func(addr string) (net.Conn, error) {
		mu.Lock()
		dials[addr]++
		mu.Unlock()
		return net.DialTimeout("tcp", addr, 5*time.Second)
	}
	c := startRegistered(t, 1, 2, RegisteredClusterConfig{Dispatcher: opts})
	d := c.Dispatchers[0]

	victim := c.Workers[0]
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := victim.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	waitCondition(t, "drained worker removed from placement", func() bool {
		return d.PlaceableWorkers() == 1
	})

	// The reconnect loop must be gone: the dial count for the drained
	// address stays frozen across many reconnect intervals.
	settle := func() int {
		mu.Lock()
		defer mu.Unlock()
		return dials[victim.Addr]
	}
	// Let any in-flight dial finish first.
	time.Sleep(5 * opts.ReconnectMax)
	before := settle()
	time.Sleep(20 * opts.ReconnectMax)
	if after := settle(); after != before {
		t.Fatalf("drained worker redialed: %d dials grew to %d after deregistration", before, after)
	}

	// Rejoin under the same name on a fresh listener: the fleet emits a
	// join, the dispatcher starts a new manager, and sessions place on
	// it again.
	rejoined := NewWorker(suiteRegistry(t, "5"), WorkerOptions{Name: victim.Name})
	if _, err := c.JoinWorker(rejoined, 1e18); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	if err := c.WaitPlaceable(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	app, err := apps.ByID("5")
	if err != nil {
		t.Fatal(err)
	}
	const frames = 4
	want := batchFrames(t, app, frames)
	frontend := suiteRegistry(t, "5")
	p, _ := frontend.Get("5")
	if err := streamCluster(d, p, frames, want); err != nil {
		t.Fatalf("stream after rejoin: %v", err)
	}
}

// TestRegisteredAdmissionControl verifies analysis-driven admission:
// once the fleet's registered cycles/sec are spoken for, Open returns
// serve.ErrOverloaded (the 429 contract) instead of oversubscribing —
// and closing a session returns its cycles to the pool.
func TestRegisteredAdmissionControl(t *testing.T) {
	frontend := suiteRegistry(t, "5")
	p, _ := frontend.Get("5")
	if p.CyclesPerSec <= 0 {
		t.Fatalf("pipeline 5 has no analysis demand (%v cycles/s); admission test needs one", p.CyclesPerSec)
	}

	// Capacity fits one session but not two.
	c := startRegistered(t, 1, 1, RegisteredClusterConfig{
		Capacity: func(int) float64 { return 1.5 * p.CyclesPerSec },
	})
	d := c.Dispatchers[0]

	h1, err := openN(d, p, 2)
	if err != nil {
		t.Fatalf("first open within capacity: %v", err)
	}
	if _, err := openN(d, p, 2); !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("second open got %v, want serve.ErrOverloaded", err)
	}
	stats := d.BackendStats().(map[string]any)
	fleet := stats["fleet"].(map[string]any)
	if rejects := fleet["admission_rejects"].(int64); rejects != 1 {
		t.Fatalf("admission_rejects = %d, want 1", rejects)
	}

	// Closing the admitted session releases its cycles; the next open
	// succeeds.
	if err := h1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	h2, err := openN(d, p, 2)
	if err != nil {
		t.Fatalf("open after release: %v", err)
	}
	h2.Close()
}

// TestRegisteredFlapFailover kills a registered worker mid-stream: the
// session fails over to a survivor with the stream byte-identical to
// the batch golden, lease expiry drops the dead member from every
// frontend, and a flap-rejoin restores full placement.
func TestRegisteredFlapFailover(t *testing.T) {
	// Goldens are compiled before the fleet exists: the compile is
	// CPU-heavy enough to starve a sub-second lease's heartbeats under
	// the race detector.
	const frames = 8
	app, err := apps.ByID("5")
	if err != nil {
		t.Fatal(err)
	}
	want := batchFrames(t, app, frames)
	wantShort := batchFrames(t, app, 4)
	frontend := suiteRegistry(t, "5")
	p, _ := frontend.Get("5")

	c := startRegistered(t, 2, 2, RegisteredClusterConfig{Lease: 500 * time.Millisecond})
	d := c.Dispatchers[0]

	h, err := openN(d, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 4; f++ {
		feedRetry(t, h, nil)
	}
	for f := int64(0); f < 2; f++ {
		collectCompare(t, h, f, want)
	}

	// Crash the worker under the session: no Deregister, just death.
	addr := h.(*remoteSession).workerAddr()
	var victim *RegisteredWorker
	for _, rw := range c.Workers {
		if rw.Addr == addr {
			victim = rw
		}
	}
	if victim == nil {
		t.Fatalf("session worker %s not in harness", addr)
	}
	victim.Kill()

	// The stream continues on the survivor, byte-identical. Collect
	// rides along so the in-flight window stays open.
	for f := 4; f < frames; f++ {
		feedRetry(t, h, nil)
		collectCompare(t, h, int64(f-2), want)
	}
	for f := int64(frames - 2); f < frames; f++ {
		collectCompare(t, h, f, want)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Lease expiry evicts the dead member from every frontend — no
	// Deregister was ever sent.
	for fe, df := range c.Dispatchers {
		df := df
		waitCondition(t, fmt.Sprintf("frontend %d drops dead member", fe), func() bool {
			return len(df.PlacementFor("any")) == 1
		})
	}

	// Flap: rejoin under the same name, placement heals everywhere.
	rejoined := NewWorker(suiteRegistry(t, "5"), WorkerOptions{Name: victim.Name})
	if _, err := c.JoinWorker(rejoined, 1e18); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	if err := c.WaitPlaceable(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := streamCluster(d, p, 4, wantShort); err != nil {
		t.Fatalf("stream after flap: %v", err)
	}
}
