package registry

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"blockpar/internal/wire"
)

// JoinConfig configures a worker's registration with one or more
// frontends.
type JoinConfig struct {
	// Frontends are the registration addresses to dial. Each gets its
	// own independent register/heartbeat loop, so every frontend
	// sharing the fleet sees the same membership.
	Frontends []string
	// Self describes this worker. Name and Addr are required; Addr is
	// the data-plane address frontends dial back for sessions.
	Self Member
	// Load, if set, is sampled at each heartbeat to report current
	// session count and projected cycles/sec load.
	Load func() (sessions uint32, cyclesPerSec float64)
	// Pipelines, if set, is sampled at each (re-)registration to
	// inventory the compiled-pipeline cache; otherwise Self.Pipelines
	// is sent as-is.
	Pipelines func() []string
	// Dial overrides net.Dial, e.g. for fault injection. Nil uses a
	// 5-second-timeout TCP dial.
	Dial func(network, addr string) (net.Conn, error)
	// RetryMin/RetryMax bound the reconnect backoff. Zero selects
	// 100ms/2s.
	RetryMin, RetryMax time.Duration
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// Joiner maintains a worker's registration with its frontends:
// dial, handshake, Register, heartbeat at a third of the granted
// lease, and redial with backoff when the connection or the lease is
// lost. Leave sends a graceful Deregister everywhere before stopping.
type Joiner struct {
	cfg JoinConfig

	// draining, once set, rides every heartbeat so frontends stop
	// placing sessions here and migrate resident ones off.
	draining atomic.Bool

	mu    sync.Mutex
	conns map[string]*wire.Conn // live registration conn per frontend

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// Join starts registration loops toward every frontend and returns
// immediately; registration happens (and recovers) in the background.
func Join(cfg JoinConfig) (*Joiner, error) {
	if cfg.Self.Name == "" || cfg.Self.Addr == "" {
		return nil, fmt.Errorf("registry: join needs a worker name and data-plane address")
	}
	if len(cfg.Frontends) == 0 {
		return nil, fmt.Errorf("registry: join needs at least one frontend address")
	}
	if cfg.Dial == nil {
		cfg.Dial = func(network, addr string) (net.Conn, error) {
			return net.DialTimeout(network, addr, 5*time.Second)
		}
	}
	if cfg.RetryMin <= 0 {
		cfg.RetryMin = 100 * time.Millisecond
	}
	if cfg.RetryMax < cfg.RetryMin {
		cfg.RetryMax = 2 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	j := &Joiner{
		cfg:   cfg,
		conns: make(map[string]*wire.Conn),
		stop:  make(chan struct{}),
	}
	for _, fe := range cfg.Frontends {
		j.wg.Add(1)
		go j.loop(fe)
	}
	return j, nil
}

// Leave deregisters gracefully from every connected frontend, then
// stops all loops. Frontends drop the member immediately instead of
// waiting out the lease — and cancel any reconnect loop pointed at
// this worker's data address.
func (j *Joiner) Leave(reason string) {
	j.mu.Lock()
	for _, c := range j.conns {
		c.Write(&wire.Deregister{Reason: reason})
	}
	j.mu.Unlock()
	j.Close()
}

// SetDraining announces planned maintenance: every subsequent
// heartbeat carries the draining flag, telling frontends to stop
// placing sessions here and migrate resident ones to survivors before
// the worker's Goaway lands. One immediate heartbeat goes out on each
// live registration so the fleet reacts before the next scheduled
// beat.
func (j *Joiner) SetDraining() {
	j.draining.Store(true)
	var sessions uint32
	var load float64
	if j.cfg.Load != nil {
		sessions, load = j.cfg.Load()
	}
	j.mu.Lock()
	conns := make([]*wire.Conn, 0, len(j.conns))
	for _, c := range j.conns {
		conns = append(conns, c)
	}
	j.mu.Unlock()
	for _, c := range conns {
		c.Write(&wire.Heartbeat{Sessions: sessions, CyclesPerSec: load, Draining: true})
	}
}

// Close stops all loops without deregistering; frontends see the
// conn drop and let the lease expire.
func (j *Joiner) Close() {
	j.stopOnce.Do(func() { close(j.stop) })
	j.mu.Lock()
	for _, c := range j.conns {
		c.Close()
	}
	j.mu.Unlock()
	j.wg.Wait()
}

func (j *Joiner) loop(frontend string) {
	defer j.wg.Done()
	backoff := j.cfg.RetryMin
	for {
		select {
		case <-j.stop:
			return
		default:
		}
		err := j.session(frontend)
		if err == nil {
			// Clean shutdown.
			return
		}
		select {
		case <-j.stop:
			return
		case <-time.After(backoff):
		}
		// Decorrelated jitter: a fleet of workers that lost the same
		// frontend at the same instant spreads its re-registrations
		// instead of thundering back in lockstep.
		backoff = JitterBackoff(backoff, j.cfg.RetryMin, j.cfg.RetryMax)
	}
}

// session runs one dial→register→heartbeat lifetime against a
// frontend. It returns nil only when the joiner is stopping; any error
// means "redial after backoff".
func (j *Joiner) session(frontend string) error {
	nc, err := j.cfg.Dial("tcp", frontend)
	if err != nil {
		return err
	}
	conn := wire.NewConn(nc)
	defer conn.Close()

	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	if _, err := conn.Handshake(); err != nil {
		return err
	}
	self := j.cfg.Self
	if j.cfg.Pipelines != nil {
		self.Pipelines = j.cfg.Pipelines()
	}
	if err := conn.Write(&wire.Register{
		Name:         self.Name,
		Addr:         self.Addr,
		CyclesPerSec: self.CyclesPerSec,
		Executor:     self.Executor,
		Pipelines:    self.Pipelines,
	}); err != nil {
		return err
	}
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	m, err := conn.Read()
	if err != nil {
		return err
	}
	ack, ok := m.(*wire.RegisterAck)
	if !ok {
		return fmt.Errorf("registry: register answered with %s", m.Type())
	}
	if ack.Err != "" {
		return fmt.Errorf("registry: %s refused registration: %s", frontend, ack.Err)
	}
	lease := time.Duration(ack.LeaseMs) * time.Millisecond
	if lease <= 0 {
		lease = DefaultLease
	}
	j.cfg.Logf("registry: registered with %s (lease %v)", frontend, lease)

	j.mu.Lock()
	j.conns[frontend] = conn
	j.mu.Unlock()
	// A drain announced while this frontend was unreachable must not
	// wait out a third of the lease: flag it on a beat right away.
	if j.draining.Load() {
		var sessions uint32
		var load float64
		if j.cfg.Load != nil {
			sessions, load = j.cfg.Load()
		}
		if err := conn.Write(&wire.Heartbeat{Sessions: sessions, CyclesPerSec: load, Draining: true}); err != nil {
			return err
		}
	}
	defer func() {
		j.mu.Lock()
		if j.conns[frontend] == conn {
			delete(j.conns, frontend)
		}
		j.mu.Unlock()
	}()

	// The frontend only ever speaks to report an error (e.g. lease
	// expired under a stall); a reader goroutine turns that — or the
	// conn dying — into a redial signal.
	readErr := make(chan error, 1)
	go func() {
		conn.SetReadDeadline(time.Time{})
		m, err := conn.Read()
		if err != nil {
			readErr <- err
			return
		}
		if e, ok := m.(*wire.Error); ok {
			readErr <- fmt.Errorf("registry: frontend %s: %s", frontend, e.Msg)
			return
		}
		readErr <- fmt.Errorf("registry: unexpected %s from frontend %s", m.Type(), frontend)
	}()

	beat := time.NewTicker(lease / 3)
	defer beat.Stop()
	for {
		select {
		case <-j.stop:
			return nil
		case err := <-readErr:
			j.cfg.Logf("registry: connection to %s lost: %v", frontend, err)
			return err
		case <-beat.C:
			var sessions uint32
			var load float64
			if j.cfg.Load != nil {
				sessions, load = j.cfg.Load()
			}
			if err := conn.Write(&wire.Heartbeat{
				Sessions:     sessions,
				CyclesPerSec: load,
				Draining:     j.draining.Load(),
			}); err != nil {
				return err
			}
		}
	}
}
