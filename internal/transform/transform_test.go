package transform

import (
	"strings"
	"testing"

	"blockpar/internal/analysis"
	"blockpar/internal/apps"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
	"blockpar/internal/machine"
)

func mustAnalyze(t *testing.T, g *graph.Graph) *analysis.Result {
	t.Helper()
	r, err := analysis.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestFigure3BufferAndInsetInsertion reproduces Figure 3: after
// buffering and trim alignment, the image pipeline has three buffers
// (two for the median/conv data paths... the 5x5 conv and 3x3 median
// each get one, the histogram path needs none) and one inset kernel on
// the median branch.
func TestFigure3BufferAndInsetInsertion(t *testing.T) {
	app := apps.ImagePipeline("fig3", apps.ImageCfg{W: 20, H: 16, Rate: geom.FInt(50), Bins: 16})
	g := app.Graph
	if err := InsertBuffers(g); err != nil {
		t.Fatal(err)
	}
	if err := Align(g, Trim); err != nil {
		t.Fatal(err)
	}
	counts := g.CountByKind()
	if counts[graph.KindBuffer] != 2 {
		t.Errorf("buffers = %d, want 2 (median and conv paths)", counts[graph.KindBuffer])
	}
	if counts[graph.KindInset] != 1 {
		t.Errorf("insets = %d, want 1 (median branch)", counts[graph.KindInset])
	}
	// The inset trims one item on each side (Figure 3's (0,0)[1,1,1,1]).
	for _, n := range g.Nodes() {
		if n.Kind != graph.KindInset {
			continue
		}
		plan, ok := kernel.InsetPlanOf(n)
		if !ok {
			t.Fatal("inset node without plan")
		}
		if plan.L != 1 || plan.R != 1 || plan.T != 1 || plan.B != 1 {
			t.Errorf("inset plan = %+v, want 1 on each side", plan)
		}
	}
	// After the fixes the analysis is clean.
	r := mustAnalyze(t, g)
	if r.HasProblems() {
		t.Errorf("problems remain: %v", r.Problems)
	}
	// And the subtract kernel sees 14x10 items on both inputs
	// (region 20x16 minus the 5x5 halo plus insets).
	sub := g.Node("Subtract")
	i0 := r.In[sub.Input("in0")]
	i1 := r.In[sub.Input("in1")]
	if i0.Items != geom.Sz(16, 12) || i1.Items != geom.Sz(16, 12) {
		t.Errorf("subtract inputs = %v / %v, want 16x12 items", i0.Items, i1.Items)
	}
	if !i0.Inset.Add(sub.Input("in0").Offset).Equal(i1.Inset.Add(sub.Input("in1").Offset)) {
		t.Errorf("subtract insets still differ: %v vs %v", i0.Inset, i1.Inset)
	}
}

func TestPadAlignmentGrowsConvOutput(t *testing.T) {
	app := apps.ImagePipeline("pad-align", apps.ImageCfg{W: 20, H: 16, Rate: geom.FInt(50), Bins: 16})
	g := app.Graph
	if err := Align(g, PadInputs); err != nil {
		t.Fatal(err)
	}
	counts := g.CountByKind()
	if counts[graph.KindPad] != 1 {
		t.Fatalf("pads = %d, want 1 (conv branch)", counts[graph.KindPad])
	}
	var pad *graph.Node
	for _, n := range g.Nodes() {
		if n.Kind == graph.KindPad {
			pad = n
		}
	}
	plan, _ := kernel.PadPlanOf(pad)
	if plan.L != 1 || plan.R != 1 || plan.T != 1 || plan.B != 1 {
		t.Errorf("pad plan = %+v, want 1 on each side", plan)
	}
	// The pad feeds the conv branch (upstream of the conv kernel).
	if err := InsertBuffers(g); err != nil {
		t.Fatal(err)
	}
	r := mustAnalyze(t, g)
	if r.HasProblems() {
		t.Errorf("problems remain after pad+buffer: %v", r.Problems)
	}
	// Both subtract inputs now cover the median's grid (18x14).
	sub := g.Node("Subtract")
	if got := r.In[sub.Input("in1")].Items; got != geom.Sz(18, 14) {
		t.Errorf("conv branch items = %v, want 18x14", got)
	}
}

func TestBuffersNotInsertedWhenAligned(t *testing.T) {
	// A pure item pipeline (gain) needs no buffers.
	g := graph.New("nobuf")
	in := g.AddInput("Input", geom.Sz(8, 8), geom.Sz(1, 1), geom.FInt(10))
	k := g.Add(kernel.Gain("Gain", 2))
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", k, "in")
	g.Connect(k, "out", out, "in")
	if err := InsertBuffers(g); err != nil {
		t.Fatal(err)
	}
	if got := g.CountByKind()[graph.KindBuffer]; got != 0 {
		t.Errorf("buffers = %d, want 0", got)
	}
}

func TestInputBuffersMarkedNoMultiplex(t *testing.T) {
	app := apps.ImagePipeline("nomux", apps.ImageCfg{W: 20, H: 16, Rate: geom.FInt(50), Bins: 16})
	g := app.Graph
	if err := InsertBuffers(g); err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Nodes() {
		if n.Kind == graph.KindBuffer && !n.NoMultiplex {
			t.Errorf("input buffer %q not marked NoMultiplex", n.Name())
		}
	}
}

// TestFigure4Parallelization drives the running example at a rate that
// forces the compute kernels to replicate, and checks the structure the
// paper shows in Figure 4: parallel conv and median instances behind
// split/column buffers, a replicated coefficient input, a parallelized
// histogram, and a Merge held serial by the data-dependency edge.
func TestFigure4Parallelization(t *testing.T) {
	app := apps.ImagePipeline("fig4", apps.ImageCfg{
		W: apps.SmallW, H: apps.SmallH,
		Rate: geom.F(apps.FastRate, int64(apps.SmallW*apps.SmallH)),
		Bins: 32,
	})
	g := app.Graph
	if err := InsertBuffers(g); err != nil {
		t.Fatal(err)
	}
	if err := Align(g, Trim); err != nil {
		t.Fatal(err)
	}
	rep, err := Parallelize(g, Options{Machine: machine.Embedded(), BufferStriping: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := rep.Degrees["5x5 Conv"]; d < 2 {
		t.Errorf("conv degree = %d, want >= 2", d)
	}
	if d := rep.Degrees["3x3 Median"]; d < 2 {
		t.Errorf("median degree = %d, want >= 2", d)
	}
	if d := rep.Degrees["Histogram"]; d < 2 {
		t.Errorf("histogram degree = %d, want >= 2", d)
	}
	if d := rep.Degrees["Merge"]; d != 1 {
		t.Errorf("merge degree = %d, want 1 (data-dependency edge)", d)
	}
	// Structure: replicate node for the coefficients, split/join pairs.
	counts := g.CountByKind()
	if counts[graph.KindReplicate] < 1 {
		t.Error("no Replicate kernel for the replicated coeff input")
	}
	if counts[graph.KindSplit] < 3 || counts[graph.KindJoin] < 3 {
		t.Errorf("split/join = %d/%d, want >= 3 each", counts[graph.KindSplit], counts[graph.KindJoin])
	}
	if len(g.InstancesOf("5x5 Conv")) != rep.Degrees["5x5 Conv"] {
		t.Errorf("conv instances = %d, want %d", len(g.InstancesOf("5x5 Conv")), rep.Degrees["5x5 Conv"])
	}
	// Per-stripe buffers replaced the shared ones.
	for _, n := range g.Nodes() {
		if n.Kind == graph.KindBuffer {
			if plan, ok := kernel.BufferPlanOf(n); ok && plan.DataW >= apps.SmallW {
				t.Errorf("buffer %q still spans the full width %d", n.Name(), plan.DataW)
			}
		}
	}
	// The transformed graph still validates and analyzes cleanly.
	r := mustAnalyze(t, g)
	if r.HasProblems() {
		t.Errorf("problems after parallelization: %v", r.Problems)
	}
}

func TestParallelizeRequiresCleanGraph(t *testing.T) {
	app := apps.ImagePipeline("dirty", apps.ImageCfg{W: 20, H: 16, Rate: geom.FInt(50), Bins: 16})
	_, err := Parallelize(app.Graph, Options{Machine: machine.Embedded(), BufferStriping: true})
	if err == nil || !strings.Contains(err.Error(), "buffered and aligned") {
		t.Fatalf("unbuffered graph accepted: %v", err)
	}
}

// TestFigure10BufferOnlySplit checks the memory-bound buffer split: a
// wide frame at a trivial rate forces the line buffer across PEs while
// the paired convolution also stripes (stripe degree = max of both
// constraints).
func TestFigure10BufferOnlySplit(t *testing.T) {
	app := apps.ParallelBufferTest("parbuf", apps.BufferCfg{
		W: 256, H: 32, Rate: geom.F(apps.SlowRate, 256*32),
	})
	g := app.Graph
	if err := InsertBuffers(g); err != nil {
		t.Fatal(err)
	}
	rep, err := Parallelize(g, Options{Machine: machine.Embedded(), BufferStriping: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.StripedBuffers) == 0 {
		t.Fatal("wide buffer not striped")
	}
	// Every stripe buffer now fits in PE memory.
	m := machine.Embedded()
	for _, n := range g.Nodes() {
		if n.Kind != graph.KindBuffer {
			continue
		}
		if plan, ok := kernel.BufferPlanOf(n); ok {
			if plan.MemoryWords() > m.PE.MemWords {
				t.Errorf("stripe buffer %q needs %d words > PE %d",
					n.Name(), plan.MemoryWords(), m.PE.MemWords)
			}
		}
	}
	// Column split kernels replicate the overlap (Figure 10).
	for _, n := range g.Nodes() {
		if n.Kind != graph.KindSplit {
			continue
		}
		stripes, ok := kernel.SplitColumnsStripes(n)
		if !ok {
			continue
		}
		for i := 1; i < len(stripes); i++ {
			overlap := stripes[i-1].InEnd - stripes[i].InStart
			if overlap != 2 { // winW - stepX = 3 - 1
				t.Errorf("stripe overlap = %d, want 2", overlap)
			}
		}
	}
}

// TestFigure9StripingAblation compares the reuse-optimized striped
// buffers against the shared-buffer round-robin alternative: striping
// moves far fewer words per frame out of the buffers (in-buffer reuse),
// at the cost of replicating the overlap columns on the way in.
func TestFigure9StripingAblation(t *testing.T) {
	build := func(striping bool) (int64, int64) {
		app := apps.ImagePipeline("fig9", apps.ImageCfg{
			W: apps.SmallW, H: apps.SmallH,
			Rate: geom.F(apps.FastRate, int64(apps.SmallW*apps.SmallH)),
			Bins: 32,
		})
		g := app.Graph
		if err := InsertBuffers(g); err != nil {
			t.Fatal(err)
		}
		if err := Align(g, Trim); err != nil {
			t.Fatal(err)
		}
		if _, err := Parallelize(g, Options{Machine: machine.Embedded(), BufferStriping: striping}); err != nil {
			t.Fatal(err)
		}
		r := mustAnalyze(t, g)
		var bufWrite, bufMem int64
		for _, n := range g.Nodes() {
			if n.Kind == graph.KindBuffer {
				bufWrite += r.Nodes[n].WriteWordsPerFrame
				bufMem += r.Nodes[n].MemoryWords
			}
		}
		return bufWrite, bufMem
	}
	stripedWrite, _ := build(true)
	sharedWrite, _ := build(false)
	if stripedWrite <= 0 || sharedWrite <= 0 {
		t.Fatal("no buffer traffic measured")
	}
	// Both configurations move the same window data out of buffers
	// (one window per kernel iteration); the striped layout only adds
	// the replicated overlap columns on the way in. What striping buys
	// is per-instance buffers that fit PE memory; the traffic should
	// stay within ~25% of the shared-buffer layout.
	if stripedWrite > sharedWrite*5/4 {
		t.Errorf("striped buffers write %d words vs shared %d; overhead too high",
			stripedWrite, sharedWrite)
	}
}

func TestRRParallelizeGainStructure(t *testing.T) {
	g := graph.New("rr-gain")
	in := g.AddInput("Input", geom.Sz(16, 16), geom.Sz(1, 1), geom.F(apps.FastRate, 256))
	k := g.Add(kernel.Gain("Gain", 2))
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", k, "in")
	g.Connect(k, "out", out, "in")
	rep, err := Parallelize(g, Options{Machine: machine.Small(), BufferStriping: true})
	if err != nil {
		t.Fatal(err)
	}
	deg := rep.Degrees["Gain"]
	if deg < 2 {
		t.Fatalf("gain degree = %d, want >= 2", deg)
	}
	if got := len(g.InstancesOf("Gain")); got != deg {
		t.Errorf("instances = %d, want %d", got, deg)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
