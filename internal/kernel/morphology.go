package kernel

import (
	"fmt"

	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
)

// MorphOp selects the order statistic a morphology kernel computes.
type MorphOp int

const (
	// Erode takes the window minimum.
	Erode MorphOp = iota
	// Dilate takes the window maximum.
	Dilate
)

func (op MorphOp) String() string {
	if op == Erode {
		return "erode"
	}
	return "dilate"
}

// Morphology builds a k×k grayscale erosion or dilation kernel — the
// other classic windowed non-linear filters beside the median, rounding
// out the image-processing kernel library.
func Morphology(name string, k int, op MorphOp) *graph.Node {
	if k < 1 || k%2 == 0 {
		panic(fmt.Sprintf("kernel: morphology size %d must be odd and positive", k))
	}
	n := graph.NewNode(name, graph.KindKernel)
	half := int64(k / 2)
	n.CreateInput("in", geom.Sz(k, k), geom.St(1, 1), geom.Off(half, half))
	n.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	n.RegisterMethod("runMorph", int64(methodOverhead+2*k*k), int64(k*k))
	n.RegisterMethodInput("runMorph", "in")
	n.RegisterMethodOutput("runMorph", "out")
	n.Attrs["ktype"] = "morphology"
	n.Attrs["kparams"] = fmt.Sprintf("%d,%d", k, int(op))
	n.Behavior = morphBehavior{op: op}
	return n
}

type morphBehavior struct{ op MorphOp }

func (b morphBehavior) Clone() graph.Behavior { return b }

func (b morphBehavior) Invoke(method string, ctx graph.ExecContext) error {
	if method != "runMorph" {
		return fmt.Errorf("kernel: morphology has no method %q", method)
	}
	in := ctx.Input("in")
	best := in.At(0, 0)
	for y := 0; y < in.H; y++ {
		for _, v := range in.Row(y) {
			if (b.op == Erode && v < best) || (b.op == Dilate && v > best) {
				best = v
			}
		}
	}
	ctx.Emit("out", frame.PooledScalar(best))
	return nil
}
