// Package fault is a seeded, deterministic fault-injection layer for
// the cluster's wire connections. An Injector wraps a dial function so
// every connection it produces misbehaves according to a Profile:
// outgoing frames can be corrupted (one flipped bit, which the wire
// codec's CRC32C trailer must catch), dropped, delayed, truncated by a
// partial write, stalled (a slow worker), or cut off by an abrupt
// close. All decisions come from per-connection RNGs derived from one
// master seed, so a chaos-run failure replays exactly from its seed.
//
// The injector sits below the wire codec — it sees opaque byte frames,
// never message types — so it cannot accidentally respect the protocol
// it is supposed to break. See docs/robustness.md for how the
// conformance chaos mode uses it.
package fault

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Profile sets per-write fault probabilities, each in [0,1]. The
// checks run in field order against one uniform draw per write, so at
// most one fault fires per write and the total fault rate is the sum
// of the probabilities (callers keep it under 1).
type Profile struct {
	// Corrupt flips one bit of the outgoing frame. The wire CRC must
	// turn this into a typed ErrCorrupt, never silently wrong samples.
	Corrupt float64
	// Drop discards the write while reporting success: the peer loses
	// one whole protocol frame mid-stream.
	Drop float64
	// Partial writes a prefix of the frame and severs the connection,
	// leaving the peer a truncated frame.
	Partial float64
	// Close severs the connection before the write: an abrupt worker
	// or frontend death.
	Close float64
	// Delay sleeps a random duration up to DelayMax before the write.
	Delay    float64
	DelayMax time.Duration
	// Stall holds the write for StallFor — a slow worker, long enough
	// to trip health checks when StallFor exceeds the ping timeout.
	Stall    float64
	StallFor time.Duration
}

// Stats counts the faults an Injector actually delivered.
type Stats struct {
	Conns     int64 `json:"conns"`
	Corrupted int64 `json:"corrupted"`
	Dropped   int64 `json:"dropped"`
	Partials  int64 `json:"partials"`
	Closed    int64 `json:"closed"`
	Delayed   int64 `json:"delayed"`
	Stalled   int64 `json:"stalled"`
}

// Injector derives one deterministic fault stream per connection from
// a master seed. Safe for concurrent use; each wrapped connection
// serializes its own draws.
type Injector struct {
	seed    uint64
	profile Profile
	conns   atomic.Uint64

	corrupted atomic.Int64
	dropped   atomic.Int64
	partials  atomic.Int64
	closed    atomic.Int64
	delayed   atomic.Int64
	stalled   atomic.Int64
}

// NewInjector builds an injector delivering p's faults, seeded so the
// n-th connection's fault sequence is a pure function of (seed, n).
func NewInjector(seed uint64, p Profile) *Injector {
	return &Injector{seed: seed, profile: p}
}

// WrapDial wraps a dial function so every connection it opens runs
// through the injector.
func (inj *Injector) WrapDial(dial func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		nc, err := dial(addr)
		if err != nil {
			return nil, err
		}
		return inj.Wrap(nc), nil
	}
}

// WrapListener wraps a listener so every accepted connection runs
// through the injector — the server-side twin of WrapDial, covering
// the result/credit direction of a wire conversation.
func (inj *Injector) WrapListener(ln net.Listener) net.Listener {
	return &faultListener{Listener: ln, inj: inj}
}

type faultListener struct {
	net.Listener
	inj *Injector
}

func (l *faultListener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.inj.Wrap(nc), nil
}

// Wrap returns nc with this injector's faults applied to its writes.
func (inj *Injector) Wrap(nc net.Conn) net.Conn {
	n := inj.conns.Add(1)
	return &faultConn{
		Conn: nc,
		inj:  inj,
		rng:  rand.New(rand.NewSource(int64(mix(inj.seed, n)))),
	}
}

// Stats reports the faults delivered so far.
func (inj *Injector) Stats() Stats {
	return Stats{
		Conns:     int64(inj.conns.Load()),
		Corrupted: inj.corrupted.Load(),
		Dropped:   inj.dropped.Load(),
		Partials:  inj.partials.Load(),
		Closed:    inj.closed.Load(),
		Delayed:   inj.delayed.Load(),
		Stalled:   inj.stalled.Load(),
	}
}

// At picks a deterministic event index in [1, n-1] from a seed — the
// frame at which a chaos campaign triggers its one scheduled fault
// (a registration flap, a frontend kill). Index 0 is excluded so the
// stream always makes some progress before the fault, which keeps the
// dedup watermark ahead of the replay. n below 2 pins the event to
// frame 1.
func At(seed uint64, n int) int {
	if n < 3 {
		return 1
	}
	return 1 + int(mix(seed, 0x0a11)%uint64(n-1))
}

// mix is splitmix64's finalizer over the seed and connection index —
// adjacent seeds must not produce correlated per-conn streams.
func mix(seed, n uint64) uint64 {
	z := seed + n*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// faultConn applies one fault stream to a connection's writes.
type faultConn struct {
	net.Conn
	inj *Injector

	mu  sync.Mutex
	rng *rand.Rand
}

// decide draws once and returns the fault to apply plus any sampled
// delay, under mu so concurrent writers see a deterministic total
// order of draws.
type faultKind int

const (
	faultNone faultKind = iota
	faultCorrupt
	faultDrop
	faultPartial
	faultClose
	faultDelay
	faultStall
)

func (c *faultConn) decide() (faultKind, int, time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := &c.inj.profile
	u := c.rng.Float64()
	bit := c.rng.Intn(1 << 30) // consumed every draw to keep streams aligned
	var delay time.Duration
	if p.DelayMax > 0 {
		delay = time.Duration(c.rng.Int63n(int64(p.DelayMax))) + time.Millisecond
	}
	switch {
	case u < p.Corrupt:
		return faultCorrupt, bit, 0
	case u < p.Corrupt+p.Drop:
		return faultDrop, 0, 0
	case u < p.Corrupt+p.Drop+p.Partial:
		return faultPartial, 0, 0
	case u < p.Corrupt+p.Drop+p.Partial+p.Close:
		return faultClose, 0, 0
	case u < p.Corrupt+p.Drop+p.Partial+p.Close+p.Delay:
		return faultDelay, 0, delay
	case u < p.Corrupt+p.Drop+p.Partial+p.Close+p.Delay+p.Stall:
		return faultStall, 0, p.StallFor
	}
	return faultNone, 0, 0
}

func (c *faultConn) Write(b []byte) (int, error) {
	kind, bit, delay := c.decide()
	switch kind {
	case faultCorrupt:
		c.inj.corrupted.Add(1)
		dup := make([]byte, len(b))
		copy(dup, b)
		if len(dup) > 0 {
			i := bit % len(dup)
			dup[i] ^= 1 << (bit % 8)
		}
		n, err := c.Conn.Write(dup)
		return n, err
	case faultDrop:
		c.inj.dropped.Add(1)
		return len(b), nil
	case faultPartial:
		c.inj.partials.Add(1)
		n := len(b) / 2
		if n > 0 {
			c.Conn.Write(b[:n])
		}
		c.Conn.Close()
		return n, net.ErrClosed
	case faultClose:
		c.inj.closed.Add(1)
		c.Conn.Close()
		return 0, net.ErrClosed
	case faultDelay:
		c.inj.delayed.Add(1)
		time.Sleep(delay)
	case faultStall:
		c.inj.stalled.Add(1)
		time.Sleep(delay)
	}
	return c.Conn.Write(b)
}
