package analysis

import (
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
)

// visitBuffer applies the buffer rule: the region flows through
// unchanged (the consumer's window determines its own halo), but the
// chunking becomes one item per window position. A windowed-sharing
// buffer (several outputs over one ring) produces the identical stream
// on every output; the write words scale with the fan-out but the
// memory does not — that is the point of sharing.
func (a *analyzer) visitBuffer(n *graph.Node) {
	in := a.arriving(n)
	info := in["in"]
	outs := n.Outputs()
	nx, ny := geom.Iterations(info.Region, outs[0].Size, outs[0].Step)
	outInfo := PortInfo{
		Region:   info.Region,
		Items:    geom.Sz(nx, ny),
		ItemSize: outs[0].Size,
		Inset:    info.Inset,
		Rate:     info.Rate,
	}
	var writeWords int64
	for _, out := range outs {
		a.r.Out[out] = outInfo
		writeWords += outInfo.WordsPerFrame()
	}

	samples := info.ItemsPerFrame()
	m := n.Methods()[0]
	mi := MethodInfo{
		IterX: int64(info.Items.W), IterY: int64(info.Items.H),
		Rate:       info.Rate,
		ReadWords:  info.WordsPerFrame(),
		WriteWords: writeWords,
	}
	a.r.Nodes[n] = NodeInfo{
		IterX: mi.IterX, IterY: mi.IterY,
		Rate:               info.Rate,
		Methods:            map[string]MethodInfo{m.Name: mi},
		CyclesPerFrame:     samples * m.Cycles,
		ReadWordsPerFrame:  mi.ReadWords,
		WriteWordsPerFrame: mi.WriteWords,
		MemoryWords:        n.Memory(),
	}
}

// visitSplit handles round-robin splits (items divided evenly across
// branches), column splits (per-stripe sample regions with replicated
// overlap), and programmer-level strided scatters.
func (a *analyzer) visitSplit(n *graph.Node) {
	if sched, ok := kernel.ScatterSched(n); ok {
		a.visitScatter(n, sched)
		return
	}
	in := a.arriving(n)
	info := in["in"]
	outs := n.Outputs()

	var writeWords int64
	if stripes, ok := kernel.SplitColumnsStripes(n); ok {
		for i, op := range outs {
			s := stripes[i]
			branch := PortInfo{
				Region:   geom.Sz(s.InWidth(), info.Region.H),
				Items:    geom.Sz(s.InWidth(), info.Items.H),
				ItemSize: info.ItemSize,
				Inset:    info.Inset.Add(geom.Off(int64(s.InStart), 0)),
				Rate:     info.Rate,
			}
			a.r.Out[op] = branch
			writeWords += branch.WordsPerFrame()
		}
	} else {
		total := info.ItemsPerFrame()
		nb := int64(len(outs))
		for i, op := range outs {
			items := total / nb
			if int64(i) < total%nb {
				items++
			}
			branch := PortInfo{
				Region:   geom.Sz(int(items)*info.ItemSize.W, info.ItemSize.H),
				Items:    geom.Sz(int(items), 1),
				ItemSize: info.ItemSize,
				Inset:    info.Inset,
				Rate:     info.Rate,
				Flat:     true,
			}
			a.r.Out[op] = branch
			writeWords += branch.WordsPerFrame()
		}
	}

	m := n.Methods()[0]
	samples := info.ItemsPerFrame()
	a.r.Nodes[n] = NodeInfo{
		IterX: int64(info.Items.W), IterY: int64(info.Items.H),
		Rate: info.Rate,
		Methods: map[string]MethodInfo{m.Name: {
			IterX: int64(info.Items.W), IterY: int64(info.Items.H),
			Rate:      info.Rate,
			ReadWords: info.WordsPerFrame(), WriteWords: writeWords,
		}},
		CyclesPerFrame:     samples * m.Cycles,
		ReadWordsPerFrame:  info.WordsPerFrame(),
		WriteWordsPerFrame: writeWords,
		MemoryWords:        n.Memory(),
	}
}

// visitJoin merges branch streams back into one.
func (a *analyzer) visitJoin(n *graph.Node) {
	if sched, ok := kernel.GatherSched(n); ok {
		a.visitGather(n, sched)
		return
	}
	in := a.arriving(n)
	out := n.Output("out")

	var totalItems, readWords int64
	var rate geom.Frac
	itemSize := out.Size
	inset := geom.Offset{}
	region := geom.Size{}
	if counts, ok := kernel.JoinColumnsCounts(n); ok {
		// Column join: branches carry per-row segments; rows come from
		// the first branch.
		rows := 0
		var width int
		for i, p := range n.Inputs() {
			info := in[p.Name]
			readWords += info.WordsPerFrame()
			if i == 0 {
				rows = info.Items.H
				rate = info.Rate
				inset = info.Inset
			}
			width += counts[i]
		}
		region = geom.Sz(width*itemSize.W, rows*itemSize.H)
		totalItems = int64(width) * int64(rows)
		a.r.Out[out] = PortInfo{
			Region: region, Items: geom.Sz(width, rows),
			ItemSize: itemSize, Inset: inset, Rate: rate,
		}
	} else {
		for i, p := range n.Inputs() {
			info := in[p.Name]
			readWords += info.WordsPerFrame()
			totalItems += info.ItemsPerFrame()
			if i == 0 {
				rate = info.Rate
				inset = info.Inset
				itemSize = info.ItemSize
			}
		}
		// A round-robin join reassembles branch outputs in the exact
		// order of the stream that entered the paired split, and the
		// row tokens travel with the data. When the branches map items
		// one to one (equal item counts in and out), the joined stream
		// keeps the pre-split 2-D structure; modeling it as a single
		// flat row would mispredict every windowed consumer downstream.
		// The reconstruction is only sound when the split's distribution
		// schedule matches the join's collection schedule — equal branch
		// counts for the compiler's round-robin pair; a total-count match
		// alone does not imply the items come back in the original order.
		if src, split, ok := a.rrSourceInfo(n); ok && !src.Flat &&
			len(split.Outputs()) == len(n.Inputs()) &&
			int64(src.Items.W)*int64(src.Items.H) == totalItems {
			region = geom.Sz(src.Items.W*itemSize.W, src.Items.H*itemSize.H)
			a.r.Out[out] = PortInfo{
				Region: region, Items: src.Items,
				ItemSize: itemSize, Inset: inset, Rate: rate,
			}
		} else {
			region = geom.Sz(int(totalItems)*itemSize.W, itemSize.H)
			a.r.Out[out] = PortInfo{
				Region: region, Items: geom.Sz(int(totalItems), 1),
				ItemSize: itemSize, Inset: inset, Rate: rate,
				Flat: true,
			}
		}
	}

	m := n.Methods()[0]
	writeWords := totalItems * int64(itemSize.Area())
	a.r.Nodes[n] = NodeInfo{
		IterX: totalItems, IterY: 1,
		Rate: rate,
		Methods: map[string]MethodInfo{m.Name: {
			IterX: totalItems, IterY: 1, Rate: rate,
			ReadWords: readWords, WriteWords: writeWords,
		}},
		CyclesPerFrame:     totalItems * m.Cycles,
		ReadWordsPerFrame:  readWords,
		WriteWordsPerFrame: writeWords,
		MemoryWords:        n.Memory(),
	}
}

// rrSourceInfo finds the stream that entered the round-robin split
// paired with a join (join.in_i ← parallel instance ← split.out_i) and
// returns the split's arriving info and the split node itself — the
// structure the joined stream reassembles when the branches preserve
// item counts and the two schedules agree. Column splits and
// programmer-level scatters (their own strided schedule, analyzed by
// visitScatter) are excluded.
func (a *analyzer) rrSourceInfo(n *graph.Node) (PortInfo, *graph.Node, bool) {
	e := a.g.EdgeTo(n.Input("in0"))
	if e == nil {
		return PortInfo{}, nil, false
	}
	inst := e.From.Node()
	for _, p := range inst.Inputs() {
		if p.Replicated {
			continue
		}
		fe := a.g.EdgeTo(p)
		if fe == nil || fe.From.Node().Kind != graph.KindSplit {
			continue
		}
		split := fe.From.Node()
		if _, striped := kernel.SplitColumnsStripes(split); striped {
			continue
		}
		if _, scattered := kernel.ScatterSched(split); scattered {
			continue
		}
		info, ok := a.r.In[split.Input("in")]
		return info, split, ok
	}
	return PortInfo{}, nil, false
}

// visitReplicate broadcasts the input stream to every branch.
func (a *analyzer) visitReplicate(n *graph.Node) {
	in := a.arriving(n)
	info := in["in"]
	var writeWords int64
	for _, op := range n.Outputs() {
		a.r.Out[op] = info
		writeWords += info.WordsPerFrame()
	}
	m := n.Methods()[0]
	items := info.ItemsPerFrame()
	a.r.Nodes[n] = NodeInfo{
		IterX: items, IterY: 1,
		Rate: info.Rate,
		Methods: map[string]MethodInfo{m.Name: {
			IterX: items, IterY: 1, Rate: info.Rate,
			ReadWords: info.WordsPerFrame(), WriteWords: writeWords,
		}},
		CyclesPerFrame:     items * m.Cycles,
		ReadWordsPerFrame:  info.WordsPerFrame(),
		WriteWordsPerFrame: writeWords,
		MemoryWords:        n.Memory(),
	}
}

// visitInset shrinks the item grid and advances the inset (§III-C).
func (a *analyzer) visitInset(n *graph.Node) {
	in := a.arriving(n)
	info := in["in"]
	plan, _ := kernel.InsetPlanOf(n)
	out := n.Output("out")
	items := geom.Sz(plan.OutW(), plan.OutH())
	outInfo := PortInfo{
		Region:   geom.Sz(items.W*info.ItemSize.W, items.H*info.ItemSize.H),
		Items:    items,
		ItemSize: info.ItemSize,
		Inset:    info.Inset.Add(geom.Off(int64(plan.L), int64(plan.T))),
		Rate:     info.Rate,
	}
	a.r.Out[out] = outInfo
	a.fsmNodeInfo(n, info, outInfo)
}

// visitPad grows the item grid and retreats the inset.
func (a *analyzer) visitPad(n *graph.Node) {
	in := a.arriving(n)
	info := in["in"]
	plan, _ := kernel.PadPlanOf(n)
	out := n.Output("out")
	items := geom.Sz(plan.OutW(), plan.OutH())
	outInfo := PortInfo{
		Region:   geom.Sz(items.W*info.ItemSize.W, items.H*info.ItemSize.H),
		Items:    items,
		ItemSize: info.ItemSize,
		Inset:    info.Inset.Sub(geom.Off(int64(plan.L), int64(plan.T))),
		Rate:     info.Rate,
	}
	a.r.Out[out] = outInfo
	a.fsmNodeInfo(n, info, outInfo)
}

// visitFeedback copies the loop edge's info once it is known (second
// pass); before that the output carries the port's item shape with an
// empty grid so downstream methods can still resolve.
func (a *analyzer) visitFeedback(n *graph.Node, pass int) {
	out := n.Output("out")
	in := a.arriving(n)
	info, ok := in["in"]
	if !ok && pass == 0 {
		// Seed: same shape as the port, grid filled in next pass.
		a.r.Out[out] = PortInfo{
			Region:   out.Size,
			Items:    geom.Sz(1, 1),
			ItemSize: out.Size,
		}
		return
	}
	a.r.Out[out] = info
	a.fsmNodeInfo(n, info, info)
}

// fsmNodeInfo fills NodeInfo for single-method FSM kernels.
func (a *analyzer) fsmNodeInfo(n *graph.Node, in, out PortInfo) {
	m := n.Methods()[0]
	items := in.ItemsPerFrame()
	a.r.Nodes[n] = NodeInfo{
		IterX: int64(in.Items.W), IterY: int64(in.Items.H),
		Rate: in.Rate,
		Methods: map[string]MethodInfo{m.Name: {
			IterX: int64(in.Items.W), IterY: int64(in.Items.H),
			Rate:      in.Rate,
			ReadWords: in.WordsPerFrame(), WriteWords: out.WordsPerFrame(),
		}},
		CyclesPerFrame:     items * m.Cycles,
		ReadWordsPerFrame:  in.WordsPerFrame(),
		WriteWordsPerFrame: out.WordsPerFrame(),
		MemoryWords:        n.Memory(),
	}
}
