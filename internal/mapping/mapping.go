// Package mapping assigns kernels to processing elements. It provides
// the paper's two mappings (Figure 12): the naive 1:1
// kernel-to-processor mapping, and the greedy multiplexing algorithm of
// §V that merges neighboring low-utilization kernels onto shared PEs
// while their combined CPU and memory demand fits, raising average
// utilization ~1.5×. A simulated-annealing placement of PEs onto a 2-D
// grid (mentioned but not integrated in the paper) is in anneal.go.
package mapping

import (
	"fmt"
	"sort"

	"blockpar/internal/analysis"
	"blockpar/internal/graph"
	"blockpar/internal/machine"
)

// Assignment maps kernel nodes to PE indices. Application inputs and
// outputs are external devices and are not assigned.
type Assignment struct {
	PEOf   map[*graph.Node]int
	NumPEs int
}

// NodesOn returns the nodes assigned to the given PE, in graph order.
func (a *Assignment) NodesOn(g *graph.Graph, pe int) []*graph.Node {
	var out []*graph.Node
	for _, n := range g.Nodes() {
		if p, ok := a.PEOf[n]; ok && p == pe {
			out = append(out, n)
		}
	}
	return out
}

// mappable reports whether the node occupies a PE.
func mappable(n *graph.Node) bool {
	return n.Kind != graph.KindInput && n.Kind != graph.KindOutput
}

// OneToOne assigns every kernel its own PE (Figure 12(a)).
func OneToOne(g *graph.Graph) *Assignment {
	a := &Assignment{PEOf: make(map[*graph.Node]int)}
	for _, n := range g.Nodes() {
		if !mappable(n) {
			continue
		}
		a.PEOf[n] = a.NumPEs
		a.NumPEs++
	}
	return a
}

// Greedy implements §V: walk the kernels and greedily merge each
// unassigned kernel with neighboring kernels while the group's combined
// CPU utilization stays below one PE and its memory fits. Kernels
// marked NoMultiplex (the initial input buffers) always get their own
// PE.
func Greedy(g *graph.Graph, r *analysis.Result, m machine.Machine) (*Assignment, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	a := &Assignment{PEOf: make(map[*graph.Node]int)}

	utilOf := func(n *graph.Node) float64 { return r.LoadOf(n, m).Utilization }
	memOf := func(n *graph.Node) int64 { return r.LoadOf(n, m).MemWords }

	for _, n := range g.Nodes() {
		if !mappable(n) {
			continue
		}
		if _, done := a.PEOf[n]; done {
			continue
		}
		pe := a.NumPEs
		a.NumPEs++
		a.PEOf[n] = pe
		if n.NoMultiplex {
			continue
		}
		groupUtil := utilOf(n)
		groupMem := memOf(n)
		if groupUtil > 1 {
			return nil, fmt.Errorf("mapping: %q alone exceeds one PE (%.2f); parallelize first",
				n.Name(), groupUtil)
		}
		// Grow the group through unassigned, multiplexable neighbors,
		// cheapest first, as long as the sum fits one PE.
		frontier := neighborsOf(g, n)
		for len(frontier) > 0 {
			sort.Slice(frontier, func(i, j int) bool {
				ui, uj := utilOf(frontier[i]), utilOf(frontier[j])
				if ui != uj {
					return ui < uj
				}
				return frontier[i].Name() < frontier[j].Name()
			})
			cand := frontier[0]
			frontier = frontier[1:]
			if _, done := a.PEOf[cand]; done {
				continue
			}
			if !mappable(cand) || cand.NoMultiplex {
				continue
			}
			if groupUtil+utilOf(cand) > 1 || groupMem+memOf(cand) > m.PE.MemWords {
				continue
			}
			a.PEOf[cand] = pe
			groupUtil += utilOf(cand)
			groupMem += memOf(cand)
			frontier = append(frontier, neighborsOf(g, cand)...)
		}
	}
	return a, nil
}

func neighborsOf(g *graph.Graph, n *graph.Node) []*graph.Node {
	var out []*graph.Node
	for _, nb := range g.Neighbors(n) {
		if mappable(nb) {
			out = append(out, nb)
		}
	}
	return out
}

// EstimatedUtilization returns the analysis-based mean PE utilization
// of an assignment: total demand divided by PEs provisioned.
func EstimatedUtilization(g *graph.Graph, r *analysis.Result, m machine.Machine, a *Assignment) float64 {
	if a.NumPEs == 0 {
		return 0
	}
	var total float64
	for n := range a.PEOf {
		u := r.LoadOf(n, m).Utilization
		if u > 1 {
			u = 1
		}
		total += u
	}
	return total / float64(a.NumPEs)
}
