package wire

import (
	"bytes"
	"testing"

	"blockpar/internal/frame"
)

// FuzzWire throws arbitrary bytes at the frame decoder: any input must
// either decode cleanly or error — never panic, never allocate outside
// the codec's bounds — and a successful decode must re-encode to a
// byte-identical frame (the codec is canonical). Seeds cover every
// message type plus standalone windows, tokens, and items.
func FuzzWire(f *testing.F) {
	for _, m := range sampleMsgs() {
		b := Append(nil, m)
		f.Add(b[4:]) // type byte + payload
	}
	f.Add(AppendWindow([]byte{0}, frame.FromRows([][]float64{{1, 2}, {3, 4}})))
	// One window seed per element kind, so the native-width sample
	// paths (u8 raw bytes, f32 bit patterns) are all in the corpus.
	for _, k := range []frame.Kind{frame.U8, frame.F32, frame.F64} {
		f.Add(AppendWindow([]byte{0}, typedTestWindow(k, 3, 2)))
	}
	// A malformed element-kind tag on an otherwise well-formed window.
	bad := AppendWindow([]byte{0}, typedTestWindow(frame.U8, 2, 2))
	bad[9] = 0x7f
	f.Add(bad)
	f.Add([]byte{})
	f.Add([]byte{byte(TypeFeed)})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Corrupt decodes must release every pooled window they
		// allocated; track the arena's live gauge across the call.
		liveBefore := frame.Stats().Live
		if len(data) == 0 {
			return
		}
		m, err := Decode(MsgType(data[0]), data[1:])
		if err != nil {
			if live := frame.Stats().Live; live != liveBefore {
				t.Fatalf("failed decode leaked %d pooled windows", live-liveBefore)
			}
			return
		}
		// Canonical round trip: re-encoding the decoded message must
		// reproduce the input frame exactly.
		re := Append(nil, m)
		if MsgType(re[4]) != MsgType(data[0]) || !bytes.Equal(re[5:], data[1:]) {
			t.Fatalf("decode(%s) re-encoded differently:\n in  %x\n out %x",
				MsgType(data[0]), data[1:], re[5:])
		}
		releaseMsg(m)

		// The standalone codecs must be equally hardened.
		if w, err := DecodeWindow(data); err == nil {
			w.Release()
		}
		_, _ = DecodeToken(data)
		if it, err := DecodeItem(data); err == nil && !it.IsToken {
			it.Win.Release()
		}
	})
}
