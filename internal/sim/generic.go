package sim

import (
	"blockpar/internal/graph"
	"blockpar/internal/token"
)

// genericAuto mirrors the runtime's method-trigger driver (see
// internal/runtime/driver.go) without values: configuration methods are
// frame-synchronized, data methods fire when every trigger head
// matches, unhandled tokens forward to the trigger methods' outputs
// once present on every grouped input.
type genericAuto struct {
	node *graph.Node

	frameIdx    int64
	configFired map[*graph.Method]int64
	// invocations counts firings per method, feeding dynamic cost
	// models (§VII extension).
	invocations map[*graph.Method]int64
	pendingInv  *graph.Method

	configMethods []*graph.Method
	otherMethods  []*graph.Method

	// commit bookkeeping: the frame bump and config increment implied
	// by the last proposed firing.
	pendingFrameBump bool
	pendingConfig    *graph.Method
}

func newGenericAuto(n *graph.Node) *genericAuto {
	a := &genericAuto{
		node:        n,
		configFired: make(map[*graph.Method]int64),
		invocations: make(map[*graph.Method]int64),
	}
	for _, m := range n.Methods() {
		if isConfigMethod(n, m) {
			a.configMethods = append(a.configMethods, m)
		} else {
			a.otherMethods = append(a.otherMethods, m)
		}
	}
	return a
}

func isConfigMethod(n *graph.Node, m *graph.Method) bool {
	if len(m.Triggers) == 0 {
		return false
	}
	for _, t := range m.Triggers {
		p := n.Input(t.Input)
		if p == nil || !p.Replicated {
			return false
		}
	}
	return true
}

func (a *genericAuto) configReady() bool {
	for _, m := range a.configMethods {
		if a.configFired[m] <= a.frameIdx {
			return false
		}
	}
	return true
}

func (a *genericAuto) methodReady(m *graph.Method, qs map[string]*queue) bool {
	for _, t := range m.Triggers {
		it, ok := qs[t.Input].head()
		if !ok {
			return false
		}
		if t.IsData() {
			if it.isTok {
				return false
			}
		} else if !it.isTok || !it.tok.Matches(t.Token, t.TokenName) {
			return false
		}
	}
	return true
}

func (a *genericAuto) next(qs map[string]*queue) *firing {
	// Clear bookkeeping from any previously rejected proposal; commit
	// must follow the accepted next() immediately (engine contract).
	a.pendingConfig = nil
	a.pendingFrameBump = false
	a.pendingInv = nil
	for _, m := range a.configMethods {
		if a.configFired[m] == a.frameIdx && a.methodReady(m, qs) {
			f := a.methodFiring(m, qs)
			a.pendingConfig = m
			return f
		}
	}
	ready := a.configReady()
	for _, m := range a.otherMethods {
		if !a.methodReady(m, qs) {
			continue
		}
		if len(m.DataTriggers()) > 0 && !ready {
			continue
		}
		return a.methodFiring(m, qs)
	}
	return a.forwardToken(qs)
}

func (a *genericAuto) methodFiring(m *graph.Method, qs map[string]*queue) *firing {
	cycles := m.Cycles
	exceeded := false
	if m.Dynamic() {
		// Dynamic method (§VII): actual cost comes from the node's
		// deterministic cost model; invocations beyond the declared
		// bound are truncated and raise a resource exception.
		if model := a.node.Costs[m.Name]; model != nil {
			cycles = model(a.invocations[m])
		}
		if cycles > m.Bound {
			cycles = m.Bound
			exceeded = true
		}
	}
	a.pendingInv = m
	f := &firing{
		label:    m.Name,
		consume:  make(map[string]int),
		produce:  make(map[string][]item),
		cycles:   cycles,
		exceeded: exceeded,
	}
	var toks []token.Token
	for _, t := range m.Triggers {
		f.consume[t.Input]++
		it, _ := qs[t.Input].head()
		if it.isTok {
			toks = append(toks, it.tok)
			if it.tok.Kind == token.EndOfFrame {
				if p := a.node.Input(t.Input); p != nil && !p.Replicated {
					a.pendingFrameBump = true
				}
			}
		}
	}
	for _, out := range m.Outputs {
		op := a.node.Output(out)
		f.produce[out] = append(f.produce[out], dataItem(op.Words()))
	}
	seen := map[token.Token]bool{}
	for _, tk := range toks {
		if seen[tk] {
			continue
		}
		seen[tk] = true
		for _, out := range m.Outputs {
			f.produce[out] = append(f.produce[out], tokenItem(tk))
		}
		for _, out := range m.ForwardOnly {
			f.produce[out] = append(f.produce[out], tokenItem(tk))
		}
	}
	return f
}

func (a *genericAuto) forwardToken(qs map[string]*queue) *firing {
	for _, p := range a.node.Inputs() {
		it, ok := qs[p.Name].head()
		if !ok || !it.isTok {
			continue
		}
		if a.node.MethodForTrigger(p.Name, it.tok.Kind, it.tok.Name) != nil {
			continue
		}
		group := map[string]bool{p.Name: true}
		outputs := map[string]bool{}
		for _, m := range a.node.Methods() {
			triggered := false
			for _, t := range m.DataTriggers() {
				if t.Input == p.Name {
					triggered = true
				}
			}
			if !triggered {
				continue
			}
			for _, t := range m.DataTriggers() {
				group[t.Input] = true
			}
			for _, o := range m.Outputs {
				outputs[o] = true
			}
		}
		all := true
		for in := range group {
			h, ok := qs[in].head()
			if !ok || !h.isTok || h.tok != it.tok {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		f := &firing{
			label:   "forward:" + it.tok.String(),
			consume: make(map[string]int),
			produce: make(map[string][]item),
			cycles:  1,
		}
		for in := range group {
			f.consume[in]++
			if it.tok.Kind == token.EndOfFrame {
				if ip := a.node.Input(in); ip != nil && !ip.Replicated {
					a.pendingFrameBump = true
				}
			}
		}
		for _, op := range a.node.Outputs() {
			if outputs[op.Name] {
				f.produce[op.Name] = append(f.produce[op.Name], tokenItem(it.tok))
			}
		}
		return f
	}
	return nil
}

func (a *genericAuto) commit(f *firing) {
	if a.pendingConfig != nil {
		a.configFired[a.pendingConfig]++
		a.pendingConfig = nil
	}
	if a.pendingFrameBump {
		a.frameIdx++
		a.pendingFrameBump = false
	}
	if a.pendingInv != nil {
		a.invocations[a.pendingInv]++
		a.pendingInv = nil
	}
}
