package graph

import (
	"strings"
	"testing"

	"blockpar/internal/geom"
	"blockpar/internal/token"
)

// makeConv builds a kernel like the paper's 5x5 convolution (Figure 6):
// data input "in", replicated input "coeff", output "out", two methods.
func makeConv(name string, k int) *Node {
	n := NewNode(name, KindKernel)
	half := int64(k / 2)
	n.CreateInput("in", geom.Sz(k, k), geom.St(1, 1), geom.Off(half, half))
	coeff := n.CreateInput("coeff", geom.Sz(k, k), geom.St(k, k), geom.Off(half, half))
	coeff.Replicated = true
	n.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	n.RegisterMethod("runConvolve", int64(10+3*k*k), 2*int64(k*k))
	n.RegisterMethodInput("runConvolve", "in")
	n.RegisterMethodOutput("runConvolve", "out")
	n.RegisterMethod("loadCoeff", int64(10+2*k*k), int64(k*k))
	n.RegisterMethodInput("loadCoeff", "coeff")
	return n
}

func makeSource(name string) *Node {
	n := NewNode(name, KindKernel)
	n.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	n.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	n.RegisterMethod("run", 1, 0)
	n.RegisterMethodInput("run", "in")
	n.RegisterMethodOutput("run", "out")
	return n
}

func buildSmallApp(t *testing.T) (*Graph, *Node, *Node, *Node) {
	t.Helper()
	g := New("small")
	in := g.AddInput("Input", geom.Sz(16, 16), geom.Sz(1, 1), geom.FInt(50))
	conv := g.Add(makeConv("5x5 Conv", 5))
	coeff := g.AddInput("Coeff", geom.Sz(5, 5), geom.Sz(5, 5), geom.FInt(50))
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", conv, "in")
	g.Connect(coeff, "out", conv, "coeff")
	g.Connect(conv, "out", out, "in")
	return g, in, conv, out
}

func TestNodeBuilder(t *testing.T) {
	n := makeConv("c", 5)
	if n.Input("in") == nil || n.Input("coeff") == nil || n.Output("out") == nil {
		t.Fatal("ports missing")
	}
	if !n.Input("coeff").Replicated {
		t.Error("coeff should be replicated")
	}
	if n.Input("in").Words() != 25 {
		t.Errorf("in words = %d", n.Input("in").Words())
	}
	m := n.Method("runConvolve")
	if m == nil || len(m.Triggers) != 1 || m.Triggers[0].Input != "in" {
		t.Fatalf("runConvolve triggers wrong: %+v", m)
	}
	if !m.TriggersInput("in") || m.TriggersInput("coeff") {
		t.Error("TriggersInput wrong")
	}
	if len(m.DataTriggers()) != 1 {
		t.Error("DataTriggers wrong")
	}
}

func TestNodeMemoryIncludesPortBuffers(t *testing.T) {
	n := makeConv("c", 5)
	// state = max(50, 25) = 50; ports = in 25 + coeff 25 + out 1 = 51.
	if got := n.Memory(); got != 101 {
		t.Errorf("Memory() = %d, want 101", got)
	}
}

func TestDuplicatePortPanics(t *testing.T) {
	n := NewNode("x", KindKernel)
	n.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate input did not panic")
		}
	}()
	n.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
}

func TestMethodUnknownInputPanics(t *testing.T) {
	n := NewNode("x", KindKernel)
	n.RegisterMethod("m", 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown input did not panic")
		}
	}()
	n.RegisterMethodInput("m", "nope")
}

func TestMethodForTrigger(t *testing.T) {
	n := NewNode("hist", KindKernel)
	n.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	n.CreateOutput("out", geom.Sz(32, 1), geom.St(32, 1))
	n.RegisterMethod("count", 15, 16)
	n.RegisterMethodInput("count", "in")
	n.RegisterMethod("finishCount", 6, 96)
	n.RegisterMethodInputToken("finishCount", "in", token.EndOfFrame, "")
	n.RegisterMethodOutput("finishCount", "out")

	if m := n.MethodForTrigger("in", token.None, ""); m == nil || m.Name != "count" {
		t.Errorf("data trigger -> %v", m)
	}
	if m := n.MethodForTrigger("in", token.EndOfFrame, ""); m == nil || m.Name != "finishCount" {
		t.Errorf("EOF trigger -> %v", m)
	}
	if m := n.MethodForTrigger("in", token.EndOfLine, ""); m != nil {
		t.Errorf("EOL should be unhandled, got %v", m)
	}
}

func TestConnectAndLookup(t *testing.T) {
	g, in, conv, out := buildSmallApp(t)
	if len(g.Edges()) != 3 {
		t.Fatalf("edges = %d", len(g.Edges()))
	}
	if e := g.EdgeTo(conv.Input("in")); e == nil || e.From.Node() != in {
		t.Error("EdgeTo wrong")
	}
	if es := g.EdgesFrom(conv.Output("out")); len(es) != 1 || es[0].To.Node() != out {
		t.Error("EdgesFrom wrong")
	}
	if len(g.InEdges(conv)) != 2 || len(g.OutEdges(conv)) != 1 {
		t.Error("InEdges/OutEdges wrong")
	}
	nb := g.Neighbors(conv)
	if len(nb) != 3 {
		t.Errorf("Neighbors = %d, want 3", len(nb))
	}
	if len(g.Inputs()) != 2 || len(g.Outputs()) != 1 {
		t.Error("Inputs/Outputs wrong")
	}
}

func TestConnectDoubleProducerPanics(t *testing.T) {
	g, in, conv, _ := buildSmallApp(t)
	defer func() {
		if recover() == nil {
			t.Fatal("double connect did not panic")
		}
	}()
	g.Connect(in, "out", conv, "in")
}

func TestConnectForeignNodePanics(t *testing.T) {
	g, _, _, _ := buildSmallApp(t)
	foreign := makeSource("foreign")
	defer func() {
		if recover() == nil {
			t.Fatal("foreign connect did not panic")
		}
	}()
	g.Connect(foreign, "out", g.Node("Output"), "in")
}

func TestValidateHappyPath(t *testing.T) {
	g, _, _, _ := buildSmallApp(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateCatchesUnconnectedInput(t *testing.T) {
	g := New("bad")
	g.AddOutput("Output", geom.Sz(1, 1))
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "unconnected") {
		t.Fatalf("Validate = %v", err)
	}
}

func TestValidateCatchesZeroRateInput(t *testing.T) {
	g := New("bad")
	in := g.AddInput("Input", geom.Sz(8, 8), geom.Sz(1, 1), geom.Frac{})
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", out, "in")
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "non-positive rate") {
		t.Fatalf("Validate = %v", err)
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	g := New("loop")
	a := g.Add(makeSource("a"))
	b := g.Add(makeSource("b"))
	g.Connect(a, "out", b, "in")
	g.Connect(b, "out", a, "in")
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("Validate = %v", err)
	}
}

func TestValidateAllowsFeedbackCycle(t *testing.T) {
	g := New("loop")
	a := g.Add(makeSource("a"))
	fb := NewNode("fb", KindFeedback)
	fb.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	fb.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	fb.RegisterMethod("pass", 1, 1)
	fb.RegisterMethodInput("pass", "in")
	fb.RegisterMethodOutput("pass", "out")
	g.Add(fb)
	g.Connect(a, "out", fb, "in")
	g.Connect(fb, "out", a, "in")
	if err := g.checkAcyclic(); err != nil {
		t.Fatalf("feedback cycle rejected: %v", err)
	}
}

func TestValidateCustomTokenRates(t *testing.T) {
	g := New("tok")
	in := g.AddInput("Input", geom.Sz(4, 4), geom.Sz(1, 1), geom.FInt(10))
	k := makeSource("k")
	k.RegisterMethod("onReload", 5, 0)
	k.RegisterMethodInputToken("onReload", "in", token.Custom, "reload")
	g.Add(k)
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", k, "in")
	g.Connect(k, "out", out, "in")

	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "reload") {
		t.Fatalf("undeclared custom token not caught: %v", err)
	}
	// Declaring the rate on any node fixes it.
	in.TokenRates = map[string]geom.Frac{"reload": geom.FInt(1)}
	if err := g.Validate(); err != nil {
		t.Fatalf("declared custom token still rejected: %v", err)
	}
}

func TestTopologicalOrder(t *testing.T) {
	g, in, conv, out := buildSmallApp(t)
	order, err := g.Topological()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[*Node]int)
	for i, n := range order {
		pos[n] = i
	}
	if !(pos[in] < pos[conv] && pos[conv] < pos[out]) {
		t.Errorf("bad order: %v", order)
	}
	if len(order) != len(g.Nodes()) {
		t.Errorf("order misses nodes: %d vs %d", len(order), len(g.Nodes()))
	}
}

func TestTopologicalCycleError(t *testing.T) {
	g := New("loop")
	a := g.Add(makeSource("a"))
	b := g.Add(makeSource("b"))
	g.Connect(a, "out", b, "in")
	g.Connect(b, "out", a, "in")
	if _, err := g.Topological(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestUpstream(t *testing.T) {
	g, in, conv, out := buildSmallApp(t)
	up := g.Upstream(out)
	if !up[in] || !up[conv] || up[out] {
		t.Errorf("Upstream(out) = %v", up)
	}
	if len(g.Upstream(in)) != 0 {
		t.Error("Upstream(input) should be empty")
	}
}

func TestRemoveAndDisconnect(t *testing.T) {
	g, in, conv, _ := buildSmallApp(t)
	e := g.EdgeTo(conv.Input("in"))
	g.Disconnect(e)
	if g.EdgeTo(conv.Input("in")) != nil {
		t.Fatal("Disconnect failed")
	}
	g.Remove(conv)
	if g.Node("5x5 Conv") != nil {
		t.Fatal("Remove failed")
	}
	for _, e := range g.Edges() {
		if e.From.Node() == conv || e.To.Node() == conv {
			t.Fatal("Remove left dangling edges")
		}
	}
	_ = in
}

func TestRename(t *testing.T) {
	g, _, conv, _ := buildSmallApp(t)
	g.Rename(conv, "5x5 Conv_0")
	if g.Node("5x5 Conv_0") != conv || g.Node("5x5 Conv") != nil {
		t.Fatal("Rename failed")
	}
}

func TestCloneNode(t *testing.T) {
	n := makeConv("5x5 Conv", 5)
	n.TokenRates = map[string]geom.Frac{"x": geom.FInt(2)}
	n.Attrs["label"] = "hello"
	c := CloneNode(n, "5x5 Conv_1", 1)
	if c.Name() != "5x5 Conv_1" || c.Base != "5x5 Conv" || c.Instance != 1 {
		t.Fatalf("clone identity wrong: %s %s %d", c.Name(), c.Base, c.Instance)
	}
	if c.Input("coeff") == nil || !c.Input("coeff").Replicated {
		t.Error("clone lost replicated input")
	}
	if c.Method("runConvolve") == nil || len(c.Method("runConvolve").Triggers) != 1 {
		t.Error("clone lost methods")
	}
	if c.TokenRates["x"] != geom.FInt(2) || c.Attrs["label"] != "hello" {
		t.Error("clone lost attrs/token rates")
	}
	// Mutating the clone must not affect the original.
	c.Method("runConvolve").Outputs = append(c.Method("runConvolve").Outputs, "zzz")
	if len(n.Method("runConvolve").Outputs) != 1 {
		t.Error("clone shares method slices with original")
	}
}

func TestInstancesOf(t *testing.T) {
	g := New("inst")
	in := g.AddInput("Input", geom.Sz(8, 8), geom.Sz(1, 1), geom.FInt(1))
	a := CloneNode(makeSource("k"), "k_1", 1)
	b := CloneNode(makeSource("k"), "k_0", 0)
	g.Add(a)
	g.Add(b)
	out := g.AddOutput("Output", geom.Sz(1, 1))
	_ = in
	_ = out
	got := g.InstancesOf("k")
	if len(got) != 2 || got[0].Instance != 0 || got[1].Instance != 1 {
		t.Errorf("InstancesOf = %v", got)
	}
}

func TestDotOutput(t *testing.T) {
	g, _, _, _ := buildSmallApp(t)
	dot := g.Dot()
	for _, want := range []string{"digraph", "5x5 Conv", "style=dashed", "oval"} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot missing %q:\n%s", want, dot)
		}
	}
}

func TestSummaryAndCounts(t *testing.T) {
	g, _, _, _ := buildSmallApp(t)
	s := g.Summary()
	if !strings.Contains(s, "5x5 Conv") || !strings.Contains(s, "coeff(5x5)[5,5][2,2]*") {
		t.Errorf("Summary:\n%s", s)
	}
	counts := g.CountByKind()
	if counts[KindInput] != 2 || counts[KindKernel] != 1 || counts[KindOutput] != 1 {
		t.Errorf("CountByKind = %v", counts)
	}
}
