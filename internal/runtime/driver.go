package runtime

import (
	"fmt"

	"blockpar/internal/frame"
	"blockpar/internal/graph"
	"blockpar/internal/token"
)

// driver runs an Invoker kernel with the generic method-trigger rules
// described in the package comment.
type driver struct {
	ex   *executor
	node *graph.Node
	inv  graph.Invoker

	queues map[string]*itemQueue

	// ctx is reused across firings: a method invocation may not retain
	// its ExecContext, so one scratch context (and trigger map) per
	// driver avoids a heap allocation per firing.
	ctx invokeCtx

	// tokScratch is the consumed-token buffer reused across firings,
	// for the same reason.
	tokScratch []token.Token

	// Configuration methods (all triggers on replicated inputs) are
	// frame-synchronized: each fires exactly once per frame, before
	// the frame's data methods. frameIdx counts end-of-frame tokens
	// consumed from non-replicated inputs; configFired counts firings
	// per config method. A config method is ready only while
	// configFired == frameIdx, and data methods wait until every
	// config method has fired for the current frame. This makes
	// coefficient/bin reloads deterministic: the frame-f configuration
	// applies to frame f exactly.
	frameIdx    int64
	configFired map[*graph.Method]int64

	// configMethods fire with priority; dataMethods wait for config.
	configMethods []*graph.Method
	otherMethods  []*graph.Method
	// otherIsData caches isDataMethod per otherMethods entry: the
	// check sits on the per-item firing path and DataTriggers
	// allocates.
	otherIsData []bool

	// feedbackFed marks inputs fed directly by a feedback kernel, and
	// loopOutputs outputs that feed one. Control tokens cannot travel
	// around a feedback loop (the loop's first token would have to
	// produce itself), so loop inputs are excluded from token-forward
	// groups and loop outputs never receive forwarded tokens (§III-D).
	feedbackFed map[string]bool
	loopOutputs map[string]bool
}

func newDriver(ex *executor, n *graph.Node, inv graph.Invoker) *driver {
	d := &driver{
		ex:          ex,
		node:        n,
		inv:         inv,
		queues:      make(map[string]*itemQueue),
		configFired: make(map[*graph.Method]int64),
		feedbackFed: make(map[string]bool),
		loopOutputs: make(map[string]bool),
	}
	d.ctx = invokeCtx{ex: ex, node: n, inputs: make(map[string]graph.Item)}
	for _, m := range n.Methods() {
		if isConfigMethod(n, m) {
			d.configMethods = append(d.configMethods, m)
		} else {
			d.otherMethods = append(d.otherMethods, m)
			d.otherIsData = append(d.otherIsData, isDataMethod(m))
		}
	}
	for _, p := range n.Inputs() {
		if e := ex.g.EdgeTo(p); e != nil && e.From.Node().Kind == graph.KindFeedback {
			d.feedbackFed[p.Name] = true
		}
	}
	for _, p := range n.Outputs() {
		for _, e := range ex.g.EdgesFrom(p) {
			if e.To.Node().Kind == graph.KindFeedback {
				d.loopOutputs[p.Name] = true
			}
		}
	}
	return d
}

// isConfigMethod reports whether every trigger of m is on a replicated
// input: such methods load configuration (coefficients, bin edges) and
// run before data methods.
func isConfigMethod(n *graph.Node, m *graph.Method) bool {
	if len(m.Triggers) == 0 {
		return false
	}
	for _, t := range m.Triggers {
		p := n.Input(t.Input)
		if p == nil || !p.Replicated {
			return false
		}
	}
	return true
}

// configReady reports whether every config method has fired for the
// current frame, unblocking the frame's data methods.
func (d *driver) configReady() bool {
	for _, m := range d.configMethods {
		if d.configFired[m] <= d.frameIdx {
			return false
		}
	}
	return true
}

// loop drives the kernel on a blocking transport (chanEngine): fire
// until quiescent, block for the next delivery, repeat.
func (d *driver) loop() error {
	defer d.releaseQueues()
	for {
		if err := d.step(nil); err != nil {
			return err
		}
		msg, ok := d.ex.recv(d.node)
		if !ok {
			// Inputs exhausted: fire whatever remains, then stop.
			return d.step(nil)
		}
		d.push(msg.input, msg.item)
	}
}

// releaseQueues returns every undelivered queued item to the arena.
// Called once when the kernel retires: a complete stream leaves the
// queues empty, but a truncated one (hard stop, or a cut edge whose
// peer partition died mid-frame) strands items no firing will ever
// consume.
func (d *driver) releaseQueues() {
	for _, q := range d.queues {
		for q.head < len(q.items) {
			it := q.items[q.head]
			q.items[q.head] = graph.Item{}
			q.head++
			if !it.IsToken {
				it.Win.Release()
			}
		}
	}
}

// itemQueue is a FIFO over a reused backing array: pop advances a head
// index, and draining resets it, so steady-state push/pop cycles stop
// reallocating (a plain items = items[1:] slide forces a grow on
// almost every append once the backing array's tail is consumed).
type itemQueue struct {
	items []graph.Item
	head  int
}

func (d *driver) push(input string, it graph.Item) {
	q := d.queues[input]
	if q == nil {
		q = &itemQueue{}
		d.queues[input] = q
	}
	q.items = append(q.items, it)
}

// step enqueues a batch of deliveries and fires methods until the
// kernel is quiescent. It is the non-blocking entry point the worker
// engine schedules.
func (d *driver) step(msgs []inMsg) error {
	for _, m := range msgs {
		d.push(m.input, m.item)
	}
	for {
		fired, err := d.tryFire()
		if err != nil {
			return err
		}
		if !fired {
			return nil
		}
	}
}

func (d *driver) head(input string) (graph.Item, bool) {
	q := d.queues[input]
	if q == nil || q.head == len(q.items) {
		return graph.Item{}, false
	}
	return q.items[q.head], true
}

func (d *driver) pop(input string) graph.Item {
	q := d.queues[input]
	it := q.items[q.head]
	q.items[q.head] = graph.Item{} // drop the window reference
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return it
}

// tryFire attempts, in priority order: configuration methods,
// token-triggered and data methods, then unhandled-token forwarding.
// It reports whether anything consumed input.
func (d *driver) tryFire() (bool, error) {
	for _, m := range d.configMethods {
		if d.configFired[m] == d.frameIdx && d.methodReady(m) {
			d.configFired[m]++
			return true, d.fire(m)
		}
	}
	ready := d.configReady()
	for i, m := range d.otherMethods {
		if !d.methodReady(m) {
			continue
		}
		if d.otherIsData[i] && !ready {
			continue
		}
		return true, d.fire(m)
	}
	if d.forwardUnhandledToken() {
		return true, nil
	}
	return false, nil
}

func isDataMethod(m *graph.Method) bool {
	for _, t := range m.Triggers {
		if t.IsData() {
			return true
		}
	}
	return false
}

// methodReady reports whether every trigger input's queue head matches.
func (d *driver) methodReady(m *graph.Method) bool {
	for _, t := range m.Triggers {
		it, ok := d.head(t.Input)
		if !ok {
			return false
		}
		if t.IsData() {
			if it.IsToken {
				return false
			}
		} else {
			if !it.IsToken || !it.Tok.Matches(t.Token, t.TokenName) {
				return false
			}
		}
	}
	return true
}

// fire consumes the trigger heads, invokes the method, and forwards any
// consumed control tokens to the method's outputs so frame structure
// follows the results downstream (e.g. the end-of-frame token follows
// the histogram's final counts to the merge kernel).
func (d *driver) fire(m *graph.Method) error {
	ctx := &d.ctx
	clear(ctx.inputs)
	tokens := d.tokScratch[:0]
	bumpFrame := false
	logical := int64(1)
	for _, t := range m.Triggers {
		it := d.pop(t.Input)
		ctx.inputs[t.Input] = it
		if it.IsToken {
			tokens = append(tokens, it.Tok)
			if it.Tok.Kind == token.EndOfFrame {
				if p := d.node.Input(t.Input); p != nil && !p.Replicated {
					bumpFrame = true
				}
			}
		} else if n := int64(it.BatchN()); n > logical {
			// A batched firing stands for its batch's N logical
			// invocations (batch-aware kernels have a single data
			// trigger, so one batch determines the count).
			logical = n
		}
	}
	if bumpFrame {
		d.frameIdx++
	}
	d.ex.recordFiring(d.node.Name(), m.Name, logical)
	err := d.inv.Invoke(m.Name, ctx)
	// The firing consumed its data inputs: release their pool
	// references. Anything the kernel emitted from shared storage was
	// re-retained by Emit, and anything it keeps across firings it must
	// Clone (ownership protocol, DESIGN.md "Memory model").
	for _, it := range ctx.inputs {
		if !it.IsToken {
			it.Win.Release()
		}
	}
	if err != nil {
		return err
	}
	for _, tok := range dedupeTokens(tokens) {
		for _, out := range m.Outputs {
			d.ex.send(d.node.Output(out), graph.TokenItem(tok))
		}
		for _, out := range m.ForwardOnly {
			d.ex.send(d.node.Output(out), graph.TokenItem(tok))
		}
	}
	d.tokScratch = tokens
	return nil
}

// dedupeTokens compacts ts in place, keeping first occurrences.
func dedupeTokens(ts []token.Token) []token.Token {
	n := 0
	for _, t := range ts {
		dup := false
		for _, o := range ts[:n] {
			if o == t {
				dup = true
				break
			}
		}
		if !dup {
			ts[n] = t
			n++
		}
	}
	return ts[:n]
}

// forwardUnhandledToken handles control tokens no method consumes
// (paper §II-C): the token is forwarded to the outputs of the methods
// data-triggered by that input, once the same token heads every data
// input of those methods ("in the case where two inputs trigger the
// same method, the same control token must arrive on both inputs for
// it to be passed to the output"). Tokens on inputs whose methods have
// no outputs are absorbed.
func (d *driver) forwardUnhandledToken() bool {
	for _, p := range d.node.Inputs() {
		it, ok := d.head(p.Name)
		if !ok || !it.IsToken {
			continue
		}
		// A token-triggered method will consume it; leave it alone.
		if d.node.MethodForTrigger(p.Name, it.Tok.Kind, it.Tok.Name) != nil {
			continue
		}
		// Tokens arriving through a feedback loop have no defined
		// forwarding position; absorb them.
		if d.feedbackFed[p.Name] {
			d.pop(p.Name)
			return true
		}
		// Gather the forwarding group: every data input of every
		// method that is data-triggered by p. Feedback-fed inputs are
		// excluded — their tokens would have to travel around the loop.
		group := map[string]bool{p.Name: true}
		outputs := map[string]bool{}
		for _, m := range d.node.Methods() {
			if !methodDataTriggered(m, p.Name) {
				continue
			}
			for _, t := range m.Triggers {
				if t.IsData() && !d.feedbackFed[t.Input] {
					group[t.Input] = true
				}
			}
			for _, o := range m.Outputs {
				if !d.loopOutputs[o] {
					outputs[o] = true
				}
			}
		}
		// The same token must head every input of the group.
		all := true
		for in := range group {
			h, ok := d.head(in)
			if !ok || !h.IsToken || h.Tok != it.Tok {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		bumpFrame := false
		for in := range group {
			d.pop(in)
			if it.Tok.Kind == token.EndOfFrame {
				if p := d.node.Input(in); p != nil && !p.Replicated {
					bumpFrame = true
				}
			}
		}
		if bumpFrame {
			d.frameIdx++
		}
		for _, out := range d.node.Outputs() {
			if outputs[out.Name] {
				d.ex.send(out, graph.TokenItem(it.Tok))
			}
		}
		return true
	}
	return false
}

func methodDataTriggered(m *graph.Method, input string) bool {
	for _, t := range m.Triggers {
		if t.IsData() && t.Input == input {
			return true
		}
	}
	return false
}

// invokeCtx implements graph.ExecContext for one method invocation.
type invokeCtx struct {
	ex     *executor
	node   *graph.Node
	inputs map[string]graph.Item
}

func (c *invokeCtx) Input(name string) frame.Window {
	it, ok := c.inputs[name]
	if !ok {
		panic(fmt.Sprintf("runtime: method on %q read input %q it was not triggered by",
			c.node.Name(), name))
	}
	if it.IsToken {
		panic(fmt.Sprintf("runtime: method on %q read data from token-triggered input %q",
			c.node.Name(), name))
	}
	return it.Win
}

func (c *invokeCtx) Token(name string) token.Token {
	it, ok := c.inputs[name]
	if !ok || !it.IsToken {
		return token.Token{}
	}
	return it.Tok
}

func (c *invokeCtx) Emit(output string, w frame.Window) {
	p := c.node.Output(output)
	if p == nil {
		panic(fmt.Sprintf("runtime: node %q has no output %q", c.node.Name(), output))
	}
	// Pass-through support: a window emitted from an input's pooled
	// storage needs its own reference, because the firing's inputs are
	// released once Invoke returns.
	if w.Pooled() {
		for _, it := range c.inputs {
			if !it.IsToken && w.SharesStorage(it.Win) {
				w.Retain(1)
				break
			}
		}
	}
	c.ex.send(p, graph.DataItem(w))
}

func (c *invokeCtx) EmitToken(output string, t token.Token) {
	p := c.node.Output(output)
	if p == nil {
		panic(fmt.Sprintf("runtime: node %q has no output %q", c.node.Name(), output))
	}
	c.ex.send(p, graph.TokenItem(t))
}

// Batch implements graph.BatchContext: the descriptor of the item
// consumed from the named input (zero for plain items and tokens).
func (c *invokeCtx) Batch(name string) graph.Batch {
	it, ok := c.inputs[name]
	if !ok || it.IsToken {
		return graph.Batch{}
	}
	return it.B
}

// EmitBatch implements graph.BatchContext: emit one batched data item.
// The same pass-through re-retain rule as Emit applies when the window
// shares an input's pooled storage.
func (c *invokeCtx) EmitBatch(output string, w frame.Window, b graph.Batch) {
	p := c.node.Output(output)
	if p == nil {
		panic(fmt.Sprintf("runtime: node %q has no output %q", c.node.Name(), output))
	}
	if w.Pooled() {
		for _, it := range c.inputs {
			if !it.IsToken && w.SharesStorage(it.Win) {
				w.Retain(1)
				break
			}
		}
	}
	c.ex.send(p, graph.BatchItem(w, b))
}
