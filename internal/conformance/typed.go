package conformance

import (
	"fmt"
	"math"

	"blockpar/internal/analysis"
	"blockpar/internal/frame"
	"blockpar/internal/graph"
	"blockpar/internal/runtime"
)

// eps32 is the float32 unit roundoff: every single-precision operation
// may perturb its result by at most this relative amount.
const eps32 = 1.0 / (1 << 24)

// TypedTolerances derives, for every graph output of a typed case, the
// absolute divergence the typed execution is allowed from the f64
// oracle. It is a per-kernel forward error bound: walking the graph in
// topological order it carries a magnitude bound and an accumulated
// rounding bound per stream, and each kernel's rule updates both.
// Only single-precision arithmetic contributes error — a convolution
// running its f32 multiply-accumulate adds taps*eps32 relative
// rounding and scales any incoming error by the sum of its |taps|;
// u8 and f64 stages are bit-identical to the oracle by construction,
// so a stream that never passes through f32 compute ends with
// tolerance 0 and the gate demands byte equality (after quantization,
// for u8 outputs).
func TypedTolerances(c *Case) (map[string]float64, error) {
	ek, err := analysis.ElemKinds(c.Graph)
	if err != nil {
		return nil, err
	}
	order, err := c.Graph.Topological()
	if err != nil {
		return nil, err
	}
	type bound struct{ scale, err float64 }
	out := make(map[*graph.Port]bound)
	tol := make(map[string]float64)
	for _, n := range order {
		// Join the data inputs: widest magnitude, worst error.
		in := bound{}
		for _, p := range n.Inputs() {
			if p.Replicated {
				continue
			}
			e := c.Graph.EdgeTo(p)
			if e == nil {
				continue
			}
			b := out[e.From]
			in.scale = math.Max(in.scale, b.scale)
			in.err = math.Max(in.err, b.err)
		}
		switch {
		case n.Kind == graph.KindInput:
			in = bound{scale: sourcePeak(c, n), err: 0}
		case n.Kind == graph.KindOutput:
			tol[n.Name()] = in.err
			continue
		case n.Attrs["ktype"] == "convolution":
			gain, taps, err := coeffGain(c, n)
			if err != nil {
				return nil, err
			}
			in.scale *= gain
			in.err *= gain
			if kindOf(ek, n) == frame.F32 {
				// Each of the taps multiply-accumulates rounds once, and
				// the taps themselves were rounded to f32 when loaded.
				in.err += float64(taps+1) * eps32 * in.scale
			}
		case n.Attrs["ktype"] == "convert":
			if kindOf(ek, n) == frame.F32 {
				in.err += eps32 * in.scale
			}
		}
		for _, o := range n.Outputs() {
			out[o] = in
		}
	}
	// Headroom: the bound assumes worst-case rounding alignment; ×4
	// keeps the gate meaningful while never flaking on benign orderings.
	for name := range tol {
		tol[name] *= 4
	}
	return tol, nil
}

// kindOf returns the element kind of a node's first output.
func kindOf(ek *analysis.ElemResult, n *graph.Node) frame.Kind {
	for _, o := range n.Outputs() {
		return ek.Out[o]
	}
	return frame.F64
}

// sourcePeak bounds the magnitude a case source emits, sampled over
// the first frames.
func sourcePeak(c *Case, n *graph.Node) float64 {
	gen := c.Sources[n.Name()]
	if gen == nil {
		gen = frame.Gradient
	}
	peak := 0.0
	for seq := int64(0); seq < 2; seq++ {
		w := gen(seq, n.FrameSize.W, n.FrameSize.H)
		for y := 0; y < w.H; y++ {
			for x := 0; x < w.W; x++ {
				peak = math.Max(peak, math.Abs(w.At(x, y)))
			}
		}
	}
	return peak
}

// coeffGain evaluates a convolution's coefficient source and returns
// the stream gain (sum of |taps|) and the tap count.
func coeffGain(c *Case, n *graph.Node) (gain float64, taps int, err error) {
	e := c.Graph.EdgeTo(n.Input("coeff"))
	if e == nil {
		return 0, 0, fmt.Errorf("conformance: convolution %q has no coeff edge", n.Name())
	}
	src := e.From.Node()
	if src.Kind != graph.KindInput {
		return 0, 0, fmt.Errorf("conformance: convolution %q coeff is not fed by an input", n.Name())
	}
	gen := c.Sources[src.Name()]
	if gen == nil {
		gen = frame.Gradient
	}
	w := gen(0, src.FrameSize.W, src.FrameSize.H)
	for y := 0; y < w.H; y++ {
		for x := 0; x < w.W; x++ {
			gain += math.Abs(w.At(x, y))
		}
	}
	return gain, w.W * w.H, nil
}

// CheckTyped is the typed-plane conformance gate: it runs the typed
// case through every compilation variant on both batch executors and
// diffs each output against the f64 oracle of the reference twin —
// the same graph and the same (pre-quantized) input values with every
// stream left at double precision. Outputs whose path never passes
// through f32 compute must match byte-for-byte (u8 outputs after
// quantizing the oracle through the same Window.Set rounding); f32
// outputs must agree within the per-kernel forward error bound from
// TypedTolerances.
func CheckTyped(typed, ref *Case, frames int) error {
	if frames <= 0 {
		frames = 2
	}
	want, err := OracleFrames(ref, frames)
	if err != nil {
		return fmt.Errorf("f64 oracle: %w", err)
	}
	tol, err := TypedTolerances(typed)
	if err != nil {
		return err
	}
	for _, v := range Variants() {
		compiled, err := compileVariant(typed, v)
		if err != nil {
			return err
		}
		for _, exec := range []runtime.ExecutorKind{runtime.ExecGoroutines, runtime.ExecWorkers} {
			g := compiled.Graph.Clone()
			res, err := runtime.Run(g, runtime.Options{
				Frames: frames, Sources: typed.Sources, Timeout: execTimeout,
				Executor: exec,
			})
			if err != nil {
				return fmt.Errorf("%s/%v: %w", v.Name, exec, err)
			}
			for _, out := range g.Outputs() {
				name := out.Name()
				slices := res.FrameSlices(name)
				if len(slices) != frames {
					return fmt.Errorf("%s/%v: output %q completed %d frames, want %d",
						v.Name, exec, name, len(slices), frames)
				}
				for f, got := range slices {
					if err := compareTolerant(got, want[f][name], tol[name]); err != nil {
						return fmt.Errorf("%s/%v: output %q frame %d: %w", v.Name, exec, name, f, err)
					}
				}
			}
		}
	}
	return nil
}

// compareTolerant applies the tolerance gate to one output frame.
// tol == 0 demands byte equality after converting the oracle window
// to the typed kind (exercising the same quantization the kernels
// use); tol > 0 compares element-wise after promotion to f64.
func compareTolerant(got, want []frame.Window, tol float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d windows, want %d", len(got), len(want))
	}
	for i := range got {
		if tol == 0 {
			if !got[i].Equal(want[i].Convert(got[i].Kind)) {
				return fmt.Errorf("window %d differs from quantized oracle: got %v want %v", i, got[i], want[i])
			}
		} else if !got[i].AlmostEqual(want[i], tol) {
			return fmt.Errorf("window %d diverges from f64 oracle beyond tolerance %g: got %v want %v",
				i, tol, got[i], want[i])
		}
	}
	return nil
}
