package transform

import (
	"fmt"

	"blockpar/internal/graph"
	"blockpar/internal/kernel"
)

// portConsumers snapshots the consumers of an output port before
// rewiring.
type portConsumer struct {
	node  *graph.Node
	input string
}

func consumersOf(g *graph.Graph, p *graph.Port) []portConsumer {
	var out []portConsumer
	for _, e := range g.EdgesFrom(p) {
		out = append(out, portConsumer{node: e.To.Node(), input: e.To.Name})
	}
	return out
}

// makeInstances renames n to Base_0 and adds deg-1 clones, returning
// all instances in index order (paper Figure 4's "5x5 Conv_0..2").
func makeInstances(g *graph.Graph, n *graph.Node, deg int) []*graph.Node {
	instances := make([]*graph.Node, deg)
	base := n.Base
	g.Rename(n, fmt.Sprintf("%s_0", base))
	n.Instance = 0
	instances[0] = n
	for i := 1; i < deg; i++ {
		c := graph.CloneNode(n, fmt.Sprintf("%s_%d", base, i), i)
		g.Add(c)
		instances[i] = c
	}
	return instances
}

// rrParallelize replicates a data-parallel kernel deg ways with
// round-robin split/join kernels (§IV-A) and Replicate kernels on
// replicated inputs.
func rrParallelize(g *graph.Graph, n *graph.Node, deg int) error {
	type feeder struct {
		input string
		dist  *graph.Node // split or replicate
	}
	var feeders []feeder
	for _, p := range n.Inputs() {
		e := g.EdgeTo(p)
		if e == nil {
			return fmt.Errorf("transform: input %s unconnected", p)
		}
		src, srcPort := e.From.Node(), e.From.Name
		g.Disconnect(e)
		var dist *graph.Node
		if p.Replicated {
			dist = kernel.Replicate(uniqueName(g, fmt.Sprintf("Replicate(%s.%s)", n.Base, p.Name)), deg, p.Size)
		} else {
			dist = kernel.SplitRR(uniqueName(g, fmt.Sprintf("Split(%s.%s)", n.Base, p.Name)), deg, p.Size)
		}
		g.Add(dist)
		g.Connect(src, srcPort, dist, "in")
		feeders = append(feeders, feeder{input: p.Name, dist: dist})
	}

	type collector struct {
		output string
		join   *graph.Node
	}
	var collectors []collector
	for _, p := range n.Outputs() {
		cons := consumersOf(g, p)
		for _, e := range g.EdgesFrom(p) {
			g.Disconnect(e)
		}
		join := kernel.JoinRR(uniqueName(g, fmt.Sprintf("Join(%s.%s)", n.Base, p.Name)), deg, p.Size)
		g.Add(join)
		for _, c := range cons {
			g.Connect(join, "out", c.node, c.input)
		}
		collectors = append(collectors, collector{output: p.Name, join: join})
	}

	instances := makeInstances(g, n, deg)
	for i, inst := range instances {
		for _, f := range feeders {
			g.Connect(f.dist, fmt.Sprintf("out%d", i), inst, f.input)
		}
		for _, c := range collectors {
			g.Connect(inst, c.output, c.join, fmt.Sprintf("in%d", i))
		}
	}
	return nil
}

// stripePair parallelizes a (buffer → kernel) pair deg ways by columns:
// a SplitColumns kernel distributes the raw sample stream (overlap
// replicated, Figure 10) to per-stripe buffers, each feeding one kernel
// instance, and each kernel output is collected in column order by a
// JoinColumns kernel.
func stripePair(g *graph.Graph, buf, n *graph.Node, deg int) error {
	plan, ok := kernel.BufferPlanOf(buf)
	if !ok {
		return fmt.Errorf("transform: %q is not a buffer", buf.Name())
	}
	stripes := kernel.ColumnStripes(plan.DataW, plan.WinW, plan.StepX, deg)

	// The raw stream feeding the buffer.
	srcEdge := g.EdgeTo(buf.Input("in"))
	if srcEdge == nil {
		return fmt.Errorf("transform: buffer %q has no producer", buf.Name())
	}
	src, srcPort := srcEdge.From.Node(), srcEdge.From.Name

	// Kernel data input being fed by the buffer.
	var dataInput string
	for _, p := range n.Inputs() {
		if !p.Replicated {
			dataInput = p.Name
		}
	}

	split := kernel.SplitColumns(uniqueName(g, fmt.Sprintf("Split(%s)", buf.Base)), stripes, plan.DataW)
	// After striping, the split faces the application input, so it
	// inherits the no-multiplex rule; the stripe buffers behind it are
	// one hop removed and may share PEs (Figure 12).
	split.NoMultiplex = buf.NoMultiplex
	g.Add(split)
	g.Disconnect(srcEdge)
	g.Connect(src, srcPort, split, "in")

	// Replicated inputs.
	type feeder struct {
		input string
		repl  *graph.Node
	}
	var feeders []feeder
	for _, p := range n.Inputs() {
		if !p.Replicated {
			continue
		}
		e := g.EdgeTo(p)
		rsrc, rport := e.From.Node(), e.From.Name
		g.Disconnect(e)
		repl := kernel.Replicate(uniqueName(g, fmt.Sprintf("Replicate(%s.%s)", n.Base, p.Name)), deg, p.Size)
		g.Add(repl)
		g.Connect(rsrc, rport, repl, "in")
		feeders = append(feeders, feeder{input: p.Name, repl: repl})
	}

	// Output joins (one per kernel output port).
	counts := make([]int, deg)
	for i, s := range stripes {
		counts[i] = s.OutCount()
	}
	type collector struct {
		output string
		join   *graph.Node
	}
	var collectors []collector
	for _, p := range n.Outputs() {
		cons := consumersOf(g, p)
		for _, e := range g.EdgesFrom(p) {
			g.Disconnect(e)
		}
		join := kernel.JoinColumns(uniqueName(g, fmt.Sprintf("Join(%s.%s)", n.Base, p.Name)), counts, p.Size)
		g.Add(join)
		for _, c := range cons {
			g.Connect(join, "out", c.node, c.input)
		}
		collectors = append(collectors, collector{output: p.Name, join: join})
	}

	// Remove the shared buffer; build per-stripe buffers and instances.
	bufBase := buf.Base
	g.Disconnect(g.EdgeTo(n.Input(dataInput)))
	g.Remove(buf)

	instances := makeInstances(g, n, deg)
	for i, inst := range instances {
		sp := kernel.BufferPlan{
			DataW: stripes[i].InWidth(), DataH: plan.DataH,
			WinW: plan.WinW, WinH: plan.WinH,
			StepX: plan.StepX, StepY: plan.StepY,
		}
		sb := kernel.Buffer(uniqueName(g, fmt.Sprintf("%s_%d", bufBase, i)), sp)
		sb.Base = bufBase
		sb.Instance = i
		g.Add(sb)
		g.Connect(split, fmt.Sprintf("out%d", i), sb, "in")
		g.Connect(sb, "out", inst, dataInput)
		for _, f := range feeders {
			g.Connect(f.repl, fmt.Sprintf("out%d", i), inst, f.input)
		}
		for _, c := range collectors {
			g.Connect(inst, c.output, c.join, fmt.Sprintf("in%d", i))
		}
	}
	return nil
}

// stripeBufferAlone splits a memory-bound buffer column-wise without
// replicating its consumer: SplitColumns → per-stripe buffers →
// JoinColumns → original consumer (§IV-C: buffers "likely to be limited
// by the available storage at a processor element").
func stripeBufferAlone(g *graph.Graph, buf *graph.Node, deg int) error {
	plan, ok := kernel.BufferPlanOf(buf)
	if !ok {
		return fmt.Errorf("transform: %q is not a buffer", buf.Name())
	}
	stripes := kernel.ColumnStripes(plan.DataW, plan.WinW, plan.StepX, deg)

	srcEdge := g.EdgeTo(buf.Input("in"))
	src, srcPort := srcEdge.From.Node(), srcEdge.From.Name
	out := buf.Output("out")
	cons := consumersOf(g, out)

	split := kernel.SplitColumns(uniqueName(g, fmt.Sprintf("Split(%s)", buf.Base)), stripes, plan.DataW)
	split.NoMultiplex = buf.NoMultiplex
	g.Add(split)
	counts := make([]int, deg)
	for i, s := range stripes {
		counts[i] = s.OutCount()
	}
	join := kernel.JoinColumns(uniqueName(g, fmt.Sprintf("Join(%s)", buf.Base)), counts, out.Size)
	g.Add(join)

	bufBase := buf.Base
	g.Remove(buf)
	g.Connect(src, srcPort, split, "in")
	for _, c := range cons {
		g.Connect(join, "out", c.node, c.input)
	}
	for i := range stripes {
		sp := kernel.BufferPlan{
			DataW: stripes[i].InWidth(), DataH: plan.DataH,
			WinW: plan.WinW, WinH: plan.WinH,
			StepX: plan.StepX, StepY: plan.StepY,
		}
		sb := kernel.Buffer(uniqueName(g, fmt.Sprintf("%s_%d", bufBase, i)), sp)
		sb.Base = bufBase
		sb.Instance = i
		g.Add(sb)
		g.Connect(split, fmt.Sprintf("out%d", i), sb, "in")
		g.Connect(sb, "out", join, fmt.Sprintf("in%d", i))
	}
	return nil
}
