package core

import (
	"testing"

	"blockpar/internal/apps"
	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/machine"
	"blockpar/internal/runtime"
	"blockpar/internal/transform"
)

// verifyAgainstGolden compiles the app with cfg, runs the transformed
// graph functionally, and compares every output stream with the app's
// golden reference, frame by frame.
func verifyAgainstGolden(t *testing.T, app *apps.App, cfg Config, frames int) *Compiled {
	t.Helper()
	c, err := Compile(app.Graph, cfg)
	if err != nil {
		t.Fatalf("compile %s: %v", app.Name, err)
	}
	res, err := runtime.Run(c.Graph, runtime.Options{Frames: frames, Sources: app.Sources})
	if err != nil {
		t.Fatalf("run %s: %v", app.Name, err)
	}
	for _, out := range c.Graph.Outputs() {
		got := res.FrameSlices(out.Name())
		if len(got) != frames {
			t.Fatalf("%s output %q: %d frames, want %d", app.Name, out.Name(), len(got), frames)
		}
		for f := 0; f < frames; f++ {
			want := app.Golden(int64(f))[out.Name()]
			if len(got[f]) != len(want) {
				t.Fatalf("%s output %q frame %d: %d windows, want %d",
					app.Name, out.Name(), f, len(got[f]), len(want))
			}
			for i := range want {
				if !got[f][i].AlmostEqual(want[i], 1e-9) {
					t.Fatalf("%s output %q frame %d window %d differs:\n got %v\nwant %v",
						app.Name, out.Name(), f, i, got[f][i].Pix, want[i].Pix)
				}
			}
		}
	}
	return c
}

func TestCompileImagePipelineMatchesGolden(t *testing.T) {
	app := apps.ImagePipeline("e2e-image", apps.ImageCfg{
		W: apps.SmallW, H: apps.SmallH,
		Rate: geom.F(apps.FastRate, int64(apps.SmallW*apps.SmallH)),
		Bins: 32,
	})
	c := verifyAgainstGolden(t, app, DefaultConfig(), 2)
	if c.Report.Degrees["5x5 Conv"] < 2 {
		t.Errorf("conv not parallelized: %v", c.Report.Degrees)
	}
	if c.Report.Degrees["Merge"] != 1 {
		t.Errorf("merge degree = %d", c.Report.Degrees["Merge"])
	}
}

func TestCompileFullSuiteMatchesGolden(t *testing.T) {
	for _, b := range apps.Figure13Suite() {
		b := b
		t.Run(b.ID, func(t *testing.T) {
			verifyAgainstGolden(t, b.App, DefaultConfig(), 2)
		})
	}
}

func TestCompileWithoutParallelizationMatchesGolden(t *testing.T) {
	app := apps.ImagePipeline("e2e-nopar", apps.ImageCfg{
		W: 20, H: 16, Rate: geom.FInt(50), Bins: 16,
	})
	cfg := DefaultConfig()
	cfg.Parallelize = false
	c := verifyAgainstGolden(t, app, cfg, 3)
	if c.Report != nil {
		t.Error("report should be nil without parallelization")
	}
	// This is the Figure 3 structure: buffers and an inset, no splits.
	counts := c.Graph.CountByKind()
	if counts[graph.KindSplit] != 0 || counts[graph.KindJoin] != 0 {
		t.Error("unexpected split/join kernels")
	}
}

func TestCompileSharedBufferVariantMatchesGolden(t *testing.T) {
	app := apps.ImagePipeline("e2e-shared", apps.ImageCfg{
		W: apps.SmallW, H: apps.SmallH,
		Rate: geom.F(apps.FastRate, int64(apps.SmallW*apps.SmallH)),
		Bins: 32,
	})
	cfg := DefaultConfig()
	cfg.BufferStriping = false
	verifyAgainstGolden(t, app, cfg, 2)
}

func TestCompilePadPolicy(t *testing.T) {
	// With PadInputs the convolution input is zero-padded, so the
	// subtract covers the median's grid; build the matching golden
	// here rather than in the app.
	const W, H, bins = 20, 16, 16
	app := apps.ImagePipeline("e2e-pad", apps.ImageCfg{W: W, H: H, Rate: geom.FInt(50), Bins: bins})
	cfg := DefaultConfig()
	cfg.Align = transform.PadInputs
	cfg.Parallelize = false

	c, err := Compile(app.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.Run(c.Graph, runtime.Options{Frames: 2, Sources: app.Sources})
	if err != nil {
		t.Fatal(err)
	}
	coeff := apps.ImageCoeff()
	edges := apps.ImageEdges(bins)
	frames := res.FrameSlices("result")
	if len(frames) != 2 {
		t.Fatalf("frames = %d", len(frames))
	}
	for f, ws := range frames {
		img := frame.LCG(int64(f), W, H)
		medOut := frame.Median(img, 3)
		convOut := frame.Convolve(frame.Pad(img, 1, 1, 1, 1), coeff)
		diff := frame.Subtract(medOut, convOut)
		want := frame.Histogram(diff, edges)
		if len(ws) != 1 {
			t.Fatalf("frame %d outputs = %d", f, len(ws))
		}
		for i := range want {
			if ws[0].At(i, 0) != want[i] {
				t.Fatalf("frame %d bin %d = %v, want %v", f, i, ws[0].At(i, 0), want[i])
			}
		}
	}
}

func TestCompileRejectsInvalidMachine(t *testing.T) {
	app := apps.HistogramApp("bad-machine", apps.HistCfg{W: 8, H: 8, Rate: geom.FInt(1), Bins: 4})
	cfg := DefaultConfig()
	cfg.Machine = machine.Machine{}
	if _, err := Compile(app.Graph, cfg); err == nil {
		t.Fatal("invalid machine accepted")
	}
}

func TestCompileErrorPaths(t *testing.T) {
	// Invalid input graph.
	bad := graph.New("bad")
	bad.AddOutput("Output", geom.Sz(1, 1))
	if _, err := Compile(bad, DefaultConfig()); err == nil {
		t.Error("invalid graph accepted")
	}

	// Pad alignment on a graph whose misaligned producer has no raw
	// windowed input fails cleanly (already-buffered input).
	app := apps.ImagePipeline("pad-too-late", apps.ImageCfg{W: 20, H: 16, Rate: geom.FInt(50), Bins: 16})
	if err := transform.InsertBuffers(app.Graph); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Align = transform.PadInputs
	cfg.Parallelize = false
	if _, err := Compile(app.Graph, cfg); err == nil {
		t.Error("pad alignment after buffering accepted")
	}
}

func TestCompileLeavesProblemFreeGraphsUntouched(t *testing.T) {
	// A pure item pipeline compiles to itself (plus nothing) when no
	// parallelism is needed.
	g := graph.New("identity")
	in := g.AddInput("Input", geom.Sz(8, 8), geom.Sz(1, 1), geom.FInt(10))
	k := g.Add(kernelGain())
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", k, "in")
	g.Connect(k, "out", out, "in")
	before := len(g.Nodes())
	c, err := Compile(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Graph.Nodes()) != before {
		t.Errorf("idle compile changed the graph: %d -> %d nodes", before, len(c.Graph.Nodes()))
	}
}

// kernelGain builds a trivial gain kernel without importing the kernel
// package under a clashing name.
func kernelGain() *graph.Node {
	n := graph.NewNode("Gain", graph.KindKernel)
	n.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	n.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	n.RegisterMethod("run", 4, 1)
	n.RegisterMethodInput("run", "in")
	n.RegisterMethodOutput("run", "out")
	n.Behavior = gainB{}
	return n
}

type gainB struct{}

func (gainB) Clone() graph.Behavior { return gainB{} }
func (gainB) Invoke(m string, ctx graph.ExecContext) error {
	ctx.Emit("out", ctx.Input("in"))
	return nil
}
