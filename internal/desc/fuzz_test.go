package desc

import (
	"testing"
)

// FuzzParse asserts the wire-format contract the serve registry relies
// on: Parse never panics, whatever bytes arrive, and any description it
// accepts survives an Encode/Parse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`{
  "name": "edges",
  "inputs":  [{"name": "Input", "frame": [16, 12], "chunk": [1, 1], "rate": "30"}],
  "outputs": [{"name": "Output", "chunk": [1, 1]}],
  "kernels": [{"name": "3x3 Conv", "type": "convolution", "params": "3"},
              {"name": "Coeff", "type": "gain", "params": "1"}],
  "edges":   [{"from": "Input.out", "to": "3x3 Conv.in"}]
}`,
		`{"name": "x", "inputs": [`,
		`{"name": "", "inputs": []}`,
		`{"name": "x", "kernels": [{"name": "m", "type": "median", "params": "4"}]}`,
		`{"name": "x", "inputs": [{"name": "a", "frame": [0, -3], "chunk": [1, 1], "rate": "1/0"}]}`,
		`null`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Parse(data)
		if err != nil {
			return
		}
		out, err := Encode(g)
		if err != nil {
			t.Fatalf("parsed description does not encode back: %v", err)
		}
		if _, err := Parse(out); err != nil {
			t.Fatalf("encoded description does not re-parse: %v\n%s", err, out)
		}
	})
}
