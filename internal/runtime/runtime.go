// Package runtime executes block-parallel application graphs
// functionally: kernel instances exchange items over stream FIFOs with
// control tokens in-band. It is the semantic reference for the system —
// every compiler transformation is verified by running the transformed
// graph here and comparing with the untransformed golden output
// (DESIGN.md §5).
//
// Two execution styles exist, mirroring graph.Behavior:
//
//   - Invoker kernels are driven by the generic method-trigger loop:
//     a method fires when every trigger input's queue head matches
//     (data for data triggers, the right token for token triggers).
//     Unhandled control tokens are forwarded in order to the outputs of
//     the methods fed by that input, once the token has arrived on all
//     of those methods' data inputs (paper §II-C).
//   - Runner kernels (buffers, splits, joins, insets, pads, feedback)
//     drive their own stream FSM.
//
// Replicated inputs act as a configuration barrier: a kernel's data
// methods do not fire until every replicated input has delivered at
// least one item, making coefficient/bin loading deterministic.
//
// The scheduling engine is pluggable (Options.Executor): the default
// engine runs one goroutine per node with channels as the FIFOs; the
// worker-pool engine runs ready kernel firings to completion on a
// fixed set of workers, decoupling logical kernels from OS-level
// parallelism the way the paper decouples kernels from PEs.
//
// Items follow the zero-copy ownership protocol of internal/frame:
// windows travel as stride-aware views over pooled storage, the sender
// retains one reference per consumer at fan-out, and the engine
// releases a kernel's data inputs after each firing. Results are
// compacted into slab storage so callers never pin pool buffers.
package runtime

import (
	"fmt"
	goruntime "runtime"
	"sync"
	"time"

	"blockpar/internal/frame"
	"blockpar/internal/graph"
	"blockpar/internal/token"
)

// ExecutorKind selects the scheduling engine for a run or session.
type ExecutorKind string

const (
	// ExecGoroutines is the default engine: one goroutine per node,
	// channels as the stream FIFOs.
	ExecGoroutines ExecutorKind = "goroutines"
	// ExecWorkers is the worker-pool engine: a fixed set of workers
	// (Options.Workers, default GOMAXPROCS) runs ready kernel firings
	// to completion from a shared ready queue.
	ExecWorkers ExecutorKind = "workers"
)

// Options configures a functional run.
type Options struct {
	// Frames is how many input frames to generate (default 1).
	Frames int
	// Timeout aborts the run if the outputs have not completed within
	// this wall-clock duration — a watchdog against misbehaving custom
	// kernels deadlocking the pipeline. Zero means no watchdog.
	Timeout time.Duration
	// ChannelCap overrides the per-node inbox capacity. Zero means
	// automatic: generous enough to absorb the pipeline skew of
	// windowed diamonds (several input rows).
	ChannelCap int
	// Sources maps application input node names to frame generators.
	// Inputs without an entry produce frame.Gradient frames.
	Sources map[string]frame.Generator
	// Executor selects the scheduling engine; empty means
	// ExecGoroutines.
	Executor ExecutorKind
	// Workers sizes the ExecWorkers pool (default GOMAXPROCS); ignored
	// by other engines.
	Workers int
}

// Result holds everything the application outputs produced.
type Result struct {
	// Outputs maps output node name to the full item stream received,
	// tokens included, in arrival order.
	Outputs map[string][]graph.Item
	// Firings counts method invocations per kernel (generic Invoker
	// kernels only; FSM runners drive their own loops). Used to
	// cross-check the data-flow analysis' predicted iteration counts
	// against actual execution.
	Firings map[string]map[string]int64
}

// DataWindows returns just the data windows received by the named
// output, in order.
func (r *Result) DataWindows(output string) []frame.Window {
	var out []frame.Window
	for _, it := range r.Outputs[output] {
		if !it.IsToken {
			out = append(out, it.Win)
		}
	}
	return out
}

// FrameSlices splits the named output's data windows into per-frame
// groups using the end-of-frame tokens.
func (r *Result) FrameSlices(output string) [][]frame.Window {
	var frames [][]frame.Window
	var cur []frame.Window
	for _, it := range r.Outputs[output] {
		if it.IsToken {
			if it.Tok.Kind == token.EndOfFrame {
				frames = append(frames, cur)
				cur = nil
			}
			continue
		}
		cur = append(cur, it.Win)
	}
	if len(cur) > 0 {
		frames = append(frames, cur)
	}
	return frames
}

// inMsg is one delivery into a node's inbox.
type inMsg struct {
	input string
	item  graph.Item
}

// engine is the scheduling abstraction behind a run: it owns the
// transport between nodes and decides what executes where. The
// executor owns the graph-level semantics (input chunking, output
// collection, firing counts, errors) and delegates movement to the
// engine.
type engine interface {
	// start launches execution and returns a channel closed when every
	// node has finished.
	start() chan struct{}
	// deliver moves one item along one edge. It must not block
	// indefinitely once the run is stopping.
	deliver(e *graph.Edge, it graph.Item)
	// recv blocks for the next delivery to node n; ok is false when
	// all producers have closed and the inbox is drained, or the run
	// is stopping.
	recv(n *graph.Node) (inMsg, bool)
	// stopNotify wakes anything blocked outside channel selects; it is
	// called exactly once, after the stop channel closes.
	stopNotify()
}

// executor holds the shared state of one run, independent of engine.
type executor struct {
	g    *graph.Graph
	opts Options
	eng  engine

	// edgesFrom caches the per-port fan-out so the send path does not
	// allocate.
	edgesFrom map[*graph.Port][]*graph.Edge
	// batchOK records, per edge, whether the consumer accepts row
	// batches; the send path splits batches into logical view items for
	// every edge where it is false, so non-batch-aware kernels (and the
	// wire transport behind boundary sinks) observe the exact scalar
	// stream they always did.
	batchOK map[*graph.Edge]bool

	stop     chan struct{}
	stopOnce sync.Once

	errMu sync.Mutex
	err   error

	fireMu  sync.Mutex
	firings map[string]map[string]int64

	// output collection (guarded by outMu)
	outMu   sync.Mutex
	slab    slabAlloc
	outputs map[string][]graph.Item
	// eofSeen tracks per-output EOF counts for termination.
	eofSeen map[string]int

	// Streaming mode (sessions): inputs read frames from feeds instead
	// of generating them, outputs assemble per-frame results onto ready
	// instead of accumulating the raw item stream, and node panics are
	// converted to errors so a bad kernel cannot take down the process.
	stream bool
	feeds  map[*graph.Node]chan frame.Window
	ready  chan StreamResult
	// curFrame and doneFrames hold the per-output frame assembly
	// (guarded by outMu); assembled counts completed frame sets.
	curFrame   map[string][]frame.Window
	doneFrames map[string][][]frame.Window
	assembled  int64

	wg sync.WaitGroup
}

// newExecutor validates the graph and wires the engine; readyCap > 0
// selects streaming mode with that many buffered frame results.
func newExecutor(g *graph.Graph, opts Options, readyCap int) (*executor, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("runtime: invalid graph: %w", err)
	}
	if opts.ChannelCap <= 0 {
		maxW := 64
		for _, in := range g.Inputs() {
			if in.FrameSize.W > maxW {
				maxW = in.FrameSize.W
			}
		}
		// Four rows of per-sample slack per inbox. Row batching cut the
		// physical item count per row to O(1) on batch-aware edges, so
		// deep buffers only pay allocation and GC-scan cost.
		opts.ChannelCap = 4 * maxW
	}
	if opts.Workers <= 0 {
		opts.Workers = goruntime.GOMAXPROCS(0)
	}

	ex := &executor{
		g:         g,
		opts:      opts,
		edgesFrom: make(map[*graph.Port][]*graph.Edge),
		stop:      make(chan struct{}),
		outputs:   make(map[string][]graph.Item),
		eofSeen:   make(map[string]int),
		firings:   make(map[string]map[string]int64),
	}
	ex.batchOK = make(map[*graph.Edge]bool)
	for _, n := range g.Nodes() {
		for _, p := range n.Outputs() {
			edges := g.EdgesFrom(p)
			ex.edgesFrom[p] = edges
			for _, e := range edges {
				ex.batchOK[e] = acceptsBatch(e)
			}
		}
	}
	if readyCap > 0 {
		ex.stream = true
		ex.feeds = make(map[*graph.Node]chan frame.Window)
		ex.ready = make(chan StreamResult, readyCap)
		ex.curFrame = make(map[string][]frame.Window)
		ex.doneFrames = make(map[string][][]frame.Window)
		for _, n := range g.Inputs() {
			ex.feeds[n] = make(chan frame.Window, readyCap)
		}
	}
	switch opts.Executor {
	case "", ExecGoroutines:
		ex.eng = newChanEngine(ex)
	case ExecWorkers:
		ex.eng = newWorkerEngine(ex, opts.Workers)
	default:
		return nil, fmt.Errorf("runtime: unknown executor %q", opts.Executor)
	}
	return ex, nil
}

func (ex *executor) start() chan struct{} { return ex.eng.start() }

// runErr returns the first error recorded by fail, if any.
func (ex *executor) runErr() error {
	ex.errMu.Lock()
	defer ex.errMu.Unlock()
	return ex.err
}

// Run executes the graph for opts.Frames frames and returns the
// collected outputs. The graph must Validate cleanly.
func Run(g *graph.Graph, opts Options) (*Result, error) {
	if opts.Frames <= 0 {
		opts.Frames = 1
	}
	ex, err := newExecutor(g, opts, 0)
	if err != nil {
		return nil, err
	}
	done := ex.start()
	if opts.Timeout > 0 {
		select {
		case <-done:
		case <-time.After(opts.Timeout):
			ex.fail(fmt.Errorf("runtime: watchdog: outputs incomplete after %v", opts.Timeout))
			// Give unblocked goroutines a moment to notice the stop
			// signal; a kernel stuck outside Recv/Send is leaked.
			select {
			case <-done:
			case <-time.After(time.Second):
			}
		}
	} else {
		<-done
	}
	if err := ex.runErr(); err != nil {
		return nil, err
	}
	// The run only succeeded if every output saw its full frame budget
	// (a kernel that silently swallows its stream must not pass).
	for _, o := range g.Outputs() {
		if ex.eofSeen[o.Name()] < opts.Frames {
			return nil, fmt.Errorf("runtime: output %q completed %d of %d frames",
				o.Name(), ex.eofSeen[o.Name()], opts.Frames)
		}
	}
	return &Result{Outputs: ex.outputs, Firings: ex.firings}, nil
}

// recordFiring counts n logical method invocations for consistency
// checks. A batched firing covers its batch's N logical invocations, so
// the firings-vs-analysis cross-check holds with batching on or off.
func (ex *executor) recordFiring(node, method string, n int64) {
	ex.fireMu.Lock()
	m := ex.firings[node]
	if m == nil {
		m = make(map[string]int64)
		ex.firings[node] = m
	}
	m[method] += n
	ex.fireMu.Unlock()
}

func (ex *executor) downstreamConsumers(n *graph.Node) []*graph.Node {
	seen := make(map[*graph.Node]bool)
	var out []*graph.Node
	for _, e := range ex.g.OutEdges(n) {
		c := e.To.Node()
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

func (ex *executor) fail(err error) {
	ex.errMu.Lock()
	if ex.err == nil {
		ex.err = err
	}
	ex.errMu.Unlock()
	ex.stopAll()
}

func (ex *executor) stopAll() {
	ex.stopOnce.Do(func() {
		close(ex.stop)
		ex.eng.stopNotify()
	})
}

func (ex *executor) stopping() bool {
	select {
	case <-ex.stop:
		return true
	default:
		return false
	}
}

// acceptsBatch reports whether the edge's consumer handles batched
// items natively: application outputs unbatch at collection, and
// behaviors opt in per input via graph.BatchAware.
func acceptsBatch(e *graph.Edge) bool {
	n := e.To.Node()
	if n.Kind == graph.KindOutput {
		return true
	}
	ba, ok := n.Behavior.(graph.BatchAware)
	return ok && ba.AcceptsBatch(e.To.Name)
}

// send delivers an item to every consumer of the given output port,
// adding one pool reference per extra consumer (ownership protocol:
// the caller's reference covers the first consumer). It aborts
// silently once the run is stopping; undelivered references then fall
// back to the garbage collector, which the arena tolerates.
func (ex *executor) send(from *graph.Port, it graph.Item) {
	edges := ex.edgesFrom[from]
	if !it.IsToken && it.B.IsBatch() {
		ex.sendBatch(edges, it)
		return
	}
	if !it.IsToken && len(edges) > 1 {
		it.Win.Retain(len(edges) - 1)
	}
	for _, e := range edges {
		ex.eng.deliver(e, it)
	}
}

// sendBatch fans a row batch out: batch-accepting consumers receive the
// one physical item; everyone else receives its N logical windows as
// view items in stream order. Reference math: every delivered item —
// batch or view — is one consumer-side release, so the total retained
// is (deliveries - 1) on top of the caller's reference.
func (ex *executor) sendBatch(edges []*graph.Edge, it graph.Item) {
	n := int(it.B.N)
	total := 0
	for _, e := range edges {
		if ex.batchOK[e] {
			total++
		} else {
			total += n
		}
	}
	if total == 0 {
		it.Win.Release()
		return
	}
	it.Win.Retain(total - 1)
	for _, e := range edges {
		if ex.batchOK[e] {
			ex.eng.deliver(e, it)
			continue
		}
		for j := 0; j < n; j++ {
			ex.eng.deliver(e, graph.DataItem(it.B.Window(it.Win, j)))
		}
	}
}

// recv pulls the next delivery for node n; ok is false when all
// producers are done and the inbox is drained, or the run is stopping.
func (ex *executor) recv(n *graph.Node) (inMsg, bool) {
	return ex.eng.recv(n)
}

func (ex *executor) runNode(n *graph.Node) error {
	switch n.Kind {
	case graph.KindInput:
		if ex.stream {
			return ex.runInputStream(n)
		}
		return ex.runInput(n)
	case graph.KindOutput:
		if ex.stream {
			return ex.runOutputStream(n)
		}
		return ex.runOutput(n)
	}
	if r, ok := graph.RunnerBehavior(n); ok {
		ctx := &runCtx{ex: ex, node: n}
		return r.Run(ctx)
	}
	if n.Behavior == nil {
		return fmt.Errorf("runtime: node %q has no behavior", n.Name())
	}
	inv, ok := n.Behavior.(graph.Invoker)
	if !ok {
		return fmt.Errorf("runtime: node %q behavior implements neither Invoker nor Runner", n.Name())
	}
	d := newDriver(ex, n, inv)
	return d.loop()
}

// runCtx adapts the executor to graph.RunContext for Runner kernels.
type runCtx struct {
	ex      *executor
	node    *graph.Node
	pending map[string][]graph.Item
}

func (c *runCtx) Node() *graph.Node { return c.node }

func (c *runCtx) Send(output string, it graph.Item) {
	p := c.node.Output(output)
	if p == nil {
		panic(fmt.Sprintf("runtime: node %q has no output %q", c.node.Name(), output))
	}
	c.ex.send(p, it)
}

func (c *runCtx) Recv(input string) (graph.Item, bool) {
	if c.pending == nil {
		c.pending = make(map[string][]graph.Item)
	}
	if q := c.pending[input]; len(q) > 0 {
		it := q[0]
		c.pending[input] = q[1:]
		return it, true
	}
	for {
		msg, ok := c.ex.recv(c.node)
		if !ok {
			return graph.Item{}, false
		}
		if msg.input == input {
			return msg.item, true
		}
		c.pending[msg.input] = append(c.pending[msg.input], msg.item)
	}
}

// emitFrame chunks one frame into scan-order items with end-of-line
// and end-of-frame tokens (paper §II-C: these two tokens are generated
// automatically by the data inputs). With zero-copy enabled the chunks
// are stride-aware views of img — zero allocations per item — so img
// must stay immutable while the frame is in flight.
//
// emitFrame takes ownership of img when it is pooled (a frame decoded
// off the cluster wire, for instance): each emitted view carries its
// own reference to the shared backing — the chunk count minus one
// retained here plus the caller's original — so the standard
// release-after-consume protocol returns the storage to the arena
// exactly when the last chunk has been consumed. In copy mode the
// chunks are independent, and the caller's reference is released once
// the frame has been chunked.
func (ex *executor) emitFrame(out *graph.Port, fw, fh, cw, ch int, img frame.Window, f int64) {
	zero := frame.ZeroCopy()
	cols, rows := fw/cw, fh/ch
	if zero && cols > 1 {
		// Row-batched chunking: one physical item per chunk row instead
		// of one per chunk. Each batch carries one reference; send
		// retains whatever extra its fan-out (or per-edge splitting)
		// needs, so the backing returns to the arena exactly when the
		// last logical chunk is consumed.
		if rows > 1 {
			img.Retain(rows - 1)
		}
		row := f * int64(rows)
		b := graph.Batch{N: int32(cols), Sx: int32(cw), Bw: int32(cw)}
		for y := 0; y+ch <= fh; y += ch {
			ex.send(out, graph.BatchItem(img.View(0, y, fw, ch), b))
			ex.send(out, graph.TokenItem(token.EOL(row)))
			row++
		}
		ex.send(out, graph.TokenItem(token.EOF(f)))
		return
	}
	if zero {
		if chunks := (fh / ch) * (fw / cw); chunks > 1 {
			img.Retain(chunks - 1)
		}
	} else {
		defer img.Release()
	}
	row := f * int64(fh/ch)
	for y := 0; y+ch <= fh; y += ch {
		for x := 0; x+cw <= fw; x += cw {
			var w frame.Window
			if zero {
				w = img.View(x, y, cw, ch)
			} else {
				w = img.Sub(x, y, cw, ch)
			}
			ex.send(out, graph.DataItem(w))
		}
		ex.send(out, graph.TokenItem(token.EOL(row)))
		row++
	}
	ex.send(out, graph.TokenItem(token.EOF(f)))
}

// runInput generates opts.Frames frames of scan-order chunks.
func (ex *executor) runInput(n *graph.Node) error {
	gen := ex.opts.Sources[n.Name()]
	if gen == nil {
		gen = frame.Gradient
	}
	out := n.Output("out")
	chunk := out.Size
	fs := n.FrameSize
	if fs.W%chunk.W != 0 || fs.H%chunk.H != 0 {
		return fmt.Errorf("runtime: input %q frame %v not divisible by chunk %v", n.Name(), fs, chunk)
	}
	for f := 0; f < ex.opts.Frames; f++ {
		if ex.stopping() {
			return nil
		}
		img := gen(int64(f), fs.W, fs.H)
		ex.emitFrame(out, fs.W, fs.H, chunk.W, chunk.H, img, int64(f))
	}
	return nil
}

// collectOutput ingests one data window into the result slab: the
// samples are copied into append-only slab blocks and the original is
// released, so the caller-visible result never pins pooled storage.
// Must be called with outMu held.
func (ex *executor) collectOutput(w frame.Window) frame.Window {
	placed := ex.slab.place(w)
	w.Release()
	return placed
}

// collectBatch unbatches a row batch into per-window slab views —
// application outputs always present the logical stream. The batch's
// span is placed into the slab with one copy and the logical windows
// are cut as views of that dense copy, so unbatching costs one memmove
// per row, not one slab placement per window. Must be called with
// outMu held.
func (ex *executor) collectBatch(it graph.Item) []frame.Window {
	dense := ex.slab.place(it.Win)
	it.Win.Release()
	out := make([]frame.Window, it.B.N)
	for j := range out {
		out[j] = it.B.Window(dense, j)
	}
	return out
}

// runOutput collects the stream and stops the run once every output
// has seen the full frame budget.
func (ex *executor) runOutput(n *graph.Node) error {
	for {
		msg, ok := ex.recv(n)
		if !ok {
			return nil
		}
		ex.outMu.Lock()
		if !msg.item.IsToken && msg.item.B.IsBatch() {
			// Unbatch in place: one slab placement for the span, one
			// append per logical window, no intermediate slice.
			dense := ex.slab.place(msg.item.Win)
			msg.item.Win.Release()
			out := ex.outputs[n.Name()]
			for j := 0; j < int(msg.item.B.N); j++ {
				out = append(out, graph.DataItem(msg.item.B.Window(dense, j)))
			}
			ex.outputs[n.Name()] = out
			ex.outMu.Unlock()
			continue
		}
		if !msg.item.IsToken {
			msg.item.Win = ex.collectOutput(msg.item.Win)
		}
		ex.outputs[n.Name()] = append(ex.outputs[n.Name()], msg.item)
		if msg.item.IsToken && msg.item.Tok.Kind == token.EndOfFrame {
			ex.eofSeen[n.Name()]++
			if ex.eofSeen[n.Name()] == 1 && ex.opts.Frames > 1 {
				// The first frame fixes the per-frame item count; reserve
				// the whole run's worth in one allocation instead of
				// doubling through growslice for every remaining frame.
				cur := ex.outputs[n.Name()]
				if need := len(cur)*ex.opts.Frames + 8; cap(cur) < need {
					grown := make([]graph.Item, len(cur), need)
					copy(grown, cur)
					ex.outputs[n.Name()] = grown
				}
			}
			done := true
			for _, o := range ex.g.Outputs() {
				if ex.eofSeen[o.Name()] < ex.opts.Frames {
					done = false
					break
				}
			}
			if done {
				ex.outMu.Unlock()
				ex.stopAll()
				return nil
			}
		}
		ex.outMu.Unlock()
	}
}

// slabAlloc packs output windows into append-only blocks. Blocks are
// never reallocated — when one fills, a fresh block starts and the old
// one stays alive exactly as long as the result windows placed in it —
// so placing is a copy plus slice arithmetic, with one allocation per
// block instead of one per window. F64 windows pack into a float64
// slab; typed windows pack into a byte slab (8-aligned blocks, offsets
// rounded to 8 so f32 views stay aligned), preserving their kind.
type slabAlloc struct {
	buf []float64
	raw []byte
}

// slabBlock is the block granularity in samples (128 KiB blocks).
const slabBlock = 1 << 14

// place copies w into slab storage and returns the dense copy.
func (s *slabAlloc) place(w frame.Window) frame.Window {
	if w.Kind != frame.F64 {
		return s.placeTyped(w)
	}
	n := w.W * w.H
	if n == 0 {
		return frame.Window{W: w.W, H: w.H}
	}
	if len(s.buf)+n > cap(s.buf) {
		c := slabBlock
		if n > c {
			c = n
		}
		s.buf = make([]float64, 0, c)
	}
	off := len(s.buf)
	s.buf = s.buf[:off+n]
	dst := s.buf[off : off+n : off+n]
	stride := w.RowStride()
	for y := 0; y < w.H; y++ {
		copy(dst[y*w.W:(y+1)*w.W], w.Pix[y*stride:y*stride+w.W])
	}
	return frame.Window{W: w.W, H: w.H, Pix: dst}
}

func (s *slabAlloc) placeTyped(w frame.Window) frame.Window {
	es := w.Kind.Bytes()
	nb := w.W * w.H * es
	if nb == 0 {
		return frame.NewWindowKind(w.Kind, w.W, w.H)
	}
	// Round the write offset up to 8 bytes so f32 views are aligned.
	off := (len(s.raw) + 7) &^ 7
	if off+nb > cap(s.raw) {
		c := slabBlock * 8
		if nb > c {
			c = nb
		}
		s.raw = frame.AlignedBytes(c)
		off = 0
	}
	s.raw = s.raw[:off+nb]
	dst := s.raw[off : off+nb : off+nb]
	for y := 0; y < w.H; y++ {
		copy(dst[y*w.W*es:(y+1)*w.W*es], w.RowBytes(y))
	}
	return frame.WrapBytes(w.Kind, w.W, w.H, dst)
}
