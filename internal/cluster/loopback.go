package cluster

import (
	"net"
	"time"
)

// Loopback starts a worker on a loopback TCP listener and a
// single-worker dispatcher connected to it — the in-process harness the
// conformance driver, the cluster tests, and BenchmarkClusterLoopback
// use to exercise the full wire path without spawning processes. The
// returned stop function tears both down.
func Loopback(w *Worker, dopts DispatcherOptions) (*Dispatcher, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	go w.Serve(ln)
	d := NewDispatcher([]string{ln.Addr().String()}, dopts)
	if err := d.WaitReady(5 * time.Second); err != nil {
		d.Close()
		w.Close()
		return nil, nil, err
	}
	stop := func() {
		d.Close()
		w.Close()
	}
	return d, stop, nil
}
