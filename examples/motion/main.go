// Motion demonstrates the paper's §VII extension for dynamic kernels:
// a block-matching motion estimator whose per-block work varies with
// the data. The method declares a typical cost and a worst-case bound;
// the compiler allocates the bound, and the timing simulator raises
// runtime resource exceptions when an invocation would exceed it —
// exactly the mechanism the paper names for kernels like motion-vector
// search.
package main

import (
	"fmt"
	"log"

	"blockpar"
)

const (
	width, height = 64, 32
	blockK        = 4
	searchRange   = 8
)

func build() (*blockpar.Graph, *blockpar.Node) {
	g := blockpar.NewApp("motion-estimation")
	in := g.AddInput("Input", blockpar.Sz(width, height), blockpar.Sz(1, 1),
		blockpar.F(2_000_000, width*height))
	ms := g.Add(blockpar.MotionSearch("Motion", blockK, searchRange))
	out := g.AddOutput("MVs", blockpar.Sz(2, 1))
	g.Connect(in, "out", ms, "in")
	g.Connect(ms, "mv", out, "in")
	return g, ms
}

func main() {
	g, ms := build()
	search := ms.Method("search")
	fmt.Printf("dynamic kernel: typical %d cycles, worst-case bound %d cycles per block\n",
		search.Cycles, search.Bound)

	cfg := blockpar.DefaultConfig()
	compiled, err := blockpar.Compile(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled with worst-case allocation: motion degree %d\n",
		compiled.Report.Degrees["Motion"])

	// Functional run: motion vectors with data-dependent iteration
	// counts, reference frame rolling over on end-of-frame.
	res, err := blockpar.Run(compiled.Graph, blockpar.RunOptions{
		Frames:  2,
		Sources: map[string]blockpar.Generator{"Input": blockpar.LCG},
	})
	if err != nil {
		log.Fatal(err)
	}
	for f, mvs := range res.FrameSlices("MVs") {
		minIt, maxIt := 1e9, 0.0
		for _, mv := range mvs {
			it := mv.At(1, 0)
			if it < minIt {
				minIt = it
			}
			if it > maxIt {
				maxIt = it
			}
		}
		fmt.Printf("frame %d: %d motion vectors, search iterations ranged %g..%g\n",
			f, len(mvs), minIt, maxIt)
	}

	// Timing with the default (within-bound) cost model.
	assign := blockpar.MapOneToOne(compiled.Graph)
	sr, err := blockpar.Simulate(compiled.Graph, assign, blockpar.SimOptions{
		Machine: cfg.Machine, Frames: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("within-bound model: real-time %v, %d resource exceptions\n",
		sr.RealTimeMet(), sr.TotalExceptions())

	// Now misdeclare the bound: every third block actually costs twice
	// the allocation. The simulator truncates those invocations at the
	// bound and reports runtime exceptions, keeping the rate guarantee.
	g2, ms2 := build()
	bound := ms2.Method("search").Bound
	ms2.Costs["search"] = func(inv int64) int64 {
		if inv%3 == 2 {
			return 2 * bound
		}
		return bound / 2
	}
	compiled2, err := blockpar.Compile(g2, cfg)
	if err != nil {
		log.Fatal(err)
	}
	sr2, err := blockpar.Simulate(compiled2.Graph, blockpar.MapOneToOne(compiled2.Graph),
		blockpar.SimOptions{Machine: cfg.Machine, Frames: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("misdeclared model:  real-time %v, %d resource exceptions (work truncated at the bound)\n",
		sr2.RealTimeMet(), sr2.TotalExceptions())
}
