package report

import (
	"fmt"
	"strings"

	"blockpar/internal/apps"
	"blockpar/internal/core"
	"blockpar/internal/machine"
	"blockpar/internal/mapping"
	"blockpar/internal/sim"
)

// SweepPoint is one rate step of the processors-vs-rate sweep.
type SweepPoint struct {
	// Samples is the input sample rate in samples/sec.
	Samples int64
	// PEsOneToOne and PEsGreedy are the processors each mapping
	// provisions at this rate.
	PEsOneToOne, PEsGreedy int
	// Util is the greedy mapping's simulated mean utilization.
	Util float64
	// RealTimeMet reports whether the greedy mapping kept up.
	RealTimeMet bool
}

// RateSweep compiles the running example across input sample rates and
// reports the minimum-processor provisioning at each. The paper frames
// its problem as the dual of StreamIt's ("rather than finding the
// minimum number of processors to meet a fixed rate, they try to use a
// fixed number of processors to obtain the highest rate possible",
// §VI); this sweep plots exactly that tradeoff curve: required PEs as
// a function of the real-time rate.
func RateSweep(m machine.Machine, samples []int64, frames int) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, s := range samples {
		p := apps.Preset{ID: fmt.Sprintf("sweep-%d", s), W: apps.SmallW, H: apps.SmallH, Samples: s}
		app := apps.ImagePreset(p)
		c, err := core.Compile(app.Graph, core.Config{Machine: m, Parallelize: true, BufferStriping: true})
		if err != nil {
			return nil, fmt.Errorf("rate %d: %w", s, err)
		}
		one := mapping.OneToOne(c.Graph)
		gm, err := mapping.Greedy(c.Graph, c.Analysis, m)
		if err != nil {
			return nil, fmt.Errorf("rate %d: %w", s, err)
		}
		res, err := sim.Simulate(c.Graph, gm, sim.Options{Machine: m, Frames: frames})
		if err != nil {
			return nil, fmt.Errorf("rate %d: %w", s, err)
		}
		out = append(out, SweepPoint{
			Samples:     s,
			PEsOneToOne: one.NumPEs,
			PEsGreedy:   gm.NumPEs,
			Util:        res.MeanUtilization(),
			RealTimeMet: res.RealTimeMet(),
		})
	}
	return out, nil
}

// RenderRateSweep renders the sweep as a table with a small bar chart.
func RenderRateSweep(points []SweepPoint) string {
	var b strings.Builder
	b.WriteString("Processors required vs input rate (image pipeline, greedy mapping)\n\n")
	fmt.Fprintf(&b, "%12s %8s %8s %7s %4s  %s\n", "samples/s", "PEs 1:1", "PEs GM", "util", "rt", "PEs GM")
	maxPE := 1
	for _, p := range points {
		if p.PEsGreedy > maxPE {
			maxPE = p.PEsGreedy
		}
	}
	for _, p := range points {
		rt := "ok"
		if !p.RealTimeMet {
			rt = "NO"
		}
		bar := strings.Repeat("#", p.PEsGreedy*40/maxPE)
		fmt.Fprintf(&b, "%12d %8d %8d %6.1f%% %4s  %s\n",
			p.Samples, p.PEsOneToOne, p.PEsGreedy, 100*p.Util, rt, bar)
	}
	b.WriteString("\nthe minimum provisioning grows with the hard real-time rate; every point meets its rate.\n")
	return b.String()
}
