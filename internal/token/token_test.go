package token

import "testing"

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		None:       "data",
		EndOfLine:  "EOL",
		EndOfFrame: "EOF",
		Custom:     "custom",
		Kind(99):   "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestConstructors(t *testing.T) {
	if tok := EOL(3); tok.Kind != EndOfLine || tok.Seq != 3 {
		t.Errorf("EOL(3) = %+v", tok)
	}
	if tok := EOF(7); tok.Kind != EndOfFrame || tok.Seq != 7 {
		t.Errorf("EOF(7) = %+v", tok)
	}
	if tok := NewCustom("reload", 1); tok.Kind != Custom || tok.Name != "reload" {
		t.Errorf("NewCustom = %+v", tok)
	}
}

func TestMatches(t *testing.T) {
	if !EOF(0).Matches(EndOfFrame, "") {
		t.Error("EOF should match EndOfFrame")
	}
	if EOF(0).Matches(EndOfLine, "") {
		t.Error("EOF should not match EndOfLine")
	}
	if !NewCustom("x", 0).Matches(Custom, "x") {
		t.Error("custom token should match its own name")
	}
	if NewCustom("x", 0).Matches(Custom, "y") {
		t.Error("custom token should not match a different name")
	}
}

func TestString(t *testing.T) {
	if got := EOL(2).String(); got != "EOL#2" {
		t.Errorf("EOL String = %q", got)
	}
	if got := NewCustom("reload", 5).String(); got != "custom(reload)#5" {
		t.Errorf("custom String = %q", got)
	}
}

func TestZeroValueIsData(t *testing.T) {
	var tok Token
	if tok.Kind != None {
		t.Error("zero token should have Kind None (data)")
	}
}
