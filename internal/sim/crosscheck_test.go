package sim

import (
	"testing"

	"blockpar/internal/apps"
	"blockpar/internal/core"
	"blockpar/internal/machine"
	"blockpar/internal/mapping"
	"blockpar/internal/runtime"
	"blockpar/internal/token"
)

// TestSimMatchesRuntimeStreamStructure is the engine-consistency
// property: for every compiled suite benchmark, the value-free timing
// simulation and the value-carrying functional runtime must deliver
// exactly the same number of data items, end-of-line, and end-of-frame
// tokens at every application output. A divergence means one engine's
// firing rules drifted from the other's.
func TestSimMatchesRuntimeStreamStructure(t *testing.T) {
	const frames = 2
	for _, b := range apps.Figure13Suite() {
		b := b
		t.Run(b.ID, func(t *testing.T) {
			c, err := core.Compile(b.App.Graph, core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			simRes, err := Simulate(c.Graph, mapping.OneToOne(c.Graph),
				Options{Machine: machine.Embedded(), Frames: frames})
			if err != nil {
				t.Fatal(err)
			}
			runRes, err := runtime.Run(c.Graph, runtime.Options{Frames: frames, Sources: b.App.Sources})
			if err != nil {
				t.Fatal(err)
			}
			for _, out := range c.Graph.Outputs() {
				var rt OutputCount
				for _, it := range runRes.Outputs[out.Name()] {
					switch {
					case !it.IsToken:
						rt.Data++
					case it.Tok.Kind == token.EndOfLine:
						rt.EOL++
					case it.Tok.Kind == token.EndOfFrame:
						rt.EOF++
					}
				}
				sm := simRes.OutputCounts[out.Name()]
				if sm != rt {
					t.Errorf("%s output %q: sim %+v vs runtime %+v",
						b.ID, out.Name(), sm, rt)
				}
			}
		})
	}
}

// TestSimMatchesRuntimeSharedBufferVariant repeats the cross-check for
// the Figure 9(a) structure, which exercises the round-robin split and
// join automata on whole-window streams.
func TestSimMatchesRuntimeSharedBufferVariant(t *testing.T) {
	app := apps.ImagePreset(apps.Preset{ID: "SF", W: apps.SmallW, H: apps.SmallH, Samples: apps.FastRate})
	cfg := core.DefaultConfig()
	cfg.BufferStriping = false
	c, err := core.Compile(app.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := Simulate(c.Graph, mapping.OneToOne(c.Graph),
		Options{Machine: machine.Embedded(), Frames: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !simRes.RealTimeMet() {
		t.Error("shared-buffer variant missed real time")
	}
	runRes, err := runtime.Run(c.Graph, runtime.Options{Frames: 2, Sources: app.Sources})
	if err != nil {
		t.Fatal(err)
	}
	var rt OutputCount
	for _, it := range runRes.Outputs["result"] {
		switch {
		case !it.IsToken:
			rt.Data++
		case it.Tok.Kind == token.EndOfLine:
			rt.EOL++
		case it.Tok.Kind == token.EndOfFrame:
			rt.EOF++
		}
	}
	if sm := simRes.OutputCounts["result"]; sm != rt {
		t.Errorf("sim %+v vs runtime %+v", sm, rt)
	}
}

// TestBinPackMappingMeetsRealTime checks the locality-blind bin-packed
// mapping (the §V ablation) still honors capacity: the packed
// application keeps real time in simulation.
func TestBinPackMappingMeetsRealTime(t *testing.T) {
	app := apps.ImagePreset(apps.Preset{ID: "SF", W: apps.SmallW, H: apps.SmallH, Samples: apps.FastRate})
	c, err := core.Compile(app.Graph, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bp, err := mapping.BinPack(c.Graph, c.Analysis, machine.Embedded())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(c.Graph, bp, Options{Machine: machine.Embedded(), Frames: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.RealTimeMet() {
		t.Errorf("bin-packed mapping missed real time: %d stalls", res.InputStalls)
	}
}
