package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"blockpar/internal/apps"
	"blockpar/internal/frame"
	"blockpar/internal/runtime"
	"blockpar/internal/serve"
	"blockpar/internal/wire"
)

// twoWorkers starts two independent workers (own registries, own
// listeners) and a dispatcher over both, returning the workers keyed by
// their address for targeted kills.
func twoWorkers(t *testing.T, opts DispatcherOptions) (*Dispatcher, map[string]*Worker) {
	t.Helper()
	byAddr := make(map[string]*Worker, 2)
	var addrs []string
	for i := 0; i < 2; i++ {
		w := NewWorker(suiteRegistry(t, "5"), WorkerOptions{Name: fmt.Sprintf("fo-w%d", i+1)})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go w.Serve(ln)
		t.Cleanup(func() { w.Close() })
		byAddr[ln.Addr().String()] = w
		addrs = append(addrs, ln.Addr().String())
	}
	d := NewDispatcher(addrs, opts)
	t.Cleanup(func() { d.Close() })
	waitCondition(t, "both workers connected", func() bool {
		rows := workerRows(d)
		for _, addr := range addrs {
			if rows[addr].State != "connected" {
				return false
			}
		}
		return true
	})
	return d, byAddr
}

// feedRetry feeds one frame, riding out the transient ErrQueueFull a
// failover-in-progress (or exhausted credits) presents.
func feedRetry(t *testing.T, h serve.SessionHandle, inputs map[string]frame.Window) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, err := h.TryFeed(inputs)
		if err == nil {
			return
		}
		if !errors.Is(err, runtime.ErrQueueFull) {
			t.Fatalf("feed: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("feed stuck in backpressure for 30s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// collectCompare collects frame f and checks it byte-identical to the
// batch golden, releasing the windows.
func collectCompare(t *testing.T, h serve.SessionHandle, f int64, want map[string][][]frame.Window) {
	t.Helper()
	res, err := h.Collect(30 * time.Second)
	if err != nil {
		t.Fatalf("collect %d: %v", f, err)
	}
	if res.Seq != f {
		t.Fatalf("collect %d: result tagged frame %d", f, res.Seq)
	}
	for name, perFrame := range want {
		got := res.Outputs[name]
		if len(got) != len(perFrame[f]) {
			t.Fatalf("frame %d output %q: %d windows, want %d", f, name, len(got), len(perFrame[f]))
		}
		for i, w := range perFrame[f] {
			if !got[i].Equal(w) {
				t.Fatalf("frame %d output %q window %d differs from batch golden after failover", f, name, i)
			}
		}
	}
	for _, ws := range res.Outputs {
		for _, w := range ws {
			w.Release()
		}
	}
}

func dispatcherCounter(d *Dispatcher, key string) int64 {
	return d.BackendStats().(map[string]any)[key].(int64)
}

// TestClusterSessionFailover is the PR's acceptance test: killing a
// session's worker mid-stream with a survivor up is invisible to the
// client. The dispatcher reopens the session elsewhere, replays the
// full feed history (generators are keyed by absolute frame index, so
// the re-run is bit-exact), dedups the replayed results, and the
// stream completes byte-identical to the batch golden with no
// client-visible error.
func TestClusterSessionFailover(t *testing.T) {
	d, byAddr := twoWorkers(t, fastOpts())

	const frames = 8
	app, err := apps.ByID("5")
	if err != nil {
		t.Fatal(err)
	}
	want := batchFrames(t, app, frames)
	frontend := suiteRegistry(t, "5")
	p, _ := frontend.Get("5")

	h, err := openN(d, p, 4)
	if err != nil {
		t.Fatal(err)
	}

	// Stream half the frames normally, collecting two so the dedup
	// watermark is ahead of zero when the replay re-delivers history.
	for f := 0; f < 4; f++ {
		feedRetry(t, h, nil)
	}
	for f := int64(0); f < 2; f++ {
		collectCompare(t, h, f, want)
	}

	// Kill the worker under the session, mid-stream.
	addr := h.(*remoteSession).workerAddr()
	victim := byAddr[addr]
	if victim == nil {
		t.Fatalf("session attached to unknown worker %q", addr)
	}
	victim.Close()

	// The stream continues as if nothing happened: remaining feeds see
	// at worst transient backpressure, and every frame — including the
	// in-flight ones the dead worker never finished — arrives
	// byte-identical. Collect rides along to keep the in-flight window
	// open (the session bounds fed-minus-collected at maxInFlight).
	for f := 4; f < frames; f++ {
		feedRetry(t, h, nil)
		collectCompare(t, h, int64(f-2), want)
	}
	for f := int64(frames - 2); f < frames; f++ {
		collectCompare(t, h, f, want)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("close after failover: %v", err)
	}

	if n := dispatcherCounter(d, "sessions_failed_over"); n < 1 {
		t.Errorf("sessions_failed_over = %d, want >= 1", n)
	}
	if n := dispatcherCounter(d, "frames_replayed"); n < 4 {
		t.Errorf("frames_replayed = %d, want >= 4 (history at kill time)", n)
	}

	// The session must have ended up on the survivor.
	if got := h.(*remoteSession).workerAddr(); got == addr || got == "" {
		t.Errorf("session attached to %q after failover, want the survivor", got)
	}
}

// TestClusterFailoverReplayOwnership kills a worker mid-frame while the
// session streams explicit pooled windows — the ones the replay log
// retains — and checks the arena gauge returns to baseline after the
// session closes: the log's references, the replayed encode references,
// and the duplicate results' windows all go back.
func TestClusterFailoverReplayOwnership(t *testing.T) {
	d, byAddr := twoWorkers(t, fastOpts())
	frontend := suiteRegistry(t, "5")
	p, _ := frontend.Get("5")
	in := p.Graph().Inputs()[0]

	base := frame.Stats().Live
	h, err := openN(d, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	alloc := func() frame.Window {
		win := frame.Alloc(in.FrameSize.W, in.FrameSize.H)
		if !win.Pooled() {
			t.Skip("input shape outside the arena's bucket range")
		}
		return win
	}

	// One clean frame, then one fed right before the kill so the replay
	// has retained history to re-encode.
	feedRetry(t, h, map[string]frame.Window{in.Name(): alloc()})
	res, err := h.Collect(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	serveReleaseOutputs(res.Outputs)

	feedRetry(t, h, map[string]frame.Window{in.Name(): alloc()})
	byAddr[h.(*remoteSession).workerAddr()].Close()

	// The in-flight frame and one more fed across the failover still
	// complete.
	feedRetry(t, h, map[string]frame.Window{in.Name(): alloc()})
	for f := 0; f < 2; f++ {
		res, err := h.Collect(30 * time.Second)
		if err != nil {
			t.Fatalf("collect after kill: %v", err)
		}
		serveReleaseOutputs(res.Outputs)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	waitCondition(t, "arena references to return to baseline", func() bool {
		return frame.Stats().Live <= base
	})
}

// TestClusterFailoverShedsWithoutCapacity: with no surviving worker the
// failover window expires and the session sheds with the typed pair
// ErrSessionLost + ErrUnavailable (the HTTP layer's 503 + Retry-After),
// never a hang.
func TestClusterFailoverShedsWithoutCapacity(t *testing.T) {
	reg := suiteRegistry(t, "5")
	worker := NewWorker(suiteRegistry(t, "5"), WorkerOptions{Name: "lone"})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go worker.Serve(ln)
	defer worker.Close()

	opts := fastOpts()
	opts.FailoverTimeout = 300 * time.Millisecond
	d := NewDispatcher([]string{ln.Addr().String()}, opts)
	defer d.Close()
	if err := d.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	p, _ := reg.Get("5")
	h, err := openN(d, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.TryFeed(nil); err != nil {
		t.Fatal(err)
	}
	shedBefore := dispatcherCounter(d, "shed_total")
	worker.Close()

	_, err = h.Collect(10 * time.Second)
	if err == nil {
		t.Fatal("collect succeeded with no surviving worker")
	}
	if !errors.Is(err, serve.ErrSessionLost) || !errors.Is(err, serve.ErrUnavailable) {
		t.Errorf("shed error %q, want ErrSessionLost and ErrUnavailable", err)
	}
	h.Close()
	if n := dispatcherCounter(d, "shed_total"); n <= shedBefore {
		t.Errorf("shed_total = %d, want > %d", n, shedBefore)
	}
	if r := d.Readiness(); r.Status != "unavailable" {
		t.Errorf("readiness %+v, want unavailable with the only worker dead", r)
	}
}

// TestWorkerDrainTimeoutAbandoned exercises the drain timeout path
// bpworker -drain-timeout maps to a nonzero exit: a frontend that never
// closes its session makes Shutdown's context expire, and the error
// reports the abandoned work.
func TestWorkerDrainTimeoutAbandoned(t *testing.T) {
	w := NewWorker(suiteRegistry(t, "5"), WorkerOptions{Name: "drain-timeout"})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go w.Serve(ln)
	defer w.Close()

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := wire.NewConn(nc)
	if _, err := c.Handshake(); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(&wire.OpenSession{SID: 1, Pipeline: "5", MaxInFlight: 2}); err != nil {
		t.Fatal(err)
	}
	readUntil := func(match func(wire.Msg) bool) {
		t.Helper()
		for {
			m, err := c.Read()
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if r, ok := m.(*wire.Result); ok {
				releaseResult(r)
			}
			if match(m) {
				return
			}
		}
	}
	readUntil(func(m wire.Msg) bool {
		o, ok := m.(*wire.SessionOpened)
		if ok && o.Err != "" {
			t.Fatalf("open refused: %s", o.Err)
		}
		return ok
	})
	// Stream one frame to completion so the session is live but idle —
	// the timeout must be charged to the unclosed session, not to
	// in-flight work.
	if err := c.Write(&wire.Feed{SID: 1, Seq: 0}); err != nil {
		t.Fatal(err)
	}
	readUntil(func(m wire.Msg) bool { _, ok := m.(*wire.Result); return ok })

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	err = w.Shutdown(ctx)
	if err == nil {
		t.Fatal("drain with an unclosed session succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("drain error %q, want context.DeadlineExceeded", err)
	}
	if !strings.Contains(err.Error(), "abandoned") || !strings.Contains(err.Error(), "1 sessions") {
		t.Errorf("drain error %q, want abandoned-work report", err)
	}
}
