package kernel

import (
	"fmt"

	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
)

// Feedback builds the loop-breaking kernel of §III-D: it outputs the
// given initial values once, before consuming anything, and thereafter
// passes its input through unchanged. Placing one on a cycle gives the
// data-flow analysis a starting point and gives the loop its initial
// state.
func Feedback(name string, item geom.Size, initial []frame.Window) *graph.Node {
	for _, w := range initial {
		if w.W != item.W || w.H != item.H {
			panic(fmt.Sprintf("kernel: feedback initial value %dx%d does not match item %v",
				w.W, w.H, item))
		}
	}
	n := graph.NewNode(name, graph.KindFeedback)
	n.CreateInput("in", item, geom.St(item.W, item.H), geom.Off(0, 0))
	n.CreateOutput("out", item, geom.St(item.W, item.H))
	n.RegisterMethod("pass", fsmPerItem, int64(len(initial))*int64(item.Area()))
	n.RegisterMethodInput("pass", "in")
	n.RegisterMethodOutput("pass", "out")
	n.Behavior = &feedbackBehavior{initial: initial}
	return n
}

type feedbackBehavior struct {
	initial []frame.Window
}

func (b *feedbackBehavior) Clone() graph.Behavior {
	return &feedbackBehavior{initial: b.initial}
}

// FeedbackInitial exposes the initial values of a Feedback node.
func FeedbackInitial(n *graph.Node) ([]frame.Window, bool) {
	b, ok := n.Behavior.(*feedbackBehavior)
	if !ok {
		return nil, false
	}
	return b.initial, true
}

func (b *feedbackBehavior) Run(ctx graph.RunContext) error {
	for _, w := range b.initial {
		ctx.Send("out", graph.DataItem(w.Clone()))
	}
	for {
		it, ok := ctx.Recv("in")
		if !ok {
			return nil
		}
		ctx.Send("out", it)
	}
}

// Accumulator builds a 1×1 running-sum kernel with a state input, used
// by the feedback example: out = in + state, and the new sum is also
// emitted on the "loop" output that closes the feedback cycle.
func Accumulator(name string) *graph.Node {
	n := graph.NewNode(name, graph.KindKernel)
	n.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	n.CreateInput("state", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	n.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	n.CreateOutput("loop", geom.Sz(1, 1), geom.St(1, 1))
	n.RegisterMethod("accumulate", subtractCycles, 2)
	n.RegisterMethodInput("accumulate", "in")
	n.RegisterMethodInput("accumulate", "state")
	n.RegisterMethodOutput("accumulate", "out")
	n.RegisterMethodOutput("accumulate", "loop")
	n.Behavior = accumulatorBehavior{}
	return n
}

type accumulatorBehavior struct{}

func (accumulatorBehavior) Clone() graph.Behavior { return accumulatorBehavior{} }

func (accumulatorBehavior) Invoke(method string, ctx graph.ExecContext) error {
	if method != "accumulate" {
		return fmt.Errorf("kernel: accumulator has no method %q", method)
	}
	sum := ctx.Input("in").Value() + ctx.Input("state").Value()
	ctx.Emit("out", frame.PooledScalar(sum))
	ctx.Emit("loop", frame.PooledScalar(sum))
	return nil
}
