package kernel

import (
	"fmt"

	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
)

// Convert builds the compiler-inserted element-kind conversion kernel:
// a 1×1 pass-through that widens or narrows each sample to the target
// kind. The compiler places one on any edge whose flowing element kind
// the consumer does not accept (a u8 stream feeding a float-only
// convolution widens; a float stream feeding a u8 sink narrows through
// the shared round-half-away-from-zero quantization). Widening is
// exact; narrowing is deterministic, so converted streams stay
// reproducible across backends.
//
// The input accepts row batches: a whole span converts with one dense
// typed row loop and leaves as one batched item under the same batch
// descriptor (conversion commutes with the span's logical views).
func Convert(name string, to frame.Kind) *graph.Node {
	if !to.Valid() {
		panic(fmt.Sprintf("kernel: convert to invalid element kind %d", int(to)))
	}
	n := graph.NewNode(name, graph.KindKernel)
	n.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	n.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	n.RegisterMethod("convert", gainCycles, 1)
	n.RegisterMethodInput("convert", "in")
	n.RegisterMethodOutput("convert", "out")
	n.Attrs["ktype"] = "convert"
	n.Attrs["kparams"] = to.String()
	n.Behavior = convertBehavior{to: to}
	return n
}

// ConvertTarget returns the target kind of a Convert node.
func ConvertTarget(n *graph.Node) (frame.Kind, bool) {
	b, ok := n.Behavior.(convertBehavior)
	if !ok {
		return frame.F64, false
	}
	return b.to, true
}

type convertBehavior struct{ to frame.Kind }

func (b convertBehavior) Clone() graph.Behavior { return b }

// AcceptsBatch implements graph.BatchAware: spans convert whole.
func (convertBehavior) AcceptsBatch(input string) bool { return input == "in" }

// ElemAccepts implements graph.ElemTyped: any kind converts.
func (convertBehavior) ElemAccepts(input string, k frame.Kind) bool { return true }

// ElemOut implements graph.ElemTyped: the output carries the target.
func (b convertBehavior) ElemOut(output string, in frame.Kind) frame.Kind { return b.to }

func (b convertBehavior) Invoke(method string, ctx graph.ExecContext) error {
	if method != "convert" {
		return fmt.Errorf("kernel: convert has no method %q", method)
	}
	in := ctx.Input("in")
	var bt graph.Batch
	bc, _ := ctx.(graph.BatchContext)
	if bc != nil {
		bt = bc.Batch("in")
	}
	out := convertSpan(in, b.to)
	if bt.IsBatch() {
		bc.EmitBatch("out", out, bt)
	} else {
		ctx.Emit("out", out)
	}
	return nil
}

// convertSpan returns a pooled dense copy of in with elements of kind
// to, using direct typed row loops for the common widenings and the
// At/Set promotion rules (including u8 quantization) otherwise.
func convertSpan(in frame.Window, to frame.Kind) frame.Window {
	out := frame.AllocKind(to, in.W, in.H)
	for y := 0; y < in.H; y++ {
		switch {
		case in.Kind == frame.U8 && to == frame.F64:
			dst := out.Row(y)
			for i, v := range in.RowU8(y) {
				dst[i] = float64(v)
			}
		case in.Kind == frame.U8 && to == frame.F32:
			dst := out.RowF32(y)
			for i, v := range in.RowU8(y) {
				dst[i] = float32(v)
			}
		case in.Kind == frame.F32 && to == frame.F64:
			dst := out.Row(y)
			for i, v := range in.RowF32(y) {
				dst[i] = float64(v)
			}
		case in.Kind == frame.F64 && to == frame.F32:
			dst := out.RowF32(y)
			for i, v := range in.Row(y) {
				dst[i] = float32(v)
			}
		default:
			for x := 0; x < in.W; x++ {
				out.Set(x, y, in.At(x, y))
			}
		}
	}
	return out
}
