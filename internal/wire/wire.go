// Package wire is the versioned binary codec of the distributed
// execution plane: it moves windows and control tokens between a
// bpserve frontend and bpworker processes as length-prefixed frames
// over any byte stream (TCP in production, loopback listeners and
// net.Pipe in tests).
//
// Design rules, in order:
//
//   - Never trust the peer. Every decode operates on a bounded byte
//     slice with explicit range checks and returns an error — a
//     truncated, corrupt, or hostile frame must never panic or
//     allocate an attacker-chosen amount of memory (FuzzWire enforces
//     this).
//   - Never copy a window twice. Encoding appends samples row by row
//     straight out of the (possibly strided, possibly pooled)
//     frame.Window into the connection's write buffer; there is no
//     intermediate dense copy. Decoding allocates from the frame
//     arena, so a received window is pooled storage the receiver owns
//     one reference to, under the standard retain/release contract.
//   - Version explicitly. The handshake carries a magic and a protocol
//     version; everything after it is frames of [u32 length | u8 type
//     | payload | u32 crc32c] with all integers big-endian and float64
//     samples as IEEE-754 bits. The CRC32C trailer covers type+payload,
//     so a corrupted frame is a typed decode error (ErrCorrupt), never
//     silently wrong samples.
//
// See docs/cluster.md for the full frame catalogue and the control
// flow between frontend and worker.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"blockpar/internal/frame"
	"blockpar/internal/token"
)

// Magic opens the Hello frame: "BPW" plus the wire format generation.
const Magic uint32 = 0x42505702 // "BPW\x02"

// Version is the protocol version spoken by this build. A peer with a
// different version is rejected at handshake. Version 2 added the
// CRC32C frame trailer and the OpenSession deadline; version 3 added
// the partition plane (OpenPartition, EdgeFrame, EdgeCredit); version 4
// added the registration plane (Register, RegisterAck, Heartbeat,
// Deregister); version 5 tags every window with its element kind and
// carries samples at native width (one byte per u8 sample, four per
// f32) instead of promoting everything to float64; version 6 lets an
// edge item carry a row-batch descriptor (item tag 2), so a whole row
// of logical windows crosses a partition cut as one window plus three
// integers instead of N separate windows; version 7 adds partitioned
// failover (ReopenPartition resumes one partition on a survivor with
// per-edge skip watermarks) and a drain-intent bit on Heartbeat so a
// worker can announce planned maintenance before it leaves the fleet.
const Version uint16 = 7

// MaxFrame bounds a single frame's encoded size; a length prefix past
// it is treated as corruption and kills the connection before any
// allocation happens.
const MaxFrame = 1 << 28 // 256 MiB

// maxDim bounds a decoded window's width and height, and maxWindowBytes
// its total storage in bytes — the natural unit now that windows travel
// at native element width — independent of the frame length check.
const (
	maxDim         = 1 << 20
	maxWindowBytes = 1 << 28 // 256 MiB, any element kind
	// maxWins bounds per-message window counts.
	maxWins = 1 << 25
)

// maxStr bounds any decoded string or byte blob.
const maxStr = 1 << 20

// ErrCorrupt tags every decode failure, so transports can distinguish
// protocol corruption from I/O errors.
var ErrCorrupt = errors.New("wire: corrupt frame")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// ---- primitive append helpers ----

func appendU16(b []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }
func appendI64(b []byte, v int64) []byte  { return binary.BigEndian.AppendUint64(b, uint64(v)) }
func appendF64(b []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(v))
}

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendBytes(b []byte, p []byte) []byte {
	b = appendU32(b, uint32(len(p)))
	return append(b, p...)
}

// reader walks a payload with sticky-error bounds checking: after the
// first short read every subsequent accessor returns zero values and
// the error survives to the final check.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = corruptf("truncated %s at offset %d/%d", what, r.off, len(r.b))
	}
}

func (r *reader) take(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail(what)
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

func (r *reader) u8(what string) uint8 {
	p := r.take(1, what)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *reader) u16(what string) uint16 {
	p := r.take(2, what)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint16(p)
}

func (r *reader) u32(what string) uint32 {
	p := r.take(4, what)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint32(p)
}

func (r *reader) u64(what string) uint64 {
	p := r.take(8, what)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint64(p)
}

func (r *reader) i64(what string) int64 { return int64(r.u64(what)) }

func (r *reader) f64(what string) float64 { return math.Float64frombits(r.u64(what)) }

func (r *reader) str(what string) string {
	n := r.u32(what)
	if r.err == nil && n > maxStr {
		r.err = corruptf("%s length %d exceeds limit %d", what, n, maxStr)
		return ""
	}
	return string(r.take(int(n), what))
}

func (r *reader) bytes(what string) []byte {
	n := r.u32(what)
	if r.err == nil && n > maxStr {
		r.err = corruptf("%s length %d exceeds limit %d", what, n, maxStr)
		return nil
	}
	p := r.take(int(n), what)
	if p == nil {
		return nil
	}
	out := make([]byte, len(p))
	copy(out, p)
	return out
}

// finish asserts the payload was consumed exactly.
func (r *reader) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return corruptf("%d trailing bytes", len(r.b)-r.off)
	}
	return nil
}

// ---- window and token codec ----

// AppendWindow appends a window's wire form: u32 W, u32 H, u8 element
// kind, then W*H samples at the kind's native width in row-major scan
// order (u8 raw, f32 as big-endian IEEE-754 bits, f64 likewise). The
// samples are written directly from the window's storage honoring its
// stride — a pooled or strided view is encoded without an intermediate
// dense copy, and a byte window moves one eighth the f64 traffic.
func AppendWindow(b []byte, w frame.Window) []byte {
	b = appendU32(b, uint32(w.W))
	b = appendU32(b, uint32(w.H))
	b = append(b, byte(w.Kind))
	switch w.Kind {
	case frame.U8:
		for y := 0; y < w.H; y++ {
			b = append(b, w.RowU8(y)...)
		}
	case frame.F32:
		for y := 0; y < w.H; y++ {
			for _, v := range w.RowF32(y) {
				b = appendU32(b, math.Float32bits(v))
			}
		}
	default:
		for y := 0; y < w.H; y++ {
			for _, v := range w.Row(y) {
				b = appendU64(b, math.Float64bits(v))
			}
		}
	}
	return b
}

// decodeWindow reads one window, allocating its storage from the frame
// arena: the caller owns one reference and must Release it (or hand it
// to a consumer that will) per the pool contract.
func decodeWindow(r *reader) frame.Window {
	w := int(r.u32("window width"))
	h := int(r.u32("window height"))
	k := frame.Kind(r.u8("window kind"))
	if r.err != nil {
		return frame.Window{}
	}
	if !k.Valid() {
		r.err = corruptf("unknown element kind %d", k)
		return frame.Window{}
	}
	eb := k.Bytes()
	if w < 0 || h < 0 || w > maxDim || h > maxDim || (h > 0 && w > maxWindowBytes/eb/h) {
		r.err = corruptf("window size %dx%d (%s) out of range", w, h, k)
		return frame.Window{}
	}
	// Bound before allocating: the remaining payload must actually
	// carry W*H native-width samples.
	if need := w * h * eb; r.off+need > len(r.b) {
		r.fail("window samples")
		return frame.Window{}
	}
	win := frame.AllocKind(k, w, h)
	switch k {
	case frame.U8:
		for y := 0; y < h; y++ {
			copy(win.RowU8(y), r.take(w, "window sample"))
		}
	case frame.F32:
		for y := 0; y < h; y++ {
			row := win.RowF32(y)
			for i := range row {
				row[i] = math.Float32frombits(r.u32("window sample"))
			}
		}
	default:
		for i := range win.Pix {
			win.Pix[i] = math.Float64frombits(r.u64("window sample"))
		}
	}
	return win
}

// DecodeWindow decodes a standalone window payload (fuzz and test
// entry point; messages embed windows via the same routine).
func DecodeWindow(b []byte) (frame.Window, error) {
	r := &reader{b: b}
	w := decodeWindow(r)
	if err := r.finish(); err != nil {
		w.Release()
		return frame.Window{}, err
	}
	return w, nil
}

// AppendToken appends a control token: u8 kind, i64 seq, name string.
func AppendToken(b []byte, t token.Token) []byte {
	b = append(b, byte(t.Kind))
	b = appendI64(b, t.Seq)
	return appendStr(b, t.Name)
}

func decodeToken(r *reader) token.Token {
	k := token.Kind(r.u8("token kind"))
	seq := r.i64("token seq")
	name := r.str("token name")
	if r.err != nil {
		return token.Token{}
	}
	if k < token.None || k > token.Custom {
		r.err = corruptf("unknown token kind %d", k)
		return token.Token{}
	}
	if k != token.Custom && name != "" {
		r.err = corruptf("token kind %v carries a name", k)
		return token.Token{}
	}
	return token.Token{Kind: k, Seq: seq, Name: name}
}

// DecodeToken decodes a standalone control-token payload.
func DecodeToken(b []byte) (token.Token, error) {
	r := &reader{b: b}
	t := decodeToken(r)
	if err := r.finish(); err != nil {
		return token.Token{}, err
	}
	return t, nil
}

// Item is the wire form of one in-band channel item: a data window or
// a control token, mirroring graph.Item. The session plane today moves
// whole frames (Feed) and grouped results (Result); Item is the unit
// the partition plane's EdgeFrame transports.
type Item struct {
	IsToken bool
	Win     frame.Window
	Tok     token.Token
	// B is the row-batch descriptor (protocol v6). The zero value means
	// a plain single-window item.
	B Batch
}

// Batch mirrors graph.Batch on the wire: the carried window packs N
// logical Bw-wide windows, each starting Sx element columns after the
// previous one.
type Batch struct {
	N, Sx, Bw int32
}

// IsBatch reports whether the descriptor packs more than one window.
func (b Batch) IsBatch() bool { return b.N > 1 }

// spanW is the window width a batch of this shape must occupy.
func (b Batch) spanW() int { return int(b.N-1)*int(b.Sx) + int(b.Bw) }

// AppendItem appends an item: u8 tag (0 data, 1 token, 2 batched data)
// and the body.
func AppendItem(b []byte, it Item) []byte {
	if it.IsToken {
		b = append(b, 1)
		return AppendToken(b, it.Tok)
	}
	if it.B.IsBatch() {
		b = append(b, 2)
		b = appendU32(b, uint32(it.B.N))
		b = appendU32(b, uint32(it.B.Sx))
		b = appendU32(b, uint32(it.B.Bw))
		return AppendWindow(b, it.Win)
	}
	b = append(b, 0)
	return AppendWindow(b, it.Win)
}

// DecodeItem decodes a standalone item payload. Data windows come from
// the frame arena; the caller owns one reference.
func DecodeItem(b []byte) (Item, error) {
	r := &reader{b: b}
	it := decodeItem(r)
	if err := r.finish(); err != nil {
		if !it.IsToken {
			it.Win.Release()
		}
		return Item{}, err
	}
	return it, nil
}

func decodeItem(r *reader) Item {
	switch tag := r.u8("item tag"); tag {
	case 0:
		return Item{Win: decodeWindow(r)}
	case 1:
		return Item{IsToken: true, Tok: decodeToken(r)}
	case 2:
		b := Batch{
			N:  int32(r.u32("batch n")),
			Sx: int32(r.u32("batch sx")),
			Bw: int32(r.u32("batch bw")),
		}
		if r.err == nil {
			if b.N < 2 || int64(b.N) > maxWins {
				r.err = corruptf("batch of %d windows", b.N)
				return Item{}
			}
			if b.Sx < 1 || b.Bw < 1 || int64(b.Sx) > maxDim || int64(b.Bw) > maxDim {
				r.err = corruptf("batch geometry %dx step %d", b.Bw, b.Sx)
				return Item{}
			}
		}
		w := decodeWindow(r)
		if r.err == nil && w.W != b.spanW() {
			w.Release()
			r.err = corruptf("batch of %d %d-wide windows step %d needs a %d-wide window, got %dx%d",
				b.N, b.Bw, b.Sx, b.spanW(), w.W, w.H)
			return Item{}
		}
		return Item{Win: w, B: b}
	default:
		r.err = corruptf("unknown item tag %d", tag)
		return Item{}
	}
}

// releaseWindows returns decoded windows to the arena on a failed
// decode, so corrupt frames cannot leak pool references.
func releaseWindows(ws []NamedWindow) {
	for _, nw := range ws {
		nw.Win.Release()
	}
}
