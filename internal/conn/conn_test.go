package conn

import "testing"

func TestScheduleRoundTrip(t *testing.T) {
	for _, s := range []Schedule{{1, 1}, {2, 1}, {3, 2}, {4, 5}, {7, 3}} {
		locals := make([]int64, s.Ways)
		for j := int64(0); j < int64(8*s.Cycle()); j++ {
			b := s.BranchOf(j)
			if b < 0 || b >= s.Ways {
				t.Fatalf("%+v: BranchOf(%d) = %d out of range", s, j, b)
			}
			if got := s.GlobalIndex(b, locals[b]); got != j {
				t.Fatalf("%+v: GlobalIndex(%d, %d) = %d, want %d", s, b, locals[b], got, j)
			}
			locals[b]++
		}
	}
}

func TestScheduleCounts(t *testing.T) {
	for _, tc := range []struct {
		s     Schedule
		total int64
		want  []int64
	}{
		{Schedule{2, 1}, 5, []int64{3, 2}},
		{Schedule{3, 2}, 12, []int64{4, 4, 4}},
		{Schedule{3, 2}, 7, []int64{3, 2, 2}},
		{Schedule{3, 2}, 9, []int64{4, 3, 2}},
		{Schedule{4, 1}, 0, []int64{0, 0, 0, 0}},
	} {
		got := tc.s.Counts(tc.total)
		if len(got) != len(tc.want) {
			t.Fatalf("%+v.Counts(%d) = %v, want %v", tc.s, tc.total, got, tc.want)
		}
		var sum int64
		for i := range got {
			sum += got[i]
			if got[i] != tc.want[i] {
				t.Errorf("%+v.Counts(%d) = %v, want %v", tc.s, tc.total, got, tc.want)
				break
			}
		}
		if sum != tc.total {
			t.Errorf("%+v.Counts(%d) sums to %d", tc.s, tc.total, sum)
		}
	}
}

func TestScheduleCountsMatchBranchOf(t *testing.T) {
	for _, s := range []Schedule{{2, 3}, {5, 2}, {3, 1}} {
		for total := int64(0); total < int64(4*s.Cycle()); total++ {
			counts := make([]int64, s.Ways)
			for j := int64(0); j < total; j++ {
				counts[s.BranchOf(j)]++
			}
			got := s.Counts(total)
			for b := range counts {
				if counts[b] != got[b] {
					t.Fatalf("%+v total %d: Counts = %v, enumeration = %v", s, total, got, counts)
				}
			}
		}
	}
}

func TestScheduleValidate(t *testing.T) {
	if err := (Schedule{2, 3}).Validate(); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	for _, s := range []Schedule{{0, 1}, {1, 0}, {MaxWays + 1, 1}, {1, MaxStride + 1}, {-1, 1}} {
		if err := s.Validate(); err == nil {
			t.Errorf("schedule %+v accepted, want error", s)
		}
	}
}

func TestDividesRow(t *testing.T) {
	s := Schedule{3, 2}
	if !s.DividesRow(48) || s.DividesRow(47) || s.DividesRow(0) {
		t.Errorf("DividesRow(48/47/0) = %v/%v/%v, want true/false/false",
			s.DividesRow(48), s.DividesRow(47), s.DividesRow(0))
	}
}

func TestFamilyString(t *testing.T) {
	for f, want := range map[Family]string{Broadcast: "broadcast", Scatter: "scatter", Gather: "gather", Share: "share"} {
		if f.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(f), f.String(), want)
		}
	}
}
