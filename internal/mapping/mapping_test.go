package mapping

import (
	"testing"

	"blockpar/internal/analysis"
	"blockpar/internal/apps"
	"blockpar/internal/core"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/machine"
)

func compiledImageApp(t *testing.T) (*graph.Graph, *analysis.Result) {
	t.Helper()
	app := apps.ImagePipeline("map-test", apps.ImageCfg{
		W: apps.SmallW, H: apps.SmallH,
		Rate: geom.F(apps.FastRate, int64(apps.SmallW*apps.SmallH)),
		Bins: 32,
	})
	c, err := core.Compile(app.Graph, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c.Graph, c.Analysis
}

func TestOneToOneAssignsEveryKernel(t *testing.T) {
	g, _ := compiledImageApp(t)
	a := OneToOne(g)
	kernels := 0
	for _, n := range g.Nodes() {
		if n.Kind == graph.KindInput || n.Kind == graph.KindOutput {
			if _, ok := a.PEOf[n]; ok {
				t.Errorf("IO node %q assigned a PE", n.Name())
			}
			continue
		}
		kernels++
		if _, ok := a.PEOf[n]; !ok {
			t.Errorf("kernel %q unassigned", n.Name())
		}
	}
	if a.NumPEs != kernels {
		t.Errorf("NumPEs = %d, want %d", a.NumPEs, kernels)
	}
	// All PE indices distinct.
	seen := make(map[int]bool)
	for _, pe := range a.PEOf {
		if seen[pe] {
			t.Fatal("1:1 mapping shares a PE")
		}
		seen[pe] = true
	}
}

// TestGreedyReducesPEs reproduces the §V result qualitatively: greedy
// multiplexing uses fewer PEs than 1:1 and raises estimated average
// utilization by well over the paper's 1.5x on this application.
func TestGreedyReducesPEs(t *testing.T) {
	g, r := compiledImageApp(t)
	m := machine.Embedded()
	one := OneToOne(g)
	gm, err := Greedy(g, r, m)
	if err != nil {
		t.Fatal(err)
	}
	if gm.NumPEs >= one.NumPEs {
		t.Fatalf("greedy PEs = %d, not fewer than 1:1's %d", gm.NumPEs, one.NumPEs)
	}
	u1 := EstimatedUtilization(g, r, m, one)
	u2 := EstimatedUtilization(g, r, m, gm)
	if u2 <= u1 {
		t.Fatalf("greedy utilization %.3f not above 1:1's %.3f", u2, u1)
	}
	t.Logf("PEs: %d -> %d, estimated utilization: %.2f -> %.2f (%.2fx)",
		one.NumPEs, gm.NumPEs, u1, u2, u2/u1)
}

func TestGreedyRespectsCapacity(t *testing.T) {
	g, r := compiledImageApp(t)
	m := machine.Embedded()
	gm, err := Greedy(g, r, m)
	if err != nil {
		t.Fatal(err)
	}
	for pe := 0; pe < gm.NumPEs; pe++ {
		var util float64
		var mem int64
		multi := 0
		for _, n := range gm.NodesOn(g, pe) {
			l := r.LoadOf(n, m)
			util += l.Utilization
			mem += l.MemWords
			multi++
		}
		if multi > 1 {
			if util > 1 {
				t.Errorf("PE %d multiplexed beyond capacity: %.2f", pe, util)
			}
			if mem > m.PE.MemWords {
				t.Errorf("PE %d memory over budget: %d > %d", pe, mem, m.PE.MemWords)
			}
		}
	}
}

func TestGreedyKeepsInputBuffersAlone(t *testing.T) {
	g, r := compiledImageApp(t)
	gm, err := Greedy(g, r, machine.Embedded())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Nodes() {
		if !n.NoMultiplex {
			continue
		}
		pe := gm.PEOf[n]
		if got := len(gm.NodesOn(g, pe)); got != 1 {
			t.Errorf("NoMultiplex node %q shares PE %d with %d nodes", n.Name(), pe, got-1)
		}
	}
}

func TestGreedyRejectsOverloadedKernel(t *testing.T) {
	// Without parallelization, the fast-rate conv exceeds one PE and
	// Greedy must refuse.
	app := apps.ImagePipeline("overload", apps.ImageCfg{
		W: apps.SmallW, H: apps.SmallH,
		Rate: geom.F(apps.FastRate, int64(apps.SmallW*apps.SmallH)),
		Bins: 32,
	})
	cfg := core.DefaultConfig()
	cfg.Parallelize = false
	c, err := core.Compile(app.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Greedy(c.Graph, c.Analysis, machine.Embedded()); err == nil {
		t.Fatal("greedy accepted an overloaded kernel")
	}
}

func TestAnnealImprovesPlacement(t *testing.T) {
	g, r := compiledImageApp(t)
	gm, err := Greedy(g, r, machine.Embedded())
	if err != nil {
		t.Fatal(err)
	}
	// Identity placement cost vs annealed.
	side := 1
	for side*side < gm.NumPEs {
		side++
	}
	ident := &Placement{GridW: side, GridH: side, At: make([]int, gm.NumPEs)}
	for i := range ident.At {
		ident.At[i] = i
	}
	before := CommCost(g, gm, ident)
	placed := Anneal(g, gm, 42)
	after := CommCost(g, gm, placed)
	if after > before {
		t.Errorf("annealing worsened placement: %.0f -> %.0f", before, after)
	}
	t.Logf("comm cost: %.0f -> %.0f", before, after)
	// Placement must be a permutation of slots.
	seen := make(map[int]bool)
	for _, slot := range placed.At {
		if seen[slot] {
			t.Fatal("duplicate grid slot")
		}
		seen[slot] = true
	}
}

func TestAnnealDeterministic(t *testing.T) {
	g, r := compiledImageApp(t)
	gm, err := Greedy(g, r, machine.Embedded())
	if err != nil {
		t.Fatal(err)
	}
	a := Anneal(g, gm, 7)
	b := Anneal(g, gm, 7)
	for i := range a.At {
		if a.At[i] != b.At[i] {
			t.Fatal("annealing not deterministic for equal seeds")
		}
	}
}
