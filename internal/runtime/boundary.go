package runtime

import (
	"blockpar/internal/graph"
)

// Boundary shims splice a partition of a compiled graph back into a
// whole: when a placement plan cuts an edge between two workers, the
// producing side gains a BoundarySink draining the item stream to the
// transport and the consuming side gains a BoundarySource injecting
// it, so each partition runs as an ordinary session with no other
// runtime changes. The shims are transport-agnostic — the cluster
// layer supplies the callbacks and owns credits, batching, and
// end-of-stream signalling.

// BoundarySource is the Runner behavior of a cut edge's consuming
// endpoint (graph.KindBoundary, one output "out"): it pulls the
// inbound item stream from the transport and forwards it downstream in
// order, preserving data windows and control tokens alike.
type BoundarySource struct {
	// Pull blocks for the next inbound item; ok is false at
	// end-of-stream or transport abort. Ownership of a data window
	// transfers to the caller.
	Pull func() (graph.Item, bool)
	// Ack, if non-nil, is called after each item has been handed to the
	// partition (the credit-grant hook).
	Ack func()
}

// Clone returns the shim itself: shims are installed per-session on an
// already-cloned graph, never on the shared template.
func (b *BoundarySource) Clone() graph.Behavior { return b }

// Run forwards the inbound stream until it ends.
func (b *BoundarySource) Run(ctx graph.RunContext) error {
	for {
		it, ok := b.Pull()
		if !ok {
			return nil
		}
		ctx.Send("out", it)
		if b.Ack != nil {
			b.Ack()
		}
	}
}

// BoundarySink is the Runner behavior of a cut edge's producing
// endpoint (graph.KindBoundary, one input "in"): it drains the item
// stream headed across the cut into the transport.
type BoundarySink struct {
	// Push hands one item to the transport. It may block for credit
	// backpressure; on transport abort it must release the item and
	// return, so the partition can keep draining. Ownership of a data
	// window transfers to the transport.
	Push func(graph.Item)
	// Close, if non-nil, signals end-of-stream after the last item.
	Close func()
}

// Clone returns the shim itself (see BoundarySource.Clone).
func (b *BoundarySink) Clone() graph.Behavior { return b }

// AcceptsBatch implements graph.BatchAware: since wire protocol v6 a
// row batch crosses the cut as one item carrying its descriptor, so the
// producing partition never unbatches at the boundary.
func (b *BoundarySink) AcceptsBatch(input string) bool { return true }

// Run drains the edge until the upstream ends.
func (b *BoundarySink) Run(ctx graph.RunContext) error {
	defer func() {
		if b.Close != nil {
			b.Close()
		}
	}()
	for {
		it, ok := ctx.Recv("in")
		if !ok {
			return nil
		}
		b.Push(it)
	}
}
