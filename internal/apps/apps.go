// Package apps builds the paper's benchmark applications (Figure 13):
//
//	1 / 1F   Bayer demosaicing at baseline and faster input rates
//	2 / 2F   Image histogram at baseline and faster input rates
//	3        Parallel buffer test
//	4        Multiple convolutions test
//	SS SF BS BF  The running image-processing example (Figure 1(b)) at
//	             small/big input sizes and slow/fast input rates
//	5        The Figure 1(b) application at its baseline configuration
//
// Every App carries deterministic input generators and a golden
// function computing the expected per-frame outputs with the sequential
// reference implementations, so any compiled/transformed variant can be
// verified bit-exactly.
package apps

import (
	"fmt"

	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
)

// App is a benchmark application: the programmer-level graph (no
// compiler kernels), its input generators, and its golden outputs.
type App struct {
	Name  string
	Graph *graph.Graph
	// Sources maps input node names to generators.
	Sources map[string]frame.Generator
	// Golden returns, per output node, the expected data windows of
	// frame seq (in stream order).
	Golden func(seq int64) map[string][]frame.Window
}

// fixedWin adapts a constant window to a Generator.
func fixedWin(w frame.Window) frame.Generator {
	return func(seq int64, fw, fh int) frame.Window {
		return w.Clone()
	}
}

// splitQuads slices a full plane into the 2×2 quad windows the Bayer
// kernel emits, in scan order.
func splitQuads(plane frame.Window) []frame.Window {
	var out []frame.Window
	for y := 0; y+2 <= plane.H; y += 2 {
		for x := 0; x+2 <= plane.W; x += 2 {
			out = append(out, plane.Sub(x, y, 2, 2))
		}
	}
	return out
}

// scalarsOf slices a plane into 1×1 windows in scan order.
func scalarsOf(plane frame.Window) []frame.Window {
	out := make([]frame.Window, 0, plane.W*plane.H)
	for y := 0; y < plane.H; y++ {
		for x := 0; x < plane.W; x++ {
			out = append(out, frame.Scalar(plane.At(x, y)))
		}
	}
	return out
}

// ImageCoeff returns the 5×5 convolution coefficients of the image
// pipeline: a deterministic pseudo-random window normalized so the
// filtered values stay within the histogram's bin range.
func ImageCoeff() frame.Window {
	c := frame.LCG(7, 5, 5)
	for i := range c.Pix {
		c.Pix[i] /= 256
	}
	return c
}

// ImageEdges returns the image pipeline's histogram bin edges, sized to
// spread the median-minus-convolution differences across many bins so
// functional verification is value-sensitive.
func ImageEdges(bins int) []float64 {
	return frame.UniformBins(bins, -6400, 320)
}

// ImageCfg parameterizes the Figure 1(b) image-processing example.
type ImageCfg struct {
	W, H int
	// Rate is the input frame rate in Hz (use geom.F(samples, W*H) to
	// specify a sample rate, as the paper's inputs do).
	Rate geom.Frac
	Bins int
}

// ImagePipeline builds the paper's running example (Figure 1(b)): a
// 3×3 median and a 5×5 convolution over the same input, per-pixel
// subtraction, and a histogram whose serial merge is limited by a data
// dependency edge from the input. The golden output assumes the Trim
// alignment policy (the Figure 3 inset).
func ImagePipeline(name string, cfg ImageCfg) *App {
	if cfg.Bins <= 0 {
		cfg.Bins = 32
	}
	coeff := ImageCoeff()
	edges := ImageEdges(cfg.Bins)
	edgeWin := frame.NewWindow(cfg.Bins, 1)
	copy(edgeWin.Pix, edges)

	g := graph.New(name)
	in := g.AddInput("Input", geom.Sz(cfg.W, cfg.H), geom.Sz(1, 1), cfg.Rate)
	coeffIn := g.AddInput("5x5 Coeff", geom.Sz(5, 5), geom.Sz(5, 5), cfg.Rate)
	binsIn := g.AddInput("Hist Bins", geom.Sz(cfg.Bins, 1), geom.Sz(cfg.Bins, 1), cfg.Rate)

	med := g.Add(kernel.Median("3x3 Median", 3))
	conv := g.Add(kernel.Convolution("5x5 Conv", 5))
	sub := g.Add(kernel.Subtract("Subtract"))
	hist := g.Add(kernel.Histogram("Histogram", cfg.Bins))
	merge := g.Add(kernel.Merge("Merge", cfg.Bins))
	out := g.AddOutput("result", geom.Sz(cfg.Bins, 1))

	g.Connect(in, "out", med, "in")
	g.Connect(in, "out", conv, "in")
	g.Connect(coeffIn, "out", conv, "coeff")
	g.Connect(med, "out", sub, "in0")
	g.Connect(conv, "out", sub, "in1")
	g.Connect(sub, "out", hist, "in")
	g.Connect(binsIn, "out", hist, "bins")
	g.Connect(hist, "out", merge, "in")
	g.Connect(merge, "out", out, "in")
	g.AddDep(in, merge)

	return &App{
		Name:  name,
		Graph: g,
		Sources: map[string]frame.Generator{
			"Input":     frame.LCG,
			"5x5 Coeff": fixedWin(coeff),
			"Hist Bins": fixedWin(edgeWin),
		},
		Golden: func(seq int64) map[string][]frame.Window {
			img := frame.LCG(seq, cfg.W, cfg.H)
			medOut := frame.Trim(frame.Median(img, 3), 1, 1, 1, 1)
			convOut := frame.Convolve(img, coeff)
			diff := frame.Subtract(medOut, convOut)
			counts := frame.Histogram(diff, edges)
			w := frame.NewWindow(cfg.Bins, 1)
			copy(w.Pix, counts)
			return map[string][]frame.Window{"result": {w}}
		},
	}
}

// BayerCfg parameterizes the demosaicing benchmark.
type BayerCfg struct {
	W, H int
	Rate geom.Frac
}

// Bayer builds benchmark 1/1F: RGGB demosaicing with three output
// planes.
func Bayer(name string, cfg BayerCfg) *App {
	if cfg.W%2 != 0 || cfg.H%2 != 0 {
		panic("apps: Bayer frame dimensions must be even")
	}
	g := graph.New(name)
	in := g.AddInput("Input", geom.Sz(cfg.W, cfg.H), geom.Sz(1, 1), cfg.Rate)
	bay := g.Add(kernel.BayerDemosaic("Demosaic"))
	outR := g.AddOutput("R", geom.Sz(2, 2))
	outG := g.AddOutput("G", geom.Sz(2, 2))
	outB := g.AddOutput("B", geom.Sz(2, 2))
	g.Connect(in, "out", bay, "in")
	g.Connect(bay, "r", outR, "in")
	g.Connect(bay, "g", outG, "in")
	g.Connect(bay, "b", outB, "in")

	return &App{
		Name:    name,
		Graph:   g,
		Sources: map[string]frame.Generator{"Input": frame.Bayer},
		Golden: func(seq int64) map[string][]frame.Window {
			img := frame.Bayer(seq, cfg.W, cfg.H)
			r, gg, b := frame.BayerDemosaic(img)
			return map[string][]frame.Window{
				"R": splitQuads(r), "G": splitQuads(gg), "B": splitQuads(b),
			}
		},
	}
}

// HistCfg parameterizes the histogram benchmark.
type HistCfg struct {
	W, H int
	Rate geom.Frac
	Bins int
}

// HistogramApp builds benchmark 2/2F: a whole-image histogram with a
// serial merge.
func HistogramApp(name string, cfg HistCfg) *App {
	if cfg.Bins <= 0 {
		cfg.Bins = 32
	}
	edges := frame.UniformBins(cfg.Bins, 0, 256)
	edgeWin := frame.NewWindow(cfg.Bins, 1)
	copy(edgeWin.Pix, edges)

	g := graph.New(name)
	in := g.AddInput("Input", geom.Sz(cfg.W, cfg.H), geom.Sz(1, 1), cfg.Rate)
	binsIn := g.AddInput("Hist Bins", geom.Sz(cfg.Bins, 1), geom.Sz(cfg.Bins, 1), cfg.Rate)
	hist := g.Add(kernel.Histogram("Histogram", cfg.Bins))
	merge := g.Add(kernel.Merge("Merge", cfg.Bins))
	out := g.AddOutput("result", geom.Sz(cfg.Bins, 1))
	g.Connect(in, "out", hist, "in")
	g.Connect(binsIn, "out", hist, "bins")
	g.Connect(hist, "out", merge, "in")
	g.Connect(merge, "out", out, "in")
	g.AddDep(in, merge)

	return &App{
		Name:  name,
		Graph: g,
		Sources: map[string]frame.Generator{
			"Input":     frame.LCG,
			"Hist Bins": fixedWin(edgeWin),
		},
		Golden: func(seq int64) map[string][]frame.Window {
			counts := frame.Histogram(frame.LCG(seq, cfg.W, cfg.H), edges)
			w := frame.NewWindow(cfg.Bins, 1)
			copy(w.Pix, counts)
			return map[string][]frame.Window{"result": {w}}
		},
	}
}

// BufferCfg parameterizes the parallel buffer test.
type BufferCfg struct {
	W, H int
	Rate geom.Frac
}

// ParallelBufferTest builds benchmark 3: a wide frame through a cheap
// 3×3 convolution — the compute is trivial, but the line buffer exceeds
// one PE's storage and must be split column-wise (Figure 10).
func ParallelBufferTest(name string, cfg BufferCfg) *App {
	coeff := frame.LCG(11, 3, 3)
	g := graph.New(name)
	in := g.AddInput("Input", geom.Sz(cfg.W, cfg.H), geom.Sz(1, 1), cfg.Rate)
	coeffIn := g.AddInput("3x3 Coeff", geom.Sz(3, 3), geom.Sz(3, 3), cfg.Rate)
	conv := g.Add(kernel.Convolution("3x3 Conv", 3))
	out := g.AddOutput("result", geom.Sz(1, 1))
	g.Connect(in, "out", conv, "in")
	g.Connect(coeffIn, "out", conv, "coeff")
	g.Connect(conv, "out", out, "in")

	return &App{
		Name:  name,
		Graph: g,
		Sources: map[string]frame.Generator{
			"Input":     frame.Gradient,
			"3x3 Coeff": fixedWin(coeff),
		},
		Golden: func(seq int64) map[string][]frame.Window {
			img := frame.Gradient(seq, cfg.W, cfg.H)
			return map[string][]frame.Window{"result": scalarsOf(frame.Convolve(img, coeff))}
		},
	}
}

// MultiConvCfg parameterizes the convolution chain.
type MultiConvCfg struct {
	W, H int
	Rate geom.Frac
	// Sizes are the kernel sizes in pipeline order (default 3, 5).
	Sizes []int
}

// MultiConv builds benchmark 4: a pipeline of convolutions, each with
// its own coefficients, exercising repeated buffering and pipeline
// parallelism.
func MultiConv(name string, cfg MultiConvCfg) *App {
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = []int{3, 5}
	}
	coeffs := make([]frame.Window, len(cfg.Sizes))
	for i, k := range cfg.Sizes {
		coeffs[i] = frame.LCG(int64(20+i), k, k)
		// Normalize so magnitudes stay reasonable along the chain.
		for j := range coeffs[i].Pix {
			coeffs[i].Pix[j] /= 256
		}
	}

	g := graph.New(name)
	in := g.AddInput("Input", geom.Sz(cfg.W, cfg.H), geom.Sz(1, 1), cfg.Rate)
	srcs := map[string]frame.Generator{"Input": frame.LCG}
	prev, prevPort := in, "out"
	for i, k := range cfg.Sizes {
		convName := fmt.Sprintf("%dx%d Conv", k, k)
		if g.Node(convName) != nil {
			convName = fmt.Sprintf("%s#%d", convName, i)
		}
		conv := g.Add(kernel.Convolution(convName, k))
		coeffName := fmt.Sprintf("Coeff%d", i)
		coeffIn := g.AddInput(coeffName, geom.Sz(k, k), geom.Sz(k, k), cfg.Rate)
		srcs[coeffName] = fixedWin(coeffs[i])
		g.Connect(prev, prevPort, conv, "in")
		g.Connect(coeffIn, "out", conv, "coeff")
		prev, prevPort = conv, "out"
	}
	out := g.AddOutput("result", geom.Sz(1, 1))
	g.Connect(prev, prevPort, out, "in")

	return &App{
		Name:    name,
		Graph:   g,
		Sources: srcs,
		Golden: func(seq int64) map[string][]frame.Window {
			img := frame.LCG(seq, cfg.W, cfg.H)
			for _, c := range coeffs {
				img = frame.Convolve(img, c)
			}
			return map[string][]frame.Window{"result": scalarsOf(img)}
		},
	}
}
