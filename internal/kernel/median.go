package kernel

import (
	"fmt"
	"sort"

	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
)

// Median builds a k×k median filter kernel: windowed input "in",
// 1×1 output "out".
func Median(name string, k int) *graph.Node {
	if k < 1 || k%2 == 0 {
		panic(fmt.Sprintf("kernel: median size %d must be odd and positive", k))
	}
	n := graph.NewNode(name, graph.KindKernel)
	half := int64(k / 2)
	n.CreateInput("in", geom.Sz(k, k), geom.St(1, 1), geom.Off(half, half))
	n.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	n.RegisterMethod("runMedian", int64(methodOverhead+medianPerElem*k*k), int64(k*k))
	n.RegisterMethodInput("runMedian", "in")
	n.RegisterMethodOutput("runMedian", "out")
	n.Attrs["ktype"] = "median"
	n.Attrs["kparams"] = fmt.Sprintf("%d", k)
	n.Behavior = &medianBehavior{k: k}
	return n
}

type medianBehavior struct {
	k   int
	buf []float64
}

func (b *medianBehavior) Clone() graph.Behavior { return &medianBehavior{k: b.k} }

func (b *medianBehavior) Invoke(method string, ctx graph.ExecContext) error {
	if method != "runMedian" {
		return fmt.Errorf("kernel: median has no method %q", method)
	}
	in := ctx.Input("in")
	b.buf = b.buf[:0]
	for y := 0; y < in.H; y++ {
		b.buf = append(b.buf, in.Row(y)...)
	}
	sort.Float64s(b.buf)
	ctx.Emit("out", frame.PooledScalar(b.buf[len(b.buf)/2]))
	return nil
}

// Subtract builds the per-pixel difference kernel of Figure 1: two 1×1
// inputs "in0", "in1" triggering one method, and output out = in0-in1.
func Subtract(name string) *graph.Node {
	n := graph.NewNode(name, graph.KindKernel)
	n.CreateInput("in0", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	n.CreateInput("in1", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	n.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	n.RegisterMethod("subtract", subtractCycles, 1)
	n.RegisterMethodInput("subtract", "in0")
	n.RegisterMethodInput("subtract", "in1")
	n.RegisterMethodOutput("subtract", "out")
	n.Attrs["ktype"] = "subtract"
	n.Behavior = subtractBehavior{}
	return n
}

type subtractBehavior struct{}

func (subtractBehavior) Clone() graph.Behavior { return subtractBehavior{} }

func (subtractBehavior) Invoke(method string, ctx graph.ExecContext) error {
	if method != "subtract" {
		return fmt.Errorf("kernel: subtract has no method %q", method)
	}
	ctx.Emit("out", frame.PooledScalar(ctx.Input("in0").Value()-ctx.Input("in1").Value()))
	return nil
}

// Gain builds a 1×1 scale-by-constant kernel, the simplest possible
// data-parallel kernel; used by tests and the quickstart example.
func Gain(name string, factor float64) *graph.Node {
	n := graph.NewNode(name, graph.KindKernel)
	n.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	n.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	n.RegisterMethod("runGain", gainCycles, 1)
	n.RegisterMethodInput("runGain", "in")
	n.RegisterMethodOutput("runGain", "out")
	n.Attrs["ktype"] = "gain"
	n.Attrs["kparams"] = fmt.Sprintf("%g", factor)
	n.Behavior = gainBehavior{factor: factor}
	return n
}

type gainBehavior struct{ factor float64 }

func (b gainBehavior) Clone() graph.Behavior { return b }

func (b gainBehavior) Invoke(method string, ctx graph.ExecContext) error {
	if method != "runGain" {
		return fmt.Errorf("kernel: gain has no method %q", method)
	}
	ctx.Emit("out", frame.PooledScalar(ctx.Input("in").Value()*b.factor))
	return nil
}

// Downsample builds a k×k decimation kernel keeping the top-left sample
// of each block. Its offset is fractional for even k, exercising the
// paper's fractional-offset parameterization (§II-A footnote 2).
func Downsample(name string, k int) *graph.Node {
	if k < 1 {
		panic("kernel: downsample factor must be positive")
	}
	n := graph.NewNode(name, graph.KindKernel)
	off := geom.OffF(geom.F(int64(k-1), 2), geom.F(int64(k-1), 2))
	n.CreateInput("in", geom.Sz(k, k), geom.St(k, k), off)
	n.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	n.RegisterMethod("runDownsample", gainCycles, int64(k*k))
	n.RegisterMethodInput("runDownsample", "in")
	n.RegisterMethodOutput("runDownsample", "out")
	n.Attrs["ktype"] = "downsample"
	n.Attrs["kparams"] = fmt.Sprintf("%d", k)
	n.Behavior = downsampleBehavior{}
	return n
}

type downsampleBehavior struct{}

func (downsampleBehavior) Clone() graph.Behavior { return downsampleBehavior{} }

func (downsampleBehavior) Invoke(method string, ctx graph.ExecContext) error {
	if method != "runDownsample" {
		return fmt.Errorf("kernel: downsample has no method %q", method)
	}
	ctx.Emit("out", frame.PooledScalar(ctx.Input("in").At(0, 0)))
	return nil
}
