package kernel

import (
	"fmt"

	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/token"
)

// SplitRR builds the round-robin split kernel the parallelizer inserts
// in front of data-parallel kernel instances (paper §IV-A): data items
// are distributed out0, out1, ... in round-robin order; control tokens
// are broadcast to every branch so each instance keeps a consistent
// view of line/frame structure.
func SplitRR(name string, n int, item geom.Size) *graph.Node {
	if n < 1 {
		panic("kernel: split needs at least one branch")
	}
	node := graph.NewNode(name, graph.KindSplit)
	node.CreateInput("in", item, geom.St(item.W, item.H), geom.Off(0, 0))
	m := node.RegisterMethod("split", fsmPerItem, 2)
	node.RegisterMethodInput("split", "in")
	for i := 0; i < n; i++ {
		out := fmt.Sprintf("out%d", i)
		node.CreateOutput(out, item, geom.St(item.W, item.H))
		node.RegisterMethodOutput("split", out)
	}
	_ = m
	node.Behavior = &splitRRBehavior{n: n}
	return node
}

// indexedNames builds the "prefix0".."prefixN-1" port-name table once,
// so Run loops address branches without a fmt.Sprintf per item.
func indexedNames(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	return out
}

type splitRRBehavior struct {
	n    int
	next int
	outs []string
}

func (b *splitRRBehavior) Clone() graph.Behavior { return &splitRRBehavior{n: b.n} }

func (b *splitRRBehavior) Run(ctx graph.RunContext) error {
	if b.outs == nil {
		b.outs = indexedNames("out", b.n)
	}
	for {
		it, ok := ctx.Recv("in")
		if !ok {
			return nil
		}
		if it.IsToken {
			for i := 0; i < b.n; i++ {
				ctx.Send(b.outs[i], it)
			}
			continue
		}
		ctx.Send(b.outs[b.next], it)
		b.next = (b.next + 1) % b.n
	}
}

// JoinRR builds the matching round-robin join kernel: data is collected
// in0, in1, ... in round-robin order, restoring the original stream
// order; a control token is forwarded once after it has been received
// on every branch (the broadcast copies from SplitRR all sit at the
// same stream position, so the collection point is unambiguous).
func JoinRR(name string, n int, item geom.Size) *graph.Node {
	if n < 1 {
		panic("kernel: join needs at least one branch")
	}
	node := graph.NewNode(name, graph.KindJoin)
	node.CreateOutput("out", item, geom.St(item.W, item.H))
	node.RegisterMethod("join", fsmPerItem, 2)
	node.RegisterMethodOutput("join", "out")
	for i := 0; i < n; i++ {
		in := fmt.Sprintf("in%d", i)
		node.CreateInput(in, item, geom.St(item.W, item.H), geom.Off(0, 0))
		node.RegisterMethodInput("join", in)
	}
	node.Behavior = &joinRRBehavior{n: n}
	return node
}

type joinRRBehavior struct {
	n    int
	next int
	ins  []string
}

func (b *joinRRBehavior) Clone() graph.Behavior { return &joinRRBehavior{n: b.n} }

func (b *joinRRBehavior) Run(ctx graph.RunContext) error {
	if b.ins == nil {
		b.ins = indexedNames("in", b.n)
	}
	for {
		it, ok := ctx.Recv(b.ins[b.next])
		if !ok {
			return nil
		}
		if !it.IsToken {
			ctx.Send("out", it)
			b.next = (b.next + 1) % b.n
			continue
		}
		// A token at the head of the current branch: every other
		// branch's next item must be the same token (split broadcast
		// them at one stream position). Collect and forward once.
		for i := 0; i < b.n; i++ {
			if i == b.next {
				continue
			}
			other, ok := ctx.Recv(b.ins[i])
			if !ok {
				return fmt.Errorf("kernel: join %q branch %d closed mid-token", ctx.Node().Name(), i)
			}
			if !other.IsToken || other.Tok != it.Tok {
				return fmt.Errorf("kernel: join %q token skew: branch %d has %v, expected %v",
					ctx.Node().Name(), i, other, it.Tok)
			}
		}
		ctx.Send("out", it)
	}
}

// Replicate builds the broadcast kernel used for replicated inputs
// (paper Figure 4): every item, data or token, is copied to every
// branch so all parallel instances receive identical configuration
// streams (e.g. convolution coefficients).
func Replicate(name string, n int, item geom.Size) *graph.Node {
	if n < 1 {
		panic("kernel: replicate needs at least one branch")
	}
	node := graph.NewNode(name, graph.KindReplicate)
	node.CreateInput("in", item, geom.St(item.W, item.H), geom.Off(0, 0))
	node.RegisterMethod("replicate", fsmPerItem, 2)
	node.RegisterMethodInput("replicate", "in")
	for i := 0; i < n; i++ {
		out := fmt.Sprintf("out%d", i)
		node.CreateOutput(out, item, geom.St(item.W, item.H))
		node.RegisterMethodOutput("replicate", out)
	}
	node.Behavior = &replicateBehavior{n: n}
	return node
}

type replicateBehavior struct {
	n    int
	outs []string
}

func (b *replicateBehavior) Clone() graph.Behavior { return &replicateBehavior{n: b.n} }

func (b *replicateBehavior) Run(ctx graph.RunContext) error {
	if b.outs == nil {
		b.outs = indexedNames("out", b.n)
	}
	for {
		it, ok := ctx.Recv("in")
		if !ok {
			return nil
		}
		if !it.IsToken {
			// n branches consume the same item; the held reference
			// covers the first.
			it.Win.Retain(b.n - 1)
		}
		for i := 0; i < b.n; i++ {
			ctx.Send(b.outs[i], it)
		}
	}
}

// SplitColumns builds the column-range split kernel used when buffers
// are parallelized (paper §IV-C, Figure 10): each incoming sample of a
// row goes to every stripe whose input column range contains it, so the
// overlap columns are replicated to both neighbors. End-of-line and
// end-of-frame tokens are broadcast.
func SplitColumns(name string, stripes []Stripe, dataW int) *graph.Node {
	if len(stripes) < 1 {
		panic("kernel: column split needs stripes")
	}
	node := graph.NewNode(name, graph.KindSplit)
	node.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	node.RegisterMethod("split", fsmPerItem, 4)
	node.RegisterMethodInput("split", "in")
	for i := range stripes {
		out := fmt.Sprintf("out%d", i)
		node.CreateOutput(out, geom.Sz(1, 1), geom.St(1, 1))
		node.RegisterMethodOutput("split", out)
	}
	node.Attrs["label"] = fmt.Sprintf("columns x%d", len(stripes))
	node.Behavior = &splitColumnsBehavior{stripes: stripes, dataW: dataW}
	return node
}

type splitColumnsBehavior struct {
	stripes []Stripe
	dataW   int
	x       int
	outs    []string
}

func (b *splitColumnsBehavior) Clone() graph.Behavior {
	return &splitColumnsBehavior{stripes: b.stripes, dataW: b.dataW}
}

// AcceptsBatch implements graph.BatchAware: sample rows arrive whole
// and each stripe receives its column range as one sub-span view.
func (b *splitColumnsBehavior) AcceptsBatch(input string) bool { return input == "in" }

func (b *splitColumnsBehavior) Run(ctx graph.RunContext) error {
	if b.outs == nil {
		b.outs = indexedNames("out", len(b.stripes))
	}
	for {
		it, ok := ctx.Recv("in")
		if !ok {
			return nil
		}
		if it.IsToken {
			switch it.Tok.Kind {
			case token.EndOfLine:
				if b.x != b.dataW {
					return fmt.Errorf("kernel: column split %q EOL after %d of %d samples",
						ctx.Node().Name(), b.x, b.dataW)
				}
				b.x = 0
			case token.EndOfFrame:
				b.x = 0
			}
			for i := range b.stripes {
				ctx.Send(b.outs[i], it)
			}
			continue
		}
		// The item covers sample columns [b.x, b.x+n). Every stripe whose
		// input range overlaps gets the overlap as one view sharing the
		// item's storage; each such view is one consumer and the held
		// reference covers the first (or is dropped if no stripe overlaps,
		// e.g. a sample outside every range).
		n := it.BatchN()
		sent := 0
		for _, s := range b.stripes {
			if b.x < s.InEnd && b.x+n > s.InStart {
				sent++
			}
		}
		if sent == 0 {
			it.Win.Release()
			b.x += n
			continue
		}
		it.Win.Retain(sent - 1)
		for i, s := range b.stripes {
			lo, hi := max(b.x, s.InStart), min(b.x+n, s.InEnd)
			if lo >= hi {
				continue
			}
			if lo == b.x && hi == b.x+n {
				ctx.Send(b.outs[i], it)
				continue
			}
			sub := it.Win.View(lo-b.x, 0, hi-lo, it.Win.H)
			ctx.Send(b.outs[i], graph.BatchItem(sub, graph.Batch{
				N: int32(hi - lo), Sx: 1, Bw: 1,
			}))
		}
		b.x += n
	}
}

// SplitColumnsStripes exposes the stripe table of a SplitColumns node.
func SplitColumnsStripes(n *graph.Node) ([]Stripe, bool) {
	b, ok := n.Behavior.(*splitColumnsBehavior)
	if !ok {
		return nil, false
	}
	return b.stripes, true
}

// JoinColumns builds the join kernel matching SplitColumns after the
// per-stripe buffers (and any per-stripe compute): for each output row
// it drains stripe branches in order — counts[i] data items then that
// branch's end-of-line — emitting data in scan order with a single
// regenerated end-of-line; end-of-frame is forwarded once after all
// branches deliver it.
func JoinColumns(name string, counts []int, item geom.Size) *graph.Node {
	if len(counts) < 1 {
		panic("kernel: column join needs branch counts")
	}
	node := graph.NewNode(name, graph.KindJoin)
	node.CreateOutput("out", item, geom.St(item.W, item.H))
	node.RegisterMethod("join", fsmPerItem, 4)
	node.RegisterMethodOutput("join", "out")
	for i := range counts {
		in := fmt.Sprintf("in%d", i)
		node.CreateInput(in, item, geom.St(item.W, item.H), geom.Off(0, 0))
		node.RegisterMethodInput("join", in)
	}
	node.Attrs["label"] = fmt.Sprintf("columns x%d", len(counts))
	node.Behavior = &joinColumnsBehavior{counts: counts}
	return node
}

type joinColumnsBehavior struct {
	counts []int
	ins    []string
}

func (b *joinColumnsBehavior) Clone() graph.Behavior {
	return &joinColumnsBehavior{counts: b.counts}
}

// AcceptsBatch implements graph.BatchAware: a branch's row segment may
// arrive as one span, which is forwarded whole (the output row is the
// concatenation of the branch segments in branch order).
func (b *joinColumnsBehavior) AcceptsBatch(input string) bool { return true }

// JoinColumnsCounts exposes the per-branch per-row item counts.
func JoinColumnsCounts(n *graph.Node) ([]int, bool) {
	b, ok := n.Behavior.(*joinColumnsBehavior)
	if !ok {
		return nil, false
	}
	return b.counts, true
}

func (b *joinColumnsBehavior) Run(ctx graph.RunContext) error {
	if b.ins == nil {
		b.ins = indexedNames("in", len(b.counts))
	}
	name := func(i int) string { return b.ins[i] }
	var row int64
	for {
		// One output row: drain each branch's row segment in order.
		for i, want := range b.counts {
			got := 0
			for got < want {
				it, ok := ctx.Recv(name(i))
				if !ok {
					if i == 0 && got == 0 && row >= 0 {
						return nil // clean shutdown between rows
					}
					return fmt.Errorf("kernel: column join %q branch %d closed mid-row", ctx.Node().Name(), i)
				}
				if it.IsToken {
					if it.Tok.Kind == token.EndOfFrame && i == 0 && got == 0 {
						// Frame boundary instead of a new row: collect
						// EOF from the remaining branches and forward.
						for j := 1; j < len(b.counts); j++ {
							other, ok := ctx.Recv(name(j))
							if !ok || !other.IsToken || other.Tok.Kind != token.EndOfFrame {
								return fmt.Errorf("kernel: column join %q EOF skew on branch %d", ctx.Node().Name(), j)
							}
						}
						ctx.Send("out", it)
						row = 0
						// Restart the row loop for the next frame.
						got = -1
						break
					}
					return fmt.Errorf("kernel: column join %q unexpected %v on branch %d",
						ctx.Node().Name(), it, i)
				}
				if got+it.BatchN() > want {
					return fmt.Errorf("kernel: column join %q branch %d span of %d overruns row (%d of %d)",
						ctx.Node().Name(), i, it.BatchN(), got, want)
				}
				ctx.Send("out", it)
				got += it.BatchN()
			}
			if got == -1 {
				break
			}
			if got == want {
				// The branch's own end-of-line must follow.
				eol, ok := ctx.Recv(name(i))
				if !ok || !eol.IsToken || eol.Tok.Kind != token.EndOfLine {
					return fmt.Errorf("kernel: column join %q missing EOL on branch %d (got %v)",
						ctx.Node().Name(), i, eol)
				}
				if i == len(b.counts)-1 {
					ctx.Send("out", graph.TokenItem(token.EOL(row)))
					row++
				}
			}
		}
	}
}
