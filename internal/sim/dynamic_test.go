package sim

import (
	"testing"

	"blockpar/internal/analysis"
	"blockpar/internal/core"
	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
	"blockpar/internal/machine"
	"blockpar/internal/mapping"
	"blockpar/internal/runtime"
)

// motionApp builds Input(WxH) -> buffer -> MotionSearch -> Output.
func motionApp(w, h, k, searchRange int, rate geom.Frac) (*graph.Graph, *graph.Node) {
	g := graph.New("motion")
	in := g.AddInput("Input", geom.Sz(w, h), geom.Sz(1, 1), rate)
	ms := g.Add(kernel.MotionSearch("Motion", k, searchRange))
	out := g.AddOutput("MVs", geom.Sz(2, 1))
	g.Connect(in, "out", ms, "in")
	g.Connect(ms, "mv", out, "in")
	return g, ms
}

func TestDynamicMethodAllocatesBound(t *testing.T) {
	g, ms := motionApp(16, 16, 4, 8, geom.FInt(100))
	c, err := core.Compile(g, core.Config{Machine: machine.Embedded(), Parallelize: false})
	if err != nil {
		t.Fatal(err)
	}
	ni := c.Analysis.NodeInfoOf(findMotionInstance(c, ms))
	m := findMotionInstance(c, ms).Method("search")
	if !m.Dynamic() {
		t.Fatal("search not dynamic")
	}
	// 16 blocks per frame, each budgeted at the bound.
	wantFromBound := 16*m.Bound + 1*findMotionInstance(c, ms).Method("endFrame").Cycles
	if ni.CyclesPerFrame != wantFromBound {
		t.Errorf("cycles/frame = %d, want %d (budgeted at the bound)", ni.CyclesPerFrame, wantFromBound)
	}
	if m.AllocCycles() != m.Bound || m.AllocCycles() == m.Cycles {
		t.Errorf("AllocCycles = %d, bound %d, typical %d", m.AllocCycles(), m.Bound, m.Cycles)
	}
}

func findMotionInstance(c *core.Compiled, orig *graph.Node) *graph.Node {
	for _, n := range c.Graph.Nodes() {
		if n.Base == orig.Base {
			return n
		}
	}
	return orig
}

func TestDynamicCostsWithinBoundNoExceptions(t *testing.T) {
	g, _ := motionApp(16, 16, 4, 8, geom.FInt(50))
	c, err := core.Compile(g, core.Config{Machine: machine.Embedded(), Parallelize: true, BufferStriping: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(c.Graph, mapping.OneToOne(c.Graph), Options{Machine: machine.Embedded(), Frames: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalExceptions() != 0 {
		t.Errorf("default cost model within bound raised %d exceptions", res.TotalExceptions())
	}
	if !res.RealTimeMet() {
		t.Error("real time missed with worst-case allocation")
	}
}

func TestDynamicBoundViolationRaisesExceptions(t *testing.T) {
	g, ms := motionApp(16, 16, 4, 8, geom.FInt(50))
	// Misdeclare the cost model: every third block costs twice the
	// declared bound. The engine must truncate at the bound and record
	// a runtime resource exception per violation (paper §VII).
	bound := ms.Method("search").Bound
	ms.Costs["search"] = func(inv int64) int64 {
		if inv%3 == 2 {
			return 2 * bound
		}
		return bound / 2
	}
	c, err := core.Compile(g, core.Config{Machine: machine.Embedded(), Parallelize: false})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(c.Graph, mapping.OneToOne(c.Graph), Options{Machine: machine.Embedded(), Frames: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 16 blocks/frame * 2 frames / 3 -> 10 violations (invocations
	// 2,5,8,...,29).
	if got := res.TotalExceptions(); got != 10 {
		t.Errorf("exceptions = %d, want 10", got)
	}
	found := false
	for name, cnt := range res.Exceptions {
		if cnt > 0 {
			found = true
			if name != "Motion" && name != "Motion_0" {
				t.Errorf("exception attributed to %q", name)
			}
		}
	}
	if !found {
		t.Error("no per-node exception record")
	}
	// Truncation caps the work, so real time still holds.
	if !res.RealTimeMet() {
		t.Error("real time missed despite truncation")
	}
}

func TestStaticMethodsNeverRaiseExceptions(t *testing.T) {
	app := simpleGainApp(geom.FInt(100))
	res, err := Simulate(app, mapping.OneToOne(app), Options{Machine: machine.Embedded(), Frames: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalExceptions() != 0 {
		t.Errorf("static pipeline raised %d exceptions", res.TotalExceptions())
	}
}

// TestMotionSearchFunctional verifies the kernel's data path: motion
// vectors are emitted per block, iteration counts vary with the data,
// and the reference frame rolls over on end-of-frame.
func TestMotionSearchFunctional(t *testing.T) {
	const W, H, K = 16, 8, 4
	g, _ := motionApp(W, H, K, 8, geom.FInt(50))
	c, err := core.Compile(g, core.Config{Machine: machine.Embedded(), Parallelize: false})
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.Run(c.Graph, runtime.Options{
		Frames:  2,
		Sources: map[string]frame.Generator{"Input": frame.LCG},
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := res.FrameSlices("MVs")
	if len(frames) != 2 {
		t.Fatalf("frames = %d", len(frames))
	}
	blocks := (W / K) * (H / K)
	for f, mvs := range frames {
		if len(mvs) != blocks {
			t.Fatalf("frame %d: %d vectors, want %d", f, len(mvs), blocks)
		}
		for _, mv := range mvs {
			if mv.W != 2 || mv.H != 1 {
				t.Fatalf("vector shape %dx%d", mv.W, mv.H)
			}
			if iters := mv.At(1, 0); iters < 1 || iters > 8 {
				t.Errorf("iterations = %v outside [1,8]", iters)
			}
		}
	}
	// Frame 1 searches against frame 0 (non-zero reference), so at
	// least some offsets/iterations should differ from frame 0's.
	same := true
	for i := range frames[0] {
		if !frames[0][i].Equal(frames[1][i]) {
			same = false
		}
	}
	if same {
		t.Error("reference rollover had no effect on frame 1")
	}
}

// TestDynamicKernelParallelizes checks the extension composes with §IV:
// a motion search too expensive for one PE replicates, with the bound
// driving the degree.
func TestDynamicKernelParallelizes(t *testing.T) {
	// 64x32 @ high rate: blocks 16x8=128/frame; bound ~ 10+48*8=394;
	// plus IO ≈ 412 cycles * 128 = 52.7k/frame.
	g, _ := motionApp(64, 32, 4, 8, geom.F(2_000_000, 64*32))
	c, err := core.Compile(g, core.Config{Machine: machine.Embedded(), Parallelize: true, BufferStriping: true})
	if err != nil {
		t.Fatal(err)
	}
	deg := c.Report.Degrees["Motion"]
	if deg < 2 {
		t.Fatalf("motion degree = %d, want >= 2", deg)
	}
	// Still functionally... vectors per frame preserved.
	res, err := runtime.Run(c.Graph, runtime.Options{
		Frames:  1,
		Sources: map[string]frame.Generator{"Input": frame.LCG},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.DataWindows("MVs")); got != 128 {
		t.Errorf("vectors = %d, want 128", got)
	}
	// And the parallel version meets real time in simulation.
	sr, err := Simulate(c.Graph, mapping.OneToOne(c.Graph), Options{Machine: machine.Embedded(), Frames: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !sr.RealTimeMet() {
		t.Errorf("parallelized dynamic kernel missed real time: %d stalls", sr.InputStalls)
	}
}

func TestLoadAndDegreeHelpers(t *testing.T) {
	g, ms := motionApp(16, 16, 4, 8, geom.FInt(100))
	r, err := analysis.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	// Needs a buffer first, but load is still computable.
	if l := r.LoadOf(ms, machine.Embedded()); l.CyclesPerSec <= 0 {
		t.Error("no load computed for dynamic kernel")
	}
}
