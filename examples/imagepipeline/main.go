// Imagepipeline reproduces the paper's running example end to end
// (Figures 1–4 and 12): the non-linear image-analysis application with
// a 3×3 median, a 5×5 convolution, per-pixel subtraction, and a
// histogram whose serial merge is bounded by a data-dependency edge.
//
// The example builds the Figure 1(b) description with the public API,
// compiles it (automatic buffering, trim alignment, parallelization),
// verifies the transformed graph functionally against the sequential
// golden implementation, and compares the 1:1 and greedy mappings on
// the timing simulator.
package main

import (
	"fmt"
	"log"

	"blockpar"
)

const (
	width  = 32
	height = 24
	bins   = 32
	// samplesPerSec is the real-time input constraint: pixels arrive
	// at this rate regardless of frame size.
	samplesPerSec = 1_500_000
)

func buildApp() *blockpar.Graph {
	rate := blockpar.F(samplesPerSec, width*height)
	g := blockpar.NewApp("image-pipeline")

	in := g.AddInput("Input", blockpar.Sz(width, height), blockpar.Sz(1, 1), rate)
	coeff := g.AddInput("5x5 Coeff", blockpar.Sz(5, 5), blockpar.Sz(5, 5), rate)
	histBins := g.AddInput("Hist Bins", blockpar.Sz(bins, 1), blockpar.Sz(bins, 1), rate)

	med := g.Add(blockpar.Median("3x3 Median", 3))
	conv := g.Add(blockpar.Convolution("5x5 Conv", 5))
	sub := g.Add(blockpar.Subtract("Subtract"))
	hist := g.Add(blockpar.Histogram("Histogram", bins))
	merge := g.Add(blockpar.MergeKernel("Merge", bins))
	out := g.AddOutput("result", blockpar.Sz(bins, 1))

	g.Connect(in, "out", med, "in")
	g.Connect(in, "out", conv, "in")
	g.Connect(coeff, "out", conv, "coeff")
	g.Connect(med, "out", sub, "in0")
	g.Connect(conv, "out", sub, "in1")
	g.Connect(sub, "out", hist, "in")
	g.Connect(histBins, "out", hist, "bins")
	g.Connect(hist, "out", merge, "in")
	g.Connect(merge, "out", out, "in")

	// The histogram merge is serial: once per frame (Figure 1(b)).
	g.AddDep(in, merge)
	return g
}

func main() {
	g := buildApp()
	cfg := blockpar.DefaultConfig()
	compiled, err := blockpar.Compile(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %q: %d nodes, degrees %v\n\n",
		g.Name, len(compiled.Graph.Nodes()), compiled.Report.Degrees)

	// Functional verification against the sequential golden pipeline.
	// The coefficients are normalized so the filtered values spread
	// across the histogram's bins (a value-sensitive check).
	coeffs := blockpar.LCG(7, 5, 5)
	for i := range coeffs.Pix {
		coeffs.Pix[i] /= 256
	}
	edges := blockpar.UniformBins(bins, -6400, 320)
	edgeWin := blockpar.NewWindow(bins, 1)
	copy(edgeWin.Pix, edges)

	res, err := blockpar.Run(compiled.Graph, blockpar.RunOptions{
		Frames: 2,
		Sources: map[string]blockpar.Generator{
			"Input":     blockpar.LCG,
			"5x5 Coeff": blockpar.FixedWindow(coeffs),
			"Hist Bins": blockpar.FixedWindow(edgeWin),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for f, ws := range res.FrameSlices("result") {
		img := blockpar.LCG(int64(f), width, height)
		medOut := blockpar.GoldenMedian(img, 3)
		medOut = medOut.Sub(1, 1, medOut.W-2, medOut.H-2) // the compiler's inset
		diff := blockpar.GoldenSubtract(medOut, blockpar.GoldenConvolve(img, coeffs))
		want := blockpar.GoldenHistogram(diff, edges)
		for i := range want {
			if ws[0].At(i, 0) != want[i] {
				log.Fatalf("frame %d bin %d: got %v, want %v", f, i, ws[0].At(i, 0), want[i])
			}
		}
		fmt.Printf("frame %d histogram matches golden (%d bins, %v samples)\n",
			f, bins, (width-4)*(height-4))
	}

	// Timing: Figure 12's comparison of the two mappings.
	fmt.Println("\nmapping comparison (Figure 12):")
	one := blockpar.MapOneToOne(compiled.Graph)
	gm, err := blockpar.MapGreedy(compiled.Graph, compiled.Analysis, cfg.Machine)
	if err != nil {
		log.Fatal(err)
	}
	for _, mc := range []struct {
		name   string
		assign *blockpar.Assignment
	}{{"1:1", one}, {"greedy", gm}} {
		sr, err := blockpar.Simulate(compiled.Graph, mc.assign, blockpar.SimOptions{
			Machine: cfg.Machine, Frames: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		run, read, write := sr.Breakdown()
		fmt.Printf("  %-7s %3d PEs  util %5.1f%% (run %.1f%% read %.1f%% write %.1f%%)  real-time: %v\n",
			mc.name, mc.assign.NumPEs, 100*sr.MeanUtilization(),
			100*run, 100*read, 100*write, sr.RealTimeMet())
	}

	// Annealed placement (the paper's future-integration pass).
	placed := blockpar.Place(compiled.Graph, gm, 42)
	fmt.Printf("\nannealed placement on a %dx%d grid\n", placed.GridW, placed.GridH)
}
