// Package cluster is the multi-process execution layer: a bpserve
// frontend places streaming sessions on bpworker processes and proxies
// frames over TCP using the internal/wire codec, with credit-based
// backpressure mirroring the runtime's bounded frame queues.
//
// The two halves are Worker (this file) — owns a serve.Registry of
// compiled pipelines and executes sessions on behalf of remote
// frontends — and Dispatcher (dispatcher.go) — the frontend side,
// implementing serve.Backend with least-loaded placement, health
// checks, reconnection, and per-worker circuit breakers.
//
// Failure semantics: when a worker dies mid-stream the dispatcher
// fails its sessions over to surviving workers, replaying each
// session's feed history so outputs stay byte-identical and clients
// observe at-most-once delivery with no error. Sessions that cannot be
// recovered (no surviving capacity, replay budget exceeded, failover
// disabled) fail with a typed serve.ErrSessionLost naming the worker;
// the frontend keeps serving everything else, and the worker may
// rejoin at the same address. See docs/robustness.md.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"blockpar/internal/frame"
	"blockpar/internal/runtime"
	"blockpar/internal/serve"
	"blockpar/internal/wire"
)

// collectPoll is the worker collector's wake-up interval: how often a
// blocked collect re-checks for session teardown. It bounds only
// shutdown latency, never result latency (results unblock collect
// immediately).
const collectPoll = 50 * time.Millisecond

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// Name identifies the worker in handshakes, errors, and metrics
	// (default "worker-<pid>").
	Name string
	// Executor and Workers select the runtime engine for the sessions
	// this worker executes (see runtime.SessionOptions).
	Executor runtime.ExecutorKind
	Workers  int
}

// Worker executes streaming sessions for remote frontends. Pipelines
// come from its own registry — pre-compiled at startup (bpworker
// -apps) or compiled on demand when a frontend's EnsurePipeline frame
// names a suite benchmark or carries a JSON descriptor.
type Worker struct {
	opts WorkerOptions
	reg  *serve.Registry

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*workerConn]struct{}
	draining bool
	closed   bool
}

// NewWorker creates a worker serving sessions over reg's pipelines.
func NewWorker(reg *serve.Registry, opts WorkerOptions) *Worker {
	if opts.Name == "" {
		opts.Name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	return &Worker{opts: opts, reg: reg, conns: make(map[*workerConn]struct{})}
}

// Name returns the worker's handshake identity.
func (w *Worker) Name() string { return w.opts.Name }

// Registry returns the worker's pipeline registry; joiners inventory
// it when registering the compiled-pipeline cache with a fleet.
func (w *Worker) Registry() *serve.Registry { return w.reg }

// OpenSessions reports the worker's live session count — the heartbeat
// load signal.
func (w *Worker) OpenSessions() int { return w.openSessions() }

// Serve accepts frontend connections on ln until the listener closes.
// Each connection is independent: a frontend failure tears down only
// the sessions opened over that connection.
func (w *Worker) Serve(ln net.Listener) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return errors.New("cluster: worker closed")
	}
	w.ln = ln
	w.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			w.mu.Lock()
			stopped := w.draining || w.closed
			w.mu.Unlock()
			if stopped {
				return nil
			}
			return err
		}
		go w.handleConn(c)
	}
}

// Close abruptly tears the worker down: listener and every connection
// close immediately, failing in-flight sessions (the frontend sees a
// connection error). Tests use it to simulate a crashed worker; use
// Shutdown for graceful drain.
func (w *Worker) Close() error {
	w.mu.Lock()
	w.closed = true
	ln := w.ln
	conns := make([]*workerConn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.conn.Close()
	}
	return nil
}

// Shutdown drains gracefully: stop accepting connections and sessions
// and announce Goaway. The frontend reacts by quiescing its feeds and
// closing each session, which lets every frame already on the wire
// land, run to completion, and flush its result — the worker cannot
// close feed intake unilaterally without racing feeds in TCP flight.
// The context bounds the wait; on expiry remaining sessions are cut
// off with a connection close.
func (w *Worker) Shutdown(ctx context.Context) error {
	w.mu.Lock()
	w.draining = true
	ln := w.ln
	conns := make([]*workerConn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.send(&wire.Goaway{Reason: "worker draining"})
	}

	// Wait for every session to finish flushing and report closed, then
	// for the frontends to hang up. The frontend closes a drained
	// connection once its last SessionClosed arrives; closing from this
	// side first could RST unread pings and destroy that delivery.
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	var err error
wait:
	for {
		w.mu.Lock()
		conns := len(w.conns)
		w.mu.Unlock()
		if conns == 0 && w.openSessions() == 0 {
			break
		}
		select {
		case <-ctx.Done():
			sessions, frames := w.abandonedWork()
			err = fmt.Errorf("cluster: worker drain interrupted: %w (%d sessions with %d frames abandoned)",
				ctx.Err(), sessions, frames)
			break wait
		case <-tick.C:
		}
	}
	w.Close()
	return err
}

// abandonedWork counts what an interrupted drain leaves behind: open
// sessions and the frames they accepted but never flushed (queued plus
// fed-minus-collected). bpworker -drain-timeout exits nonzero on it.
func (w *Worker) abandonedWork() (sessions int, frames int64) {
	w.mu.Lock()
	conns := make([]*workerConn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	for _, c := range conns {
		c.mu.Lock()
		for _, s := range c.sessions {
			sessions++
			frames += s.fed.Load() - s.collected.Load() + int64(len(s.feedq))
		}
		c.mu.Unlock()
	}
	return sessions, frames
}

func (w *Worker) openSessions() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for c := range w.conns {
		n += c.sessionCount()
	}
	return n
}

func (w *Worker) isDraining() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.draining
}

// handleConn owns one frontend connection: handshake, then a demux
// loop routing session frames to per-session feeder/collector
// goroutines. Any read error tears down this connection's sessions.
func (w *Worker) handleConn(nc net.Conn) {
	c := &workerConn{
		w:        w,
		conn:     wire.NewConn(nc),
		sessions: make(map[uint64]*workerSession),
	}
	var ids []string
	for _, p := range w.reg.List() {
		ids = append(ids, p.ID)
	}
	if err := c.conn.AcceptHandshake(w.opts.Name, ids); err != nil {
		c.conn.Close()
		return
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		c.conn.Close()
		return
	}
	w.conns[c] = struct{}{}
	draining := w.draining
	w.mu.Unlock()
	if draining {
		c.send(&wire.Goaway{Reason: "worker draining"})
	}

	err := c.readLoop()
	_ = err
	c.conn.Close()
	c.closeAllSessions()
	w.mu.Lock()
	delete(w.conns, c)
	w.mu.Unlock()
}

// workerConn is the worker-side state of one frontend connection.
type workerConn struct {
	w    *Worker
	conn *wire.Conn

	mu       sync.Mutex
	sessions map[uint64]*workerSession
}

func (c *workerConn) send(m wire.Msg) {
	// A write failure means the connection is gone; the read loop will
	// observe it and tear the sessions down, so errors stop here.
	if err := c.conn.Write(m); err != nil {
		c.conn.Close()
	}
}

func (c *workerConn) sessionCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sessions)
}

func (c *workerConn) session(sid uint64) *workerSession {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sessions[sid]
}

func (c *workerConn) removeSession(sid uint64) {
	c.mu.Lock()
	delete(c.sessions, sid)
	c.mu.Unlock()
}

func (c *workerConn) closeAllSessions() {
	c.mu.Lock()
	ss := make([]*workerSession, 0, len(c.sessions))
	for _, s := range c.sessions {
		ss = append(ss, s)
	}
	c.mu.Unlock()
	for _, s := range ss {
		s.beginAbort(errors.New("frontend connection lost"), false)
	}
}

func (c *workerConn) readLoop() error {
	for {
		m, err := c.conn.Read()
		if err != nil {
			return err
		}
		switch m := m.(type) {
		case *wire.Ping:
			c.send(&wire.Pong{Nonce: m.Nonce})
		case *wire.EnsurePipeline:
			// Compiles can take a while; answer asynchronously so pings
			// (and other sessions' frames) keep flowing. The frontend
			// orders open-after-ensure itself.
			go func(m *wire.EnsurePipeline) { c.send(c.ensure(m)) }(m)
		case *wire.OpenSession:
			c.open(m)
		case *wire.OpenPartition:
			c.openPartition(m)
		case *wire.ReopenPartition:
			c.reopenPartition(m)
		case *wire.Feed:
			c.feed(m)
		case *wire.EdgeFrame:
			if s := c.session(m.SID); s != nil && s.partitioned {
				s.edgeFrame(m)
			} else {
				releaseWireItems(m.Items)
			}
		case *wire.EdgeCredit:
			if s := c.session(m.SID); s != nil && s.partitioned {
				s.edgeCredit(m)
			}
		case *wire.CloseSession:
			if s := c.session(m.SID); s != nil {
				s.beginClose()
			}
		case *wire.Error:
			if m.SID == 0 {
				return fmt.Errorf("frontend error: %s", m.Msg)
			}
			if s := c.session(m.SID); s != nil {
				s.beginAbort(fmt.Errorf("frontend error: %s", m.Msg), false)
			}
		default:
			c.send(&wire.Error{Msg: fmt.Sprintf("unexpected %s frame", m.Type())})
			return fmt.Errorf("protocol violation: %s", m.Type())
		}
	}
}

// ensure makes a pipeline available: already registered, compiled from
// the attached JSON descriptor, or compiled as a suite benchmark.
func (c *workerConn) ensure(m *wire.EnsurePipeline) *wire.PipelineReady {
	if _, ok := c.w.reg.Get(m.ID); ok {
		return &wire.PipelineReady{ID: m.ID}
	}
	var err error
	switch {
	case len(m.Desc) > 0:
		var p *serve.Pipeline
		if p, err = c.w.reg.AddJSON(m.Desc); err == nil && p.ID != m.ID {
			err = fmt.Errorf("descriptor compiles to pipeline %q, not %q", p.ID, m.ID)
		}
	case m.Source == "suite":
		err = c.w.reg.AddSuite(m.ID)
	default:
		err = fmt.Errorf("unknown pipeline %q and no descriptor attached", m.ID)
	}
	if err != nil {
		// A concurrent ensure may have won the registration race.
		if _, ok := c.w.reg.Get(m.ID); ok {
			return &wire.PipelineReady{ID: m.ID}
		}
		return &wire.PipelineReady{ID: m.ID, Err: err.Error()}
	}
	return &wire.PipelineReady{ID: m.ID}
}

func (c *workerConn) open(m *wire.OpenSession) {
	if c.w.isDraining() {
		c.send(&wire.SessionOpened{SID: m.SID, Err: "worker draining"})
		return
	}
	p, ok := c.w.reg.Get(m.Pipeline)
	if !ok {
		c.send(&wire.SessionOpened{SID: m.SID, Err: fmt.Sprintf("unknown pipeline %q", m.Pipeline)})
		return
	}
	maxInFlight := int(m.MaxInFlight)
	if maxInFlight <= 0 || maxInFlight > 1024 {
		c.send(&wire.SessionOpened{SID: m.SID, Err: fmt.Sprintf("max-in-flight %d out of range", m.MaxInFlight)})
		return
	}
	rt, err := p.NewSession(runtime.SessionOptions{
		MaxInFlight: maxInFlight,
		Executor:    c.w.opts.Executor,
		Workers:     c.w.opts.Workers,
	})
	if err != nil {
		c.send(&wire.SessionOpened{SID: m.SID, Err: err.Error()})
		return
	}
	s := &workerSession{
		conn:          c,
		sid:           m.SID,
		rt:            rt,
		feedq:         make(chan *wire.Feed, maxInFlight+1),
		abortc:        make(chan struct{}),
		feederDone:    make(chan struct{}),
		collectorDone: make(chan struct{}),
	}
	c.mu.Lock()
	if _, dup := c.sessions[m.SID]; dup {
		c.mu.Unlock()
		rt.Close()
		c.send(&wire.SessionOpened{SID: m.SID, Err: "session id already in use"})
		return
	}
	c.sessions[m.SID] = s
	c.mu.Unlock()
	if m.DeadlineMs > 0 {
		// The frontend's per-session deadline travels with the open, so
		// a stuck session (or an abandoned replay) cancels here even if
		// the frontend never says another word.
		s.ttl = time.AfterFunc(time.Duration(m.DeadlineMs)*time.Millisecond, func() {
			s.beginAbort(errors.New("session deadline exceeded"), true)
		})
	}
	go s.feeder()
	go s.collector()
	c.send(&wire.SessionOpened{SID: m.SID})
}

func (c *workerConn) feed(m *wire.Feed) {
	s := c.session(m.SID)
	if s == nil {
		releaseFeed(m)
		return
	}
	s.qmu.Lock()
	if s.closing {
		s.qmu.Unlock()
		releaseFeed(m)
		return
	}
	select {
	case s.feedq <- m:
		s.qmu.Unlock()
	default:
		// The credit protocol bounds feeds to the queue size; overflow
		// means the frontend broke it.
		s.qmu.Unlock()
		releaseFeed(m)
		s.beginAbort(errors.New("feed credit overrun"), true)
	}
}

func releaseFeed(m *wire.Feed) {
	for _, in := range m.Inputs {
		in.Win.Release()
	}
}

// workerSession is one remote session executing locally: a resident
// runtime session, a feeder draining the bounded feed queue into it,
// and a collector flushing completed frames (plus their credits) back
// to the frontend.
type workerSession struct {
	conn *workerConn
	sid  uint64
	rt   *runtime.Session

	// Partitioned sessions (opened by OpenPartition) execute one member
	// subset of the pipeline graph; their cut edges live in
	// inEdges/outEdges and their teardown drains naturally instead of
	// waiting on fed-vs-collected (see partition_worker.go).
	partitioned bool
	inEdges     map[uint32]*inEdge
	outEdges    map[uint32]*outEdge
	// resumeResults is the reopen watermark: results below it were
	// already delivered by the dead instance, so the collector grants
	// their feed credits without re-sending the result.
	resumeResults int64
	// creditFeeds makes the feeder grant a credit per accepted frame:
	// set for partitions whose sub-graph has no output nodes, which
	// otherwise never run the collector's result-driven credit return.
	creditFeeds bool

	qmu     sync.Mutex
	closing bool
	feedq   chan *wire.Feed

	abortOnce sync.Once
	abortc    chan struct{}
	endOnce   sync.Once

	fed           atomic.Int64
	collected     atomic.Int64
	failErr       atomic.Pointer[string]
	feederDone    chan struct{}
	collectorDone chan struct{}
	ttl           *time.Timer // session deadline, nil when unbounded
}

func (s *workerSession) fail(err error) {
	msg := err.Error()
	s.failErr.CompareAndSwap(nil, &msg)
}

func (s *workerSession) failed() (string, bool) {
	if p := s.failErr.Load(); p != nil {
		return *p, true
	}
	return "", false
}

// feeder moves frames from the wire queue into the runtime session,
// preserving order. Feed blocks when the pipeline is momentarily full;
// the collector keeps draining, so the block is bounded.
func (s *workerSession) feeder() {
	defer close(s.feederDone)
	for {
		select {
		case <-s.abortc:
			s.drainQueue()
			return
		case m, ok := <-s.feedq:
			if !ok {
				return
			}
			if m.Seq != s.fed.Load() {
				releaseFeed(m)
				s.fail(fmt.Errorf("feed sequence %d, want %d", m.Seq, s.fed.Load()))
				s.beginAbort(errors.New("feed sequence broken"), true)
				s.drainQueue()
				return
			}
			var inputs map[string]frame.Window
			if len(m.Inputs) > 0 {
				inputs = make(map[string]frame.Window, len(m.Inputs))
				for _, in := range m.Inputs {
					inputs[in.Name] = in.Win
				}
			}
			if _, err := s.rt.Feed(inputs); err != nil {
				// Feed validated and rejected the frame without taking
				// ownership of its windows.
				releaseFeed(m)
				s.fail(err)
				s.beginAbort(err, true)
				s.drainQueue()
				return
			}
			s.fed.Add(1)
			if s.creditFeeds {
				s.conn.send(&wire.Credit{SID: s.sid, N: 1})
			}
		}
	}
}

func (s *workerSession) drainQueue() {
	for {
		select {
		case m, ok := <-s.feedq:
			if !ok {
				return
			}
			releaseFeed(m)
		default:
			return
		}
	}
}

// collector flushes completed frames to the frontend. Each result is
// followed by a credit, so the frontend's balance tracks the session's
// real fed-minus-delivered bound.
func (s *workerSession) collector() {
	defer close(s.collectorDone)
	for {
		res, err := s.rt.Collect(collectPoll)
		if err != nil {
			if errors.Is(err, runtime.ErrSessionClosed) {
				return
			}
			if isTimeout(err) {
				continue
			}
			s.fail(err)
			s.beginAbort(err, true)
			return
		}
		s.collected.Add(1)
		if res.Seq >= s.resumeResults {
			s.conn.send(encodeResult(s.sid, res))
		}
		s.conn.send(&wire.Credit{SID: s.sid, N: 1})
	}
}

// beginClose starts the graceful teardown: no further feeds, every fed
// frame runs to completion and flushes, then SessionClosed reports the
// outcome.
func (s *workerSession) beginClose() {
	s.endOnce.Do(func() { go s.drainAndClose(true) })
}

// beginAbort starts the failure teardown: queued feeds are dropped and
// the session closes as soon as the runtime lets go. A partition also
// releases its cut edges immediately — a blocked boundary push must
// unwedge before the feeder and pipeline can drain.
func (s *workerSession) beginAbort(err error, report bool) {
	s.fail(err)
	s.abortOnce.Do(func() { close(s.abortc) })
	if s.partitioned {
		s.abortEdges()
	}
	s.endOnce.Do(func() { go s.drainAndClose(report) })
}

func (s *workerSession) drainAndClose(report bool) {
	if s.partitioned {
		s.drainAndClosePartition(report)
		return
	}
	s.qmu.Lock()
	if !s.closing {
		s.closing = true
		close(s.feedq)
	}
	s.qmu.Unlock()
	<-s.feederDone

	// Let the collector flush every completed frame before the runtime
	// discards uncollected results; a failed session skips the wait.
	for s.collected.Load() < s.fed.Load() {
		if _, bad := s.failed(); bad {
			break
		}
		select {
		case <-s.collectorDone:
		case <-time.After(2 * time.Millisecond):
			continue
		}
		break
	}
	s.abortOnce.Do(func() { close(s.abortc) })
	if err := s.rt.Close(); err != nil {
		s.fail(err)
	}
	<-s.collectorDone

	if s.ttl != nil {
		s.ttl.Stop()
	}
	if report {
		msg, _ := s.failed()
		s.conn.send(&wire.SessionClosed{SID: s.sid, Completed: s.collected.Load(), Err: msg})
	}
	s.conn.removeSession(s.sid)
}

// encodeResult converts a completed frame into its wire form, output
// names sorted for a deterministic byte stream.
func encodeResult(sid uint64, res *runtime.StreamResult) *wire.Result {
	names := make([]string, 0, len(res.Outputs))
	for name := range res.Outputs {
		names = append(names, name)
	}
	sort.Strings(names)
	m := &wire.Result{SID: sid, Seq: res.Seq}
	for _, name := range names {
		m.Outputs = append(m.Outputs, wire.NamedWindows{Name: name, Wins: res.Outputs[name]})
	}
	return m
}

// isTimeout matches the runtime's collect-deadline error (the same
// convention internal/serve uses).
func isTimeout(err error) bool {
	return err != nil && strings.Contains(err.Error(), "timed out")
}
