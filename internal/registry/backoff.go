package registry

import (
	"math/rand"
	"time"
)

// JitterBackoff returns the next retry delay using decorrelated jitter
// ("Exponential Backoff and Jitter", AWS Architecture Blog): a draw
// uniform in [min, 3×previous), capped at max. Compared with plain
// doubling, a fleet of peers that lost the same endpoint at the same
// instant spreads its retries across the window instead of hammering
// the endpoint in synchronized waves — while keeping the same expected
// growth toward max. The stdlib global source is used; retry spacing
// needs no seeding guarantees.
func JitterBackoff(prev, min, max time.Duration) time.Duration {
	if min <= 0 {
		min = time.Millisecond
	}
	if max < min {
		max = min
	}
	if prev < min {
		prev = min
	}
	span := 3*prev - min
	next := min + time.Duration(rand.Int63n(int64(span)))
	if next > max {
		next = max
	}
	return next
}
