package runtime

import (
	"strings"
	"testing"
	"time"

	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
	"blockpar/internal/token"
)

// fixed returns a generator that always produces the given frame,
// regardless of sequence number (used for coefficient and bin inputs).
func fixed(w frame.Window) frame.Generator {
	return func(seq int64, fw, fh int) frame.Window {
		if fw != w.W || fh != w.H {
			panic("fixed generator size mismatch")
		}
		return w.Clone()
	}
}

// boxCoeff returns a k×k all-ones coefficient window.
func boxCoeff(k int) frame.Window {
	w := frame.NewWindow(k, k)
	for i := range w.Pix {
		w.Pix[i] = 1
	}
	return w
}

// scalars converts a window list of 1x1 windows into their values.
func scalars(t *testing.T, ws []frame.Window) []float64 {
	t.Helper()
	out := make([]float64, len(ws))
	for i, w := range ws {
		if w.W != 1 || w.H != 1 {
			t.Fatalf("window %d is %dx%d, want 1x1", i, w.W, w.H)
		}
		out[i] = w.Value()
	}
	return out
}

// wantFrameScan flattens a golden frame into scan-order values.
func wantFrameScan(f frame.Window) []float64 {
	out := make([]float64, len(f.Pix))
	copy(out, f.Pix)
	return out
}

func compareScan(t *testing.T, got, want []float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d values, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: value %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

func TestGainPipeline(t *testing.T) {
	g := graph.New("gain")
	in := g.AddInput("Input", geom.Sz(8, 6), geom.Sz(1, 1), geom.FInt(50))
	k := g.Add(kernel.Gain("Gain", 2))
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", k, "in")
	g.Connect(k, "out", out, "in")

	res, err := Run(g, Options{Frames: 2})
	if err != nil {
		t.Fatal(err)
	}
	frames := res.FrameSlices("Output")
	if len(frames) != 2 {
		t.Fatalf("frames = %d, want 2", len(frames))
	}
	for f, ws := range frames {
		want := wantFrameScan(frame.Gain(frame.Gradient(int64(f), 8, 6), 2))
		compareScan(t, scalars(t, ws), want, "gain frame")
	}
	// Token structure: 6 EOLs and 1 EOF per frame.
	var eols, eofs int
	for _, it := range res.Outputs["Output"] {
		if it.IsToken {
			switch it.Tok.Kind {
			case token.EndOfLine:
				eols++
			case token.EndOfFrame:
				eofs++
			}
		}
	}
	if eols != 12 || eofs != 2 {
		t.Errorf("tokens: %d EOL, %d EOF; want 12, 2", eols, eofs)
	}
}

func TestBufferedConvolutionMatchesGolden(t *testing.T) {
	const W, H, K = 10, 8, 3
	g := graph.New("conv")
	in := g.AddInput("Input", geom.Sz(W, H), geom.Sz(1, 1), geom.FInt(50))
	buf := g.Add(kernel.Buffer("Buf", kernel.BufferPlan{
		DataW: W, DataH: H, WinW: K, WinH: K, StepX: 1, StepY: 1,
	}))
	conv := g.Add(kernel.Convolution("Conv", K))
	coeff := g.AddInput("Coeff", geom.Sz(K, K), geom.Sz(K, K), geom.FInt(50))
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", buf, "in")
	g.Connect(buf, "out", conv, "in")
	g.Connect(coeff, "out", conv, "coeff")
	g.Connect(conv, "out", out, "in")

	co := frame.LCG(7, K, K)
	res, err := Run(g, Options{
		Frames:  3,
		Sources: map[string]frame.Generator{"Coeff": fixed(co)},
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := res.FrameSlices("Output")
	if len(frames) != 3 {
		t.Fatalf("frames = %d, want 3", len(frames))
	}
	for f, ws := range frames {
		want := wantFrameScan(frame.Convolve(frame.Gradient(int64(f), W, H), co))
		compareScan(t, scalars(t, ws), want, "conv frame")
	}
}

func TestBufferedMedianMatchesGolden(t *testing.T) {
	const W, H, K = 9, 7, 3
	g := graph.New("median")
	in := g.AddInput("Input", geom.Sz(W, H), geom.Sz(1, 1), geom.FInt(50))
	buf := g.Add(kernel.Buffer("Buf", kernel.BufferPlan{
		DataW: W, DataH: H, WinW: K, WinH: K, StepX: 1, StepY: 1,
	}))
	med := g.Add(kernel.Median("Median", K))
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", buf, "in")
	g.Connect(buf, "out", med, "in")
	g.Connect(med, "out", out, "in")

	res, err := Run(g, Options{
		Frames:  2,
		Sources: map[string]frame.Generator{"Input": frame.Checker},
	})
	if err != nil {
		t.Fatal(err)
	}
	for f, ws := range res.FrameSlices("Output") {
		want := wantFrameScan(frame.Median(frame.Checker(int64(f), W, H), K))
		compareScan(t, scalars(t, ws), want, "median frame")
	}
}

func TestHistogramMergeMatchesGolden(t *testing.T) {
	const W, H, bins = 12, 9, 8
	edges := frame.UniformBins(bins, 0, 256)
	edgeWin := frame.NewWindow(bins, 1)
	copy(edgeWin.Pix, edges)

	g := graph.New("hist")
	in := g.AddInput("Input", geom.Sz(W, H), geom.Sz(1, 1), geom.FInt(50))
	binsIn := g.AddInput("Hist Bins", geom.Sz(bins, 1), geom.Sz(bins, 1), geom.FInt(50))
	hist := g.Add(kernel.Histogram("Histogram", bins))
	merge := g.Add(kernel.Merge("Merge", bins))
	out := g.AddOutput("Output", geom.Sz(bins, 1))
	g.Connect(in, "out", hist, "in")
	g.Connect(binsIn, "out", hist, "bins")
	g.Connect(hist, "out", merge, "in")
	g.Connect(merge, "out", out, "in")
	g.AddDep(in, merge)

	res, err := Run(g, Options{
		Frames: 3,
		Sources: map[string]frame.Generator{
			"Input":     frame.LCG,
			"Hist Bins": fixed(edgeWin),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := res.FrameSlices("Output")
	if len(frames) != 3 {
		t.Fatalf("frames = %d, want 3", len(frames))
	}
	for f, ws := range frames {
		if len(ws) != 1 {
			t.Fatalf("frame %d: %d outputs, want 1 histogram", f, len(ws))
		}
		want := frame.Histogram(frame.LCG(int64(f), W, H), edges)
		for i := range want {
			if ws[0].At(i, 0) != want[i] {
				t.Fatalf("frame %d bin %d = %v, want %v (reset across frames broken?)",
					f, i, ws[0].At(i, 0), want[i])
			}
		}
	}
}

// TestImagePipelineManual builds Figure 1(b)/Figure 3 by hand: median
// and convolution branches buffered, the median output inset by one
// pixel, per-pixel subtraction, and a histogram+merge over the result.
func TestImagePipelineManual(t *testing.T) {
	const W, H, bins = 14, 12, 8
	co := boxCoeff(5)
	edges := frame.UniformBins(bins, -1000, 1000)
	edgeWin := frame.NewWindow(bins, 1)
	copy(edgeWin.Pix, edges)

	g := graph.New("fig1b")
	in := g.AddInput("Input", geom.Sz(W, H), geom.Sz(1, 1), geom.FInt(50))
	coeff := g.AddInput("5x5 Coeff", geom.Sz(5, 5), geom.Sz(5, 5), geom.FInt(50))
	binsIn := g.AddInput("Hist Bins", geom.Sz(bins, 1), geom.Sz(bins, 1), geom.FInt(50))

	bufM := g.Add(kernel.Buffer("BufM", kernel.BufferPlan{DataW: W, DataH: H, WinW: 3, WinH: 3, StepX: 1, StepY: 1}))
	med := g.Add(kernel.Median("3x3 Median", 3))
	inset := g.Add(kernel.Inset("Inset", kernel.InsetPlan{InW: W - 2, InH: H - 2, L: 1, R: 1, T: 1, B: 1}, geom.Sz(1, 1)))

	bufC := g.Add(kernel.Buffer("BufC", kernel.BufferPlan{DataW: W, DataH: H, WinW: 5, WinH: 5, StepX: 1, StepY: 1}))
	conv := g.Add(kernel.Convolution("5x5 Conv", 5))

	sub := g.Add(kernel.Subtract("Subtract"))
	hist := g.Add(kernel.Histogram("Histogram", bins))
	merge := g.Add(kernel.Merge("Merge", bins))
	out := g.AddOutput("result", geom.Sz(bins, 1))

	g.Connect(in, "out", bufM, "in")
	g.Connect(bufM, "out", med, "in")
	g.Connect(med, "out", inset, "in")
	g.Connect(in, "out", bufC, "in")
	g.Connect(bufC, "out", conv, "in")
	g.Connect(coeff, "out", conv, "coeff")
	g.Connect(inset, "out", sub, "in0")
	g.Connect(conv, "out", sub, "in1")
	g.Connect(sub, "out", hist, "in")
	g.Connect(binsIn, "out", hist, "bins")
	g.Connect(hist, "out", merge, "in")
	g.Connect(merge, "out", out, "in")
	g.AddDep(in, merge)

	res, err := Run(g, Options{
		Frames: 2,
		Sources: map[string]frame.Generator{
			"Input":     frame.LCG,
			"5x5 Coeff": fixed(co),
			"Hist Bins": fixed(edgeWin),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := res.FrameSlices("result")
	if len(frames) != 2 {
		t.Fatalf("frames = %d, want 2", len(frames))
	}
	for f, ws := range frames {
		img := frame.LCG(int64(f), W, H)
		medOut := frame.Trim(frame.Median(img, 3), 1, 1, 1, 1)
		convOut := frame.Convolve(img, co)
		diff := frame.Subtract(medOut, convOut)
		want := frame.Histogram(diff, edges)
		if len(ws) != 1 {
			t.Fatalf("frame %d: %d outputs", f, len(ws))
		}
		for i := range want {
			if ws[0].At(i, 0) != want[i] {
				t.Fatalf("frame %d bin %d = %v, want %v", f, i, ws[0].At(i, 0), want[i])
			}
		}
	}
}

func TestSplitJoinRoundRobinPreservesStream(t *testing.T) {
	const W, H, N = 10, 6, 3
	g := graph.New("rr")
	in := g.AddInput("Input", geom.Sz(W, H), geom.Sz(1, 1), geom.FInt(50))
	split := g.Add(kernel.SplitRR("Split", N, geom.Sz(1, 1)))
	join := g.Add(kernel.JoinRR("Join", N, geom.Sz(1, 1)))
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", split, "in")
	for i := 0; i < N; i++ {
		k := g.Add(kernel.Gain(nameIdx("Gain", i), 3))
		g.Connect(split, nameIdx("out", i), k, "in")
		g.Connect(k, "out", join, nameIdx("in", i))
	}
	g.Connect(join, "out", out, "in")

	res, err := Run(g, Options{Frames: 2})
	if err != nil {
		t.Fatal(err)
	}
	for f, ws := range res.FrameSlices("Output") {
		want := wantFrameScan(frame.Gain(frame.Gradient(int64(f), W, H), 3))
		compareScan(t, scalars(t, ws), want, "rr frame")
	}
}

func nameIdx(base string, i int) string {
	return base + string(rune('0'+i))
}

func TestColumnSplitBuffersMatchPlainBufferedConv(t *testing.T) {
	const W, H, K, N = 16, 10, 3, 2
	co := frame.LCG(3, K, K)
	stripes := kernel.ColumnStripes(W, K, 1, N)

	g := graph.New("colsplit")
	in := g.AddInput("Input", geom.Sz(W, H), geom.Sz(1, 1), geom.FInt(50))
	coeff := g.AddInput("Coeff", geom.Sz(K, K), geom.Sz(K, K), geom.FInt(50))
	split := g.Add(kernel.SplitColumns("Split", stripes, W))
	rep := g.Add(kernel.Replicate("Replicate", N, geom.Sz(K, K)))
	counts := make([]int, N)
	for i := range counts {
		counts[i] = stripes[i].OutCount()
	}
	join := g.Add(kernel.JoinColumns("Join", counts, geom.Sz(1, 1)))
	out := g.AddOutput("Output", geom.Sz(1, 1))

	g.Connect(in, "out", split, "in")
	g.Connect(coeff, "out", rep, "in")
	for i := 0; i < N; i++ {
		buf := g.Add(kernel.Buffer(nameIdx("Buf", i), kernel.BufferPlan{
			DataW: stripes[i].InWidth(), DataH: H, WinW: K, WinH: K, StepX: 1, StepY: 1,
		}))
		conv := g.Add(kernel.Convolution(nameIdx("Conv", i), K))
		g.Connect(split, nameIdx("out", i), buf, "in")
		g.Connect(buf, "out", conv, "in")
		g.Connect(rep, nameIdx("out", i), conv, "coeff")
		g.Connect(conv, "out", join, nameIdx("in", i))
	}
	g.Connect(join, "out", out, "in")

	res, err := Run(g, Options{
		Frames:  2,
		Sources: map[string]frame.Generator{"Coeff": fixed(co)},
	})
	if err != nil {
		t.Fatal(err)
	}
	for f, ws := range res.FrameSlices("Output") {
		want := wantFrameScan(frame.Convolve(frame.Gradient(int64(f), W, H), co))
		compareScan(t, scalars(t, ws), want, "column-split conv frame")
	}
}

func TestPadThenConvolveMatchesGolden(t *testing.T) {
	const W, H, K = 8, 6, 3
	co := boxCoeff(K)
	g := graph.New("pad")
	in := g.AddInput("Input", geom.Sz(W, H), geom.Sz(1, 1), geom.FInt(50))
	pad := g.Add(kernel.Pad("Pad", kernel.PadPlan{InW: W, InH: H, L: 1, R: 1, T: 1, B: 1}))
	buf := g.Add(kernel.Buffer("Buf", kernel.BufferPlan{
		DataW: W + 2, DataH: H + 2, WinW: K, WinH: K, StepX: 1, StepY: 1,
	}))
	conv := g.Add(kernel.Convolution("Conv", K))
	coeff := g.AddInput("Coeff", geom.Sz(K, K), geom.Sz(K, K), geom.FInt(50))
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", pad, "in")
	g.Connect(pad, "out", buf, "in")
	g.Connect(buf, "out", conv, "in")
	g.Connect(coeff, "out", conv, "coeff")
	g.Connect(conv, "out", out, "in")

	res, err := Run(g, Options{Frames: 1, Sources: map[string]frame.Generator{"Coeff": fixed(co)}})
	if err != nil {
		t.Fatal(err)
	}
	ws := res.DataWindows("Output")
	want := wantFrameScan(frame.Convolve(frame.Pad(frame.Gradient(0, W, H), 1, 1, 1, 1), co))
	compareScan(t, scalars(t, ws), want, "padded conv")
}

func TestBayerPipelineMatchesGolden(t *testing.T) {
	const W, H = 12, 10
	g := graph.New("bayer")
	in := g.AddInput("Input", geom.Sz(W, H), geom.Sz(1, 1), geom.FInt(50))
	buf := g.Add(kernel.Buffer("Buf", kernel.BufferPlan{
		DataW: W, DataH: H, WinW: 4, WinH: 4, StepX: 2, StepY: 2,
	}))
	bay := g.Add(kernel.BayerDemosaic("Bayer"))
	outR := g.AddOutput("R", geom.Sz(2, 2))
	outG := g.AddOutput("G", geom.Sz(2, 2))
	outB := g.AddOutput("B", geom.Sz(2, 2))
	g.Connect(in, "out", buf, "in")
	g.Connect(buf, "out", bay, "in")
	g.Connect(bay, "r", outR, "in")
	g.Connect(bay, "g", outG, "in")
	g.Connect(bay, "b", outB, "in")

	res, err := Run(g, Options{Frames: 1, Sources: map[string]frame.Generator{"Input": frame.Bayer}})
	if err != nil {
		t.Fatal(err)
	}
	img := frame.Bayer(0, W, H)
	gr, gg, gb := frame.BayerDemosaic(img)
	for _, c := range []struct {
		name   string
		golden frame.Window
	}{{"R", gr}, {"G", gg}, {"B", gb}} {
		quads := res.DataWindows(c.name)
		nX := (W-4)/2 + 1
		if len(quads) == 0 {
			t.Fatalf("%s: no output", c.name)
		}
		for qi, q := range quads {
			qx, qy := qi%nX, qi/nX
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					want := c.golden.At(qx*2+dx, qy*2+dy)
					if got := q.At(dx, dy); got != want {
						t.Fatalf("%s quad %d (%d,%d) = %v, want %v", c.name, qi, dx, dy, got, want)
					}
				}
			}
		}
	}
}

func TestFeedbackAccumulator(t *testing.T) {
	const W = 6
	g := graph.New("feedback")
	in := g.AddInput("Input", geom.Sz(W, 1), geom.Sz(1, 1), geom.FInt(10))
	acc := g.Add(kernel.Accumulator("Acc"))
	fb := g.Add(kernel.Feedback("FB", geom.Sz(1, 1), []frame.Window{frame.Scalar(0)}))
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", acc, "in")
	g.Connect(fb, "out", acc, "state")
	g.Connect(acc, "loop", fb, "in")
	g.Connect(acc, "out", out, "in")

	res, err := Run(g, Options{Frames: 1, Sources: map[string]frame.Generator{
		"Input": func(seq int64, w, h int) frame.Window {
			f := frame.NewWindow(w, h)
			for i := range f.Pix {
				f.Pix[i] = float64(i + 1)
			}
			return f
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	got := scalars(t, res.DataWindows("Output"))
	want := []float64{1, 3, 6, 10, 15, 21} // prefix sums
	compareScan(t, got, want, "feedback accumulator")
}

func TestDownsampleKernel(t *testing.T) {
	const W, H, K = 8, 6, 2
	g := graph.New("down")
	in := g.AddInput("Input", geom.Sz(W, H), geom.Sz(1, 1), geom.FInt(10))
	buf := g.Add(kernel.Buffer("Buf", kernel.BufferPlan{
		DataW: W, DataH: H, WinW: K, WinH: K, StepX: K, StepY: K,
	}))
	ds := g.Add(kernel.Downsample("Down", K))
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", buf, "in")
	g.Connect(buf, "out", ds, "in")
	g.Connect(ds, "out", out, "in")

	res, err := Run(g, Options{Frames: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := wantFrameScan(frame.Downsample(frame.Gradient(0, W, H), K))
	compareScan(t, scalars(t, res.DataWindows("Output")), want, "downsample")
}

func TestRunRejectsInvalidGraph(t *testing.T) {
	g := graph.New("bad")
	g.AddOutput("Output", geom.Sz(1, 1))
	if _, err := Run(g, Options{}); err == nil {
		t.Fatal("invalid graph accepted")
	}
}

func TestRunSurfacesBehaviorErrors(t *testing.T) {
	// A buffer with the wrong plan width errors out mid-stream; the
	// run must return the error rather than hang.
	g := graph.New("bad-buffer")
	in := g.AddInput("Input", geom.Sz(8, 4), geom.Sz(1, 1), geom.FInt(10))
	buf := g.Add(kernel.Buffer("Buf", kernel.BufferPlan{
		DataW: 6 /* wrong: frame is 8 wide */, DataH: 4, WinW: 3, WinH: 3, StepX: 1, StepY: 1,
	}))
	out := g.AddOutput("Output", geom.Sz(3, 3))
	g.Connect(in, "out", buf, "in")
	g.Connect(buf, "out", out, "in")
	if _, err := Run(g, Options{Frames: 1}); err == nil {
		t.Fatal("buffer overflow not reported")
	}
}

func TestMultiFrameDeterminism(t *testing.T) {
	build := func() (*graph.Graph, Options) {
		g := graph.New("det")
		in := g.AddInput("Input", geom.Sz(9, 7), geom.Sz(1, 1), geom.FInt(50))
		buf := g.Add(kernel.Buffer("Buf", kernel.BufferPlan{DataW: 9, DataH: 7, WinW: 3, WinH: 3, StepX: 1, StepY: 1}))
		med := g.Add(kernel.Median("Med", 3))
		out := g.AddOutput("Output", geom.Sz(1, 1))
		g.Connect(in, "out", buf, "in")
		g.Connect(buf, "out", med, "in")
		g.Connect(med, "out", out, "in")
		return g, Options{Frames: 4, Sources: map[string]frame.Generator{"Input": frame.LCG}}
	}
	g1, o1 := build()
	g2, o2 := build()
	r1, err1 := Run(g1, o1)
	r2, err2 := Run(g2, o2)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	a, b := r1.Outputs["Output"], r2.Outputs["Output"]
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].IsToken != b[i].IsToken {
			t.Fatalf("item %d kind differs", i)
		}
		if a[i].IsToken {
			if a[i].Tok != b[i].Tok {
				t.Fatalf("item %d token differs: %v vs %v", i, a[i].Tok, b[i].Tok)
			}
		} else if !a[i].Win.Equal(b[i].Win) {
			t.Fatalf("item %d data differs", i)
		}
	}
}

func TestSwallowingKernelStillCompletesFrames(t *testing.T) {
	// A kernel that consumes data without emitting is a legitimate
	// filter: unhandled EOL/EOF tokens still forward, so the frame
	// structure survives and the run completes with zero data windows.
	g := graph.New("hang")
	in := g.AddInput("Input", geom.Sz(4, 1), geom.Sz(1, 1), geom.FInt(10))
	k := graph.NewNode("BlackHole", graph.KindKernel)
	k.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	k.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	k.RegisterMethod("swallow", 1, 0)
	k.RegisterMethodInput("swallow", "in")
	k.RegisterMethodOutput("swallow", "out")
	k.Behavior = swallowBehavior{}
	g.Add(k)
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", k, "in")
	g.Connect(k, "out", out, "in")

	res, err := Run(g, Options{Frames: 1, Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.DataWindows("Output")); got != 0 {
		t.Fatalf("swallower leaked %d data windows", got)
	}
	// The frame markers arrived.
	if got := len(res.FrameSlices("Output")); got != 1 {
		t.Fatalf("frames = %d, want 1", got)
	}
}

type swallowBehavior struct{}

func (swallowBehavior) Clone() graph.Behavior { return swallowBehavior{} }

func (swallowBehavior) Invoke(method string, ctx graph.ExecContext) error {
	return nil // consumes input, never emits
}

// TestWatchdogAbortsStuckRunner covers the true-hang path: a Runner
// that blocks outside Recv/Send forever can only be cut loose by the
// watchdog.
func TestWatchdogAbortsStuckRunner(t *testing.T) {
	g := graph.New("stuck")
	in := g.AddInput("Input", geom.Sz(4, 1), geom.Sz(1, 1), geom.FInt(10))
	k := graph.NewNode("Stuck", graph.KindKernel)
	k.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	k.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	k.RegisterMethod("m", 1, 0)
	k.RegisterMethodInput("m", "in")
	k.RegisterMethodOutput("m", "out")
	k.Behavior = stuckRunner{}
	g.Add(k)
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", k, "in")
	g.Connect(k, "out", out, "in")

	start := time.Now()
	_, err := Run(g, Options{Frames: 1, Timeout: 150 * time.Millisecond})
	if err == nil || !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("stuck runner not aborted: %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("watchdog took too long")
	}
}

type stuckRunner struct{}

func (stuckRunner) Clone() graph.Behavior { return stuckRunner{} }

func (stuckRunner) Run(ctx graph.RunContext) error {
	select {} // deliberately stuck outside Recv/Send
}
