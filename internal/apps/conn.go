package apps

import (
	"fmt"

	"blockpar/internal/conn"
	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
)

// The generalized-connection benchmark family: a wideband channelizer
// built on scatter-gather and a multi-camera analytics pipeline built
// on broadcast and windowed sharing. Together they exercise every
// connection family end to end — schedule math, share lowering,
// co-location, and the zero-copy broadcast fan-out.

// interleave merges equal-size branch planes item-by-item on the
// schedule, mirroring the gather kernel's own output definition:
// position GlobalIndex(b, l) of each row takes branch b's l-th item.
func interleave(sched conn.Schedule, branches []frame.Window) frame.Window {
	first := branches[0]
	out := frame.NewWindow(first.W*sched.Ways, first.H)
	for y := 0; y < first.H; y++ {
		for b, pl := range branches {
			for l := 0; l < first.W; l++ {
				out.Set(int(sched.GlobalIndex(b, int64(l))), y, pl.At(l, y))
			}
		}
	}
	return out
}

// ChannelizerCfg parameterizes the wideband channelizer benchmark.
type ChannelizerCfg struct {
	// W is samples per row, H rows per frame. W must divide into
	// Taps-sample chunks and the chunk rows into Ways·Stride cycles.
	W, H int
	Rate geom.Frac
	// Ways/Stride is the scatter-gather schedule (default 3/2).
	Ways, Stride int
	// Taps is the per-band FIR length and the channelizer's chunk size
	// (default 5).
	Taps int
}

// Channelizer builds benchmark WC: a wideband input stream chunked into
// Taps-sample blocks, dealt across Ways band branches on a strided
// schedule, filtered per band (FIR + band gain), and recombined by an
// equal-schedule gather so the output restores stream order exactly.
// One taps input feeds every band through a declared broadcast
// connection — the zero-copy fan-out that may span partitions.
func Channelizer(name string, cfg ChannelizerCfg) *App {
	if cfg.Ways == 0 {
		cfg.Ways = 3
	}
	if cfg.Stride == 0 {
		cfg.Stride = 2
	}
	if cfg.Taps == 0 {
		cfg.Taps = 5
	}
	sched := conn.Schedule{Ways: cfg.Ways, Stride: cfg.Stride}
	if cfg.W%cfg.Taps != 0 || !sched.DividesRow(cfg.W/cfg.Taps) {
		panic(fmt.Sprintf("apps: channelizer row of %d samples does not chunk into %d-sample blocks over %d-way stride-%d cycles",
			cfg.W, cfg.Taps, cfg.Ways, cfg.Stride))
	}

	taps := frame.LCG(31, cfg.Taps, 1)
	for i := range taps.Pix {
		taps.Pix[i] /= 256
	}
	gains := make([]float64, cfg.Ways)
	for b := range gains {
		gains[b] = 0.5 + 0.75*float64(b)
	}

	g := graph.New(name)
	in := g.AddInput("Input", geom.Sz(cfg.W, cfg.H), geom.Sz(1, 1), cfg.Rate)
	tapsIn := g.AddInput("Taps", geom.Sz(cfg.Taps, 1), geom.Sz(cfg.Taps, 1), cfg.Rate)
	sc := g.Add(kernel.Scatter("Deal", sched, geom.Sz(cfg.Taps, 1)))
	ga := g.Add(kernel.Gather("Recombine", sched, geom.Sz(1, 1)))
	out := g.AddOutput("result", geom.Sz(1, 1))

	g.Connect(in, "out", sc, "in")
	tapsPorts := make([]*graph.Port, cfg.Ways)
	for b := 0; b < cfg.Ways; b++ {
		fir := g.Add(kernel.FIR(fmt.Sprintf("Band%d FIR", b), cfg.Taps))
		gain := g.Add(kernel.Gain(fmt.Sprintf("Band%d Gain", b), gains[b]))
		g.Connect(sc, fmt.Sprintf("out%d", b), fir, "in")
		g.Connect(tapsIn, "out", fir, "taps")
		g.Connect(fir, "out", gain, "in")
		g.Connect(gain, "out", ga, fmt.Sprintf("in%d", b))
		tapsPorts[b] = fir.Input("taps")
	}
	g.Connect(ga, "out", out, "in")
	g.AddConn("taps", conn.Broadcast, tapsIn.Output("out"), tapsPorts)

	return &App{
		Name:  name,
		Graph: g,
		Sources: map[string]frame.Generator{
			"Input": frame.LCG,
			"Taps":  fixedWin(taps),
		},
		Golden: func(seq int64) map[string][]frame.Window {
			img := frame.LCG(seq, cfg.W, cfg.H)
			nx := cfg.W / cfg.Taps
			plane := frame.NewWindow(nx, cfg.H)
			for y := 0; y < cfg.H; y++ {
				for j := 0; j < nx; j++ {
					var acc float64
					for i := 0; i < cfg.Taps; i++ {
						// The FIR kernel indexes its taps reversed.
						acc += img.At(j*cfg.Taps+i, y) * taps.At(cfg.Taps-i-1, 0)
					}
					// Scatter deals chunk j to branch BranchOf(j); the
					// equal-schedule gather puts it back at position j.
					plane.Set(j, y, acc*gains[sched.BranchOf(int64(j))])
				}
			}
			return map[string][]frame.Window{"result": scalarsOf(plane)}
		},
	}
}

// MultiCamCfg parameterizes the multi-camera analytics benchmark.
type MultiCamCfg struct {
	// W, H are each camera's mosaic dimensions (even, and (W-2)/2 must
	// stay ≥ 3 so the shared 3×3 window fits).
	W, H int
	Rate geom.Frac
	// T is the motion threshold (default 100).
	T float64
}

// MultiCam builds benchmark MC: two camera front-ends (Bayer demosaic,
// per-plane 2× decimation) whose green planes each feed a 3×3 median
// and a 3×3 convolution through a declared windowed-sharing connection
// — the compiler lowers the pair onto one shared ring per camera, and
// placement keeps each ring with its readers. One coefficient input
// serves both cameras' convolutions through a broadcast connection, and
// two stride-1 gathers interleave the cameras' motion and chroma
// streams into the application outputs.
func MultiCam(name string, cfg MultiCamCfg) *App {
	if cfg.W%2 != 0 || cfg.H%2 != 0 {
		panic("apps: MultiCam mosaic dimensions must be even")
	}
	if (cfg.W-2)/2 < 3 || (cfg.H-2)/2 < 3 {
		panic("apps: MultiCam mosaic too small for the shared 3x3 window")
	}
	if cfg.T == 0 {
		cfg.T = 100
	}
	coeff := frame.LCG(13, 3, 3)
	for i := range coeff.Pix {
		coeff.Pix[i] /= 256
	}
	merge := conn.Schedule{Ways: 2, Stride: 1}

	g := graph.New(name)
	coeffIn := g.AddInput("3x3 Coeff", geom.Sz(3, 3), geom.Sz(3, 3), cfg.Rate)
	motionGa := g.Add(kernel.Gather("Motion Merge", merge, geom.Sz(1, 1)))
	chromaGa := g.Add(kernel.Gather("Chroma Merge", merge, geom.Sz(1, 1)))
	motionOut := g.AddOutput("motion", geom.Sz(1, 1))
	chromaOut := g.AddOutput("chroma", geom.Sz(1, 1))

	coeffPorts := make([]*graph.Port, 2)
	for c := 0; c < 2; c++ {
		cam := g.AddInput(fmt.Sprintf("Cam%d", c), geom.Sz(cfg.W, cfg.H), geom.Sz(1, 1), cfg.Rate)
		dm := g.Add(kernel.BayerDemosaic(fmt.Sprintf("Demosaic%d", c)))
		downR := g.Add(kernel.Downsample(fmt.Sprintf("DownR%d", c), 2))
		downG := g.Add(kernel.Downsample(fmt.Sprintf("DownG%d", c), 2))
		downB := g.Add(kernel.Downsample(fmt.Sprintf("DownB%d", c), 2))
		chroma := g.Add(kernel.Subtract(fmt.Sprintf("Chroma%d", c)))
		med := g.Add(kernel.Median(fmt.Sprintf("Median%d", c), 3))
		conv := g.Add(kernel.Convolution(fmt.Sprintf("Conv%d", c), 3))
		diff := g.Add(kernel.Subtract(fmt.Sprintf("Diff%d", c)))
		thresh := g.Add(kernel.Threshold(fmt.Sprintf("Thresh%d", c), cfg.T, 0, 1))

		g.Connect(cam, "out", dm, "in")
		g.Connect(dm, "r", downR, "in")
		g.Connect(dm, "g", downG, "in")
		g.Connect(dm, "b", downB, "in")
		g.Connect(downR, "out", chroma, "in0")
		g.Connect(downB, "out", chroma, "in1")
		g.Connect(downG, "out", med, "in")
		g.Connect(downG, "out", conv, "in")
		g.Connect(coeffIn, "out", conv, "coeff")
		g.Connect(med, "out", diff, "in0")
		g.Connect(conv, "out", diff, "in1")
		g.Connect(diff, "out", thresh, "in")
		g.Connect(thresh, "out", motionGa, fmt.Sprintf("in%d", c))
		g.Connect(chroma, "out", chromaGa, fmt.Sprintf("in%d", c))

		g.AddConn(fmt.Sprintf("gwin%d", c), conn.Share, downG.Output("out"),
			[]*graph.Port{med.Input("in"), conv.Input("in")})
		coeffPorts[c] = conv.Input("coeff")
	}
	g.Connect(motionGa, "out", motionOut, "in")
	g.Connect(chromaGa, "out", chromaOut, "in")
	g.AddConn("coeff", conn.Broadcast, coeffIn.Output("out"), coeffPorts)

	camGen := func(c int) frame.Generator {
		return func(seq int64, w, h int) frame.Window {
			return frame.Bayer(2*seq+int64(c), w, h)
		}
	}
	return &App{
		Name:  name,
		Graph: g,
		Sources: map[string]frame.Generator{
			"Cam0":      camGen(0),
			"Cam1":      camGen(1),
			"3x3 Coeff": fixedWin(coeff),
		},
		Golden: func(seq int64) map[string][]frame.Window {
			motion := make([]frame.Window, 2)
			chroma := make([]frame.Window, 2)
			for c := 0; c < 2; c++ {
				img := camGen(c)(seq, cfg.W, cfg.H)
				r, gg, b := frame.BayerDemosaic(img)
				downR := frame.Downsample(r, 2)
				downG := frame.Downsample(gg, 2)
				downB := frame.Downsample(b, 2)
				chroma[c] = frame.Subtract(downR, downB)
				diff := frame.Subtract(frame.Median(downG, 3), frame.Convolve(downG, coeff))
				th := frame.NewWindow(diff.W, diff.H)
				for i, v := range diff.Pix {
					if v >= cfg.T {
						th.Pix[i] = 1
					}
				}
				motion[c] = th
			}
			return map[string][]frame.Window{
				"motion": scalarsOf(interleave(merge, motion)),
				"chroma": scalarsOf(interleave(merge, chroma)),
			}
		},
	}
}
