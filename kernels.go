package blockpar

import (
	"blockpar/internal/frame"
	"blockpar/internal/kernel"
)

// Kernel library: the programmer-facing kernels of the paper's
// applications plus the compiler-inserted kernels, re-exported for
// building applications and custom parallelizations by hand.

// Programmer kernels.
var (
	// Convolution builds a k×k convolution with a replicated "coeff"
	// input and loadCoeff method (paper Figure 6).
	Convolution = kernel.Convolution
	// Median builds a k×k median filter.
	Median = kernel.Median
	// Subtract builds the two-input per-pixel difference kernel.
	Subtract = kernel.Subtract
	// Histogram builds the data+token histogram kernel of Figure 7.
	Histogram = kernel.Histogram
	// MergeKernel builds the serial partial-histogram reducer of
	// Figure 1(b).
	MergeKernel = kernel.Merge
	// BayerDemosaic builds the RGGB demosaic kernel with R, G, B
	// output planes.
	BayerDemosaic = kernel.BayerDemosaic
	// Gain builds a 1×1 scale kernel.
	Gain = kernel.Gain
	// Downsample builds a k×k decimator with a fractional offset.
	Downsample = kernel.Downsample
	// Accumulator builds the feedback example's running-sum kernel.
	Accumulator = kernel.Accumulator
	// FIR builds a 1-D finite-impulse-response filter with a
	// replicated taps input.
	FIR = kernel.FIR
	// Upsample builds a k×k nearest-neighbor upsampler (outputs larger
	// than inputs).
	Upsample = kernel.Upsample
	// Magnitude builds the two-input gradient-magnitude kernel.
	Magnitude = kernel.Magnitude
	// Threshold builds a 1×1 binarization kernel.
	Threshold = kernel.Threshold
	// MotionSearch builds the dynamic (bounded, data-dependent-cost)
	// block-matching kernel of the §VII extension.
	MotionSearch = kernel.MotionSearch
	// Morphology builds a k×k grayscale erosion or dilation.
	Morphology = kernel.Morphology
)

// Morphology operations.
const (
	MorphErode  = kernel.Erode
	MorphDilate = kernel.Dilate
)

// Compiler kernels, exposed for manual/programmatic parallelization
// (§IV-C allows the programmer to supply their own structure).
var (
	// Buffer builds a 2-D circular windowing buffer.
	Buffer = kernel.Buffer
	// SplitRR and JoinRR are the round-robin distributors (§IV-A).
	SplitRR = kernel.SplitRR
	JoinRR  = kernel.JoinRR
	// SplitColumns and JoinColumns stripe a sample stream by columns
	// with overlap replication (§IV-C, Figure 10).
	SplitColumns = kernel.SplitColumns
	JoinColumns  = kernel.JoinColumns
	// Replicate broadcasts replicated inputs to every instance.
	Replicate = kernel.Replicate
	// Inset trims an item grid; Pad zero-pads a sample stream (§III-C).
	Inset = kernel.Inset
	Pad   = kernel.Pad
	// Feedback breaks loops and supplies initial values (§III-D).
	Feedback = kernel.Feedback
	// ColumnStripes computes balanced overlap stripes for manual
	// buffer splitting.
	ColumnStripes = kernel.ColumnStripes
)

// Plan types for the compiler kernels.
type (
	// BufferPlan parameterizes a windowing buffer.
	BufferPlan = kernel.BufferPlan
	// InsetPlan parameterizes a trim kernel.
	InsetPlan = kernel.InsetPlan
	// PadPlan parameterizes a padding kernel.
	PadPlan = kernel.PadPlan
	// Stripe is one column range of a split buffer.
	Stripe = kernel.Stripe
)

// Deterministic frame generators for application inputs.
var (
	// Gradient produces diagonal gradients varying per frame.
	Gradient = frame.Gradient
	// Checker produces checkerboards (exercises order statistics).
	Checker = frame.Checker
	// LCG produces pseudo-random frames in [0, 256).
	LCG = frame.LCG
	// BayerMosaic produces RGGB mosaic frames.
	BayerMosaic = frame.Bayer
	// Constant produces flat frames.
	Constant = frame.Constant
)

// FixedWindow adapts a constant window (e.g. convolution coefficients)
// to a Generator for configuration inputs.
func FixedWindow(w Window) Generator {
	return func(seq int64, fw, fh int) Window {
		return w.Clone()
	}
}

// NewWindow allocates a zeroed w×h window; Scalar wraps one value.
var (
	NewWindow = frame.NewWindow
	Scalar    = frame.Scalar
	FromRows  = frame.FromRows
)

// Golden sequential references, handy for verifying custom pipelines.
var (
	GoldenConvolve  = frame.Convolve
	GoldenMedian    = frame.Median
	GoldenSubtract  = frame.Subtract
	GoldenHistogram = frame.Histogram
	GoldenDemosaic  = frame.BayerDemosaic
	GoldenFIR       = frame.FIR
	GoldenUpsample  = frame.UpsampleNN
	GoldenMorph     = frame.Morph
	UniformBins     = frame.UniformBins
)
