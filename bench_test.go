package blockpar_test

// The benchmark harness regenerates every figure of the paper's
// evaluation (see EXPERIMENTS.md for the measured-vs-paper record):
//
//	Figure 3   buffer + inset insertion          BenchmarkFig3_BufferAndAlign
//	Figure 4   automatic parallelization         BenchmarkFig4_Parallelize
//	Figure 5   windowed reuse via line buffers   BenchmarkFig5_BufferedConvThroughput
//	Figure 9   buffer-striping reuse ablation    BenchmarkFig9_Striped / _SharedBuffer
//	Figure 10  column-split buffer FSMs          BenchmarkFig10_ColumnSplit
//	Figure 11  size/rate parallelization matrix  BenchmarkFig11_<preset>
//	Figure 12  1:1 vs greedy mapping             BenchmarkFig12_<mapping>
//	Figure 13  benchmark-suite utilization       BenchmarkFig13_<id>_<mapping>
//
// Each benchmark reports the figure's headline quantity via
// b.ReportMetric (PE counts, mean utilization, improvement factors), so
// `go test -bench . -benchmem` prints the paper's series alongside the
// harness cost. The bpfig command renders the same data as tables.

import (
	"testing"

	"blockpar"
	"blockpar/internal/apps"
	"blockpar/internal/core"
	"blockpar/internal/geom"
	"blockpar/internal/machine"
	"blockpar/internal/mapping"
	"blockpar/internal/report"
	"blockpar/internal/sim"
	"blockpar/internal/transform"
)

func fastImageApp() *apps.App {
	return apps.ImagePipeline("bench-image", apps.ImageCfg{
		W: apps.SmallW, H: apps.SmallH,
		Rate: geom.F(apps.FastRate, int64(apps.SmallW*apps.SmallH)),
		Bins: 32,
	})
}

// BenchmarkFig3_BufferAndAlign measures the Figure 3 transformation:
// automatic buffer insertion and trim alignment on the image pipeline.
func BenchmarkFig3_BufferAndAlign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		app := fastImageApp()
		if err := transform.InsertBuffers(app.Graph); err != nil {
			b.Fatal(err)
		}
		if err := transform.Align(app.Graph, transform.Trim); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4_Parallelize measures the full Figure 4 compilation:
// buffering, alignment, and parallelization of the running example at
// the fast rate, reporting the conv degree the compiler chose.
func BenchmarkFig4_Parallelize(b *testing.B) {
	var degree int
	for i := 0; i < b.N; i++ {
		app := fastImageApp()
		c, err := core.Compile(app.Graph, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		degree = c.Report.Degrees["5x5 Conv"]
	}
	b.ReportMetric(float64(degree), "conv-instances")
}

// BenchmarkFig5_BufferedConvThroughput measures the functional runtime
// on the buffered 5×5 convolution — the data path whose 24/25 reuse
// Figure 5 illustrates — in samples processed per second.
func BenchmarkFig5_BufferedConvThroughput(b *testing.B) {
	const w, h = 64, 48
	coeff := blockpar.LCG(7, 5, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := blockpar.NewApp("fig5")
		in := g.AddInput("Input", blockpar.Sz(w, h), blockpar.Sz(1, 1), blockpar.FInt(100))
		conv := g.Add(blockpar.Convolution("Conv", 5))
		cIn := g.AddInput("Coeff", blockpar.Sz(5, 5), blockpar.Sz(5, 5), blockpar.FInt(100))
		out := g.AddOutput("Output", blockpar.Sz(1, 1))
		g.Connect(in, "out", conv, "in")
		g.Connect(cIn, "out", conv, "coeff")
		g.Connect(conv, "out", out, "in")
		cfg := blockpar.DefaultConfig()
		cfg.Parallelize = false
		if _, err := blockpar.Compile(g, cfg); err != nil {
			b.Fatal(err)
		}
		if _, err := blockpar.Run(g, blockpar.RunOptions{
			Frames: 1,
			Sources: map[string]blockpar.Generator{
				"Coeff": blockpar.FixedWindow(coeff),
			},
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(w*h*b.N)/b.Elapsed().Seconds(), "samples/s")
}

// benchStriping runs the Figure 9 ablation: striped per-instance
// buffers (reuse-optimized) vs one shared buffer with round-robin
// window distribution. Striping keeps the split traffic at raw-sample
// rate (plus replicated overlap) and every buffer within PE memory;
// the shared buffer pushes whole windows through its split (~window-
// area times more words) and concentrates all storage on one PE.
func benchStriping(b *testing.B, striped bool) {
	var splitWrite, maxBufMem int64
	for i := 0; i < b.N; i++ {
		app := fastImageApp()
		cfg := core.DefaultConfig()
		cfg.BufferStriping = striped
		c, err := core.Compile(app.Graph, cfg)
		if err != nil {
			b.Fatal(err)
		}
		splitWrite, maxBufMem = 0, 0
		for _, n := range c.Graph.Nodes() {
			switch n.Kind {
			case blockpar.KindSplit:
				splitWrite += c.Analysis.Nodes[n].WriteWordsPerFrame
			case blockpar.KindBuffer:
				if mem := c.Analysis.Nodes[n].MemoryWords; mem > maxBufMem {
					maxBufMem = mem
				}
			}
		}
	}
	b.ReportMetric(float64(splitWrite), "split-words/frame")
	b.ReportMetric(float64(maxBufMem), "max-buffer-words")
}

func BenchmarkFig9_Striped(b *testing.B)      { benchStriping(b, true) }
func BenchmarkFig9_SharedBuffer(b *testing.B) { benchStriping(b, false) }

// BenchmarkFig10_ColumnSplit measures the memory-bound buffer split of
// the parallel-buffer test (benchmark 3), reporting the stripes the
// wide line buffer was divided into.
func BenchmarkFig10_ColumnSplit(b *testing.B) {
	var stripes int
	for i := 0; i < b.N; i++ {
		app := apps.ParallelBufferTest("bench-parbuf", apps.BufferCfg{
			W: 256, H: 32, Rate: geom.F(apps.SlowRate, 256*32),
		})
		c, err := core.Compile(app.Graph, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		stripes = 0
		for _, n := range c.Graph.Nodes() {
			if n.Kind == blockpar.KindBuffer {
				stripes++
			}
		}
	}
	b.ReportMetric(float64(stripes), "buffer-stripes")
}

// benchFig11 compiles one Figure 11 preset, reporting the PE count the
// automatic parallelization provisions.
func benchFig11(b *testing.B, preset apps.Preset) {
	var pes int
	for i := 0; i < b.N; i++ {
		app := apps.ImagePreset(preset)
		c, err := core.Compile(app.Graph, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		pes = mapping.OneToOne(c.Graph).NumPEs
	}
	b.ReportMetric(float64(pes), "PEs")
}

func BenchmarkFig11_SmallSlow(b *testing.B) {
	benchFig11(b, apps.Preset{ID: "SS", W: apps.SmallW, H: apps.SmallH, Samples: apps.SlowRate})
}
func BenchmarkFig11_BigSlow(b *testing.B) {
	benchFig11(b, apps.Preset{ID: "BS", W: apps.BigW, H: apps.BigH, Samples: apps.SlowRate})
}
func BenchmarkFig11_SmallFast(b *testing.B) {
	benchFig11(b, apps.Preset{ID: "SF", W: apps.SmallW, H: apps.SmallH, Samples: apps.FastRate})
}
func BenchmarkFig11_BigFast(b *testing.B) {
	benchFig11(b, apps.Preset{ID: "BF", W: apps.BigW, H: apps.BigH, Samples: apps.FastRate})
}

// benchFig12 simulates the Figure 4 application under one mapping,
// reporting mean PE utilization.
func benchFig12(b *testing.B, greedy bool) {
	m := machine.Embedded()
	app := fastImageApp()
	c, err := core.Compile(app.Graph, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	var assign *mapping.Assignment
	if greedy {
		assign, err = mapping.Greedy(c.Graph, c.Analysis, m)
		if err != nil {
			b.Fatal(err)
		}
	} else {
		assign = mapping.OneToOne(c.Graph)
	}
	var util float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Simulate(c.Graph, assign, sim.Options{Machine: m, Frames: 2})
		if err != nil {
			b.Fatal(err)
		}
		util = res.MeanUtilization()
	}
	b.ReportMetric(100*util, "util-%")
	b.ReportMetric(float64(assign.NumPEs), "PEs")
}

func BenchmarkFig12_OneToOne(b *testing.B) { benchFig12(b, false) }
func BenchmarkFig12_Greedy(b *testing.B)   { benchFig12(b, true) }

// benchFig13 runs one suite benchmark under one mapping.
func benchFig13(b *testing.B, id string, greedy bool) {
	m := machine.Embedded()
	app, err := apps.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	c, err := core.Compile(app.Graph, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	var assign *mapping.Assignment
	if greedy {
		assign, err = mapping.Greedy(c.Graph, c.Analysis, m)
		if err != nil {
			b.Fatal(err)
		}
	} else {
		assign = mapping.OneToOne(c.Graph)
	}
	var util float64
	var rt bool
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Simulate(c.Graph, assign, sim.Options{Machine: m, Frames: 2})
		if err != nil {
			b.Fatal(err)
		}
		util = res.MeanUtilization()
		rt = res.RealTimeMet()
	}
	if !rt {
		b.Fatalf("benchmark %s missed real time", id)
	}
	b.ReportMetric(100*util, "util-%")
	b.ReportMetric(float64(assign.NumPEs), "PEs")
}

func BenchmarkFig13_1_OneToOne(b *testing.B)  { benchFig13(b, "1", false) }
func BenchmarkFig13_1_Greedy(b *testing.B)    { benchFig13(b, "1", true) }
func BenchmarkFig13_1F_OneToOne(b *testing.B) { benchFig13(b, "1F", false) }
func BenchmarkFig13_1F_Greedy(b *testing.B)   { benchFig13(b, "1F", true) }
func BenchmarkFig13_2_OneToOne(b *testing.B)  { benchFig13(b, "2", false) }
func BenchmarkFig13_2_Greedy(b *testing.B)    { benchFig13(b, "2", true) }
func BenchmarkFig13_2F_OneToOne(b *testing.B) { benchFig13(b, "2F", false) }
func BenchmarkFig13_2F_Greedy(b *testing.B)   { benchFig13(b, "2F", true) }
func BenchmarkFig13_3_OneToOne(b *testing.B)  { benchFig13(b, "3", false) }
func BenchmarkFig13_3_Greedy(b *testing.B)    { benchFig13(b, "3", true) }
func BenchmarkFig13_4_OneToOne(b *testing.B)  { benchFig13(b, "4", false) }
func BenchmarkFig13_4_Greedy(b *testing.B)    { benchFig13(b, "4", true) }
func BenchmarkFig13_SS_OneToOne(b *testing.B) { benchFig13(b, "SS", false) }
func BenchmarkFig13_SS_Greedy(b *testing.B)   { benchFig13(b, "SS", true) }
func BenchmarkFig13_SF_OneToOne(b *testing.B) { benchFig13(b, "SF", false) }
func BenchmarkFig13_SF_Greedy(b *testing.B)   { benchFig13(b, "SF", true) }
func BenchmarkFig13_BS_OneToOne(b *testing.B) { benchFig13(b, "BS", false) }
func BenchmarkFig13_BS_Greedy(b *testing.B)   { benchFig13(b, "BS", true) }
func BenchmarkFig13_BF_OneToOne(b *testing.B) { benchFig13(b, "BF", false) }
func BenchmarkFig13_BF_Greedy(b *testing.B)   { benchFig13(b, "BF", true) }
func BenchmarkFig13_5_OneToOne(b *testing.B)  { benchFig13(b, "5", false) }
func BenchmarkFig13_5_Greedy(b *testing.B)    { benchFig13(b, "5", true) }

// BenchmarkFig13_Average runs the whole suite under both mappings and
// reports the paper's headline: the mean greedy-over-1:1 utilization
// improvement (paper: 1.5x).
func BenchmarkFig13_Average(b *testing.B) {
	var improvement float64
	for i := 0; i < b.N; i++ {
		rows, err := report.Figure13(machine.Embedded(), 2)
		if err != nil {
			b.Fatal(err)
		}
		improvement = report.AverageImprovement(rows)
	}
	b.ReportMetric(improvement, "greedy/1:1")
}

// BenchmarkAnnealPlacement measures the simulated-annealing placement
// pass, reporting the communication-cost reduction it achieves.
func BenchmarkAnnealPlacement(b *testing.B) {
	app := fastImageApp()
	c, err := core.Compile(app.Graph, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	gm, err := mapping.Greedy(c.Graph, c.Analysis, machine.Embedded())
	if err != nil {
		b.Fatal(err)
	}
	side := 1
	for side*side < gm.NumPEs {
		side++
	}
	ident := &mapping.Placement{GridW: side, GridH: side, At: make([]int, gm.NumPEs)}
	for i := range ident.At {
		ident.At[i] = i
	}
	before := mapping.CommCost(c.Graph, gm, ident)
	var after float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := mapping.Anneal(c.Graph, gm, 42)
		after = mapping.CommCost(c.Graph, gm, p)
	}
	b.ReportMetric(before/after, "cost-reduction")
}

// benchMappingAblation compares the paper's neighbor-merging greedy
// multiplexer against locality-blind first-fit-decreasing bin packing:
// similar PE counts, very different on-processor stream locality.
func benchMappingAblation(b *testing.B, kind string) {
	m := machine.Embedded()
	app := fastImageApp()
	c, err := core.Compile(app.Graph, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	var assign *mapping.Assignment
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch kind {
		case "greedy":
			assign, err = mapping.Greedy(c.Graph, c.Analysis, m)
		case "binpack":
			assign, err = mapping.BinPack(c.Graph, c.Analysis, m)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(assign.NumPEs), "PEs")
	b.ReportMetric(float64(mapping.CrossPEWords(c.Graph, c.Analysis, assign)), "cross-PE-words/frame")
}

func BenchmarkMappingAblation_Greedy(b *testing.B)  { benchMappingAblation(b, "greedy") }
func BenchmarkMappingAblation_BinPack(b *testing.B) { benchMappingAblation(b, "binpack") }

// BenchmarkRateSweep runs the processors-vs-rate tradeoff sweep (the
// dual of StreamIt's objective, §VI), reporting the PE range covered.
func BenchmarkRateSweep(b *testing.B) {
	var minPE, maxPE int
	for i := 0; i < b.N; i++ {
		points, err := report.RateSweep(machine.Embedded(),
			[]int64{100_000, apps.SlowRate, apps.FastRate}, 2)
		if err != nil {
			b.Fatal(err)
		}
		minPE, maxPE = points[0].PEsGreedy, points[len(points)-1].PEsGreedy
	}
	b.ReportMetric(float64(minPE), "PEs-at-100k")
	b.ReportMetric(float64(maxPE), "PEs-at-1.5M")
}

// BenchmarkRuntime_ImagePipeline measures end-to-end functional
// execution of the fully parallelized image pipeline on the goroutine
// runtime.
func BenchmarkRuntime_ImagePipeline(b *testing.B) {
	app := fastImageApp()
	c, err := core.Compile(app.Graph, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := blockpar.Run(c.Graph, blockpar.RunOptions{Frames: 1, Sources: app.Sources}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(apps.SmallW*apps.SmallH*b.N)/b.Elapsed().Seconds(), "samples/s")
}
