package placement

import (
	"errors"
	"strings"
	"testing"

	"blockpar/internal/analysis"
	"blockpar/internal/apps"
	"blockpar/internal/core"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/machine"
	"blockpar/internal/mapping"
)

func compiledImageApp(t *testing.T) (*graph.Graph, *analysis.Result) {
	t.Helper()
	app := apps.ImagePipeline("place-test", apps.ImageCfg{
		W: apps.SmallW, H: apps.SmallH,
		Rate: geom.F(apps.FastRate, int64(apps.SmallW*apps.SmallH)),
		Bins: 32,
	})
	c, err := core.Compile(app.Graph, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c.Graph, c.Analysis
}

// TestPlanSingleWorkerNoCuts: a one-target fleet must produce exactly
// one partition holding every node and zero cut edges, so the
// dispatcher can fall back to the ordinary whole-session path.
func TestPlanSingleWorkerNoCuts(t *testing.T) {
	g, r := compiledImageApp(t)
	m := machine.Default()
	p, err := PlanGraph(g, r, m, EvenFleet(g, r, m, 1), 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Partitions) != 1 || len(p.Cuts) != 0 {
		t.Fatalf("got %d partitions, %d cuts; want 1, 0", len(p.Partitions), len(p.Cuts))
	}
	if len(p.Partitions[0].Nodes) != len(g.Nodes()) {
		t.Fatalf("partition holds %d of %d nodes", len(p.Partitions[0].Nodes), len(g.Nodes()))
	}
}

// TestPlanMultiWorkerSound builds 2- and 3-worker plans for a real
// compiled app and checks the invariants the transport depends on:
// validation passes (coverage, typed cuts, acyclic quotient), every
// cut carries positive traffic and a positive credit window, and the
// same seed reproduces the same plan.
func TestPlanMultiWorkerSound(t *testing.T) {
	g, r := compiledImageApp(t)
	m := machine.Default()
	for _, workers := range []int{2, 3} {
		p, err := PlanGraph(g, r, m, EvenFleet(g, r, m, workers), 7)
		if err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
		if len(p.Partitions) < 2 {
			t.Fatalf("%d workers: plan collapsed to %d partition(s)", workers, len(p.Partitions))
		}
		if len(p.Cuts) == 0 {
			t.Fatalf("%d workers: multi-partition plan has no cut edges", workers)
		}
		for _, c := range p.Cuts {
			if c.WordsPerFrame <= 0 {
				t.Errorf("%d workers: cut %d carries %d words/frame", workers, c.ID, c.WordsPerFrame)
			}
			if c.Credit <= 0 {
				t.Errorf("%d workers: cut %d credit %d", workers, c.ID, c.Credit)
			}
		}
		q, err := PlanGraph(g, r, m, EvenFleet(g, r, m, workers), 7)
		if err != nil {
			t.Fatal(err)
		}
		if p.String() != q.String() {
			t.Errorf("%d workers: same seed produced different plans", workers)
		}
	}
}

// TestPlanInfeasibleTyped: an impossible fleet surfaces mapping's
// typed error through the placement wrapper.
func TestPlanInfeasibleTyped(t *testing.T) {
	g, r := compiledImageApp(t)
	m := machine.Default()
	ts := make([]mapping.Target, 3)
	for i := range ts {
		ts[i] = mapping.Target{Name: "tiny", CyclesPerSec: 1, MemWords: 1}
	}
	_, err := PlanGraph(g, r, m, ts, 42)
	if err == nil {
		t.Fatal("tiny fleet accepted")
	}
	if !errors.Is(err, mapping.ErrInfeasible) {
		t.Fatalf("error %v does not wrap ErrInfeasible", err)
	}
}

// TestValidateCatchesTampering corrupts sound plans in the ways the
// Delaval-style check exists to catch.
func TestValidateCatchesTampering(t *testing.T) {
	g, r := compiledImageApp(t)
	m := machine.Default()
	fresh := func() *Plan {
		p, err := PlanGraph(g, r, m, EvenFleet(g, r, m, 2), 7)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if err := fresh().Validate(g, r); err != nil {
		t.Fatalf("sound plan rejected: %v", err)
	}

	p := fresh()
	p.Partitions[0].Nodes = p.Partitions[0].Nodes[1:]
	if err := p.Validate(g, r); err == nil {
		t.Error("dropped node not caught")
	}

	p = fresh()
	p.Partitions[1].Nodes = append(p.Partitions[1].Nodes, p.Partitions[0].Nodes[0])
	if err := p.Validate(g, r); err == nil {
		t.Error("doubly-placed node not caught")
	}

	p = fresh()
	p.Cuts = p.Cuts[:len(p.Cuts)-1]
	if err := p.Validate(g, r); err == nil {
		t.Error("missing cut entry not caught")
	}

	p = fresh()
	p.Cuts[0].Credit = 0
	if err := p.Validate(g, r); err == nil {
		t.Error("zero credit window not caught")
	}

	p = fresh()
	p.Cuts[0].From, p.Cuts[0].To = p.Cuts[0].To, p.Cuts[0].From
	if err := p.Validate(g, r); err == nil {
		t.Error("reversed cut direction not caught")
	}

	p = fresh()
	p.Cuts = append(p.Cuts, CutEdge{ID: 99, From: 0, To: 1,
		FromNode: "ghost", FromPort: "out", ToNode: "ghost2", ToPort: "in", Credit: 1})
	if err := p.Validate(g, r); err == nil {
		t.Error("phantom cut edge not caught")
	}
}

// TestPlanStringRendersEverything pins the -plan output shape: every
// partition and cut appears with its target, demand, and credit.
func TestPlanStringRendersEverything(t *testing.T) {
	g, r := compiledImageApp(t)
	m := machine.Default()
	p, err := PlanGraph(g, r, m, EvenFleet(g, r, m, 2), 7)
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for i := range p.Partitions {
		if !strings.Contains(s, p.Partitions[i].Target) {
			t.Errorf("rendering misses target %q", p.Partitions[i].Target)
		}
	}
	for _, c := range p.Cuts {
		if !strings.Contains(s, c.FromNode+"."+c.FromPort) {
			t.Errorf("rendering misses cut %d source %s.%s", c.ID, c.FromNode, c.FromPort)
		}
	}
	if !strings.Contains(s, "credit") {
		t.Error("rendering misses credit windows")
	}
}
