package runtime

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"blockpar/internal/frame"
	"blockpar/internal/graph"
	"blockpar/internal/token"
)

// Session errors. ErrQueueFull is the backpressure signal: the caller
// fed more frames than MaxInFlight without collecting their results.
var (
	ErrSessionClosed = errors.New("runtime: session closed")
	ErrQueueFull     = errors.New("runtime: session frame queue full")
	// ErrBadFrame wraps caller mistakes (unknown input, wrong frame
	// dimensions) so transports can distinguish them from execution
	// failures.
	ErrBadFrame = errors.New("runtime: bad frame")
)

// SessionOptions configures a streaming session.
type SessionOptions struct {
	// ChannelCap overrides the per-node inbox capacity (see Options).
	ChannelCap int
	// MaxInFlight bounds the frames fed but not yet collected; TryFeed
	// fails with ErrQueueFull at the bound (default 4).
	MaxInFlight int
	// Sources provides frames for inputs the caller does not supply to
	// Feed (coefficient and bin inputs, typically). Inputs without an
	// entry fall back to frame.Gradient, like the batch runtime.
	Sources map[string]frame.Generator
	// Executor selects the scheduling engine (see Options.Executor).
	Executor ExecutorKind
	// Workers sizes the ExecWorkers pool (default GOMAXPROCS).
	Workers int
}

// StreamResult is the output of one completed frame: for every
// application output, the data windows it produced for that frame, in
// stream order.
type StreamResult struct {
	// Seq is the frame index, counted from zero per session.
	Seq     int64
	Outputs map[string][]frame.Window
}

// Session is a long-lived streaming execution instance of a graph: the
// kernel goroutines stay resident between frames, frames are fed one at
// a time, and each frame's outputs are flushed deterministically on its
// end-of-frame tokens. A session over a compiled graph produces
// byte-identical per-frame outputs to the batch Run with the same
// sources, because inputs chunk frames with the same scan order and
// token numbering.
//
// Feed and Collect may run on different goroutines (feed-ahead up to
// MaxInFlight frames); Feed itself must not be called concurrently
// with another Feed. Kernel panics are recovered and surface as the
// session error instead of crashing the process.
type Session struct {
	g    *graph.Graph
	ex   *executor
	opts SessionOptions
	done chan struct{}

	mu        sync.Mutex // guards closed, fed, and the feed sends
	closed    bool
	fed       int64
	collected atomic.Int64
}

// NewSession validates the graph, spins up its kernel goroutines, and
// returns a handle ready to accept frames.
func NewSession(g *graph.Graph, opts SessionOptions) (*Session, error) {
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 4
	}
	for _, n := range g.Inputs() {
		chunk := n.Output("out").Size
		if n.FrameSize.W%chunk.W != 0 || n.FrameSize.H%chunk.H != 0 {
			return nil, fmt.Errorf("runtime: input %q frame %v not divisible by chunk %v",
				n.Name(), n.FrameSize, chunk)
		}
	}
	ex, err := newExecutor(g, Options{
		ChannelCap: opts.ChannelCap,
		Executor:   opts.Executor,
		Workers:    opts.Workers,
	}, opts.MaxInFlight)
	if err != nil {
		return nil, err
	}
	s := &Session{g: g, ex: ex, opts: opts}
	s.done = ex.start()
	return s, nil
}

// Feed enqueues one frame: the supplied window per input node, falling
// back to the session Sources (then frame.Gradient) for absent inputs.
// It returns the frame's index. Feed blocks while the pipeline is full;
// use TryFeed for the non-blocking backpressure variant.
//
// Feed takes ownership of pooled input windows (the cluster transport
// feeds arena-decoded frames): the pipeline releases their storage
// once every chunk has been consumed. Fed windows must stay immutable
// while their frame is in flight.
func (s *Session) Feed(inputs map[string]frame.Window) (int64, error) {
	return s.feed(inputs, true)
}

// TryFeed is Feed without blocking: when MaxInFlight frames are already
// fed but uncollected it fails fast with ErrQueueFull.
func (s *Session) TryFeed(inputs map[string]frame.Window) (int64, error) {
	return s.feed(inputs, false)
}

func (s *Session) feed(inputs map[string]frame.Window, block bool) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrSessionClosed
	}
	if err := s.ex.runErr(); err != nil {
		return 0, err
	}
	if !block && s.fed-s.collected.Load() >= int64(s.opts.MaxInFlight) {
		return 0, ErrQueueFull
	}
	for name := range inputs {
		if n := s.g.Node(name); n == nil || n.Kind != graph.KindInput {
			return 0, fmt.Errorf("%w: unknown input %q", ErrBadFrame, name)
		}
	}
	// Resolve and validate every window before sending anything, so a
	// bad frame never leaves the pipeline partially fed.
	f := s.fed
	ins := s.g.Inputs()
	wins := make([]frame.Window, len(ins))
	for i, n := range ins {
		w, ok := inputs[n.Name()]
		if !ok {
			gen := s.opts.Sources[n.Name()]
			if gen == nil {
				gen = frame.Gradient
			}
			w = gen(f, n.FrameSize.W, n.FrameSize.H)
		}
		if w.W != n.FrameSize.W || w.H != n.FrameSize.H {
			return 0, fmt.Errorf("%w: input %q is %dx%d, want %dx%d",
				ErrBadFrame, n.Name(), w.W, w.H, n.FrameSize.W, n.FrameSize.H)
		}
		if want := n.Output("out").Elem; w.Kind != want {
			return 0, fmt.Errorf("%w: input %q carries %s samples, declared %s",
				ErrBadFrame, n.Name(), w.Kind, want)
		}
		wins[i] = w
	}
	for i, n := range ins {
		select {
		case s.ex.feeds[n] <- wins[i]:
		case <-s.ex.stop:
			return 0, s.failErr()
		}
	}
	s.fed++
	return f, nil
}

// Collect blocks until the next frame's outputs are complete and
// returns them in frame order. A timeout of zero waits indefinitely.
// After Close, Collect drains any remaining completed frames and then
// fails with ErrSessionClosed.
func (s *Session) Collect(timeout time.Duration) (*StreamResult, error) {
	var tc <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		tc = t.C
	}
	select {
	case res := <-s.ex.ready:
		s.collected.Add(1)
		return &res, nil
	case <-tc:
		return nil, fmt.Errorf("runtime: session collect timed out after %v", timeout)
	case <-s.ex.stop:
		// A completed frame may have raced with the failure; prefer it.
		select {
		case res := <-s.ex.ready:
			s.collected.Add(1)
			return &res, nil
		default:
		}
		return nil, s.failErr()
	case <-s.done:
		select {
		case res := <-s.ex.ready:
			s.collected.Add(1)
			return &res, nil
		default:
		}
		if err := s.ex.runErr(); err != nil {
			return nil, err
		}
		return nil, ErrSessionClosed
	}
}

// Fed returns the number of frames accepted so far.
func (s *Session) Fed() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fed
}

// Completed returns the number of frames whose outputs finished
// (collected or still waiting in the result queue).
func (s *Session) Completed() int64 {
	s.ex.outMu.Lock()
	defer s.ex.outMu.Unlock()
	return s.ex.assembled
}

// InFlight returns the frames fed but not yet collected.
func (s *Session) InFlight() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fed - s.collected.Load()
}

// Err returns the session's failure, or nil while it is healthy.
func (s *Session) Err() error { return s.ex.runErr() }

// Close stops the inputs and drains the pipeline: every fed frame is
// still processed to completion (uncollected results are discarded),
// then all kernel goroutines exit. It returns the first execution
// error, if any. Close is idempotent.
func (s *Session) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for _, n := range s.g.Inputs() {
			close(s.ex.feeds[n])
		}
	}
	s.mu.Unlock()
	for {
		select {
		case <-s.done:
			// The feed channels are closed and the input goroutines are
			// gone; windows still buffered there (a hard stop can leave
			// them behind) go back to the arena.
			for _, ch := range s.ex.feeds {
				for w := range ch {
					w.Release()
				}
			}
			for {
				select {
				case <-s.ex.ready:
					s.collected.Add(1)
				default:
					return s.ex.runErr()
				}
			}
		case <-s.ex.ready:
			s.collected.Add(1)
		}
	}
}

// Finish stops accepting frames but does not wait or drain: the
// inputs see end-of-stream and the pipeline winds down on its own,
// with completed results still collectable. A partition transport uses
// it so a collector goroutine can keep draining results while the
// partition's boundary edges flush; plain Close would race it for the
// ready queue and discard frames. Close after Finish is still required
// to reap the session.
func (s *Session) Finish() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for _, n := range s.g.Inputs() {
			close(s.ex.feeds[n])
		}
	}
	s.mu.Unlock()
}

// Abort kills the session immediately with err: every kernel stops at
// its next channel operation, in-flight frames are dropped, and Close
// returns promptly. Used when a partitioned session loses a peer and
// waiting for a natural end-of-stream could block forever.
func (s *Session) Abort(err error) {
	if err == nil {
		err = ErrSessionClosed
	}
	s.ex.fail(err)
}

func (s *Session) failErr() error {
	if err := s.ex.runErr(); err != nil {
		return err
	}
	return errors.New("runtime: session stopped")
}

// runInputStream is the streaming replacement for runInput: frames
// arrive from the session feed instead of a generator, but chunking and
// EOL/EOF numbering are identical so results match the batch runtime.
func (ex *executor) runInputStream(n *graph.Node) error {
	out := n.Output("out")
	chunk := out.Size
	fs := n.FrameSize
	for f := int64(0); ; f++ {
		var img frame.Window
		select {
		case w, ok := <-ex.feeds[n]:
			if !ok {
				return nil
			}
			img = w
		case <-ex.stop:
			return nil
		}
		ex.emitFrame(out, fs.W, fs.H, chunk.W, chunk.H, img, f)
	}
}

// runOutputStream assembles per-frame output groups: data windows
// accumulate until the end-of-frame token, and once every application
// output has completed a frame the combined result is flushed to the
// session's ready queue.
func (ex *executor) runOutputStream(n *graph.Node) error {
	name := n.Name()
	for {
		msg, ok := ex.recv(n)
		if !ok {
			return nil
		}
		if !msg.item.IsToken {
			ex.outMu.Lock()
			if msg.item.B.IsBatch() {
				ex.curFrame[name] = append(ex.curFrame[name], ex.collectBatch(msg.item)...)
			} else {
				ex.curFrame[name] = append(ex.curFrame[name], ex.collectOutput(msg.item.Win))
			}
			ex.outMu.Unlock()
			continue
		}
		if msg.item.Tok.Kind != token.EndOfFrame {
			continue
		}
		ex.outMu.Lock()
		ex.doneFrames[name] = append(ex.doneFrames[name], ex.curFrame[name])
		ex.curFrame[name] = nil
		res := StreamResult{Outputs: make(map[string][]frame.Window)}
		all := true
		for _, o := range ex.g.Outputs() {
			if len(ex.doneFrames[o.Name()]) == 0 {
				all = false
				break
			}
		}
		if all {
			for _, o := range ex.g.Outputs() {
				q := ex.doneFrames[o.Name()]
				res.Outputs[o.Name()] = q[0]
				ex.doneFrames[o.Name()] = q[1:]
			}
			res.Seq = ex.assembled
			ex.assembled++
		}
		ex.outMu.Unlock()
		if all {
			select {
			case ex.ready <- res:
			case <-ex.stop:
				return nil
			}
		}
	}
}
