package graph

import (
	"testing"

	"blockpar/internal/geom"
)

type cloneStateBehavior struct{ count int }

func (b *cloneStateBehavior) Clone() Behavior { return &cloneStateBehavior{} }
func (b *cloneStateBehavior) Invoke(method string, ctx ExecContext) error {
	b.count++
	return nil
}

func TestGraphClone(t *testing.T) {
	g := New("app")
	in := g.AddInput("Input", geom.Sz(8, 6), geom.Sz(1, 1), geom.FInt(30))
	k := NewNode("K", KindKernel)
	k.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	k.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	k.RegisterMethod("run", 3, 2)
	k.RegisterMethodInput("run", "in")
	k.RegisterMethodOutput("run", "out")
	k.Attrs["ktype"] = "custom"
	b := &cloneStateBehavior{count: 7}
	k.Behavior = b
	g.Add(k)
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", k, "in")
	g.Connect(k, "out", out, "in")
	g.AddDep(in, k)

	c := g.Clone()
	if err := c.Validate(); err != nil {
		t.Fatalf("clone does not validate: %v", err)
	}
	if len(c.Nodes()) != len(g.Nodes()) || len(c.Edges()) != len(g.Edges()) || len(c.Deps()) != len(g.Deps()) {
		t.Fatalf("clone shape %d/%d/%d, want %d/%d/%d",
			len(c.Nodes()), len(c.Edges()), len(c.Deps()),
			len(g.Nodes()), len(g.Edges()), len(g.Deps()))
	}
	ck := c.Node("K")
	if ck == k {
		t.Fatal("clone shares node pointers with the original")
	}
	cb, ok := ck.Behavior.(*cloneStateBehavior)
	if !ok || cb == b {
		t.Fatal("clone shares behavior state with the original")
	}
	if cb.count != 0 {
		t.Fatalf("cloned behavior state = %d, want fresh", cb.count)
	}
	// Edges must reference the clone's own ports.
	for _, e := range c.Edges() {
		if c.Node(e.From.Node().Name()) != e.From.Node() || c.Node(e.To.Node().Name()) != e.To.Node() {
			t.Fatalf("edge %v references nodes outside the clone", e)
		}
	}
	if c.Deps()[0].From != c.Node("Input") || c.Deps()[0].To != ck {
		t.Fatal("dependency edge not remapped onto clone nodes")
	}
	// Mutating the clone must not leak into the original.
	c.Remove(ck)
	if g.Node("K") == nil || len(g.Edges()) != 2 {
		t.Fatal("mutating the clone affected the original graph")
	}
}
