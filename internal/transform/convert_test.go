package transform_test

import (
	"testing"

	"blockpar/internal/analysis"
	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
	"blockpar/internal/transform"
)

func TestInsertConversionsWidensU8ForConvolution(t *testing.T) {
	g := graph.New("convert")
	in := g.AddInput("Input", geom.Sz(8, 8), geom.Sz(1, 1), geom.FInt(1))
	in.Output("out").Elem = frame.U8
	conv := g.Add(kernel.Convolution("Conv", 3))
	coeff := g.AddInput("Coeff", geom.Sz(3, 3), geom.Sz(3, 3), geom.FInt(1))
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", conv, "in")
	g.Connect(coeff, "out", conv, "coeff")
	g.Connect(conv, "out", out, "in")

	if err := transform.InsertConversions(g); err != nil {
		t.Fatal(err)
	}
	var found *graph.Node
	for _, n := range g.Nodes() {
		if _, ok := kernel.ConvertTarget(n); ok {
			found = n
		}
	}
	if found == nil {
		t.Fatal("no conversion kernel inserted")
	}
	// u8 widens exactly into f32, the narrowest kind the convolution
	// accepts — the byte stream should not be promoted all the way to f64.
	if to, _ := kernel.ConvertTarget(found); to != frame.F32 {
		t.Errorf("conversion targets %s, want f32", to)
	}
	e := g.EdgeTo(conv.Input("in"))
	if e == nil || e.From.Node() != found {
		t.Errorf("conversion not spliced in front of the convolution")
	}
	r, err := analysis.ElemKinds(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Violations) != 0 {
		t.Errorf("violations remain after insertion: %v", r.Violations)
	}
	if got := r.Out[conv.Output("out")]; got != frame.F32 {
		t.Errorf("convolution emits %s after conversion, want f32", got)
	}
}

func TestInsertConversionsNoOpOnF64(t *testing.T) {
	g := graph.New("noop")
	in := g.AddInput("Input", geom.Sz(8, 8), geom.Sz(1, 1), geom.FInt(1))
	conv := g.Add(kernel.Convolution("Conv", 3))
	coeff := g.AddInput("Coeff", geom.Sz(3, 3), geom.Sz(3, 3), geom.FInt(1))
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", conv, "in")
	g.Connect(coeff, "out", conv, "coeff")
	g.Connect(conv, "out", out, "in")

	before := len(g.Nodes())
	if err := transform.InsertConversions(g); err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes()) != before {
		t.Errorf("conversion inserted on an all-f64 graph")
	}
}
