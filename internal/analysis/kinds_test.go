package analysis

import (
	"strings"
	"testing"

	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
	"blockpar/internal/token"
)

// TestInsetPadReplicateInfo covers the compiler-kernel analysis rules
// directly: an inset shrinks the grid and advances the inset, a pad
// grows it and retreats, a replicate broadcasts unchanged.
func TestInsetPadReplicateInfo(t *testing.T) {
	const W, H = 10, 8
	g := graph.New("kinds")
	in := g.AddInput("Input", geom.Sz(W, H), geom.Sz(1, 1), geom.FInt(10))
	pad := g.Add(kernel.Pad("Pad", kernel.PadPlan{InW: W, InH: H, L: 1, R: 1, T: 2, B: 0}))
	inset := g.Add(kernel.Inset("Inset", kernel.InsetPlan{InW: W + 2, InH: H + 2, L: 2, R: 2, T: 1, B: 1}, geom.Sz(1, 1)))
	rep := g.Add(kernel.Replicate("Rep", 2, geom.Sz(1, 1)))
	o1 := g.AddOutput("O1", geom.Sz(1, 1))
	o2 := g.AddOutput("O2", geom.Sz(1, 1))
	g.Connect(in, "out", pad, "in")
	g.Connect(pad, "out", inset, "in")
	g.Connect(inset, "out", rep, "in")
	g.Connect(rep, "out0", o1, "in")
	g.Connect(rep, "out1", o2, "in")

	r, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	pinfo := r.Out[pad.Output("out")]
	if pinfo.Items != geom.Sz(W+2, H+2) {
		t.Errorf("pad items = %v, want (12x10)", pinfo.Items)
	}
	if !pinfo.Inset.Equal(geom.Off(-1, -2)) {
		t.Errorf("pad inset = %v, want [-1,-2]", pinfo.Inset)
	}
	iinfo := r.Out[inset.Output("out")]
	if iinfo.Items != geom.Sz(W-2, H) {
		t.Errorf("inset items = %v, want (8x8)", iinfo.Items)
	}
	if !iinfo.Inset.Equal(geom.Off(1, -1)) {
		t.Errorf("inset inset = %v, want [1,-1]", iinfo.Inset)
	}
	for _, out := range []string{"out0", "out1"} {
		if got := r.Out[rep.Output(out)]; got != iinfo {
			t.Errorf("replicate %s = %v, want %v", out, got, iinfo)
		}
	}
	// Replicate node accounting: reads once, writes twice.
	ni := r.NodeInfoOf(rep)
	if ni.WriteWordsPerFrame != 2*ni.ReadWordsPerFrame {
		t.Errorf("replicate words: read %d write %d", ni.ReadWordsPerFrame, ni.WriteWordsPerFrame)
	}
}

func TestCustomTokenRateUsedForMethodInvocations(t *testing.T) {
	g := graph.New("tokrate")
	in := g.AddInput("Input", geom.Sz(8, 1), geom.Sz(1, 1), geom.FInt(10))
	in.TokenRates = map[string]geom.Frac{"mark": geom.FInt(3)}
	k := graph.NewNode("K", graph.KindKernel)
	k.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	k.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	k.RegisterMethod("run", 4, 0)
	k.RegisterMethodInput("run", "in")
	k.RegisterMethodOutput("run", "out")
	k.RegisterMethod("onMark", 50, 0)
	k.RegisterMethodInputToken("onMark", "in", token.Custom, "mark")
	g.Add(k)
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", k, "in")
	g.Connect(k, "out", out, "in")

	r, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	ni := r.NodeInfoOf(k)
	if got := ni.Methods["onMark"].Invocations(); got != 3 {
		t.Errorf("onMark invocations = %d, want 3 (declared rate)", got)
	}
	// Undeclared custom tokens default to 1/frame: drop the rate and
	// declare it on another node to pass validation.
	in.TokenRates = nil
	out2 := g.Node("Output")
	out2.TokenRates = map[string]geom.Frac{"mark": geom.Frac{}}
	r2, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.NodeInfoOf(k).Methods["onMark"].Invocations(); got != 1 {
		t.Errorf("zero-rate custom token invocations = %d, want clamped 1", got)
	}
}

func TestProblemStrings(t *testing.T) {
	g := graph.New("strings")
	in := g.AddInput("Input", geom.Sz(8, 8), geom.Sz(1, 1), geom.FInt(10))
	conv := g.Add(kernel.Convolution("Conv", 3))
	coeff := g.AddInput("Coeff", geom.Sz(3, 3), geom.Sz(3, 3), geom.FInt(10))
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", conv, "in")
	g.Connect(coeff, "out", conv, "coeff")
	g.Connect(conv, "out", out, "in")
	r, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasProblems() {
		t.Fatal("expected a needs-buffer problem")
	}
	s := r.Problems[0].String()
	for _, want := range []string{"needs-buffer", "Conv", "runConvolve", "window"} {
		if !strings.Contains(s, want) {
			t.Errorf("problem string %q missing %q", s, want)
		}
	}
	// PortInfo and kind strings render.
	info := r.Out[conv.Output("out")]
	if !strings.Contains(info.String(), "region") {
		t.Errorf("PortInfo.String = %q", info.String())
	}
	for _, k := range []ProblemKind{NeedsBuffer, Misaligned, RateMismatch, Incompatible, ProblemKind(99)} {
		if k.String() == "" {
			t.Error("empty kind string")
		}
	}
}

func TestJoinRRInfoFlattens(t *testing.T) {
	g := graph.New("joinflat")
	in := g.AddInput("Input", geom.Sz(6, 2), geom.Sz(1, 1), geom.FInt(10))
	split := g.Add(kernel.SplitRR("S", 2, geom.Sz(1, 1)))
	join := g.Add(kernel.JoinRR("J", 2, geom.Sz(1, 1)))
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", split, "in")
	g.Connect(split, "out0", join, "in0")
	g.Connect(split, "out1", join, "in1")
	g.Connect(join, "out", out, "in")

	r, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	ji := r.Out[join.Output("out")]
	if !ji.Flat {
		t.Error("join output should be flat")
	}
	if ji.ItemsPerFrame() != 12 {
		t.Errorf("join items = %d, want 12", ji.ItemsPerFrame())
	}
}

func TestIncompatibleChunking(t *testing.T) {
	// A 2x2-chunk input feeding a 3x3-window kernel cannot be re-
	// chunked by a buffer (buffers take raw 1x1 streams).
	g := graph.New("incompat")
	in := g.AddInput("Input", geom.Sz(8, 8), geom.Sz(2, 2), geom.FInt(10))
	med := g.Add(kernel.Median("Med", 3))
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", med, "in")
	g.Connect(med, "out", out, "in")
	r, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ProblemsOfKind(Incompatible)) == 0 {
		t.Errorf("incompatible chunking not flagged: %v", r.Problems)
	}
}
