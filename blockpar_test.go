package blockpar_test

import (
	"strings"
	"testing"

	"blockpar"
)

// TestPublicAPIEndToEnd exercises the whole public surface the way a
// downstream user would: describe, compile, run, map, simulate, place.
func TestPublicAPIEndToEnd(t *testing.T) {
	app := blockpar.NewApp("api")
	in := app.AddInput("Input", blockpar.Sz(24, 16), blockpar.Sz(1, 1), blockpar.FInt(500))
	med := app.Add(blockpar.Median("Median", 3))
	out := app.AddOutput("Output", blockpar.Sz(1, 1))
	app.Connect(in, "out", med, "in")
	app.Connect(med, "out", out, "in")

	cfg := blockpar.DefaultConfig()
	compiled, err := blockpar.Compile(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if compiled.Report == nil || compiled.Analysis == nil {
		t.Fatal("compiled missing report/analysis")
	}

	res, err := blockpar.Run(compiled.Graph, blockpar.RunOptions{Frames: 2})
	if err != nil {
		t.Fatal(err)
	}
	golden := blockpar.GoldenMedian(blockpar.Gradient(0, 24, 16), 3)
	frames := res.FrameSlices("Output")
	if len(frames) != 2 || len(frames[0]) != golden.W*golden.H {
		t.Fatalf("output shape wrong: %d frames of %d", len(frames), len(frames[0]))
	}
	for i, w := range frames[0] {
		if w.Value() != golden.Pix[i] {
			t.Fatalf("sample %d = %v, want %v", i, w.Value(), golden.Pix[i])
		}
	}

	assign, err := blockpar.MapGreedy(compiled.Graph, compiled.Analysis, cfg.Machine)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := blockpar.Simulate(compiled.Graph, assign, blockpar.SimOptions{
		Machine: cfg.Machine, Frames: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sr.RealTimeMet() {
		t.Error("real time missed")
	}
	p := blockpar.Place(compiled.Graph, assign, 1)
	if p.GridW*p.GridH < assign.NumPEs {
		t.Error("placement grid too small")
	}
}

func TestPublicCustomKernel(t *testing.T) {
	// A custom kernel via NewKernel: out = in squared.
	sq := blockpar.NewKernel("Square")
	sq.CreateInput("in", blockpar.Sz(1, 1), blockpar.St(1, 1), blockpar.Off(0, 0))
	sq.CreateOutput("out", blockpar.Sz(1, 1), blockpar.St(1, 1))
	sq.RegisterMethod("run", 5, 1)
	sq.RegisterMethodInput("run", "in")
	sq.RegisterMethodOutput("run", "out")
	sq.Behavior = squareBehavior{}

	app := blockpar.NewApp("custom")
	in := app.AddInput("Input", blockpar.Sz(6, 1), blockpar.Sz(1, 1), blockpar.FInt(10))
	app.Add(sq)
	out := app.AddOutput("Output", blockpar.Sz(1, 1))
	app.Connect(in, "out", sq, "in")
	app.Connect(sq, "out", out, "in")

	res, err := blockpar.Run(app, blockpar.RunOptions{Frames: 1})
	if err != nil {
		t.Fatal(err)
	}
	ws := res.DataWindows("Output")
	for i, w := range ws {
		want := blockpar.Gradient(0, 6, 1).Pix[i]
		if w.Value() != want*want {
			t.Fatalf("sample %d = %v, want %v", i, w.Value(), want*want)
		}
	}
}

type squareBehavior struct{}

func (squareBehavior) Clone() blockpar.Behavior { return squareBehavior{} }

func (squareBehavior) Invoke(method string, ctx blockpar.ExecContext) error {
	v := ctx.Input("in").Value()
	ctx.Emit("out", blockpar.Scalar(v*v))
	return nil
}

func TestPublicAnalyzeAndDot(t *testing.T) {
	app := blockpar.NewApp("dot")
	in := app.AddInput("Input", blockpar.Sz(100, 100), blockpar.Sz(1, 1), blockpar.FInt(50))
	conv := app.Add(blockpar.Convolution("5x5 Conv", 5))
	coeff := app.AddInput("Coeff", blockpar.Sz(5, 5), blockpar.Sz(5, 5), blockpar.FInt(50))
	out := app.AddOutput("Output", blockpar.Sz(1, 1))
	app.Connect(in, "out", conv, "in")
	app.Connect(coeff, "out", conv, "coeff")
	app.Connect(conv, "out", out, "in")

	r, err := blockpar.Analyze(app)
	if err != nil {
		t.Fatal(err)
	}
	ni := r.NodeInfoOf(conv)
	if ni.IterX != 96 || ni.IterY != 96 {
		t.Errorf("§III-A example via public API: %dx%d", ni.IterX, ni.IterY)
	}
	if !strings.Contains(app.Dot(), "digraph") {
		t.Error("Dot output malformed")
	}
}

func TestPublicAlignPolicies(t *testing.T) {
	if blockpar.AlignTrim == blockpar.AlignPad {
		t.Fatal("alignment policies must differ")
	}
	cfg := blockpar.DefaultConfig()
	if cfg.Align != blockpar.AlignTrim {
		t.Error("default policy should be trim (the Figure 3 solution)")
	}
}
