package kernel

import (
	"fmt"

	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
)

// BayerDemosaic builds a bilinear demosaicing kernel for RGGB mosaics
// (Figure 13 benchmarks 1 and 1F). To stay data-parallel the kernel
// consumes a 4×4 window advanced by (2,2) and reconstructs the interior
// 2×2 quad, which contains exactly one pixel of each Bayer parity class
// regardless of the window's absolute position; it demonstrates the
// model's multiple outputs with separate R, G, and B planes.
//
// The input accepts row batches: a span of N overlapping windows is
// demosaiced in one firing and each color plane leaves as one 2N×2
// batched row. Interpolation always runs in float64 (u8 samples promote
// exactly) and narrows back through the shared quantization rule when
// the stream's element kind is u8, so scalar and batched firings are
// byte-identical.
func BayerDemosaic(name string) *graph.Node {
	n := graph.NewNode(name, graph.KindKernel)
	n.CreateInput("in", geom.Sz(4, 4), geom.St(2, 2), geom.Off(1, 1))
	n.CreateOutput("r", geom.Sz(2, 2), geom.St(2, 2))
	n.CreateOutput("g", geom.Sz(2, 2), geom.St(2, 2))
	n.CreateOutput("b", geom.Sz(2, 2), geom.St(2, 2))
	n.RegisterMethod("demosaic", bayerCycles, 16)
	n.RegisterMethodInput("demosaic", "in")
	n.RegisterMethodOutput("demosaic", "r")
	n.RegisterMethodOutput("demosaic", "g")
	n.RegisterMethodOutput("demosaic", "b")
	n.Attrs["ktype"] = "bayer"
	n.Behavior = &bayerBehavior{}
	return n
}

type bayerBehavior struct {
	// scratch holds the batch span promoted to dense float64 rows, so
	// the interpolation runs with direct flat indexing instead of
	// per-pixel strided At calls. Behaviors are single-threaded per
	// node instance, so the buffer is reused across firings.
	scratch []float64
}

func (*bayerBehavior) Clone() graph.Behavior { return &bayerBehavior{} }

// AcceptsBatch implements graph.BatchAware: windows arrive in row spans.
func (*bayerBehavior) AcceptsBatch(input string) bool { return input == "in" }

func (bb *bayerBehavior) Invoke(method string, ctx graph.ExecContext) error {
	if method != "demosaic" {
		return fmt.Errorf("kernel: bayer has no method %q", method)
	}
	in := ctx.Input("in")
	n, sx := 1, 2
	bc, _ := ctx.(graph.BatchContext)
	if bc != nil {
		if bt := bc.Batch("in"); bt.IsBatch() {
			n, sx = int(bt.N), int(bt.Sx)
		}
	}
	// The window's top-left is at even absolute coordinates (step 2,2
	// from an even origin), so within-window position (1,1) has odd-odd
	// absolute parity, (2,2) even-even, matching RGGB via quadParity.
	r := frame.AllocKind(in.Kind, 2*n, 2)
	g := frame.AllocKind(in.Kind, 2*n, 2)
	b := frame.AllocKind(in.Kind, 2*n, 2)
	if sx%2 == 0 {
		bb.demosaicSpan(in, n, sx, r, g, b)
	} else {
		for j := 0; j < n; j++ {
			for qy := 0; qy < 2; qy++ {
				for qx := 0; qx < 2; qx++ {
					rv, gv, bv := demosaicQuad(in, j*sx+1+qx, 1+qy)
					r.Set(j*2+qx, qy, rv)
					g.Set(j*2+qx, qy, gv)
					b.Set(j*2+qx, qy, bv)
				}
			}
		}
	}
	if n > 1 {
		bb := graph.Batch{N: int32(n), Sx: 2, Bw: 2}
		bc.EmitBatch("r", r, bb)
		bc.EmitBatch("g", g, bb)
		bc.EmitBatch("b", b, bb)
	} else {
		ctx.Emit("r", r)
		ctx.Emit("g", g)
		ctx.Emit("b", b)
	}
	return nil
}

// demosaicSpan is the dense row loop: the whole batch span is promoted
// once into a flat float64 scratch, and every quad interpolates with
// direct indexing — no strided At calls, no per-pixel closures. The
// even batch stride keeps the parity class of each quad position fixed,
// so the four sites unroll statically. Sums are accumulated in the same
// order as demosaicQuad and outputs narrow through the same Set rule,
// making the two paths bit-identical.
func (bb *bayerBehavior) demosaicSpan(in frame.Window, n, sx int, r, g, b frame.Window) {
	w := in.W
	need := w * 4
	if cap(bb.scratch) < need {
		bb.scratch = make([]float64, need)
	}
	s := bb.scratch[:need]
	for y := 0; y < 4; y++ {
		dst := s[y*w : (y+1)*w]
		switch in.Kind {
		case frame.U8:
			for x, v := range in.RowU8(y) {
				dst[x] = float64(v)
			}
		case frame.F32:
			for x, v := range in.RowF32(y) {
				dst[x] = float64(v)
			}
		default:
			copy(dst, in.Row(y))
		}
	}
	for j := 0; j < n; j++ {
		// (base+1, 1): odd-odd — blue site.
		p := w + j*sx + 1
		b.Set(j*2, 0, s[p])
		g.Set(j*2, 0, (s[p-1]+s[p+1]+s[p-w]+s[p+w])/4)
		r.Set(j*2, 0, (s[p-w-1]+s[p-w+1]+s[p+w-1]+s[p+w+1])/4)
		// (base+2, 1): even-odd — green on the blue row.
		p++
		g.Set(j*2+1, 0, s[p])
		r.Set(j*2+1, 0, (s[p-w]+s[p+w])/2)
		b.Set(j*2+1, 0, (s[p-1]+s[p+1])/2)
		// (base+1, 2): odd-even — green on the red row.
		p += w - 1
		g.Set(j*2, 1, s[p])
		r.Set(j*2, 1, (s[p-1]+s[p+1])/2)
		b.Set(j*2, 1, (s[p-w]+s[p+w])/2)
		// (base+2, 2): even-even — red site.
		p++
		r.Set(j*2+1, 1, s[p])
		g.Set(j*2+1, 1, (s[p-1]+s[p+1]+s[p-w]+s[p+w])/4)
		b.Set(j*2+1, 1, (s[p-w-1]+s[p-w+1]+s[p+w-1]+s[p+w+1])/4)
	}
}

// demosaicQuad reconstructs RGB at window position (cx, cy); the window
// is anchored at even absolute coordinates so absolute parity equals
// (cx%2, cy%2).
func demosaicQuad(w frame.Window, cx, cy int) (r, g, b float64) {
	avg4 := func(dx1, dy1, dx2, dy2, dx3, dy3, dx4, dy4 int) float64 {
		return (w.At(cx+dx1, cy+dy1) + w.At(cx+dx2, cy+dy2) +
			w.At(cx+dx3, cy+dy3) + w.At(cx+dx4, cy+dy4)) / 4
	}
	avg2 := func(dx1, dy1, dx2, dy2 int) float64 {
		return (w.At(cx+dx1, cy+dy1) + w.At(cx+dx2, cy+dy2)) / 2
	}
	switch {
	case cy%2 == 0 && cx%2 == 0: // red site
		r = w.At(cx, cy)
		g = avg4(-1, 0, 1, 0, 0, -1, 0, 1)
		b = avg4(-1, -1, 1, -1, -1, 1, 1, 1)
	case cy%2 == 0 && cx%2 == 1: // green on red row
		g = w.At(cx, cy)
		r = avg2(-1, 0, 1, 0)
		b = avg2(0, -1, 0, 1)
	case cy%2 == 1 && cx%2 == 0: // green on blue row
		g = w.At(cx, cy)
		r = avg2(0, -1, 0, 1)
		b = avg2(-1, 0, 1, 0)
	default: // blue site
		b = w.At(cx, cy)
		g = avg4(-1, 0, 1, 0, 0, -1, 0, 1)
		r = avg4(-1, -1, 1, -1, -1, 1, 1, 1)
	}
	return r, g, b
}
