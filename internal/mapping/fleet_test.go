package mapping

import (
	"errors"
	"reflect"
	"testing"

	"blockpar/internal/analysis"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/machine"
)

func fleetOf(n int, cycles, mem int64) []Target {
	ts := make([]Target, n)
	for i := range ts {
		ts[i] = Target{Name: string(rune('a' + i)), CyclesPerSec: cycles, MemWords: mem}
	}
	return ts
}

// TestFleetSingleTargetDegenerates pins the degenerate case the
// dispatcher relies on: a one-worker fleet is exactly today's
// whole-session placement — every node, inputs and outputs included,
// on target zero, so no cut edges exist and the partitioned session
// path reduces to the ordinary one.
func TestFleetSingleTargetDegenerates(t *testing.T) {
	g, r := compiledImageApp(t)
	a, err := FleetAssign(g, r, machine.Default(), fleetOf(1, 1, 1), 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumPEs != 1 {
		t.Fatalf("NumPEs = %d, want 1", a.NumPEs)
	}
	for _, n := range g.Nodes() {
		tgt, ok := a.PEOf[n]
		if !ok || tgt != 0 {
			t.Fatalf("node %q on target %d (assigned %v), want 0", n.Name(), tgt, ok)
		}
	}
}

// TestFleetInfeasibleMemoryTyped: a fleet whose targets cannot hold
// the graph's memory demand must fail with ErrInfeasible, not panic
// and not return a partial assignment.
func TestFleetInfeasibleMemoryTyped(t *testing.T) {
	g, r := compiledImageApp(t)
	m := machine.Default()
	var total int64
	for _, n := range g.Nodes() {
		total += r.LoadOf(n, m).MemWords
	}
	if total == 0 {
		t.Skip("app has no memory demand")
	}
	a, err := FleetAssign(g, r, m, fleetOf(3, m.PE.CyclesPerSec, 1), 42)
	if err == nil {
		t.Fatalf("tiny fleet accepted: %d targets", a.NumPEs)
	}
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("error %v is not tagged ErrInfeasible", err)
	}
}

// TestFleetAssignSound checks the structural guarantees on a real
// compiled application for 2- and 3-worker fleets: total coverage,
// memory budgets, dependence co-location, quotient acyclicity, and
// determinism per seed.
func TestFleetAssignSound(t *testing.T) {
	g, r := compiledImageApp(t)
	m := machine.Default()
	var totalCycles float64
	var totalMem int64
	for _, n := range g.Nodes() {
		l := r.LoadOf(n, m)
		totalCycles += l.CyclesPerSec
		totalMem += l.MemWords
	}
	for _, workers := range []int{2, 3} {
		ts := fleetOf(workers, int64(totalCycles)/int64(workers)+1, totalMem+1)
		a, err := FleetAssign(g, r, m, ts, 7)
		if err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
		for _, n := range g.Nodes() {
			tgt, ok := a.PEOf[n]
			if !ok || tgt < 0 || tgt >= workers {
				t.Fatalf("%d workers: node %q on target %d (assigned %v)", workers, n.Name(), tgt, ok)
			}
		}
		for _, d := range g.Deps() {
			if a.PEOf[d.From] != a.PEOf[d.To] {
				t.Errorf("%d workers: dependence %s -> %s cut across targets",
					workers, d.From.Name(), d.To.Name())
			}
		}
		mem := make([]int64, workers)
		for n, tgt := range a.PEOf {
			mem[tgt] += r.LoadOf(n, m).MemWords
		}
		for i, used := range mem {
			if used > ts[i].MemWords {
				t.Errorf("%d workers: target %d holds %d words, budget %d", workers, i, used, ts[i].MemWords)
			}
		}
		if cyc := quotientCycle(g, a); cyc {
			t.Errorf("%d workers: quotient graph has an inter-target cycle", workers)
		}
		b, err := FleetAssign(g, r, m, ts, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.PEOf, b.PEOf) {
			t.Errorf("%d workers: same seed produced different assignments", workers)
		}
	}
}

// quotientCycle detects an inter-target cycle over stream + dep edges.
func quotientCycle(g *graph.Graph, a *Assignment) bool {
	adj := make(map[int]map[int]bool)
	add := func(f, t int) {
		if f == t {
			return
		}
		if adj[f] == nil {
			adj[f] = make(map[int]bool)
		}
		adj[f][t] = true
	}
	for _, e := range g.Edges() {
		add(a.PEOf[e.From.Node()], a.PEOf[e.To.Node()])
	}
	for _, d := range g.Deps() {
		add(a.PEOf[d.From], a.PEOf[d.To])
	}
	color := make(map[int]int)
	var dfs func(int) bool
	dfs = func(v int) bool {
		color[v] = 1
		for w := range adj[v] {
			if color[w] == 1 {
				return true
			}
			if color[w] == 0 && dfs(w) {
				return true
			}
		}
		color[v] = 2
		return false
	}
	for v := range adj {
		if color[v] == 0 && dfs(v) {
			return true
		}
	}
	return false
}

// TestFleetCoLocatesFeedback: a feedback loop must never straddle a
// cut — the loop's nodes form one co-location group.
func TestFleetCoLocatesFeedback(t *testing.T) {
	g := graph.New("loop")
	in := g.AddInput("Input", geom.Sz(4, 1), geom.Sz(1, 1), geom.FInt(10))
	mk := func(name string, extraIn string) *graph.Node {
		n := graph.NewNode(name, graph.KindKernel)
		n.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
		if extraIn != "" {
			n.CreateInput(extraIn, geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
		}
		n.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
		n.RegisterMethod("run", 1, 1)
		n.RegisterMethodInput("run", "in")
		n.RegisterMethodOutput("run", "out")
		return g.Add(n)
	}
	pre := mk("pre", "")
	acc := mk("acc", "fb")
	post := mk("post", "")
	fb := graph.NewNode("fb", graph.KindFeedback)
	fb.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	fb.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	fb.RegisterMethod("pass", 1, 1)
	fb.RegisterMethodInput("pass", "in")
	fb.RegisterMethodOutput("pass", "out")
	g.Add(fb)
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", pre, "in")
	g.Connect(pre, "out", acc, "in")
	g.Connect(acc, "out", post, "in")
	g.Connect(post, "out", out, "in")
	// Loop: acc -> fb -> acc.
	g.Connect(acc, "out", fb, "in")
	g.Connect(fb, "out", acc, "fb")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	a, err := FleetAssign(g, &analysis.Result{}, machine.Default(), fleetOf(3, 1000, 1000), 99)
	if err != nil {
		t.Fatal(err)
	}
	if a.PEOf[acc] != a.PEOf[fb] {
		t.Errorf("feedback loop cut: acc on %d, fb on %d", a.PEOf[acc], a.PEOf[fb])
	}
}
