// Package sim is the timing simulator: a deterministic discrete-event
// simulation of a mapped application that accounts for kernel execution
// time, input/output access time, buffer transfer time, and PE
// scheduling — and, like the paper's simulator, deliberately not
// placement or communication delays ("a reasonable simplification for a
// throughput-based application", §IV-D).
//
// The simulation is value-free: items carry only their shape (token or
// data, word count), and each node runs a count-only automaton that
// mirrors the functional runtime's firing rules — the generic
// method-trigger rules for ordinary kernels and the plan-driven FSMs
// for buffers, splits, joins, insets, and pads. The functional runtime
// (internal/runtime) verifies values; the simulator verifies time.
package sim

import (
	"fmt"

	"blockpar/internal/token"
)

// item is a value-free stream element.
type item struct {
	isTok bool
	tok   token.Token
	words int64
}

func dataItem(words int64) item { return item{words: words} }

func tokenItem(t token.Token) item { return item{isTok: true, tok: t, words: 1} }

func (it item) String() string {
	if it.isTok {
		return it.tok.String()
	}
	return fmt.Sprintf("data[%dw]", it.words)
}

// queue is a bounded FIFO on one input port.
type queue struct {
	items []item
	cap   int
}

func (q *queue) len() int { return len(q.items) }

func (q *queue) space() int { return q.cap - len(q.items) }

func (q *queue) head() (item, bool) {
	if len(q.items) == 0 {
		return item{}, false
	}
	return q.items[0], true
}

func (q *queue) push(it item) {
	if q.space() <= 0 {
		panic("sim: queue overflow (space must be checked before push)")
	}
	q.items = append(q.items, it)
}

func (q *queue) pop() item {
	it := q.items[0]
	q.items = q.items[1:]
	return it
}

// firing is one schedulable unit of work on a node: the items it will
// consume from each input (in FIFO order from the head) and produce on
// each output, plus its compute cycles. Read/write costs are derived
// from the consumed/produced words by the engine.
type firing struct {
	label   string
	consume map[string]int
	produce map[string][]item
	cycles  int64
	// exceeded marks a dynamic invocation whose actual cost hit its
	// declared bound: the engine records a resource exception (§VII).
	exceeded bool
	// readWordsCache is filled by the engine while the consumed heads
	// are still queued.
	readWordsCache int64
}

func (f *firing) readWords(qs map[string]*queue) int64 {
	var w int64
	for in, cnt := range f.consume {
		for i := 0; i < cnt; i++ {
			w += qs[in].items[i].words
		}
	}
	return w
}

func (f *firing) writeWords() int64 {
	var w int64
	for _, items := range f.produce {
		for _, it := range items {
			w += it.words
		}
	}
	return w
}

// automaton decides a node's next firing from its input queue heads.
// Implementations must be pure with respect to the queues (no
// mutation); state advances in commit, called when the engine starts
// the firing.
type automaton interface {
	// next returns the next firing, or nil if the node cannot fire.
	next(qs map[string]*queue) *firing
	// commit informs the automaton its proposed firing was started.
	commit(f *firing)
}
