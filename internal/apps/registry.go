package apps

import (
	"fmt"
	"sort"
)

// ByID returns the suite benchmark with the given Figure 13 label
// (1, 1F, 2, 2F, 3, 4, SS, SF, BS, BF, 5). Each call builds a fresh
// graph.
func ByID(id string) (*App, error) {
	for _, b := range Figure13Suite() {
		if b.ID == id {
			return b.App, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown benchmark %q (have %v)", id, IDs())
}

// IDs lists the suite labels in order.
func IDs() []string {
	var out []string
	for _, b := range Figure13Suite() {
		out = append(out, b.ID)
	}
	return out
}

// Names lists application names across the suite, sorted.
func Names() []string {
	var out []string
	for _, b := range Figure13Suite() {
		out = append(out, b.App.Name)
	}
	sort.Strings(out)
	return out
}
