package analysis

import (
	"fmt"

	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/token"
)

// visitKernel applies the generic rules of §III-A to a programmer
// kernel: each data method's iteration grid comes from sliding (or
// item-counting) its trigger inputs; token methods fire at token rates;
// outputs produce one item per invocation of their method.
func (a *analyzer) visitKernel(n *graph.Node) {
	in := a.arriving(n)
	ni := NodeInfo{Methods: map[string]MethodInfo{}, MemoryWords: n.Memory()}

	for _, m := range n.Methods() {
		mi, ok, flat := a.methodInfo(n, m, in)
		if !ok {
			continue
		}
		ni.Methods[m.Name] = mi
		// Dynamic methods are budgeted at their declared worst case
		// (§VII extension).
		ni.CyclesPerFrame += mi.Invocations() * m.AllocCycles()
		ni.ReadWordsPerFrame += mi.ReadWords
		ni.WriteWordsPerFrame += mi.WriteWords
		if isPrimaryDataMethod(n, m) {
			ni.IterX, ni.IterY = mi.IterX, mi.IterY
			ni.Rate = mi.Rate
		}
		if ni.Rate.IsZero() {
			ni.Rate = mi.Rate
		}

		// Publish output port info.
		for _, outName := range m.Outputs {
			op := n.Output(outName)
			inset, insetOK := a.methodOutputInset(n, m, in)
			items := geom.Sz(int(mi.IterX), int(mi.IterY))
			info := PortInfo{
				Region:   geom.Sz(items.W*op.Size.W, items.H*op.Size.H),
				Items:    items,
				ItemSize: op.Size,
				Rate:     mi.Rate,
				Flat:     flat,
			}
			if insetOK {
				info.Inset = inset
			}
			a.r.Out[op] = info
		}
	}
	a.r.Nodes[n] = ni
}

// isPrimaryDataMethod picks the method whose iteration grid defines the
// node's iteration size: the first method with a non-replicated data
// trigger.
func isPrimaryDataMethod(n *graph.Node, m *graph.Method) bool {
	for _, t := range m.DataTriggers() {
		p := n.Input(t.Input)
		if p != nil && !p.Replicated {
			// It must be the first such method.
			for _, other := range n.Methods() {
				if other == m {
					return true
				}
				for _, ot := range other.DataTriggers() {
					op := n.Input(ot.Input)
					if op != nil && !op.Replicated {
						return false
					}
				}
			}
		}
	}
	return false
}

// methodInfo computes a method's iteration grid, rate, and IO words.
func (a *analyzer) methodInfo(n *graph.Node, m *graph.Method, in map[string]PortInfo) (MethodInfo, bool, bool) {
	var mi MethodInfo
	resolved := false
	flat := false

	for _, t := range m.Triggers {
		info, ok := in[t.Input]
		if !ok {
			return mi, false, flat // unresolved input (feedback first pass)
		}
		p := n.Input(t.Input)
		var ix, iy int64
		switch {
		case !t.IsData():
			// Token-triggered: EOF once per frame, EOL once per item
			// row, custom at its declared per-frame rate.
			switch t.Token {
			case token.EndOfFrame:
				ix, iy = 1, 1
			case token.EndOfLine:
				ix, iy = 1, int64(info.Items.H)
			case token.Custom:
				ix, iy = a.customTokenRate(t.TokenName), 1
			}
			mi.ReadWords += ix * iy // token costs one word
		case info.ItemSize == p.Size:
			// Item-aligned: one item per iteration.
			ix, iy = int64(info.Items.W), int64(info.Items.H)
			mi.ReadWords += ix * iy * int64(p.Size.Area())
		case info.ItemSize == geom.Sz(1, 1) && p.Size != geom.Sz(1, 1):
			// Windowed access over a raw sample stream: iteration grid
			// slides the window over the region; flag for buffering.
			nx, ny := geom.Iterations(info.Region, p.Size, p.Step)
			ix, iy = int64(nx), int64(ny)
			mi.ReadWords += ix * iy * int64(p.Size.Area())
			a.problem(Problem{
				Kind: NeedsBuffer, Node: n, Method: m.Name,
				Edge: a.g.EdgeTo(p),
				Note: fmt.Sprintf("window %v%v over %v samples", p.Size, p.Step, info.Region),
			})
		default:
			a.problem(Problem{
				Kind: Incompatible, Node: n, Method: m.Name,
				Edge: a.g.EdgeTo(p),
				Note: fmt.Sprintf("items of %v cannot feed window %v", info.ItemSize, p.Size),
			})
			continue
		}

		if info.Flat {
			flat = true
		}
		if !resolved {
			mi.IterX, mi.IterY, mi.Rate = ix, iy, info.Rate
			resolved = true
			continue
		}
		// Subsequent triggers must agree: on the exact grid for 2-D
		// streams, on the total for flattened (round-robin) streams.
		gridMismatch := ix != mi.IterX || iy != mi.IterY
		if flat || info.Flat {
			gridMismatch = ix*iy != mi.IterX*mi.IterY
		}
		if t.IsData() && gridMismatch {
			a.problem(Problem{
				Kind: Misaligned, Node: n, Method: m.Name,
				Note: fmt.Sprintf("iteration grids differ: %dx%d vs %dx%d", mi.IterX, mi.IterY, ix, iy),
			})
		}
		if !info.Rate.Equal(mi.Rate) && !info.Rate.IsZero() && !mi.Rate.IsZero() {
			a.problem(Problem{
				Kind: RateMismatch, Node: n, Method: m.Name,
				Note: fmt.Sprintf("rates differ: %v vs %v", mi.Rate, info.Rate),
			})
		}
	}
	if !resolved {
		return mi, false, flat
	}

	// Inset agreement across data triggers (per §III-C, detected here,
	// fixed by the alignment transformation). Flattened streams carry
	// no usable inset.
	if !flat {
		a.checkInsetAgreement(n, m, in)
	}

	for _, outName := range m.Outputs {
		op := n.Output(outName)
		mi.WriteWords += mi.Invocations() * int64(op.Size.Area())
	}
	return mi, true, flat
}

// checkInsetAgreement flags methods whose data inputs' aligned insets
// disagree (e.g. the subtract kernel fed by differently-haloed
// filters, Figure 8).
func (a *analyzer) checkInsetAgreement(n *graph.Node, m *graph.Method, in map[string]PortInfo) {
	var have bool
	var ref geom.Offset
	for _, t := range m.DataTriggers() {
		p := n.Input(t.Input)
		if p == nil || p.Replicated {
			continue
		}
		info, ok := in[t.Input]
		if !ok {
			continue
		}
		aligned := info.Inset.Add(p.Offset)
		if !have {
			ref, have = aligned, true
			continue
		}
		if !aligned.Equal(ref) {
			a.problem(Problem{
				Kind: Misaligned, Node: n, Method: m.Name,
				Note: fmt.Sprintf("insets differ: %v vs %v", ref, aligned),
			})
			return
		}
	}
}

// methodOutputInset computes the output inset: input inset plus the
// input's declared offset (§III-C), from the method's first
// non-replicated data trigger.
func (a *analyzer) methodOutputInset(n *graph.Node, m *graph.Method, in map[string]PortInfo) (geom.Offset, bool) {
	for _, t := range m.DataTriggers() {
		p := n.Input(t.Input)
		if p == nil || p.Replicated {
			continue
		}
		info, ok := in[t.Input]
		if !ok {
			continue
		}
		return info.Inset.Add(p.Offset), true
	}
	// Token-only methods (e.g. finishCount) anchor to the node's first
	// data input if any.
	for _, t := range m.Triggers {
		info, ok := in[t.Input]
		if ok {
			return info.Inset, true
		}
	}
	return geom.Offset{}, false
}

// customTokenRate returns the declared per-frame bound for a custom
// token, defaulting to 1.
func (a *analyzer) customTokenRate(name string) int64 {
	for _, n := range a.g.Nodes() {
		if r, ok := n.TokenRates[name]; ok {
			v := r.Ceil()
			if v < 1 {
				v = 1
			}
			return v
		}
	}
	return 1
}
