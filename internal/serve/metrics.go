package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencySamples bounds the per-pipeline latency reservoir: a ring of
// the most recent frame latencies, enough for stable p50/p99 without
// unbounded growth.
const latencySamples = 1024

// latencyRing records recent frame latencies for one pipeline.
type latencyRing struct {
	mu      sync.Mutex
	samples [latencySamples]time.Duration
	next    int
	filled  int
	count   int64
}

func (l *latencyRing) add(d time.Duration) {
	l.mu.Lock()
	l.samples[l.next] = d
	l.next = (l.next + 1) % latencySamples
	if l.filled < latencySamples {
		l.filled++
	}
	l.count++
	l.mu.Unlock()
}

// quantiles returns the p50 and p99 of the recorded window, plus the
// total number of frames measured.
func (l *latencyRing) quantiles() (p50, p99 time.Duration, count int64) {
	l.mu.Lock()
	buf := make([]time.Duration, l.filled)
	copy(buf, l.samples[:l.filled])
	count = l.count
	l.mu.Unlock()
	if len(buf) == 0 {
		return 0, 0, count
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	q := func(p float64) time.Duration {
		i := int(p * float64(len(buf)-1))
		return buf[i]
	}
	return q(0.50), q(0.99), count
}

// metrics is the server's counter set, exposed by /metrics.
type metrics struct {
	framesIn       atomic.Int64
	framesOut      atomic.Int64
	rejected       atomic.Int64
	shed           atomic.Int64
	sessionsOpened atomic.Int64
	sessionsClosed atomic.Int64
	panics         atomic.Int64
	sessionErrors  atomic.Int64

	mu      sync.Mutex
	latency map[string]*latencyRing
}

func newMetrics() *metrics {
	return &metrics{latency: make(map[string]*latencyRing)}
}

func (m *metrics) latencyFor(pipeline string) *latencyRing {
	m.mu.Lock()
	defer m.mu.Unlock()
	l := m.latency[pipeline]
	if l == nil {
		l = &latencyRing{}
		m.latency[pipeline] = l
	}
	return l
}

// pipelineLatency is the JSON shape of one pipeline's latency summary.
type pipelineLatency struct {
	Frames int64   `json:"frames"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

func (m *metrics) latencySnapshot() map[string]pipelineLatency {
	m.mu.Lock()
	rings := make(map[string]*latencyRing, len(m.latency))
	for k, v := range m.latency {
		rings[k] = v
	}
	m.mu.Unlock()
	out := make(map[string]pipelineLatency, len(rings))
	for k, l := range rings {
		p50, p99, count := l.quantiles()
		out[k] = pipelineLatency{
			Frames: count,
			P50Ms:  float64(p50) / float64(time.Millisecond),
			P99Ms:  float64(p99) / float64(time.Millisecond),
		}
	}
	return out
}
