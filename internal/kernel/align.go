package kernel

import (
	"fmt"

	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/token"
)

// Inset builds the trim kernel inserted by the alignment pass (paper
// §III-C, the "inverted house" of Figure 3): it discards plan.L/R
// columns and plan.T/B rows of its item grid so two differently-haloed
// streams line up. Row structure is regenerated: end-of-line is emitted
// after the last kept item of each kept row, end-of-frame forwarded.
func Inset(name string, plan InsetPlan, item geom.Size) *graph.Node {
	if plan.OutW() < 1 || plan.OutH() < 1 {
		panic(fmt.Sprintf("kernel: inset %+v trims everything", plan))
	}
	n := graph.NewNode(name, graph.KindInset)
	n.CreateInput("in", item, geom.St(item.W, item.H), geom.Off(0, 0))
	n.CreateOutput("out", item, geom.St(item.W, item.H))
	n.RegisterMethod("inset", fsmPerItem, 4)
	n.RegisterMethodInput("inset", "in")
	n.RegisterMethodOutput("inset", "out")
	n.Attrs["label"] = plan.Label()
	n.Behavior = &insetBehavior{plan: plan}
	return n
}

type insetBehavior struct {
	plan BufferlessPlan
	x, y int
	row  int64
}

// BufferlessPlan is the interface shared by inset plans; declared to
// keep insetBehavior testable with alternative plans.
type BufferlessPlan interface {
	Keep(x, y int) (keep, rowEnd bool)
}

func (b *insetBehavior) Clone() graph.Behavior {
	return &insetBehavior{plan: b.plan}
}

func (b *insetBehavior) Run(ctx graph.RunContext) error {
	for {
		it, ok := ctx.Recv("in")
		if !ok {
			return nil
		}
		if it.IsToken {
			switch it.Tok.Kind {
			case token.EndOfLine:
				b.x = 0
				b.y++
			case token.EndOfFrame:
				b.x, b.y, b.row = 0, 0, 0
				ctx.Send("out", it)
			default:
				ctx.Send("out", it)
			}
			continue
		}
		keep, rowEnd := b.plan.Keep(b.x, b.y)
		if keep {
			ctx.Send("out", it)
			if rowEnd {
				ctx.Send("out", graph.TokenItem(token.EOL(b.row)))
				b.row++
			}
		} else {
			// Trimmed: this kernel was the item's only consumer.
			it.Win.Release()
		}
		b.x++
	}
}

// InsetPlanOf exposes the plan of an Inset node.
func InsetPlanOf(n *graph.Node) (InsetPlan, bool) {
	b, ok := n.Behavior.(*insetBehavior)
	if !ok {
		return InsetPlan{}, false
	}
	p, ok := b.plan.(InsetPlan)
	return p, ok
}

// Pad builds the zero-padding kernel, the alignment pass's alternative
// to trimming (§III-C: "the compiler can either pad evenly around the
// input to the convolution filter ... or trim"). It works on 1×1 sample
// streams: plan.T full zero rows first, then each input row wrapped in
// plan.L and plan.R zeros, then plan.B zero rows, with regenerated
// end-of-line structure.
func Pad(name string, plan PadPlan) *graph.Node {
	n := graph.NewNode(name, graph.KindPad)
	n.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	n.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	n.RegisterMethod("pad", fsmPerItem, 4)
	n.RegisterMethodInput("pad", "in")
	n.RegisterMethodOutput("pad", "out")
	n.Attrs["label"] = plan.Label()
	n.Behavior = &padBehavior{plan: plan}
	return n
}

type padBehavior struct {
	plan    PadPlan
	x, y    int
	row     int64
	topDone bool
}

func (b *padBehavior) Clone() graph.Behavior { return &padBehavior{plan: b.plan} }

// PadPlanOf exposes the plan of a Pad node.
func PadPlanOf(n *graph.Node) (PadPlan, bool) {
	b, ok := n.Behavior.(*padBehavior)
	if !ok {
		return PadPlan{}, false
	}
	return b.plan, true
}

func (b *padBehavior) emitZeroRow(ctx graph.RunContext) {
	for i := 0; i < b.plan.OutW(); i++ {
		ctx.Send("out", graph.DataItem(frame.PooledScalar(0)))
	}
	ctx.Send("out", graph.TokenItem(token.EOL(b.row)))
	b.row++
}

func (b *padBehavior) Run(ctx graph.RunContext) error {
	p := b.plan
	for {
		it, ok := ctx.Recv("in")
		if !ok {
			return nil
		}
		if it.IsToken {
			switch it.Tok.Kind {
			case token.EndOfLine:
				if b.x != p.InW {
					return fmt.Errorf("kernel: pad %q EOL after %d of %d samples",
						ctx.Node().Name(), b.x, p.InW)
				}
				for i := 0; i < p.R; i++ {
					ctx.Send("out", graph.DataItem(frame.PooledScalar(0)))
				}
				ctx.Send("out", graph.TokenItem(token.EOL(b.row)))
				b.row++
				b.x = 0
				b.y++
			case token.EndOfFrame:
				for i := 0; i < p.B; i++ {
					b.emitZeroRow(ctx)
				}
				ctx.Send("out", it)
				b.x, b.y, b.row, b.topDone = 0, 0, 0, false
			default:
				ctx.Send("out", it)
			}
			continue
		}
		if !b.topDone {
			for i := 0; i < p.T; i++ {
				b.emitZeroRow(ctx)
			}
			b.topDone = true
		}
		if b.x == 0 {
			for i := 0; i < p.L; i++ {
				ctx.Send("out", graph.DataItem(frame.PooledScalar(0)))
			}
		}
		ctx.Send("out", it)
		b.x++
	}
}
