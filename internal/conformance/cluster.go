package conformance

import (
	"fmt"

	"blockpar/internal/cluster"
	"blockpar/internal/core"
	"blockpar/internal/frame"
	"blockpar/internal/machine"
	"blockpar/internal/serve"
)

// checkCluster streams the case through the full distributed path — a
// dispatcher, the TCP wire codec, and a loopback worker session — and
// compares every frame with the oracle. The exact compiled variant
// under test is registered directly (AddCompiled), so the worker
// executes the same transformed graph the other backends diffed; the
// wire round trip must not perturb a single bit.
func checkCluster(compiled *core.Compiled, sources map[string]frame.Generator,
	want []map[string][]frame.Window) error {

	reg := serve.NewRegistry(machine.Embedded())
	p, err := reg.AddCompiled("case", "case", compiled, sources)
	if err != nil {
		return err
	}
	w := cluster.NewWorker(reg, cluster.WorkerOptions{Name: "conformance"})
	d, stop, err := cluster.Loopback(w, cluster.DispatcherOptions{})
	if err != nil {
		return err
	}
	defer stop()

	h, err := d.Open(p, serve.OpenOptions{MaxInFlight: len(want)})
	if err != nil {
		return err
	}
	defer h.Close()
	for f := range want {
		if _, err := h.TryFeed(nil); err != nil {
			return fmt.Errorf("feed %d: %w", f, err)
		}
	}
	outputs := compiled.Graph.Outputs()
	for f := range want {
		res, err := h.Collect(execTimeout)
		if err != nil {
			return fmt.Errorf("collect %d: %w", f, err)
		}
		if res.Seq != int64(f) {
			return fmt.Errorf("collected frame %d, want %d", res.Seq, f)
		}
		cmpErr := func() error {
			for _, out := range outputs {
				name := out.Name()
				if err := compareWindows(res.Outputs[name], want[f][name]); err != nil {
					return fmt.Errorf("output %q frame %d: %w", name, f, err)
				}
			}
			return nil
		}()
		for _, ws := range res.Outputs {
			for _, w := range ws {
				w.Release()
			}
		}
		if cmpErr != nil {
			return cmpErr
		}
	}
	if err := h.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	return nil
}

// checkRegistered streams the case through a self-registered fleet:
// two frontends, each with its own registration listener and
// ring-following dispatcher, sharing three workers that dialed in and
// registered themselves — the bpserve -registry / bpworker -join
// topology. Both frontends must agree on keyed placement without
// talking to each other, and the stream through either must match the
// oracle bit for bit.
func checkRegistered(compiled *core.Compiled, sources map[string]frame.Generator,
	want []map[string][]frame.Window) error {

	c, err := cluster.StartRegisteredCluster(2, 3, cluster.RegisteredClusterConfig{
		MakeWorker: func(i int) *cluster.Worker {
			reg := serve.NewRegistry(machine.Embedded())
			// Each worker registers the same compiled template; sessions
			// clone it, so sharing across registries is safe.
			if _, err := reg.AddCompiled("case", "case", compiled, sources); err != nil {
				panic(err)
			}
			return cluster.NewWorker(reg, cluster.WorkerOptions{Name: fmt.Sprintf("reg-w%d", i)})
		},
	})
	if err != nil {
		return err
	}
	defer c.Close()

	// Placement agreement is the point of the ring: frontends that have
	// never exchanged a byte must rank the fleet identically.
	const key = "case"
	a, b := c.Dispatchers[0].PlacementFor(key), c.Dispatchers[1].PlacementFor(key)
	if len(a) != len(b) {
		return fmt.Errorf("registered: frontends see %d vs %d ring members", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("registered: frontends disagree on placement: %v vs %v", a, b)
		}
	}

	reg := serve.NewRegistry(machine.Embedded())
	p, err := reg.AddCompiled("case", "case", compiled, sources)
	if err != nil {
		return err
	}
	for fe, d := range c.Dispatchers {
		if err := streamConformance(d, p, compiled, serve.OpenOptions{MaxInFlight: len(want), Key: key}, want); err != nil {
			return fmt.Errorf("frontend %d: %w", fe, err)
		}
	}
	return nil
}

// streamConformance feeds every frame through one session on d and
// compares each collected frame with the oracle golden.
func streamConformance(d *cluster.Dispatcher, p *serve.Pipeline, compiled *core.Compiled,
	opts serve.OpenOptions, want []map[string][]frame.Window) error {

	h, err := d.Open(p, opts)
	if err != nil {
		return err
	}
	defer h.Close()
	for f := range want {
		if _, err := h.TryFeed(nil); err != nil {
			return fmt.Errorf("feed %d: %w", f, err)
		}
	}
	outputs := compiled.Graph.Outputs()
	for f := range want {
		res, err := h.Collect(execTimeout)
		if err != nil {
			return fmt.Errorf("collect %d: %w", f, err)
		}
		if res.Seq != int64(f) {
			return fmt.Errorf("collected frame %d, want %d", res.Seq, f)
		}
		cmpErr := func() error {
			for _, out := range outputs {
				name := out.Name()
				if err := compareWindows(res.Outputs[name], want[f][name]); err != nil {
					return fmt.Errorf("output %q frame %d: %w", name, f, err)
				}
			}
			return nil
		}()
		for _, ws := range res.Outputs {
			for _, w := range ws {
				w.Release()
			}
		}
		if cmpErr != nil {
			return cmpErr
		}
	}
	if err := h.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	return nil
}

// checkPartitioned streams the case through partitioned sessions: the
// compiled graph is split by the placement layer across a 2-worker and
// then a 3-worker fleet, with cut-edge traffic relayed through the
// dispatcher, and every frame must still match the oracle bit for bit.
// Small cases whose placement collapses to one partition run whole —
// that fallback is part of the contract and stays under test.
func checkPartitioned(compiled *core.Compiled, sources map[string]frame.Generator,
	want []map[string][]frame.Window) error {

	for _, workers := range []int{2, 3} {
		if err := checkPartitionedFleet(compiled, sources, want, workers); err != nil {
			return fmt.Errorf("%d workers: %w", workers, err)
		}
	}
	return nil
}

func checkPartitionedFleet(compiled *core.Compiled, sources map[string]frame.Generator,
	want []map[string][]frame.Window, workers int) error {

	d, _, stop, err := cluster.LoopbackFleet(workers, cluster.DispatcherOptions{Partitions: workers},
		func(i int) *cluster.Worker {
			reg := serve.NewRegistry(machine.Embedded())
			// Each worker registers the same compiled template; sessions
			// clone it, so sharing across registries is safe.
			if _, err := reg.AddCompiled("case", "case", compiled, sources); err != nil {
				panic(err)
			}
			return cluster.NewWorker(reg, cluster.WorkerOptions{Name: fmt.Sprintf("conformance%d", i)})
		})
	if err != nil {
		return err
	}
	defer stop()

	reg := serve.NewRegistry(machine.Embedded())
	p, err := reg.AddCompiled("case", "case", compiled, sources)
	if err != nil {
		return err
	}
	h, err := d.Open(p, serve.OpenOptions{MaxInFlight: len(want)})
	if err != nil {
		return err
	}
	defer h.Close()
	for f := range want {
		if _, err := h.TryFeed(nil); err != nil {
			return fmt.Errorf("feed %d: %w", f, err)
		}
	}
	outputs := compiled.Graph.Outputs()
	for f := range want {
		res, err := h.Collect(execTimeout)
		if err != nil {
			return fmt.Errorf("collect %d: %w", f, err)
		}
		if res.Seq != int64(f) {
			return fmt.Errorf("collected frame %d, want %d", res.Seq, f)
		}
		cmpErr := func() error {
			for _, out := range outputs {
				name := out.Name()
				if err := compareWindows(res.Outputs[name], want[f][name]); err != nil {
					return fmt.Errorf("output %q frame %d: %w", name, f, err)
				}
			}
			return nil
		}()
		for _, ws := range res.Outputs {
			for _, w := range ws {
				w.Release()
			}
		}
		if cmpErr != nil {
			return cmpErr
		}
	}
	if err := h.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	return nil
}
