// Package conn defines the generalized connection families that extend
// the paper's point-to-point FIFO dialect (Liu, Barford & Bhattacharyya,
// "Generalized Graph Connections for Dataflow Modeling of DSP
// Applications"): broadcast (one producer, N consumers, one arena
// reference each), scatter-gather (a strided round-robin distribution to
// N branches with an order-preserving collection), and windowed sharing
// (N consumers reading overlapping sliding views of one shared ring).
//
// The package holds the connection-family vocabulary and the strided
// distribution schedule shared by the kernel behaviors, the static
// analysis, the conformance oracle, and the descriptor front-end, so all
// four agree on one definition of which item goes to which branch.
package conn

import "fmt"

// Family classifies a generalized connection.
type Family int

const (
	// Broadcast fans one output port out to N consumer inputs; every
	// consumer sees the whole stream (zero copies — one retained arena
	// reference per consumer).
	Broadcast Family = iota
	// Scatter distributes a stream across N branches on a strided
	// round-robin schedule (stride 1 is the classic round-robin split).
	Scatter
	// Gather collects N branch streams back into one on the same strided
	// schedule; paired with an equal-schedule scatter it restores the
	// original stream order.
	Gather
	// Share gives N windowed consumers overlapping sliding views of one
	// shared ring buffer instead of a private buffer each.
	Share
)

var familyNames = map[Family]string{
	Broadcast: "broadcast",
	Scatter:   "scatter",
	Gather:    "gather",
	Share:     "share",
}

func (f Family) String() string {
	if s, ok := familyNames[f]; ok {
		return s
	}
	return fmt.Sprintf("Family(%d)", int(f))
}

// ParseFamily maps a descriptor-level family name back to its Family.
func ParseFamily(s string) (Family, error) {
	for f, name := range familyNames {
		if name == s {
			return f, nil
		}
	}
	return 0, fmt.Errorf("conn: unknown connection family %q", s)
}

// Bounds on descriptor-supplied schedules, matching the desc front-end's
// other resource limits.
const (
	MaxWays   = 64
	MaxStride = 4096
)

// Schedule is a strided round-robin distribution: items are dealt to
// branch 0, 0, ... (Stride times), then branch 1, and so on, wrapping
// after Ways branches. Stride 1 degenerates to the plain round-robin
// schedule of the compiler's split/join pair.
type Schedule struct {
	Ways   int
	Stride int
}

// Validate checks the schedule against the front-end bounds.
func (s Schedule) Validate() error {
	if s.Ways < 1 || s.Ways > MaxWays {
		return fmt.Errorf("conn: ways %d out of range [1,%d]", s.Ways, MaxWays)
	}
	if s.Stride < 1 || s.Stride > MaxStride {
		return fmt.Errorf("conn: stride %d out of range [1,%d]", s.Stride, MaxStride)
	}
	return nil
}

// Cycle returns the schedule period: Ways·Stride items.
func (s Schedule) Cycle() int { return s.Ways * s.Stride }

// BranchOf returns which branch receives the j-th item of the stream.
func (s Schedule) BranchOf(j int64) int {
	return int((j / int64(s.Stride)) % int64(s.Ways))
}

// GlobalIndex is the inverse of BranchOf's bookkeeping: the stream
// position of a branch's local-th item.
func (s Schedule) GlobalIndex(branch int, local int64) int64 {
	c := local / int64(s.Stride)
	r := local % int64(s.Stride)
	return c*int64(s.Cycle()) + int64(branch*s.Stride) + r
}

// Counts returns how many of total items each branch receives.
func (s Schedule) Counts(total int64) []int64 {
	counts := make([]int64, s.Ways)
	cycle := int64(s.Cycle())
	full := total / cycle
	rem := total % cycle
	for b := range counts {
		counts[b] = full * int64(s.Stride)
		extra := rem - int64(b*s.Stride)
		if extra > int64(s.Stride) {
			extra = int64(s.Stride)
		}
		if extra > 0 {
			counts[b] += extra
		}
	}
	return counts
}

// DividesRow reports whether a row of nx items splits into whole
// schedule cycles, i.e. every branch receives exactly nx/Ways items per
// row and the end-of-line token lands on a cycle boundary at every
// branch. The static analysis requires this of scatter inputs so branch
// streams keep a rectangular row structure.
func (s Schedule) DividesRow(nx int) bool {
	return nx > 0 && nx%s.Cycle() == 0
}
