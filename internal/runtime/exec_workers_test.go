package runtime

import (
	"strings"
	"testing"
	"time"

	"blockpar/internal/apps"
	"blockpar/internal/core"
	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
)

// runApp compiles a fresh copy of the suite app and runs it with the
// given executor. Each call compiles anew because behaviors carry
// per-run state.
func runApp(t *testing.T, id string, frames int, exec ExecutorKind, workers int) *Result {
	t.Helper()
	app, err := apps.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Compile(app.Graph, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c.Graph, Options{
		Frames:   frames,
		Sources:  app.Sources,
		Executor: exec,
		Workers:  workers,
	})
	if err != nil {
		t.Fatalf("run %q with executor %q: %v", id, exec, err)
	}
	return res
}

// TestWorkersMatchGoroutines is the correctness bar for the worker-pool
// engine: for a spread of suite apps and pool widths, every output
// window and every firing count must match the per-node goroutine
// engine exactly.
func TestWorkersMatchGoroutines(t *testing.T) {
	const frames = 3
	for _, id := range []string{"1", "2", "3", "4", "5"} {
		for _, workers := range []int{1, 2, 0} { // 0 = GOMAXPROCS default
			id, workers := id, workers
			t.Run(id, func(t *testing.T) {
				want := runApp(t, id, frames, ExecGoroutines, 0)
				got := runApp(t, id, frames, ExecWorkers, workers)

				for name, outs := range want.Outputs {
					g, ok := got.Outputs[name]
					if !ok {
						t.Fatalf("workers=%d: output %q missing", workers, name)
					}
					if len(g) != len(outs) {
						t.Fatalf("workers=%d: output %q has %d items, want %d",
							workers, name, len(g), len(outs))
					}
					for i := range outs {
						if g[i].IsToken != outs[i].IsToken {
							t.Fatalf("workers=%d: output %q item %d token mismatch",
								workers, name, i)
						}
						if !g[i].IsToken && !g[i].Win.Equal(outs[i].Win) {
							t.Fatalf("workers=%d: output %q item %d differs",
								workers, name, i)
						}
					}
				}
				for node, methods := range want.Firings {
					for m, n := range methods {
						if got.Firings[node][m] != n {
							t.Fatalf("workers=%d: firings[%s][%s] = %d, want %d",
								workers, node, m, got.Firings[node][m], n)
						}
					}
				}
			})
		}
	}
}

// TestWorkersSessionMatchesBatch streams frames through a worker-pool
// session and checks each against the worker-pool batch run.
func TestWorkersSessionMatchesBatch(t *testing.T) {
	const frames = 3
	for _, id := range []string{"1", "5"} {
		id := id
		t.Run(id, func(t *testing.T) {
			batch := runApp(t, id, frames, ExecWorkers, 2)

			app, err := apps.ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			c, err := core.Compile(app.Graph, core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			sess, err := NewSession(c.Graph, SessionOptions{
				Sources:  app.Sources,
				Executor: ExecWorkers,
				Workers:  2,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()

			for f := 0; f < frames; f++ {
				if _, err := sess.Feed(nil); err != nil {
					t.Fatalf("feed frame %d: %v", f, err)
				}
				res, err := sess.Collect(10 * time.Second)
				if err != nil {
					t.Fatalf("collect frame %d: %v", f, err)
				}
				for _, out := range c.Graph.Outputs() {
					want := batch.FrameSlices(out.Name())[f]
					got := res.Outputs[out.Name()]
					if len(got) != len(want) {
						t.Fatalf("output %q frame %d: %d windows, want %d",
							out.Name(), f, len(got), len(want))
					}
					for i := range want {
						if !got[i].Equal(want[i]) {
							t.Fatalf("output %q frame %d window %d differs",
								out.Name(), f, i)
						}
					}
				}
			}
		})
	}
}

// TestWorkersFeedback runs the feedback accumulator on the worker pool:
// the cycle exercises the Runner-on-goroutine / Invoker-on-pool split.
func TestWorkersFeedback(t *testing.T) {
	build := func() *graph.Graph {
		g := graph.New("fb")
		in := g.AddInput("Input", geom.Sz(6, 1), geom.Sz(1, 1), geom.FInt(10))
		acc := g.Add(kernel.Accumulator("Acc"))
		fb := g.Add(kernel.Feedback("FB", geom.Sz(1, 1), []frame.Window{frame.Scalar(0)}))
		out := g.AddOutput("Output", geom.Sz(1, 1))
		g.Connect(in, "out", acc, "in")
		g.Connect(fb, "out", acc, "state")
		g.Connect(acc, "loop", fb, "in")
		g.Connect(acc, "out", out, "in")
		return g
	}
	src := map[string]frame.Generator{
		"Input": func(seq int64, w, h int) frame.Window {
			f := frame.NewWindow(w, h)
			for i := range f.Pix {
				f.Pix[i] = float64(i + 1)
			}
			return f
		},
	}
	run := func(exec ExecutorKind) *Result {
		res, err := Run(build(), Options{Frames: 2, Sources: src, Executor: exec})
		if err != nil {
			t.Fatalf("executor %q: %v", exec, err)
		}
		return res
	}
	want := run(ExecGoroutines).DataWindows("Output")
	got := run(ExecWorkers).DataWindows("Output")
	if len(got) != len(want) {
		t.Fatalf("got %d windows, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("window %d = %v, want %v", i, got[i].Value(), want[i].Value())
		}
	}
}

// TestWorkersSessionPanicRecovery checks a panicking kernel running on
// a pool worker surfaces as a session error instead of crashing the
// process.
func TestWorkersSessionPanicRecovery(t *testing.T) {
	g := graph.New("boom")
	g.AddInput("Input", geom.Sz(4, 2), geom.Sz(1, 1), geom.FInt(50))
	n := graph.NewNode("Boom", graph.KindKernel)
	n.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	n.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	n.RegisterMethod("run", 1, 0)
	n.RegisterMethodInput("run", "in")
	n.RegisterMethodOutput("run", "out")
	n.Behavior = panicBehavior{}
	g.Add(n)
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(g.Node("Input"), "out", n, "in")
	g.Connect(n, "out", out, "in")

	sess, err := NewSession(g, SessionOptions{Executor: ExecWorkers, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Feed(nil); err != nil {
		t.Fatalf("feed: %v", err)
	}
	_, err = sess.Collect(10 * time.Second)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("collect err = %v, want kernel panic error", err)
	}
}

// TestWorkersSurfaceBehaviorErrors checks a failing kernel aborts the
// worker-pool run with its error, same as the goroutine engine.
func TestWorkersSurfaceBehaviorErrors(t *testing.T) {
	// A buffer with the wrong plan width errors out mid-stream; the
	// worker-pool run must return the error rather than hang.
	g := graph.New("bad-buffer")
	in := g.AddInput("Input", geom.Sz(8, 4), geom.Sz(1, 1), geom.FInt(10))
	buf := g.Add(kernel.Buffer("Buf", kernel.BufferPlan{
		DataW: 6 /* wrong: frame is 8 wide */, DataH: 4, WinW: 3, WinH: 3, StepX: 1, StepY: 1,
	}))
	out := g.AddOutput("Output", geom.Sz(3, 3))
	g.Connect(in, "out", buf, "in")
	g.Connect(buf, "out", out, "in")
	if _, err := Run(g, Options{Frames: 1, Executor: ExecWorkers}); err == nil {
		t.Fatal("buffer overflow not reported")
	}
}

// TestUnknownExecutorRejected checks Options validation.
func TestUnknownExecutorRejected(t *testing.T) {
	app, err := apps.ByID("1")
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Compile(app.Graph, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(c.Graph, Options{Frames: 1, Sources: app.Sources, Executor: "bogus"})
	if err == nil || !strings.Contains(err.Error(), "executor") {
		t.Fatalf("err = %v, want unknown-executor error", err)
	}
}
