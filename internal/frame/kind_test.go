package frame

import (
	"math"
	"testing"
)

func TestKindBasics(t *testing.T) {
	cases := []struct {
		k     Kind
		bytes int
		name  string
	}{{F64, 8, "f64"}, {U8, 1, "u8"}, {F32, 4, "f32"}}
	for _, c := range cases {
		if c.k.Bytes() != c.bytes {
			t.Errorf("%v.Bytes() = %d, want %d", c.k, c.k.Bytes(), c.bytes)
		}
		if c.k.String() != c.name {
			t.Errorf("%v.String() = %q, want %q", c.k, c.k.String(), c.name)
		}
		if !c.k.Valid() {
			t.Errorf("%v not valid", c.k)
		}
		got, err := ParseKind(c.name)
		if err != nil || got != c.k {
			t.Errorf("ParseKind(%q) = %v, %v", c.name, got, err)
		}
	}
	if Kind(7).Valid() || kindCount.Valid() {
		t.Error("out-of-range kinds reported valid")
	}
	if _, err := ParseKind("i16"); err == nil {
		t.Error("ParseKind accepted unknown kind")
	}
	if k, err := ParseKind(""); err != nil || k != F64 {
		t.Errorf("ParseKind(\"\") = %v, %v; want F64", k, err)
	}
}

func TestKindWidens(t *testing.T) {
	widens := map[[2]Kind]bool{
		{U8, F32}: true, {U8, F64}: true, {F32, F64}: true,
		{F64, F32}: false, {F64, U8}: false, {F32, U8}: false,
	}
	for pair, want := range widens {
		if got := pair[0].Widens(pair[1]); got != want {
			t.Errorf("%v.Widens(%v) = %v, want %v", pair[0], pair[1], got, want)
		}
	}
	for _, k := range []Kind{F64, U8, F32} {
		if !k.Widens(k) {
			t.Errorf("%v.Widens(self) = false", k)
		}
	}
}

func TestTypedWindowAccessors(t *testing.T) {
	for _, k := range []Kind{U8, F32, F64} {
		w := NewWindowKind(k, 4, 3)
		if w.Kind != k {
			t.Fatalf("kind = %v, want %v", w.Kind, k)
		}
		for y := 0; y < 3; y++ {
			for x := 0; x < 4; x++ {
				w.Set(x, y, float64(10*y+x))
			}
		}
		if w.At(3, 2) != 23 {
			t.Errorf("%v At(3,2) = %v, want 23", k, w.At(3, 2))
		}
		switch k {
		case U8:
			if row := w.RowU8(1); row[2] != 12 {
				t.Errorf("RowU8(1)[2] = %d, want 12", row[2])
			}
		case F32:
			if row := w.RowF32(1); row[2] != 12 {
				t.Errorf("RowF32(1)[2] = %v, want 12", row[2])
			}
		case F64:
			if row := w.Row(1); row[2] != 12 {
				t.Errorf("Row(1)[2] = %v, want 12", row[2])
			}
		}
	}
}

func TestQuantizeU8(t *testing.T) {
	w := NewWindowKind(U8, 1, 1)
	cases := []struct {
		in   float64
		want float64
	}{{-5, 0}, {0, 0}, {0.4, 0}, {0.5, 1}, {127.5, 128}, {254.6, 255}, {255, 255}, {999, 255}}
	for _, c := range cases {
		w.Set(0, 0, c.in)
		if got := w.At(0, 0); got != c.want {
			t.Errorf("u8 store of %v read back %v, want %v", c.in, got, c.want)
		}
	}
}

// Satellite: Equal must respect element kind — a u8 window and an f64
// window with promotion-identical samples are NOT equal.
func TestEqualRespectsKind(t *testing.T) {
	u := NewWindowKind(U8, 2, 2)
	f := NewWindow(2, 2)
	for y := 0; y < 2; y++ {
		for x := 0; x < 2; x++ {
			u.Set(x, y, float64(x+y))
			f.Set(x, y, float64(x+y))
		}
	}
	if u.Equal(f) || f.Equal(u) {
		t.Fatal("Equal compared across element kinds via promotion")
	}
	if !u.AlmostEqual(f, 0) {
		t.Fatal("AlmostEqual should compare across kinds after promotion")
	}
	u2 := u.Clone()
	if u2.Kind != U8 {
		t.Fatalf("Clone dropped kind: %v", u2.Kind)
	}
	if !u.Equal(u2) {
		t.Fatal("Clone not Equal to source")
	}
}

// Satellite: strided-view equality for non-dense typed windows. Views
// over a u8 parent must compare their own samples (not float-promoted,
// not overrunning the row span into the parent's other columns).
func TestStridedTypedViewEquality(t *testing.T) {
	for _, k := range []Kind{U8, F32, F64} {
		parent := NewWindowKind(k, 6, 4)
		for y := 0; y < 4; y++ {
			for x := 0; x < 6; x++ {
				parent.Set(x, y, float64(y*6+x))
			}
		}
		va := parent.View(1, 1, 3, 2) // strided
		if va.IsDense() {
			t.Fatalf("%v view unexpectedly dense", k)
		}
		if va.Kind != k {
			t.Fatalf("view dropped kind: %v", va.Kind)
		}
		dense := va.Clone()
		if !dense.IsDense() {
			t.Fatal("clone of view not dense")
		}
		if !va.Equal(dense) || !dense.Equal(va) {
			t.Fatalf("%v strided view != its dense clone", k)
		}
		// Perturb a parent sample *outside* the view: equality must hold.
		parent.Set(0, 1, 99)
		if !va.Equal(dense) {
			t.Fatalf("%v view equality read outside its span", k)
		}
		// Perturb a sample inside the view: equality must break.
		parent.Set(2, 2, 77)
		if va.Equal(dense) {
			t.Fatalf("%v view equality missed an in-span change", k)
		}
	}
}

func TestConvert(t *testing.T) {
	u := NewWindowKind(U8, 3, 2)
	for y := 0; y < 2; y++ {
		for x := 0; x < 3; x++ {
			u.Set(x, y, float64(40*y+x))
		}
	}
	f64w := u.Convert(F64)
	if f64w.Kind != F64 || f64w.At(2, 1) != 42 {
		t.Fatalf("u8→f64 convert wrong: %v %v", f64w.Kind, f64w.At(2, 1))
	}
	f32w := u.Convert(F32)
	if f32w.Kind != F32 || !f32w.AlmostEqual(u, 0) {
		t.Fatal("u8→f32 convert not exact")
	}
	// Narrowing quantizes.
	f := NewWindow(1, 1)
	f.Set(0, 0, 300.7)
	if got := f.Convert(U8).At(0, 0); got != 255 {
		t.Fatalf("f64→u8 clamp = %v, want 255", got)
	}
}

func TestAllocKindPooled(t *testing.T) {
	for _, k := range []Kind{U8, F32, F64} {
		w := AllocKind(k, 16, 8)
		if !w.Pooled() {
			t.Fatalf("AllocKind(%v) not pooled", k)
		}
		if w.Kind != k {
			t.Fatalf("AllocKind kind = %v, want %v", w.Kind, k)
		}
		for y := 0; y < 8; y++ {
			for x := 0; x < 16; x++ {
				if w.At(x, y) != 0 {
					t.Fatalf("AllocKind(%v) not zeroed at (%d,%d)", k, x, y)
				}
			}
		}
		w.Release()
	}
}

// Buckets are classed by bytes: a u8 window recycles into buffers that
// an f64 window of 1/8 the sample count also uses.
func TestPoolBucketsShareAcrossKinds(t *testing.T) {
	defer SetZeroCopy(SetZeroCopy(true))
	// Drain potential cross-test noise by sampling hit-rate deltas.
	u := AllocKind(U8, 64, 8) // 512 bytes
	u.Release()
	before := Stats()
	f := AllocKind(F64, 8, 8) // also 512 bytes
	after := Stats()
	if after.Hits == before.Hits {
		t.Skip("pool entry evicted between ops (GC); not a correctness failure")
	}
	if f.Kind != F64 {
		t.Fatalf("kind = %v", f.Kind)
	}
	f.Release()
}

func TestPoisonTypedWindows(t *testing.T) {
	defer SetPoison(SetPoison(true))
	defer SetZeroCopy(SetZeroCopy(true))
	u := AllocKind(U8, 8, 1)
	row := u.RowU8(0)
	u.Release()
	for i, v := range row {
		if v != 0xFF {
			t.Fatalf("released u8 storage not poisoned at %d: %d", i, v)
		}
	}
	f := AllocKind(F32, 4, 1)
	frow := f.RowF32(0)
	f.Release()
	for i, v := range frow {
		if !math.IsNaN(float64(v)) {
			t.Fatalf("released f32 storage not NaN-poisoned at %d: %v", i, v)
		}
	}
}

func TestTypedGenerator(t *testing.T) {
	g := Typed(U8, Bayer)
	f := g(1, 8, 6)
	if f.Kind != U8 {
		t.Fatalf("Typed generator kind = %v", f.Kind)
	}
	// Quantized u8 frame must match quantizing the f64 frame sample-wise.
	ref := Bayer(1, 8, 6)
	for y := 0; y < 6; y++ {
		for x := 0; x < 8; x++ {
			if f.At(x, y) != float64(quantizeU8(ref.At(x, y))) {
				t.Fatalf("Typed(U8) mismatch at (%d,%d)", x, y)
			}
		}
	}
	if Typed(F64, Bayer)(0, 4, 4).Kind != F64 {
		t.Fatal("Typed(F64) should be identity")
	}
}

func TestRowBytes(t *testing.T) {
	u := NewWindowKind(U8, 4, 2)
	u.Set(1, 1, 7)
	b := u.RowBytes(1)
	if len(b) != 4 || b[1] != 7 {
		t.Fatalf("RowBytes u8 = %v", b)
	}
	f := NewWindow(3, 1)
	f.Set(0, 0, 1)
	if got := len(f.RowBytes(0)); got != 24 {
		t.Fatalf("RowBytes f64 len = %d, want 24", got)
	}
}
