package frame

import (
	"testing"
	"testing/quick"
)

func TestNewWindowZeroed(t *testing.T) {
	w := NewWindow(3, 2)
	if w.W != 3 || w.H != 2 || len(w.Pix) != 6 {
		t.Fatalf("bad window: %+v", w)
	}
	for i, v := range w.Pix {
		if v != 0 {
			t.Errorf("pix[%d] = %v, want 0", i, v)
		}
	}
}

func TestNewWindowNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWindow(-1, 2) did not panic")
		}
	}()
	NewWindow(-1, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	w := NewWindow(4, 3)
	w.Set(2, 1, 7.5)
	if got := w.At(2, 1); got != 7.5 {
		t.Errorf("At(2,1) = %v", got)
	}
	if got := w.At(1, 2); got != 0 {
		t.Errorf("At(1,2) = %v, want 0", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	w := NewWindow(2, 2)
	for _, c := range []struct{ x, y int }{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d,%d) did not panic", c.x, c.y)
				}
			}()
			w.At(c.x, c.y)
		}()
	}
}

func TestScalarAndValue(t *testing.T) {
	s := Scalar(3.25)
	if s.W != 1 || s.H != 1 || s.Value() != 3.25 {
		t.Errorf("Scalar round trip failed: %+v", s)
	}
	defer func() {
		if recover() == nil {
			t.Error("Value() on 2x1 window did not panic")
		}
	}()
	NewWindow(2, 1).Value()
}

func TestFromRows(t *testing.T) {
	w := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if w.W != 3 || w.H != 2 {
		t.Fatalf("bad shape %dx%d", w.W, w.H)
	}
	if w.At(0, 0) != 1 || w.At(2, 1) != 6 || w.At(1, 1) != 5 {
		t.Errorf("bad contents: %v", w.Pix)
	}
	if !FromRows(nil).Equal(Window{}) {
		t.Error("FromRows(nil) should be empty window")
	}
	defer func() {
		if recover() == nil {
			t.Error("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestCloneIsDeep(t *testing.T) {
	w := FromRows([][]float64{{1, 2}, {3, 4}})
	c := w.Clone()
	c.Set(0, 0, 99)
	if w.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestSub(t *testing.T) {
	w := FromRows([][]float64{
		{0, 1, 2, 3},
		{4, 5, 6, 7},
		{8, 9, 10, 11},
	})
	s := w.Sub(1, 1, 2, 2)
	want := FromRows([][]float64{{5, 6}, {9, 10}})
	if !s.Equal(want) {
		t.Errorf("Sub = %v, want %v", s.Pix, want.Pix)
	}
}

func TestEqualAndAlmostEqual(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{1, 2.005}})
	if a.Equal(b) {
		t.Error("Equal should be exact")
	}
	if !a.AlmostEqual(b, 0.01) {
		t.Error("AlmostEqual tol=0.01 should pass")
	}
	if a.AlmostEqual(b, 0.001) {
		t.Error("AlmostEqual tol=0.001 should fail")
	}
	if a.Equal(NewWindow(2, 2)) || a.AlmostEqual(NewWindow(2, 2), 1e9) {
		t.Error("shape mismatch must never be equal")
	}
}

func TestWindowsScanOrder(t *testing.T) {
	f := NewWindow(4, 3)
	var visits [][2]int
	Windows(f, 2, 2, 1, 1, func(x, y int) { visits = append(visits, [2]int{x, y}) })
	want := [][2]int{{0, 0}, {1, 0}, {2, 0}, {0, 1}, {1, 1}, {2, 1}}
	if len(visits) != len(want) {
		t.Fatalf("got %d visits, want %d", len(visits), len(want))
	}
	for i := range want {
		if visits[i] != want[i] {
			t.Errorf("visit %d = %v, want %v", i, visits[i], want[i])
		}
	}
}

func TestWindowsDegenerate(t *testing.T) {
	called := false
	Windows(NewWindow(2, 2), 3, 3, 1, 1, func(x, y int) { called = true })
	if called {
		t.Error("Windows should not fire when window exceeds frame")
	}
	Windows(NewWindow(2, 2), 1, 1, 0, 1, func(x, y int) { called = true })
	if called {
		t.Error("Windows should not fire with zero step")
	}
}

func TestSubWithinBoundsQuick(t *testing.T) {
	prop := func(w8, h8, x8, y8, sw8, sh8 uint8) bool {
		w, h := int(w8%16)+4, int(h8%16)+4
		f := LCG(1, w, h)
		sw, sh := int(sw8%3)+1, int(sh8%3)+1
		x, y := int(x8)%(w-sw+1), int(y8)%(h-sh+1)
		s := f.Sub(x, y, sw, sh)
		for dy := 0; dy < sh; dy++ {
			for dx := 0; dx < sw; dx++ {
				if s.At(dx, dy) != f.At(x+dx, y+dy) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
