package frame

import (
	"testing"
	"testing/quick"
)

func TestConvolveIdentityKernel(t *testing.T) {
	f := Gradient(0, 8, 6)
	// 3x3 kernel with a single 1 at the center is identity over the
	// valid region: out(x,y) == f(x+1, y+1).
	id := NewWindow(3, 3)
	id.Set(1, 1, 1)
	out := Convolve(f, id)
	if out.W != 6 || out.H != 4 {
		t.Fatalf("output size %dx%d, want 6x4", out.W, out.H)
	}
	for y := 0; y < out.H; y++ {
		for x := 0; x < out.W; x++ {
			if out.At(x, y) != f.At(x+1, y+1) {
				t.Fatalf("identity convolution wrong at (%d,%d)", x, y)
			}
		}
	}
}

func TestConvolveBoxSum(t *testing.T) {
	f := Constant(2)(0, 5, 5)
	box := NewWindow(3, 3)
	for i := range box.Pix {
		box.Pix[i] = 1
	}
	out := Convolve(f, box)
	if out.W != 3 || out.H != 3 {
		t.Fatalf("output size %dx%d", out.W, out.H)
	}
	for _, v := range out.Pix {
		if v != 18 {
			t.Fatalf("box sum = %v, want 18", v)
		}
	}
}

func TestConvolveTooSmall(t *testing.T) {
	out := Convolve(NewWindow(2, 2), NewWindow(3, 3))
	if out.W != 0 || out.H != 0 {
		t.Errorf("undersized convolution should return empty, got %v", out)
	}
}

func TestConvolveAsymmetricKernelOrientation(t *testing.T) {
	// f has a single impulse; convolution with an asymmetric kernel
	// must produce the flipped kernel around it (true convolution, the
	// convention of the paper's runConvolve loop).
	f := NewWindow(5, 5)
	f.Set(2, 2, 1)
	k := FromRows([][]float64{
		{1, 2, 3},
		{4, 5, 6},
		{7, 8, 9},
	})
	out := Convolve(f, k)
	// out(x,y) = sum f(x+dx, y+dy) * k(2-dx, 2-dy). Impulse at (2,2):
	// out(x,y) = k(2-(2-x), 2-(2-y)) = k(x, y) for x,y in [0,3).
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			if out.At(x, y) != k.At(x, y) {
				t.Fatalf("impulse response at (%d,%d) = %v, want %v", x, y, out.At(x, y), k.At(x, y))
			}
		}
	}
}

func TestMedianConstantRegions(t *testing.T) {
	f := Constant(7)(0, 6, 6)
	out := Median(f, 3)
	if out.W != 4 || out.H != 4 {
		t.Fatalf("median size %dx%d", out.W, out.H)
	}
	for _, v := range out.Pix {
		if v != 7 {
			t.Fatalf("median of constant = %v", v)
		}
	}
}

func TestMedianRemovesImpulse(t *testing.T) {
	f := Constant(10)(0, 5, 5)
	f.Set(2, 2, 1000) // salt noise
	out := Median(f, 3)
	for _, v := range out.Pix {
		if v != 10 {
			t.Fatalf("median failed to reject impulse: %v", out.Pix)
		}
	}
}

func TestMedianKnownWindow(t *testing.T) {
	f := FromRows([][]float64{
		{1, 9, 2},
		{8, 5, 7},
		{3, 6, 4},
	})
	out := Median(f, 3)
	if out.W != 1 || out.H != 1 || out.Value() != 5 {
		t.Fatalf("median = %v, want 5", out.Pix)
	}
}

func TestSubtract(t *testing.T) {
	a := FromRows([][]float64{{5, 7}})
	b := FromRows([][]float64{{2, 10}})
	out := Subtract(a, b)
	if out.At(0, 0) != 3 || out.At(1, 0) != -3 {
		t.Errorf("Subtract = %v", out.Pix)
	}
	defer func() {
		if recover() == nil {
			t.Error("size mismatch did not panic")
		}
	}()
	Subtract(a, NewWindow(3, 1))
}

func TestHistogramUniform(t *testing.T) {
	edges := UniformBins(4, 0, 8) // edges 0,2,4,6
	f := FromRows([][]float64{{0, 1, 2, 3, 4, 5, 6, 7}})
	counts := Histogram(f, edges)
	want := []float64{2, 2, 2, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
}

func TestHistogramUnderflowGoesToBinZero(t *testing.T) {
	edges := []float64{10, 20, 30}
	counts := Histogram(FromRows([][]float64{{-5, 25, 35}}), edges)
	// -5 underflows into bin 0; 25 lands in [20,30); 35 overflows into
	// the last bin.
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestFindBinEdgeConvention(t *testing.T) {
	edges := []float64{0, 10, 20}
	cases := map[float64]int{-1: 0, 0: 0, 9.99: 0, 10: 1, 19: 1, 20: 2, 1e9: 2}
	for v, want := range cases {
		if got := FindBin(v, edges); got != want {
			t.Errorf("FindBin(%v) = %d, want %d", v, got, want)
		}
	}
}

func TestTrimPadInverse(t *testing.T) {
	f := LCG(3, 7, 5)
	p := Pad(f, 1, 2, 3, 4)
	if p.W != 10 || p.H != 12 {
		t.Fatalf("pad size %dx%d", p.W, p.H)
	}
	back := Trim(p, 1, 2, 3, 4)
	if !back.Equal(f) {
		t.Error("Trim(Pad(f)) != f")
	}
}

func TestPadZerosBorder(t *testing.T) {
	f := Constant(9)(0, 2, 2)
	p := Pad(f, 1, 1, 1, 1)
	if p.At(0, 0) != 0 || p.At(3, 3) != 0 || p.At(1, 1) != 9 {
		t.Errorf("pad contents wrong: %v", p.Pix)
	}
}

func TestTrimTooMuchReturnsEmpty(t *testing.T) {
	if got := Trim(NewWindow(3, 3), 2, 2, 0, 0); got.W != 0 {
		t.Errorf("over-trim should be empty, got %v", got)
	}
}

func TestGain(t *testing.T) {
	f := FromRows([][]float64{{1, -2}})
	out := Gain(f, 2.5)
	if out.At(0, 0) != 2.5 || out.At(1, 0) != -5 {
		t.Errorf("Gain = %v", out.Pix)
	}
}

func TestDownsample(t *testing.T) {
	f := Gradient(0, 6, 4)
	out := Downsample(f, 2)
	if out.W != 3 || out.H != 2 {
		t.Fatalf("downsample size %dx%d", out.W, out.H)
	}
	for y := 0; y < 2; y++ {
		for x := 0; x < 3; x++ {
			if out.At(x, y) != f.At(2*x, 2*y) {
				t.Fatal("downsample picks wrong samples")
			}
		}
	}
}

func TestBayerDemosaicFlatField(t *testing.T) {
	// A mosaic where every site has the same value reconstructs to
	// that value in every channel.
	f := Constant(50)(0, 8, 8)
	r, g, b := BayerDemosaic(f)
	if r.W != 6 || r.H != 6 {
		t.Fatalf("demosaic size %dx%d", r.W, r.H)
	}
	for i := range r.Pix {
		if r.Pix[i] != 50 || g.Pix[i] != 50 || b.Pix[i] != 50 {
			t.Fatalf("flat field broke: r=%v g=%v b=%v", r.Pix[i], g.Pix[i], b.Pix[i])
		}
	}
}

func TestBayerDemosaicSiteExactness(t *testing.T) {
	f := Bayer(0, 10, 10)
	r, g, b := BayerDemosaic(f)
	// At a red mosaic site (even,even), output (x,y) maps to mosaic
	// (x+1,y+1); check exact channels at each site type.
	for y := 0; y < r.H; y++ {
		for x := 0; x < r.W; x++ {
			cx, cy := x+1, y+1
			switch {
			case cy%2 == 0 && cx%2 == 0:
				if r.At(x, y) != f.At(cx, cy) {
					t.Fatalf("R not exact at red site (%d,%d)", cx, cy)
				}
			case cy%2 == 1 && cx%2 == 1:
				if b.At(x, y) != f.At(cx, cy) {
					t.Fatalf("B not exact at blue site (%d,%d)", cx, cy)
				}
			default:
				if g.At(x, y) != f.At(cx, cy) {
					t.Fatalf("G not exact at green site (%d,%d)", cx, cy)
				}
			}
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	gens := map[string]Generator{
		"gradient": Gradient, "checker": Checker, "lcg": LCG, "bayer": Bayer,
	}
	for name, g := range gens {
		a, b := g(5, 9, 7), g(5, 9, 7)
		if !a.Equal(b) {
			t.Errorf("%s generator not deterministic", name)
		}
		c := g(6, 9, 7)
		if a.Equal(c) {
			t.Errorf("%s generator ignores frame seq", name)
		}
	}
}

func TestConvolveLinearityQuick(t *testing.T) {
	// Convolve(a+b, k) == Convolve(a,k) + Convolve(b,k).
	prop := func(seedA, seedB uint8) bool {
		a := LCG(int64(seedA), 7, 6)
		b := LCG(int64(seedB)+1000, 7, 6)
		k := LCG(int64(seedA)+int64(seedB), 3, 3)
		sum := NewWindow(7, 6)
		for i := range sum.Pix {
			sum.Pix[i] = a.Pix[i] + b.Pix[i]
		}
		lhs := Convolve(sum, k)
		ca, cb := Convolve(a, k), Convolve(b, k)
		rhs := NewWindow(lhs.W, lhs.H)
		for i := range rhs.Pix {
			rhs.Pix[i] = ca.Pix[i] + cb.Pix[i]
		}
		return lhs.AlmostEqual(rhs, 1e-6)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMedianIdempotentOnConstantQuick(t *testing.T) {
	prop := func(v int16, w8, h8 uint8) bool {
		w, h := int(w8%6)+3, int(h8%6)+3
		f := Constant(float64(v))(0, w, h)
		out := Median(f, 3)
		for _, p := range out.Pix {
			if p != float64(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramTotalMassQuick(t *testing.T) {
	prop := func(seed uint8, w8, h8 uint8) bool {
		w, h := int(w8%10)+1, int(h8%10)+1
		f := LCG(int64(seed), w, h)
		counts := Histogram(f, UniformBins(8, 0, 256))
		var total float64
		for _, c := range counts {
			total += c
		}
		return total == float64(w*h)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
