package conformance

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"time"

	"blockpar/internal/cluster"
	"blockpar/internal/fault"
	"blockpar/internal/frame"
	"blockpar/internal/machine"
	"blockpar/internal/runtime"
	"blockpar/internal/serve"
)

// ChaosModes lists the fault campaigns CheckChaos runs: a mid-stream
// worker kill (which must be invisible — failover replays the session
// on the survivor), a mid-stream kill of one partition of a session
// split across a 3-worker fleet (per-partition recovery must make that
// invisible too), a graceful drain of the session's worker (live
// migration, zero client-visible errors AND a clean worker exit),
// seeded wire-level corruption, frame drops, and delivery delays from
// internal/fault, plus two registration-plane campaigns on a
// self-registered fleet: "flap" (the session's worker crashes without
// deregistering and a replacement rejoins under the same name
// mid-stream) and "frontend-kill" (a sibling frontend dies while the
// stream runs on the other).
func ChaosModes() []string {
	return []string{"kill", "partition-kill", "drain", "corrupt", "drop", "delay", "flap", "frontend-kill"}
}

// chaosProfile maps a mode to its fault profile. The probabilities are
// small so streams usually make progress between faults; "kill" uses
// no injector at all (the fault is a whole-process death).
func chaosProfile(mode string) (fault.Profile, error) {
	switch mode {
	case "kill", "partition-kill", "drain":
		return fault.Profile{}, nil
	case "corrupt":
		return fault.Profile{Corrupt: 0.02}, nil
	case "drop":
		return fault.Profile{Drop: 0.02}, nil
	case "delay":
		return fault.Profile{Delay: 0.3, DelayMax: 2 * time.Millisecond}, nil
	case "partial":
		return fault.Profile{Partial: 0.01}, nil
	default:
		return fault.Profile{}, fmt.Errorf("chaos: unknown mode %q (have %v)", mode, ChaosModes())
	}
}

// typedChaosError reports whether a stream failure belongs to the
// documented error vocabulary — the outcomes a client can program
// against. Anything else (a hang, a raw I/O error, wrong bytes) is a
// chaos finding.
func typedChaosError(err error) bool {
	return errors.Is(err, serve.ErrSessionLost) ||
		errors.Is(err, serve.ErrUnavailable) ||
		errors.Is(err, runtime.ErrSessionClosed) ||
		strings.HasPrefix(err.Error(), "cluster:")
}

// CheckChaos streams a generated case through a two-worker cluster
// while injecting seeded faults, and asserts the robustness contract:
// the stream either completes byte-identical to the oracle golden or
// fails with a typed error — never a hang, never silently wrong
// samples — and every arena reference returns once the session and
// cluster shut down. Mode "kill" is held to the stronger bar: a
// surviving worker exists, so failover must make the kill invisible
// and the stream MUST complete byte-identical.
//
// The injector wraps both directions — the dispatcher's dials and the
// workers' accepted connections — so feeds, results, opens, closes,
// and pings are all fair game. Callers must not run CheckChaos
// concurrently with other arena users: the leak check compares
// frame.Stats().Live against the baseline captured at entry.
func CheckChaos(c *Case, seed uint64, mode string) error {
	if mode == "flap" || mode == "frontend-kill" {
		return checkChaosRegistered(c, seed, mode)
	}
	profile, err := chaosProfile(mode)
	if err != nil {
		return err
	}
	const frames = 6
	want, err := OracleFrames(c, frames)
	if err != nil {
		return err
	}

	baseline := frame.Stats().Live
	inj := fault.NewInjector(seed, profile)

	// Independent workers, each with its own registry holding the
	// identical compiled variant (compilation is deterministic), so a
	// failed-over session re-executes the same transformed graph.
	// "partition-kill" runs three and splits the session two ways, so a
	// spare survives the strike; the other modes run two whole-session
	// workers.
	nworkers := 2
	if mode == "partition-kill" {
		nworkers = 3
	}
	var (
		workers []*cluster.Worker
		addrs   []string
	)
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	for i := 0; i < nworkers; i++ {
		compiled, err := compileVariant(c, Variant{Name: "embedded", Machine: machine.Embedded(), Striping: true})
		if err != nil {
			return err
		}
		reg := serve.NewRegistry(machine.Embedded())
		if _, err := reg.AddCompiled("case", "case", compiled, c.Sources); err != nil {
			return err
		}
		w := cluster.NewWorker(reg, cluster.WorkerOptions{Name: fmt.Sprintf("chaos-w%d", i)})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go w.Serve(inj.WrapListener(ln))
		workers = append(workers, w)
		addrs = append(addrs, ln.Addr().String())
	}

	compiled, err := compileVariant(c, Variant{Name: "embedded", Machine: machine.Embedded(), Striping: true})
	if err != nil {
		return err
	}
	frontend := serve.NewRegistry(machine.Embedded())
	p, err := frontend.AddCompiled("case", "case", compiled, c.Sources)
	if err != nil {
		return err
	}

	opts := cluster.DispatcherOptions{
		Dial: inj.WrapDial(func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}),
		PingInterval:    25 * time.Millisecond,
		PingTimeout:     2 * time.Second,
		ReconnectMin:    10 * time.Millisecond,
		ReconnectMax:    100 * time.Millisecond,
		OpenTimeout:     5 * time.Second,
		CloseTimeout:    5 * time.Second,
		FailoverTimeout: 10 * time.Second,
		StallTimeout:    2 * time.Second, // well under the collect bound: a silent stall must fail over, not hang
		BreakerFailures: 1024,            // chaos faults are transient; keep probing
	}
	if mode == "partition-kill" {
		opts.Partitions = 2
	}
	d := cluster.NewDispatcher(addrs, opts)
	defer d.Close()

	// Both workers connected before the open, so least-loaded placement
	// is deterministic: the fresh session lands on workers[0] — the one
	// "kill" mode murders mid-stream.
	if err := waitChaos(30*time.Second, func() bool {
		rows := d.BackendStats().(map[string]any)["workers"].([]cluster.WorkerStats)
		up := 0
		for _, r := range rows {
			if r.State == "connected" {
				up++
			}
		}
		return up == len(rows)
	}); err != nil {
		return fmt.Errorf("chaos: workers never connected: %w", err)
	}

	// The strike fires after frame 1 is fed, with that frame in flight.
	// "kill" murders the (deterministically least-loaded) first worker;
	// "partition-kill" and "drain" look the victim up in the session's
	// /metrics row, since placement order over 3 workers is theirs to
	// choose.
	sessionHost := func() (int, error) {
		rows := d.BackendStats().(map[string]any)["sessions"].([]cluster.SessionStats)
		if len(rows) == 0 || len(rows[0].Workers) == 0 {
			return 0, fmt.Errorf("chaos: no open session row to strike")
		}
		target := rows[0].Workers[0]
		for i, a := range addrs {
			if a == target {
				return i, nil
			}
		}
		return 0, fmt.Errorf("chaos: session host %q not in harness", target)
	}
	drainDone := make(chan error, 1)
	var strike func() error
	switch mode {
	case "kill":
		strike = func() error { workers[0].Close(); return nil }
	case "partition-kill":
		strike = func() error {
			i, err := sessionHost()
			if err != nil {
				return err
			}
			workers[i].Close()
			return nil
		}
	case "drain":
		strike = func() error {
			i, err := sessionHost()
			if err != nil {
				return err
			}
			w := workers[i]
			go func() {
				ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
				defer cancel()
				drainDone <- w.Shutdown(ctx)
			}()
			return nil
		}
	}

	outcome := runChaosStream(d, p, c, want, strike)
	if outcome != nil {
		switch mode {
		case "kill", "partition-kill":
			return fmt.Errorf("chaos %s with a survivor must be invisible: %w", mode, outcome)
		case "drain":
			return fmt.Errorf("chaos drain must be invisible: %w", outcome)
		default:
			if !typedChaosError(outcome) {
				return fmt.Errorf("chaos: untyped failure: %w", outcome)
			}
		}
	}
	if mode == "drain" {
		// The migration emptied the worker, so its graceful shutdown must
		// also have completed cleanly — no frames abandoned.
		select {
		case err := <-drainDone:
			if err != nil {
				return fmt.Errorf("chaos: drained worker abandoned work: %w", err)
			}
		case <-time.After(time.Minute):
			return fmt.Errorf("chaos: worker drain never completed")
		}
	}

	// Tear the cluster down and require every arena reference back:
	// replay logs, in-flight encodes, buffered results, worker-side
	// frames — whatever the faults interrupted.
	d.Close()
	for _, w := range workers {
		w.Close()
	}
	if err := waitChaos(10*time.Second, func() bool {
		return frame.Stats().Live <= baseline
	}); err != nil {
		return fmt.Errorf("chaos: arena leak: %d live references, baseline %d (mode %s seed %d)",
			frame.Stats().Live, baseline, mode, seed)
	}
	return nil
}

// runChaosStream drives the session: feed/collect all frames with
// bounded waits, comparing every delivered frame against the oracle,
// firing strike (if any) with frame 1 freshly fed and in flight. A
// typed failure is returned for the caller to judge; wrong bytes and
// hangs are returned as distinctive errors typedChaosError rejects.
func runChaosStream(d *cluster.Dispatcher, p *serve.Pipeline, c *Case,
	want []map[string][]frame.Window, strike func() error) error {

	deadline := time.Now().Add(90 * time.Second)
	h, err := d.Open(p, serve.OpenOptions{MaxInFlight: 2, Deadline: 2 * time.Minute})
	if err != nil {
		return err
	}
	defer h.Close()

	outputs := c.Graph.Outputs()
	for f := 0; f < len(want); f++ {
		// Bounded feed: transient backpressure (failover in progress,
		// credits in flight) retries; deadline expiry is a hang.
		for {
			if _, err := h.TryFeed(nil); err == nil {
				break
			} else if !errors.Is(err, runtime.ErrQueueFull) {
				return err
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("hang: feed %d stuck in backpressure past the chaos deadline", f)
			}
			time.Sleep(2 * time.Millisecond)
		}
		if strike != nil && f == 1 {
			// The frame just fed is in flight on the victim; the strike
			// must be invisible (recovery replays it on a survivor).
			if err := strike(); err != nil {
				return err
			}
		}
		res, err := h.Collect(30 * time.Second)
		if err != nil {
			if strings.Contains(err.Error(), "timed out") {
				return fmt.Errorf("hang: collect %d timed out without a terminal session error", f)
			}
			return err
		}
		cmpErr := func() error {
			if res.Seq != int64(f) {
				return fmt.Errorf("chaos delivered frame %d, want %d (at-most-once broken)", res.Seq, f)
			}
			for _, out := range outputs {
				name := out.Name()
				if err := compareWindows(res.Outputs[name], want[f][name]); err != nil {
					return fmt.Errorf("silent corruption: output %q frame %d: %w", name, f, err)
				}
			}
			return nil
		}()
		for _, ws := range res.Outputs {
			for _, w := range ws {
				w.Release()
			}
		}
		if cmpErr != nil {
			return cmpErr
		}
	}
	return h.Close()
}

// checkChaosRegistered runs the registration-plane campaigns on a
// self-registered fleet: two frontends, two workers that dialed in and
// registered themselves, the stream keyed so ring placement pins which
// worker hosts it. At a seeded frame the campaign strikes —
//
//   - "flap": the session's worker crashes without deregistering and a
//     replacement rejoins under the same name on a fresh address;
//   - "frontend-kill": the sibling frontend (registration listener,
//     dispatcher, and all) dies while the stream runs on the other —
//
// and in both campaigns a healthy path survives, so the bar is the
// strong one: the stream MUST complete byte-identical to the oracle,
// and every arena reference must return on shutdown.
func checkChaosRegistered(c *Case, seed uint64, mode string) error {
	const frames = 6
	want, err := OracleFrames(c, frames)
	if err != nil {
		return err
	}
	baseline := frame.Stats().Live

	mkWorker := func(name string) *cluster.Worker {
		compiled, err := compileVariant(c, Variant{Name: "embedded", Machine: machine.Embedded(), Striping: true})
		if err != nil {
			panic(err)
		}
		reg := serve.NewRegistry(machine.Embedded())
		if _, err := reg.AddCompiled("case", "case", compiled, c.Sources); err != nil {
			panic(err)
		}
		return cluster.NewWorker(reg, cluster.WorkerOptions{Name: name})
	}
	fleet, err := cluster.StartRegisteredCluster(2, 2, cluster.RegisteredClusterConfig{
		Lease: 500 * time.Millisecond,
		Dispatcher: cluster.DispatcherOptions{
			PingInterval:    25 * time.Millisecond,
			PingTimeout:     2 * time.Second,
			ReconnectMin:    10 * time.Millisecond,
			ReconnectMax:    100 * time.Millisecond,
			OpenTimeout:     5 * time.Second,
			CloseTimeout:    5 * time.Second,
			FailoverTimeout: 10 * time.Second,
			StallTimeout:    2 * time.Second,
			BreakerFailures: 1024,
		},
		MakeWorker: func(i int) *cluster.Worker { return mkWorker(fmt.Sprintf("flap-w%d", i)) },
	})
	if err != nil {
		return err
	}
	defer fleet.Close()
	d := fleet.Dispatchers[0]

	compiled, err := compileVariant(c, Variant{Name: "embedded", Machine: machine.Embedded(), Striping: true})
	if err != nil {
		return err
	}
	frontend := serve.NewRegistry(machine.Embedded())
	p, err := frontend.AddCompiled("case", "case", compiled, c.Sources)
	if err != nil {
		return err
	}

	// A keyed open pins the session to the ring's first choice, so the
	// campaign knows exactly which worker to strike.
	const key = "chaos"
	host := d.PlacementFor(key)[0]
	strike := func() error {
		switch mode {
		case "flap":
			for _, rw := range fleet.Workers {
				if rw.Name == host {
					rw.Kill()
					// The replacement registers under the same name on a
					// fresh address: the flap the dispatcher must absorb
					// as a leave+join, not a stale redial.
					_, err := fleet.JoinWorker(mkWorker(host), 1e18)
					return err
				}
			}
			return fmt.Errorf("chaos: ring host %q not in harness", host)
		case "frontend-kill":
			fleet.Dispatchers[1].Close()
			fleet.Fleets[1].Close()
			return nil
		}
		return fmt.Errorf("chaos: unknown registered mode %q", mode)
	}

	if err := streamChaosRegistered(d, p, c, want, fault.At(seed, frames), strike, key); err != nil {
		return fmt.Errorf("chaos %s with a healthy path must be invisible: %w", mode, err)
	}

	fleet.Close()
	if err := waitChaos(10*time.Second, func() bool {
		return frame.Stats().Live <= baseline
	}); err != nil {
		return fmt.Errorf("chaos: arena leak: %d live references, baseline %d (mode %s seed %d)",
			frame.Stats().Live, baseline, mode, seed)
	}
	return nil
}

// streamChaosRegistered drives a keyed session, firing strike after
// feeding frame `at`, and holds every delivered frame to the oracle.
func streamChaosRegistered(d *cluster.Dispatcher, p *serve.Pipeline, c *Case,
	want []map[string][]frame.Window, at int, strike func() error, key string) error {

	deadline := time.Now().Add(90 * time.Second)
	h, err := d.Open(p, serve.OpenOptions{MaxInFlight: 2, Deadline: 2 * time.Minute, Key: key})
	if err != nil {
		return err
	}
	defer h.Close()

	outputs := c.Graph.Outputs()
	for f := 0; f < len(want); f++ {
		for {
			if _, err := h.TryFeed(nil); err == nil {
				break
			} else if !errors.Is(err, runtime.ErrQueueFull) {
				return err
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("hang: feed %d stuck in backpressure past the chaos deadline", f)
			}
			time.Sleep(2 * time.Millisecond)
		}
		if f == at {
			if err := strike(); err != nil {
				return err
			}
		}
		res, err := h.Collect(30 * time.Second)
		if err != nil {
			if strings.Contains(err.Error(), "timed out") {
				return fmt.Errorf("hang: collect %d timed out without a terminal session error", f)
			}
			return err
		}
		cmpErr := func() error {
			if res.Seq != int64(f) {
				return fmt.Errorf("chaos delivered frame %d, want %d (at-most-once broken)", res.Seq, f)
			}
			for _, out := range outputs {
				name := out.Name()
				if err := compareWindows(res.Outputs[name], want[f][name]); err != nil {
					return fmt.Errorf("silent corruption: output %q frame %d: %w", name, f, err)
				}
			}
			return nil
		}()
		for _, ws := range res.Outputs {
			for _, w := range ws {
				w.Release()
			}
		}
		if cmpErr != nil {
			return cmpErr
		}
	}
	return h.Close()
}

// waitChaos polls cond until true or the timeout expires.
func waitChaos(timeout time.Duration, cond func() bool) error {
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("condition not reached within %v", timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil
}
