package geom

import (
	"testing"
	"testing/quick"
)

func TestIterations(t *testing.T) {
	cases := []struct {
		data, win Size
		step      Step
		nx, ny    int
	}{
		// Paper §III-A: 5x5 conv on 100x100 image -> 96x96 iterations.
		{Sz(100, 100), Sz(5, 5), St(1, 1), 96, 96},
		// 3x3 median on 100x100 -> 98x98.
		{Sz(100, 100), Sz(3, 3), St(1, 1), 98, 98},
		// Non-overlapping 2x2 blocks on 8x6.
		{Sz(8, 6), Sz(2, 2), St(2, 2), 4, 3},
		// Window exactly the data size.
		{Sz(7, 7), Sz(7, 7), St(1, 1), 1, 1},
		// Window larger than data: no iterations.
		{Sz(4, 4), Sz(5, 5), St(1, 1), 0, 0},
		// Degenerate inputs.
		{Sz(0, 10), Sz(1, 1), St(1, 1), 0, 0},
		{Sz(10, 10), Sz(1, 1), St(0, 1), 0, 0},
		// Step larger than window (data skipped between windows).
		{Sz(10, 1), Sz(2, 1), St(4, 1), 3, 1},
	}
	for _, c := range cases {
		nx, ny := Iterations(c.data, c.win, c.step)
		if nx != c.nx || ny != c.ny {
			t.Errorf("Iterations(%v,%v,%v) = (%d,%d), want (%d,%d)",
				c.data, c.win, c.step, nx, ny, c.nx, c.ny)
		}
	}
}

func TestHalo(t *testing.T) {
	// Paper: 5x5 window, step (1,1) -> 4x4 halo; 3x3 -> 2x2.
	if got := Halo(Sz(5, 5), St(1, 1)); got != Sz(4, 4) {
		t.Errorf("Halo(5x5) = %v, want (4x4)", got)
	}
	if got := Halo(Sz(3, 3), St(1, 1)); got != Sz(2, 2) {
		t.Errorf("Halo(3x3) = %v, want (2x2)", got)
	}
	// Non-overlapping windows have no halo.
	if got := Halo(Sz(2, 2), St(2, 2)); got != Sz(0, 0) {
		t.Errorf("Halo(2x2 step 2) = %v, want (0x0)", got)
	}
	// Step beyond window clamps at zero rather than going negative.
	if got := Halo(Sz(2, 2), St(3, 3)); got != Sz(0, 0) {
		t.Errorf("Halo(2x2 step 3) = %v, want (0x0)", got)
	}
}

func TestSizeHelpers(t *testing.T) {
	if !Sz(3, 4).IsPositive() || Sz(0, 4).IsPositive() {
		t.Error("IsPositive misbehaves")
	}
	if Sz(3, 4).Area() != 12 {
		t.Error("Area misbehaves")
	}
	if !Sz(5, 5).Contains(Sz(3, 4)) || Sz(2, 9).Contains(Sz(3, 4)) {
		t.Error("Contains misbehaves")
	}
	if Sz(3, 4).Max(Sz(5, 2)) != Sz(5, 4) {
		t.Error("Max misbehaves")
	}
	if Sz(3, 4).String() != "(3x4)" {
		t.Errorf("String = %q", Sz(3, 4).String())
	}
}

func TestOffsetArithmetic(t *testing.T) {
	a := Off(2, 2)
	b := OffF(F(1, 2), F(3, 2))
	sum := a.Add(b)
	if !sum.Equal(OffF(F(5, 2), F(7, 2))) {
		t.Errorf("offset add = %v", sum)
	}
	diff := sum.Sub(b)
	if !diff.Equal(a) {
		t.Errorf("offset sub = %v", diff)
	}
	if !Off(0, 0).IsZero() || Off(1, 0).IsZero() {
		t.Error("IsZero misbehaves")
	}
	if Off(2, 2).String() != "[2,2]" {
		t.Errorf("String = %q", Off(2, 2).String())
	}
}

func TestRectBasics(t *testing.T) {
	r := R(1, 2, 5, 7)
	if r.W() != 4 || r.H() != 5 || r.Empty() {
		t.Errorf("rect dims wrong: %v", r)
	}
	if r.Size() != Sz(4, 5) {
		t.Errorf("rect size wrong: %v", r.Size())
	}
	if RectFromSize(Sz(3, 2)) != R(0, 0, 3, 2) {
		t.Error("RectFromSize wrong")
	}
	if !R(5, 5, 5, 9).Empty() {
		t.Error("degenerate rect should be empty")
	}
	if got := R(0, 0, 4, 4).Intersect(R(2, 2, 6, 6)); got != R(2, 2, 4, 4) {
		t.Errorf("Intersect = %v", got)
	}
	if got := R(0, 0, 2, 2).Intersect(R(3, 3, 5, 5)); !got.Empty() {
		t.Errorf("disjoint Intersect = %v not empty", got)
	}
	if got := R(0, 0, 2, 2).Union(R(3, 3, 5, 5)); got != R(0, 0, 5, 5) {
		t.Errorf("Union = %v", got)
	}
	if got := R(1, 1, 2, 2).Shift(3, -1); got != R(4, 0, 5, 1) {
		t.Errorf("Shift = %v", got)
	}
	if !R(0, 0, 5, 5).Contains(R(1, 1, 4, 4)) || R(0, 0, 5, 5).Contains(R(1, 1, 6, 4)) {
		t.Error("Contains misbehaves")
	}
}

func TestRectUnionWithEmpty(t *testing.T) {
	r := R(1, 1, 3, 3)
	if got := r.Union(Rect{}); got != r {
		t.Errorf("Union with empty = %v, want %v", got, r)
	}
	if got := (Rect{}).Union(r); got != r {
		t.Errorf("empty Union r = %v, want %v", got, r)
	}
}

func TestIterationsCoverageQuick(t *testing.T) {
	// Property: the last window in each dimension must fit inside data,
	// and one more step would overflow.
	prop := func(dw, dh, ww, wh, sx, sy uint8) bool {
		data := Sz(int(dw%64)+1, int(dh%64)+1)
		win := Sz(int(ww%8)+1, int(wh%8)+1)
		step := St(int(sx%4)+1, int(sy%4)+1)
		nx, ny := Iterations(data, win, step)
		if win.W > data.W || win.H > data.H {
			return nx == 0 && ny == 0
		}
		lastX := (nx-1)*step.X + win.W
		lastY := (ny-1)*step.Y + win.H
		if lastX > data.W || lastY > data.H {
			return false
		}
		return lastX+step.X > data.W && lastY+step.Y > data.H
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestRectIntersectWithinQuick(t *testing.T) {
	prop := func(ax0, ay0, aw, ah, bx0, by0, bw, bh uint8) bool {
		a := R(int(ax0), int(ay0), int(ax0)+int(aw%32), int(ay0)+int(ah%32))
		b := R(int(bx0), int(by0), int(bx0)+int(bw%32), int(by0)+int(bh%32))
		got := a.Intersect(b)
		return a.Contains(got) && b.Contains(got)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
