package frame

import (
	"math"
	"testing"
)

// fill numbers a window's samples row-major: 0, 1, 2, ...
func fill(w Window) Window {
	for y := 0; y < w.H; y++ {
		row := w.Row(y)
		for x := range row {
			row[x] = float64(y*w.W + x)
		}
	}
	return w
}

func TestAllocReleaseCycle(t *testing.T) {
	w := Alloc(8, 4)
	if !w.Pooled() {
		t.Fatal("Alloc returned an unpooled window")
	}
	for _, v := range w.Pix {
		if v != 0 {
			t.Fatal("Alloc did not zero the buffer")
		}
	}
	w.Release()
	// A second release of the same reference must panic.
	defer func() {
		if recover() == nil {
			t.Error("double Release did not panic")
		}
	}()
	w.Release()
}

func TestRetainAfterReleasePanics(t *testing.T) {
	w := Alloc(4, 4)
	w.Release()
	defer func() {
		if recover() == nil {
			t.Error("Retain on released storage did not panic")
		}
	}()
	w.Retain(1)
}

// TestOverlappingViewsAlias checks the aliasing contract: views carved
// from one ring share storage, and a mutation through one is visible
// through every overlapping view.
func TestOverlappingViewsAlias(t *testing.T) {
	ring := fill(Alloc(8, 4))
	a := ring.View(0, 0, 5, 3)
	b := ring.View(2, 1, 5, 3)
	if !a.SharesStorage(ring) || !b.SharesStorage(ring) || !a.SharesStorage(b) {
		t.Fatal("views do not share the ring's storage")
	}
	if a.RowStride() != 8 || b.RowStride() != 8 {
		t.Fatalf("view strides = %d, %d, want the ring width 8", a.RowStride(), b.RowStride())
	}
	// ring(3,2) lies inside both views: a(3,2) and b(1,1).
	a.Set(3, 2, -1)
	if got := b.At(1, 1); got != -1 {
		t.Fatalf("mutation through view a not visible through b: got %v", got)
	}
	if got := ring.At(3, 2); got != -1 {
		t.Fatalf("mutation not visible through the ring: got %v", got)
	}
	ring.Release()
}

// TestViewRetainOutlivesBase checks a retained view keeps the storage
// alive after the base reference is dropped.
func TestViewRetainOutlivesBase(t *testing.T) {
	ring := fill(Alloc(8, 2))
	v := ring.View(2, 0, 3, 2)
	v.Retain(1)
	ring.Release()
	if got := v.At(0, 1); got != 10 {
		t.Fatalf("view after base release: got %v, want 10", got)
	}
	v.Release()
}

// TestCloneOnStridedView checks Clone compacts a strided view into
// dense, independent, unpooled storage.
func TestCloneOnStridedView(t *testing.T) {
	ring := fill(Alloc(8, 4))
	v := ring.View(2, 1, 3, 2)
	c := v.Clone()
	if c.Pooled() {
		t.Fatal("Clone returned pooled storage")
	}
	if !c.IsDense() || len(c.Pix) != 6 {
		t.Fatalf("Clone not dense: stride %d, %d samples", c.Stride, len(c.Pix))
	}
	want := []float64{10, 11, 12, 18, 19, 20}
	for i, v := range c.Pix {
		if v != want[i] {
			t.Fatalf("Clone.Pix[%d] = %v, want %v", i, v, want[i])
		}
	}
	// Independence: mutating the ring must not show through the clone.
	ring.Set(2, 1, 99)
	if c.At(0, 0) != 10 {
		t.Fatal("Clone aliases the source ring")
	}
	ring.Release()
}

// TestDenseOnView compacts a strided view; the result must not share
// storage with the ring (Dense of a strided window is a copy).
func TestDenseOnView(t *testing.T) {
	ring := fill(Alloc(6, 3))
	v := ring.View(1, 0, 4, 3)
	d := v.Dense()
	if !d.IsDense() {
		t.Fatal("Dense returned a strided window")
	}
	if d.SharesStorage(ring) {
		t.Fatal("Dense of a strided view still aliases the ring")
	}
	if d.At(0, 0) != 1 || d.At(3, 2) != 16 {
		t.Fatalf("Dense values wrong: %v, %v", d.At(0, 0), d.At(3, 2))
	}
	ring.Release()
}

// TestReleaseThenReusePoisoning checks the debug detector: with
// poisoning on, storage read after its final release is NaN, so a
// stale view diverges loudly instead of silently reading recycled
// samples.
func TestReleaseThenReusePoisoning(t *testing.T) {
	prev := SetPoison(true)
	defer SetPoison(prev)
	ring := fill(Alloc(8, 2))
	stale := ring.View(0, 0, 4, 2) // kept past the release: a protocol bug
	ring.Release()
	if got := stale.At(0, 0); !math.IsNaN(got) {
		t.Fatalf("released storage read %v, want NaN poison", got)
	}
}

func TestAllocFallbackWhenDisabled(t *testing.T) {
	prev := SetZeroCopy(false)
	defer SetZeroCopy(prev)
	w := Alloc(4, 4)
	if w.Pooled() {
		t.Fatal("Alloc pooled a window with zero-copy disabled")
	}
	// Protocol calls must be no-ops on unpooled windows.
	w.Retain(3)
	w.Release()
	w.Release()
}

func TestPooledScalar(t *testing.T) {
	s := PooledScalar(2.5)
	if s.Value() != 2.5 || !s.Pooled() {
		t.Fatalf("PooledScalar = %v pooled=%v", s.Value(), s.Pooled())
	}
	s.Release()
}

func TestStatsTrackLiveBuffers(t *testing.T) {
	ResetStats()
	a := Alloc(16, 16)
	b := Alloc(16, 16)
	if got := Stats().Live; got != 2 {
		t.Fatalf("Live = %d, want 2", got)
	}
	a.Release()
	b.Release()
	st := Stats()
	if st.Live != 0 {
		t.Fatalf("Live after release = %d, want 0", st.Live)
	}
	if st.Gets != 2 {
		t.Fatalf("Gets = %d, want 2", st.Gets)
	}
}
