package frame

import (
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"
)

// This file implements the pooled backing-store arena behind zero-copy
// windows. The paper's premise (§III-B) is that a compiled graph runs
// in fixed, pre-sized memory regions; the software data plane mirrors
// that with a size-bucketed arena: kernels allocate window storage with
// Alloc/AllocKind, the runtime releases it at the graph edge where the
// item is consumed, and the storage cycles back for the next window of
// the same shape. sync.Pool backs the buckets, so a missed Release
// degrades to ordinary garbage collection instead of a leak.
//
// Buckets are classed by BYTES, not samples, so a 4096-pixel u8 window
// and a 512-sample f64 window recycle the same 4 KiB class. Every
// bucket's storage is a []float64 (8-byte aligned by construction);
// typed windows view it through unsafe.Slice, which keeps u8/f32 spans
// aligned for free.
//
// Ownership protocol (see DESIGN.md "Memory model"):
//
//   - A window returned by Alloc carries one reference, owned by
//     whoever holds the item.
//   - Delivering the item to k consumers requires k references: the
//     sender calls Retain(k-1) before fan-out.
//   - A consumer must end its reference exactly once: Release it,
//     forward the item downstream (ownership transfers), or keep it
//     forever (batch results).
//   - Clone always returns independent, unpooled storage; kernels use
//     it for anything they keep across firings.
//
// Windows whose storage did not come from Alloc (generator frames,
// Clone results, literals) have a nil ref and every protocol call is a
// no-op on them, so the protocol is safe to apply uniformly.

const (
	// minBucketLog is the smallest byte class (8 bytes: one f64 sample,
	// the 1×1 scalar hot path).
	minBucketLog = 3
	// maxBucketLog is the largest byte class the arena recycles
	// (8 MiB); larger windows fall through to plain allocation.
	maxBucketLog = 23
)

// Ref counts the live references to one pooled backing buffer.
type Ref struct {
	refs atomic.Int32
	// buf is the bucket's storage. It is always a []float64 — even for
	// typed windows — so the base address is 8-aligned and any element
	// kind can view it safely.
	buf    []float64
	bucket int
}

var buckets [maxBucketLog + 1]sync.Pool

// poolStats holds the arena's monitoring counters.
var poolStats struct {
	gets   atomic.Int64 // Alloc calls served by the arena
	hits   atomic.Int64 // ... of which reused a pooled buffer
	puts   atomic.Int64 // buffers returned by the final Release
	live   atomic.Int64 // buffers allocated and not yet released
	pooled atomic.Int64 // bytes sitting in the buckets (approximate:
	// sync.Pool may drop entries under GC pressure without telling us)
}

// PoolStats is a monitoring snapshot of the window arena, exposed by
// the serving /metrics endpoint and the bpsim -run stats output.
type PoolStats struct {
	// Gets counts pooled allocations; Hits of them were served from a
	// bucket without touching the heap.
	Gets int64 `json:"gets"`
	Hits int64 `json:"hits"`
	// Puts counts buffers returned by a final Release. Gets - Puts
	// equals Live, so a Puts gauge that stops tracking Gets after a
	// failure is the signature of a reference leak.
	Puts int64 `json:"puts"`
	// Live is the number of pooled buffers currently retained
	// somewhere in a pipeline or result set.
	Live int64 `json:"live"`
	// PooledBytes approximates the bytes parked in the buckets ready
	// for reuse (an upper bound: the GC may evict pool entries).
	PooledBytes int64 `json:"pooled_bytes"`
}

// HitRate returns the fraction of pooled allocations served without a
// heap allocation.
func (s PoolStats) HitRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

// Stats snapshots the arena counters.
func Stats() PoolStats {
	return PoolStats{
		Gets:        poolStats.gets.Load(),
		Hits:        poolStats.hits.Load(),
		Puts:        poolStats.puts.Load(),
		Live:        poolStats.live.Load(),
		PooledBytes: poolStats.pooled.Load(),
	}
}

// ResetStats zeroes the arena counters (benchmark harness use).
func ResetStats() {
	poolStats.gets.Store(0)
	poolStats.hits.Store(0)
	poolStats.puts.Store(0)
	poolStats.live.Store(0)
}

// zeroCopy gates the whole zero-copy data plane: pooled allocation and
// view-based input chunking. On by default; the copy-vs-zero-copy
// benchmarks and any emergency fallback flip it off, restoring the
// seed's copy-everything behavior.
var zeroCopy atomic.Bool

// poison gates the debug use-after-release detector: released buffers
// are filled with poison so any consumer still reading them diverges
// loudly in the differential conformance checks instead of silently
// reading recycled data. Tests enable it; production leaves it off.
var poison atomic.Bool

func init() { zeroCopy.Store(true) }

// SetZeroCopy toggles pooled allocation and view chunking, returning
// the previous setting. Not intended to be flipped while graphs run.
func SetZeroCopy(on bool) bool { return zeroCopy.Swap(on) }

// ZeroCopy reports whether the zero-copy data plane is enabled.
func ZeroCopy() bool { return zeroCopy.Load() }

// SetPoison toggles release-time buffer poisoning, returning the
// previous setting.
func SetPoison(on bool) bool { return poison.Swap(on) }

// Poisoning reports whether release-time poisoning is enabled.
func Poisoning() bool { return poison.Load() }

// bucketFor returns the smallest byte class holding n bytes, or -1
// when n is out of the arena's range.
func bucketFor(n int) int {
	if n < 1 || n > 1<<maxBucketLog {
		return -1
	}
	b := minBucketLog
	for 1<<b < n {
		b++
	}
	return b
}

// f64bytes views a float64 slice's full capacity as bytes.
func f64bytes(f []float64) []byte {
	if cap(f) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&f[:1][0])), cap(f)*8)
}

// Alloc returns a zeroed w×h F64 window backed by the arena. The
// caller owns one reference; see the ownership protocol above. With
// zero-copy disabled (or a shape outside the arena's range) it degrades
// to NewWindow.
func Alloc(w, h int) Window { return AllocKind(F64, w, h) }

// AllocKind returns a zeroed w×h window of the given element kind,
// backed by the arena. Buckets are shared across kinds: storage is
// classed by byte footprint, so typed windows recycle the same buffers
// as f64 ones.
func AllocKind(k Kind, w, h int) Window {
	nbytes := w * h * k.Bytes()
	b := -1
	if ZeroCopy() {
		b = bucketFor(nbytes)
	}
	if b < 0 {
		return NewWindowKind(k, w, h)
	}
	poolStats.gets.Add(1)
	poolStats.live.Add(1)
	var r *Ref
	if v := buckets[b].Get(); v != nil {
		r = v.(*Ref)
		poolStats.hits.Add(1)
		poolStats.pooled.Add(-int64(cap(r.buf)) * 8)
	} else {
		r = &Ref{buf: make([]float64, (1<<b)/8), bucket: b}
	}
	r.refs.Store(1)
	win := Window{W: w, H: h, Kind: k, ref: r}
	if k == F64 {
		pix := r.buf[:w*h]
		for i := range pix {
			pix[i] = 0
		}
		win.Pix = pix
	} else {
		raw := f64bytes(r.buf)[:nbytes]
		for i := range raw {
			raw[i] = 0
		}
		win.raw = raw
	}
	return win
}

// Retain adds n references to the window's pooled backing buffer so it
// can be delivered to n additional consumers. It is a no-op for
// unpooled windows. Retaining storage that has already been fully
// released is a protocol violation and panics.
func (w Window) Retain(n int) {
	if w.ref == nil || n <= 0 {
		return
	}
	if w.ref.refs.Add(int32(n)) <= int32(n) {
		panic(fmt.Sprintf("frame: Retain(%d) on released pooled window %dx%d", n, w.W, w.H))
	}
}

// Release drops one reference to the window's pooled backing buffer,
// returning the storage to the arena when the last reference ends.
// It is a no-op for unpooled windows. Releasing more references than
// were retained panics.
func (w Window) Release() {
	r := w.ref
	if r == nil {
		return
	}
	left := r.refs.Add(-1)
	if left < 0 {
		panic(fmt.Sprintf("frame: Release of already-released pooled window %dx%d", w.W, w.H))
	}
	if left > 0 {
		return
	}
	poolStats.live.Add(-1)
	poolStats.puts.Add(1)
	if poison.Load() {
		// 0xFF in every byte: a quiet NaN for f64/f32 rows, 255 for u8
		// rows — any stale reader diverges loudly in the differential
		// conformance comparison instead of silently reading recycled
		// samples.
		raw := f64bytes(r.buf)
		for i := range raw {
			raw[i] = 0xFF
		}
	}
	poolStats.pooled.Add(int64(cap(r.buf)) * 8)
	buckets[r.bucket].Put(r)
}

// Pooled reports whether the window's storage is arena-backed (and so
// participates in the retain/release protocol).
func (w Window) Pooled() bool { return w.ref != nil }

// SharesStorage reports whether two windows are views of the same
// pooled backing buffer.
func (w Window) SharesStorage(o Window) bool { return w.ref != nil && w.ref == o.ref }

// PooledScalar returns a 1×1 pooled window holding v — the hot-path
// variant of Scalar for per-sample kernel outputs.
func PooledScalar(v float64) Window {
	w := Alloc(1, 1)
	w.Pix[0] = v
	return w
}
