// Command bpfig regenerates the paper's experimental figures: the
// Figure 11 parallelization matrix, the Figure 12 mapping comparison,
// and the Figure 13 benchmark-suite utilization chart.
//
// Usage:
//
//	bpfig            # all figures
//	bpfig -fig 13    # just Figure 13
//	bpfig -frames 4  # longer simulations
package main

import (
	"flag"
	"fmt"
	"os"

	"blockpar/internal/machine"
	"blockpar/internal/report"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate: 11, 12, 13 (0 = all)")
	frames := flag.Int("frames", 2, "frames to simulate per benchmark")
	sweep := flag.Bool("sweep", false, "also run the processors-vs-rate sweep (§VI tradeoff)")
	flag.Parse()

	if err := run(*fig, *frames, *sweep); err != nil {
		fmt.Fprintln(os.Stderr, "bpfig:", err)
		os.Exit(1)
	}
}

func run(fig, frames int, sweep bool) error {
	m := machine.Embedded()
	if fig == 0 || fig == 11 {
		rows, err := report.Figure11(m)
		if err != nil {
			return err
		}
		fmt.Println(report.RenderFigure11(rows))
	}
	if fig == 0 || fig == 12 {
		r, err := report.Figure12(m, frames)
		if err != nil {
			return err
		}
		fmt.Println(report.RenderFigure12(r))
	}
	if sweep {
		points, err := report.RateSweep(m, []int64{100_000, 400_000, 800_000, 1_500_000, 3_000_000}, frames)
		if err != nil {
			return err
		}
		fmt.Println(report.RenderRateSweep(points))
	}
	if fig == 0 || fig == 13 {
		rows, err := report.Figure13(m, frames)
		if err != nil {
			return err
		}
		fmt.Println("Figure 13: processor utilization, 1:1 vs greedy mapping (run/read/write)")
		fmt.Println()
		fmt.Println(report.RenderFigure13(rows))
	}
	return nil
}
