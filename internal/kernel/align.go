package kernel

import (
	"fmt"

	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/token"
)

// Inset builds the trim kernel inserted by the alignment pass (paper
// §III-C, the "inverted house" of Figure 3): it discards plan.L/R
// columns and plan.T/B rows of its item grid so two differently-haloed
// streams line up. Row structure is regenerated: end-of-line is emitted
// after the last kept item of each kept row, end-of-frame forwarded.
func Inset(name string, plan InsetPlan, item geom.Size) *graph.Node {
	if plan.OutW() < 1 || plan.OutH() < 1 {
		panic(fmt.Sprintf("kernel: inset %+v trims everything", plan))
	}
	n := graph.NewNode(name, graph.KindInset)
	n.CreateInput("in", item, geom.St(item.W, item.H), geom.Off(0, 0))
	n.CreateOutput("out", item, geom.St(item.W, item.H))
	n.RegisterMethod("inset", fsmPerItem, 4)
	n.RegisterMethodInput("inset", "in")
	n.RegisterMethodOutput("inset", "out")
	n.Attrs["label"] = plan.Label()
	n.Behavior = &insetBehavior{plan: plan}
	return n
}

type insetBehavior struct {
	plan BufferlessPlan
	x, y int
	row  int64
}

// BufferlessPlan is the interface shared by inset plans; declared to
// keep insetBehavior testable with alternative plans.
type BufferlessPlan interface {
	Keep(x, y int) (keep, rowEnd bool)
}

func (b *insetBehavior) Clone() graph.Behavior {
	return &insetBehavior{plan: b.plan}
}

// AcceptsBatch implements graph.BatchAware: an item-row span is trimmed
// by re-slicing — the kept run leaves as a sub-span view sharing the
// incoming storage instead of per-item traffic.
func (b *insetBehavior) AcceptsBatch(input string) bool { return input == "in" }

func (b *insetBehavior) Run(ctx graph.RunContext) error {
	for {
		it, ok := ctx.Recv("in")
		if !ok {
			return nil
		}
		if it.IsToken {
			switch it.Tok.Kind {
			case token.EndOfLine:
				b.x = 0
				b.y++
			case token.EndOfFrame:
				b.x, b.y, b.row = 0, 0, 0
				ctx.Send("out", it)
			default:
				ctx.Send("out", it)
			}
			continue
		}
		n := it.BatchN()
		if n == 1 {
			keep, rowEnd := b.plan.Keep(b.x, b.y)
			if keep {
				ctx.Send("out", it)
				if rowEnd {
					ctx.Send("out", graph.TokenItem(token.EOL(b.row)))
					b.row++
				}
			} else {
				// Trimmed: this kernel was the item's only consumer.
				it.Win.Release()
			}
			b.x++
			continue
		}
		b.insetSpan(ctx, it, n)
	}
}

// insetSpan applies the trim to a span of n grid items at columns
// [b.x, b.x+n) of item row b.y: each maximal run of kept items is
// forwarded as one sub-span view, trimmed items are dropped with the
// storage reference, and the regenerated end-of-line follows the item
// that ends a kept row. Emission order matches the scalar path exactly.
func (b *insetBehavior) insetSpan(ctx graph.RunContext, it graph.Item, n int) {
	type run struct {
		j0, j1 int // kept item range [j0, j1)
		rowEnd bool
	}
	var runs []run
	for j := 0; j < n; j++ {
		keep, rowEnd := b.plan.Keep(b.x+j, b.y)
		if !keep {
			continue
		}
		if len(runs) > 0 && runs[len(runs)-1].j1 == j && !runs[len(runs)-1].rowEnd {
			runs[len(runs)-1].j1 = j + 1
			runs[len(runs)-1].rowEnd = rowEnd
		} else {
			runs = append(runs, run{j0: j, j1: j + 1, rowEnd: rowEnd})
		}
	}
	b.x += n
	if len(runs) == 0 {
		it.Win.Release()
		return
	}
	it.Win.Retain(len(runs) - 1)
	sx, bw := int(it.B.Sx), int(it.B.Bw)
	for _, r := range runs {
		m := r.j1 - r.j0
		sub := it.Win.View(r.j0*sx, 0, (m-1)*sx+bw, it.Win.H)
		ctx.Send("out", graph.BatchItem(sub, graph.Batch{
			N: int32(m), Sx: int32(sx), Bw: int32(bw),
		}))
		if r.rowEnd {
			ctx.Send("out", graph.TokenItem(token.EOL(b.row)))
			b.row++
		}
	}
}

// InsetPlanOf exposes the plan of an Inset node.
func InsetPlanOf(n *graph.Node) (InsetPlan, bool) {
	b, ok := n.Behavior.(*insetBehavior)
	if !ok {
		return InsetPlan{}, false
	}
	p, ok := b.plan.(InsetPlan)
	return p, ok
}

// Pad builds the zero-padding kernel, the alignment pass's alternative
// to trimming (§III-C: "the compiler can either pad evenly around the
// input to the convolution filter ... or trim"). It works on 1×1 sample
// streams: plan.T full zero rows first, then each input row wrapped in
// plan.L and plan.R zeros, then plan.B zero rows, with regenerated
// end-of-line structure.
func Pad(name string, plan PadPlan) *graph.Node {
	n := graph.NewNode(name, graph.KindPad)
	n.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	n.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	n.RegisterMethod("pad", fsmPerItem, 4)
	n.RegisterMethodInput("pad", "in")
	n.RegisterMethodOutput("pad", "out")
	n.Attrs["label"] = plan.Label()
	n.Behavior = &padBehavior{plan: plan}
	return n
}

type padBehavior struct {
	plan    PadPlan
	x, y    int
	row     int64
	topDone bool
	// kind is the stream's element kind, latched from the first data
	// item so inserted zero samples match (zero is exact in every kind).
	kind frame.Kind
}

func (b *padBehavior) Clone() graph.Behavior { return &padBehavior{plan: b.plan} }

// PadPlanOf exposes the plan of a Pad node.
func PadPlanOf(n *graph.Node) (PadPlan, bool) {
	b, ok := n.Behavior.(*padBehavior)
	if !ok {
		return PadPlan{}, false
	}
	return b.plan, true
}

func (b *padBehavior) zero() frame.Window {
	return frame.AllocKind(b.kind, 1, 1)
}

func (b *padBehavior) emitZeroRow(ctx graph.RunContext) {
	for i := 0; i < b.plan.OutW(); i++ {
		ctx.Send("out", graph.DataItem(b.zero()))
	}
	ctx.Send("out", graph.TokenItem(token.EOL(b.row)))
	b.row++
}

func (b *padBehavior) Run(ctx graph.RunContext) error {
	p := b.plan
	for {
		it, ok := ctx.Recv("in")
		if !ok {
			return nil
		}
		if it.IsToken {
			switch it.Tok.Kind {
			case token.EndOfLine:
				if b.x != p.InW {
					return fmt.Errorf("kernel: pad %q EOL after %d of %d samples",
						ctx.Node().Name(), b.x, p.InW)
				}
				for i := 0; i < p.R; i++ {
					ctx.Send("out", graph.DataItem(b.zero()))
				}
				ctx.Send("out", graph.TokenItem(token.EOL(b.row)))
				b.row++
				b.x = 0
				b.y++
			case token.EndOfFrame:
				for i := 0; i < p.B; i++ {
					b.emitZeroRow(ctx)
				}
				ctx.Send("out", it)
				b.x, b.y, b.row, b.topDone = 0, 0, 0, false
			default:
				ctx.Send("out", it)
			}
			continue
		}
		if !b.topDone {
			b.kind = it.Win.Kind
			for i := 0; i < p.T; i++ {
				b.emitZeroRow(ctx)
			}
			b.topDone = true
		}
		if b.x == 0 {
			for i := 0; i < p.L; i++ {
				ctx.Send("out", graph.DataItem(b.zero()))
			}
		}
		ctx.Send("out", it)
		b.x++
	}
}
