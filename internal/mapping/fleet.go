package mapping

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"blockpar/internal/analysis"
	"blockpar/internal/graph"
	"blockpar/internal/machine"
)

// This file retargets the mapping machinery from PEs to a worker
// fleet: a Target is one worker process's capacity instead of one
// processing element, and FleetAssign splits a compiled graph into one
// node set per worker. The same analysis-derived demand (cycles/sec
// and memory words) drives the packing, and the same annealing energy
// trade (communication words vs. load balance, energy.go) refines it —
// except that here a cut edge becomes a network stream, so the
// assignment additionally guarantees the cuts are executable: feedback
// cycles and dependence-constrained node pairs never straddle a cut,
// and the partition-level quotient graph stays acyclic.

// Target describes one worker in a fleet: a capacity budget expressed
// in the same units as analysis.Load, so the packer can reuse the
// per-node demand numbers unchanged.
type Target struct {
	Name string
	// CyclesPerSec is the worker's compute budget. Exceeding it makes
	// the worker the pipeline's bottleneck but is not an error; the
	// annealer penalizes overload and balances it away when it can.
	CyclesPerSec int64
	// MemWords is the worker's storage budget — a hard constraint.
	MemWords int64
}

// ErrInfeasible reports a fleet that cannot hold the graph at all: a
// co-location group larger than every target's memory, or total demand
// exceeding total fleet memory. Callers must not retry a bigger anneal
// budget on it; only more or bigger workers help.
var ErrInfeasible = errors.New("mapping: graph does not fit fleet")

// FleetAssign partitions a compiled graph across a worker fleet. The
// returned Assignment maps every node (including application inputs
// and outputs, which the owning worker feeds and collects) to a target
// index; NumPEs is len(targets), and targets may end up empty.
//
// The split is sound by construction:
//
//   - Nodes connected by dependence edges share a target, and so does
//     every strongly-connected component of the stream graph (a
//     feedback loop must run within one worker's mailbox plane).
//   - The quotient graph over targets is acyclic, so cut-edge streams
//     flow strictly forward and no dependency cycle crosses a cut.
//   - A target's memory budget is never exceeded; an impossible fit
//     returns ErrInfeasible.
//
// The initial assignment packs co-location groups in topological order
// (one target at a time, so a single-target fleet trivially reproduces
// the whole-session placement), then simulated annealing — the same
// deterministic xorshift schedule as Anneal — trades cut words against
// load balance under DefaultEnergy pricing. Deterministic per seed.
func FleetAssign(g *graph.Graph, r *analysis.Result, m machine.Machine, targets []Target, seed uint64) (*Assignment, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("mapping: fleet is empty")
	}
	for i, t := range targets {
		if t.CyclesPerSec <= 0 || t.MemWords <= 0 {
			return nil, fmt.Errorf("mapping: target %d (%q) has non-positive capacity", i, t.Name)
		}
	}
	nodes := g.Nodes()
	a := &Assignment{PEOf: make(map[*graph.Node]int, len(nodes)), NumPEs: len(targets)}
	if len(targets) == 1 {
		for _, n := range nodes {
			a.PEOf[n] = 0
		}
		return a, nil
	}

	f, err := newFleetState(g, r, m, targets)
	if err != nil {
		return nil, err
	}
	if err := f.packInitial(); err != nil {
		return nil, err
	}
	f.anneal(seed)
	for i, n := range nodes {
		a.PEOf[n] = f.targetOf[f.groupOf[i]]
	}
	return a, nil
}

// fleetState is the packing workspace: nodes collapsed into
// co-location groups, per-group demand, and the inter-group edges that
// become cut streams when groups land on different targets.
type fleetState struct {
	targets []Target
	groups  []fleetGroup
	// edges are the distinct inter-group stream edges, with the words
	// per frame a cut there would move.
	edges []fleetEdge
	// groupOf maps node index (in graph order) to group index.
	groupOf []int
	// targetOf is the current assignment, group index → target index.
	targetOf []int
}

type fleetGroup struct {
	cycles float64
	mem    int64
	// order is the minimum topological index of the group's members,
	// used to pack groups in stream order.
	order int
	// names of member nodes, for diagnostics.
	names []string
}

type fleetEdge struct {
	from, to int // group indices
	words    int64
}

func newFleetState(g *graph.Graph, r *analysis.Result, m machine.Machine, targets []Target) (*fleetState, error) {
	nodes := g.Nodes()
	idx := make(map[*graph.Node]int, len(nodes))
	for i, n := range nodes {
		idx[n] = i
	}

	// Union-find over nodes: dependence-edge endpoints and every
	// strongly-connected component (cycles exist only through feedback
	// nodes) must land on one target.
	parent := make([]int, len(nodes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(x, y int) {
		rx, ry := find(x), find(y)
		if rx != ry {
			parent[rx] = ry
		}
	}
	for _, d := range g.Deps() {
		union(idx[d.From], idx[d.To])
	}
	// Windowed-sharing groups: a share buffer and its readers exchange
	// arena references into one ring, which cannot cross a wire cut, so
	// every node tagged with one share group lands on one target.
	shareRoot := make(map[string]int)
	for i, n := range nodes {
		name := n.Attrs["share"]
		if name == "" {
			continue
		}
		if r, ok := shareRoot[name]; ok {
			union(r, i)
		} else {
			shareRoot[name] = i
		}
	}
	// Fixpoint: collapsing dependence edges can fuse nodes from distant
	// stream ranks into one group, which in turn can close new cycles
	// at the group level (A→B and B→A through different members). Any
	// such pair could never be cut acyclically, so it too must be one
	// group. Iterate SCC-collapse on the condensed graph until the
	// group DAG is genuinely acyclic.
	for {
		merged := false
		for _, scc := range stronglyConnected(len(nodes), func(i int) int { return find(i) }, g, idx) {
			for _, n := range scc[1:] {
				union(scc[0], n)
				merged = true
			}
		}
		if !merged {
			break
		}
	}

	// Topological order index per node; feedback in-edges are ignored
	// by Topological, so a valid compiled graph always orders.
	topo, err := g.Topological()
	if err != nil {
		return nil, fmt.Errorf("mapping: fleet order: %w", err)
	}
	topoIdx := make(map[*graph.Node]int, len(topo))
	for i, n := range topo {
		topoIdx[n] = i
	}

	f := &fleetState{targets: targets, groupOf: make([]int, len(nodes))}
	groupIdx := make(map[int]int) // union root → group index
	for i, n := range nodes {
		root := find(i)
		gi, ok := groupIdx[root]
		if !ok {
			gi = len(f.groups)
			groupIdx[root] = gi
			f.groups = append(f.groups, fleetGroup{order: math.MaxInt})
		}
		f.groupOf[i] = gi
		grp := &f.groups[gi]
		l := r.LoadOf(n, m)
		grp.cycles += l.CyclesPerSec
		grp.mem += l.MemWords
		grp.names = append(grp.names, n.Name())
		if ti := topoIdx[n]; ti < grp.order {
			grp.order = ti
		}
	}

	// Collapse stream edges to distinct inter-group edges with their
	// cut traffic. Fan-out to several nodes of one group still cuts
	// once per original edge, so sum rather than dedup.
	type key struct{ from, to int }
	words := make(map[key]int64)
	for _, e := range g.Edges() {
		gf, gt := f.groupOf[idx[e.From.Node()]], f.groupOf[idx[e.To.Node()]]
		if gf == gt {
			continue
		}
		var w int64
		if info, ok := r.Out[e.From]; ok {
			w = info.WordsPerFrame()
		} else {
			w = e.From.Words()
		}
		words[key{gf, gt}] += w
	}
	keys := make([]key, 0, len(words))
	for k := range words {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	for _, k := range keys {
		f.edges = append(f.edges, fleetEdge{from: k.from, to: k.to, words: words[k]})
	}
	return f, nil
}

// packInitial places groups in topological order of the group DAG,
// filling one target before moving to the next — every inter-group
// edge then points forward in pack order, so contiguous segments give
// an acyclic quotient by construction. Memory is hard; overloading a
// target's cycle budget only advances to the next target while one
// remains.
func (f *fleetState) packInitial() error {
	order := f.groupTopoOrder()

	f.targetOf = make([]int, len(f.groups))
	used := make([]struct {
		cycles float64
		mem    int64
	}, len(f.targets))
	cur := 0
	for _, gi := range order {
		grp := f.groups[gi]
		for cur < len(f.targets)-1 {
			t := f.targets[cur]
			fits := used[cur].mem+grp.mem <= t.MemWords &&
				(used[cur].cycles == 0 || used[cur].cycles+grp.cycles <= float64(t.CyclesPerSec))
			if fits {
				break
			}
			cur++
		}
		if used[cur].mem+grp.mem > f.targets[cur].MemWords {
			// The tail target is out of memory (or the group alone is too
			// big for it): fall back to any earlier target with room. Any
			// such move keeps the quotient acyclic only if checked, so
			// verify before committing.
			placed := false
			for t := range f.targets {
				if used[t].mem+grp.mem > f.targets[t].MemWords {
					continue
				}
				f.targetOf[gi] = t
				if f.quotientAcyclic() {
					used[t].cycles += grp.cycles
					used[t].mem += grp.mem
					placed = true
					break
				}
			}
			if !placed {
				return fmt.Errorf("%w: group {%s} needs %d words, no target has room",
					ErrInfeasible, groupLabel(grp), grp.mem)
			}
			continue
		}
		f.targetOf[gi] = cur
		used[cur].cycles += grp.cycles
		used[cur].mem += grp.mem
	}
	// The memory fallback above places out of stream order; if that
	// produced an inter-target cycle there is no assignment to repair
	// from, so report the fleet as infeasible.
	if !f.quotientAcyclic() {
		return fmt.Errorf("%w: memory pressure forces a cyclic cut", ErrInfeasible)
	}
	return nil
}

// groupTopoOrder is a Kahn order of the group DAG, tie-broken by the
// groups' minimum stream rank for determinism and locality. The SCC
// fixpoint in newFleetState guarantees the DAG has no cycles; if one
// sneaks through regardless, the stragglers append in rank order and
// packInitial's final acyclicity check reports the infeasibility.
func (f *fleetState) groupTopoOrder() []int {
	indeg := make([]int, len(f.groups))
	succ := make([][]int, len(f.groups))
	seen := make(map[[2]int]bool, len(f.edges))
	for _, e := range f.edges {
		k := [2]int{e.from, e.to}
		if e.from == e.to || seen[k] {
			continue
		}
		seen[k] = true
		succ[e.from] = append(succ[e.from], e.to)
		indeg[e.to]++
	}
	order := make([]int, 0, len(f.groups))
	placed := make([]bool, len(f.groups))
	for len(order) < len(f.groups) {
		best := -1
		for gi := range f.groups {
			if placed[gi] || indeg[gi] > 0 {
				continue
			}
			if best < 0 || f.groups[gi].order < f.groups[best].order {
				best = gi
			}
		}
		if best < 0 {
			// Cycle residue: emit the rest in rank order.
			for gi := range f.groups {
				if !placed[gi] {
					order = append(order, gi)
					placed[gi] = true
				}
			}
			break
		}
		placed[best] = true
		order = append(order, best)
		for _, t := range succ[best] {
			indeg[t]--
		}
	}
	return order
}

func groupLabel(grp fleetGroup) string {
	if len(grp.names) <= 3 {
		return fmt.Sprintf("%v", grp.names)
	}
	return fmt.Sprintf("%v…+%d", grp.names[:3], len(grp.names)-3)
}

// quotientAcyclic reports whether the partition-level graph (stream
// edges plus the co-location-collapsed dependence edges) is a DAG.
// Intra-target cycles are fine — they run on one worker — but an
// inter-target cycle would make two workers each wait on the other's
// stream, so such an assignment is rejected outright.
func (f *fleetState) quotientAcyclic() bool {
	n := len(f.targets)
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for _, e := range f.edges {
		ft, tt := f.targetOf[e.from], f.targetOf[e.to]
		if ft != tt {
			adj[ft][tt] = true
		}
	}
	// Kahn over the target quotient.
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if adj[i][j] {
				indeg[j]++
			}
		}
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		seen++
		for j := 0; j < n; j++ {
			if adj[v][j] {
				indeg[j]--
				if indeg[j] == 0 {
					queue = append(queue, j)
				}
			}
		}
	}
	return seen == n
}

// energy prices the current assignment: cut words at PJPerWordHop (a
// cut edge is one "hop" worth of network traffic per frame) plus a
// strong overload penalty and a mild idle term, mirroring
// EnergyPerFrame's structure with balance substituted for placement.
func (f *fleetState) energy(em EnergyModel) float64 {
	var cut float64
	for _, e := range f.edges {
		if f.targetOf[e.from] != f.targetOf[e.to] {
			cut += float64(e.words)
		}
	}
	load := make([]float64, len(f.targets))
	for gi, t := range f.targetOf {
		load[t] += f.groups[gi].cycles
	}
	var overload, idle float64
	for i := range f.targets {
		budget := float64(f.targets[i].CyclesPerSec)
		if load[i] > budget {
			overload += load[i] - budget
		} else {
			idle += budget - load[i]
		}
	}
	// Overloading a worker stalls the whole pipeline; price it well
	// above moving the words instead.
	return em.PJPerWordHop*cut + 8*em.PJPerCycle*overload + em.PJPerIdleCycle*idle
}

// anneal refines the packing by moving single groups between targets,
// rejecting any move that breaks a memory budget or the quotient DAG.
func (f *fleetState) anneal(seed uint64) {
	if len(f.groups) < 2 {
		return
	}
	em := DefaultEnergy()
	mem := make([]int64, len(f.targets))
	for gi, t := range f.targetOf {
		mem[t] += f.groups[gi].mem
	}
	rng := annealRNG(seed | 1)
	cost := f.energy(em)
	temp := cost/float64(len(f.groups)) + 1
	const iters = 2000
	for i := 0; i < iters; i++ {
		gi := rng.intn(len(f.groups))
		to := rng.intn(len(f.targets))
		from := f.targetOf[gi]
		if to == from {
			continue
		}
		if mem[to]+f.groups[gi].mem > f.targets[to].MemWords {
			continue
		}
		f.targetOf[gi] = to
		if !f.quotientAcyclic() {
			f.targetOf[gi] = from
			continue
		}
		next := f.energy(em)
		if next <= cost || rng.float() < math.Exp((cost-next)/temp) {
			cost = next
			mem[from] -= f.groups[gi].mem
			mem[to] += f.groups[gi].mem
		} else {
			f.targetOf[gi] = from
		}
		temp *= 0.999
	}
}

// stronglyConnected returns the non-trivial strongly-connected
// components of the condensed stream graph: nodes are collapsed to
// their union-find representative (rep), and the components are
// reported as representative index slices. All stream edges count,
// including those into feedback nodes. Iterative Tarjan, deterministic
// in graph order.
func stronglyConnected(n int, rep func(int) int, g *graph.Graph, idx map[*graph.Node]int) [][]int {
	dense := make(map[int]int, n)
	var reps []int
	for i := 0; i < n; i++ {
		r := rep(i)
		if _, ok := dense[r]; !ok {
			dense[r] = len(reps)
			reps = append(reps, r)
		}
	}
	adj := make([][]int, len(reps))
	for _, e := range g.Edges() {
		f := dense[rep(idx[e.From.Node()])]
		t := dense[rep(idx[e.To.Node()])]
		if f != t {
			adj[f] = append(adj[f], t)
		}
	}
	const unvisited = -1
	index := make([]int, len(reps))
	low := make([]int, len(reps))
	onStack := make([]bool, len(reps))
	for i := range index {
		index[i] = unvisited
	}
	var stack []int
	var sccs [][]int
	next := 0

	type frame struct{ v, ei int }
	for start := range reps {
		if index[start] != unvisited {
			continue
		}
		work := []frame{{v: start}}
		for len(work) > 0 {
			fr := &work[len(work)-1]
			v := fr.v
			if fr.ei == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for fr.ei < len(adj[v]) {
				w := adj[v][fr.ei]
				fr.ei++
				if index[w] == unvisited {
					work = append(work, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, reps[w])
					if w == v {
						break
					}
				}
				if len(scc) > 1 {
					sccs = append(sccs, scc)
				}
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return sccs
}
