package report

import (
	"strings"
	"testing"

	"blockpar/internal/apps"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/machine"
)

func TestRunBenchmarkProducesSaneRow(t *testing.T) {
	app := apps.HistogramApp("report-hist", apps.HistCfg{
		W: 32, H: 24, Rate: geom.F(apps.SlowRate, 32*24), Bins: 16,
	})
	row, err := RunBenchmark(app, machine.Embedded(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if row.OneToOne.PEs < 1 || row.Greedy.PEs < 1 {
		t.Errorf("PE counts: %d / %d", row.OneToOne.PEs, row.Greedy.PEs)
	}
	if row.Greedy.PEs > row.OneToOne.PEs {
		t.Errorf("greedy uses more PEs (%d) than 1:1 (%d)", row.Greedy.PEs, row.OneToOne.PEs)
	}
	if !row.OneToOne.RealTimeMet || !row.Greedy.RealTimeMet {
		t.Error("real time missed")
	}
	if row.Improvement() < 1 {
		t.Errorf("improvement = %.2f, want >= 1", row.Improvement())
	}
	u := row.OneToOne.Util
	if u.Total() <= 0 || u.Run <= 0 {
		t.Errorf("utilization breakdown empty: %+v", u)
	}
}

// TestFigure12Shape verifies the §V claim end to end: on the running
// example, greedy multiplexing raises simulated mean utilization while
// both mappings keep real time.
func TestFigure12Shape(t *testing.T) {
	r, err := Figure12(machine.Embedded(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Row.OneToOne.RealTimeMet || !r.Row.Greedy.RealTimeMet {
		t.Error("real time missed")
	}
	if imp := r.Row.Improvement(); imp < 1.2 {
		t.Errorf("greedy improvement = %.2fx, want >= 1.2x", imp)
	}
	// At least one PE group must actually multiplex several kernels.
	multiplexed := false
	for _, g := range r.Groups {
		if len(g) > 1 {
			multiplexed = true
		}
	}
	if !multiplexed {
		t.Error("no PE multiplexes more than one kernel")
	}
	out := RenderFigure12(r)
	for _, want := range []string{"1:1 mapping", "greedy mapping", "PE0"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// TestFigure11Shape verifies the two axes of Figure 11: buffers grow
// with input size at fixed sample rate; compute degrees grow with
// sample rate at fixed size; the merge stays serial everywhere.
func TestFigure11Shape(t *testing.T) {
	rows, err := Figure11(machine.Embedded())
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]Figure11Row{}
	for _, r := range rows {
		byID[r.Preset.ID] = r
	}
	ss, bs, sf, bf := byID["SS"], byID["BS"], byID["SF"], byID["BF"]

	// Size axis: more/larger buffering, similar compute.
	if bs.Counts[graph.KindBuffer] < ss.Counts[graph.KindBuffer] {
		t.Errorf("BS buffers (%d) < SS buffers (%d)", bs.Counts[graph.KindBuffer], ss.Counts[graph.KindBuffer])
	}
	// Rate axis: strictly more compute parallelism.
	if sf.Degrees["5x5 Conv"] <= ss.Degrees["5x5 Conv"] {
		t.Errorf("SF conv degree (%d) not above SS (%d)", sf.Degrees["5x5 Conv"], ss.Degrees["5x5 Conv"])
	}
	if sf.Degrees["3x3 Median"] <= ss.Degrees["3x3 Median"] {
		t.Errorf("SF median degree not above SS")
	}
	// Both axes: BF has the most PEs.
	if !(bf.PEs >= sf.PEs && bf.PEs >= bs.PEs && bs.PEs >= ss.PEs) {
		t.Errorf("PE ordering violated: SS=%d BS=%d SF=%d BF=%d", ss.PEs, bs.PEs, sf.PEs, bf.PEs)
	}
	// Serial merge everywhere.
	for id, r := range byID {
		if r.Degrees["Merge"] != 1 {
			t.Errorf("%s: merge degree %d", id, r.Degrees["Merge"])
		}
	}
	out := RenderFigure11(rows)
	if !strings.Contains(out, "SS") || !strings.Contains(out, "BF") {
		t.Error("render missing presets")
	}
}

// TestFigure13Headline runs the full suite and asserts the paper's
// headline numbers hold in shape: every benchmark meets real time under
// both mappings, greedy never loses, and the average improvement is in
// the paper's neighborhood (paper: 1.5x; accept 1.2-2.5x).
func TestFigure13Headline(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite simulation is slow")
	}
	rows, err := Figure13(machine.Embedded(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("rows = %d, want 15", len(rows))
	}
	for _, r := range rows {
		if !r.OneToOne.RealTimeMet || !r.Greedy.RealTimeMet {
			t.Errorf("%s: real time missed", r.ID)
		}
		if r.Improvement() < 0.999 {
			t.Errorf("%s: greedy lost: %.2fx", r.ID, r.Improvement())
		}
		if r.Greedy.PEs > r.OneToOne.PEs {
			t.Errorf("%s: greedy uses more PEs", r.ID)
		}
	}
	avg := AverageImprovement(rows)
	if avg < 1.2 || avg > 2.5 {
		t.Errorf("average improvement = %.2fx, want within [1.2, 2.5] around the paper's 1.5x", avg)
	}
	out := RenderFigure13(rows)
	if !strings.Contains(out, "average utilization improvement") {
		t.Error("render missing summary line")
	}
	t.Logf("average improvement: %.2fx", avg)
}

func TestAverageImprovementEmpty(t *testing.T) {
	if AverageImprovement(nil) != 0 {
		t.Error("empty rows should average 0")
	}
}
