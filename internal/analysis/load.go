package analysis

import (
	"blockpar/internal/graph"
	"blockpar/internal/machine"
)

// Load is a node's demand expressed against a machine's PE: the
// fraction of one PE's cycles it needs (including port access costs)
// and the memory it requires.
type Load struct {
	// CyclesPerSec is the total demand: compute plus read/write cost.
	CyclesPerSec float64
	// Utilization is CyclesPerSec / PE.CyclesPerSec.
	Utilization float64
	// RunFrac, ReadFrac, WriteFrac decompose Utilization (the paper's
	// Figure 13 breakdown).
	RunFrac, ReadFrac, WriteFrac float64
	// MemWords is the node's storage demand.
	MemWords int64
}

// LoadOf computes a node's load on the given machine from the analysis.
func (r *Result) LoadOf(n *graph.Node, m machine.Machine) Load {
	ni, ok := r.Nodes[n]
	if !ok {
		return Load{}
	}
	rate := ni.Rate.Float()
	run := float64(ni.CyclesPerFrame) * rate
	read := float64(ni.ReadWordsPerFrame*m.PE.ReadCost) * rate
	write := float64(ni.WriteWordsPerFrame*m.PE.WriteCost) * rate
	total := run + read + write
	clock := float64(m.PE.CyclesPerSec)
	return Load{
		CyclesPerSec: total,
		Utilization:  total / clock,
		RunFrac:      run / clock,
		ReadFrac:     read / clock,
		WriteFrac:    write / clock,
		MemWords:     ni.MemoryWords,
	}
}

// degreeHeadroom is the fraction of a PE the degree calculation
// budgets for: 10% headroom absorbs the unevenness of column striping
// (stripes differ by up to one window per row) and scheduling slack, so
// no single instance lands marginally above one PE.
const degreeHeadroom = 0.9

// DegreeFor returns the parallelism a node needs to meet its rate on
// the machine (§IV: required rate × resources per iteration ÷ PE
// resources, rounded up), considering both cycles and memory. The
// result is at least 1.
func (r *Result) DegreeFor(n *graph.Node, m machine.Machine) int {
	l := r.LoadOf(n, m)
	deg := 1
	if cyc := int(ceilDiv(l.CyclesPerSec, degreeHeadroom*float64(m.PE.CyclesPerSec))); cyc > deg {
		deg = cyc
	}
	if l.MemWords > m.PE.MemWords {
		memDeg := int((l.MemWords + m.PE.MemWords - 1) / m.PE.MemWords)
		if memDeg > deg {
			deg = memDeg
		}
	}
	return deg
}

func ceilDiv(a, b float64) float64 {
	q := a / b
	if q != float64(int64(q)) {
		return float64(int64(q) + 1)
	}
	if q < 1 {
		return 1
	}
	return q
}
