package blockpar_test

import (
	"fmt"

	"blockpar"
)

// Example builds the minimal real-time application, compiles it, and
// verifies it functionally and on the timing simulator.
func Example() {
	app := blockpar.NewApp("doc-example")
	in := app.AddInput("Input", blockpar.Sz(16, 12), blockpar.Sz(1, 1), blockpar.FInt(100))
	med := app.Add(blockpar.Median("3x3 Median", 3))
	out := app.AddOutput("Output", blockpar.Sz(1, 1))
	app.Connect(in, "out", med, "in")
	app.Connect(med, "out", out, "in")

	cfg := blockpar.DefaultConfig()
	compiled, err := blockpar.Compile(app, cfg)
	if err != nil {
		panic(err)
	}

	res, err := blockpar.Run(compiled.Graph, blockpar.RunOptions{Frames: 1})
	if err != nil {
		panic(err)
	}
	golden := blockpar.GoldenMedian(blockpar.Gradient(0, 16, 12), 3)
	got := res.DataWindows("Output")
	fmt.Printf("outputs: %d (golden %d), first sample matches: %v\n",
		len(got), golden.W*golden.H, got[0].Value() == golden.At(0, 0))

	assign, err := blockpar.MapGreedy(compiled.Graph, compiled.Analysis, cfg.Machine)
	if err != nil {
		panic(err)
	}
	timing, err := blockpar.Simulate(compiled.Graph, assign, blockpar.SimOptions{
		Machine: cfg.Machine, Frames: 2,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("real-time met: %v\n", timing.RealTimeMet())
	// Output:
	// outputs: 140 (golden 140), first sample matches: true
	// real-time met: true
}
