package apps

import (
	"testing"

	"blockpar/internal/analysis"
	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
)

func TestSuiteHasElevenBenchmarks(t *testing.T) {
	suite := Figure13Suite()
	want := []string{"1", "1F", "2", "2F", "3", "4", "SS", "BS", "SF", "BF", "5", "1u8", "4f32", "MC", "WC"}
	if len(suite) != len(want) {
		t.Fatalf("suite has %d benchmarks, want %d", len(suite), len(want))
	}
	for i, b := range suite {
		if b.ID != want[i] {
			t.Errorf("bench %d = %q, want %q", i, b.ID, want[i])
		}
	}
}

func TestEveryAppValidatesAndAnalyzes(t *testing.T) {
	for _, b := range Figure13Suite() {
		b := b
		t.Run(b.ID, func(t *testing.T) {
			if err := b.App.Graph.Validate(); err != nil {
				t.Fatalf("%s invalid: %v", b.App.Name, err)
			}
			if _, err := analysis.Analyze(b.App.Graph); err != nil {
				t.Fatalf("%s analysis: %v", b.App.Name, err)
			}
		})
	}
}

func TestEveryAppHasSourcesForAllInputs(t *testing.T) {
	for _, b := range Figure13Suite() {
		for _, in := range b.App.Graph.Inputs() {
			if _, ok := b.App.Sources[in.Name()]; !ok {
				t.Errorf("%s: input %q has no source generator", b.App.Name, in.Name())
			}
		}
	}
}

func TestGoldenCoversAllOutputs(t *testing.T) {
	for _, b := range Figure13Suite() {
		golden := b.App.Golden(0)
		for _, out := range b.App.Graph.Outputs() {
			ws, ok := golden[out.Name()]
			if !ok || len(ws) == 0 {
				t.Errorf("%s: golden missing output %q", b.App.Name, out.Name())
			}
		}
	}
}

func TestGoldenIsFrameDependent(t *testing.T) {
	// The golden outputs must change across frames (otherwise the
	// multi-frame equivalence tests prove nothing).
	for _, b := range Figure13Suite() {
		g0 := b.App.Golden(0)
		g1 := b.App.Golden(1)
		changed := false
		for name, ws0 := range g0 {
			ws1 := g1[name]
			if len(ws0) != len(ws1) {
				t.Fatalf("%s: golden output %q length varies by frame", b.App.Name, name)
			}
			for i := range ws0 {
				if !ws0[i].Equal(ws1[i]) {
					changed = true
				}
			}
		}
		if !changed {
			t.Errorf("%s: golden identical for frames 0 and 1", b.App.Name)
		}
	}
}

func TestByID(t *testing.T) {
	app, err := ByID("SF")
	if err != nil {
		t.Fatal(err)
	}
	if app.Name != "image-SF" {
		t.Errorf("ByID(SF) = %q", app.Name)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
	if got := len(IDs()); got != 15 {
		t.Errorf("IDs() returned %d entries", got)
	}
	if got := len(Names()); got != 15 {
		t.Errorf("Names() returned %d entries", got)
	}
}

func TestByIDReturnsFreshGraphs(t *testing.T) {
	a, err := ByID("2")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ByID("2")
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph == b.Graph {
		t.Fatal("ByID must build a fresh graph per call (compilation mutates in place)")
	}
}

func TestSampleRate(t *testing.T) {
	r := sampleRate(400_000, 32, 24)
	// 400000/768 frames per second.
	if !r.Equal(geom.F(400_000, 768)) {
		t.Errorf("sampleRate = %v", r)
	}
}

func TestImagePipelineDepEdge(t *testing.T) {
	app := ImagePipeline("dep", ImageCfg{W: 16, H: 12, Rate: geom.FInt(10), Bins: 8})
	deps := app.Graph.Deps()
	if len(deps) != 1 {
		t.Fatalf("deps = %d, want 1", len(deps))
	}
	if deps[0].From.Kind != graph.KindInput || deps[0].To.Name() != "Merge" {
		t.Errorf("dep edge %s -> %s", deps[0].From.Name(), deps[0].To.Name())
	}
}

func TestBayerRequiresEvenDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd Bayer dims accepted")
		}
	}()
	Bayer("odd", BayerCfg{W: 9, H: 8, Rate: geom.FInt(1)})
}

func TestMultiConvDefaultSizes(t *testing.T) {
	app := MultiConv("default", MultiConvCfg{W: 20, H: 16, Rate: geom.FInt(10)})
	if app.Graph.Node("3x3 Conv") == nil || app.Graph.Node("5x5 Conv") == nil {
		t.Error("default sizes 3,5 not built")
	}
	// Golden chain applies the same number of convolutions.
	golden := app.Golden(0)["result"]
	// 20x16 -> conv3 -> 18x14 -> conv5 -> 14x10 = 140 scalars.
	if len(golden) != 140 {
		t.Errorf("golden chain length = %d, want 140", len(golden))
	}
}

func TestFixedWinGeneratorClones(t *testing.T) {
	w := frame.Scalar(5)
	gen := fixedWin(w)
	out := gen(0, 1, 1)
	out.Set(0, 0, 99)
	if w.Value() != 5 {
		t.Error("fixedWin shares storage with the template")
	}
}
