// Edges is a Sobel-style edge detector built from the kernel library:
// two 3×3 convolutions (horizontal and vertical gradients) over the
// same input, gradient magnitude, and a threshold producing a binary
// edge map. It demonstrates a diamond with *matching* halos (no
// alignment kernels needed — compare examples/imagepipeline, whose
// mixed 3×3/5×5 diamond needs an inset).
package main

import (
	"fmt"
	"log"

	"blockpar"
)

const (
	width, height = 48, 32
	thresh        = 160
)

func sobelX() blockpar.Window {
	return blockpar.FromRows([][]float64{
		{-1, 0, 1},
		{-2, 0, 2},
		{-1, 0, 1},
	})
}

func sobelY() blockpar.Window {
	return blockpar.FromRows([][]float64{
		{-1, -2, -1},
		{0, 0, 0},
		{1, 2, 1},
	})
}

func main() {
	rate := blockpar.F(1_000_000, width*height)
	g := blockpar.NewApp("edges")
	in := g.AddInput("Input", blockpar.Sz(width, height), blockpar.Sz(1, 1), rate)
	cx := g.AddInput("CoeffX", blockpar.Sz(3, 3), blockpar.Sz(3, 3), rate)
	cy := g.AddInput("CoeffY", blockpar.Sz(3, 3), blockpar.Sz(3, 3), rate)

	gx := g.Add(blockpar.Convolution("Sobel X", 3))
	gy := g.Add(blockpar.Convolution("Sobel Y", 3))
	mag := g.Add(blockpar.Magnitude("Magnitude"))
	thr := g.Add(blockpar.Threshold("Threshold", thresh, 0, 255))
	out := g.AddOutput("Edges", blockpar.Sz(1, 1))

	g.Connect(in, "out", gx, "in")
	g.Connect(in, "out", gy, "in")
	g.Connect(cx, "out", gx, "coeff")
	g.Connect(cy, "out", gy, "coeff")
	g.Connect(gx, "out", mag, "gx")
	g.Connect(gy, "out", mag, "gy")
	g.Connect(mag, "out", thr, "in")
	g.Connect(thr, "out", out, "in")

	cfg := blockpar.DefaultConfig()
	compiled, err := blockpar.Compile(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	counts := compiled.Graph.CountByKind()
	fmt.Printf("compiled: degrees %v; %d buffers, %d insets (matching halos need none)\n",
		compiled.Report.Degrees, counts[blockpar.KindBuffer], counts[blockpar.KindInset])

	// A scene with genuine edges: a bright box on a dark background.
	scene := func(seq int64, w, h int) blockpar.Window {
		f := blockpar.NewWindow(w, h)
		for y := h / 4; y < 3*h/4; y++ {
			for x := w / 4; x < 3*w/4; x++ {
				f.Set(x, y, 255)
			}
		}
		return f
	}

	res, err := blockpar.Run(compiled.Graph, blockpar.RunOptions{
		Frames: 1,
		Sources: map[string]blockpar.Generator{
			"Input":  scene,
			"CoeffX": blockpar.FixedWindow(sobelX()),
			"CoeffY": blockpar.FixedWindow(sobelY()),
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Golden check plus a quick render of the first rows.
	img := scene(0, width, height)
	gxg := blockpar.GoldenConvolve(img, sobelX())
	gyg := blockpar.GoldenConvolve(img, sobelY())
	edgesOn := 0
	ws := res.DataWindows("Edges")
	for i, w := range ws {
		hx, hy := gxg.Pix[i], gyg.Pix[i]
		want := 0.0
		if hx*hx+hy*hy >= thresh*thresh {
			want = 255
		}
		if w.Value() != want {
			log.Fatalf("pixel %d = %v, want %v", i, w.Value(), want)
		}
		if w.Value() != 0 {
			edgesOn++
		}
	}
	fmt.Printf("edge map matches golden: %d of %d pixels marked\n", edgesOn, len(ws))

	assign, err := blockpar.MapGreedy(compiled.Graph, compiled.Analysis, cfg.Machine)
	if err != nil {
		log.Fatal(err)
	}
	sr, err := blockpar.Simulate(compiled.Graph, assign, blockpar.SimOptions{Machine: cfg.Machine, Frames: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("timing: %d PEs, real-time %v, worst frame latency %.4f ms\n",
		assign.NumPEs, sr.RealTimeMet(), 1000*sr.MaxLatency())
}
