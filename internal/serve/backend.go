package serve

import (
	"errors"
	"time"

	"blockpar/internal/frame"
	"blockpar/internal/runtime"
)

// ErrUnavailable tags backend placement failures that are capacity
// problems, not bugs — the HTTP layer maps them to 503 so clients
// retry elsewhere instead of treating them as server errors.
var ErrUnavailable = errors.New("serve: no execution capacity available")

// SessionHandle is the server's view of one streaming execution
// instance, wherever it runs. *runtime.Session satisfies it directly
// (in-process execution); the cluster dispatcher returns handles that
// proxy the same operations to a remote worker over the wire protocol.
//
// Windows returned by Collect follow the frame ownership protocol: the
// caller owns one reference per window and must Release each (a no-op
// for unpooled storage, which is what in-process sessions return).
type SessionHandle interface {
	// TryFeed enqueues one frame without blocking; runtime.ErrQueueFull
	// signals backpressure and runtime.ErrBadFrame caller mistakes.
	TryFeed(inputs map[string]frame.Window) (int64, error)
	// Collect blocks for the next completed frame, bounded by timeout.
	Collect(timeout time.Duration) (*runtime.StreamResult, error)
	// Fed, Completed, and InFlight report the session's frame counters.
	Fed() int64
	Completed() int64
	InFlight() int64
	// Close drains in-flight frames and tears the session down.
	Close() error
}

// Backend decides where sessions execute. The default runs them
// in-process; the cluster dispatcher places them on remote workers.
type Backend interface {
	// Open starts a session for the pipeline with the given bounded
	// frame queue. Capacity failures are tagged ErrUnavailable.
	Open(p *Pipeline, maxInFlight int) (SessionHandle, error)
}

// StatsReporter is implemented by backends with their own gauges (the
// cluster dispatcher); /metrics inlines the report when present.
type StatsReporter interface {
	BackendStats() any
}

// localBackend executes sessions in-process, preserving the original
// single-binary behavior.
type localBackend struct {
	executor runtime.ExecutorKind
	workers  int
}

func (b localBackend) Open(p *Pipeline, maxInFlight int) (SessionHandle, error) {
	return p.NewSession(runtime.SessionOptions{
		MaxInFlight: maxInFlight,
		Executor:    b.executor,
		Workers:     b.workers,
	})
}

// releaseOutputs ends the caller's reference on every collected window
// once it has been encoded onto the response. In-process results are
// unpooled slab copies (no-op); cluster results are arena windows that
// return to the pool here.
func releaseOutputs(outs map[string][]frame.Window) {
	for _, ws := range outs {
		for _, w := range ws {
			w.Release()
		}
	}
}

var _ SessionHandle = (*runtime.Session)(nil)
