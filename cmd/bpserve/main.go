// Command bpserve hosts compiled block-parallel pipelines as a
// streaming-ingest HTTP server: benchmark applications (and arbitrary
// JSON descriptions) are compiled once at startup, clients open
// concurrent sessions, stream frames in, and collect per-frame outputs
// that are byte-identical to the batch runtime. See docs/serving.md
// for the API.
//
// Usage:
//
//	bpserve -addr :8080 -apps 1,2,5
//	bpserve -apps all -desc edges.json -queue 16
//
// Endpoints: GET /healthz, GET /pipelines, POST /pipelines,
// GET /metrics, POST /sessions, GET /sessions, DELETE /sessions/{id},
// POST /sessions/{id}/frames, /collect, /process.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"blockpar/internal/apps"
	"blockpar/internal/cluster"
	"blockpar/internal/machine"
	"blockpar/internal/registry"
	"blockpar/internal/runtime"
	"blockpar/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	appIDs := flag.String("apps", "all", "comma-separated benchmark ids to compile at startup ("+strings.Join(apps.IDs(), ", ")+"), or \"all\", or \"none\"")
	var descFiles stringList
	flag.Var(&descFiles, "desc", "JSON application description to compile and serve (repeatable)")
	queue := flag.Int("queue", 8, "default per-session bounded frame queue (HTTP 429 beyond it)")
	maxSessions := flag.Int("max-sessions", 64, "concurrent session cap")
	collectTimeout := flag.Duration("collect-timeout", 30*time.Second, "maximum per-request frame-collect deadline")
	var drainTimeout time.Duration
	flag.DurationVar(&drainTimeout, "drain", 30*time.Second, "graceful-shutdown drain budget: in-flight sessions finish before exit")
	flag.DurationVar(&drainTimeout, "drain-timeout", 30*time.Second, "alias for -drain")
	executor := flag.String("executor", "goroutines", "session execution engine: goroutines (one per kernel) or workers (fixed pool)")
	workers := flag.Int("workers", 0, "worker-pool size for -executor workers (0 = GOMAXPROCS)")
	clusterAddrs := flag.String("cluster", "", "comma-separated bpworker addresses; sessions execute on the cluster instead of in-process")
	sessionDeadline := flag.Duration("session-deadline", 0, "wall-clock budget per session, propagated to cluster workers (0 = unbounded)")
	replayBudget := flag.Int64("replay-budget", 0, "bytes of fed frames retained per session for cluster failover replay (0 = 32MiB default, negative disables failover)")
	stallTimeout := flag.Duration("stall-timeout", 0, "no-progress window before a cluster session fails over off a wedged worker (0 = 30s default, negative disables)")
	partitions := flag.Int("partitions", 0, "split each cluster session across up to N workers via the placement layer (0 = whole sessions)")
	registryAddr := flag.String("registry", "", "registration listen address; workers self-register (bpworker -join) instead of being listed with -cluster")
	lease := flag.Duration("lease", 0, "membership lease granted to self-registered workers (0 = 5s default)")
	flag.Parse()

	cfg := serveConfig{
		addr: *addr, appIDs: *appIDs, descFiles: descFiles,
		queue: *queue, maxSessions: *maxSessions,
		collectTimeout: *collectTimeout, drainTimeout: drainTimeout,
		executor: runtime.ExecutorKind(*executor), workers: *workers,
		clusterAddrs:    *clusterAddrs,
		sessionDeadline: *sessionDeadline,
		replayBudget:    *replayBudget,
		stallTimeout:    *stallTimeout,
		partitions:      *partitions,
		registryAddr:    *registryAddr,
		lease:           *lease,
	}
	// A drain that abandons work exits nonzero so orchestration (and CI)
	// can tell a clean drain from frames thrown away.
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "bpserve:", err)
		os.Exit(1)
	}
}

// serveConfig carries the parsed flags into run.
type serveConfig struct {
	addr            string
	appIDs          string
	descFiles       []string
	queue           int
	maxSessions     int
	collectTimeout  time.Duration
	drainTimeout    time.Duration
	executor        runtime.ExecutorKind
	workers         int
	clusterAddrs    string
	sessionDeadline time.Duration
	replayBudget    int64
	stallTimeout    time.Duration
	partitions      int
	registryAddr    string
	lease           time.Duration
}

func run(cfg serveConfig) error {
	addr, appIDs, descFiles := cfg.addr, cfg.appIDs, cfg.descFiles
	queue, maxSessions := cfg.queue, cfg.maxSessions
	collectTimeout, drainTimeout := cfg.collectTimeout, cfg.drainTimeout
	executor, workers, clusterAddrs := cfg.executor, cfg.workers, cfg.clusterAddrs
	reg := serve.NewRegistry(machine.Embedded())
	switch appIDs {
	case "none":
	case "all", "":
		if err := reg.AddSuite(); err != nil {
			return err
		}
	default:
		if err := reg.AddSuite(strings.Split(appIDs, ",")...); err != nil {
			return err
		}
	}
	for _, f := range descFiles {
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		if _, err := reg.AddJSON(data); err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
	}
	for _, p := range reg.List() {
		fmt.Printf("compiled %-14s %-16s %3d nodes in %v\n", p.ID, p.Name, p.Nodes, p.CompileTime.Round(time.Millisecond))
	}

	var backend serve.Backend
	switch {
	case cfg.registryAddr != "" && clusterAddrs != "":
		return fmt.Errorf("-registry and -cluster are mutually exclusive: membership comes from self-registration or a static list, not both")
	case cfg.registryAddr != "" && cfg.partitions > 1:
		// Admission control and ring placement act on whole sessions;
		// the partitioned path keeps its static-fleet planner.
		return fmt.Errorf("-registry does not combine with -partitions; use -cluster for partitioned fleets")
	case cfg.registryAddr != "":
		// Self-registered fleet: host the registration listener, follow
		// its membership events with a ring-placing dispatcher.
		fleet := registry.NewFleet(registry.FleetOptions{
			Frontend: addr,
			Lease:    cfg.lease,
			Logf: func(format string, args ...any) {
				fmt.Printf("bpserve: "+format+"\n", args...)
			},
		})
		defer fleet.Close()
		rln, err := net.Listen("tcp", cfg.registryAddr)
		if err != nil {
			return err
		}
		fleet.Serve(rln)
		d := cluster.NewRegisteredDispatcher(fleet, cluster.DispatcherOptions{
			ReplayBudget: cfg.replayBudget,
			StallTimeout: cfg.stallTimeout,
		})
		defer d.Close()
		backend = d
		fmt.Printf("bpserve registry listening on %s (workers self-register; sessions 503 until one joins)\n", cfg.registryAddr)
	}
	if clusterAddrs != "" {
		addrs := strings.Split(clusterAddrs, ",")
		d := cluster.NewDispatcher(addrs, cluster.DispatcherOptions{
			ReplayBudget: cfg.replayBudget,
			StallTimeout: cfg.stallTimeout,
			Partitions:   cfg.partitions,
		})
		defer d.Close()
		// Workers may still be starting; warn rather than fail, since
		// the dispatcher reconnects in the background.
		if err := d.WaitReady(5 * time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "bpserve: %v (continuing; sessions 503 until a worker connects)\n", err)
		}
		backend = d
		if cfg.partitions > 1 {
			fmt.Printf("bpserve partitioning sessions across %d cluster workers (up to %d partitions each)\n", len(addrs), cfg.partitions)
		} else {
			fmt.Printf("bpserve placing sessions on %d cluster workers\n", len(addrs))
		}
	}

	srv := serve.NewServer(reg, serve.Options{
		MaxInFlight:     queue,
		CollectTimeout:  collectTimeout,
		MaxSessions:     maxSessions,
		Executor:        executor,
		Workers:         workers,
		Backend:         backend,
		SessionDeadline: cfg.sessionDeadline,
	})
	hs := &http.Server{Addr: addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("bpserve listening on %s (%d pipelines)\n", addr, len(reg.List()))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("bpserve: %v: draining sessions...\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Stop accepting requests first, then drain every session's
	// in-flight frames before the process exits.
	if err := hs.Shutdown(ctx); err != nil {
		return err
	}
	return srv.Shutdown(ctx)
}

// stringList is a repeatable string flag.
type stringList []string

func (l *stringList) String() string { return strings.Join(*l, ",") }
func (l *stringList) Set(s string) error {
	*l = append(*l, s)
	return nil
}
