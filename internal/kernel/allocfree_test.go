package kernel

import (
	"testing"

	"blockpar/internal/frame"
	"blockpar/internal/graph"
	"blockpar/internal/token"
)

// allocCtx is an ExecContext+BatchContext that recycles every emitted
// window straight back to the arena. Driving a batch-aware kernel
// through it isolates the dense row loop: after one warm-up firing
// (which sizes the behavior's scratch buffers and fills the pool
// bucket), steady-state firings must not touch the heap at all. This
// is the bench-smoke gate behind the suite benchmarks for apps 1 and 4
// — if the conv or bayer inner loops start allocating, this fails long
// before a benchmark regression is noticed.
type allocCtx struct {
	in    map[string]frame.Window
	batch map[string]graph.Batch
}

func (c *allocCtx) Input(name string) frame.Window { return c.in[name] }
func (c *allocCtx) Token(string) token.Token       { return token.Token{} }
func (c *allocCtx) Emit(_ string, w frame.Window)  { w.Release() }
func (c *allocCtx) EmitToken(string, token.Token)  {}

func (c *allocCtx) Batch(input string) graph.Batch { return c.batch[input] }
func (c *allocCtx) EmitBatch(_ string, w frame.Window, _ graph.Batch) {
	w.Release()
}

// span builds an arena-free input window of the given kind filled with
// a deterministic ramp — plain storage, so the firing loop's only pool
// traffic is its own outputs.
func span(k frame.Kind, w, h int) frame.Window {
	win := frame.NewWindowKind(k, w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			win.Set(x, y, float64((x*7+y*13)%256))
		}
	}
	return win
}

func assertAllocFree(t *testing.T, what string, fire func()) {
	t.Helper()
	fire() // warm-up: size scratch, populate the pool bucket
	if avg := testing.AllocsPerRun(100, fire); avg != 0 {
		t.Errorf("%s: %.1f allocs per batched firing, want 0", what, avg)
	}
}

// TestDenseLoopsAllocFree pins the app-1/app-4 hot paths (bayer
// demosaic and k×k convolution row loops) at zero steady-state heap
// allocations per batched firing.
func TestDenseLoopsAllocFree(t *testing.T) {
	prev := frame.SetZeroCopy(true)
	defer frame.SetZeroCopy(prev)

	const k, n = 3, 61 // 61 overlapping 3×3 windows in one row span

	convFire := func(kind frame.Kind) func() {
		node := Convolution("conv", k)
		inv := node.Behavior.(graph.Invoker)
		coeff := span(frame.F64, k, k)
		in := span(kind, n+k-1, k)
		loadCtx := &allocCtx{in: map[string]frame.Window{"coeff": coeff}}
		if err := inv.Invoke("loadCoeff", loadCtx); err != nil {
			t.Fatalf("loadCoeff: %v", err)
		}
		ctx := &allocCtx{
			in:    map[string]frame.Window{"in": in},
			batch: map[string]graph.Batch{"in": {N: n, Sx: 1, Bw: int32(k)}},
		}
		return func() {
			if err := inv.Invoke("runConvolve", ctx); err != nil {
				t.Fatalf("runConvolve: %v", err)
			}
		}
	}

	bayerFire := func(kind frame.Kind) func() {
		node := BayerDemosaic("bayer")
		inv := node.Behavior.(graph.Invoker)
		in := span(kind, (n-1)*2+4, 4) // n overlapping 4×4 windows, stride 2
		ctx := &allocCtx{
			in:    map[string]frame.Window{"in": in},
			batch: map[string]graph.Batch{"in": {N: n, Sx: 2, Bw: 4}},
		}
		return func() {
			if err := inv.Invoke("demosaic", ctx); err != nil {
				t.Fatalf("demosaic: %v", err)
			}
		}
	}

	t.Run("conv-f64", func(t *testing.T) { assertAllocFree(t, "conv f64 row loop", convFire(frame.F64)) })
	t.Run("conv-f32", func(t *testing.T) { assertAllocFree(t, "conv f32 row loop", convFire(frame.F32)) })
	t.Run("bayer-u8", func(t *testing.T) { assertAllocFree(t, "bayer u8 span loop", bayerFire(frame.U8)) })
	t.Run("bayer-f64", func(t *testing.T) { assertAllocFree(t, "bayer f64 span loop", bayerFire(frame.F64)) })
}
