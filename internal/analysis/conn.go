package analysis

import (
	"fmt"

	"blockpar/internal/conn"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
)

// visitScatter applies the generalized-connection rate equations to a
// programmer-level strided scatter: the arriving item grid is dealt
// across the branches on the schedule. When every input row splits into
// whole schedule cycles, each branch keeps a rectangular row structure
// (nx/ways × ny items) and the end-of-line tokens the runtime broadcasts
// land on cycle boundaries; otherwise the branch streams are modeled as
// flat totals and the divisibility violation is reported for the
// programmer to fix.
func (a *analyzer) visitScatter(n *graph.Node, sched conn.Schedule) {
	in := a.arriving(n)
	info := in["in"]
	inPort := n.Input("in")
	outs := n.Outputs()

	// The scatter consumes whole items of its declared size; a raw
	// sample stream needs a chunking buffer first, exactly like any
	// windowed consumer (the step equals the size, so the buffer is
	// non-overlapping).
	switch {
	case info.ItemSize == inPort.Size:
		// Item-aligned.
	case info.ItemSize == geom.Sz(1, 1) && inPort.Size != geom.Sz(1, 1):
		a.problem(Problem{
			Kind: NeedsBuffer, Node: n, Method: "scatter",
			Edge: a.g.EdgeTo(inPort),
			Note: fmt.Sprintf("chunk %v%v over %v samples", inPort.Size, inPort.Step, info.Region),
		})
		nx, ny := geom.Iterations(info.Region, inPort.Size, inPort.Step)
		info.Items = geom.Sz(nx, ny)
		info.ItemSize = inPort.Size
	default:
		a.problem(Problem{
			Kind: Incompatible, Node: n, Method: "scatter",
			Edge: a.g.EdgeTo(inPort),
			Note: fmt.Sprintf("items of %v cannot feed scatter of %v", info.ItemSize, inPort.Size),
		})
		return
	}

	var writeWords int64
	rectangular := !info.Flat && sched.DividesRow(info.Items.W)
	if !info.Flat && !rectangular {
		a.problem(Problem{
			Kind: Misaligned, Node: n, Method: "scatter",
			Note: fmt.Sprintf("row of %d items does not divide into %d-way stride-%d cycles",
				info.Items.W, sched.Ways, sched.Stride),
		})
	}
	if rectangular {
		bw := info.Items.W / sched.Ways
		for _, op := range outs {
			branch := PortInfo{
				Region:   geom.Sz(bw*info.ItemSize.W, info.Items.H*info.ItemSize.H),
				Items:    geom.Sz(bw, info.Items.H),
				ItemSize: info.ItemSize,
				Inset:    info.Inset,
				Rate:     info.Rate,
			}
			a.r.Out[op] = branch
			writeWords += branch.WordsPerFrame()
		}
	} else {
		counts := sched.Counts(info.ItemsPerFrame())
		for i, op := range outs {
			branch := PortInfo{
				Region:   geom.Sz(int(counts[i])*info.ItemSize.W, info.ItemSize.H),
				Items:    geom.Sz(int(counts[i]), 1),
				ItemSize: info.ItemSize,
				Inset:    info.Inset,
				Rate:     info.Rate,
				Flat:     true,
			}
			a.r.Out[op] = branch
			writeWords += branch.WordsPerFrame()
		}
	}

	m := n.Methods()[0]
	samples := info.ItemsPerFrame()
	a.r.Nodes[n] = NodeInfo{
		IterX: int64(info.Items.W), IterY: int64(info.Items.H),
		Rate: info.Rate,
		Methods: map[string]MethodInfo{m.Name: {
			IterX: int64(info.Items.W), IterY: int64(info.Items.H),
			Rate:      info.Rate,
			ReadWords: info.WordsPerFrame(), WriteWords: writeWords,
		}},
		CyclesPerFrame:     samples * m.Cycles,
		ReadWordsPerFrame:  info.WordsPerFrame(),
		WriteWordsPerFrame: writeWords,
		MemoryWords:        n.Memory(),
	}
}

// visitGather merges the branch streams of a strided gather. The output
// is defined purely by the gather's own schedule — an interleave of the
// branches, stride items at a time — so it stays correct even when the
// upstream scatter used a different schedule (the result is then a
// well-defined permutation, not a silent reconstruction of the original
// order). When the branches carry equal rectangular grids whose rows
// divide by the stride, the merged stream keeps a rectangular structure
// of (ways·bw) × ny items; otherwise it is modeled flat.
func (a *analyzer) visitGather(n *graph.Node, sched conn.Schedule) {
	in := a.arriving(n)
	out := n.Output("out")

	var totalItems, readWords int64
	var rate geom.Frac
	itemSize := out.Size
	inset := geom.Offset{}
	first := PortInfo{}
	rectangular := true
	for i, p := range n.Inputs() {
		info := in[p.Name]
		readWords += info.WordsPerFrame()
		totalItems += info.ItemsPerFrame()
		if i == 0 {
			first = info
			rate = info.Rate
			inset = info.Inset
			itemSize = info.ItemSize
		}
		if info.Flat || info.Items != first.Items || info.ItemSize != first.ItemSize {
			rectangular = false
		}
		if !info.Rate.Equal(rate) && !info.Rate.IsZero() && !rate.IsZero() {
			a.problem(Problem{
				Kind: RateMismatch, Node: n, Method: "gather",
				Note: fmt.Sprintf("branch rates differ: %v vs %v", rate, info.Rate),
			})
		}
		if info.ItemSize != itemSize {
			a.problem(Problem{
				Kind: Misaligned, Node: n, Method: "gather",
				Note: fmt.Sprintf("branch item sizes differ: %v vs %v", itemSize, info.ItemSize),
			})
			rectangular = false
		}
	}
	if rectangular && first.Items.W%sched.Stride != 0 {
		a.problem(Problem{
			Kind: Misaligned, Node: n, Method: "gather",
			Note: fmt.Sprintf("branch row of %d items does not divide by stride %d",
				first.Items.W, sched.Stride),
		})
		rectangular = false
	}

	var region geom.Size
	if rectangular {
		items := geom.Sz(first.Items.W*sched.Ways, first.Items.H)
		region = geom.Sz(items.W*itemSize.W, items.H*itemSize.H)
		a.r.Out[out] = PortInfo{
			Region: region, Items: items,
			ItemSize: itemSize, Inset: inset, Rate: rate,
		}
	} else {
		region = geom.Sz(int(totalItems)*itemSize.W, itemSize.H)
		a.r.Out[out] = PortInfo{
			Region: region, Items: geom.Sz(int(totalItems), 1),
			ItemSize: itemSize, Inset: inset, Rate: rate,
			Flat: true,
		}
	}

	m := n.Methods()[0]
	writeWords := totalItems * int64(itemSize.Area())
	a.r.Nodes[n] = NodeInfo{
		IterX: totalItems, IterY: 1,
		Rate: rate,
		Methods: map[string]MethodInfo{m.Name: {
			IterX: totalItems, IterY: 1, Rate: rate,
			ReadWords: readWords, WriteWords: writeWords,
		}},
		CyclesPerFrame:     totalItems * m.Cycles,
		ReadWordsPerFrame:  readWords,
		WriteWordsPerFrame: writeWords,
		MemoryWords:        n.Memory(),
	}
}
