package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"blockpar/internal/apps"
	"blockpar/internal/core"
	"blockpar/internal/desc"
	"blockpar/internal/frame"
	"blockpar/internal/machine"
	"blockpar/internal/runtime"
	"blockpar/internal/transform"
)

// newTestServer compiles the named suite apps into a registry and
// serves them over httptest.
func newTestServer(t *testing.T, ids ...string) (*Server, *httptest.Server) {
	t.Helper()
	reg := NewRegistry(machine.Embedded())
	if err := reg.AddSuite(ids...); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg, Options{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, ts
}

// doJSON issues one request and decodes the JSON object reply.
func doJSON(t *testing.T, ts *httptest.Server, method, path string, body any) (int, http.Header, map[string]json.RawMessage) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]json.RawMessage
	if len(data) > 0 {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("%s %s: bad JSON reply %q: %v", method, path, data, err)
		}
	}
	return resp.StatusCode, resp.Header, out
}

func openSession(t *testing.T, ts *httptest.Server, pipeline string, maxInFlight int) string {
	t.Helper()
	code, _, reply := doJSON(t, ts, "POST", "/sessions",
		map[string]any{"pipeline": pipeline, "maxInFlight": maxInFlight})
	if code != http.StatusCreated {
		t.Fatalf("open session on %q: got %d, want 201 (%s)", pipeline, code, reply["error"])
	}
	var id string
	if err := json.Unmarshal(reply["session"], &id); err != nil {
		t.Fatal(err)
	}
	return id
}

// batchCompile compiles an app exactly like the registry does, so the
// batch reference shares the streamed sessions' transformed graph.
func batchCompile(t *testing.T, app *apps.App) *core.Compiled {
	t.Helper()
	c, err := core.Compile(app.Graph, core.Config{
		Machine:        machine.Embedded(),
		Align:          transform.Trim,
		Parallelize:    true,
		BufferStriping: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// batchFrames runs the batch runtime over a fresh compile of the app
// and returns per-output, per-frame golden windows.
func batchFrames(t *testing.T, app *apps.App, frames int64) map[string][][]frame.Window {
	t.Helper()
	c := batchCompile(t, app)
	res, err := runtime.Run(c.Graph, runtime.Options{Frames: int(frames), Sources: app.Sources})
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][][]frame.Window)
	for _, o := range c.Graph.Outputs() {
		out[o.Name()] = res.FrameSlices(o.Name())
	}
	return out
}

// compareFrame checks a decoded wire frame against golden windows,
// demanding exact (bit-identical) pixel values.
func compareFrame(got map[string][]WindowJSON, want map[string][]frame.Window) error {
	if len(got) != len(want) {
		return fmt.Errorf("got %d outputs, want %d", len(got), len(want))
	}
	for name, ws := range want {
		js, ok := got[name]
		if !ok {
			return fmt.Errorf("missing output %q", name)
		}
		if len(js) != len(ws) {
			return fmt.Errorf("output %q: got %d windows, want %d", name, len(js), len(ws))
		}
		for i, w := range ws {
			gw, err := js[i].ToWindow()
			if err != nil {
				return fmt.Errorf("output %q window %d: %v", name, i, err)
			}
			if !gw.Equal(w) {
				return fmt.Errorf("output %q window %d differs from batch golden", name, i)
			}
		}
	}
	return nil
}

// streamAndCompare opens a session, processes `frames` frames with
// server-generated inputs, and checks every reply against the batch
// golden for that frame.
func streamAndCompare(ts *httptest.Server, pipeline string, frames int64, want map[string][][]frame.Window) error {
	open, err := jsonPost(ts, "/sessions", map[string]any{"pipeline": pipeline})
	if err != nil {
		return err
	}
	if open.code != http.StatusCreated {
		return fmt.Errorf("open: got %d", open.code)
	}
	var id string
	if err := json.Unmarshal(open.body["session"], &id); err != nil {
		return err
	}
	defer func() {
		req, _ := http.NewRequest("DELETE", ts.URL+"/sessions/"+id, nil)
		if resp, err := ts.Client().Do(req); err == nil {
			resp.Body.Close()
		}
	}()
	for f := int64(0); f < frames; f++ {
		reply, err := jsonPost(ts, "/sessions/"+id+"/process", nil)
		if err != nil {
			return err
		}
		if reply.code != http.StatusOK {
			return fmt.Errorf("process frame %d: got %d (%s)", f, reply.code, reply.body["error"])
		}
		var seq int64
		if err := json.Unmarshal(reply.body["frame"], &seq); err != nil {
			return err
		}
		if seq != f {
			return fmt.Errorf("process frame %d: result tagged frame %d", f, seq)
		}
		var outs map[string][]WindowJSON
		if err := json.Unmarshal(reply.body["outputs"], &outs); err != nil {
			return err
		}
		goldenFrame := make(map[string][]frame.Window, len(want))
		for name, perFrame := range want {
			if f >= int64(len(perFrame)) {
				return fmt.Errorf("batch golden has only %d frames", len(perFrame))
			}
			goldenFrame[name] = perFrame[f]
		}
		if err := compareFrame(outs, goldenFrame); err != nil {
			return fmt.Errorf("frame %d: %w", f, err)
		}
	}
	return nil
}

type jsonReply struct {
	code int
	body map[string]json.RawMessage
}

// jsonPost is the goroutine-safe (no testing.T) request helper.
func jsonPost(ts *httptest.Server, path string, body any) (jsonReply, error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return jsonReply{}, err
		}
		rd = bytes.NewReader(data)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", rd)
	if err != nil {
		return jsonReply{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return jsonReply{}, err
	}
	out := jsonReply{code: resp.StatusCode}
	if len(data) > 0 {
		if err := json.Unmarshal(data, &out.body); err != nil {
			return jsonReply{}, fmt.Errorf("bad JSON reply %q: %v", data, err)
		}
	}
	return out, nil
}

// TestServeConcurrentSessionsGolden is the acceptance bar: several
// simultaneous sessions across four different pipelines, every streamed
// frame byte-identical to the batch runtime's result for the same app
// and frame sequence. Run under -race this doubles as the isolation
// stress test — sessions share a compiled template but must never share
// behavior state.
func TestServeConcurrentSessionsGolden(t *testing.T) {
	ids := []string{"1", "2", "4", "5"}
	_, ts := newTestServer(t, ids...)

	const frames = 3
	want := make(map[string]map[string][][]frame.Window, len(ids))
	for _, id := range ids {
		app, err := apps.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		want[id] = batchFrames(t, app, frames)
	}

	// Two sessions per pipeline: 8 concurrent streams over 4 pipelines.
	var wg sync.WaitGroup
	errs := make(chan error, 2*len(ids))
	for _, id := range ids {
		for rep := 0; rep < 2; rep++ {
			wg.Add(1)
			go func(id string, rep int) {
				defer wg.Done()
				if err := streamAndCompare(ts, id, frames, want[id]); err != nil {
					errs <- fmt.Errorf("pipeline %s session %d: %w", id, rep, err)
				}
			}(id, rep)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServeBackpressure429 checks the bounded queue: feeding past a
// session's maxInFlight answers 429 with Retry-After instead of
// buffering, and collecting a frame reopens the slot.
func TestServeBackpressure429(t *testing.T) {
	_, ts := newTestServer(t, "5")
	id := openSession(t, ts, "5", 1)

	code, _, _ := doJSON(t, ts, "POST", "/sessions/"+id+"/frames", nil)
	if code != http.StatusAccepted {
		t.Fatalf("first feed: got %d, want 202", code)
	}
	code, hdr, _ := doJSON(t, ts, "POST", "/sessions/"+id+"/frames", nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("feed past maxInFlight=1: got %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 reply is missing Retry-After")
	}
	code, _, _ = doJSON(t, ts, "POST", "/sessions/"+id+"/collect", nil)
	if code != http.StatusOK {
		t.Fatalf("collect: got %d, want 200", code)
	}
	code, _, _ = doJSON(t, ts, "POST", "/sessions/"+id+"/frames", nil)
	if code != http.StatusAccepted {
		t.Fatalf("feed after collect: got %d, want 202", code)
	}

	code, _, m := doJSON(t, ts, "GET", "/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: got %d", code)
	}
	var rejected int64
	if err := json.Unmarshal(m["rejected_429"], &rejected); err != nil {
		t.Fatal(err)
	}
	if rejected < 1 {
		t.Errorf("metrics rejected_429 = %d, want >= 1", rejected)
	}
}

// TestServeShutdownDrains checks graceful shutdown: frames fed but not
// collected are still processed to completion before Shutdown returns,
// and a draining server refuses new work.
func TestServeShutdownDrains(t *testing.T) {
	srv, ts := newTestServer(t, "2")
	id := openSession(t, ts, "2", 8)
	const fed = 3
	for i := 0; i < fed; i++ {
		if code, _, reply := doJSON(t, ts, "POST", "/sessions/"+id+"/frames", nil); code != http.StatusAccepted {
			t.Fatalf("feed %d: got %d (%s)", i, code, reply["error"])
		}
	}
	sess, ok := srv.session(id)
	if !ok {
		t.Fatal("session vanished before shutdown")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := sess.rt.Completed(); got != fed {
		t.Errorf("after drain: completed %d frames, want %d", got, fed)
	}

	if code, _, _ := doJSON(t, ts, "GET", "/healthz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: got %d, want 503", code)
	}
	if code, _, _ := doJSON(t, ts, "POST", "/sessions", map[string]any{"pipeline": "2"}); code != http.StatusServiceUnavailable {
		t.Errorf("open session while draining: got %d, want 503", code)
	}
	if code, _, _ := doJSON(t, ts, "POST", "/sessions/"+id+"/frames", nil); code != http.StatusNotFound {
		t.Errorf("feed drained session: got %d, want 404", code)
	}
}

// TestServeErrors covers the client-error surface: unknown resources,
// malformed frames, and collect deadlines.
func TestServeErrors(t *testing.T) {
	_, ts := newTestServer(t, "5")

	if code, _, _ := doJSON(t, ts, "POST", "/sessions", map[string]any{"pipeline": "nope"}); code != http.StatusNotFound {
		t.Errorf("unknown pipeline: got %d, want 404", code)
	}
	if code, _, _ := doJSON(t, ts, "POST", "/sessions/s999/frames", nil); code != http.StatusNotFound {
		t.Errorf("unknown session: got %d, want 404", code)
	}

	id := openSession(t, ts, "5", 4)
	badDims := map[string]any{"inputs": map[string]WindowJSON{
		"Input": {W: 3, H: 3, Pix: make([]float64, 9)},
	}}
	if code, _, _ := doJSON(t, ts, "POST", "/sessions/"+id+"/frames", badDims); code != http.StatusBadRequest {
		t.Errorf("wrong-size frame: got %d, want 400", code)
	}
	resp, err := ts.Client().Post(ts.URL+"/sessions/"+id+"/frames", "application/json",
		bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: got %d, want 400", resp.StatusCode)
	}
	if code, _, _ := doJSON(t, ts, "POST", "/sessions/"+id+"/collect?timeout=50ms", nil); code != http.StatusGatewayTimeout {
		t.Errorf("collect with nothing fed: got %d, want 504", code)
	}
	if code, _, _ := doJSON(t, ts, "DELETE", "/sessions/"+id, nil); code != http.StatusOK {
		t.Errorf("close session: got %d, want 200", code)
	}
	if code, _, _ := doJSON(t, ts, "POST", "/sessions/"+id+"/frames", nil); code != http.StatusNotFound {
		t.Errorf("feed closed session: got %d, want 404", code)
	}
}

// TestServeAddJSONPipeline registers an application description over
// HTTP and checks a streamed frame against the batch runtime over the
// same parsed graph.
func TestServeAddJSONPipeline(t *testing.T) {
	_, ts := newTestServer(t, "5")
	descJSON := []byte(`{
		"name": "edges",
		"inputs":  [{"name": "Input", "frame": [16, 12], "chunk": [1, 1], "rate": "300"}],
		"outputs": [{"name": "Output", "chunk": [1, 1]}],
		"kernels": [{"name": "Gain", "type": "gain", "params": "2"}],
		"edges": [
			{"from": "Input.out", "to": "Gain.in"},
			{"from": "Gain.out", "to": "Output.in"}
		]
	}`)

	resp, err := ts.Client().Post(ts.URL+"/pipelines", "application/json", bytes.NewReader(descJSON))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add pipeline: got %d, want 201", resp.StatusCode)
	}

	// The inventory now lists both the suite app and the JSON one.
	listResp, err := ts.Client().Get(ts.URL + "/pipelines")
	if err != nil {
		t.Fatal(err)
	}
	var infos []pipelineInfo
	if err := json.NewDecoder(listResp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	listResp.Body.Close()
	found := map[string]bool{}
	for _, info := range infos {
		found[info.ID] = true
		if info.Nodes <= 0 || info.CyclesPerSec <= 0 {
			t.Errorf("pipeline %q reports nodes=%d cycles_per_sec=%g", info.ID, info.Nodes, info.CyclesPerSec)
		}
	}
	if !found["5"] || !found["edges"] {
		t.Fatalf("inventory %v is missing a pipeline", found)
	}

	// Streamed output must match the batch runtime over the same graph.
	g, err := desc.Parse(descJSON)
	if err != nil {
		t.Fatal(err)
	}
	want := batchFrames(t, &apps.App{Name: g.Name, Graph: g}, 2)
	if err := streamAndCompare(ts, "edges", 2, want); err != nil {
		t.Fatal(err)
	}

	// Duplicate registration is rejected.
	resp, err = ts.Client().Post(ts.URL+"/pipelines", "application/json", bytes.NewReader(descJSON))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("duplicate pipeline: got %d, want 400", resp.StatusCode)
	}
}

// TestWindowJSONTypedRoundTrip pins the HTTP wire form of typed
// windows: samples travel as exact float64 JSON numbers plus a kind
// tag, an empty tag means f64 (legacy clients stay valid), and an
// unknown tag is rejected.
func TestWindowJSONTypedRoundTrip(t *testing.T) {
	for _, k := range []frame.Kind{frame.F64, frame.U8, frame.F32} {
		w := frame.NewWindowKind(k, 3, 2)
		for y := 0; y < 2; y++ {
			for x := 0; x < 3; x++ {
				w.Set(x, y, float64(40*y+x*7))
			}
		}
		j := FromWindow(w)
		if k == frame.F64 && j.Kind != "" {
			t.Fatalf("f64 window encoded kind %q, want empty tag", j.Kind)
		}
		blob, err := json.Marshal(j)
		if err != nil {
			t.Fatal(err)
		}
		var back WindowJSON
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatal(err)
		}
		got, err := back.ToWindow()
		if err != nil {
			t.Fatalf("kind %v: %v", k, err)
		}
		if got.Kind != k || !got.Equal(w) {
			t.Fatalf("kind %v did not round-trip: got kind %v", k, got.Kind)
		}
	}
	if _, err := (WindowJSON{W: 1, H: 1, Kind: "i16", Pix: []float64{0}}).ToWindow(); err == nil {
		t.Fatal("unknown element kind accepted")
	}
}
