package serve

import (
	"fmt"
	"sync"
	"time"

	"blockpar/internal/frame"
	"blockpar/internal/runtime"
)

// session is one client's streaming connection to a pipeline: a
// resident execution instance (in-process or on a cluster worker)
// plus the bookkeeping the server needs for metrics and draining.
type session struct {
	id          string
	pipeline    *Pipeline
	rt          SessionHandle
	maxInFlight int
	created     time.Time

	// procMu serializes /process calls so each gets the result of the
	// frame it fed.
	procMu sync.Mutex

	// mu guards the feed-time FIFO used for frame latency.
	mu        sync.Mutex
	feedTimes []time.Time
}

// feed enqueues one frame without blocking; runtime.ErrQueueFull is the
// backpressure signal the handler maps to HTTP 429.
func (s *session) feed(inputs map[string]frame.Window) (int64, error) {
	idx, err := s.rt.TryFeed(inputs)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.feedTimes = append(s.feedTimes, time.Now())
	s.mu.Unlock()
	return idx, nil
}

// collect returns the next completed frame and the latency since its
// feed (zero when the pairing queue is empty, e.g. after a restart).
func (s *session) collect(timeout time.Duration) (*runtime.StreamResult, time.Duration, error) {
	res, err := s.rt.Collect(timeout)
	if err != nil {
		return nil, 0, err
	}
	var lat time.Duration
	s.mu.Lock()
	if len(s.feedTimes) > 0 {
		lat = time.Since(s.feedTimes[0])
		s.feedTimes = s.feedTimes[1:]
	}
	s.mu.Unlock()
	return res, lat, nil
}

// WindowJSON is the wire form of a frame.Window. Samples always travel
// as JSON numbers decoded into float64 — exact for every kind (u8 and
// f32 values are exactly representable as doubles) — with the element
// kind as a tag, so streamed outputs stay byte-identical to the
// in-process runtime results and a typed window round-trips its kind.
type WindowJSON struct {
	W int `json:"w"`
	H int `json:"h"`
	// Kind is the element kind ("u8", "f32"); empty means f64, keeping
	// pre-typed clients and recorded fixtures valid.
	Kind string    `json:"kind,omitempty"`
	Pix  []float64 `json:"pix"`
}

// ToWindow validates the wire window and converts it.
func (j WindowJSON) ToWindow() (frame.Window, error) {
	k, err := frame.ParseKind(j.Kind)
	if err != nil {
		return frame.Window{}, err
	}
	if j.W < 0 || j.H < 0 || len(j.Pix) != j.W*j.H {
		return frame.Window{}, fmt.Errorf("window %dx%d carries %d samples, want %d",
			j.W, j.H, len(j.Pix), j.W*j.H)
	}
	w := frame.NewWindowKind(k, j.W, j.H)
	if k == frame.F64 {
		copy(w.Pix, j.Pix)
	} else {
		for y := 0; y < j.H; y++ {
			for x := 0; x < j.W; x++ {
				w.Set(x, y, j.Pix[y*j.W+x])
			}
		}
	}
	return w, nil
}

// FromWindow converts a window to its wire form. Strided views are
// compacted first: the wire format is dense row-major.
func FromWindow(w frame.Window) WindowJSON {
	w = w.Dense()
	if w.Kind == frame.F64 {
		return WindowJSON{W: w.W, H: w.H, Pix: w.Pix}
	}
	pix := make([]float64, w.W*w.H)
	for y := 0; y < w.H; y++ {
		for x := 0; x < w.W; x++ {
			pix[y*w.W+x] = w.At(x, y)
		}
	}
	return WindowJSON{W: w.W, H: w.H, Kind: w.Kind.String(), Pix: pix}
}

// decodeInputs converts a wire input map to runtime windows.
func decodeInputs(in map[string]WindowJSON) (map[string]frame.Window, error) {
	if len(in) == 0 {
		return nil, nil
	}
	out := make(map[string]frame.Window, len(in))
	for name, jw := range in {
		w, err := jw.ToWindow()
		if err != nil {
			return nil, fmt.Errorf("input %q: %w", name, err)
		}
		out[name] = w
	}
	return out, nil
}

// encodeOutputs converts a completed frame's outputs to wire form.
func encodeOutputs(outs map[string][]frame.Window) map[string][]WindowJSON {
	out := make(map[string][]WindowJSON, len(outs))
	for name, ws := range outs {
		js := make([]WindowJSON, len(ws))
		for i, w := range ws {
			js[i] = FromWindow(w)
		}
		out[name] = js
	}
	return out
}
