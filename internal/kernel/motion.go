package kernel

import (
	"fmt"
	"math"

	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/token"
)

// MotionSearch builds the paper's canonical *dynamic* kernel (§VII):
// a block-matching motion estimator whose per-block work varies with
// the data. For each k×k block of the current frame it runs a
// diamond-style refinement against the previous frame held in kernel
// state, stopping when the residual stops improving — so the iteration
// count, and with it the compute time, is data-dependent.
//
// The method declares a typical cost and a worst-case Bound; the
// compiler allocates the bound (analysis.AllocCycles) and the timing
// simulator draws actual costs from the node's cost model, raising a
// runtime resource exception whenever an invocation would exceed the
// bound. searchRange bounds the refinement and determines the bound:
// each refinement step costs ~3·k² cycles and at most searchRange steps
// run.
func MotionSearch(name string, k, searchRange int) *graph.Node {
	if k < 2 || searchRange < 1 {
		panic(fmt.Sprintf("kernel: invalid motion search k=%d range=%d", k, searchRange))
	}
	n := graph.NewNode(name, graph.KindKernel)
	n.CreateInput("in", geom.Sz(k, k), geom.St(k, k), geom.Off(0, 0))
	n.CreateOutput("mv", geom.Sz(2, 1), geom.St(2, 1))

	stepCost := int64(3 * k * k)
	typical := methodOverhead + stepCost*int64(searchRange)/2
	bound := methodOverhead + stepCost*int64(searchRange)
	m := n.RegisterMethod("search", typical, int64(2*k*k))
	m.Bound = bound
	n.RegisterMethodInput("search", "in")
	n.RegisterMethodOutput("search", "mv")

	// The end-of-frame token rolls the reference frame over; the token
	// then forwards on "mv" to keep downstream framing intact.
	n.RegisterMethod("endFrame", methodOverhead, 0)
	n.RegisterMethodInputToken("endFrame", "in", token.EndOfFrame, "")
	n.RegisterMethodForward("endFrame", "mv")

	// The default cost model mirrors the behavior's data-dependent
	// iteration count with a deterministic pseudo-random walk over the
	// same range; callers may override Costs["search"].
	n.Costs = map[string]graph.CostModel{
		"search": DefaultMotionCost(stepCost, searchRange),
	}

	n.Attrs["ktype"] = "motion"
	n.Attrs["kparams"] = fmt.Sprintf("%d,%d", k, searchRange)
	n.Behavior = &motionBehavior{k: k, searchRange: searchRange}
	return n
}

// DefaultMotionCost returns a deterministic per-invocation cost model:
// overhead plus between 1 and maxSteps refinement steps.
func DefaultMotionCost(stepCost int64, maxSteps int) graph.CostModel {
	return func(inv int64) int64 {
		x := uint64(inv)*6364136223846793005 + 1442695040888963407
		x ^= x >> 29
		steps := int64(x%uint64(maxSteps)) + 1
		return methodOverhead + stepCost*steps
	}
}

type motionBehavior struct {
	elemToF64
	k           int
	searchRange int
	prev        []frame.Window // previous frame's blocks in scan order
	cur         []frame.Window
}

func (b *motionBehavior) Clone() graph.Behavior {
	return &motionBehavior{k: b.k, searchRange: b.searchRange}
}

// AcceptsBatch implements graph.BatchAware: a row of blocks arrives as
// one span and its motion vectors leave as one 2N×1 batched row.
func (b *motionBehavior) AcceptsBatch(input string) bool { return input == "in" }

func (b *motionBehavior) Invoke(method string, ctx graph.ExecContext) error {
	switch method {
	case "endFrame":
		b.prev, b.cur = b.cur, nil
		return nil
	case "search":
		// handled below
	default:
		return fmt.Errorf("kernel: motion search has no method %q", method)
	}
	in := ctx.Input("in")
	n, sx := 1, b.k
	bc, _ := ctx.(graph.BatchContext)
	if bc != nil {
		if bt := bc.Batch("in"); bt.IsBatch() {
			n, sx = int(bt.N), int(bt.Sx)
		}
	}
	mv := frame.Alloc(2*n, 1)
	for j := 0; j < n; j++ {
		offset, iters := b.searchBlock(in.View(j*sx, 0, b.k, b.k))
		mv.Set(2*j, 0, offset)
		mv.Set(2*j+1, 0, float64(iters))
	}
	if n > 1 {
		bc.EmitBatch("mv", mv, graph.Batch{N: int32(n), Sx: 2, Bw: 2})
	} else {
		ctx.Emit("mv", mv)
	}
	return nil
}

// searchBlock estimates the motion of one k×k block against the
// co-located block of the previous frame (zero if this is the first
// frame), refining an offset estimate: a 1-D surrogate of diamond
// search where the "offset" is a brightness shift and iterations
// continue while the residual improves.
func (b *motionBehavior) searchBlock(w frame.Window) (offset float64, iters int) {
	block := w.Clone()
	idx := len(b.cur)
	b.cur = append(b.cur, block)

	var ref frame.Window
	if idx < len(b.prev) {
		ref = b.prev[idx]
	} else {
		ref = frame.NewWindow(b.k, b.k)
	}
	best := residual(block, ref, 0)
	for step := 0; step < b.searchRange; step++ {
		iters++
		improved := false
		for _, d := range []float64{1, -1} {
			if r := residual(block, ref, offset+d); r < best {
				best, offset = r, offset+d
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return offset, iters
}

// residual is the sum of absolute differences between block and
// ref+shift, accumulated row by row in scan order for every element
// kind (mixed kinds promote per sample).
func residual(block, ref frame.Window, shift float64) float64 {
	var sum float64
	if block.Kind == frame.F64 && ref.Kind == frame.F64 {
		for y := 0; y < block.H; y++ {
			br, rr := block.Row(y), ref.Row(y)
			for i, v := range br {
				sum += math.Abs(v - (rr[i] + shift))
			}
		}
		return sum
	}
	for y := 0; y < block.H; y++ {
		for x := 0; x < block.W; x++ {
			sum += math.Abs(block.At(x, y) - (ref.At(x, y) + shift))
		}
	}
	return sum
}
