package analysis

import (
	"testing"

	"blockpar/internal/conn"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
	"blockpar/internal/machine"
)

// buildConvApp builds Input(WxH @rate) -> 5x5 Conv <- Coeff, -> Output,
// without buffers (raw sample stream), as the programmer writes it.
func buildConvApp(w, h int, rate int64) (*graph.Graph, *graph.Node) {
	g := graph.New("conv-app")
	in := g.AddInput("Input", geom.Sz(w, h), geom.Sz(1, 1), geom.FInt(rate))
	conv := g.Add(kernel.Convolution("5x5 Conv", 5))
	coeff := g.AddInput("Coeff", geom.Sz(5, 5), geom.Sz(5, 5), geom.FInt(rate))
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", conv, "in")
	g.Connect(coeff, "out", conv, "coeff")
	g.Connect(conv, "out", out, "in")
	return g, conv
}

// TestPaperSection3AExample reproduces the worked example of §III-A:
// a 5x5 convolution fed a 100x100 image at 50 Hz has iteration size
// 96x96 at 50 Hz, and its output is 96x96 at 50 Hz.
func TestPaperSection3AExample(t *testing.T) {
	g, conv := buildConvApp(100, 100, 50)
	r, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	ni := r.NodeInfoOf(conv)
	if ni.IterX != 96 || ni.IterY != 96 {
		t.Errorf("iteration size = %dx%d, want 96x96", ni.IterX, ni.IterY)
	}
	if !ni.Rate.Equal(geom.FInt(50)) {
		t.Errorf("rate = %v, want 50", ni.Rate)
	}
	out := r.Out[conv.Output("out")]
	if out.Region != geom.Sz(96, 96) || out.Items != geom.Sz(96, 96) {
		t.Errorf("output = %v, want 96x96 region and items", out)
	}
	if !out.Rate.Equal(geom.FInt(50)) {
		t.Errorf("output rate = %v", out.Rate)
	}
	// The halo is 4x4: size (5,5) minus step (1,1) (paper text).
	if geom.Halo(geom.Sz(5, 5), geom.St(1, 1)) != geom.Sz(4, 4) {
		t.Error("halo formula broken")
	}
}

func TestNeedsBufferFlagged(t *testing.T) {
	g, conv := buildConvApp(20, 16, 50)
	r, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	probs := r.ProblemsOfKind(NeedsBuffer)
	if len(probs) != 1 {
		t.Fatalf("NeedsBuffer problems = %d, want 1 (%v)", len(probs), r.Problems)
	}
	if probs[0].Node != conv || probs[0].Method != "runConvolve" {
		t.Errorf("problem at %v.%s", probs[0].Node, probs[0].Method)
	}
}

func TestBufferedEdgeIsClean(t *testing.T) {
	const W, H = 20, 16
	g := graph.New("buffered")
	in := g.AddInput("Input", geom.Sz(W, H), geom.Sz(1, 1), geom.FInt(50))
	buf := g.Add(kernel.Buffer("Buf", kernel.BufferPlan{DataW: W, DataH: H, WinW: 5, WinH: 5, StepX: 1, StepY: 1}))
	conv := g.Add(kernel.Convolution("Conv", 5))
	coeff := g.AddInput("Coeff", geom.Sz(5, 5), geom.Sz(5, 5), geom.FInt(50))
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", buf, "in")
	g.Connect(buf, "out", conv, "in")
	g.Connect(coeff, "out", conv, "coeff")
	g.Connect(conv, "out", out, "in")

	r, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ProblemsOfKind(NeedsBuffer)) != 0 {
		t.Errorf("buffered edge still flagged: %v", r.Problems)
	}
	// Buffer: region passes through; items become window positions.
	bout := r.Out[buf.Output("out")]
	if bout.Region != geom.Sz(W, H) {
		t.Errorf("buffer region = %v, want (20x16)", bout.Region)
	}
	if bout.Items != geom.Sz(16, 12) {
		t.Errorf("buffer items = %v, want (16x12)", bout.Items)
	}
	// Conv fires once per item.
	ni := r.NodeInfoOf(conv)
	if ni.IterX != 16 || ni.IterY != 12 {
		t.Errorf("conv iterations = %dx%d, want 16x12", ni.IterX, ni.IterY)
	}
	// Conv output inset = 0 + (2,2).
	cout := r.Out[conv.Output("out")]
	if !cout.Inset.Equal(geom.Off(2, 2)) {
		t.Errorf("conv inset = %v, want [2,2]", cout.Inset)
	}
}

// TestFigure8Insets reproduces the misalignment of Figure 8: the 3x3
// median (inset 1,1) and 5x5 convolution (inset 2,2) feed a subtract,
// whose inputs disagree in both size and inset.
func TestFigure8Insets(t *testing.T) {
	const W, H = 20, 16
	g := graph.New("fig8")
	in := g.AddInput("Input", geom.Sz(W, H), geom.Sz(1, 1), geom.FInt(50))
	med := g.Add(kernel.Median("3x3 Median", 3))
	conv := g.Add(kernel.Convolution("5x5 Conv", 5))
	coeff := g.AddInput("Coeff", geom.Sz(5, 5), geom.Sz(5, 5), geom.FInt(50))
	sub := g.Add(kernel.Subtract("Subtract"))
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", med, "in")
	g.Connect(in, "out", conv, "in")
	g.Connect(coeff, "out", conv, "coeff")
	g.Connect(med, "out", sub, "in0")
	g.Connect(conv, "out", sub, "in1")
	g.Connect(sub, "out", out, "in")

	r, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	mo := r.Out[med.Output("out")]
	co := r.Out[conv.Output("out")]
	if !mo.Inset.Equal(geom.Off(1, 1)) || mo.Region != geom.Sz(W-2, H-2) {
		t.Errorf("median out = %v, want inset [1,1], region (18x14)", mo)
	}
	if !co.Inset.Equal(geom.Off(2, 2)) || co.Region != geom.Sz(W-4, H-4) {
		t.Errorf("conv out = %v, want inset [2,2], region (16x12)", co)
	}
	if len(r.ProblemsOfKind(Misaligned)) == 0 {
		t.Errorf("subtract misalignment not detected: %v", r.Problems)
	}
}

func TestHistogramRates(t *testing.T) {
	const W, H, bins = 16, 12, 8
	g := graph.New("hist")
	in := g.AddInput("Input", geom.Sz(W, H), geom.Sz(1, 1), geom.FInt(30))
	binsIn := g.AddInput("Bins", geom.Sz(bins, 1), geom.Sz(bins, 1), geom.FInt(30))
	hist := g.Add(kernel.Histogram("Hist", bins))
	merge := g.Add(kernel.Merge("Merge", bins))
	out := g.AddOutput("Output", geom.Sz(bins, 1))
	g.Connect(in, "out", hist, "in")
	g.Connect(binsIn, "out", hist, "bins")
	g.Connect(hist, "out", merge, "in")
	g.Connect(merge, "out", out, "in")
	g.AddDep(in, merge)

	r, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	ni := r.NodeInfoOf(hist)
	// count fires once per sample.
	if got := ni.Methods["count"].Invocations(); got != W*H {
		t.Errorf("count invocations = %d, want %d", got, W*H)
	}
	// finishCount fires once per frame on the EOF token.
	if got := ni.Methods["finishCount"].Invocations(); got != 1 {
		t.Errorf("finishCount invocations = %d, want 1", got)
	}
	// configureBins fires once per frame.
	if got := ni.Methods["configureBins"].Invocations(); got != 1 {
		t.Errorf("configureBins invocations = %d, want 1", got)
	}
	// Histogram output: one 8x1 item per frame.
	ho := r.Out[hist.Output("out")]
	if ho.Items != geom.Sz(1, 1) || ho.ItemSize != geom.Sz(bins, 1) {
		t.Errorf("hist out = %v", ho)
	}
	// Merge accumulates once per frame and emits once per frame.
	mi := r.NodeInfoOf(merge)
	if mi.Methods["accumulate"].Invocations() != 1 || mi.Methods["finishMerge"].Invocations() != 1 {
		t.Errorf("merge methods = %+v", mi.Methods)
	}
}

func TestRateMismatchDetected(t *testing.T) {
	g := graph.New("rates")
	a := g.AddInput("A", geom.Sz(4, 1), geom.Sz(1, 1), geom.FInt(10))
	b := g.AddInput("B", geom.Sz(4, 1), geom.Sz(1, 1), geom.FInt(20))
	sub := g.Add(kernel.Subtract("Sub"))
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(a, "out", sub, "in0")
	g.Connect(b, "out", sub, "in1")
	g.Connect(sub, "out", out, "in")

	r, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ProblemsOfKind(RateMismatch)) == 0 {
		t.Errorf("rate mismatch not detected: %v", r.Problems)
	}
}

func TestSplitJoinItemAccounting(t *testing.T) {
	const W, H, N = 9, 4, 2
	g := graph.New("rr")
	in := g.AddInput("Input", geom.Sz(W, H), geom.Sz(1, 1), geom.FInt(10))
	split := g.Add(kernel.SplitRR("Split", N, geom.Sz(1, 1)))
	join := g.Add(kernel.JoinRR("Join", N, geom.Sz(1, 1)))
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", split, "in")
	for i := 0; i < N; i++ {
		k := g.Add(kernel.Gain("Gain"+string(rune('0'+i)), 2))
		g.Connect(split, "out"+string(rune('0'+i)), k, "in")
		g.Connect(k, "out", join, "in"+string(rune('0'+i)))
	}
	g.Connect(join, "out", out, "in")

	r, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	// 36 samples split 18/18.
	b0 := r.Out[split.Output("out0")]
	b1 := r.Out[split.Output("out1")]
	if b0.ItemsPerFrame() != 18 || b1.ItemsPerFrame() != 18 {
		t.Errorf("branch items = %d, %d; want 18, 18", b0.ItemsPerFrame(), b1.ItemsPerFrame())
	}
	jo := r.Out[join.Output("out")]
	if jo.ItemsPerFrame() != 36 {
		t.Errorf("join out items = %d, want 36", jo.ItemsPerFrame())
	}
	// A matched split/join pair restores the pre-split 2-D structure.
	if jo.Flat || jo.Items != geom.Sz(W, H) {
		t.Errorf("join out = %+v; want non-flat %v grid", jo, geom.Sz(W, H))
	}
}

// TestJoinRRAfterScatterStaysFlat pins the latent round-robin
// assumption fixed while generalizing split/join: a plain RR join
// collecting branches dealt by a *strided* scatter receives the items
// in a permuted order, so the join must not reassemble the scatter
// source's 2-D grid (consumer index != arrival order).
func TestJoinRRAfterScatterStaysFlat(t *testing.T) {
	const W, H = 8, 2
	build := func(strided bool) *graph.Graph {
		g := graph.New("sg-rr")
		in := g.AddInput("Input", geom.Sz(W, H), geom.Sz(1, 1), geom.FInt(10))
		var split *graph.Node
		if strided {
			split = g.Add(kernel.Scatter("Deal", conn.Schedule{Ways: 2, Stride: 2}, geom.Sz(1, 1)))
		} else {
			split = g.Add(kernel.SplitRR("Deal", 2, geom.Sz(1, 1)))
		}
		join := g.Add(kernel.JoinRR("Join", 2, geom.Sz(1, 1)))
		out := g.AddOutput("Output", geom.Sz(1, 1))
		g.Connect(in, "out", split, "in")
		for i := 0; i < 2; i++ {
			k := g.Add(kernel.Gain("Gain"+string(rune('0'+i)), 2))
			g.Connect(split, "out"+string(rune('0'+i)), k, "in")
			g.Connect(k, "out", join, "in"+string(rune('0'+i)))
		}
		g.Connect(join, "out", out, "in")
		return g
	}

	g := build(true)
	r, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	jo := r.Out[g.Node("Join").Output("out")]
	if !jo.Flat {
		t.Errorf("RR join after strided scatter reconstructed %+v; want flat", jo)
	}
	if jo.ItemsPerFrame() != W*H {
		t.Errorf("join out items = %d, want %d", jo.ItemsPerFrame(), W*H)
	}

	// Control: the same shape with the compiler's round-robin split does
	// restore the grid.
	g = build(false)
	r, err = Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	jo = r.Out[g.Node("Join").Output("out")]
	if jo.Flat || jo.Items != geom.Sz(W, H) {
		t.Errorf("RR join after RR split = %+v; want non-flat %v grid", jo, geom.Sz(W, H))
	}
}

// TestJoinRRBranchCountMismatchStaysFlat covers the second half of the
// same fix: a total-item-count match alone does not prove the join is
// the split's inverse. Here in0 traces to a 4-way split (9 of 36 items)
// while in1 carries 27 items from elsewhere — totals match the split's
// source exactly, but only two of its four branches reach this join, so
// reconstructing the 9x4 grid would be wrong.
func TestJoinRRBranchCountMismatchStaysFlat(t *testing.T) {
	const W, H = 9, 4
	g := graph.New("rr-mismatch")
	in := g.AddInput("Input", geom.Sz(W, H), geom.Sz(1, 1), geom.FInt(10))
	side := g.AddInput("Side", geom.Sz(27, 1), geom.Sz(1, 1), geom.FInt(10))
	split := g.Add(kernel.SplitRR("Split", 4, geom.Sz(1, 1)))
	join := g.Add(kernel.JoinRR("Join", 2, geom.Sz(1, 1)))
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", split, "in")
	gain0 := g.Add(kernel.Gain("Gain0", 2))
	g.Connect(split, "out0", gain0, "in")
	g.Connect(gain0, "out", join, "in0")
	gain1 := g.Add(kernel.Gain("Gain1", 2))
	g.Connect(side, "out", gain1, "in")
	g.Connect(gain1, "out", join, "in1")
	for i := 1; i < 4; i++ {
		o := g.AddOutput("Spill"+string(rune('0'+i)), geom.Sz(1, 1))
		g.Connect(split, "out"+string(rune('0'+i)), o, "in")
	}
	g.Connect(join, "out", out, "in")

	r, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	jo := r.Out[join.Output("out")]
	if jo.ItemsPerFrame() != W*H {
		t.Fatalf("join out items = %d, want %d", jo.ItemsPerFrame(), W*H)
	}
	if !jo.Flat {
		t.Errorf("join reconstructed %+v from a 4-way split via 2 inputs; want flat", jo)
	}
}

func TestColumnSplitRegions(t *testing.T) {
	const W, H = 12, 8
	stripes := kernel.ColumnStripes(W, 3, 1, 2)
	g := graph.New("cols")
	in := g.AddInput("Input", geom.Sz(W, H), geom.Sz(1, 1), geom.FInt(10))
	split := g.Add(kernel.SplitColumns("Split", stripes, W))
	out0 := g.AddOutput("O0", geom.Sz(1, 1))
	out1 := g.AddOutput("O1", geom.Sz(1, 1))
	g.Connect(in, "out", split, "in")
	g.Connect(split, "out0", out0, "in")
	g.Connect(split, "out1", out1, "in")

	r, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	b0 := r.Out[split.Output("out0")]
	b1 := r.Out[split.Output("out1")]
	if b0.Region != geom.Sz(stripes[0].InWidth(), H) {
		t.Errorf("stripe0 region = %v, want (%dx%d)", b0.Region, stripes[0].InWidth(), H)
	}
	if !b1.Inset.Equal(geom.Off(int64(stripes[1].InStart), 0)) {
		t.Errorf("stripe1 inset = %v, want [%d,0]", b1.Inset, stripes[1].InStart)
	}
}

func TestFeedbackTwoPassAnalysis(t *testing.T) {
	g := graph.New("fb")
	in := g.AddInput("Input", geom.Sz(6, 1), geom.Sz(1, 1), geom.FInt(10))
	acc := g.Add(kernel.Accumulator("Acc"))
	fb := g.Add(kernel.Feedback("FB", geom.Sz(1, 1), nil))
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", acc, "in")
	g.Connect(fb, "out", acc, "state")
	g.Connect(acc, "loop", fb, "in")
	g.Connect(acc, "out", out, "in")

	r, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	ni := r.NodeInfoOf(acc)
	if ni.Methods["accumulate"].Invocations() != 6 {
		t.Errorf("accumulate invocations = %d, want 6", ni.Methods["accumulate"].Invocations())
	}
	// After the second pass the feedback node's throughput is known.
	fi := r.NodeInfoOf(fb)
	if fi.CyclesPerFrame == 0 {
		t.Error("feedback node load not resolved on second pass")
	}
}

func TestLoadAndDegree(t *testing.T) {
	g, conv := buildConvApp(100, 100, 50)
	r, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.Default()
	l := r.LoadOf(conv, m)
	// runConvolve: 96*96*85 cycles/frame (+ loadCoeff 60) at 50 Hz
	// ≈ 39.2 Mcycles/s of compute.
	if l.CyclesPerSec <= 0 {
		t.Fatal("zero load")
	}
	if l.RunFrac <= 0 || l.ReadFrac <= 0 || l.WriteFrac <= 0 {
		t.Errorf("load breakdown missing: %+v", l)
	}
	wantRun := float64(96*96*(10+3*25)+(10+2*25)) * 50 / float64(m.PE.CyclesPerSec)
	if diff := l.RunFrac - wantRun; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("RunFrac = %v, want %v", l.RunFrac, wantRun)
	}
	deg := r.DegreeFor(conv, m)
	// Total load ≈ (39.2M run + 11.5M read + 0.46M write) / 200M ≈ 0.26.
	if deg != 1 {
		t.Errorf("degree on default machine = %d, want 1", deg)
	}
	// On the small machine the same kernel needs many PEs.
	if degSmall := r.DegreeFor(conv, machine.Small()); degSmall < 10 {
		t.Errorf("degree on small machine = %d, want >= 10", degSmall)
	}
}

func TestDegreeMemoryBound(t *testing.T) {
	const W, H = 64, 32
	g := graph.New("membound")
	in := g.AddInput("Input", geom.Sz(W, H), geom.Sz(1, 1), geom.FInt(1))
	buf := g.Add(kernel.Buffer("Buf", kernel.BufferPlan{DataW: W, DataH: H, WinW: 5, WinH: 5, StepX: 1, StepY: 1}))
	conv := g.Add(kernel.Convolution("Conv", 5))
	coeff := g.AddInput("Coeff", geom.Sz(5, 5), geom.Sz(5, 5), geom.FInt(1))
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", buf, "in")
	g.Connect(buf, "out", conv, "in")
	g.Connect(coeff, "out", conv, "coeff")
	g.Connect(conv, "out", out, "in")

	r, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	// Buffer memory = 2*64*5 = 640 words > Small's 256: memory-bound
	// split required even though the rate is trivial.
	deg := r.DegreeFor(buf, machine.Small())
	if deg < 3 {
		t.Errorf("buffer degree = %d, want >= 3 (640 words / 256)", deg)
	}
}

func TestAnalyzeRejectsInvalidGraph(t *testing.T) {
	g := graph.New("bad")
	g.AddOutput("Output", geom.Sz(1, 1))
	if _, err := Analyze(g); err == nil {
		t.Fatal("invalid graph accepted")
	}
}
