package blockpar_test

// BenchmarkSuiteApps measures the functional runtime's allocation
// behavior on Figure 13 suite applications across the data-plane and
// executor axes introduced by the zero-copy work:
//
//	copy     — pooled windows disabled, every edge carries a fresh copy
//	zerocopy — pooled stride-aware views (the default)
//	×
//	goroutines — one goroutine per kernel (the default engine)
//	workers    — fixed worker pool running ready firings
//
// Run with -benchmem; BENCH_pr3.json records a snapshot. The headline
// is allocs/op: zero-copy must cut it by ≥5× on the windowed apps.

import (
	"fmt"
	"testing"

	"blockpar"
	"blockpar/internal/apps"
	"blockpar/internal/core"
)

func BenchmarkSuiteApps(b *testing.B) {
	for _, id := range []string{"1", "2", "4", "5", "1u8", "4f32", "MC", "WC"} {
		app, err := apps.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		compiled, err := core.Compile(app.Graph, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, zc := range []bool{false, true} {
			plane := "copy"
			if zc {
				plane = "zerocopy"
			}
			for _, exec := range []blockpar.ExecutorKind{blockpar.ExecGoroutines, blockpar.ExecWorkers} {
				zc, exec := zc, exec
				b.Run(fmt.Sprintf("%s/%s/%s", id, plane, exec), func(b *testing.B) {
					blockpar.SetZeroCopy(zc)
					defer blockpar.SetZeroCopy(true)
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						// Behaviors are stateful, so each run needs a
						// fresh clone; the clone is harness cost, not
						// data plane, and stays outside the timer.
						b.StopTimer()
						g := compiled.Graph.Clone()
						b.StartTimer()
						if _, err := blockpar.Run(g, blockpar.RunOptions{
							Frames: 4, Sources: app.Sources, Executor: exec,
						}); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}
