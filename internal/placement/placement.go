// Package placement splits one compiled graph across a worker fleet:
// it retargets internal/mapping's packing and annealing (FleetAssign)
// to produce per-worker sub-graphs, validates the cut in the style of
// Delaval et al.'s automatic-distribution type system — every cut edge
// must be a well-typed FIFO with statically known rate and item size,
// and no dependency cycle may cross a cut — and emits a Plan the
// cluster dispatcher executes by opening one partition per worker and
// relaying the cut-edge item streams between them (see docs/cluster.md
// "Partitioned sessions").
package placement

import (
	"fmt"
	"sort"
	"strings"

	"blockpar/internal/analysis"
	"blockpar/internal/graph"
	"blockpar/internal/machine"
	"blockpar/internal/mapping"
)

// Plan is one executable split of a compiled graph: a node set per
// worker plus the cut edges between them. Partition indices are dense
// (empty targets are dropped) and cut-edge IDs are dense per plan.
type Plan struct {
	Partitions []Partition
	Cuts       []CutEdge
}

// Partition is the sub-graph one worker runs.
type Partition struct {
	// Target is the fleet target's name the partition packs onto.
	Target string
	// Nodes are the member node names, in graph order.
	Nodes []string
	// CyclesPerSec and MemWords are the partition's analysis-derived
	// demand, for observability and the bpc -plan rendering.
	CyclesPerSec float64
	MemWords     int64
}

// CutEdge is one graph edge severed by the plan: the producing port
// lives in partition From, the consuming port in partition To, and at
// run time the edge becomes a credit-windowed item stream relayed
// between the two workers.
type CutEdge struct {
	ID       uint32
	From, To int

	FromNode string
	FromPort string
	ToNode   string
	ToPort   string

	// WordsPerFrame is the edge's per-frame traffic from the analysis.
	WordsPerFrame int64
	// Credit is the edge's in-flight item window, mirroring the bounded
	// mailbox the edge replaced in a whole-graph session.
	Credit int
}

// EvenFleet builds n identical targets sized so the graph's total
// demand spreads across all of them: each target gets an equal share
// of the cycle demand (so the annealer balances instead of collapsing
// onto one worker) and enough memory to never be the constraint.
func EvenFleet(g *graph.Graph, r *analysis.Result, m machine.Machine, n int) []mapping.Target {
	var cycles float64
	var mem int64
	for _, nd := range g.Nodes() {
		l := r.LoadOf(nd, m)
		cycles += l.CyclesPerSec
		mem += l.MemWords
	}
	ts := make([]mapping.Target, n)
	for i := range ts {
		ts[i] = mapping.Target{
			Name:         fmt.Sprintf("w%d", i),
			CyclesPerSec: int64(cycles)/int64(n) + 1,
			MemWords:     mem + 1,
		}
	}
	return ts
}

// PlanGraph partitions the compiled graph g (with its analysis r,
// compiled for machine m) across the fleet and validates the result.
// A one-target fleet, or a graph whose co-location constraints
// collapse onto one target, yields a single-partition plan with no
// cuts — the caller should then run the session whole.
func PlanGraph(g *graph.Graph, r *analysis.Result, m machine.Machine, targets []mapping.Target, seed uint64) (*Plan, error) {
	a, err := mapping.FleetAssign(g, r, m, targets, seed)
	if err != nil {
		return nil, fmt.Errorf("placement: %w", err)
	}

	// Dense partition indices: drop targets that received nothing.
	usedTargets := make([]int, 0, len(targets))
	seen := make(map[int]bool)
	for _, n := range g.Nodes() {
		if t := a.PEOf[n]; !seen[t] {
			seen[t] = true
			usedTargets = append(usedTargets, t)
		}
	}
	sort.Ints(usedTargets)
	partOf := make(map[int]int, len(usedTargets))
	for i, t := range usedTargets {
		partOf[t] = i
	}

	p := &Plan{Partitions: make([]Partition, len(usedTargets))}
	nodePart := make(map[*graph.Node]int, len(a.PEOf))
	for i, t := range usedTargets {
		p.Partitions[i].Target = targets[t].Name
	}
	for _, n := range g.Nodes() {
		pi := partOf[a.PEOf[n]]
		nodePart[n] = pi
		part := &p.Partitions[pi]
		part.Nodes = append(part.Nodes, n.Name())
		l := r.LoadOf(n, m)
		part.CyclesPerSec += l.CyclesPerSec
		part.MemWords += l.MemWords
	}

	// Cut edges in graph order; credit mirrors the runtime's default
	// mailbox bound (16 × the widest input frame, floor 64) so the
	// partitioned pipeline has at least the elasticity of the whole one.
	credit := 64
	for _, in := range g.Inputs() {
		if in.FrameSize.W > credit {
			credit = in.FrameSize.W
		}
	}
	credit *= 16
	for _, e := range g.Edges() {
		pf, pt := nodePart[e.From.Node()], nodePart[e.To.Node()]
		if pf == pt {
			continue
		}
		var words int64
		if info, ok := r.Out[e.From]; ok {
			words = info.WordsPerFrame()
		}
		p.Cuts = append(p.Cuts, CutEdge{
			ID:            uint32(len(p.Cuts)),
			From:          pf,
			To:            pt,
			FromNode:      e.From.Node().Name(),
			FromPort:      e.From.Name,
			ToNode:        e.To.Node().Name(),
			ToPort:        e.To.Name,
			WordsPerFrame: words,
			Credit:        credit,
		})
	}

	if err := p.Validate(g, r); err != nil {
		return nil, err
	}
	return p, nil
}

// Validate is the Delaval-style soundness check a plan must pass
// before the dispatcher ships it:
//
//   - total coverage: every node is in exactly one partition, and
//     every name resolves in the graph;
//   - well-typed cuts: every cut edge corresponds to a real graph edge
//     whose producing port has analysis information — a FIFO with
//     known rate and item size — and positive traffic bounds;
//   - no dependency cycle crosses a cut: dependence-edge endpoints are
//     co-located and the partition quotient over all stream and
//     dependence edges is acyclic, so a cut is crossed in one
//     direction only.
func (p *Plan) Validate(g *graph.Graph, r *analysis.Result) error {
	nodePart := make(map[string]int)
	for pi, part := range p.Partitions {
		for _, name := range part.Nodes {
			if g.Node(name) == nil {
				return fmt.Errorf("placement: plan names unknown node %q", name)
			}
			if prev, dup := nodePart[name]; dup {
				return fmt.Errorf("placement: node %q in partitions %d and %d", name, prev, pi)
			}
			nodePart[name] = pi
		}
	}
	for _, n := range g.Nodes() {
		if _, ok := nodePart[n.Name()]; !ok {
			return fmt.Errorf("placement: node %q not placed", n.Name())
		}
	}
	for _, d := range g.Deps() {
		if nodePart[d.From.Name()] != nodePart[d.To.Name()] {
			return fmt.Errorf("placement: dependence %s -> %s crosses partitions",
				d.From.Name(), d.To.Name())
		}
	}
	// Windowed-sharing groups pass arena references into one ring; a cut
	// through the group would hand a worker a reference to memory it does
	// not hold. Broadcast fan-out, by contrast, may span partitions: each
	// cut consumer gets its own relayed item stream.
	sharePart := make(map[string]int)
	for _, n := range g.Nodes() {
		name := n.Attrs["share"]
		if name == "" {
			continue
		}
		if prev, ok := sharePart[name]; ok && prev != nodePart[n.Name()] {
			return fmt.Errorf("placement: share group %q split across partitions %d and %d (node %q)",
				name, prev, nodePart[n.Name()], n.Name())
		}
		sharePart[name] = nodePart[n.Name()]
	}

	// Index the plan's cuts and check each against the graph and the
	// analysis: a cut with no typing information cannot become a wire
	// stream, because the receiver could not size or pace it.
	type cutKey struct{ fn, fp, tn, tp string }
	cuts := make(map[cutKey]CutEdge, len(p.Cuts))
	for _, c := range p.Cuts {
		if c.From == c.To {
			return fmt.Errorf("placement: cut %d does not cross partitions", c.ID)
		}
		if c.Credit <= 0 {
			return fmt.Errorf("placement: cut %d has no credit window", c.ID)
		}
		cuts[cutKey{c.FromNode, c.FromPort, c.ToNode, c.ToPort}] = c
	}
	adj := make(map[int]map[int]bool)
	link := func(f, t int) {
		if f == t {
			return
		}
		if adj[f] == nil {
			adj[f] = make(map[int]bool)
		}
		adj[f][t] = true
	}
	for _, e := range g.Edges() {
		pf, pt := nodePart[e.From.Node().Name()], nodePart[e.To.Node().Name()]
		k := cutKey{e.From.Node().Name(), e.From.Name, e.To.Node().Name(), e.To.Name}
		c, isCut := cuts[k]
		if pf == pt {
			if isCut {
				return fmt.Errorf("placement: cut %d severs intra-partition edge %s.%s -> %s.%s",
					c.ID, k.fn, k.fp, k.tn, k.tp)
			}
			continue
		}
		if !isCut {
			return fmt.Errorf("placement: edge %s.%s -> %s.%s crosses partitions %d -> %d with no cut entry",
				k.fn, k.fp, k.tn, k.tp, pf, pt)
		}
		if c.From != pf || c.To != pt {
			return fmt.Errorf("placement: cut %d direction %d -> %d does not match partitions %d -> %d",
				c.ID, c.From, c.To, pf, pt)
		}
		info, ok := r.Out[e.From]
		if !ok {
			return fmt.Errorf("placement: cut %d edge %s.%s has no analysis type (rate/size unknown)",
				c.ID, k.fn, k.fp)
		}
		if info.ItemSize.Area() <= 0 || info.Items.Area() <= 0 {
			return fmt.Errorf("placement: cut %d edge %s.%s has degenerate FIFO type %v items of %v",
				c.ID, k.fn, k.fp, info.Items, info.ItemSize)
		}
		delete(cuts, k)
		link(pf, pt)
	}
	for k, c := range cuts {
		return fmt.Errorf("placement: cut %d names missing edge %s.%s -> %s.%s", c.ID, k.fn, k.fp, k.tn, k.tp)
	}
	for _, d := range g.Deps() {
		link(nodePart[d.From.Name()], nodePart[d.To.Name()])
	}
	if cyclic(adj, len(p.Partitions)) {
		return fmt.Errorf("placement: partition quotient has a cycle — a dependency crosses a cut twice")
	}
	return nil
}

// cyclic detects a cycle in the partition quotient.
func cyclic(adj map[int]map[int]bool, n int) bool {
	color := make([]int, n)
	var dfs func(int) bool
	dfs = func(v int) bool {
		color[v] = 1
		for w := range adj[v] {
			if color[w] == 1 {
				return true
			}
			if color[w] == 0 && dfs(w) {
				return true
			}
		}
		color[v] = 2
		return false
	}
	for v := 0; v < n; v++ {
		if color[v] == 0 && dfs(v) {
			return true
		}
	}
	return false
}

// String renders the plan for bpc -plan and debug logs: one block per
// partition with its demand, then the cut edges with their traffic and
// credit windows.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "placement: %d partition(s), %d cut edge(s)\n", len(p.Partitions), len(p.Cuts))
	for i, part := range p.Partitions {
		fmt.Fprintf(&b, "  partition %d -> %s: %d node(s), %.0f cycles/s, %d words\n",
			i, part.Target, len(part.Nodes), part.CyclesPerSec, part.MemWords)
		fmt.Fprintf(&b, "    %s\n", strings.Join(part.Nodes, ", "))
	}
	for _, c := range p.Cuts {
		fmt.Fprintf(&b, "  cut %d: %s.%s -> %s.%s  [%d -> %d]  %d words/frame, credit %d\n",
			c.ID, c.FromNode, c.FromPort, c.ToNode, c.ToPort, c.From, c.To, c.WordsPerFrame, c.Credit)
	}
	return b.String()
}
