// Quickstart: build a minimal block-parallel application — a 5×5
// convolution over a real-time pixel stream — compile it (automatic
// buffering + parallelization), execute it functionally, and verify it
// meets its real-time rate on the timing simulator.
package main

import (
	"fmt"
	"log"

	"blockpar"
)

func main() {
	// 1. Describe the application: a 64×48 input arriving pixel-by-
	// pixel at 300 frames/s, filtered by a 5×5 convolution whose
	// coefficients stream in on a replicated input.
	app := blockpar.NewApp("quickstart")
	in := app.AddInput("Input", blockpar.Sz(64, 48), blockpar.Sz(1, 1), blockpar.FInt(300))
	conv := app.Add(blockpar.Convolution("5x5 Conv", 5))
	coeff := app.AddInput("Coeff", blockpar.Sz(5, 5), blockpar.Sz(5, 5), blockpar.FInt(300))
	out := app.AddOutput("Output", blockpar.Sz(1, 1))
	app.Connect(in, "out", conv, "in")
	app.Connect(coeff, "out", conv, "coeff")
	app.Connect(conv, "out", out, "in")

	// 2. Compile: the compiler inserts the line buffer the convolution
	// needs and replicates the kernel to meet the input rate.
	cfg := blockpar.DefaultConfig()
	compiled, err := blockpar.Compile(app, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiled graph:")
	fmt.Println(compiled.Graph.Summary())
	fmt.Printf("\nparallelization degrees: %v\n\n", compiled.Report.Degrees)

	// 3. Execute functionally (goroutines + channels) and check one
	// output value against the golden reference.
	coeffs := blockpar.LCG(7, 5, 5)
	res, err := blockpar.Run(compiled.Graph, blockpar.RunOptions{
		Frames: 2,
		Sources: map[string]blockpar.Generator{
			"Input": blockpar.Gradient,
			"Coeff": blockpar.FixedWindow(coeffs),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	golden := blockpar.GoldenConvolve(blockpar.Gradient(0, 64, 48), coeffs)
	got := res.DataWindows("Output")
	fmt.Printf("functional run: %d output samples/frame (golden %d); first = %.1f (golden %.1f)\n",
		len(got)/2, golden.W*golden.H, got[0].Value(), golden.At(0, 0))

	// 4. Verify timing: map kernels to PEs and simulate.
	assign, err := blockpar.MapGreedy(compiled.Graph, compiled.Analysis, cfg.Machine)
	if err != nil {
		log.Fatal(err)
	}
	simRes, err := blockpar.Simulate(compiled.Graph, assign, blockpar.SimOptions{
		Machine: cfg.Machine, Frames: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("timing: %d PEs, %.0f frames/s achieved, real-time met: %v, mean utilization %.1f%%\n",
		assign.NumPEs, simRes.Throughput, simRes.RealTimeMet(), 100*simRes.MeanUtilization())
}
