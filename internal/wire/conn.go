package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"
)

// crcTable is the Castagnoli polynomial used for the per-frame
// integrity trailer. CRC32C has hardware support on both amd64 and
// arm64, so the trailer costs well under the price of the copy into
// the write buffer.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// crcSize is the length of the integrity trailer appended to every
// frame body.
const crcSize = 4

// Conn frames messages over a byte stream. Reads must stay on one
// goroutine; writes are serialized internally, so any number of
// goroutines may send. The encode scratch buffer is reused across
// writes, so a steady-state connection allocates only for decoded
// windows (which come from the frame arena).
type Conn struct {
	c  net.Conn
	br *bufio.Reader

	wmu  sync.Mutex
	bw   *bufio.Writer
	wbuf []byte
	werr error
}

// NewConn wraps an established connection.
func NewConn(c net.Conn) *Conn {
	return &Conn{
		c:  c,
		br: bufio.NewReaderSize(c, 1<<16),
		bw: bufio.NewWriterSize(c, 1<<16),
	}
}

// Write encodes and flushes one frame. After the first write error the
// connection is poisoned and every subsequent Write fails fast.
func (c *Conn) Write(m Msg) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.werr != nil {
		return c.werr
	}
	// An unencodable message fails its own Write with nothing on the
	// wire; the connection stays healthy.
	if err := checkEncodable(m); err != nil {
		return err
	}
	c.wbuf = Append(c.wbuf[:0], m)
	if len(c.wbuf) > MaxFrame {
		return fmt.Errorf("wire: outgoing %s frame of %d bytes exceeds MaxFrame", m.Type(), len(c.wbuf))
	}
	// Seal the frame with a CRC32C trailer over type+payload and grow
	// the length prefix to cover it, so a flipped bit anywhere past the
	// header is caught by the peer instead of decoding into garbage
	// samples.
	sum := crc32.Checksum(c.wbuf[4:], crcTable)
	c.wbuf = appendU32(c.wbuf, sum)
	binary.BigEndian.PutUint32(c.wbuf[:4], uint32(len(c.wbuf)-4))
	if _, err := c.bw.Write(c.wbuf); err != nil {
		c.werr = err
		return err
	}
	if err := c.bw.Flush(); err != nil {
		c.werr = err
		return err
	}
	return nil
}

// Read blocks for the next frame and decodes it. An oversized or
// undecodable frame returns an ErrCorrupt-tagged error; the caller
// should close the connection, since framing is lost.
func (c *Conn) Read() (Msg, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1+crcSize || n > MaxFrame+crcSize {
		return nil, corruptf("frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c.br, body); err != nil {
		return nil, fmt.Errorf("wire: short frame body: %w", err)
	}
	payload, trailer := body[:n-crcSize], body[n-crcSize:]
	if got, want := crc32.Checksum(payload, crcTable), binary.BigEndian.Uint32(trailer); got != want {
		return nil, corruptf("frame checksum mismatch: computed %08x, trailer %08x", got, want)
	}
	return Decode(MsgType(payload[0]), payload[1:])
}

// SetReadDeadline bounds the next Read.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.c.SetReadDeadline(t) }

// Close closes the underlying connection; a blocked Read unblocks with
// an error.
func (c *Conn) Close() error { return c.c.Close() }

// RemoteAddr names the peer, for diagnostics.
func (c *Conn) RemoteAddr() string {
	if a := c.c.RemoteAddr(); a != nil {
		return a.String()
	}
	return "?"
}

// Handshake runs the client side: send Hello, require a matching
// Welcome.
func (c *Conn) Handshake() (*Welcome, error) {
	if err := c.Write(&Hello{Version: Version}); err != nil {
		return nil, fmt.Errorf("wire: handshake send: %w", err)
	}
	m, err := c.Read()
	if err != nil {
		return nil, fmt.Errorf("wire: handshake read: %w", err)
	}
	switch w := m.(type) {
	case *Welcome:
		if w.Version != Version {
			return nil, fmt.Errorf("wire: peer speaks version %d, want %d", w.Version, Version)
		}
		return w, nil
	case *Error:
		return nil, fmt.Errorf("wire: handshake refused: %s", w.Msg)
	default:
		return nil, corruptf("handshake answered with %s", m.Type())
	}
}

// AcceptHandshake runs the server side: require a version-matched
// Hello, then answer with a Welcome naming the worker and its
// pipelines.
func (c *Conn) AcceptHandshake(worker string, pipelines []string) error {
	m, err := c.Read()
	if err != nil {
		return fmt.Errorf("wire: handshake read: %w", err)
	}
	h, ok := m.(*Hello)
	if !ok {
		return corruptf("connection opened with %s, want hello", m.Type())
	}
	if h.Version != Version {
		c.Write(&Error{Msg: fmt.Sprintf("protocol version %d unsupported, want %d", h.Version, Version)})
		return fmt.Errorf("wire: peer speaks version %d, want %d", h.Version, Version)
	}
	return c.Write(&Welcome{Version: Version, Worker: worker, Pipelines: pipelines})
}
