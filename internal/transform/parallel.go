package transform

import (
	"fmt"

	"blockpar/internal/analysis"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
	"blockpar/internal/machine"
)

// Options configures parallelization.
type Options struct {
	Machine machine.Machine
	// BufferStriping replicates a kernel's input buffer per parallel
	// instance, splitting the sample stream column-wise with overlap
	// (the reuse-optimized structure of Figure 9(b/c) and the buffer
	// split of Figure 10). When false, the buffer stays shared and its
	// window stream is distributed round-robin (Figure 9(a)), which
	// moves every window across a channel and forgoes in-buffer reuse —
	// kept as the ablation baseline.
	BufferStriping bool
}

// DefaultOptions returns the paper's configuration: striped buffers on
// the reference machine.
func DefaultOptions() Options {
	return Options{Machine: machine.Default(), BufferStriping: true}
}

// Report records what the parallelizer did.
type Report struct {
	// Degrees maps base kernel names to the parallel degree chosen.
	Degrees map[string]int
	// StripedBuffers lists base buffer names split column-wise.
	StripedBuffers []string
}

// Parallelize replicates kernels to meet the real-time input rates on
// the target machine (§IV): the degree is the required cycles/sec
// (compute plus port access) divided by one PE's cycles/sec, and
// buffers additionally split when they exceed one PE's memory.
// Data-dependency edges limit a sink's degree to its source's (§IV-B).
func Parallelize(g *graph.Graph, opts Options) (*Report, error) {
	if err := opts.Machine.Validate(); err != nil {
		return nil, err
	}
	r, err := analysis.Analyze(g)
	if err != nil {
		return nil, err
	}
	if r.HasProblems() {
		return nil, fmt.Errorf("transform: graph must be buffered and aligned before parallelization: %v",
			r.Problems[0])
	}
	order, err := g.Topological()
	if err != nil {
		return nil, err
	}

	rep := &Report{Degrees: make(map[string]int)}
	degrees := make(map[*graph.Node]int)
	for _, in := range g.Inputs() {
		degrees[in] = 1
	}
	// pairedBuffers are consumed by a (buffer, kernel) stripe pair and
	// must not be split again on their own.
	paired := make(map[*graph.Node]bool)

	for _, n := range order {
		switch n.Kind {
		case graph.KindKernel:
			deg := r.DegreeFor(n, opts.Machine)
			for _, d := range g.Deps() {
				if d.To == n {
					if lim, ok := degrees[d.From]; ok && lim < deg {
						deg = lim
					}
				}
			}
			degrees[n] = deg
			rep.Degrees[n.Base] = deg

			buf := pairableBuffer(g, n, opts)
			if buf != nil {
				stripeDeg := deg
				if bd := r.DegreeFor(buf, opts.Machine); bd > stripeDeg {
					stripeDeg = bd
				}
				plan, _ := kernel.BufferPlanOf(buf)
				if wpr := plan.WindowsPerRow(); stripeDeg > wpr {
					stripeDeg = wpr
				}
				if stripeDeg > 1 {
					degrees[n] = stripeDeg
					rep.Degrees[n.Base] = stripeDeg
					rep.StripedBuffers = append(rep.StripedBuffers, buf.Base)
					paired[buf] = true
					if err := stripePair(g, buf, n, stripeDeg); err != nil {
						return nil, err
					}
					continue
				}
				paired[buf] = true // degree 1: leave both alone
				continue
			}
			if deg > 1 {
				if err := rrParallelize(g, n, deg); err != nil {
					return nil, err
				}
			}
		case graph.KindBuffer:
			// Handled when its paired kernel is visited; standalone
			// memory-bound buffers are split below after the pass.
		}
	}

	// Second pass: standalone buffers that exceed PE memory (§IV-C).
	for _, n := range order {
		if n.Kind != graph.KindBuffer || paired[n] {
			continue
		}
		if g.Node(n.Name()) != n {
			continue // replaced meanwhile
		}
		memDeg := r.DegreeFor(n, opts.Machine)
		plan, ok := kernel.BufferPlanOf(n)
		if !ok {
			continue
		}
		if wpr := plan.WindowsPerRow(); memDeg > wpr {
			memDeg = wpr
		}
		if memDeg <= 1 {
			continue
		}
		rep.StripedBuffers = append(rep.StripedBuffers, n.Base)
		if err := stripeBufferAlone(g, n, memDeg); err != nil {
			return nil, err
		}
	}

	return rep, nil
}

// pairableBuffer returns the buffer feeding n's only non-replicated
// data input when striping applies: the buffer must feed n exclusively.
func pairableBuffer(g *graph.Graph, n *graph.Node, opts Options) *graph.Node {
	if !opts.BufferStriping {
		return nil
	}
	var dataIn *graph.Port
	for _, p := range n.Inputs() {
		if p.Replicated {
			continue
		}
		if dataIn != nil {
			return nil // multiple data inputs: no pairing
		}
		dataIn = p
	}
	if dataIn == nil {
		return nil
	}
	e := g.EdgeTo(dataIn)
	if e == nil || e.From.Node().Kind != graph.KindBuffer {
		return nil
	}
	buf := e.From.Node()
	if len(g.EdgesFrom(buf.Output("out"))) != 1 {
		return nil // buffer fans out: cannot stripe for one consumer
	}
	return buf
}
