package cluster

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"blockpar/internal/apps"
	"blockpar/internal/frame"
	"blockpar/internal/machine"
	"blockpar/internal/runtime"
	"blockpar/internal/serve"
)

// partitionedFleet starts n empty-registry workers and a dispatcher
// that splits every session n ways.
func partitionedFleet(t *testing.T, n int) (*Dispatcher, []*Worker, func()) {
	t.Helper()
	opts := fastOpts()
	opts.Partitions = n
	d, workers, stop, err := LoopbackFleet(n, opts, func(i int) *Worker {
		return NewWorker(serve.NewRegistry(machine.Embedded()), WorkerOptions{Name: fmt.Sprintf("w%d", i)})
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, workers, stop
}

// TestPartitionedSuiteGoldens is the tentpole acceptance bar: every
// Figure 13 app streamed through a partitioned session — the graph
// split across 2 and then 3 workers, cut edges relayed through the
// dispatcher — produces frames byte-identical to the batch runtime,
// with poisoning and the zero-copy plane on (see poison_test.go).
// Pipelines whose placement collapses run whole; at least one app must
// genuinely partition or the test is vacuous.
func TestPartitionedSuiteGoldens(t *testing.T) {
	for _, workers := range []int{2, 3} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			frontend := suiteRegistry(t)
			d, _, stop := partitionedFleet(t, workers)
			defer stop()

			const frames = 2
			split := 0
			var wg sync.WaitGroup
			errs := make(chan error, len(apps.IDs()))
			for _, id := range apps.IDs() {
				app, err := apps.ByID(id)
				if err != nil {
					t.Fatal(err)
				}
				want := batchFrames(t, app, frames)
				p, _ := frontend.Get(id)
				if plan, err := d.plan(p, workers); err != nil {
					t.Fatalf("plan %s: %v", id, err)
				} else if len(plan.Partitions) >= 2 {
					split++
				}
				wg.Add(1)
				go func(id string) {
					defer wg.Done()
					if err := streamCluster(d, p, frames, want); err != nil {
						errs <- fmt.Errorf("pipeline %s: %w", id, err)
					}
				}(id)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			if split == 0 {
				t.Error("every placement collapsed to one partition; the cut-edge path went unexercised")
			}
		})
	}
}

// TestPartitionedExplicitInputs routes client-supplied windows to the
// partition owning each input node and checks the stream against the
// batch golden, plus the local validation error vocabulary.
func TestPartitionedExplicitInputs(t *testing.T) {
	frontend := suiteRegistry(t, "5")
	p, _ := frontend.Get("5")
	d, _, stop := partitionedFleet(t, 2)
	defer stop()

	app, err := apps.ByID("5")
	if err != nil {
		t.Fatal(err)
	}
	in := p.Graph().Inputs()[0]
	gen := app.Sources[in.Name()]
	if gen == nil {
		gen = frame.Gradient
	}
	want := batchFrames(t, app, 2)

	h, err := openN(d, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for f := int64(0); f < 2; f++ {
		win := gen(f, in.FrameSize.W, in.FrameSize.H)
		if _, err := h.TryFeed(map[string]frame.Window{in.Name(): win}); err != nil {
			t.Fatalf("feed %d: %v", f, err)
		}
		res, err := h.Collect(30 * time.Second)
		if err != nil {
			t.Fatalf("collect %d: %v", f, err)
		}
		for name, perFrame := range want {
			for i, w := range perFrame[f] {
				if !res.Outputs[name][i].Equal(w) {
					t.Fatalf("frame %d output %q window %d differs", f, name, i)
				}
			}
		}
		for _, ws := range res.Outputs {
			for _, w := range ws {
				w.Release()
			}
		}
	}
	if _, err := h.TryFeed(map[string]frame.Window{"nope": frame.NewWindow(1, 1)}); !errors.Is(err, runtime.ErrBadFrame) {
		t.Errorf("unknown input: got %v, want ErrBadFrame", err)
	}
}

// TestPartitionedBackpressure checks the global feed window: with one
// frame in flight and maxInFlight=1, the next feed sheds ErrQueueFull
// until the merged result is collected.
func TestPartitionedBackpressure(t *testing.T) {
	frontend := suiteRegistry(t, "5")
	p, _ := frontend.Get("5")
	d, _, stop := partitionedFleet(t, 2)
	defer stop()

	h, err := openN(d, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.TryFeed(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.TryFeed(nil); !errors.Is(err, runtime.ErrQueueFull) {
		t.Fatalf("feed past maxInFlight=1: got %v, want ErrQueueFull", err)
	}
	res, err := h.Collect(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, ws := range res.Outputs {
		for _, w := range ws {
			w.Release()
		}
	}
	if _, err := h.TryFeed(nil); err != nil {
		t.Fatalf("feed after collect: %v", err)
	}
	if res, err := h.Collect(30 * time.Second); err != nil {
		t.Fatal(err)
	} else {
		for _, ws := range res.Outputs {
			for _, w := range ws {
				w.Release()
			}
		}
	}
}

// TestPartitionedSessionStats checks the /metrics sessions table: one
// deduplicated row per open partitioned session listing every hosting
// worker, the partition count, and zero replay bytes (partitioned
// sessions keep no failover log).
func TestPartitionedSessionStats(t *testing.T) {
	frontend := suiteRegistry(t, "5")
	p, _ := frontend.Get("5")
	d, _, stop := partitionedFleet(t, 2)
	defer stop()

	h, err := openN(d, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	ps, ok := h.(*partitionedSession)
	if !ok {
		t.Fatalf("session is %T; placement did not split pipeline 5", h)
	}
	rows := d.BackendStats().(map[string]any)["sessions"].([]SessionStats)
	if len(rows) != 1 {
		t.Fatalf("got %d session rows, want 1 (deduplicated): %+v", len(rows), rows)
	}
	r := rows[0]
	if r.Pipeline != "5" || r.Partitions != len(ps.halves) || r.ReplayBytes != 0 {
		t.Errorf("session row %+v, want pipeline 5 with %d partitions and no replay bytes", r, len(ps.halves))
	}
	if len(r.Workers) != len(ps.halves) {
		t.Errorf("session row lists workers %v, want %d distinct", r.Workers, len(ps.halves))
	}
	seen := make(map[string]bool)
	for _, addr := range r.Workers {
		if seen[addr] {
			t.Errorf("worker %s hosts two partitions of one session", addr)
		}
		seen[addr] = true
	}
}

// TestPartitionedInsufficientWorkers: a 2-way split over a fleet with
// one placeable worker degrades to a whole session on that worker
// instead of co-locating partitions, refusing service, or hanging.
func TestPartitionedInsufficientWorkers(t *testing.T) {
	frontend := suiteRegistry(t, "5")
	p, _ := frontend.Get("5")
	app, err := apps.ByID("5")
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOpts()
	opts.Partitions = 2
	worker := NewWorker(suiteRegistry(t, "5"), WorkerOptions{})
	d, stop, err := Loopback(worker, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	h, err := openN(d, p, 2)
	if err != nil {
		t.Fatalf("2-way split on 1 worker: got %v, want whole-session fallback", err)
	}
	defer h.Close()
	if _, ok := h.(*partitionedSession); ok {
		t.Fatal("2-way split on 1 worker placed a partitioned session, want whole")
	}
	const frames = 2
	if err := streamSession(h, frames, batchFrames(t, app, frames)); err != nil {
		t.Fatalf("degraded whole session: %v", err)
	}
}

// TestPartitionedChaosKill is the failure-semantics acceptance test:
// killing either partition's worker mid-stream ends the session with a
// typed serve.ErrSessionLost — never a hang — the surviving partition
// aborts and drains, every arena reference returns to baseline, and
// the dispatcher keeps serving unpartitioned work is out of scope
// (partitioned sessions are not failed over).
func TestPartitionedChaosKill(t *testing.T) {
	for victim := 0; victim < 2; victim++ {
		t.Run(fmt.Sprintf("victim=%d", victim), func(t *testing.T) {
			frontend := suiteRegistry(t, "5")
			p, _ := frontend.Get("5")
			d, workers, stop := partitionedFleet(t, 2)
			defer stop()

			base := frame.Stats().Live
			h, err := openN(d, p, 4)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := h.(*partitionedSession); !ok {
				t.Fatalf("session is %T; placement did not split pipeline 5", h)
			}
			// Stream a couple of frames to prove health, then kill with
			// frames in flight.
			for f := 0; f < 2; f++ {
				if _, err := h.TryFeed(nil); err != nil {
					t.Fatalf("feed %d: %v", f, err)
				}
				res, err := h.Collect(30 * time.Second)
				if err != nil {
					t.Fatalf("collect %d: %v", f, err)
				}
				for _, ws := range res.Outputs {
					for _, w := range ws {
						w.Release()
					}
				}
			}
			if _, err := h.TryFeed(nil); err != nil {
				t.Fatal(err)
			}
			workers[victim].Close()

			deadline := time.Now().Add(20 * time.Second)
			var cerr error
			for {
				var res *runtime.StreamResult
				res, cerr = h.Collect(20 * time.Second)
				if res != nil {
					for _, ws := range res.Outputs {
						for _, w := range ws {
							w.Release()
						}
					}
					continue
				}
				if cerr != nil && !strings.Contains(cerr.Error(), "timed out") {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("collect after worker kill hung")
				}
			}
			if !errors.Is(cerr, serve.ErrSessionLost) {
				t.Errorf("collect after kill: got %v, want serve.ErrSessionLost", cerr)
			}
			if _, err := h.TryFeed(nil); err == nil || errors.Is(err, runtime.ErrQueueFull) {
				t.Errorf("feed on failed session: got %v, want terminal error", err)
			}
			h.Close()
			waitCondition(t, "arena references to return to baseline", func() bool {
				return frame.Stats().Live <= base
			})
		})
	}
}

// TestPartitionedClose checks a clean close drains every partition:
// all fed frames complete, EOS crosses the cut edges, and Close
// returns nil with the arena back at baseline.
func TestPartitionedClose(t *testing.T) {
	frontend := suiteRegistry(t, "5")
	p, _ := frontend.Get("5")
	d, _, stop := partitionedFleet(t, 2)
	defer stop()

	base := frame.Stats().Live
	h, err := openN(d, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 3; f++ {
		if _, err := h.TryFeed(nil); err != nil {
			t.Fatalf("feed %d: %v", f, err)
		}
	}
	for f := int64(0); f < 3; f++ {
		res, err := h.Collect(30 * time.Second)
		if err != nil {
			t.Fatalf("collect %d: %v", f, err)
		}
		if res.Seq != f {
			t.Fatalf("collected frame %d, want %d", res.Seq, f)
		}
		for _, ws := range res.Outputs {
			for _, w := range ws {
				w.Release()
			}
		}
	}
	if err := h.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	waitCondition(t, "arena references to return to baseline", func() bool {
		return frame.Stats().Live <= base
	})
}
