package kernel

import (
	"fmt"

	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/token"
)

// Histogram builds the paper's histogram kernel (Figure 7): method
// count fires on each data sample; finishCount fires on the
// end-of-frame token on the same input, emits the bin counts, and
// resets; configureBins fires on the replicated "bins" input. Under
// parallelization each instance accumulates a partial histogram which
// the Merge kernel combines (Figure 1(b)).
func Histogram(name string, bins int) *graph.Node {
	if bins < 1 {
		panic("kernel: histogram needs at least one bin")
	}
	n := graph.NewNode(name, graph.KindKernel)
	n.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	bp := n.CreateInput("bins", geom.Sz(bins, 1), geom.St(bins, 1), geom.Off(0, 0))
	bp.Replicated = true
	n.CreateOutput("out", geom.Sz(bins, 1), geom.St(bins, 1))

	// Cycle shapes from Figure 7: linear search averages bins/2.
	n.RegisterMethod("count", int64(bins/2+5), int64(2*bins))
	n.RegisterMethodInput("count", "in")

	n.RegisterMethod("finishCount", int64(3*bins+3), int64(2*bins))
	n.RegisterMethodInputToken("finishCount", "in", token.EndOfFrame, "")
	n.RegisterMethodOutput("finishCount", "out")

	n.RegisterMethod("configureBins", int64(2*bins+5), int64(bins))
	n.RegisterMethodInput("configureBins", "bins")

	n.Attrs["ktype"] = "histogram"
	n.Attrs["kparams"] = fmt.Sprintf("%d", bins)
	n.Behavior = &histogramBehavior{bins: bins}
	return n
}

type histogramBehavior struct {
	elemToF64
	bins   int
	edges  []float64
	counts []float64
}

func (b *histogramBehavior) Clone() graph.Behavior { return &histogramBehavior{bins: b.bins} }

func (b *histogramBehavior) Invoke(method string, ctx graph.ExecContext) error {
	switch method {
	case "configureBins":
		in := ctx.Input("bins")
		b.edges = make([]float64, b.bins)
		for i := 0; i < b.bins; i++ {
			b.edges[i] = in.At(i, 0)
		}
		b.counts = make([]float64, b.bins)
		return nil
	case "count":
		if b.edges == nil {
			return fmt.Errorf("kernel: histogram counted before configureBins")
		}
		v := ctx.Input("in").Value()
		b.counts[frame.FindBin(v, b.edges)]++
		return nil
	case "finishCount":
		out := frame.Alloc(b.bins, 1)
		copy(out.Pix, b.counts)
		for i := range b.counts {
			b.counts[i] = 0
		}
		ctx.Emit("out", out)
		return nil
	default:
		return fmt.Errorf("kernel: histogram has no method %q", method)
	}
}

// Merge builds the serial reduction kernel of Figure 1(b): it
// accumulates partial histograms arriving on "in" and emits the final
// histogram once per frame when the end-of-frame token arrives. A data
// dependency edge from the application input limits it to one instance.
func Merge(name string, bins int) *graph.Node {
	if bins < 1 {
		panic("kernel: merge needs at least one bin")
	}
	n := graph.NewNode(name, graph.KindKernel)
	n.CreateInput("in", geom.Sz(bins, 1), geom.St(bins, 1), geom.Off(0, 0))
	n.CreateOutput("out", geom.Sz(bins, 1), geom.St(bins, 1))

	n.RegisterMethod("accumulate", int64(bins+4), int64(bins))
	n.RegisterMethodInput("accumulate", "in")

	n.RegisterMethod("finishMerge", int64(2*bins), int64(bins))
	n.RegisterMethodInputToken("finishMerge", "in", token.EndOfFrame, "")
	n.RegisterMethodOutput("finishMerge", "out")

	n.Attrs["ktype"] = "merge"
	n.Attrs["kparams"] = fmt.Sprintf("%d", bins)
	n.Behavior = &mergeBehavior{bins: bins}
	return n
}

type mergeBehavior struct {
	elemToF64
	bins int
	acc  []float64
}

func (b *mergeBehavior) Clone() graph.Behavior { return &mergeBehavior{bins: b.bins} }

func (b *mergeBehavior) Invoke(method string, ctx graph.ExecContext) error {
	switch method {
	case "accumulate":
		in := ctx.Input("in")
		if b.acc == nil {
			b.acc = make([]float64, b.bins)
		}
		for i := 0; i < b.bins; i++ {
			b.acc[i] += in.At(i, 0)
		}
		return nil
	case "finishMerge":
		out := frame.Alloc(b.bins, 1)
		if b.acc != nil {
			copy(out.Pix, b.acc)
			for i := range b.acc {
				b.acc[i] = 0
			}
		}
		ctx.Emit("out", out)
		return nil
	default:
		return fmt.Errorf("kernel: merge has no method %q", method)
	}
}
