package kernel

import (
	"fmt"
	"math"

	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
)

// FIR builds a 1-D finite-impulse-response filter: a taps-wide window
// sliding along each row (the paper's parameterization covers
// one-dimensional signal handling with h=1 windows, §II-A). Taps load
// on a replicated input like convolution coefficients.
func FIR(name string, taps int) *graph.Node {
	if taps < 1 {
		panic(fmt.Sprintf("kernel: FIR needs at least one tap, got %d", taps))
	}
	n := graph.NewNode(name, graph.KindKernel)
	half := int64(taps / 2)
	n.CreateInput("in", geom.Sz(taps, 1), geom.St(1, 1), geom.OffF(geom.FInt(half), geom.FInt(0)))
	tp := n.CreateInput("taps", geom.Sz(taps, 1), geom.St(taps, 1), geom.Off(half, 0))
	tp.Replicated = true
	n.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))

	n.RegisterMethod("runFIR", int64(methodOverhead+2*taps), int64(2*taps))
	n.RegisterMethodInput("runFIR", "in")
	n.RegisterMethodOutput("runFIR", "out")

	n.RegisterMethod("loadTaps", int64(methodOverhead+taps), int64(taps))
	n.RegisterMethodInput("loadTaps", "taps")

	n.Attrs["ktype"] = "fir"
	n.Attrs["kparams"] = fmt.Sprintf("%d", taps)
	n.Behavior = &firBehavior{taps: taps}
	return n
}

type firBehavior struct {
	elemToF64
	taps  int
	coefs frame.Window
}

func (b *firBehavior) Clone() graph.Behavior { return &firBehavior{taps: b.taps} }

func (b *firBehavior) Invoke(method string, ctx graph.ExecContext) error {
	switch method {
	case "loadTaps":
		b.coefs = ctx.Input("taps").Clone()
		return nil
	case "runFIR":
		if b.coefs.W != b.taps {
			return fmt.Errorf("kernel: FIR fired before loadTaps")
		}
		in := ctx.Input("in")
		var acc float64
		for i := 0; i < b.taps; i++ {
			acc += in.At(i, 0) * b.coefs.At(b.taps-i-1, 0)
		}
		ctx.Emit("out", frame.PooledScalar(acc))
		return nil
	default:
		return fmt.Errorf("kernel: FIR has no method %q", method)
	}
}

// Upsample builds a k×k nearest-neighbor upsampler: each input sample
// produces a k×k block, demonstrating outputs larger than inputs (the
// item grid stays the input's; the region grows k-fold).
func Upsample(name string, k int) *graph.Node {
	if k < 1 {
		panic("kernel: upsample factor must be positive")
	}
	n := graph.NewNode(name, graph.KindKernel)
	n.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	n.CreateOutput("out", geom.Sz(k, k), geom.St(k, k))
	n.RegisterMethod("runUpsample", int64(gainCycles+k*k), int64(k*k))
	n.RegisterMethodInput("runUpsample", "in")
	n.RegisterMethodOutput("runUpsample", "out")
	n.Attrs["ktype"] = "upsample"
	n.Attrs["kparams"] = fmt.Sprintf("%d", k)
	n.Behavior = upsampleBehavior{k: k}
	return n
}

type upsampleBehavior struct {
	elemToF64
	k int
}

func (b upsampleBehavior) Clone() graph.Behavior { return b }

func (b upsampleBehavior) Invoke(method string, ctx graph.ExecContext) error {
	if method != "runUpsample" {
		return fmt.Errorf("kernel: upsample has no method %q", method)
	}
	v := ctx.Input("in").Value()
	out := frame.Alloc(b.k, b.k)
	for i := range out.Pix {
		out.Pix[i] = v
	}
	ctx.Emit("out", out)
	return nil
}

// Magnitude builds the two-input gradient-magnitude kernel
// out = sqrt(gx² + gy²), a second multi-input example beyond Subtract.
func Magnitude(name string) *graph.Node {
	n := graph.NewNode(name, graph.KindKernel)
	n.CreateInput("gx", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	n.CreateInput("gy", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	n.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	n.RegisterMethod("magnitude", 24, 2)
	n.RegisterMethodInput("magnitude", "gx")
	n.RegisterMethodInput("magnitude", "gy")
	n.RegisterMethodOutput("magnitude", "out")
	n.Attrs["ktype"] = "magnitude"
	n.Behavior = magnitudeBehavior{}
	return n
}

type magnitudeBehavior struct{ elemToF64 }

func (magnitudeBehavior) Clone() graph.Behavior { return magnitudeBehavior{} }

func (magnitudeBehavior) Invoke(method string, ctx graph.ExecContext) error {
	if method != "magnitude" {
		return fmt.Errorf("kernel: magnitude has no method %q", method)
	}
	gx := ctx.Input("gx").Value()
	gy := ctx.Input("gy").Value()
	ctx.Emit("out", frame.PooledScalar(math.Hypot(gx, gy)))
	return nil
}

// Threshold builds a 1×1 binarization kernel: out = high if in >= t,
// else low.
func Threshold(name string, t, low, high float64) *graph.Node {
	n := graph.NewNode(name, graph.KindKernel)
	n.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	n.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	n.RegisterMethod("runThreshold", 6, 1)
	n.RegisterMethodInput("runThreshold", "in")
	n.RegisterMethodOutput("runThreshold", "out")
	n.Attrs["ktype"] = "threshold"
	n.Attrs["kparams"] = fmt.Sprintf("%g,%g,%g", t, low, high)
	n.Behavior = thresholdBehavior{t: t, low: low, high: high}
	return n
}

type thresholdBehavior struct {
	elemToF64
	t, low, high float64
}

func (b thresholdBehavior) Clone() graph.Behavior { return b }

func (b thresholdBehavior) Invoke(method string, ctx graph.ExecContext) error {
	if method != "runThreshold" {
		return fmt.Errorf("kernel: threshold has no method %q", method)
	}
	v := ctx.Input("in").Value()
	out := b.low
	if v >= b.t {
		out = b.high
	}
	ctx.Emit("out", frame.PooledScalar(out))
	return nil
}
