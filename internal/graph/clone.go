package graph

import "blockpar/internal/geom"

// CloneNode returns a deep copy of n named name, with the given
// parallel-instance index. Ports, methods, attrs, and token rates are
// copied; the Behavior is cloned so the instance has fresh private
// state. The clone is not added to any graph.
func CloneNode(n *Node, name string, instance int) *Node {
	c := NewNode(name, n.Kind)
	c.Base = n.Base
	c.Instance = instance
	c.FrameSize = n.FrameSize
	c.Rate = n.Rate
	c.NoMultiplex = n.NoMultiplex
	for _, p := range n.Inputs() {
		np := c.CreateInput(p.Name, p.Size, p.Step, p.Offset)
		np.Replicated = p.Replicated
		np.Elem = p.Elem
	}
	for _, p := range n.Outputs() {
		np := c.CreateOutput(p.Name, p.Size, p.Step)
		np.Elem = p.Elem
	}
	for _, m := range n.Methods() {
		nm := c.RegisterMethod(m.Name, m.Cycles, m.Memory)
		nm.Bound = m.Bound
		nm.Triggers = append(nm.Triggers, m.Triggers...)
		nm.Outputs = append(nm.Outputs, m.Outputs...)
		nm.ForwardOnly = append(nm.ForwardOnly, m.ForwardOnly...)
	}
	if n.Costs != nil {
		c.Costs = make(map[string]CostModel, len(n.Costs))
		for k, v := range n.Costs {
			c.Costs[k] = v
		}
	}
	if n.TokenRates != nil {
		c.TokenRates = make(map[string]geom.Frac, len(n.TokenRates))
		for k, v := range n.TokenRates {
			c.TokenRates[k] = v
		}
	}
	for k, v := range n.Attrs {
		c.Attrs[k] = v
	}
	if n.Behavior != nil {
		c.Behavior = n.Behavior.Clone()
	}
	return c
}

// Clone returns a deep copy of the whole graph: every node (with fresh
// behavior state), every stream edge, and every dependency edge.
// Behaviors carry private per-run state, so a graph instance must not
// be executed twice or shared between concurrent runs — cloning a
// compiled template gives each execution its own state while paying
// the compilation cost only once.
func (g *Graph) Clone() *Graph {
	c := New(g.Name)
	for _, n := range g.nodes {
		c.Add(CloneNode(n, n.Name(), n.Instance))
	}
	for _, e := range g.edges {
		c.Connect(c.Node(e.From.node.Name()), e.From.Name,
			c.Node(e.To.node.Name()), e.To.Name)
	}
	for _, d := range g.deps {
		c.AddDep(c.Node(d.From.Name()), c.Node(d.To.Name()))
	}
	g.cloneConns(c)
	return c
}
