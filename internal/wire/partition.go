package wire

// The partition plane (protocol version 3): when a session is split
// across several workers, each worker runs one partition of the
// compiled graph and the cut edges between partitions become explicit
// item streams relayed through the frontend. OpenPartition places one
// partition (a node subset plus its cut-edge endpoints), EdgeFrame
// moves items across a cut edge, and EdgeCredit returns consumption
// credits so a cut edge buffers no more than its window — mirroring
// the bounded mailboxes the edge replaced.

// Cut-edge directions, relative to the partition receiving the
// OpenPartition: EdgeIn streams arrive via EdgeFrame, EdgeOut streams
// are produced by the partition and shipped out.
const (
	EdgeIn  uint8 = 0
	EdgeOut uint8 = 1
)

// EdgeSpec describes one cut-edge endpoint inside an OpenPartition:
// the original graph edge it replaces (by node/port names in the
// compiled graph) and the credit window bounding items in flight.
type EdgeSpec struct {
	ID     uint32
	Dir    uint8
	Credit uint32

	FromNode string
	FromPort string
	ToNode   string
	ToPort   string
}

// OpenPartition places one partition of a session on the worker. The
// worker clones the named pipeline's compiled graph, keeps only Nodes,
// splices boundary shims onto the cut edges, and runs the remainder as
// an ordinary streaming session under SID. Fields mirror OpenSession;
// Partition is the plan index, for diagnostics.
type OpenPartition struct {
	SID         uint64
	Pipeline    string
	Partition   uint32
	MaxInFlight uint32
	DeadlineMs  uint32
	Nodes       []string
	Edges       []EdgeSpec
}

func (*OpenPartition) Type() MsgType { return TypeOpenPartition }
func (m *OpenPartition) append(b []byte) []byte {
	b = appendU64(b, m.SID)
	b = appendStr(b, m.Pipeline)
	b = appendU32(b, m.Partition)
	b = appendU32(b, m.MaxInFlight)
	b = appendU32(b, m.DeadlineMs)
	b = appendU16(b, uint16(len(m.Nodes)))
	for _, n := range m.Nodes {
		b = appendStr(b, n)
	}
	b = appendU16(b, uint16(len(m.Edges)))
	for _, e := range m.Edges {
		b = appendU32(b, e.ID)
		b = append(b, e.Dir)
		b = appendU32(b, e.Credit)
		b = appendStr(b, e.FromNode)
		b = appendStr(b, e.FromPort)
		b = appendStr(b, e.ToNode)
		b = appendStr(b, e.ToPort)
	}
	return b
}
func (m *OpenPartition) decode(r *reader) {
	m.SID = r.u64("open-partition sid")
	m.Pipeline = r.str("open-partition pipeline")
	m.Partition = r.u32("open-partition index")
	m.MaxInFlight = r.u32("open-partition max-in-flight")
	m.DeadlineMs = r.u32("open-partition deadline-ms")
	nn := int(r.u16("open-partition node count"))
	for i := 0; i < nn && r.err == nil; i++ {
		m.Nodes = append(m.Nodes, r.str("open-partition node"))
	}
	en := int(r.u16("open-partition edge count"))
	for i := 0; i < en && r.err == nil; i++ {
		e := EdgeSpec{
			ID:     r.u32("edge id"),
			Dir:    r.u8("edge dir"),
			Credit: r.u32("edge credit"),
		}
		e.FromNode = r.str("edge from node")
		e.FromPort = r.str("edge from port")
		e.ToNode = r.str("edge to node")
		e.ToPort = r.str("edge to port")
		if r.err == nil && e.Dir != EdgeIn && e.Dir != EdgeOut {
			r.err = corruptf("edge dir %d out of range", e.Dir)
		}
		m.Edges = append(m.Edges, e)
	}
}

// EdgeResume is one outbound cut edge's resume watermark inside a
// ReopenPartition: SkipItems is the number of items the dead instance
// already shipped (and the frontend already relayed to the consumer),
// so the new instance re-produces the stream from the start and
// discards that prefix without consuming credits. Inbound edges need
// no worker-side watermark — the frontend replays their logged items
// and swallows the already-relayed credit returns itself, because the
// replay is paced by exactly those credits.
type EdgeResume struct {
	Edge      uint32
	SkipItems uint64
}

// ReopenPartition (protocol v7) resumes one partition of a live
// partitioned session on a new worker after its previous worker died
// or drained. The open fields mirror OpenPartition; ResumeResults is
// the session's result-delivery watermark (results below it were
// already delivered to the client and are suppressed, though their
// feed credits still flow so replay stays paced), and Resume carries
// the per-cut-edge skip watermarks.
type ReopenPartition struct {
	SID           uint64
	Pipeline      string
	Partition     uint32
	MaxInFlight   uint32
	DeadlineMs    uint32
	ResumeResults int64
	Nodes         []string
	Edges         []EdgeSpec
	Resume        []EdgeResume
}

func (*ReopenPartition) Type() MsgType { return TypeReopenPartition }
func (m *ReopenPartition) append(b []byte) []byte {
	b = appendU64(b, m.SID)
	b = appendStr(b, m.Pipeline)
	b = appendU32(b, m.Partition)
	b = appendU32(b, m.MaxInFlight)
	b = appendU32(b, m.DeadlineMs)
	b = appendI64(b, m.ResumeResults)
	b = appendU16(b, uint16(len(m.Nodes)))
	for _, n := range m.Nodes {
		b = appendStr(b, n)
	}
	b = appendU16(b, uint16(len(m.Edges)))
	for _, e := range m.Edges {
		b = appendU32(b, e.ID)
		b = append(b, e.Dir)
		b = appendU32(b, e.Credit)
		b = appendStr(b, e.FromNode)
		b = appendStr(b, e.FromPort)
		b = appendStr(b, e.ToNode)
		b = appendStr(b, e.ToPort)
	}
	b = appendU16(b, uint16(len(m.Resume)))
	for _, er := range m.Resume {
		b = appendU32(b, er.Edge)
		b = appendU64(b, er.SkipItems)
	}
	return b
}
func (m *ReopenPartition) decode(r *reader) {
	m.SID = r.u64("reopen-partition sid")
	m.Pipeline = r.str("reopen-partition pipeline")
	m.Partition = r.u32("reopen-partition index")
	m.MaxInFlight = r.u32("reopen-partition max-in-flight")
	m.DeadlineMs = r.u32("reopen-partition deadline-ms")
	m.ResumeResults = r.i64("reopen-partition resume-results")
	if r.err == nil && m.ResumeResults < 0 {
		r.err = corruptf("reopen-partition resume-results %d negative", m.ResumeResults)
		return
	}
	nn := int(r.u16("reopen-partition node count"))
	for i := 0; i < nn && r.err == nil; i++ {
		m.Nodes = append(m.Nodes, r.str("reopen-partition node"))
	}
	en := int(r.u16("reopen-partition edge count"))
	for i := 0; i < en && r.err == nil; i++ {
		e := EdgeSpec{
			ID:     r.u32("edge id"),
			Dir:    r.u8("edge dir"),
			Credit: r.u32("edge credit"),
		}
		e.FromNode = r.str("edge from node")
		e.FromPort = r.str("edge from port")
		e.ToNode = r.str("edge to node")
		e.ToPort = r.str("edge to port")
		if r.err == nil && e.Dir != EdgeIn && e.Dir != EdgeOut {
			r.err = corruptf("edge dir %d out of range", e.Dir)
		}
		m.Edges = append(m.Edges, e)
	}
	rn := int(r.u16("reopen-partition resume count"))
	for i := 0; i < rn && r.err == nil; i++ {
		m.Resume = append(m.Resume, EdgeResume{
			Edge:      r.u32("resume edge"),
			SkipItems: r.u64("resume skip-items"),
		})
	}
}

// EdgeFrame moves items across one cut edge: a batch of in-order
// channel items (data windows or control tokens) and, on the final
// frame, the end-of-stream flag. The sender must hold one credit per
// item; a receiver seeing its buffer overflow treats it as a protocol
// violation and aborts the session.
type EdgeFrame struct {
	SID   uint64
	Edge  uint32
	EOS   bool
	Items []Item
}

func (*EdgeFrame) Type() MsgType { return TypeEdgeFrame }
func (m *EdgeFrame) append(b []byte) []byte {
	b = appendU64(b, m.SID)
	b = appendU32(b, m.Edge)
	var flags byte
	if m.EOS {
		flags = 1
	}
	b = append(b, flags)
	b = appendU16(b, uint16(len(m.Items)))
	for _, it := range m.Items {
		b = AppendItem(b, it)
	}
	return b
}
func (m *EdgeFrame) decode(r *reader) {
	m.SID = r.u64("edge-frame sid")
	m.Edge = r.u32("edge-frame edge")
	flags := r.u8("edge-frame flags")
	if r.err == nil && flags > 1 {
		r.err = corruptf("edge-frame flags %#x out of range", flags)
		return
	}
	m.EOS = flags == 1
	n := int(r.u16("edge-frame item count"))
	for i := 0; i < n && r.err == nil; i++ {
		m.Items = append(m.Items, decodeItem(r))
	}
	if r.err != nil {
		releaseItems(m.Items)
		m.Items = nil
	}
}

// releaseItems returns the data windows of decoded items to the arena.
func releaseItems(items []Item) {
	for _, it := range items {
		if !it.IsToken {
			it.Win.Release()
		}
	}
}

// EdgeCredit returns N item credits for one cut edge, flowing from the
// consuming partition back to the producing one as the boundary source
// forwards items into the consumer's graph.
type EdgeCredit struct {
	SID  uint64
	Edge uint32
	N    uint32
}

func (*EdgeCredit) Type() MsgType { return TypeEdgeCredit }
func (m *EdgeCredit) append(b []byte) []byte {
	b = appendU64(b, m.SID)
	b = appendU32(b, m.Edge)
	return appendU32(b, m.N)
}
func (m *EdgeCredit) decode(r *reader) {
	m.SID = r.u64("edge-credit sid")
	m.Edge = r.u32("edge-credit edge")
	m.N = r.u32("edge-credit n")
}
