// Radio demonstrates one-dimensional signal handling (the paper's
// radio-processing motivation): a real-time sample stream through a
// two-stage FIR filter chain followed by 4:1 decimation. The 2-D
// parameterization handles 1-D naturally with height-1 windows; the
// decimator's fractional offset exercises the paper's §II-A footnote.
package main

import (
	"fmt"
	"log"
	"math"

	"blockpar"
)

const (
	blockLen = 256 // samples per frame (one processing block)
	taps1    = 9
	taps2    = 5
	decim    = 4
)

// lowpass returns a simple normalized lowpass tap set.
func lowpass(n int) blockpar.Window {
	w := blockpar.NewWindow(n, 1)
	var sum float64
	for i := 0; i < n; i++ {
		v := 1 - math.Abs(float64(i)-float64(n-1)/2)/float64(n)
		w.Set(i, 0, v)
		sum += v
	}
	for i := range w.Pix {
		w.Pix[i] /= sum
	}
	return w
}

func main() {
	rate := blockpar.F(2_000_000, blockLen) // 2 M samples/s
	g := blockpar.NewApp("radio")
	in := g.AddInput("ADC", blockpar.Sz(blockLen, 1), blockpar.Sz(1, 1), rate)
	t1 := g.AddInput("Taps1", blockpar.Sz(taps1, 1), blockpar.Sz(taps1, 1), rate)
	t2 := g.AddInput("Taps2", blockpar.Sz(taps2, 1), blockpar.Sz(taps2, 1), rate)

	fir1 := g.Add(blockpar.FIR("FIR1", taps1))
	fir2 := g.Add(blockpar.FIR("FIR2", taps2))
	// 1-D decimation: a custom kernel built with the public API — a
	// (4×1)[4,1] window keeping one of every four samples.
	dec := g.Add(decimator1D("Decimate", decim))

	out := g.AddOutput("Baseband", blockpar.Sz(1, 1))
	g.Connect(in, "out", fir1, "in")
	g.Connect(t1, "out", fir1, "taps")
	g.Connect(fir1, "out", fir2, "in")
	g.Connect(t2, "out", fir2, "taps")
	g.Connect(fir2, "out", dec, "in")
	g.Connect(dec, "out", out, "in")

	cfg := blockpar.DefaultConfig()
	compiled, err := blockpar.Compile(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled radio chain: degrees %v\n", compiled.Report.Degrees)

	tw1, tw2 := lowpass(taps1), lowpass(taps2)
	res, err := blockpar.Run(compiled.Graph, blockpar.RunOptions{
		Frames: 2,
		Sources: map[string]blockpar.Generator{
			"ADC":   blockpar.LCG,
			"Taps1": blockpar.FixedWindow(tw1),
			"Taps2": blockpar.FixedWindow(tw2),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for f, ws := range res.FrameSlices("Baseband") {
		sig := blockpar.LCG(int64(f), blockLen, 1)
		want := blockpar.GoldenFIR(blockpar.GoldenFIR(sig, tw1.Pix), tw2.Pix)
		for i, w := range ws {
			if math.Abs(w.Value()-want.At(i*decim, 0)) > 1e-9 {
				log.Fatalf("frame %d sample %d: got %v, want %v", f, i, w.Value(), want.At(i*decim, 0))
			}
		}
		fmt.Printf("frame %d: %d baseband samples match the golden FIR chain\n", f, len(ws))
	}

	assign, err := blockpar.MapGreedy(compiled.Graph, compiled.Analysis, cfg.Machine)
	if err != nil {
		log.Fatal(err)
	}
	sr, err := blockpar.Simulate(compiled.Graph, assign, blockpar.SimOptions{Machine: cfg.Machine, Frames: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("timing: %d PEs, real-time met: %v, utilization %.1f%%\n",
		assign.NumPEs, sr.RealTimeMet(), 100*sr.MeanUtilization())
}

// decimator1D builds a 1-D keep-one-in-k kernel using the public
// custom-kernel API: window (k×1) advancing by (k,1) with the paper's
// fractional offset, emitting the window's first sample.
func decimator1D(name string, k int) *blockpar.Node {
	n := blockpar.NewKernel(name)
	n.CreateInput("in", blockpar.Sz(k, 1), blockpar.St(k, 1),
		blockpar.Offset{X: blockpar.F(int64(k-1), 2), Y: blockpar.FInt(0)})
	n.CreateOutput("out", blockpar.Sz(1, 1), blockpar.St(1, 1))
	n.RegisterMethod("decimate", 4, int64(k))
	n.RegisterMethodInput("decimate", "in")
	n.RegisterMethodOutput("decimate", "out")
	n.Behavior = firstSample{}
	return n
}

type firstSample struct{}

func (firstSample) Clone() blockpar.Behavior { return firstSample{} }

func (firstSample) Invoke(method string, ctx blockpar.ExecContext) error {
	ctx.Emit("out", blockpar.Scalar(ctx.Input("in").At(0, 0)))
	return nil
}
