package kernel

import (
	"fmt"

	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
)

// Cost model constants shared by the kernel library. Cycle counts
// follow the shapes the paper registers in its examples (Figures 6, 7):
// a fixed method overhead plus a per-element term.
const (
	methodOverhead = 10
	convPerElem    = 3
	medianPerElem  = 6
	subtractCycles = 8
	gainCycles     = 4
	bayerCycles    = 60
	fsmPerItem     = 2
)

// Convolution builds a k×k convolution kernel following the paper's
// Figure 6: a windowed data input "in", a replicated coefficient input
// "coeff" with its own loadCoeff method, and a 1×1 output "out". The
// two methods share the kernel-private coefficient state.
func Convolution(name string, k int) *graph.Node {
	if k < 1 || k%2 == 0 {
		panic(fmt.Sprintf("kernel: convolution size %d must be odd and positive", k))
	}
	n := graph.NewNode(name, graph.KindKernel)
	half := int64(k / 2)
	n.CreateInput("in", geom.Sz(k, k), geom.St(1, 1), geom.Off(half, half))
	coeff := n.CreateInput("coeff", geom.Sz(k, k), geom.St(k, k), geom.Off(half, half))
	coeff.Replicated = true
	n.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))

	n.RegisterMethod("runConvolve", int64(methodOverhead+convPerElem*k*k), int64(2*k*k))
	n.RegisterMethodInput("runConvolve", "in")
	n.RegisterMethodOutput("runConvolve", "out")

	n.RegisterMethod("loadCoeff", int64(methodOverhead+2*k*k), int64(k*k))
	n.RegisterMethodInput("loadCoeff", "coeff")

	n.Attrs["ktype"] = "convolution"
	n.Attrs["kparams"] = fmt.Sprintf("%d", k)
	n.Behavior = &convBehavior{k: k}
	return n
}

type convBehavior struct {
	k     int
	coeff frame.Window
}

func (b *convBehavior) Clone() graph.Behavior { return &convBehavior{k: b.k} }

func (b *convBehavior) Invoke(method string, ctx graph.ExecContext) error {
	switch method {
	case "loadCoeff":
		b.coeff = ctx.Input("coeff").Clone()
		return nil
	case "runConvolve":
		in := ctx.Input("in")
		if b.coeff.W != b.k {
			// Coefficients not loaded yet; the runtime's configuration
			// barrier prevents this, so reaching here is a bug.
			return fmt.Errorf("kernel: %dx%d convolution fired before loadCoeff", b.k, b.k)
		}
		var acc float64
		for y := 0; y < b.k; y++ {
			for x := 0; x < b.k; x++ {
				acc += in.At(x, y) * b.coeff.At(b.k-x-1, b.k-y-1)
			}
		}
		ctx.Emit("out", frame.PooledScalar(acc))
		return nil
	default:
		return fmt.Errorf("kernel: convolution has no method %q", method)
	}
}
