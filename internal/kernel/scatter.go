package kernel

import (
	"fmt"

	"blockpar/internal/conn"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
)

// Scatter builds the programmer-level strided distribution kernel of the
// generalized-connection subsystem: data items are dealt to out0..outN-1
// on a strided round-robin schedule (stride items per branch per turn),
// generalizing the compiler's round-robin split. Control tokens are
// broadcast to every branch so each branch keeps a consistent view of
// line/frame structure. Unlike the compiler-inserted SplitRR, a
// scatter's branches feed distinct downstream kernels (per-band or
// per-detector chains), so none of the instance-order wiring invariants
// of parallelization apply to it.
func Scatter(name string, sched conn.Schedule, item geom.Size) *graph.Node {
	if err := sched.Validate(); err != nil {
		panic("kernel: " + err.Error())
	}
	node := graph.NewNode(name, graph.KindSplit)
	node.CreateInput("in", item, geom.St(item.W, item.H), geom.Off(0, 0))
	node.RegisterMethod("scatter", fsmPerItem, 2)
	node.RegisterMethodInput("scatter", "in")
	for i := 0; i < sched.Ways; i++ {
		out := fmt.Sprintf("out%d", i)
		node.CreateOutput(out, item, geom.St(item.W, item.H))
		node.RegisterMethodOutput("scatter", out)
	}
	node.Attrs["label"] = fmt.Sprintf("scatter ×%d /%d", sched.Ways, sched.Stride)
	node.Attrs["conn"] = conn.Scatter.String()
	node.Attrs["ktype"] = "scatter"
	node.Attrs["kparams"] = fmt.Sprintf("%d,%d,%d,%d", sched.Ways, sched.Stride, item.W, item.H)
	node.Behavior = &scatterBehavior{sched: sched}
	return node
}

type scatterBehavior struct {
	sched conn.Schedule
	outs  []string
	b, k  int // current branch and items dealt to it this turn
}

func (s *scatterBehavior) Clone() graph.Behavior { return &scatterBehavior{sched: s.sched} }

func (s *scatterBehavior) Run(ctx graph.RunContext) error {
	if s.outs == nil {
		s.outs = indexedNames("out", s.sched.Ways)
	}
	for {
		it, ok := ctx.Recv("in")
		if !ok {
			return nil
		}
		if it.IsToken {
			for i := range s.outs {
				ctx.Send(s.outs[i], it)
			}
			continue
		}
		ctx.Send(s.outs[s.b], it)
		if s.k++; s.k == s.sched.Stride {
			s.k = 0
			s.b = (s.b + 1) % s.sched.Ways
		}
	}
}

// ScatterSched returns the schedule of a Scatter node, distinguishing
// programmer-level scatters from the compiler's SplitRR/SplitColumns.
func ScatterSched(n *graph.Node) (conn.Schedule, bool) {
	b, ok := n.Behavior.(*scatterBehavior)
	if !ok {
		return conn.Schedule{}, false
	}
	return b.sched, true
}

// Gather builds the collection kernel matching Scatter: data is drained
// stride items at a time from in0, in1, ... on the same schedule, so a
// gather whose schedule equals the paired scatter's restores the
// original stream order exactly. A control token is forwarded once after
// it has been received at the head of every branch (the scatter
// broadcast its copies at one stream position, and the static analysis
// pins those positions to schedule-cycle boundaries).
func Gather(name string, sched conn.Schedule, item geom.Size) *graph.Node {
	if err := sched.Validate(); err != nil {
		panic("kernel: " + err.Error())
	}
	node := graph.NewNode(name, graph.KindJoin)
	node.CreateOutput("out", item, geom.St(item.W, item.H))
	node.RegisterMethod("gather", fsmPerItem, 2)
	node.RegisterMethodOutput("gather", "out")
	for i := 0; i < sched.Ways; i++ {
		in := fmt.Sprintf("in%d", i)
		node.CreateInput(in, item, geom.St(item.W, item.H), geom.Off(0, 0))
		node.RegisterMethodInput("gather", in)
	}
	node.Attrs["label"] = fmt.Sprintf("gather ×%d /%d", sched.Ways, sched.Stride)
	node.Attrs["conn"] = conn.Gather.String()
	node.Attrs["ktype"] = "gather"
	node.Attrs["kparams"] = fmt.Sprintf("%d,%d,%d,%d", sched.Ways, sched.Stride, item.W, item.H)
	node.Behavior = &gatherBehavior{sched: sched}
	return node
}

type gatherBehavior struct {
	sched conn.Schedule
	ins   []string
	b, k  int
}

func (g *gatherBehavior) Clone() graph.Behavior { return &gatherBehavior{sched: g.sched} }

func (g *gatherBehavior) Run(ctx graph.RunContext) error {
	if g.ins == nil {
		g.ins = indexedNames("in", g.sched.Ways)
	}
	for {
		it, ok := ctx.Recv(g.ins[g.b])
		if !ok {
			return nil
		}
		if !it.IsToken {
			ctx.Send("out", it)
			if g.k++; g.k == g.sched.Stride {
				g.k = 0
				g.b = (g.b + 1) % g.sched.Ways
			}
			continue
		}
		// A token at the head of the current branch must sit at a
		// schedule-cycle boundary (otherwise the stream entering the
		// scatter violated the row-divisibility rule) and every other
		// branch's next item must be the same token.
		if g.k != 0 {
			return fmt.Errorf("kernel: gather %q token %v inside a stride run (%d of %d)",
				ctx.Node().Name(), it.Tok, g.k, g.sched.Stride)
		}
		for i := range g.ins {
			if i == g.b {
				continue
			}
			other, ok := ctx.Recv(g.ins[i])
			if !ok {
				return fmt.Errorf("kernel: gather %q branch %d closed mid-token", ctx.Node().Name(), i)
			}
			if !other.IsToken || other.Tok != it.Tok {
				return fmt.Errorf("kernel: gather %q token skew: branch %d has %v, expected %v",
					ctx.Node().Name(), i, other, it.Tok)
			}
		}
		ctx.Send("out", it)
	}
}

// GatherSched returns the schedule of a Gather node, distinguishing
// programmer-level gathers from the compiler's JoinRR/JoinColumns.
func GatherSched(n *graph.Node) (conn.Schedule, bool) {
	b, ok := n.Behavior.(*gatherBehavior)
	if !ok {
		return conn.Schedule{}, false
	}
	return b.sched, true
}
