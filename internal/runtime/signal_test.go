package runtime

import (
	"math"
	"testing"

	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
)

func TestFIRPipelineMatchesGolden(t *testing.T) {
	const N, taps = 64, 5
	coefs := frame.LCG(9, taps, 1)
	g := graph.New("fir")
	in := g.AddInput("Input", geom.Sz(N, 1), geom.Sz(1, 1), geom.FInt(100))
	tapsIn := g.AddInput("Taps", geom.Sz(taps, 1), geom.Sz(taps, 1), geom.FInt(100))
	buf := g.Add(kernel.Buffer("Buf", kernel.BufferPlan{
		DataW: N, DataH: 1, WinW: taps, WinH: 1, StepX: 1, StepY: 1,
	}))
	fir := g.Add(kernel.FIR("FIR", taps))
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", buf, "in")
	g.Connect(buf, "out", fir, "in")
	g.Connect(tapsIn, "out", fir, "taps")
	g.Connect(fir, "out", out, "in")

	res, err := Run(g, Options{
		Frames: 2,
		Sources: map[string]frame.Generator{
			"Input": frame.LCG,
			"Taps":  fixed(coefs),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for f, ws := range res.FrameSlices("Output") {
		want := frame.FIR(frame.LCG(int64(f), N, 1), coefs.Pix)
		got := scalars(t, ws)
		compareScan(t, got, want.Pix, "fir frame")
	}
}

func TestFIRGoldenValidRegion(t *testing.T) {
	f := frame.FromRows([][]float64{{1, 2, 3, 4}})
	taps := []float64{1, 0, 0} // delay-like: out(x) = in(x+2)*1? check convention
	out := frame.FIR(f, taps)
	if out.W != 2 || out.H != 1 {
		t.Fatalf("FIR size %dx%d", out.W, out.H)
	}
	// out(x) = sum in(x+i)*taps[k-i-1]: taps[2-i]=1 when i=2 -> in(x+2).
	if out.At(0, 0) != 3 || out.At(1, 0) != 4 {
		t.Errorf("FIR values %v", out.Pix)
	}
	if got := frame.FIR(frame.NewWindow(2, 1), taps); got.W != 0 {
		t.Error("undersized FIR should be empty")
	}
}

func TestUpsampleMatchesGolden(t *testing.T) {
	const W, H, K = 6, 4, 3
	g := graph.New("up")
	in := g.AddInput("Input", geom.Sz(W, H), geom.Sz(1, 1), geom.FInt(100))
	up := g.Add(kernel.Upsample("Up", K))
	out := g.AddOutput("Output", geom.Sz(K, K))
	g.Connect(in, "out", up, "in")
	g.Connect(up, "out", out, "in")

	res, err := Run(g, Options{Frames: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := frame.UpsampleNN(frame.Gradient(0, W, H), K)
	blocks := res.DataWindows("Output")
	if len(blocks) != W*H {
		t.Fatalf("blocks = %d, want %d", len(blocks), W*H)
	}
	for bi, blk := range blocks {
		bx, by := bi%W, bi/W
		for dy := 0; dy < K; dy++ {
			for dx := 0; dx < K; dx++ {
				if blk.At(dx, dy) != want.At(bx*K+dx, by*K+dy) {
					t.Fatalf("block %d mismatch at (%d,%d)", bi, dx, dy)
				}
			}
		}
	}
}

func TestMagnitudeKernel(t *testing.T) {
	const W, H = 8, 4
	g := graph.New("mag")
	a := g.AddInput("A", geom.Sz(W, H), geom.Sz(1, 1), geom.FInt(100))
	b := g.AddInput("B", geom.Sz(W, H), geom.Sz(1, 1), geom.FInt(100))
	mag := g.Add(kernel.Magnitude("Mag"))
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(a, "out", mag, "gx")
	g.Connect(b, "out", mag, "gy")
	g.Connect(mag, "out", out, "in")

	res, err := Run(g, Options{Frames: 1, Sources: map[string]frame.Generator{
		"A": frame.Constant(3), "B": frame.Constant(4),
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range res.DataWindows("Output") {
		if math.Abs(w.Value()-5) > 1e-12 {
			t.Fatalf("hypot(3,4) = %v", w.Value())
		}
	}
}

func TestThresholdKernel(t *testing.T) {
	g := graph.New("thr")
	in := g.AddInput("Input", geom.Sz(4, 1), geom.Sz(1, 1), geom.FInt(100))
	thr := g.Add(kernel.Threshold("Thr", 2.5, 0, 255))
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", thr, "in")
	g.Connect(thr, "out", out, "in")

	res, err := Run(g, Options{Frames: 1, Sources: map[string]frame.Generator{
		"Input": func(seq int64, w, h int) frame.Window {
			return frame.FromRows([][]float64{{1, 2, 3, 4}})
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	got := scalars(t, res.DataWindows("Output"))
	compareScan(t, got, []float64{0, 0, 255, 255}, "threshold")
}

func TestUpsampleGolden(t *testing.T) {
	f := frame.FromRows([][]float64{{1, 2}})
	out := frame.UpsampleNN(f, 2)
	want := frame.FromRows([][]float64{
		{1, 1, 2, 2},
		{1, 1, 2, 2},
	})
	if !out.Equal(want) {
		t.Errorf("UpsampleNN = %v", out.Pix)
	}
}

func TestMorphologyMatchesGolden(t *testing.T) {
	const W, H, K = 10, 8, 3
	for _, op := range []kernel.MorphOp{kernel.Erode, kernel.Dilate} {
		g := graph.New("morph-" + op.String())
		in := g.AddInput("Input", geom.Sz(W, H), geom.Sz(1, 1), geom.FInt(50))
		buf := g.Add(kernel.Buffer("Buf", kernel.BufferPlan{
			DataW: W, DataH: H, WinW: K, WinH: K, StepX: 1, StepY: 1,
		}))
		m := g.Add(kernel.Morphology("Morph", K, op))
		out := g.AddOutput("Output", geom.Sz(1, 1))
		g.Connect(in, "out", buf, "in")
		g.Connect(buf, "out", m, "in")
		g.Connect(m, "out", out, "in")

		res, err := Run(g, Options{
			Frames:  1,
			Sources: map[string]frame.Generator{"Input": frame.LCG},
		})
		if err != nil {
			t.Fatal(err)
		}
		want := frame.Morph(frame.LCG(0, W, H), K, op == kernel.Erode)
		compareScan(t, scalars(t, res.DataWindows("Output")), want.Pix, op.String())
	}
}

func TestMorphGoldenProperties(t *testing.T) {
	f := frame.LCG(5, 9, 7)
	eroded := frame.Morph(f, 3, true)
	dilated := frame.Morph(f, 3, false)
	med := frame.Median(f, 3)
	// Pointwise: erosion <= median <= dilation.
	for i := range eroded.Pix {
		if !(eroded.Pix[i] <= med.Pix[i] && med.Pix[i] <= dilated.Pix[i]) {
			t.Fatalf("order statistic violation at %d: %v %v %v",
				i, eroded.Pix[i], med.Pix[i], dilated.Pix[i])
		}
	}
	if got := frame.Morph(frame.NewWindow(2, 2), 3, true); got.W != 0 {
		t.Error("undersized morph should be empty")
	}
}
