package runtime

import (
	"errors"
	"testing"
	"time"

	"blockpar/internal/core"
	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
	"blockpar/internal/machine"
	"blockpar/internal/transform"
)

// Edge cases surfaced while building the conformance generator: frame
// shapes at the boundaries of the windowing model must stream through a
// session exactly like any other frame.

func compileEdge(t *testing.T, g *graph.Graph) *graph.Graph {
	t.Helper()
	c, err := core.Compile(g, core.Config{
		Machine:     machine.Embedded(),
		Align:       transform.Trim,
		Parallelize: true,
	})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c.Graph
}

// TestSessionZeroFrames opens and closes a session without ever
// feeding a frame: the kernel goroutines must come up and drain back
// down cleanly, and a collect after close must report the closure, not
// hang.
func TestSessionZeroFrames(t *testing.T) {
	g := graph.New("zero")
	in := g.AddInput("Input", geom.Sz(8, 6), geom.Sz(1, 1), geom.FInt(30))
	gain := g.Add(kernel.Gain("Gain", 2))
	out := g.AddOutput("result", geom.Sz(1, 1))
	g.Connect(in, "out", gain, "in")
	g.Connect(gain, "out", out, "in")

	sess, err := NewSession(compileEdge(t, g).Clone(), SessionOptions{})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("Close with zero frames: %v", err)
	}
	if _, err := sess.Collect(time.Second); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Collect after close: %v, want ErrSessionClosed", err)
	}
	if _, err := sess.Feed(nil); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Feed after close: %v, want ErrSessionClosed", err)
	}
}

// TestSessionSinglePixelFrame streams 1×1 frames — the degenerate
// frame where every token boundary (EOL, EOF) lands on the same single
// sample.
func TestSessionSinglePixelFrame(t *testing.T) {
	g := graph.New("pixel")
	in := g.AddInput("Input", geom.Sz(1, 1), geom.Sz(1, 1), geom.FInt(30))
	gain := g.Add(kernel.Gain("Gain", 3))
	out := g.AddOutput("result", geom.Sz(1, 1))
	g.Connect(in, "out", gain, "in")
	g.Connect(gain, "out", out, "in")

	sess, err := NewSession(compileEdge(t, g).Clone(), SessionOptions{})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer sess.Close()
	const frames = 3
	for f := 0; f < frames; f++ {
		px := frame.NewWindow(1, 1)
		px.Pix[0] = float64(10 + f)
		if _, err := sess.Feed(map[string]frame.Window{"Input": px}); err != nil {
			t.Fatalf("feed %d: %v", f, err)
		}
		res, err := sess.Collect(5 * time.Second)
		if err != nil {
			t.Fatalf("collect %d: %v", f, err)
		}
		ws := res.Outputs["result"]
		if len(ws) != 1 || ws[0].Pix[0] != float64(3*(10+f)) {
			t.Fatalf("frame %d: outputs %v, want one pixel %v", f, ws, 3*(10+f))
		}
	}
}

// TestSessionFrameNotMultipleOfStep streams a 7×5 frame through a 2×2
// downsample: the frame size is not a multiple of the window step, so
// the rightmost column and bottom row never complete a window and must
// be dropped identically by the streaming session and the batch
// runtime.
func TestSessionFrameNotMultipleOfStep(t *testing.T) {
	build := func() *graph.Graph {
		g := graph.New("ragged")
		in := g.AddInput("Input", geom.Sz(7, 5), geom.Sz(1, 1), geom.FInt(30))
		ds := g.Add(kernel.Downsample("Down", 2))
		out := g.AddOutput("result", geom.Sz(1, 1))
		g.Connect(in, "out", ds, "in")
		g.Connect(ds, "out", out, "in")
		return g
	}
	const frames = 2
	template := compileEdge(t, build())

	batch, err := Run(template.Clone(), Options{Frames: frames, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("batch run: %v", err)
	}
	slices := batch.FrameSlices("result")
	if len(slices) != frames {
		t.Fatalf("batch completed %d frames, want %d", len(slices), frames)
	}
	// 7×5 with 2×2 step-2 windows → 3×2 grid of outputs per frame.
	if len(slices[0]) != 6 {
		t.Fatalf("batch emitted %d windows per frame, want 6", len(slices[0]))
	}

	sess, err := NewSession(template.Clone(), SessionOptions{MaxInFlight: frames})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer sess.Close()
	for f := 0; f < frames; f++ {
		if _, err := sess.Feed(nil); err != nil {
			t.Fatalf("feed %d: %v", f, err)
		}
	}
	for f := 0; f < frames; f++ {
		res, err := sess.Collect(30 * time.Second)
		if err != nil {
			t.Fatalf("collect %d: %v", f, err)
		}
		got := res.Outputs["result"]
		want := slices[f]
		if len(got) != len(want) {
			t.Fatalf("frame %d: session emitted %d windows, batch %d", f, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("frame %d window %d: session %v, batch %v", f, i, got[i], want[i])
			}
		}
	}
}
