package mapping

import (
	"fmt"
	"strings"

	"blockpar/internal/graph"
)

// Dot renders the graph with kernels grouped into their assigned PEs as
// Graphviz clusters — the visual form of the paper's Figure 12, where
// "each box encloses the kernels that will run on a single processor
// core".
func Dot(g *graph.Graph, a *Assignment) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	b.WriteString("  rankdir=LR;\n  node [fontsize=10, shape=box, style=rounded];\n")

	// IO nodes sit outside any cluster.
	for _, n := range g.Nodes() {
		if _, mapped := a.PEOf[n]; !mapped {
			fmt.Fprintf(&b, "  %q [shape=oval];\n", n.Name())
		}
	}
	for pe := 0; pe < a.NumPEs; pe++ {
		nodes := a.NodesOn(g, pe)
		if len(nodes) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  subgraph cluster_pe%d {\n    label=\"PE%d\";\n    style=rounded;\n", pe, pe)
		for _, n := range nodes {
			attrs := ""
			if n.Kind == graph.KindKernel {
				// High-utilization computation kernels get the dark
				// background of Figure 12(a).
				attrs = ", style=filled, fillcolor=gray80"
			}
			fmt.Fprintf(&b, "    %q [label=%q%s];\n", n.Name(), n.Name(), attrs)
		}
		b.WriteString("  }\n")
	}
	for _, e := range g.Edges() {
		style := ""
		if e.To.Replicated {
			style = " [style=dashed]"
		}
		fmt.Fprintf(&b, "  %q -> %q%s;\n", e.From.Node().Name(), e.To.Node().Name(), style)
	}
	b.WriteString("}\n")
	return b.String()
}
