package kernel

import (
	"testing"
	"testing/quick"
)

func TestBufferPlanCounts(t *testing.T) {
	p := BufferPlan{DataW: 100, DataH: 100, WinW: 5, WinH: 5, StepX: 1, StepY: 1}
	if p.WindowsPerRow() != 96 || p.OutputRows() != 96 {
		t.Fatalf("counts = %d x %d, want 96 x 96", p.WindowsPerRow(), p.OutputRows())
	}
	p2 := BufferPlan{DataW: 8, DataH: 6, WinW: 2, WinH: 2, StepX: 2, StepY: 2}
	if p2.WindowsPerRow() != 4 || p2.OutputRows() != 3 {
		t.Fatalf("counts = %d x %d, want 4 x 3", p2.WindowsPerRow(), p2.OutputRows())
	}
	tooBig := BufferPlan{DataW: 3, DataH: 3, WinW: 5, WinH: 5, StepX: 1, StepY: 1}
	if tooBig.WindowsPerRow() != 0 || tooBig.OutputRows() != 0 {
		t.Fatal("oversized window should give zero iterations")
	}
}

func TestBufferPlanOnSampleScanOrder(t *testing.T) {
	p := BufferPlan{DataW: 5, DataH: 4, WinW: 3, WinH: 3, StepX: 1, StepY: 1}
	// Walk the input in scan order; collect emissions.
	type emission struct {
		wx, wy int
		rowEnd bool
	}
	var got []emission
	for y := 0; y < p.DataH; y++ {
		for x := 0; x < p.DataW; x++ {
			if emit, wx, wy, re := p.OnSample(x, y); emit {
				got = append(got, emission{wx, wy, re})
			}
		}
	}
	want := []emission{
		{0, 0, false}, {1, 0, false}, {2, 0, true},
		{0, 1, false}, {1, 1, false}, {2, 1, true},
	}
	if len(got) != len(want) {
		t.Fatalf("emissions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("emission %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBufferPlanStride(t *testing.T) {
	p := BufferPlan{DataW: 8, DataH: 4, WinW: 2, WinH: 2, StepX: 2, StepY: 2}
	var count, rowEnds int
	for y := 0; y < p.DataH; y++ {
		for x := 0; x < p.DataW; x++ {
			if emit, _, _, re := p.OnSample(x, y); emit {
				count++
				if re {
					rowEnds++
				}
			}
		}
	}
	if count != p.WindowsPerRow()*p.OutputRows() {
		t.Errorf("emitted %d windows, want %d", count, p.WindowsPerRow()*p.OutputRows())
	}
	if rowEnds != p.OutputRows() {
		t.Errorf("row ends = %d, want %d", rowEnds, p.OutputRows())
	}
}

func TestBufferPlanEmissionTotalsQuick(t *testing.T) {
	prop := func(dw, dh, ww, wh, sx, sy uint8) bool {
		p := BufferPlan{
			DataW: int(dw%24) + 1, DataH: int(dh%24) + 1,
			WinW: int(ww%5) + 1, WinH: int(wh%5) + 1,
			StepX: int(sx%3) + 1, StepY: int(sy%3) + 1,
		}
		var count, rowEnds int
		for y := 0; y < p.DataH; y++ {
			for x := 0; x < p.DataW; x++ {
				if emit, wx, wy, re := p.OnSample(x, y); emit {
					count++
					if re {
						rowEnds++
					}
					if wx < 0 || wy < 0 || wx+p.WinW > p.DataW || wy+p.WinH > p.DataH {
						return false // window out of bounds
					}
				}
			}
		}
		wantRowEnds := p.OutputRows()
		if p.WindowsPerRow() == 0 {
			wantRowEnds = 0
		}
		return count == p.WindowsPerRow()*p.OutputRows() && rowEnds == wantRowEnds
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestBufferPlanMemoryAndLabel(t *testing.T) {
	p := BufferPlan{DataW: 20, DataH: 12, WinW: 5, WinH: 5, StepX: 1, StepY: 1}
	if p.MemoryWords() != 200 {
		t.Errorf("MemoryWords = %d, want 200 (double-buffered 20x5)", p.MemoryWords())
	}
	if p.Label() != "(1x1)[1,1]->(5x5)[1,1] [20x10]" {
		t.Errorf("Label = %q", p.Label())
	}
}

func TestColumnStripes(t *testing.T) {
	// Paper Figure 10: width-12 data, 3x3 windows split into 2 buffers
	// shares the 2 overlap columns.
	s := ColumnStripes(12, 3, 1, 2)
	if len(s) != 2 {
		t.Fatalf("stripes = %d", len(s))
	}
	// 10 windows total; 5 + 5.
	if s[0].OutCount() != 5 || s[1].OutCount() != 5 {
		t.Errorf("out counts = %d, %d", s[0].OutCount(), s[1].OutCount())
	}
	if s[0].InStart != 0 || s[0].InEnd != 7 {
		t.Errorf("stripe0 in = [%d,%d), want [0,7)", s[0].InStart, s[0].InEnd)
	}
	if s[1].InStart != 5 || s[1].InEnd != 12 {
		t.Errorf("stripe1 in = [%d,%d), want [5,12)", s[1].InStart, s[1].InEnd)
	}
	// Overlap = winW - stepX = 2 columns (5, 6).
	if got := s[0].InEnd - s[1].InStart; got != 2 {
		t.Errorf("overlap = %d, want 2", got)
	}
}

func TestColumnStripesUneven(t *testing.T) {
	s := ColumnStripes(10, 3, 1, 3) // 8 windows into 3 stripes: 3,3,2
	if s[0].OutCount() != 3 || s[1].OutCount() != 3 || s[2].OutCount() != 2 {
		t.Errorf("counts = %d,%d,%d", s[0].OutCount(), s[1].OutCount(), s[2].OutCount())
	}
	// Output ranges must tile [0, 8).
	if s[0].OutStart != 0 || s[2].OutEnd != 8 {
		t.Error("stripes do not tile the window range")
	}
}

func TestColumnStripesPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { ColumnStripes(4, 3, 1, 5) }, // 2 windows, 5 stripes
		func() { ColumnStripes(10, 3, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestColumnStripesCoverageQuick(t *testing.T) {
	prop := func(dw, ww, sx, n8 uint8) bool {
		winW := int(ww%4) + 1
		stepX := int(sx%3) + 1
		dataW := winW + int(dw%40)
		total := (dataW-winW)/stepX + 1
		n := int(n8)%4 + 1
		if total < n {
			return true
		}
		stripes := ColumnStripes(dataW, winW, stepX, n)
		// Output ranges tile [0, total); input ranges cover what each
		// stripe's windows need, within bounds.
		next := 0
		for _, s := range stripes {
			if s.OutStart != next || s.OutCount() < 1 {
				return false
			}
			next = s.OutEnd
			if s.InStart != s.OutStart*stepX || s.InEnd != (s.OutEnd-1)*stepX+winW {
				return false
			}
			if s.InStart < 0 || s.InEnd > dataW {
				return false
			}
		}
		return next == total
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestInsetPlan(t *testing.T) {
	p := InsetPlan{InW: 6, InH: 5, L: 1, R: 2, T: 1, B: 1}
	if p.OutW() != 3 || p.OutH() != 3 {
		t.Fatalf("out dims %dx%d", p.OutW(), p.OutH())
	}
	var kept, rowEnds int
	for y := 0; y < p.InH; y++ {
		for x := 0; x < p.InW; x++ {
			if k, re := p.Keep(x, y); k {
				kept++
				if re {
					rowEnds++
				}
			}
		}
	}
	if kept != 9 || rowEnds != 3 {
		t.Errorf("kept=%d rowEnds=%d, want 9, 3", kept, rowEnds)
	}
	if k, _ := p.Keep(0, 2); k {
		t.Error("left column should be trimmed")
	}
	if k, _ := p.Keep(3, 0); k {
		t.Error("top row should be trimmed")
	}
	if p.Label() != "(0,0)[1,2,1,1]" {
		t.Errorf("Label = %q", p.Label())
	}
}

func TestPadPlanDims(t *testing.T) {
	p := PadPlan{InW: 4, InH: 3, L: 1, R: 1, T: 2, B: 0}
	if p.OutW() != 6 || p.OutH() != 5 {
		t.Errorf("out dims %dx%d", p.OutW(), p.OutH())
	}
	if p.Label() != "pad[1,1,2,0]" {
		t.Errorf("Label = %q", p.Label())
	}
}
