package graph

import "fmt"

// Topological returns the nodes in a topological order of the stream
// graph. Edges into feedback kernels are ignored for ordering (they
// are the loop-breakers of §III-D), so graphs whose only cycles pass
// through feedback nodes still order. It returns an error if a
// feedback-free cycle remains.
func (g *Graph) Topological() ([]*Node, error) {
	indeg := make(map[*Node]int, len(g.nodes))
	for _, n := range g.nodes {
		indeg[n] = 0
	}
	for _, e := range g.edges {
		if e.To.node.Kind == KindFeedback {
			continue
		}
		indeg[e.To.node]++
	}

	// Deterministic Kahn's algorithm: scan in insertion order.
	var order []*Node
	ready := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		for _, e := range g.OutEdges(n) {
			next := e.To.node
			if next.Kind == KindFeedback {
				continue
			}
			indeg[next]--
			if indeg[next] == 0 {
				ready = append(ready, next)
			}
		}
	}
	if len(order) != len(g.nodes) {
		for _, n := range g.nodes {
			if indeg[n] > 0 {
				return nil, fmt.Errorf("graph: cycle without feedback kernel involving %q", n.Name())
			}
		}
	}
	return order, nil
}

// Upstream returns the set of nodes from which n is reachable
// (n excluded), following stream edges backwards.
func (g *Graph) Upstream(n *Node) map[*Node]bool {
	seen := make(map[*Node]bool)
	var walk func(m *Node)
	walk = func(m *Node) {
		for _, e := range g.InEdges(m) {
			p := e.From.node
			if !seen[p] {
				seen[p] = true
				walk(p)
			}
		}
	}
	walk(n)
	return seen
}
