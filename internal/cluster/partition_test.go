package cluster

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"blockpar/internal/apps"
	"blockpar/internal/frame"
	"blockpar/internal/machine"
	"blockpar/internal/runtime"
	"blockpar/internal/serve"
)

// partitionedFleet starts n empty-registry workers and a dispatcher
// that splits every session n ways.
func partitionedFleet(t *testing.T, n int) (*Dispatcher, []*Worker, func()) {
	t.Helper()
	return partitionedFleetN(t, n, n, fastOpts())
}

// partitionedFleetN starts `workers` empty-registry workers and a
// dispatcher that splits every session `parts` ways — a fleet larger
// than the split leaves spare workers for recovery to land on.
func partitionedFleetN(t *testing.T, workers, parts int, opts DispatcherOptions) (*Dispatcher, []*Worker, func()) {
	t.Helper()
	opts.Partitions = parts
	d, ws, stop, err := LoopbackFleet(workers, opts, func(i int) *Worker {
		return NewWorker(serve.NewRegistry(machine.Embedded()), WorkerOptions{Name: fmt.Sprintf("w%d", i)})
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, ws, stop
}

// partitionWorker maps one partition half to the in-process Worker
// hosting it, via the name the worker reported in its Welcome.
func partitionWorker(t *testing.T, workers []*Worker, h *partitionHalf) *Worker {
	t.Helper()
	h.w.mu.Lock()
	name := h.w.name
	h.w.mu.Unlock()
	for _, w := range workers {
		if w.Name() == name {
			return w
		}
	}
	t.Fatalf("no in-process worker named %q hosts partition %d", name, h.idx)
	return nil
}

// TestPartitionedSuiteGoldens is the tentpole acceptance bar: every
// Figure 13 app streamed through a partitioned session — the graph
// split across 2 and then 3 workers, cut edges relayed through the
// dispatcher — produces frames byte-identical to the batch runtime,
// with poisoning and the zero-copy plane on (see poison_test.go).
// Pipelines whose placement collapses run whole; at least one app must
// genuinely partition or the test is vacuous.
func TestPartitionedSuiteGoldens(t *testing.T) {
	for _, workers := range []int{2, 3} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			frontend := suiteRegistry(t)
			d, _, stop := partitionedFleet(t, workers)
			defer stop()

			const frames = 2
			split := 0
			var wg sync.WaitGroup
			errs := make(chan error, len(apps.IDs()))
			for _, id := range apps.IDs() {
				app, err := apps.ByID(id)
				if err != nil {
					t.Fatal(err)
				}
				want := batchFrames(t, app, frames)
				p, _ := frontend.Get(id)
				if plan, err := d.plan(p, workers); err != nil {
					t.Fatalf("plan %s: %v", id, err)
				} else if len(plan.Partitions) >= 2 {
					split++
				}
				wg.Add(1)
				go func(id string) {
					defer wg.Done()
					if err := streamCluster(d, p, frames, want); err != nil {
						errs <- fmt.Errorf("pipeline %s: %w", id, err)
					}
				}(id)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			if split == 0 {
				t.Error("every placement collapsed to one partition; the cut-edge path went unexercised")
			}
		})
	}
}

// TestPartitionedExplicitInputs routes client-supplied windows to the
// partition owning each input node and checks the stream against the
// batch golden, plus the local validation error vocabulary.
func TestPartitionedExplicitInputs(t *testing.T) {
	frontend := suiteRegistry(t, "5")
	p, _ := frontend.Get("5")
	d, _, stop := partitionedFleet(t, 2)
	defer stop()

	app, err := apps.ByID("5")
	if err != nil {
		t.Fatal(err)
	}
	in := p.Graph().Inputs()[0]
	gen := app.Sources[in.Name()]
	if gen == nil {
		gen = frame.Gradient
	}
	want := batchFrames(t, app, 2)

	h, err := openN(d, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for f := int64(0); f < 2; f++ {
		win := gen(f, in.FrameSize.W, in.FrameSize.H)
		if _, err := h.TryFeed(map[string]frame.Window{in.Name(): win}); err != nil {
			t.Fatalf("feed %d: %v", f, err)
		}
		res, err := h.Collect(30 * time.Second)
		if err != nil {
			t.Fatalf("collect %d: %v", f, err)
		}
		for name, perFrame := range want {
			for i, w := range perFrame[f] {
				if !res.Outputs[name][i].Equal(w) {
					t.Fatalf("frame %d output %q window %d differs", f, name, i)
				}
			}
		}
		for _, ws := range res.Outputs {
			for _, w := range ws {
				w.Release()
			}
		}
	}
	if _, err := h.TryFeed(map[string]frame.Window{"nope": frame.NewWindow(1, 1)}); !errors.Is(err, runtime.ErrBadFrame) {
		t.Errorf("unknown input: got %v, want ErrBadFrame", err)
	}
}

// TestPartitionedBackpressure checks the global feed window: with one
// frame in flight and maxInFlight=1, the next feed sheds ErrQueueFull
// until the merged result is collected.
func TestPartitionedBackpressure(t *testing.T) {
	frontend := suiteRegistry(t, "5")
	p, _ := frontend.Get("5")
	d, _, stop := partitionedFleet(t, 2)
	defer stop()

	h, err := openN(d, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.TryFeed(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.TryFeed(nil); !errors.Is(err, runtime.ErrQueueFull) {
		t.Fatalf("feed past maxInFlight=1: got %v, want ErrQueueFull", err)
	}
	res, err := h.Collect(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, ws := range res.Outputs {
		for _, w := range ws {
			w.Release()
		}
	}
	if _, err := h.TryFeed(nil); err != nil {
		t.Fatalf("feed after collect: %v", err)
	}
	if res, err := h.Collect(30 * time.Second); err != nil {
		t.Fatal(err)
	} else {
		for _, ws := range res.Outputs {
			for _, w := range ws {
				w.Release()
			}
		}
	}
}

// TestPartitionedSessionStats checks the /metrics sessions table: one
// deduplicated row per open partitioned session listing every hosting
// worker, the partition count, and zero replay bytes (nothing has been
// fed yet, so the failover log is empty).
func TestPartitionedSessionStats(t *testing.T) {
	frontend := suiteRegistry(t, "5")
	p, _ := frontend.Get("5")
	d, _, stop := partitionedFleet(t, 2)
	defer stop()

	h, err := openN(d, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	ps, ok := h.(*partitionedSession)
	if !ok {
		t.Fatalf("session is %T; placement did not split pipeline 5", h)
	}
	rows := d.BackendStats().(map[string]any)["sessions"].([]SessionStats)
	if len(rows) != 1 {
		t.Fatalf("got %d session rows, want 1 (deduplicated): %+v", len(rows), rows)
	}
	r := rows[0]
	if r.Pipeline != "5" || r.Partitions != len(ps.halves) || r.ReplayBytes != 0 {
		t.Errorf("session row %+v, want pipeline 5 with %d partitions and no replay bytes", r, len(ps.halves))
	}
	if len(r.Workers) != len(ps.halves) {
		t.Errorf("session row lists workers %v, want %d distinct", r.Workers, len(ps.halves))
	}
	seen := make(map[string]bool)
	for _, addr := range r.Workers {
		if seen[addr] {
			t.Errorf("worker %s hosts two partitions of one session", addr)
		}
		seen[addr] = true
	}
}

// TestPartitionedInsufficientWorkers: a 2-way split over a fleet with
// one placeable worker degrades to a whole session on that worker
// instead of co-locating partitions, refusing service, or hanging.
func TestPartitionedInsufficientWorkers(t *testing.T) {
	frontend := suiteRegistry(t, "5")
	p, _ := frontend.Get("5")
	app, err := apps.ByID("5")
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOpts()
	opts.Partitions = 2
	worker := NewWorker(suiteRegistry(t, "5"), WorkerOptions{})
	d, stop, err := Loopback(worker, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	h, err := openN(d, p, 2)
	if err != nil {
		t.Fatalf("2-way split on 1 worker: got %v, want whole-session fallback", err)
	}
	defer h.Close()
	if _, ok := h.(*partitionedSession); ok {
		t.Fatal("2-way split on 1 worker placed a partitioned session, want whole")
	}
	const frames = 2
	if err := streamSession(h, frames, batchFrames(t, app, frames)); err != nil {
		t.Fatalf("degraded whole session: %v", err)
	}
}

// TestPartitionedChaosKill is the recovery acceptance bar: killing the
// worker under any single partition mid-stream is invisible to the
// client. The dead partition is re-planned onto a survivor, reopened
// with its resume watermarks, and replayed from the dispatcher's log;
// every frame collected after the kill stays byte-identical to the
// batch golden, no Collect returns an error, Close is clean, and the
// arena drains to baseline. Both re-plan shapes run: onto a spare
// worker (3-worker fleet, 2-way split) and co-located onto the lone
// survivor (2-worker fleet).
func TestPartitionedChaosKill(t *testing.T) {
	app, err := apps.ByID("5")
	if err != nil {
		t.Fatal(err)
	}
	const frames = 6
	want := batchFrames(t, app, frames)
	for _, fleet := range []struct {
		name    string
		workers int
	}{
		{"spare", 3},
		{"colocate", 2},
	} {
		for victim := 0; victim < 2; victim++ {
			t.Run(fmt.Sprintf("%s/victim=%d", fleet.name, victim), func(t *testing.T) {
				frontend := suiteRegistry(t, "5")
				p, _ := frontend.Get("5")
				d, workers, stop := partitionedFleetN(t, fleet.workers, 2, fastOpts())
				defer stop()

				base := frame.Stats().Live
				h, err := openN(d, p, 4)
				if err != nil {
					t.Fatal(err)
				}
				ps, ok := h.(*partitionedSession)
				if !ok {
					t.Fatalf("session is %T; placement did not split pipeline 5", h)
				}
				ps.mu.Lock()
				halves := append([]*partitionHalf(nil), ps.halves...)
				ps.mu.Unlock()
				if len(halves) != 2 {
					t.Fatalf("placement produced %d partitions, want 2", len(halves))
				}
				victimWorker := partitionWorker(t, workers, halves[victim])

				// Stream a couple of frames to prove health, then kill with
				// a frame in flight.
				for f := 0; f < 2; f++ {
					feedRetry(t, h, nil)
					collectCompare(t, h, int64(f), want)
				}
				feedRetry(t, h, nil)
				victimWorker.Close()

				// The in-flight frame and everything after it must arrive
				// byte-identical, with no client-visible error.
				collectCompare(t, h, 2, want)
				for f := 3; f < frames; f++ {
					feedRetry(t, h, nil)
					collectCompare(t, h, int64(f), want)
				}
				waitCondition(t, "failover counter to tick", func() bool {
					return dispatcherCounter(d, "partitions_failed_over") >= 1
				})
				if err := h.Close(); err != nil {
					t.Fatalf("close after recovery: %v", err)
				}
				waitCondition(t, "arena references to return to baseline", func() bool {
					return frame.Stats().Live <= base
				})
			})
		}
	}
}

// TestPartitionedReplayBudgetExceeded pins the degraded mode: a
// partitioned session past its ReplayBudget keeps streaming, but a
// partition kill then ends it with exactly one typed
// serve.ErrSessionLost naming the budget — never a hang — and every
// arena reference (including the released replay log's) returns to
// baseline.
func TestPartitionedReplayBudgetExceeded(t *testing.T) {
	frontend := suiteRegistry(t, "5")
	p, _ := frontend.Get("5")
	opts := fastOpts()
	opts.ReplayBudget = 1 // first logged window overflows
	d, workers, stop := partitionedFleetN(t, 2, 2, opts)
	defer stop()

	base := frame.Stats().Live
	h, err := openN(d, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	ps, ok := h.(*partitionedSession)
	if !ok {
		t.Fatalf("session is %T; placement did not split pipeline 5", h)
	}
	app, err := apps.ByID("5")
	if err != nil {
		t.Fatal(err)
	}
	want := batchFrames(t, app, 2)
	// Live streaming survives the budget overflow...
	for f := 0; f < 2; f++ {
		feedRetry(t, h, nil)
		collectCompare(t, h, int64(f), want)
	}
	ps.mu.Lock()
	logFull, logBytes := ps.logFull, ps.logBytes
	halves := append([]*partitionHalf(nil), ps.halves...)
	ps.mu.Unlock()
	if !logFull {
		t.Fatal("streamed past a 1-byte ReplayBudget without tripping logFull")
	}
	if logBytes != 0 {
		t.Fatalf("tripped log retains %d bytes, want 0 (released at overflow)", logBytes)
	}
	// ...but a partition kill is now unrecoverable: one typed error.
	feedRetry(t, h, nil)
	partitionWorker(t, workers, halves[0]).Close()

	deadline := time.Now().Add(20 * time.Second)
	var cerr error
	for {
		var res *runtime.StreamResult
		res, cerr = h.Collect(20 * time.Second)
		if res != nil {
			for _, ws := range res.Outputs {
				for _, w := range ws {
					w.Release()
				}
			}
			continue
		}
		if cerr != nil && !strings.Contains(cerr.Error(), "timed out") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("collect after worker kill hung")
		}
	}
	if !errors.Is(cerr, serve.ErrSessionLost) {
		t.Errorf("collect after kill: got %v, want serve.ErrSessionLost", cerr)
	}
	if !strings.Contains(cerr.Error(), "replay budget") {
		t.Errorf("error %q does not name the replay budget", cerr)
	}
	if _, err := h.TryFeed(nil); err == nil || errors.Is(err, runtime.ErrQueueFull) {
		t.Errorf("feed on failed session: got %v, want terminal error", err)
	}
	h.Close()
	waitCondition(t, "arena references to return to baseline", func() bool {
		return frame.Stats().Live <= base
	})
}

// TestPartitionedDrainMigration live-migrates one partition off a
// draining worker mid-stream: DrainWorker moves it to the spare with
// zero client-visible errors, every frame stays byte-identical, the
// sessions_migrated counter ticks, and the drained worker ends up
// empty so its process can exit.
func TestPartitionedDrainMigration(t *testing.T) {
	app, err := apps.ByID("5")
	if err != nil {
		t.Fatal(err)
	}
	const frames = 6
	want := batchFrames(t, app, frames)
	frontend := suiteRegistry(t, "5")
	p, _ := frontend.Get("5")
	d, _, stop := partitionedFleetN(t, 3, 2, fastOpts())
	defer stop()

	base := frame.Stats().Live
	h, err := openN(d, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	ps, ok := h.(*partitionedSession)
	if !ok {
		t.Fatalf("session is %T; placement did not split pipeline 5", h)
	}
	ps.mu.Lock()
	halves := append([]*partitionHalf(nil), ps.halves...)
	ps.mu.Unlock()
	victim := halves[0].w

	for f := 0; f < 2; f++ {
		feedRetry(t, h, nil)
		collectCompare(t, h, int64(f), want)
	}
	feedRetry(t, h, nil)
	if err := d.DrainWorker(victim.member); err != nil {
		t.Fatalf("drain %s: %v", victim.member, err)
	}
	collectCompare(t, h, 2, want)
	for f := 3; f < frames; f++ {
		feedRetry(t, h, nil)
		collectCompare(t, h, int64(f), want)
	}
	waitCondition(t, "migration counter to tick", func() bool {
		return dispatcherCounter(d, "sessions_migrated") >= 1
	})
	if n := victim.sessionCount(); n != 0 {
		t.Errorf("drained worker still hosts %d sessions", n)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("close after migration: %v", err)
	}
	waitCondition(t, "arena references to return to baseline", func() bool {
		return frame.Stats().Live <= base
	})
	if err := d.DrainWorker("no-such-worker"); err == nil {
		t.Error("draining an unknown worker reported success")
	}
}

// TestPartitionedRollingDrainColocated drains a worker hosting BOTH
// partitions of one session — the co-located shape a shrunken fleet
// leaves behind after an earlier failover. Recoveries are serialized
// per session, so the drain must roll: the first migration's
// completion kicks the second half off the draining worker instead of
// leaving it for the worker's drain deadline to force-abort. The
// client stays byte-identical throughout and the drained worker ends
// up hosting nothing, so its process's Shutdown completes without
// abandoning work.
func TestPartitionedRollingDrainColocated(t *testing.T) {
	app, err := apps.ByID("5")
	if err != nil {
		t.Fatal(err)
	}
	const frames = 8
	want := batchFrames(t, app, frames)
	frontend := suiteRegistry(t, "5")
	p, _ := frontend.Get("5")
	d, workers, stop := partitionedFleetN(t, 2, 2, fastOpts())
	defer stop()

	base := frame.Stats().Live
	h, err := openN(d, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	ps, ok := h.(*partitionedSession)
	if !ok {
		t.Fatalf("session is %T; placement did not split pipeline 5", h)
	}
	ps.mu.Lock()
	halves := append([]*partitionHalf(nil), ps.halves...)
	ps.mu.Unlock()

	for f := 0; f < 2; f++ {
		feedRetry(t, h, nil)
		collectCompare(t, h, int64(f), want)
	}
	// Kill one half's worker: the lone survivor co-locates both
	// partitions.
	partitionWorker(t, workers, halves[1]).Close()
	for f := 2; f < 4; f++ {
		feedRetry(t, h, nil)
		collectCompare(t, h, int64(f), want)
	}
	waitCondition(t, "failover counter to tick", func() bool {
		return dispatcherCounter(d, "partitions_failed_over") >= 1
	})
	ps.mu.Lock()
	host := ps.halves[0].w
	colocated := ps.halves[1].w == host
	hostHalf := ps.halves[0]
	ps.mu.Unlock()
	if !colocated {
		t.Fatal("partitions did not co-locate on the lone survivor")
	}
	hostWorker := partitionWorker(t, workers, hostHalf)

	// Bring a fresh worker into the fleet, then drain the co-located
	// host mid-stream: both partitions must roll onto the newcomer.
	w2 := NewWorker(serve.NewRegistry(machine.Embedded()), WorkerOptions{Name: "w2"})
	defer w2.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go w2.Serve(ln)
	d.AddWorker(ln.Addr().String(), ln.Addr().String(), 0)
	waitCondition(t, "newcomer to become placeable", func() bool {
		for _, w := range d.snapshot() {
			if w.addr == ln.Addr().String() && w.placeable() {
				return true
			}
		}
		return false
	})

	feedRetry(t, h, nil)
	if err := d.DrainWorker(host.member); err != nil {
		t.Fatalf("drain %s: %v", host.member, err)
	}
	collectCompare(t, h, 4, want)
	for f := 5; f < frames; f++ {
		feedRetry(t, h, nil)
		collectCompare(t, h, int64(f), want)
	}
	waitCondition(t, "both partitions to migrate", func() bool {
		return dispatcherCounter(d, "sessions_migrated") >= 2
	})
	if n := host.sessionCount(); n != 0 {
		t.Errorf("drained worker ref still tracks %d sessions", n)
	}
	waitCondition(t, "drained worker process to empty", func() bool {
		return hostWorker.openSessions() == 0
	})
	if err := h.Close(); err != nil {
		t.Fatalf("close after rolling drain: %v", err)
	}
	waitCondition(t, "arena references to return to baseline", func() bool {
		return frame.Stats().Live <= base
	})
}

// TestPartitionedClose checks a clean close drains every partition:
// all fed frames complete, EOS crosses the cut edges, and Close
// returns nil with the arena back at baseline.
func TestPartitionedClose(t *testing.T) {
	frontend := suiteRegistry(t, "5")
	p, _ := frontend.Get("5")
	d, _, stop := partitionedFleet(t, 2)
	defer stop()

	base := frame.Stats().Live
	h, err := openN(d, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 3; f++ {
		if _, err := h.TryFeed(nil); err != nil {
			t.Fatalf("feed %d: %v", f, err)
		}
	}
	for f := int64(0); f < 3; f++ {
		res, err := h.Collect(30 * time.Second)
		if err != nil {
			t.Fatalf("collect %d: %v", f, err)
		}
		if res.Seq != f {
			t.Fatalf("collected frame %d, want %d", res.Seq, f)
		}
		for _, ws := range res.Outputs {
			for _, w := range ws {
				w.Release()
			}
		}
	}
	if err := h.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	waitCondition(t, "arena references to return to baseline", func() bool {
		return frame.Stats().Live <= base
	})
}
