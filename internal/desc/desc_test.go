package desc

import (
	"strings"
	"testing"

	"blockpar/internal/apps"
	"blockpar/internal/core"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/runtime"
)

const edgesJSON = `{
  "name": "edges",
  "inputs": [
    {"name": "Input", "frame": [20, 16], "chunk": [1, 1], "rate": "400000/320"},
    {"name": "Coeff", "frame": [3, 3], "chunk": [3, 3], "rate": "400000/320"}
  ],
  "outputs": [{"name": "Output", "chunk": [1, 1]}],
  "kernels": [{"name": "3x3 Conv", "type": "convolution", "params": "3"}],
  "edges": [
    {"from": "Input.out", "to": "3x3 Conv.in"},
    {"from": "Coeff.out", "to": "3x3 Conv.coeff"},
    {"from": "3x3 Conv.out", "to": "Output.in"}
  ]
}`

func TestParseBuildsValidGraph(t *testing.T) {
	g, err := Parse([]byte(edgesJSON))
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "edges" || len(g.Nodes()) != 4 || len(g.Edges()) != 3 {
		t.Fatalf("graph shape wrong: %d nodes, %d edges", len(g.Nodes()), len(g.Edges()))
	}
	conv := g.Node("3x3 Conv")
	if conv == nil || conv.Input("coeff") == nil || !conv.Input("coeff").Replicated {
		t.Fatal("convolution not instantiated properly")
	}
	in := g.Node("Input")
	if !in.Rate.Equal(geom.F(400000, 320)) {
		t.Errorf("rate = %v", in.Rate)
	}
}

func TestParsedGraphCompilesAndRuns(t *testing.T) {
	g, err := Parse([]byte(edgesJSON))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Compile(g, core.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := runtime.Run(g, runtime.Options{Frames: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripImagePipeline(t *testing.T) {
	app := apps.ImagePipeline("roundtrip", apps.ImageCfg{
		W: 24, H: 20, Rate: geom.F(400_000, 480), Bins: 16,
	})
	data, err := Encode(app.Graph)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Parse(data)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, data)
	}
	// Same structure.
	if len(g2.Nodes()) != len(app.Graph.Nodes()) || len(g2.Edges()) != len(app.Graph.Edges()) {
		t.Fatalf("round trip changed shape: %d/%d nodes, %d/%d edges",
			len(g2.Nodes()), len(app.Graph.Nodes()), len(g2.Edges()), len(app.Graph.Edges()))
	}
	if len(g2.Deps()) != 1 {
		t.Fatal("dep edge lost in round trip")
	}
	// Same behavior: compile and run both, expect identical outputs.
	if _, err := core.Compile(g2, core.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	res, err := runtime.Run(g2, runtime.Options{Frames: 1, Sources: app.Sources})
	if err != nil {
		t.Fatal(err)
	}
	want := app.Golden(0)["result"][0]
	got := res.DataWindows("result")
	if len(got) != 1 || !got[0].Equal(want) {
		t.Fatal("round-tripped graph computes a different result")
	}
}

// TestRoundTripConnApps round-trips the generalized-connection
// benchmarks: scatter/gather kernels re-instantiate from their ktype
// params, conn records survive Encode→Parse, and the re-parsed graphs
// compute byte-identical outputs.
func TestRoundTripConnApps(t *testing.T) {
	cases := []*apps.App{
		apps.Channelizer("roundtrip-wc", apps.ChannelizerCfg{W: 240, H: 4, Rate: geom.F(400_000, 960)}),
		apps.MultiCam("roundtrip-mc", apps.MultiCamCfg{W: 20, H: 12, Rate: geom.F(400_000, 240)}),
	}
	for _, app := range cases {
		t.Run(app.Name, func(t *testing.T) {
			data, err := Encode(app.Graph)
			if err != nil {
				t.Fatal(err)
			}
			g2, err := Parse(data)
			if err != nil {
				t.Fatalf("re-parse failed: %v\n%s", err, data)
			}
			if len(g2.Nodes()) != len(app.Graph.Nodes()) || len(g2.Edges()) != len(app.Graph.Edges()) {
				t.Fatalf("round trip changed shape: %d/%d nodes, %d/%d edges",
					len(g2.Nodes()), len(app.Graph.Nodes()), len(g2.Edges()), len(app.Graph.Edges()))
			}
			if len(g2.Conns()) != len(app.Graph.Conns()) {
				t.Fatalf("round trip changed conns: %d, want %d",
					len(g2.Conns()), len(app.Graph.Conns()))
			}
			for i, c := range g2.Conns() {
				want := app.Graph.Conns()[i]
				if c.Name != want.Name || c.Family != want.Family || len(c.To) != len(want.To) {
					t.Fatalf("conn %d = %s %v ways %d, want %s %v ways %d",
						i, c.Name, c.Family, len(c.To), want.Name, want.Family, len(want.To))
				}
			}
			if _, err := core.Compile(g2, core.DefaultConfig()); err != nil {
				t.Fatal(err)
			}
			res, err := runtime.Run(g2, runtime.Options{Frames: 1, Sources: app.Sources})
			if err != nil {
				t.Fatal(err)
			}
			for name, want := range app.Golden(0) {
				got := res.DataWindows(name)
				if len(got) != len(want) {
					t.Fatalf("output %q: %d windows, want %d", name, len(got), len(want))
				}
				for i := range want {
					if !got[i].Equal(want[i]) {
						t.Fatalf("output %q window %d differs after round trip", name, i)
					}
				}
			}
		})
	}
}

func TestEncodeRejectsCompiledGraphs(t *testing.T) {
	app := apps.HistogramApp("enc", apps.HistCfg{W: 8, H: 8, Rate: geom.FInt(10), Bins: 4})
	if _, err := core.Compile(app.Graph, core.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	// HistogramApp needs no buffers, so force a compiler kind check
	// differently: a custom kernel without ktype.
	g := graph.New("custom")
	in := g.AddInput("Input", geom.Sz(4, 1), geom.Sz(1, 1), geom.FInt(1))
	k := graph.NewNode("Custom", graph.KindKernel)
	k.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	k.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	k.RegisterMethod("m", 1, 0)
	k.RegisterMethodInput("m", "in")
	k.RegisterMethodOutput("m", "out")
	g.Add(k)
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", k, "in")
	g.Connect(k, "out", out, "in")
	if _, err := Encode(g); err == nil || !strings.Contains(err.Error(), "ktype") {
		t.Fatalf("custom kernel encoded: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no name":      `{"inputs":[],"outputs":[],"kernels":[],"edges":[]}`,
		"bad rate":     `{"name":"x","inputs":[{"name":"I","frame":[2,2],"chunk":[1,1],"rate":"abc"}],"outputs":[],"kernels":[],"edges":[]}`,
		"bad type":     `{"name":"x","inputs":[],"outputs":[],"kernels":[{"name":"K","type":"warp"}],"edges":[]}`,
		"bad ref":      `{"name":"x","inputs":[],"outputs":[],"kernels":[],"edges":[{"from":"nope","to":"alsonope"}]}`,
		"unknown node": `{"name":"x","inputs":[],"outputs":[],"kernels":[],"edges":[{"from":"a.out","to":"b.in"}]}`,
		"bad params":   `{"name":"x","inputs":[],"outputs":[],"kernels":[{"name":"K","type":"convolution","params":"3,3"}],"edges":[]}`,
		"unknown key":  `{"name":"x","zzz":1,"inputs":[],"outputs":[],"kernels":[],"edges":[]}`,
	}
	for label, js := range cases {
		if _, err := Parse([]byte(js)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}

func TestParseRateForms(t *testing.T) {
	for s, want := range map[string]geom.Frac{
		"30":          geom.FInt(30),
		"1500000/768": geom.F(1500000, 768),
		" 5 / 2 ":     geom.F(5, 2),
	} {
		got, err := ParseRate(s)
		if err != nil {
			t.Errorf("ParseRate(%q): %v", s, err)
			continue
		}
		if !got.Equal(want) {
			t.Errorf("ParseRate(%q) = %v, want %v", s, got, want)
		}
	}
	for _, s := range []string{"", "x", "1/0", "1/x"} {
		if _, err := ParseRate(s); err == nil {
			t.Errorf("ParseRate(%q) accepted", s)
		}
	}
	if FormatRate(geom.F(3, 2)) != "3/2" || FormatRate(geom.FInt(7)) != "7" {
		t.Error("FormatRate wrong")
	}
}

func TestInstantiateAllTypes(t *testing.T) {
	cases := []struct{ ktype, params string }{
		{"convolution", "5"}, {"median", "3"}, {"subtract", ""},
		{"histogram", "16"}, {"merge", "16"}, {"bayer", ""},
		{"gain", "2.5"}, {"downsample", "2"}, {"fir", "7"},
		{"upsample", "3"}, {"magnitude", ""}, {"threshold", "1,0,255"},
		{"motion", "4,8"}, {"accumulator", ""}, {"morphology", "3,0"},
	}
	for _, c := range cases {
		n, err := Instantiate("K", c.ktype, c.params)
		if err != nil {
			t.Errorf("%s: %v", c.ktype, err)
			continue
		}
		if n.Behavior == nil {
			t.Errorf("%s: no behavior", c.ktype)
		}
	}
}

func TestRegisterCustomType(t *testing.T) {
	RegisterType("doubler", func(name, params string) (*graph.Node, error) {
		n := graph.NewNode(name, graph.KindKernel)
		n.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
		n.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
		n.RegisterMethod("run", 2, 0)
		n.RegisterMethodInput("run", "in")
		n.RegisterMethodOutput("run", "out")
		n.Attrs["ktype"] = "doubler"
		return n, nil
	})
	js := `{
	  "name": "custom",
	  "inputs": [{"name": "Input", "frame": [4, 1], "chunk": [1, 1], "rate": "10"}],
	  "outputs": [{"name": "Output", "chunk": [1, 1]}],
	  "kernels": [{"name": "D", "type": "doubler"}],
	  "edges": [
	    {"from": "Input.out", "to": "D.in"},
	    {"from": "D.out", "to": "Output.in"}
	  ]
	}`
	g, err := Parse([]byte(js))
	if err != nil {
		t.Fatal(err)
	}
	if g.Node("D") == nil || g.Node("D").Attrs["ktype"] != "doubler" {
		t.Fatal("custom type not instantiated")
	}
	// Round-trips through Encode thanks to the ktype attribute.
	if _, err := Encode(g); err != nil {
		t.Fatal(err)
	}
}
