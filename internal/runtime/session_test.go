package runtime

import (
	"errors"
	"strings"
	"testing"
	"time"

	"blockpar/internal/apps"
	"blockpar/internal/core"
	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
)

// TestSessionMatchesBatch is the tentpole correctness bar: frames
// streamed one at a time through a session must produce byte-identical
// per-frame outputs to the batch Run of the same compiled application.
func TestSessionMatchesBatch(t *testing.T) {
	const frames = 3
	for _, id := range []string{"1", "2", "5"} {
		id := id
		t.Run(id, func(t *testing.T) {
			batchApp, err := apps.ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			cb, err := core.Compile(batchApp.Graph, core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			batch, err := Run(cb.Graph, Options{Frames: frames, Sources: batchApp.Sources})
			if err != nil {
				t.Fatal(err)
			}

			streamApp, err := apps.ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			cs, err := core.Compile(streamApp.Graph, core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			sess, err := NewSession(cs.Graph, SessionOptions{Sources: streamApp.Sources})
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()

			for f := 0; f < frames; f++ {
				// Feed the main input's window explicitly; coefficient
				// and bin inputs fall back to the session sources.
				var ins map[string]frame.Window
				if gen := streamApp.Sources["Input"]; gen != nil {
					n := cs.Graph.Node("Input")
					ins = map[string]frame.Window{
						"Input": gen(int64(f), n.FrameSize.W, n.FrameSize.H),
					}
				}
				if _, err := sess.Feed(ins); err != nil {
					t.Fatalf("feed frame %d: %v", f, err)
				}
				res, err := sess.Collect(10 * time.Second)
				if err != nil {
					t.Fatalf("collect frame %d: %v", f, err)
				}
				if res.Seq != int64(f) {
					t.Fatalf("frame seq = %d, want %d", res.Seq, f)
				}
				for _, out := range cs.Graph.Outputs() {
					want := batch.FrameSlices(out.Name())[f]
					got := res.Outputs[out.Name()]
					if len(got) != len(want) {
						t.Fatalf("output %q frame %d: %d windows, want %d",
							out.Name(), f, len(got), len(want))
					}
					for i := range want {
						if !got[i].Equal(want[i]) {
							t.Fatalf("output %q frame %d window %d differs from batch",
								out.Name(), f, i)
						}
					}
				}
			}
		})
	}
}

// TestSessionFeedAhead pipelines several frames before collecting any,
// checking results still arrive complete and in order.
func TestSessionFeedAhead(t *testing.T) {
	app, err := apps.ByID("2")
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Compile(app.Graph, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(c.Graph, SessionOptions{Sources: app.Sources, MaxInFlight: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for f := 0; f < 4; f++ {
		if _, err := sess.Feed(nil); err != nil {
			t.Fatalf("feed %d: %v", f, err)
		}
	}
	for f := 0; f < 4; f++ {
		res, err := sess.Collect(10 * time.Second)
		if err != nil {
			t.Fatalf("collect %d: %v", f, err)
		}
		if res.Seq != int64(f) {
			t.Fatalf("collected seq %d, want %d", res.Seq, f)
		}
		want := app.Golden(int64(f))["result"]
		got := res.Outputs["result"]
		if len(got) != len(want) {
			t.Fatalf("frame %d: %d windows, want %d", f, len(got), len(want))
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("frame %d window %d differs from golden", f, i)
			}
		}
	}
}

// gainGraph builds a trivial uncompiled pipeline for session plumbing
// tests.
func gainGraph() *graph.Graph {
	g := graph.New("gain")
	in := g.AddInput("Input", geom.Sz(8, 6), geom.Sz(1, 1), geom.FInt(50))
	k := g.Add(kernel.Gain("Gain", 2))
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", k, "in")
	g.Connect(k, "out", out, "in")
	return g
}

func TestSessionBackpressure(t *testing.T) {
	sess, err := NewSession(gainGraph(), SessionOptions{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.TryFeed(nil); err != nil {
		t.Fatalf("first feed: %v", err)
	}
	// The first frame stays uncollected, so the queue is saturated
	// regardless of how fast the pipeline computes it.
	if _, err := sess.TryFeed(nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second feed err = %v, want ErrQueueFull", err)
	}
	if _, err := sess.Collect(10 * time.Second); err != nil {
		t.Fatalf("collect: %v", err)
	}
	if _, err := sess.TryFeed(nil); err != nil {
		t.Fatalf("feed after collect: %v", err)
	}
}

// TestSessionCloseDrains feeds frames, never collects, and checks Close
// still processes every accepted frame before tearing down.
func TestSessionCloseDrains(t *testing.T) {
	sess, err := NewSession(gainGraph(), SessionOptions{MaxInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 2; f++ {
		if _, err := sess.Feed(nil); err != nil {
			t.Fatalf("feed %d: %v", f, err)
		}
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := sess.Completed(); got != 2 {
		t.Fatalf("completed = %d frames after close, want 2", got)
	}
	if _, err := sess.Feed(nil); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("feed after close err = %v, want ErrSessionClosed", err)
	}
	if _, err := sess.Collect(time.Second); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("collect after close err = %v, want ErrSessionClosed", err)
	}
}

// panicBehavior blows up on its first invocation, standing in for a
// buggy custom kernel.
type panicBehavior struct{}

func (panicBehavior) Clone() graph.Behavior { return panicBehavior{} }
func (panicBehavior) Invoke(method string, ctx graph.ExecContext) error {
	panic("kernel bug")
}

// TestSessionPanicRecovery checks a panicking kernel surfaces as a
// session error instead of crashing the process.
func TestSessionPanicRecovery(t *testing.T) {
	g := graph.New("boom")
	g.AddInput("Input", geom.Sz(4, 2), geom.Sz(1, 1), geom.FInt(50))
	n := graph.NewNode("Boom", graph.KindKernel)
	n.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	n.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	n.RegisterMethod("run", 1, 0)
	n.RegisterMethodInput("run", "in")
	n.RegisterMethodOutput("run", "out")
	n.Behavior = panicBehavior{}
	g.Add(n)
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(g.Node("Input"), "out", n, "in")
	g.Connect(n, "out", out, "in")

	sess, err := NewSession(g, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Feed(nil); err != nil {
		t.Fatalf("feed: %v", err)
	}
	_, err = sess.Collect(10 * time.Second)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("collect err = %v, want kernel panic error", err)
	}
}
