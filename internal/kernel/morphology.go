package kernel

import (
	"cmp"
	"fmt"

	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
)

// MorphOp selects the order statistic a morphology kernel computes.
type MorphOp int

const (
	// Erode takes the window minimum.
	Erode MorphOp = iota
	// Dilate takes the window maximum.
	Dilate
)

func (op MorphOp) String() string {
	if op == Erode {
		return "erode"
	}
	return "dilate"
}

// Morphology builds a k×k grayscale erosion or dilation kernel — the
// other classic windowed non-linear filters beside the median, rounding
// out the image-processing kernel library. The input accepts row
// batches: each window in a span is folded with a dense min/max sweep
// over its typed rows, exact for every element kind.
func Morphology(name string, k int, op MorphOp) *graph.Node {
	if k < 1 || k%2 == 0 {
		panic(fmt.Sprintf("kernel: morphology size %d must be odd and positive", k))
	}
	n := graph.NewNode(name, graph.KindKernel)
	half := int64(k / 2)
	n.CreateInput("in", geom.Sz(k, k), geom.St(1, 1), geom.Off(half, half))
	n.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	n.RegisterMethod("runMorph", int64(methodOverhead+2*k*k), int64(k*k))
	n.RegisterMethodInput("runMorph", "in")
	n.RegisterMethodOutput("runMorph", "out")
	n.Attrs["ktype"] = "morphology"
	n.Attrs["kparams"] = fmt.Sprintf("%d,%d", k, int(op))
	n.Behavior = morphBehavior{op: op}
	return n
}

type morphBehavior struct{ op MorphOp }

func (b morphBehavior) Clone() graph.Behavior { return b }

// AcceptsBatch implements graph.BatchAware: windows arrive in row spans.
func (morphBehavior) AcceptsBatch(input string) bool { return input == "in" }

func (b morphBehavior) Invoke(method string, ctx graph.ExecContext) error {
	if method != "runMorph" {
		return fmt.Errorf("kernel: morphology has no method %q", method)
	}
	in := ctx.Input("in")
	n, sx, bw := 1, 1, in.W
	bc, _ := ctx.(graph.BatchContext)
	if bc != nil {
		if bt := bc.Batch("in"); bt.IsBatch() {
			n, sx, bw = int(bt.N), int(bt.Sx), int(bt.Bw)
		}
	}
	var out frame.Window
	switch in.Kind {
	case frame.U8:
		out = morphSpan[uint8](b.op, in, n, sx, bw)
	case frame.F32:
		out = morphSpan[float32](b.op, in, n, sx, bw)
	default:
		out = morphSpan[float64](b.op, in, n, sx, bw)
	}
	if n > 1 {
		bc.EmitBatch("out", out, graph.Batch{N: int32(n), Sx: 1, Bw: 1})
	} else {
		ctx.Emit("out", out)
	}
	return nil
}

// morphSpan folds each bw×H window in the span (window j starting at
// column j*sx) to its min or max and packs the results densely.
func morphSpan[T cmp.Ordered](op MorphOp, in frame.Window, n, sx, bw int) frame.Window {
	out := frame.AllocKind(in.Kind, n, 1)
	dst := typedRow[T](out, 0)
	for j := 0; j < n; j++ {
		x := j * sx
		best := typedRow[T](in, 0)[x]
		for y := 0; y < in.H; y++ {
			for _, v := range typedRow[T](in, y)[x : x+bw] {
				if (op == Erode && v < best) || (op == Dilate && v > best) {
					best = v
				}
			}
		}
		dst[j] = best
	}
	return out
}
