package transform

import (
	"testing"

	"blockpar/internal/analysis"
	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
	"blockpar/internal/machine"
	"blockpar/internal/runtime"
)

// buildGainChain makes Input -> GainA -> GainB -> Output at a rate that
// would parallelize both kernels many ways on the small machine.
func buildGainChain(rate geom.Frac) (*graph.Graph, *graph.Node, *graph.Node) {
	g := graph.New("chain")
	in := g.AddInput("Input", geom.Sz(16, 8), geom.Sz(1, 1), rate)
	a := g.Add(kernel.Gain("GainA", 2))
	b := g.Add(kernel.Gain("GainB", 3))
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", a, "in")
	g.Connect(a, "out", b, "in")
	g.Connect(b, "out", out, "in")
	return g, a, b
}

// TestDepEdgeFromInputSerializes reproduces the Figure 1(b) use: a
// dependency edge from the application input pins the sink to one
// instance regardless of its load.
func TestDepEdgeFromInputSerializes(t *testing.T) {
	g, _, b := buildGainChain(geom.F(2_000_000, 128))
	g.AddDep(g.Node("Input"), b)
	rep, err := Parallelize(g, Options{Machine: machine.Small(), BufferStriping: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degrees["GainA"] < 2 {
		t.Errorf("GainA degree = %d, want >= 2", rep.Degrees["GainA"])
	}
	if rep.Degrees["GainB"] != 1 {
		t.Errorf("GainB degree = %d, want 1 (dep edge from input)", rep.Degrees["GainB"])
	}
}

// TestDepEdgeBetweenKernelsLimits implements §IV-B's pipeline use: a
// dependency edge between two kernels limits the sink's parallelism to
// the source's degree (here both would naturally exceed it).
func TestDepEdgeBetweenKernelsLimits(t *testing.T) {
	// First find GainA's natural degree without any dep edge.
	g0, _, _ := buildGainChain(geom.F(2_000_000, 128))
	rep0, err := Parallelize(g0, Options{Machine: machine.Small(), BufferStriping: true})
	if err != nil {
		t.Fatal(err)
	}
	natural := rep0.Degrees["GainA"]
	if natural < 2 {
		t.Skipf("rate too low to parallelize (degree %d)", natural)
	}

	// Now bound GainA to 2 via a dep edge from the input... the paper
	// uses dep edges only to LIMIT; to pin GainA at a degree, hang it
	// off a kernel with that degree. Build In -> Limiter(2 needed) ->
	// GainA with dep Limiter -> GainA is the natural shape, but a
	// simpler equivalent: dep from the input to GainA gives 1, and dep
	// from GainA to GainB gives degree(GainB) == degree(GainA).
	g, a, b := buildGainChain(geom.F(2_000_000, 128))
	g.AddDep(a, b)
	rep, err := Parallelize(g, Options{Machine: machine.Small(), BufferStriping: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degrees["GainB"] > rep.Degrees["GainA"] {
		t.Errorf("GainB degree %d exceeds GainA's %d despite dep edge",
			rep.Degrees["GainB"], rep.Degrees["GainA"])
	}
	_ = b
}

// TestDepEdgeLimitedGraphStillCorrect verifies the dep-edge-limited
// parallelization still computes the right answer.
func TestDepEdgeLimitedGraphStillCorrect(t *testing.T) {
	g, a, b := buildGainChain(geom.F(2_000_000, 128))
	g.AddDep(a, b)
	if _, err := Parallelize(g, Options{Machine: machine.Small(), BufferStriping: true}); err != nil {
		t.Fatal(err)
	}
	res, err := runtime.Run(g, runtime.Options{Frames: 2})
	if err != nil {
		t.Fatal(err)
	}
	for f, ws := range res.FrameSlices("Output") {
		want := frame.Gain(frame.Gradient(int64(f), 16, 8), 6)
		if len(ws) != len(want.Pix) {
			t.Fatalf("frame %d: %d samples", f, len(ws))
		}
		for i, w := range ws {
			if w.Value() != want.Pix[i] {
				t.Fatalf("frame %d sample %d = %v, want %v", f, i, w.Value(), want.Pix[i])
			}
		}
	}
	// Final analysis still clean.
	r, err := analysis.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if r.HasProblems() {
		t.Errorf("problems: %v", r.Problems)
	}
}
