// Command bpworker executes streaming sessions on behalf of a bpserve
// frontend: it compiles pipelines into a local registry, listens for
// cluster connections, and runs each placed session on the in-process
// runtime, streaming results back over the wire protocol. Pipelines a
// frontend asks for that are not pre-compiled are compiled on demand
// (suite benchmarks by ID, JSON applications from the shipped
// descriptor). See docs/cluster.md.
//
// With -join, the worker registers itself with one or more frontends'
// registration listeners instead of waiting to be listed on their
// command line: it advertises its data-plane address, executor, PE
// capacity (for admission control), and compiled-pipeline inventory,
// heartbeats to keep its membership lease, announces drains in those
// heartbeats so frontends live-migrate its sessions to survivors, and
// deregisters once empty so placement drops it immediately.
//
// Usage:
//
//	bpworker -addr :9090 -apps all
//	bpworker -addr :9091 -apps none -name gpu-box -executor workers
//	bpworker -addr :9090 -join fe1:7070,fe2:7070 -advertise 10.0.0.7:9090 -pes 8
//
// Pair with: bpserve -cluster host:9090,host:9091
// or, self-registered: bpserve -registry :7070
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	goruntime "runtime"
	"strings"
	"syscall"
	"time"

	"blockpar/internal/apps"
	"blockpar/internal/cluster"
	"blockpar/internal/machine"
	"blockpar/internal/registry"
	"blockpar/internal/runtime"
	"blockpar/internal/serve"
)

func main() {
	addr := flag.String("addr", ":9090", "listen address for frontend connections")
	appIDs := flag.String("apps", "all", "comma-separated benchmark ids to compile at startup ("+strings.Join(apps.IDs(), ", ")+"), or \"all\", or \"none\"")
	var descFiles stringList
	flag.Var(&descFiles, "desc", "JSON application description to compile at startup (repeatable)")
	name := flag.String("name", "", "worker name reported to frontends (default worker-<pid>)")
	executor := flag.String("executor", "goroutines", "session execution engine: goroutines (one per kernel) or workers (fixed pool)")
	workers := flag.Int("workers", 0, "worker-pool size for -executor workers (0 = GOMAXPROCS)")
	join := flag.String("join", "", "comma-separated frontend registration addresses to self-register with (bpserve -registry)")
	advertise := flag.String("advertise", "", "data-plane address advertised to frontends (default derived from -addr; required when -addr has no reachable host)")
	pes := flag.Int("pes", 0, "processing elements advertised for admission control; capacity = PEs x the machine PE clock (0 = NumCPU)")
	var drain time.Duration
	flag.DurationVar(&drain, "drain", 30*time.Second, "graceful-shutdown drain budget: in-flight sessions finish before exit")
	flag.DurationVar(&drain, "drain-timeout", 30*time.Second, "alias for -drain")
	flag.Parse()

	cfg := workerConfig{
		addr: *addr, appIDs: *appIDs, descFiles: descFiles, name: *name,
		executor: runtime.ExecutorKind(*executor), workers: *workers,
		join: *join, advertise: *advertise, pes: *pes, drain: drain,
	}
	// A drain that abandons work exits nonzero so orchestration (and CI)
	// can tell a clean drain from frames thrown away.
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "bpworker:", err)
		os.Exit(1)
	}
}

// workerConfig carries the parsed flags into run.
type workerConfig struct {
	addr      string
	appIDs    string
	descFiles []string
	name      string
	executor  runtime.ExecutorKind
	workers   int
	join      string
	advertise string
	pes       int
	drain     time.Duration
}

func run(cfg workerConfig) error {
	m := machine.Embedded()
	reg := serve.NewRegistry(m)
	switch cfg.appIDs {
	case "none":
	case "all", "":
		if err := reg.AddSuite(); err != nil {
			return err
		}
	default:
		if err := reg.AddSuite(strings.Split(cfg.appIDs, ",")...); err != nil {
			return err
		}
	}
	for _, f := range cfg.descFiles {
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		if _, err := reg.AddJSON(data); err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
	}
	for _, p := range reg.List() {
		fmt.Printf("compiled %-14s %-16s %3d nodes in %v\n", p.ID, p.Name, p.Nodes, p.CompileTime.Round(time.Millisecond))
	}

	w := cluster.NewWorker(reg, cluster.WorkerOptions{
		Name:     cfg.name,
		Executor: cfg.executor,
		Workers:  cfg.workers,
	})
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() { errc <- w.Serve(ln) }()
	fmt.Printf("bpworker %s listening on %s (%d pipelines)\n", w.Name(), cfg.addr, len(reg.List()))

	// Self-registration: dial every frontend's registration listener,
	// advertise identity + capacity + pipeline inventory, heartbeat to
	// keep the lease alive.
	var joiner *registry.Joiner
	if cfg.join != "" {
		advertise, err := advertiseAddr(cfg.advertise, ln.Addr())
		if err != nil {
			return err
		}
		pes := cfg.pes
		if pes <= 0 {
			pes = goruntime.NumCPU()
		}
		capacity := float64(pes) * float64(m.PE.CyclesPerSec)
		joiner, err = registry.Join(registry.JoinConfig{
			Frontends: strings.Split(cfg.join, ","),
			Self: registry.Member{
				Name:         w.Name(),
				Addr:         advertise,
				CyclesPerSec: capacity,
				Executor:     string(cfg.executor),
			},
			Pipelines: func() []string {
				var ids []string
				for _, p := range reg.List() {
					ids = append(ids, p.ID)
				}
				return ids
			},
			Load: func() (uint32, float64) {
				return uint32(w.OpenSessions()), 0
			},
			Logf: func(format string, args ...any) {
				fmt.Printf("bpworker: "+format+"\n", args...)
			},
		})
		if err != nil {
			return err
		}
		fmt.Printf("bpworker %s joining %s (advertising %s, %d PEs, %.3g cycles/s)\n",
			w.Name(), cfg.join, advertise, pes, capacity)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if joiner != nil {
			joiner.Close()
		}
		return err
	case sig := <-sigc:
		fmt.Printf("bpworker: %v: draining sessions...\n", sig)
	}

	// Announce the drain first: the flagged heartbeat makes frontends
	// stop placing here and live-migrate resident sessions to survivors
	// while this worker keeps serving them. Shutdown's Goaway then
	// catches any frontend that missed the heartbeat (or static-list
	// frontends, which have no registration channel) and waits for the
	// last session to leave; only after the worker is empty does Leave
	// drop the membership.
	if joiner != nil {
		joiner.SetDraining()
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	err = w.Shutdown(ctx)
	if joiner != nil {
		joiner.Leave("drained")
	}
	return err
}

// advertiseAddr resolves the data-plane address registered with
// frontends: the -advertise override verbatim, or the listener's
// address when it carries a reachable (non-wildcard) host.
func advertiseAddr(override string, lnAddr net.Addr) (string, error) {
	if override != "" {
		return override, nil
	}
	host, port, err := net.SplitHostPort(lnAddr.String())
	if err != nil {
		return "", fmt.Errorf("cannot derive -advertise from listener %q: %w", lnAddr, err)
	}
	ip := net.ParseIP(host)
	if host == "" || (ip != nil && ip.IsUnspecified()) {
		return "", fmt.Errorf("-join needs -advertise host:port when -addr binds the wildcard address (listening on %q)", lnAddr)
	}
	return net.JoinHostPort(host, port), nil
}

// stringList is a repeatable string flag.
type stringList []string

func (l *stringList) String() string { return strings.Join(*l, ",") }
func (l *stringList) Set(s string) error {
	*l = append(*l, s)
	return nil
}
