package transform

import (
	"fmt"

	"blockpar/internal/analysis"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
)

// AlignPolicy selects how misaligned multi-input kernels are fixed
// (§III-C: "The choice as to whether to pad or trim must be made by the
// programmer as it effects the final result, but the details can be
// handled automatically by the compiler").
type AlignPolicy int

const (
	// Trim inserts inset kernels that discard the excess border of the
	// larger streams (the Figure 3 solution).
	Trim AlignPolicy = iota
	// PadInputs zero-pads the raw input of the kernels with the larger
	// halo so their outputs grow to match.
	PadInputs
)

func (p AlignPolicy) String() string {
	if p == Trim {
		return "trim"
	}
	return "pad"
}

// Align repairs every Misaligned problem under the given policy,
// re-analyzing after each fix until the graph is clean. With Trim it
// must run after InsertBuffers (it interposes on item streams); with
// PadInputs it must run before (it interposes on raw sample streams).
func Align(g *graph.Graph, policy AlignPolicy) error {
	for iter := 0; iter < 32; iter++ {
		r, err := analysis.Analyze(g)
		if err != nil {
			return err
		}
		probs := r.ProblemsOfKind(analysis.Misaligned)
		if len(probs) == 0 {
			return nil
		}
		p := probs[0]
		var fixErr error
		if policy == Trim {
			fixErr = fixByTrimming(g, r, p)
		} else {
			fixErr = fixByPadding(g, r, p)
		}
		if fixErr != nil {
			return fixErr
		}
	}
	return fmt.Errorf("transform: alignment did not converge after 32 passes")
}

// coverage describes one misaligned input's item grid in application
// coordinates.
type coverage struct {
	port  *graph.Port
	info  analysis.PortInfo
	start geom.Offset // aligned inset (info.Inset + port.Offset)
	rect  geom.Rect   // item coverage in aligned item coordinates
}

// gatherCoverages collects the data-trigger inputs of the misaligned
// method with integer aligned insets.
func gatherCoverages(g *graph.Graph, r *analysis.Result, p analysis.Problem) ([]coverage, error) {
	m := p.Node.Method(p.Method)
	if m == nil {
		return nil, fmt.Errorf("transform: method %q missing on %q", p.Method, p.Node.Name())
	}
	var cov []coverage
	for _, t := range m.DataTriggers() {
		port := p.Node.Input(t.Input)
		if port == nil || port.Replicated {
			continue
		}
		info, ok := r.In[port]
		if !ok {
			return nil, fmt.Errorf("transform: no analysis info for %s", port)
		}
		start := info.Inset.Add(port.Offset)
		if !start.X.IsInt() || !start.Y.IsInt() {
			return nil, fmt.Errorf("transform: fractional inset %v at %s cannot be aligned by whole items",
				start, port)
		}
		sx, sy := int(start.X.Int()), int(start.Y.Int())
		cov = append(cov, coverage{
			port:  port,
			info:  info,
			start: start,
			rect:  geom.R(sx, sy, sx+info.Items.W, sy+info.Items.H),
		})
	}
	if len(cov) < 2 {
		return nil, fmt.Errorf("transform: misaligned method %s.%s has fewer than two data inputs",
			p.Node.Name(), p.Method)
	}
	return cov, nil
}

// fixByTrimming inserts Inset kernels so every input covers the
// intersection of all inputs (Figure 8's alignment).
func fixByTrimming(g *graph.Graph, r *analysis.Result, p analysis.Problem) error {
	cov, err := gatherCoverages(g, r, p)
	if err != nil {
		return err
	}
	target := cov[0].rect
	for _, c := range cov[1:] {
		target = target.Intersect(c.rect)
	}
	if target.Empty() {
		return fmt.Errorf("transform: inputs of %s.%s do not overlap", p.Node.Name(), p.Method)
	}
	fixed := false
	for _, c := range cov {
		l := target.X0 - c.rect.X0
		rr := c.rect.X1 - target.X1
		t := target.Y0 - c.rect.Y0
		b := c.rect.Y1 - target.Y1
		if l == 0 && rr == 0 && t == 0 && b == 0 {
			continue
		}
		plan := kernel.InsetPlan{InW: c.info.Items.W, InH: c.info.Items.H, L: l, R: rr, T: t, B: b}
		name := uniqueName(g, fmt.Sprintf("Inset(%s.%s)", c.port.Node().Name(), c.port.Name))
		inset := kernel.Inset(name, plan, c.info.ItemSize)
		g.Add(inset)
		e := g.EdgeTo(c.port)
		from := e.From.Node()
		g.Disconnect(e)
		g.Connect(from, e.From.Name, inset, "in")
		g.Connect(inset, "out", c.port.Node(), c.port.Name)
		fixed = true
	}
	if !fixed {
		return fmt.Errorf("transform: trim pass could not fix %s.%s", p.Node.Name(), p.Method)
	}
	return nil
}

// fixByPadding grows the smaller streams: it walks back to the raw
// sample input of the kernel that produced each too-small stream and
// zero-pads it so the output covers the union of all inputs.
func fixByPadding(g *graph.Graph, r *analysis.Result, p analysis.Problem) error {
	cov, err := gatherCoverages(g, r, p)
	if err != nil {
		return err
	}
	target := cov[0].rect
	for _, c := range cov[1:] {
		target = target.Union(c.rect)
	}
	fixed := false
	for _, c := range cov {
		l := c.rect.X0 - target.X0
		rr := target.X1 - c.rect.X1
		t := c.rect.Y0 - target.Y0
		b := target.Y1 - c.rect.Y1
		if l == 0 && rr == 0 && t == 0 && b == 0 {
			continue
		}
		// Find the producing kernel's windowed raw input edge.
		producer := g.EdgeTo(c.port).From.Node()
		rawEdge, rawInfo, err := windowedRawInput(g, r, producer)
		if err != nil {
			return fmt.Errorf("transform: cannot pad for %s: %w", c.port, err)
		}
		plan := kernel.PadPlan{InW: rawInfo.Region.W, InH: rawInfo.Region.H, L: l, R: rr, T: t, B: b}
		name := uniqueName(g, fmt.Sprintf("Pad(%s)", producer.Name()))
		pad := kernel.Pad(name, plan)
		g.Add(pad)
		from := rawEdge.From.Node()
		toPort := rawEdge.To
		g.Disconnect(rawEdge)
		g.Connect(from, rawEdge.From.Name, pad, "in")
		g.Connect(pad, "out", toPort.Node(), toPort.Name)
		fixed = true
	}
	if !fixed {
		return fmt.Errorf("transform: pad pass could not fix %s.%s", p.Node.Name(), p.Method)
	}
	return nil
}

// windowedRawInput returns the edge feeding the producer's windowed
// data input, which must carry raw 1×1 samples (PadInputs runs before
// buffering).
func windowedRawInput(g *graph.Graph, r *analysis.Result, producer *graph.Node) (*graph.Edge, analysis.PortInfo, error) {
	for _, port := range producer.Inputs() {
		if port.Replicated {
			continue
		}
		if port.Size.W <= 1 && port.Size.H <= 1 {
			continue
		}
		e := g.EdgeTo(port)
		if e == nil {
			continue
		}
		info, ok := r.In[port]
		if !ok {
			continue
		}
		if info.ItemSize != geom.Sz(1, 1) {
			return nil, analysis.PortInfo{}, fmt.Errorf(
				"input %s already buffered; run PadInputs alignment before buffering", port)
		}
		return e, info, nil
	}
	return nil, analysis.PortInfo{}, fmt.Errorf("no windowed raw input on %q", producer.Name())
}
