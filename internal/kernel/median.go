package kernel

import (
	"cmp"
	"fmt"
	"sort"

	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
)

// Median builds a k×k median filter kernel: windowed input "in",
// 1×1 output "out".
//
// The input accepts row batches. For the common 3×3 case each window in
// the span is reduced with a branch-free 19-exchange median-of-9
// sorting network over its typed rows (exact for every element kind —
// the median of integer samples is an integer sample); other sizes fall
// back to a per-window gather-and-sort, still batched to amortize the
// channel traffic.
func Median(name string, k int) *graph.Node {
	if k < 1 || k%2 == 0 {
		panic(fmt.Sprintf("kernel: median size %d must be odd and positive", k))
	}
	n := graph.NewNode(name, graph.KindKernel)
	half := int64(k / 2)
	n.CreateInput("in", geom.Sz(k, k), geom.St(1, 1), geom.Off(half, half))
	n.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	n.RegisterMethod("runMedian", int64(methodOverhead+medianPerElem*k*k), int64(k*k))
	n.RegisterMethodInput("runMedian", "in")
	n.RegisterMethodOutput("runMedian", "out")
	n.Attrs["ktype"] = "median"
	n.Attrs["kparams"] = fmt.Sprintf("%d", k)
	n.Behavior = &medianBehavior{k: k}
	return n
}

type medianBehavior struct {
	k   int
	buf []float64
}

func (b *medianBehavior) Clone() graph.Behavior { return &medianBehavior{k: b.k} }

// AcceptsBatch implements graph.BatchAware: windows arrive in row spans.
func (b *medianBehavior) AcceptsBatch(input string) bool { return input == "in" }

func (b *medianBehavior) Invoke(method string, ctx graph.ExecContext) error {
	if method != "runMedian" {
		return fmt.Errorf("kernel: median has no method %q", method)
	}
	in := ctx.Input("in")
	n, sx := 1, 1
	bc, _ := ctx.(graph.BatchContext)
	if bc != nil {
		if bt := bc.Batch("in"); bt.IsBatch() {
			n, sx = int(bt.N), int(bt.Sx)
		}
	}
	var out frame.Window
	if b.k == 3 {
		switch in.Kind {
		case frame.U8:
			out = medianSpan3(frame.U8, in.RowU8(0), in.RowU8(1), in.RowU8(2), n, sx)
		case frame.F32:
			out = medianSpan3(frame.F32, in.RowF32(0), in.RowF32(1), in.RowF32(2), n, sx)
		default:
			out = medianSpan3(frame.F64, in.Row(0), in.Row(1), in.Row(2), n, sx)
		}
	} else {
		out = b.medianSpanSort(in, n, sx)
	}
	if n > 1 {
		bc.EmitBatch("out", out, graph.Batch{N: int32(n), Sx: 1, Bw: 1})
	} else {
		ctx.Emit("out", out)
	}
	return nil
}

// medianSpanSort reduces each of the n k×k windows in the span by
// gathering its samples and sorting — the generic path for k != 3.
func (b *medianBehavior) medianSpanSort(in frame.Window, n, sx int) frame.Window {
	out := frame.AllocKind(in.Kind, n, 1)
	for j := 0; j < n; j++ {
		b.buf = b.buf[:0]
		for y := 0; y < b.k; y++ {
			for x := 0; x < b.k; x++ {
				b.buf = append(b.buf, in.At(j*sx+x, y))
			}
		}
		sort.Float64s(b.buf)
		out.Set(j, 0, b.buf[len(b.buf)/2])
	}
	return out
}

// medianSpan3 runs the median-of-9 network over each 3×3 window in a
// span of n windows starting sx columns apart, given the span's three
// typed rows, and packs the medians into a dense n×1 window.
func medianSpan3[T cmp.Ordered](k frame.Kind, r0, r1, r2 []T, n, sx int) frame.Window {
	out := frame.AllocKind(k, n, 1)
	var dst []T
	switch k {
	case frame.U8:
		dst = any(out.RowU8(0)).([]T)
	case frame.F32:
		dst = any(out.RowF32(0)).([]T)
	default:
		dst = any(out.Row(0)).([]T)
	}
	if sx == 1 && len(r0) >= n+2 && len(r1) >= n+2 && len(r2) >= n+2 {
		r0, r1, r2 = r0[:n+2], r1[:n+2], r2[:n+2]
		for j := 0; j < n; j++ {
			dst[j] = med9(r0[j], r0[j+1], r0[j+2], r1[j], r1[j+1], r1[j+2], r2[j], r2[j+1], r2[j+2])
		}
	} else {
		for j := 0; j < n; j++ {
			x := j * sx
			dst[j] = med9(r0[x], r0[x+1], r0[x+2], r1[x], r1[x+1], r1[x+2], r2[x], r2[x+1], r2[x+2])
		}
	}
	return out
}

func s2[T cmp.Ordered](a, b T) (T, T) {
	if b < a {
		return b, a
	}
	return a, b
}

// med9 is the classic 19-exchange median-of-9 sorting network
// (Smith 1996): exact, branch-predictable, and allocation-free.
func med9[T cmp.Ordered](p0, p1, p2, p3, p4, p5, p6, p7, p8 T) T {
	p1, p2 = s2(p1, p2)
	p4, p5 = s2(p4, p5)
	p7, p8 = s2(p7, p8)
	p0, p1 = s2(p0, p1)
	p3, p4 = s2(p3, p4)
	p6, p7 = s2(p6, p7)
	p1, p2 = s2(p1, p2)
	p4, p5 = s2(p4, p5)
	p7, p8 = s2(p7, p8)
	p0, p3 = s2(p0, p3)
	p5, p8 = s2(p5, p8)
	p4, p7 = s2(p4, p7)
	p3, p6 = s2(p3, p6)
	p1, p4 = s2(p1, p4)
	p2, p5 = s2(p2, p5)
	p4, p7 = s2(p4, p7)
	p4, p2 = s2(p4, p2)
	p6, p4 = s2(p6, p4)
	p4, p2 = s2(p4, p2)
	return p4
}

// Subtract builds the per-pixel difference kernel of Figure 1: two 1×1
// inputs "in0", "in1" triggering one method, and output out = in0-in1.
func Subtract(name string) *graph.Node {
	n := graph.NewNode(name, graph.KindKernel)
	n.CreateInput("in0", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	n.CreateInput("in1", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	n.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	n.RegisterMethod("subtract", subtractCycles, 1)
	n.RegisterMethodInput("subtract", "in0")
	n.RegisterMethodInput("subtract", "in1")
	n.RegisterMethodOutput("subtract", "out")
	n.Attrs["ktype"] = "subtract"
	n.Behavior = subtractBehavior{}
	return n
}

type subtractBehavior struct{ elemToF64 }

func (subtractBehavior) Clone() graph.Behavior { return subtractBehavior{} }

func (subtractBehavior) Invoke(method string, ctx graph.ExecContext) error {
	if method != "subtract" {
		return fmt.Errorf("kernel: subtract has no method %q", method)
	}
	ctx.Emit("out", frame.PooledScalar(ctx.Input("in0").Value()-ctx.Input("in1").Value()))
	return nil
}

// Gain builds a 1×1 scale-by-constant kernel, the simplest possible
// data-parallel kernel; used by tests and the quickstart example.
func Gain(name string, factor float64) *graph.Node {
	n := graph.NewNode(name, graph.KindKernel)
	n.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	n.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	n.RegisterMethod("runGain", gainCycles, 1)
	n.RegisterMethodInput("runGain", "in")
	n.RegisterMethodOutput("runGain", "out")
	n.Attrs["ktype"] = "gain"
	n.Attrs["kparams"] = fmt.Sprintf("%g", factor)
	n.Behavior = gainBehavior{factor: factor}
	return n
}

type gainBehavior struct {
	elemToF64
	factor float64
}

func (b gainBehavior) Clone() graph.Behavior { return b }

func (b gainBehavior) Invoke(method string, ctx graph.ExecContext) error {
	if method != "runGain" {
		return fmt.Errorf("kernel: gain has no method %q", method)
	}
	ctx.Emit("out", frame.PooledScalar(ctx.Input("in").Value()*b.factor))
	return nil
}

// Downsample builds a k×k decimation kernel keeping the top-left sample
// of each block. Its offset is fractional for even k, exercising the
// paper's fractional-offset parameterization (§II-A footnote 2).
func Downsample(name string, k int) *graph.Node {
	if k < 1 {
		panic("kernel: downsample factor must be positive")
	}
	n := graph.NewNode(name, graph.KindKernel)
	off := geom.OffF(geom.F(int64(k-1), 2), geom.F(int64(k-1), 2))
	n.CreateInput("in", geom.Sz(k, k), geom.St(k, k), off)
	n.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	n.RegisterMethod("runDownsample", gainCycles, int64(k*k))
	n.RegisterMethodInput("runDownsample", "in")
	n.RegisterMethodOutput("runDownsample", "out")
	n.Attrs["ktype"] = "downsample"
	n.Attrs["kparams"] = fmt.Sprintf("%d", k)
	n.Behavior = downsampleBehavior{}
	return n
}

type downsampleBehavior struct{ elemToF64 }

func (downsampleBehavior) Clone() graph.Behavior { return downsampleBehavior{} }

func (downsampleBehavior) Invoke(method string, ctx graph.ExecContext) error {
	if method != "runDownsample" {
		return fmt.Errorf("kernel: downsample has no method %q", method)
	}
	ctx.Emit("out", frame.PooledScalar(ctx.Input("in").At(0, 0)))
	return nil
}
