package runtime

import (
	"fmt"
	"sync"

	"blockpar/internal/graph"
)

// workerEngine is the worker-pool scheduling engine: a fixed set of N
// workers runs ready kernel firings to completion from a shared ready
// queue, decoupling the graph's logical kernel instances from physical
// parallelism (the software analog of the paper's many-kernels-per-PE
// mapping, and the shape SIMD/OpenCL ports of block-parallel programs
// take — see ISSUE references).
//
// Transport is a per-node mailbox (mutex + slice). A pool task never
// blocks mid-firing — a full downstream box must not stall a worker —
// but dedicated producer goroutines (inputs, stream-FSM runners) block
// once a mailbox holds ChannelCap items, mirroring the channel
// engine's backpressure so a fast input cannot materialize a whole
// frame of live windows ahead of its consumers. Invoker kernels are
// pure event-driven state machines: a delivery marks the kernel ready,
// and a worker later drains its mailbox and fires methods until
// quiescent. Stream-FSM runners, inputs, and outputs keep dedicated
// goroutines — they are I/O pumps written in blocking style, not
// bounded firings — and block on their mailbox's condition variable.
type workerEngine struct {
	ex      *executor
	workers int
	cap     int

	boxes map[*graph.Node]*mailbox
	tasks map[*graph.Node]*workerTask

	// readyq carries schedulable kernel tasks; capacity is the task
	// count and the scheduled flag guarantees at most one entry per
	// task, so sends never block.
	readyq chan *workerTask

	// tasksLeft counts unfinished kernel tasks (guarded by taskMu);
	// when it reaches zero the ready queue closes and workers exit.
	taskMu    sync.Mutex
	tasksLeft int
}

// mailbox is one consumer node's inbox: a FIFO over a reused backing
// array (head marks the consumed prefix) plus the producer accounting
// that closes it. cond wakes consumers on data or close; space wakes
// dedicated producers blocked on a full box.
type mailbox struct {
	mu            sync.Mutex
	cond          *sync.Cond
	space         *sync.Cond
	q             []inMsg
	head          int
	producersLeft int
	closed        bool
}

func (b *mailbox) pending() int { return len(b.q) - b.head }

// workerTask is the scheduling state of one Invoker kernel node.
// scheduled and again are guarded by the node's mailbox mutex:
// scheduled means the task is in the ready queue or running; again
// records work that arrived while it was.
type workerTask struct {
	node      *graph.Node
	d         *driver
	box       *mailbox
	scheduled bool
	again     bool
	finished  bool
}

func newWorkerEngine(ex *executor, workers int) *workerEngine {
	eng := &workerEngine{
		ex:      ex,
		workers: workers,
		cap:     ex.opts.ChannelCap,
		boxes:   make(map[*graph.Node]*mailbox),
		tasks:   make(map[*graph.Node]*workerTask),
	}
	for _, n := range ex.g.Nodes() {
		if n.Kind == graph.KindInput {
			continue
		}
		producers := make(map[*graph.Node]bool)
		for _, e := range ex.g.InEdges(n) {
			producers[e.From.Node()] = true
		}
		box := &mailbox{producersLeft: len(producers)}
		box.cond = sync.NewCond(&box.mu)
		box.space = sync.NewCond(&box.mu)
		box.closed = len(producers) == 0
		eng.boxes[n] = box
	}
	return eng
}

// poolScheduled reports whether n runs as a pool task (an Invoker
// kernel) rather than on a dedicated goroutine.
func poolScheduled(n *graph.Node) bool {
	if n.Kind == graph.KindInput || n.Kind == graph.KindOutput {
		return false
	}
	if _, ok := graph.RunnerBehavior(n); ok {
		return false
	}
	_, ok := n.Behavior.(graph.Invoker)
	return ok
}

func (eng *workerEngine) start() chan struct{} {
	ex := eng.ex
	// Wire the kernel tasks first so deliveries from the earliest
	// goroutines find them.
	for _, n := range ex.g.Nodes() {
		if !poolScheduled(n) {
			continue
		}
		inv := n.Behavior.(graph.Invoker)
		t := &workerTask{node: n, d: newDriver(ex, n, inv), box: eng.boxes[n]}
		eng.tasks[n] = t
	}
	eng.tasksLeft = len(eng.tasks)
	eng.readyq = make(chan *workerTask, len(eng.tasks)+1)
	if len(eng.tasks) == 0 {
		close(eng.readyq)
	}

	// Dedicated goroutines: inputs, outputs, stream-FSM runners.
	for _, n := range ex.g.Nodes() {
		if poolScheduled(n) {
			continue
		}
		n := n
		ex.wg.Add(1)
		go func() {
			defer func() {
				if ex.stream {
					if r := recover(); r != nil {
						ex.fail(fmt.Errorf("node %q panicked: %v", n.Name(), r))
					}
				}
				for _, consumer := range ex.downstreamConsumers(n) {
					eng.producerDone(consumer)
				}
				ex.wg.Done()
			}()
			if err := ex.runNode(n); err != nil && err != graph.ErrHalt {
				ex.fail(fmt.Errorf("node %q: %w", n.Name(), err))
			}
		}()
	}
	// Kernel tasks whose mailbox starts closed (no producers — an
	// empty-trigger corner Validate normally rejects) must still get
	// one run to finish and release their own consumers.
	for _, t := range eng.tasks {
		t.box.mu.Lock()
		if t.box.closed && !t.scheduled {
			t.scheduled = true
			eng.readyq <- t
		}
		t.box.mu.Unlock()
	}

	for i := 0; i < eng.workers; i++ {
		ex.wg.Add(1)
		go eng.worker()
	}
	done := make(chan struct{})
	go func() {
		ex.wg.Wait()
		eng.sweep()
		close(done)
	}()
	return done
}

// sweep releases items abandoned in the mailboxes (see
// chanEngine.sweep). Runs after every worker and dedicated goroutine
// has exited, so no deliveries race it.
func (eng *workerEngine) sweep() {
	for _, box := range eng.boxes {
		box.mu.Lock()
		q := box.q[box.head:]
		box.q, box.head = nil, 0
		box.mu.Unlock()
		for _, m := range q {
			if !m.item.IsToken {
				m.item.Win.Release()
			}
		}
	}
}

func (eng *workerEngine) worker() {
	defer eng.ex.wg.Done()
	for {
		select {
		case t, ok := <-eng.readyq:
			if !ok {
				return
			}
			eng.runTask(t)
		case <-eng.ex.stop:
			return
		}
	}
}

// runTask drains the task's mailbox and fires methods until the kernel
// is quiescent, then either reschedules (more work arrived meanwhile),
// parks, or finishes (all producers closed and nothing left to fire).
func (eng *workerEngine) runTask(t *workerTask) {
	ex := eng.ex
	for {
		if ex.stopping() {
			eng.finishTask(t)
			return
		}
		t.box.mu.Lock()
		msgs := t.box.q[t.box.head:]
		t.box.q = nil
		t.box.head = 0
		closed := t.box.closed
		t.again = false
		t.box.space.Broadcast()
		t.box.mu.Unlock()

		err := eng.stepTask(t, msgs)
		if err != nil {
			if err != graph.ErrHalt {
				ex.fail(fmt.Errorf("node %q: %w", t.node.Name(), err))
			}
			eng.finishTask(t)
			return
		}

		t.box.mu.Lock()
		if t.box.q == nil {
			// Nothing arrived while firing: hand the drained batch's
			// storage back so the steady-state drain/park cycle stops
			// allocating.
			for i := range msgs {
				msgs[i] = inMsg{}
			}
			t.box.q = msgs[:0]
		}
		if t.again {
			t.box.mu.Unlock()
			continue
		}
		if closed && len(t.box.q) == 0 {
			t.box.mu.Unlock()
			eng.finishTask(t)
			return
		}
		t.scheduled = false
		t.box.mu.Unlock()
		return
	}
}

// stepTask feeds one drained batch to the driver, converting stream-
// mode kernel panics into run failures like the goroutine engine does.
func (eng *workerEngine) stepTask(t *workerTask, msgs []inMsg) (err error) {
	if eng.ex.stream {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("panicked: %v", r)
			}
		}()
	}
	return t.d.step(msgs)
}

// finishTask retires a kernel task exactly once: downstream consumers
// lose a producer, and when the last task retires the ready queue
// closes so idle workers exit.
func (eng *workerEngine) finishTask(t *workerTask) {
	t.box.mu.Lock()
	if t.finished {
		t.box.mu.Unlock()
		return
	}
	t.finished = true
	t.scheduled = false
	t.box.mu.Unlock()
	t.d.releaseQueues()
	for _, consumer := range eng.ex.downstreamConsumers(t.node) {
		eng.producerDone(consumer)
	}
	eng.taskMu.Lock()
	eng.tasksLeft--
	last := eng.tasksLeft == 0
	eng.taskMu.Unlock()
	if last {
		close(eng.readyq)
	}
}

// schedule marks a task runnable after a mailbox event. Must be called
// with the task's mailbox mutex held.
func (eng *workerEngine) schedule(t *workerTask) {
	if t.finished {
		return
	}
	if t.scheduled {
		t.again = true
		return
	}
	t.scheduled = true
	eng.readyq <- t
}

func (eng *workerEngine) producerDone(consumer *graph.Node) {
	box := eng.boxes[consumer]
	box.mu.Lock()
	box.producersLeft--
	if box.producersLeft == 0 {
		box.closed = true
		box.cond.Broadcast()
		if t := eng.tasks[consumer]; t != nil {
			eng.schedule(t)
		}
	}
	box.mu.Unlock()
}

func (eng *workerEngine) deliver(e *graph.Edge, it graph.Item) {
	if eng.ex.stopping() {
		if !it.IsToken {
			it.Win.Release()
		}
		return
	}
	n := e.To.Node()
	box := eng.boxes[n]
	box.mu.Lock()
	// Only dedicated-goroutine producers honor the bound: a pool task
	// blocking here could stall every worker on a box only a worker
	// can drain.
	if !poolScheduled(e.From.Node()) {
		for box.pending() >= eng.cap && !eng.ex.stopping() {
			box.space.Wait()
		}
		if eng.ex.stopping() {
			box.mu.Unlock()
			if !it.IsToken {
				it.Win.Release()
			}
			return
		}
	}
	box.q = append(box.q, inMsg{input: e.To.Name, item: it})
	if t := eng.tasks[n]; t != nil {
		eng.schedule(t)
	} else {
		box.cond.Signal()
	}
	box.mu.Unlock()
}

// recv blocks on the node's mailbox; only dedicated-goroutine nodes
// (runners, outputs) call it.
func (eng *workerEngine) recv(n *graph.Node) (inMsg, bool) {
	box := eng.boxes[n]
	box.mu.Lock()
	defer box.mu.Unlock()
	for {
		if box.head < len(box.q) {
			m := box.q[box.head]
			box.q[box.head] = inMsg{}
			box.head++
			if box.head == len(box.q) {
				box.q = box.q[:0]
				box.head = 0
			}
			box.space.Signal()
			return m, true
		}
		if box.closed || eng.ex.stopping() {
			return inMsg{}, false
		}
		box.cond.Wait()
	}
}

// stopNotify wakes every mailbox waiter so blocked runners and outputs
// observe the stop.
func (eng *workerEngine) stopNotify() {
	for _, box := range eng.boxes {
		box.mu.Lock()
		box.cond.Broadcast()
		box.space.Broadcast()
		box.mu.Unlock()
	}
}
