package kernel

import (
	"testing"

	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/token"
)

func geomSz11() geom.Size { return geom.Sz(1, 1) }

// mockCtx is a minimal graph.ExecContext for driving behaviors
// directly, without the runtime.
type mockCtx struct {
	inputs map[string]frame.Window
	tokens map[string]token.Token
	emits  map[string][]frame.Window
	toks   map[string][]token.Token
}

func newMockCtx() *mockCtx {
	return &mockCtx{
		inputs: make(map[string]frame.Window),
		tokens: make(map[string]token.Token),
		emits:  make(map[string][]frame.Window),
		toks:   make(map[string][]token.Token),
	}
}

func (c *mockCtx) Input(name string) frame.Window { return c.inputs[name] }
func (c *mockCtx) Token(name string) token.Token  { return c.tokens[name] }
func (c *mockCtx) Emit(out string, w frame.Window) {
	c.emits[out] = append(c.emits[out], w)
}
func (c *mockCtx) EmitToken(out string, t token.Token) {
	c.toks[out] = append(c.toks[out], t)
}

var _ graph.ExecContext = (*mockCtx)(nil)

func invoker(t *testing.T, n *graph.Node) graph.Invoker {
	t.Helper()
	inv, ok := n.Behavior.(graph.Invoker)
	if !ok {
		t.Fatalf("%s behavior is not an Invoker", n.Name())
	}
	return inv
}

func TestConvolutionBehaviorDirect(t *testing.T) {
	n := Convolution("C", 3)
	inv := invoker(t, n)

	// Firing before loadCoeff is a hard error (the runtime's config
	// barrier prevents it; the behavior defends anyway).
	ctx := newMockCtx()
	ctx.inputs["in"] = frame.NewWindow(3, 3)
	if err := inv.Invoke("runConvolve", ctx); err == nil {
		t.Error("convolve before loadCoeff accepted")
	}

	// Load identity coefficients and convolve.
	id := frame.NewWindow(3, 3)
	id.Set(1, 1, 1)
	ctx = newMockCtx()
	ctx.inputs["coeff"] = id
	if err := inv.Invoke("loadCoeff", ctx); err != nil {
		t.Fatal(err)
	}
	ctx = newMockCtx()
	ctx.inputs["in"] = frame.FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	if err := inv.Invoke("runConvolve", ctx); err != nil {
		t.Fatal(err)
	}
	if got := ctx.emits["out"][0].Value(); got != 5 {
		t.Errorf("identity convolve = %v, want 5 (center)", got)
	}
	if err := inv.Invoke("nope", newMockCtx()); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestConvolutionCloneIsolatesCoefficients(t *testing.T) {
	n := Convolution("C", 3)
	a := invoker(t, n)
	b := n.Behavior.Clone().(graph.Invoker)

	ctx := newMockCtx()
	ctx.inputs["coeff"] = frame.Constant(1)(0, 3, 3)
	if err := a.Invoke("loadCoeff", ctx); err != nil {
		t.Fatal(err)
	}
	// The clone must not have inherited a's coefficients.
	ctx = newMockCtx()
	ctx.inputs["in"] = frame.NewWindow(3, 3)
	if err := b.Invoke("runConvolve", ctx); err == nil {
		t.Error("clone shares coefficient state with original")
	}
}

func TestMedianBehaviorDirect(t *testing.T) {
	n := Median("M", 3)
	inv := invoker(t, n)
	ctx := newMockCtx()
	ctx.inputs["in"] = frame.FromRows([][]float64{{9, 1, 8}, {2, 7, 3}, {6, 4, 5}})
	if err := inv.Invoke("runMedian", ctx); err != nil {
		t.Fatal(err)
	}
	if got := ctx.emits["out"][0].Value(); got != 5 {
		t.Errorf("median = %v, want 5", got)
	}
}

func TestHistogramBehaviorResetAndPartials(t *testing.T) {
	n := Histogram("H", 4)
	inv := invoker(t, n)

	// Counting before configuration errors.
	ctx := newMockCtx()
	ctx.inputs["in"] = frame.Scalar(1)
	if err := inv.Invoke("count", ctx); err == nil {
		t.Error("count before configureBins accepted")
	}

	edges := frame.NewWindow(4, 1)
	copy(edges.Pix, []float64{0, 10, 20, 30})
	ctx = newMockCtx()
	ctx.inputs["bins"] = edges
	if err := inv.Invoke("configureBins", ctx); err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{5, 15, 15, 35} {
		ctx = newMockCtx()
		ctx.inputs["in"] = frame.Scalar(v)
		if err := inv.Invoke("count", ctx); err != nil {
			t.Fatal(err)
		}
	}
	ctx = newMockCtx()
	if err := inv.Invoke("finishCount", ctx); err != nil {
		t.Fatal(err)
	}
	got := ctx.emits["out"][0]
	want := []float64{1, 2, 0, 1}
	for i := range want {
		if got.At(i, 0) != want[i] {
			t.Fatalf("bin %d = %v, want %v", i, got.At(i, 0), want[i])
		}
	}
	// finishCount must have reset: a second finish emits zeros.
	ctx = newMockCtx()
	if err := inv.Invoke("finishCount", ctx); err != nil {
		t.Fatal(err)
	}
	for i, v := range ctx.emits["out"][0].Pix {
		if v != 0 {
			t.Fatalf("bin %d not reset: %v", i, v)
		}
	}
}

func TestMergeBehaviorAccumulates(t *testing.T) {
	n := Merge("M", 3)
	inv := invoker(t, n)
	for _, part := range [][]float64{{1, 2, 3}, {4, 5, 6}} {
		w := frame.NewWindow(3, 1)
		copy(w.Pix, part)
		ctx := newMockCtx()
		ctx.inputs["in"] = w
		if err := inv.Invoke("accumulate", ctx); err != nil {
			t.Fatal(err)
		}
	}
	ctx := newMockCtx()
	if err := inv.Invoke("finishMerge", ctx); err != nil {
		t.Fatal(err)
	}
	got := ctx.emits["out"][0]
	for i, want := range []float64{5, 7, 9} {
		if got.At(i, 0) != want {
			t.Fatalf("merged bin %d = %v, want %v", i, got.At(i, 0), want)
		}
	}
	// Merge with no partials emits zeros (not a crash).
	fresh := n.Behavior.Clone().(graph.Invoker)
	ctx = newMockCtx()
	if err := fresh.Invoke("finishMerge", ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.emits["out"][0].At(0, 0) != 0 {
		t.Error("empty merge not zero")
	}
}

func TestBayerBehaviorEmitsThreePlanes(t *testing.T) {
	n := BayerDemosaic("B")
	inv := invoker(t, n)
	ctx := newMockCtx()
	ctx.inputs["in"] = frame.Constant(42)(0, 4, 4)
	if err := inv.Invoke("demosaic", ctx); err != nil {
		t.Fatal(err)
	}
	for _, plane := range []string{"r", "g", "b"} {
		ws := ctx.emits[plane]
		if len(ws) != 1 || ws[0].W != 2 || ws[0].H != 2 {
			t.Fatalf("plane %s shape wrong", plane)
		}
		for _, v := range ws[0].Pix {
			if v != 42 {
				t.Fatalf("flat field broke on %s: %v", plane, v)
			}
		}
	}
}

func TestFIRBehaviorDirect(t *testing.T) {
	n := FIR("F", 3)
	inv := invoker(t, n)
	taps := frame.NewWindow(3, 1)
	copy(taps.Pix, []float64{0.5, 1, 0.25})
	ctx := newMockCtx()
	ctx.inputs["taps"] = taps
	if err := inv.Invoke("loadTaps", ctx); err != nil {
		t.Fatal(err)
	}
	in := frame.NewWindow(3, 1)
	copy(in.Pix, []float64{4, 8, 12})
	ctx = newMockCtx()
	ctx.inputs["in"] = in
	if err := inv.Invoke("runFIR", ctx); err != nil {
		t.Fatal(err)
	}
	// out = in[0]*taps[2] + in[1]*taps[1] + in[2]*taps[0] = 1+8+6 = 15.
	if got := ctx.emits["out"][0].Value(); got != 15 {
		t.Errorf("FIR = %v, want 15", got)
	}
}

func TestMotionBehaviorDeterministicIterations(t *testing.T) {
	n := MotionSearch("MS", 4, 8)
	inv := invoker(t, n)
	run := func() []float64 {
		b := n.Behavior.Clone().(graph.Invoker)
		var iters []float64
		for i := 0; i < 4; i++ {
			ctx := newMockCtx()
			ctx.inputs["in"] = frame.LCG(int64(i), 4, 4)
			if err := b.Invoke("search", ctx); err != nil {
				t.Fatal(err)
			}
			iters = append(iters, ctx.emits["mv"][0].At(1, 0))
		}
		return iters
	}
	a, bb := run(), run()
	for i := range a {
		if a[i] != bb[i] {
			t.Fatal("motion search not deterministic")
		}
	}
	_ = inv
}

func TestDownsampleAndGainAndThreshold(t *testing.T) {
	ds := invoker(t, Downsample("D", 2))
	ctx := newMockCtx()
	ctx.inputs["in"] = frame.FromRows([][]float64{{7, 1}, {2, 3}})
	if err := ds.Invoke("runDownsample", ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.emits["out"][0].Value() != 7 {
		t.Error("downsample keeps wrong sample")
	}

	gb := invoker(t, Gain("G", -0.5))
	ctx = newMockCtx()
	ctx.inputs["in"] = frame.Scalar(8)
	if err := gb.Invoke("runGain", ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.emits["out"][0].Value() != -4 {
		t.Error("gain wrong")
	}

	tb := invoker(t, Threshold("T", 5, 0, 1))
	for v, want := range map[float64]float64{4.9: 0, 5: 1, 9: 1} {
		ctx = newMockCtx()
		ctx.inputs["in"] = frame.Scalar(v)
		if err := tb.Invoke("runThreshold", ctx); err != nil {
			t.Fatal(err)
		}
		if got := ctx.emits["out"][0].Value(); got != want {
			t.Errorf("threshold(%v) = %v, want %v", v, got, want)
		}
	}
}

func TestKernelConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"even conv":    func() { Convolution("x", 4) },
		"even median":  func() { Median("x", 2) },
		"zero hist":    func() { Histogram("x", 0) },
		"zero merge":   func() { Merge("x", 0) },
		"bad motion":   func() { MotionSearch("x", 1, 0) },
		"zero FIR":     func() { FIR("x", 0) },
		"zero up":      func() { Upsample("x", 0) },
		"zero down":    func() { Downsample("x", 0) },
		"empty split":  func() { SplitRR("x", 0, geomSz11()) },
		"empty join":   func() { JoinRR("x", 0, geomSz11()) },
		"empty repl":   func() { Replicate("x", 0, geomSz11()) },
		"bad buffer":   func() { Buffer("x", BufferPlan{}) },
		"full inset":   func() { Inset("x", InsetPlan{InW: 2, InH: 2, L: 1, R: 1}, geomSz11()) },
		"bad colsplit": func() { SplitColumns("x", nil, 4) },
		"bad coljoin":  func() { JoinColumns("x", nil, geomSz11()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
