package runtime

import (
	"fmt"
	"testing"

	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/token"
)

// markerBehavior emits its input and, every markEvery samples, a custom
// "scene-cut" token after it (paper §II-C: kernels may define their own
// control tokens with a declared maximum rate).
type markerBehavior struct {
	markEvery int
	count     int
}

func (b *markerBehavior) Clone() graph.Behavior { return &markerBehavior{markEvery: b.markEvery} }

func (b *markerBehavior) Invoke(method string, ctx graph.ExecContext) error {
	if method != "mark" {
		return fmt.Errorf("marker has no method %q", method)
	}
	ctx.Emit("out", ctx.Input("in"))
	b.count++
	if b.count%b.markEvery == 0 {
		ctx.EmitToken("out", token.NewCustom("scene-cut", int64(b.count/b.markEvery-1)))
	}
	return nil
}

// cutCounterBehavior counts data and scene-cut tokens; on end-of-frame
// it emits (data, cuts).
type cutCounterBehavior struct {
	data, cuts float64
}

func (b *cutCounterBehavior) Clone() graph.Behavior { return &cutCounterBehavior{} }

func (b *cutCounterBehavior) Invoke(method string, ctx graph.ExecContext) error {
	switch method {
	case "onData":
		b.data++
	case "onCut":
		b.cuts++
	case "finish":
		out := frame.NewWindow(2, 1)
		out.Set(0, 0, b.data)
		out.Set(1, 0, b.cuts)
		b.data, b.cuts = 0, 0
		ctx.Emit("out", out)
	default:
		return fmt.Errorf("cut counter has no method %q", method)
	}
	return nil
}

func buildMarker(markEvery int) *graph.Node {
	n := graph.NewNode("Marker", graph.KindKernel)
	n.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	n.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	n.RegisterMethod("mark", 6, 1)
	n.RegisterMethodInput("mark", "in")
	n.RegisterMethodOutput("mark", "out")
	// Declare the custom token's maximum per-frame rate (§II-C).
	n.TokenRates = map[string]geom.Frac{"scene-cut": geom.FInt(8)}
	n.Behavior = &markerBehavior{markEvery: markEvery}
	return n
}

func buildCutCounter() *graph.Node {
	n := graph.NewNode("CutCounter", graph.KindKernel)
	n.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	n.CreateOutput("out", geom.Sz(2, 1), geom.St(2, 1))
	n.RegisterMethod("onData", 4, 2)
	n.RegisterMethodInput("onData", "in")
	n.RegisterMethod("onCut", 4, 2)
	n.RegisterMethodInputToken("onCut", "in", token.Custom, "scene-cut")
	n.RegisterMethod("finish", 8, 2)
	n.RegisterMethodInputToken("finish", "in", token.EndOfFrame, "")
	n.RegisterMethodOutput("finish", "out")
	n.Behavior = &cutCounterBehavior{}
	return n
}

// TestCustomTokensEndToEnd runs a custom control token through a
// pipeline: the marker injects "scene-cut" tokens in-band; a gain
// kernel in between has no handler and must forward them in order; the
// counter consumes them with a Custom-token method.
func TestCustomTokensEndToEnd(t *testing.T) {
	const W, H, markEvery = 8, 4, 5
	g := graph.New("custom-tokens")
	in := g.AddInput("Input", geom.Sz(W, H), geom.Sz(1, 1), geom.FInt(10))
	marker := g.Add(buildMarker(markEvery))
	mid := g.Add(makeSourceKernel("Mid"))
	counter := g.Add(buildCutCounter())
	out := g.AddOutput("Output", geom.Sz(2, 1))
	g.Connect(in, "out", marker, "in")
	g.Connect(marker, "out", mid, "in")
	g.Connect(mid, "out", counter, "in")
	g.Connect(counter, "out", out, "in")

	res, err := Run(g, Options{Frames: 3})
	if err != nil {
		t.Fatal(err)
	}
	frames := res.FrameSlices("Output")
	if len(frames) != 3 {
		t.Fatalf("frames = %d", len(frames))
	}
	for f, ws := range frames {
		if len(ws) != 1 {
			t.Fatalf("frame %d outputs = %d", f, len(ws))
		}
		data, cuts := ws[0].At(0, 0), ws[0].At(1, 0)
		if data != W*H {
			t.Errorf("frame %d data count = %v, want %d", f, data, W*H)
		}
		// 32 samples per frame, marker counts persist across frames:
		// cuts per frame = floor count in that frame's range.
		if cuts < 6 || cuts > 7 {
			t.Errorf("frame %d cuts = %v, want 6-7 (32 samples / every 5)", f, cuts)
		}
	}
}

// makeSourceKernel is a pass-through kernel with no token handlers, so
// all tokens (EOL, EOF, and custom) forward through it automatically.
func makeSourceKernel(name string) *graph.Node {
	n := graph.NewNode(name, graph.KindKernel)
	n.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	n.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))
	n.RegisterMethod("pass", 2, 0)
	n.RegisterMethodInput("pass", "in")
	n.RegisterMethodOutput("pass", "out")
	n.Behavior = passBehavior{}
	return n
}

type passBehavior struct{}

func (passBehavior) Clone() graph.Behavior { return passBehavior{} }

func (passBehavior) Invoke(method string, ctx graph.ExecContext) error {
	ctx.Emit("out", ctx.Input("in"))
	return nil
}

// TestCustomTokenValidationRequiresRate re-checks §II-C's requirement
// at the graph level from the runtime's perspective: an undeclared
// custom token fails validation before the run starts.
func TestCustomTokenValidationRequiresRate(t *testing.T) {
	g := graph.New("undeclared")
	in := g.AddInput("Input", geom.Sz(4, 1), geom.Sz(1, 1), geom.FInt(10))
	counter := g.Add(buildCutCounter())
	out := g.AddOutput("Output", geom.Sz(2, 1))
	g.Connect(in, "out", counter, "in")
	g.Connect(counter, "out", out, "in")
	// No node declares "scene-cut" here.
	if _, err := Run(g, Options{Frames: 1}); err == nil {
		t.Fatal("undeclared custom token accepted")
	}
}
