package report

import (
	"strings"
	"testing"

	"blockpar/internal/apps"
	"blockpar/internal/machine"
)

// TestRateSweepMonotonic verifies the §VI tradeoff curve: the minimum
// provisioning never shrinks as the hard real-time rate grows, and
// every point keeps real time.
func TestRateSweepMonotonic(t *testing.T) {
	rates := []int64{100_000, apps.SlowRate, 800_000, apps.FastRate}
	points, err := RateSweep(machine.Embedded(), rates, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(rates) {
		t.Fatalf("points = %d", len(points))
	}
	for i, p := range points {
		if !p.RealTimeMet {
			t.Errorf("rate %d missed real time", p.Samples)
		}
		if i > 0 {
			prev := points[i-1]
			if p.PEsGreedy < prev.PEsGreedy || p.PEsOneToOne < prev.PEsOneToOne {
				t.Errorf("provisioning shrank from %d to %d samples/s: %d->%d PEs",
					prev.Samples, p.Samples, prev.PEsGreedy, p.PEsGreedy)
			}
		}
	}
	// The curve must actually grow across the sweep.
	if points[len(points)-1].PEsGreedy <= points[0].PEsGreedy {
		t.Errorf("PE curve flat: %d..%d", points[0].PEsGreedy, points[len(points)-1].PEsGreedy)
	}
	out := RenderRateSweep(points)
	if !strings.Contains(out, "samples/s") || !strings.Contains(out, "#") {
		t.Errorf("render malformed:\n%s", out)
	}
	t.Logf("\n%s", out)
}
