// Package kernel provides the kernel library of the block-parallel
// system: the programmer-facing computation kernels used by the paper's
// applications (convolution, median, subtract, histogram/merge, Bayer
// demosaic, gain, downsample) and the compiler-inserted kernels
// (buffer, split, join, replicate, inset, pad, feedback).
//
// The stream state machines of the compiler-inserted kernels are
// factored into value-free "plans" so the timing simulator
// (internal/sim) and the functional runtime (internal/runtime) execute
// the same firing rules from one definition.
package kernel

import "fmt"

// BufferPlan is the value-free FSM of a 2-D circular buffer kernel
// (paper §III-B): it converts a scan-order sample stream covering a
// DataW×DataH region into the scan-order stream of WinW×WinH windows
// advanced by (StepX, StepY).
type BufferPlan struct {
	DataW, DataH int
	WinW, WinH   int
	StepX, StepY int
}

// WindowsPerRow returns how many windows each output row contains.
func (p BufferPlan) WindowsPerRow() int {
	if p.WinW > p.DataW || p.StepX < 1 {
		return 0
	}
	return (p.DataW-p.WinW)/p.StepX + 1
}

// OutputRows returns how many window rows a frame produces.
func (p BufferPlan) OutputRows() int {
	if p.WinH > p.DataH || p.StepY < 1 {
		return 0
	}
	return (p.DataH-p.WinH)/p.StepY + 1
}

// OnSample reports what the buffer emits when the sample at scan
// position (x, y) arrives: whether a window completes, the window's
// top-left position (wx, wy), and whether that window is the last of
// its output row (after which the buffer emits an end-of-line token).
func (p BufferPlan) OnSample(x, y int) (emit bool, wx, wy int, rowEnd bool) {
	wx = x - p.WinW + 1
	wy = y - p.WinH + 1
	if wx < 0 || wy < 0 || wx%p.StepX != 0 || wy%p.StepY != 0 {
		return false, 0, 0, false
	}
	n := p.WindowsPerRow()
	if n == 0 || wx/p.StepX >= n || p.OutputRows() == 0 || wy/p.StepY >= p.OutputRows() {
		return false, 0, 0, false
	}
	return true, wx, wy, wx == (n-1)*p.StepX
}

// MemoryWords returns the buffer kernel's storage requirement: the
// paper sizes buffers to double-buffer the larger of input and output,
// which for a windowing buffer is two window-heights of full rows.
func (p BufferPlan) MemoryWords() int64 {
	return 2 * int64(p.DataW) * int64(p.WinH)
}

// Label renders the paper's buffer annotation, e.g.
// "(1x1)[1,1]->(5x5)[1,1] [20x10]".
func (p BufferPlan) Label() string {
	return fmt.Sprintf("(1x1)[1,1]->(%dx%d)[%d,%d] [%dx%d]",
		p.WinW, p.WinH, p.StepX, p.StepY, p.DataW, 2*p.WinH)
}

// Stripe is one column range of a column-split buffer (paper §IV-C,
// Figure 10): the input sample columns [InStart, InEnd) it stores and
// the output window indices [OutStart, OutEnd) it produces per row.
// Neighboring stripes overlap by WinW-StepX input columns, which the
// split kernel replicates to both.
type Stripe struct {
	InStart, InEnd   int
	OutStart, OutEnd int
}

// InWidth returns the stripe's input width in samples.
func (s Stripe) InWidth() int { return s.InEnd - s.InStart }

// OutCount returns windows per row the stripe emits.
func (s Stripe) OutCount() int { return s.OutEnd - s.OutStart }

// ColumnStripes divides the window positions of a width-dataW region
// (window width winW, step stepX) into n contiguous column stripes with
// replicated overlap, as the buffer-splitting transformation requires.
// Stripes are balanced to within one window. It panics if the region
// yields fewer windows than stripes.
func ColumnStripes(dataW, winW, stepX, n int) []Stripe {
	if n < 1 {
		panic("kernel: ColumnStripes with n < 1")
	}
	total := 0
	if winW <= dataW && stepX >= 1 {
		total = (dataW-winW)/stepX + 1
	}
	if total < n {
		panic(fmt.Sprintf("kernel: cannot split %d windows into %d stripes", total, n))
	}
	base, rem := total/n, total%n
	stripes := make([]Stripe, n)
	start := 0
	for i := range stripes {
		count := base
		if i < rem {
			count++
		}
		end := start + count
		stripes[i] = Stripe{
			OutStart: start,
			OutEnd:   end,
			InStart:  start * stepX,
			InEnd:    (end-1)*stepX + winW,
		}
		start = end
	}
	return stripes
}

// InsetPlan is the value-free FSM of an inset (trim) kernel (paper
// §III-C): items arrive as an InW×InH scan-order grid; the plan keeps
// the interior after removing L/R columns and T/B rows.
type InsetPlan struct {
	InW, InH   int
	L, R, T, B int
}

// OutW returns the trimmed width; OutH the trimmed height.
func (p InsetPlan) OutW() int { return p.InW - p.L - p.R }

// OutH returns the trimmed height.
func (p InsetPlan) OutH() int { return p.InH - p.T - p.B }

// Keep reports whether the item at grid position (x, y) survives, and
// whether it is the last kept item of its row.
func (p InsetPlan) Keep(x, y int) (keep, rowEnd bool) {
	if x < p.L || x >= p.InW-p.R || y < p.T || y >= p.InH-p.B {
		return false, false
	}
	return true, x == p.InW-p.R-1
}

// Label renders the paper's inset annotation, e.g. "(0,0)[1,1,1,1]".
func (p InsetPlan) Label() string {
	return fmt.Sprintf("(0,0)[%d,%d,%d,%d]", p.L, p.R, p.T, p.B)
}

// PadPlan is the value-free FSM of a zero-padding kernel (§III-C): the
// stream grows by L/R columns and T/B rows of zeros.
type PadPlan struct {
	InW, InH   int
	L, R, T, B int
}

// OutW returns the padded width.
func (p PadPlan) OutW() int { return p.InW + p.L + p.R }

// OutH returns the padded height.
func (p PadPlan) OutH() int { return p.InH + p.T + p.B }

// Label renders the pad annotation.
func (p PadPlan) Label() string {
	return fmt.Sprintf("pad[%d,%d,%d,%d]", p.L, p.R, p.T, p.B)
}
