package graph

import (
	"fmt"
	"sort"
	"strings"

	"blockpar/internal/conn"
)

// Dot renders the application graph in Graphviz DOT format, using the
// paper's visual conventions: parallelograms for buffers, diamonds for
// split/join, inverted houses for inset/pad, dashed edges for
// replicated inputs, and dotted edges for data dependencies. The
// generalized-connection families get distinct styles: scatter and
// gather kernels are filled trapezia, shared ring buffers are filled
// parallelograms, and the member edges of declared broadcast/share
// groups are colored and labeled with the group name.
func (g *Graph) Dot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	b.WriteString("  rankdir=LR;\n  node [fontsize=10];\n")

	for _, n := range g.nodes {
		shape, style, color := "box", "rounded", ""
		switch n.Kind {
		case KindInput, KindOutput:
			shape, style = "oval", "solid"
		case KindBuffer:
			shape, style = "parallelogram", "solid"
			if n.Attrs["share"] != "" {
				style, color = "filled", "plum"
			}
		case KindSplit, KindJoin:
			shape, style = "diamond", "filled"
			switch n.Attrs["conn"] {
			case "scatter":
				shape, color = "trapezium", "lightblue"
			case "gather":
				shape, color = "invtrapezium", "lightsalmon"
			}
		case KindReplicate:
			shape, style = "diamond", "solid"
		case KindInset, KindPad:
			shape, style = "invhouse", "solid"
		case KindFeedback:
			shape, style = "cds", "solid"
		}
		label := n.Name()
		if extra := n.Attrs["label"]; extra != "" {
			label += "\\n" + extra
		}
		attrs := fmt.Sprintf("shape=%s, style=%q, label=%q", shape, style, label)
		if color != "" {
			attrs += fmt.Sprintf(", fillcolor=%q", color)
		}
		fmt.Fprintf(&b, "  %q [%s];\n", n.Name(), attrs)
	}

	// Declared connection groups color their member edges: blue for
	// broadcast fan-outs, purple for shared-window groups.
	type connMark struct{ color, label string }
	connEdges := make(map[*Port]connMark)
	for _, c := range g.conns {
		color := "blue"
		if c.Family == conn.Share {
			color = "purple"
		}
		for _, to := range c.To {
			connEdges[to] = connMark{color: color, label: c.Family.String() + " " + c.Name}
		}
	}

	for _, e := range g.edges {
		attrs := []string{fmt.Sprintf("label=%q", e.From.Name+"->"+e.To.Name)}
		if e.To.Replicated {
			attrs = append(attrs, "style=dashed")
		}
		if m, ok := connEdges[e.To]; ok {
			attrs = append(attrs,
				fmt.Sprintf("color=%q", m.color),
				fmt.Sprintf("fontcolor=%q", m.color),
				fmt.Sprintf("headlabel=%q", m.label))
		}
		fmt.Fprintf(&b, "  %q -> %q [%s];\n", e.From.node.Name(), e.To.node.Name(), strings.Join(attrs, ", "))
	}
	for _, d := range g.deps {
		fmt.Fprintf(&b, "  %q -> %q [style=dotted, constraint=false];\n", d.From.Name(), d.To.Name())
	}
	b.WriteString("}\n")
	return b.String()
}

// Summary returns a one-line-per-node description of the graph used by
// the CLI tools and tests: node kind, name, and port parameterization.
func (g *Graph) Summary() string {
	var lines []string
	for _, n := range g.nodes {
		var ports []string
		for _, p := range n.Inputs() {
			s := fmt.Sprintf("%s%v%v%v", p.Name, p.Size, p.Step, p.Offset)
			if p.Replicated {
				s += "*"
			}
			ports = append(ports, s)
		}
		for _, p := range n.Outputs() {
			ports = append(ports, fmt.Sprintf("->%s%v%v", p.Name, p.Size, p.Step))
		}
		lines = append(lines, fmt.Sprintf("%-10s %-24s %s", n.Kind, n.Name(), strings.Join(ports, " ")))
	}
	return strings.Join(lines, "\n")
}

// CountByKind tallies nodes per kind, for the Figure 11 comparisons.
func (g *Graph) CountByKind() map[NodeKind]int {
	out := make(map[NodeKind]int)
	for _, n := range g.nodes {
		out[n.Kind]++
	}
	return out
}

// InstancesOf returns the parallel instances that share the given base
// name, sorted by instance index.
func (g *Graph) InstancesOf(base string) []*Node {
	var out []*Node
	for _, n := range g.nodes {
		if n.Base == base {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Instance < out[j].Instance })
	return out
}
