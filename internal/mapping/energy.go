package mapping

import (
	"blockpar/internal/analysis"
	"blockpar/internal/graph"
	"blockpar/internal/machine"
)

// EnergyModel prices the two things the mapping and placement control:
// cycles executed on PEs and words moved between PEs (distance-weighted
// when a placement is given). The paper motivates placement exactly
// this way ("increasing the number of kernels beyond what is required
// ... may allow a more optimal placement, resulting in a lower overall
// energy consumption", §IV-D).
type EnergyModel struct {
	// PJPerCycle is the energy per executed PE cycle.
	PJPerCycle float64
	// PJPerWordHop is the energy per word per Manhattan grid hop; words
	// moved between co-located kernels cost nothing, words between PEs
	// without a placement are charged one hop.
	PJPerWordHop float64
	// PJPerIdleCycle charges leakage for provisioned-but-idle capacity,
	// which is what greedy multiplexing reduces by using fewer PEs.
	PJPerIdleCycle float64
}

// DefaultEnergy returns a generic embedded-SRAM-era model: compute
// cheap, communication ~4x a cycle per hop, idle leakage 10% of active.
func DefaultEnergy() EnergyModel {
	return EnergyModel{PJPerCycle: 1, PJPerWordHop: 4, PJPerIdleCycle: 0.1}
}

// EnergyPerFrame estimates the energy one frame costs under the given
// assignment and optional placement (nil = every inter-PE word moves
// one hop).
func EnergyPerFrame(g *graph.Graph, r *analysis.Result, m machine.Machine,
	a *Assignment, p *Placement, em EnergyModel) float64 {

	var active float64
	var frameSec float64
	for n, pe := range a.PEOf {
		_ = pe
		ni := r.Nodes[n]
		cycles := float64(ni.CyclesPerFrame +
			ni.ReadWordsPerFrame*m.PE.ReadCost +
			ni.WriteWordsPerFrame*m.PE.WriteCost)
		active += cycles
		if fs := ni.Rate.Float(); fs > 0 {
			frameSec = 1 / fs
		}
	}

	var comm float64
	for _, e := range g.Edges() {
		fromPE, okF := a.PEOf[e.From.Node()]
		toPE, okT := a.PEOf[e.To.Node()]
		if !okF || !okT || fromPE == toPE {
			continue
		}
		hops := 1.0
		if p != nil {
			x1, y1 := p.Coord(fromPE)
			x2, y2 := p.Coord(toPE)
			hops = float64(abs(x1-x2) + abs(y1-y2))
		}
		if info, ok := r.Out[e.From]; ok {
			comm += hops * float64(info.WordsPerFrame())
		}
	}

	// Idle capacity: provisioned cycles per frame minus active ones.
	idle := 0.0
	if frameSec > 0 {
		provisioned := float64(a.NumPEs) * float64(m.PE.CyclesPerSec) * frameSec
		if provisioned > active {
			idle = provisioned - active
		}
	}

	return em.PJPerCycle*active + em.PJPerWordHop*comm + em.PJPerIdleCycle*idle
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
