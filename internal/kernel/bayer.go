package kernel

import (
	"fmt"

	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
)

// BayerDemosaic builds a bilinear demosaicing kernel for RGGB mosaics
// (Figure 13 benchmarks 1 and 1F). To stay data-parallel the kernel
// consumes a 4×4 window advanced by (2,2) and reconstructs the interior
// 2×2 quad, which contains exactly one pixel of each Bayer parity class
// regardless of the window's absolute position; it demonstrates the
// model's multiple outputs with separate R, G, and B planes.
func BayerDemosaic(name string) *graph.Node {
	n := graph.NewNode(name, graph.KindKernel)
	n.CreateInput("in", geom.Sz(4, 4), geom.St(2, 2), geom.Off(1, 1))
	n.CreateOutput("r", geom.Sz(2, 2), geom.St(2, 2))
	n.CreateOutput("g", geom.Sz(2, 2), geom.St(2, 2))
	n.CreateOutput("b", geom.Sz(2, 2), geom.St(2, 2))
	n.RegisterMethod("demosaic", bayerCycles, 16)
	n.RegisterMethodInput("demosaic", "in")
	n.RegisterMethodOutput("demosaic", "r")
	n.RegisterMethodOutput("demosaic", "g")
	n.RegisterMethodOutput("demosaic", "b")
	n.Attrs["ktype"] = "bayer"
	n.Behavior = bayerBehavior{}
	return n
}

type bayerBehavior struct{}

func (bayerBehavior) Clone() graph.Behavior { return bayerBehavior{} }

func (bayerBehavior) Invoke(method string, ctx graph.ExecContext) error {
	if method != "demosaic" {
		return fmt.Errorf("kernel: bayer has no method %q", method)
	}
	in := ctx.Input("in")
	// The window's top-left is at even absolute coordinates (step 2,2
	// from an even origin), so within-window position (1,1) has odd-odd
	// absolute parity, (2,2) even-even, matching RGGB via quadParity.
	r := frame.Alloc(2, 2)
	g := frame.Alloc(2, 2)
	b := frame.Alloc(2, 2)
	for qy := 0; qy < 2; qy++ {
		for qx := 0; qx < 2; qx++ {
			rv, gv, bv := demosaicQuad(in, 1+qx, 1+qy)
			r.Set(qx, qy, rv)
			g.Set(qx, qy, gv)
			b.Set(qx, qy, bv)
		}
	}
	ctx.Emit("r", r)
	ctx.Emit("g", g)
	ctx.Emit("b", b)
	return nil
}

// demosaicQuad reconstructs RGB at window position (cx, cy); the window
// is anchored at even absolute coordinates so absolute parity equals
// (cx%2, cy%2).
func demosaicQuad(w frame.Window, cx, cy int) (r, g, b float64) {
	avg4 := func(dx1, dy1, dx2, dy2, dx3, dy3, dx4, dy4 int) float64 {
		return (w.At(cx+dx1, cy+dy1) + w.At(cx+dx2, cy+dy2) +
			w.At(cx+dx3, cy+dy3) + w.At(cx+dx4, cy+dy4)) / 4
	}
	avg2 := func(dx1, dy1, dx2, dy2 int) float64 {
		return (w.At(cx+dx1, cy+dy1) + w.At(cx+dx2, cy+dy2)) / 2
	}
	switch {
	case cy%2 == 0 && cx%2 == 0: // red site
		r = w.At(cx, cy)
		g = avg4(-1, 0, 1, 0, 0, -1, 0, 1)
		b = avg4(-1, -1, 1, -1, -1, 1, 1, 1)
	case cy%2 == 0 && cx%2 == 1: // green on red row
		g = w.At(cx, cy)
		r = avg2(-1, 0, 1, 0)
		b = avg2(0, -1, 0, 1)
	case cy%2 == 1 && cx%2 == 0: // green on blue row
		g = w.At(cx, cy)
		r = avg2(0, -1, 0, 1)
		b = avg2(-1, 0, 1, 0)
	default: // blue site
		b = w.At(cx, cy)
		g = avg4(-1, 0, 1, 0, 0, -1, 0, 1)
		r = avg4(-1, -1, 1, -1, -1, 1, 1, 1)
	}
	return r, g, b
}
