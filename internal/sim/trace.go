package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// TraceEvent records one kernel firing in the timing simulation.
type TraceEvent struct {
	// Start and Duration are in simulated seconds.
	Start    float64
	Duration float64
	PE       int
	Node     string
	// Label is the fired method or FSM action ("runConvolve",
	// "forward:EOF#0", "split", ...).
	Label string
}

// Trace is a bounded recording of firings, oldest first.
type Trace struct {
	Events []TraceEvent
	// Dropped counts firings beyond the bound.
	Dropped int64
}

// WriteCSV renders the trace as CSV (start,duration,pe,node,label).
func (t *Trace) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "start_s,duration_s,pe,node,label"); err != nil {
		return err
	}
	for _, ev := range t.Events {
		label := strings.ReplaceAll(ev.Label, ",", ";")
		node := strings.ReplaceAll(ev.Node, ",", ";")
		if _, err := fmt.Fprintf(w, "%.9f,%.9f,%d,%s,%s\n",
			ev.Start, ev.Duration, ev.PE, node, label); err != nil {
			return err
		}
	}
	if t.Dropped > 0 {
		_, err := fmt.Fprintf(w, "# dropped %d further events\n", t.Dropped)
		return err
	}
	return nil
}

// traceEventJSON is one entry of the Chrome trace_event format.
type traceEventJSON struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteTraceJSON renders the trace in the Chrome trace_event JSON
// format, loadable by chrome://tracing and Perfetto. Each firing
// becomes a complete ("ph":"X") slice on its PE's thread; simulated
// seconds convert to the format's microseconds. Thread-name metadata
// labels each tid as its PE, and the dropped-event count (if any) is
// recorded under otherData.
func (t *Trace) WriteTraceJSON(w io.Writer) error {
	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ev traceEventJSON) error {
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n"
		if first {
			sep = ""
			first = false
		}
		_, err = fmt.Fprintf(w, "%s%s", sep, data)
		return err
	}
	peSet := make(map[int]bool)
	for _, ev := range t.Events {
		peSet[ev.PE] = true
	}
	pes := make([]int, 0, len(peSet))
	for pe := range peSet {
		pes = append(pes, pe)
	}
	sort.Ints(pes)
	for _, pe := range pes {
		if err := emit(traceEventJSON{
			Name: "thread_name",
			Ph:   "M",
			Tid:  pe,
			Args: map[string]any{"name": fmt.Sprintf("PE %d", pe)},
		}); err != nil {
			return err
		}
	}
	for _, ev := range t.Events {
		if err := emit(traceEventJSON{
			Name: ev.Node,
			Cat:  "firing",
			Ph:   "X",
			Ts:   ev.Start * 1e6,
			Dur:  ev.Duration * 1e6,
			Tid:  ev.PE,
			Args: map[string]any{"label": ev.Label},
		}); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w,
		"\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"droppedEvents\":%d}}\n",
		t.Dropped)
	return err
}

// Gantt renders a coarse ASCII Gantt chart of PE occupancy: one row per
// PE, the time axis split into cols buckets, each cell showing how busy
// the PE was in that bucket (space, '.', ':', '#').
func (t *Trace) Gantt(numPEs int, makespan float64, cols int) string {
	if cols < 1 || makespan <= 0 {
		return ""
	}
	busy := make([][]float64, numPEs)
	for i := range busy {
		busy[i] = make([]float64, cols)
	}
	bucket := makespan / float64(cols)
	for _, ev := range t.Events {
		if ev.PE < 0 || ev.PE >= numPEs {
			continue
		}
		// Spread the event's duration across the buckets it overlaps.
		start, end := ev.Start, ev.Start+ev.Duration
		for b := int(start / bucket); b < cols && float64(b)*bucket < end; b++ {
			lo := float64(b) * bucket
			hi := lo + bucket
			if start > lo {
				lo = start
			}
			if end < hi {
				hi = end
			}
			if hi > lo {
				busy[ev.PE][b] += hi - lo
			}
		}
	}
	var sb strings.Builder
	for pe := 0; pe < numPEs; pe++ {
		fmt.Fprintf(&sb, "PE%-3d |", pe)
		for _, b := range busy[pe] {
			frac := b / bucket
			switch {
			case frac > 0.75:
				sb.WriteByte('#')
			case frac > 0.4:
				sb.WriteByte(':')
			case frac > 0.05:
				sb.WriteByte('.')
			default:
				sb.WriteByte(' ')
			}
		}
		sb.WriteString("|\n")
	}
	return sb.String()
}

// TopNodes returns the busiest nodes in the trace, most expensive
// first, at most n entries.
func (t *Trace) TopNodes(n int) []struct {
	Node string
	Busy float64
} {
	byNode := make(map[string]float64)
	for _, ev := range t.Events {
		byNode[ev.Node] += ev.Duration
	}
	type entry struct {
		Node string
		Busy float64
	}
	var entries []entry
	for name, busy := range byNode {
		entries = append(entries, entry{name, busy})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Busy != entries[j].Busy {
			return entries[i].Busy > entries[j].Busy
		}
		return entries[i].Node < entries[j].Node
	})
	if n < len(entries) {
		entries = entries[:n]
	}
	out := make([]struct {
		Node string
		Busy float64
	}, len(entries))
	for i, e := range entries {
		out[i] = struct {
			Node string
			Busy float64
		}{e.Node, e.Busy}
	}
	return out
}
