package frame

import "sort"

// Golden sequential implementations of the paper's kernels. Every
// transformed application graph is verified against these (see
// internal/runtime tests): the parallelized, buffered, split/joined
// graph must produce bit-identical output.

// Convolve computes a valid-region convolution of f with the kw×kh
// kernel coeff (row-major, already in application order: the kernel
// code in the paper indexes coeff reversed; the golden and kernel
// implementations agree on the same convention). Output size is
// (W-kw+1)×(H-kh+1).
func Convolve(f Frame, coeff Window) Frame {
	kw, kh := coeff.W, coeff.H
	ow, oh := f.W-kw+1, f.H-kh+1
	if ow < 1 || oh < 1 {
		return Window{}
	}
	out := NewWindow(ow, oh)
	Windows(f, kw, kh, 1, 1, func(x, y int) {
		var acc float64
		for dy := 0; dy < kh; dy++ {
			for dx := 0; dx < kw; dx++ {
				acc += f.At(x+dx, y+dy) * coeff.At(kw-dx-1, kh-dy-1)
			}
		}
		out.Set(x, y, acc)
	})
	return out
}

// Median computes a k×k median filter over the valid region.
func Median(f Frame, k int) Frame {
	ow, oh := f.W-k+1, f.H-k+1
	if ow < 1 || oh < 1 {
		return Window{}
	}
	out := NewWindow(ow, oh)
	buf := make([]float64, 0, k*k)
	Windows(f, k, k, 1, 1, func(x, y int) {
		buf = buf[:0]
		for dy := 0; dy < k; dy++ {
			for dx := 0; dx < k; dx++ {
				buf = append(buf, f.At(x+dx, y+dy))
			}
		}
		sort.Float64s(buf)
		out.Set(x, y, buf[len(buf)/2])
	})
	return out
}

// Subtract computes the per-pixel difference a - b. The frames must be
// the same size (the compiler's trim/pad pass guarantees this before
// the Subtract kernel ever runs).
func Subtract(a, b Frame) Frame {
	if a.W != b.W || a.H != b.H {
		panic("frame: Subtract size mismatch")
	}
	out := NewWindow(a.W, a.H)
	for i := range a.Pix {
		out.Pix[i] = a.Pix[i] - b.Pix[i]
	}
	return out
}

// Histogram counts samples of f into len(binEdges) bins: bin i counts
// values v with binEdges[i] <= v, choosing the highest such bin
// (searched from the top as the paper's findBin does by linear search).
// Values below binEdges[0] fall into bin 0.
func Histogram(f Frame, binEdges []float64) []float64 {
	counts := make([]float64, len(binEdges))
	for _, v := range f.Pix {
		counts[FindBin(v, binEdges)]++
	}
	return counts
}

// FindBin returns the histogram bin index for value v under the edge
// convention of Histogram.
func FindBin(v float64, binEdges []float64) int {
	for i := len(binEdges) - 1; i > 0; i-- {
		if v >= binEdges[i] {
			return i
		}
	}
	return 0
}

// UniformBins returns n bin edges evenly spaced over [lo, hi).
func UniformBins(n int, lo, hi float64) []float64 {
	edges := make([]float64, n)
	step := (hi - lo) / float64(n)
	for i := range edges {
		edges[i] = lo + float64(i)*step
	}
	return edges
}

// Trim removes l, r columns and t, b rows from the edges of f.
func Trim(f Frame, l, r, t, b int) Frame {
	ow, oh := f.W-l-r, f.H-t-b
	if ow < 1 || oh < 1 {
		return Window{}
	}
	return f.Sub(l, t, ow, oh)
}

// Pad surrounds f with zeros: l, r columns and t, b rows.
func Pad(f Frame, l, r, t, b int) Frame {
	out := NewWindow(f.W+l+r, f.H+t+b)
	for y := 0; y < f.H; y++ {
		copy(out.Pix[(y+t)*out.W+l:(y+t)*out.W+l+f.W], f.Pix[y*f.W:(y+1)*f.W])
	}
	return out
}

// Morph computes a k×k windowed min (erode=true) or max over the
// valid region.
func Morph(f Frame, k int, erode bool) Frame {
	ow, oh := f.W-k+1, f.H-k+1
	if ow < 1 || oh < 1 {
		return Window{}
	}
	out := NewWindow(ow, oh)
	Windows(f, k, k, 1, 1, func(x, y int) {
		best := f.At(x, y)
		for dy := 0; dy < k; dy++ {
			for dx := 0; dx < k; dx++ {
				v := f.At(x+dx, y+dy)
				if (erode && v < best) || (!erode && v > best) {
					best = v
				}
			}
		}
		out.Set(x, y, best)
	})
	return out
}

// FIR applies a taps-wide 1-D convolution along each row over the
// valid region; output is (W-len(taps)+1)×H.
func FIR(f Frame, taps []float64) Frame {
	k := len(taps)
	ow := f.W - k + 1
	if ow < 1 {
		return Window{}
	}
	out := NewWindow(ow, f.H)
	for y := 0; y < f.H; y++ {
		for x := 0; x < ow; x++ {
			var acc float64
			for i := 0; i < k; i++ {
				acc += f.At(x+i, y) * taps[k-i-1]
			}
			out.Set(x, y, acc)
		}
	}
	return out
}

// UpsampleNN enlarges f k-fold with nearest-neighbor replication.
func UpsampleNN(f Frame, k int) Frame {
	out := NewWindow(f.W*k, f.H*k)
	for y := 0; y < out.H; y++ {
		for x := 0; x < out.W; x++ {
			out.Set(x, y, f.At(x/k, y/k))
		}
	}
	return out
}

// Gain scales every sample by g.
func Gain(f Frame, g float64) Frame {
	out := NewWindow(f.W, f.H)
	for i := range f.Pix {
		out.Pix[i] = f.Pix[i] * g
	}
	return out
}

// Downsample keeps one sample per k×k block (the top-left one),
// producing a floor(W/k)×floor(H/k) frame.
func Downsample(f Frame, k int) Frame {
	ow, oh := f.W/k, f.H/k
	if ow < 1 || oh < 1 {
		return Window{}
	}
	out := NewWindow(ow, oh)
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			out.Set(x, y, f.At(x*k, y*k))
		}
	}
	return out
}

// BayerDemosaic performs bilinear demosaicing of an RGGB-mosaic frame
// over the valid 3x3 region, returning R, G, B planes each of size
// (W-2)×(H-2). Output pixel (x,y) corresponds to mosaic pixel
// (x+1, y+1).
func BayerDemosaic(f Frame) (r, g, b Frame) {
	ow, oh := f.W-2, f.H-2
	if ow < 1 || oh < 1 {
		return Window{}, Window{}, Window{}
	}
	r, g, b = NewWindow(ow, oh), NewWindow(ow, oh), NewWindow(ow, oh)
	Windows(f, 3, 3, 1, 1, func(x, y int) {
		cx, cy := x+1, y+1
		rv, gv, bv := demosaicAt(f, cx, cy)
		r.Set(x, y, rv)
		g.Set(x, y, gv)
		b.Set(x, y, bv)
	})
	return r, g, b
}

// demosaicAt reconstructs RGB at mosaic position (cx, cy), which must
// have a full 3x3 neighborhood. RGGB layout: even row/even col = R,
// even row/odd col = G, odd row/even col = G, odd row/odd col = B.
func demosaicAt(f Frame, cx, cy int) (r, g, b float64) {
	avg4 := func(dx1, dy1, dx2, dy2, dx3, dy3, dx4, dy4 int) float64 {
		return (f.At(cx+dx1, cy+dy1) + f.At(cx+dx2, cy+dy2) +
			f.At(cx+dx3, cy+dy3) + f.At(cx+dx4, cy+dy4)) / 4
	}
	avg2 := func(dx1, dy1, dx2, dy2 int) float64 {
		return (f.At(cx+dx1, cy+dy1) + f.At(cx+dx2, cy+dy2)) / 2
	}
	switch {
	case cy%2 == 0 && cx%2 == 0: // red site
		r = f.At(cx, cy)
		g = avg4(-1, 0, 1, 0, 0, -1, 0, 1)
		b = avg4(-1, -1, 1, -1, -1, 1, 1, 1)
	case cy%2 == 0 && cx%2 == 1: // green site on red row
		g = f.At(cx, cy)
		r = avg2(-1, 0, 1, 0)
		b = avg2(0, -1, 0, 1)
	case cy%2 == 1 && cx%2 == 0: // green site on blue row
		g = f.At(cx, cy)
		r = avg2(0, -1, 0, 1)
		b = avg2(-1, 0, 1, 0)
	default: // blue site
		b = f.At(cx, cy)
		g = avg4(-1, 0, 1, 0, 0, -1, 0, 1)
		r = avg4(-1, -1, 1, -1, -1, 1, 1, 1)
	}
	return r, g, b
}
