package sim

import (
	"container/heap"
	"fmt"
	"sort"

	"blockpar/internal/graph"
	"blockpar/internal/machine"
	"blockpar/internal/mapping"
	"blockpar/internal/token"
)

// Options configures a simulation run.
type Options struct {
	Machine machine.Machine
	// Frames is how many input frames to simulate (default 2).
	Frames int
	// QueueCap bounds each input port's FIFO. Zero selects an
	// analysis-free default generous enough for the pipeline skew of
	// windowed diamonds (a few input rows).
	QueueCap int
	// MaxEvents aborts runaway simulations (default 50M).
	MaxEvents int64
	// TraceLimit, when positive, records up to that many firings into
	// Result.Trace for inspection (CSV export, Gantt rendering).
	TraceLimit int
	// WarmupFrames excludes the first N frames from the utilization
	// statistics, measuring steady state only. Latencies and output
	// counts still cover the whole run.
	WarmupFrames int
}

// PEStats aggregates one PE's busy time, split the way Figure 13
// reports it.
type PEStats struct {
	Run, Read, Write float64 // seconds busy
	Firings          int64
}

// Busy returns total busy seconds.
func (s PEStats) Busy() float64 { return s.Run + s.Read + s.Write }

// Result is the outcome of a simulation.
type Result struct {
	// Time is the simulated makespan in seconds.
	Time float64
	PEs  []PEStats
	// FramesOut counts frames delivered at every output.
	FramesOut int
	// InputStalls counts samples that could not be accepted on time;
	// StallTime is their cumulative lateness in seconds.
	InputStalls int64
	StallTime   float64
	// Throughput is output frames per second.
	Throughput float64
	// Exceptions counts runtime resource exceptions per kernel:
	// dynamic-method invocations whose actual cost exceeded their
	// declared bound and were truncated (§VII extension).
	Exceptions map[string]int64
	// Nodes aggregates busy time per kernel (across its PE's share),
	// for identifying which kernels dominate a mapping.
	Nodes map[string]PEStats
	// Latencies records, per output node, each frame's completion
	// latency: the time between the frame's first input sample being
	// due and its end-of-frame token reaching the output. The paper
	// notes communication delay "will only increase the latency for
	// the first output, but will not impact the throughput" — this is
	// the quantity it refers to.
	Latencies map[string][]float64
	// OutputCounts tallies the items each output received, used to
	// cross-check the timing simulation against the functional runtime
	// (both engines must agree on stream structure exactly).
	OutputCounts map[string]OutputCount
	// Trace holds the recorded firings when Options.TraceLimit > 0.
	Trace *Trace
	// MeasuredFrom is the simulated time utilization statistics start
	// (0 unless WarmupFrames was set).
	MeasuredFrom float64
}

// OutputCount is the item tally of one application output.
type OutputCount struct {
	Data, EOL, EOF int64
}

// MaxLatency returns the worst frame latency across outputs.
func (r *Result) MaxLatency() float64 {
	var max float64
	for _, ls := range r.Latencies {
		for _, l := range ls {
			if l > max {
				max = l
			}
		}
	}
	return max
}

// TotalExceptions sums resource exceptions across kernels.
func (r *Result) TotalExceptions() int64 {
	var total int64
	for _, c := range r.Exceptions {
		total += c
	}
	return total
}

// RealTimeMet reports whether the inputs were always accepted on time
// (the paper's criterion: the application keeps up with the input
// rate).
func (r *Result) RealTimeMet() bool { return r.InputStalls == 0 }

// measuredSpan is the window utilization statistics cover: the whole
// run, or the post-warmup steady state when WarmupFrames was set.
func (r *Result) measuredSpan() float64 { return r.Time - r.MeasuredFrom }

// MeanUtilization returns the mean PE busy fraction over the measured
// window.
func (r *Result) MeanUtilization() float64 {
	span := r.measuredSpan()
	if len(r.PEs) == 0 || span <= 0 {
		return 0
	}
	var sum float64
	for _, pe := range r.PEs {
		sum += pe.Busy() / span
	}
	return sum / float64(len(r.PEs))
}

// Breakdown returns the mean run/read/write utilization fractions
// across PEs (the Figure 13 stack) over the measured window.
func (r *Result) Breakdown() (run, read, write float64) {
	span := r.measuredSpan()
	if len(r.PEs) == 0 || span <= 0 {
		return 0, 0, 0
	}
	for _, pe := range r.PEs {
		run += pe.Run / span
		read += pe.Read / span
		write += pe.Write / span
	}
	n := float64(len(r.PEs))
	return run / n, read / n, write / n
}

// event is a heap entry.
type event struct {
	t    float64
	seq  int64
	kind int // 0 = input emission, 1 = PE completion
	idx  int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

type dest struct {
	node  *graph.Node
	input string
}

type nodeState struct {
	node *graph.Node
	auto automaton
	qs   map[string]*queue
	// outs maps output port name to destinations.
	outs map[string][]dest
	pe   int
}

type peState struct {
	kernels []*nodeState
	rr      int
	busy    bool
	// pending is the firing in flight and its source node.
	pending     *firing
	pendingNode *nodeState
	stats       PEStats
}

type inputState struct {
	node *graph.Node
	// cursor
	x, y, frame int
	chunkW      int
	chunkH      int
	interval    float64 // seconds per chunk
	due         float64
	stalled     bool
	done        bool
}

type engine struct {
	g     *graph.Graph
	opts  Options
	nodes map[*graph.Node]*nodeState
	pes   []*peState
	ins   []*inputState
	outs  map[*graph.Node]int // EOFs seen per output

	events eventHeap
	seq    int64
	now    float64

	stalls     int64
	stallTime  float64
	processed  int64
	exceptions map[string]int64
	nodeStats  map[string]*PEStats
	latencies  map[string][]float64
	outCounts  map[string]*OutputCount
	// frameStart is when each frame's first input sample is due (from
	// the first application input).
	frameStart []float64

	trace *Trace
	// measuring turns on statistics accumulation; warmupLeft counts
	// frames still to complete at the outputs before it flips on.
	measuring    bool
	measuredFrom float64
	warmupLeft   int
}

// Simulate runs the mapped application for opts.Frames frames.
func Simulate(g *graph.Graph, assign *mapping.Assignment, opts Options) (*Result, error) {
	if err := opts.Machine.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if opts.Frames <= 0 {
		opts.Frames = 2
	}
	if opts.MaxEvents <= 0 {
		opts.MaxEvents = 50_000_000
	}
	if opts.QueueCap <= 0 {
		maxW := 64
		for _, in := range g.Inputs() {
			if in.FrameSize.W > maxW {
				maxW = in.FrameSize.W
			}
		}
		opts.QueueCap = 8 * maxW
	}

	e := &engine{
		g:          g,
		opts:       opts,
		nodes:      make(map[*graph.Node]*nodeState),
		outs:       make(map[*graph.Node]int),
		exceptions: make(map[string]int64),
		nodeStats:  make(map[string]*PEStats),
		latencies:  make(map[string][]float64),
		outCounts:  make(map[string]*OutputCount),
		measuring:  opts.WarmupFrames <= 0,
		warmupLeft: opts.WarmupFrames,
	}
	if opts.TraceLimit > 0 {
		e.trace = &Trace{}
	}
	if opts.WarmupFrames >= opts.Frames {
		return nil, fmt.Errorf("sim: warmup %d must be below frames %d", opts.WarmupFrames, opts.Frames)
	}
	e.pes = make([]*peState, assign.NumPEs)
	for i := range e.pes {
		e.pes[i] = &peState{}
	}

	for _, n := range g.Nodes() {
		ns := &nodeState{
			node: n,
			qs:   make(map[string]*queue),
			outs: make(map[string][]dest),
			pe:   -1,
		}
		for _, p := range n.Inputs() {
			ns.qs[p.Name] = &queue{cap: opts.QueueCap}
		}
		for _, p := range n.Outputs() {
			for _, edge := range g.EdgesFrom(p) {
				ns.outs[p.Name] = append(ns.outs[p.Name],
					dest{node: edge.To.Node(), input: edge.To.Name})
			}
		}
		e.nodes[n] = ns
		switch n.Kind {
		case graph.KindInput:
			chunk := n.Output("out").Size
			chunksPerFrame := float64((n.FrameSize.W / chunk.W) * (n.FrameSize.H / chunk.H))
			ins := &inputState{
				node: n, chunkW: chunk.W, chunkH: chunk.H,
				interval: 1 / (n.Rate.Float() * chunksPerFrame),
			}
			e.ins = append(e.ins, ins)
		case graph.KindOutput:
			e.outs[n] = 0
		default:
			auto, err := newAutomaton(n)
			if err != nil {
				return nil, err
			}
			ns.auto = auto
			pe, ok := assign.PEOf[n]
			if !ok {
				return nil, fmt.Errorf("sim: node %q has no PE assignment", n.Name())
			}
			ns.pe = pe
			e.pes[pe].kernels = append(e.pes[pe].kernels, ns)
		}
	}
	// Frame start times from the first input's schedule, for latency
	// accounting.
	if len(e.ins) > 0 {
		first := e.ins[0]
		chunksPerFrame := float64((first.node.FrameSize.W / first.chunkW) *
			(first.node.FrameSize.H / first.chunkH))
		period := first.interval * chunksPerFrame
		for f := 0; f < opts.Frames; f++ {
			e.frameStart = append(e.frameStart, float64(f)*period)
		}
	}

	// Keep per-PE kernel order deterministic.
	for _, pe := range e.pes {
		sort.Slice(pe.kernels, func(i, j int) bool {
			return pe.kernels[i].node.Name() < pe.kernels[j].node.Name()
		})
	}

	for i := range e.ins {
		e.push(event{t: 0, kind: 0, idx: i})
	}

	if err := e.run(); err != nil {
		return nil, err
	}

	res := &Result{
		Time:         e.now,
		FramesOut:    opts.Frames,
		InputStalls:  e.stalls,
		StallTime:    e.stallTime,
		Exceptions:   e.exceptions,
		Nodes:        make(map[string]PEStats, len(e.nodeStats)),
		Latencies:    e.latencies,
		OutputCounts: make(map[string]OutputCount, len(e.outCounts)),
		Trace:        e.trace,
		MeasuredFrom: e.measuredFrom,
	}
	for name, st := range e.nodeStats {
		res.Nodes[name] = *st
	}
	for name, oc := range e.outCounts {
		res.OutputCounts[name] = *oc
	}
	for _, pe := range e.pes {
		res.PEs = append(res.PEs, pe.stats)
	}
	if e.now > 0 {
		res.Throughput = float64(opts.Frames) / e.now
	}
	return res, nil
}

func (e *engine) push(ev event) {
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.events, ev)
}

func (e *engine) done() bool {
	for _, n := range e.g.Outputs() {
		if e.outs[n] < e.opts.Frames {
			return false
		}
	}
	return true
}

func (e *engine) run() error {
	heap.Init(&e.events)
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.t
		e.processed++
		if e.processed > e.opts.MaxEvents {
			return fmt.Errorf("sim: exceeded %d events at t=%g", e.opts.MaxEvents, e.now)
		}
		switch ev.kind {
		case 0:
			e.tryEmit(e.ins[ev.idx])
		case 1:
			e.complete(e.pes[ev.idx], ev.idx)
		}
		e.sweep()
		if e.done() {
			return nil
		}
	}
	if e.done() {
		return nil
	}
	return fmt.Errorf("sim: deadlock at t=%g: outputs saw %v of %d frames\n%s",
		e.now, e.outFrames(), e.opts.Frames, e.queueDump())
}

// queueDump renders the non-empty input queues for deadlock diagnosis.
func (e *engine) queueDump() string {
	s := "stuck queues:\n"
	for _, n := range e.g.Nodes() {
		ns := e.nodes[n]
		for _, p := range n.Inputs() {
			q := ns.qs[p.Name]
			if q.len() == 0 {
				continue
			}
			head, _ := q.head()
			s += fmt.Sprintf("  %s.%s: %d queued, head %v\n", n.Name(), p.Name, q.len(), head)
		}
	}
	return s
}

func (e *engine) outFrames() []int {
	var out []int
	for _, n := range e.g.Outputs() {
		out = append(out, e.outs[n])
	}
	return out
}

// sweep drains outputs, retries stalled inputs, and starts work on idle
// PEs until nothing changes at the current timestamp.
func (e *engine) sweep() {
	for {
		progress := false
		for _, n := range e.g.Outputs() {
			if e.drainOutput(n) {
				progress = true
			}
		}
		for _, in := range e.ins {
			if in.stalled {
				if e.tryEmit(in) {
					progress = true
				}
			}
		}
		for idx, pe := range e.pes {
			if !pe.busy && e.startWork(pe, idx) {
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

func (e *engine) drainOutput(n *graph.Node) bool {
	ns := e.nodes[n]
	q := ns.qs["in"]
	progress := false
	oc := e.outCounts[n.Name()]
	if oc == nil {
		oc = &OutputCount{}
		e.outCounts[n.Name()] = oc
	}
	for q.len() > 0 {
		it := q.pop()
		switch {
		case !it.isTok:
			oc.Data++
		case it.tok.Kind == token.EndOfLine:
			oc.EOL++
		case it.tok.Kind == token.EndOfFrame:
			oc.EOF++
			frameIdx := e.outs[n]
			e.outs[n]++
			start := 0.0
			if frameIdx < len(e.frameStart) {
				start = e.frameStart[frameIdx]
			}
			e.latencies[n.Name()] = append(e.latencies[n.Name()], e.now-start)
			if !e.measuring {
				done := true
				for _, o := range e.g.Outputs() {
					if e.outs[o] < e.warmupLeft {
						done = false
						break
					}
				}
				if done {
					e.measuring = true
					e.measuredFrom = e.now
				}
			}
		}
		progress = true
	}
	return progress
}

// emission is what one input step delivers: the chunk plus any tokens.
func (in *inputState) emission() []item {
	chunkWords := int64(in.chunkW) * int64(in.chunkH)
	items := []item{dataItem(chunkWords)}
	fs := in.node.FrameSize
	lastX := in.x+in.chunkW >= fs.W
	lastY := in.y+in.chunkH >= fs.H
	if lastX {
		items = append(items, tokenItem(token.EOL(int64(in.frame*(fs.H/in.chunkH)+in.y/in.chunkH))))
		if lastY {
			items = append(items, tokenItem(token.EOF(int64(in.frame))))
		}
	}
	return items
}

func (in *inputState) advance() {
	fs := in.node.FrameSize
	in.x += in.chunkW
	if in.x+in.chunkW > fs.W {
		in.x = 0
		in.y += in.chunkH
		if in.y+in.chunkH > fs.H {
			in.y = 0
			in.frame++
		}
	}
}

// tryEmit delivers the input's due chunk if every fan-out destination
// has room; otherwise it records the stall and waits for a delivery to
// retry. Returns whether it emitted.
func (e *engine) tryEmit(in *inputState) bool {
	if in.done {
		return false
	}
	ns := e.nodes[in.node]
	items := in.emission()
	for _, d := range ns.outs["out"] {
		dq := e.nodes[d.node].qs[d.input]
		if dq.space() < len(items) {
			if !in.stalled {
				in.stalled = true
			}
			return false
		}
	}
	if in.stalled {
		e.stalls++
		e.stallTime += e.now - in.due
		in.stalled = false
	}
	for _, d := range ns.outs["out"] {
		dq := e.nodes[d.node].qs[d.input]
		for _, it := range items {
			dq.push(it)
		}
	}
	in.advance()
	if in.frame >= e.opts.Frames {
		in.done = true
		return true
	}
	in.due += in.interval
	next := in.due
	if next < e.now {
		next = e.now
	}
	e.push(event{t: next, kind: 0, idx: indexOfInput(e.ins, in)})
	return true
}

func indexOfInput(ins []*inputState, in *inputState) int {
	for i, x := range ins {
		if x == in {
			return i
		}
	}
	panic("sim: unknown input")
}

// startWork picks the PE's next runnable kernel round-robin and starts
// its firing: inputs are consumed and the automaton committed at start;
// outputs are delivered at completion.
func (e *engine) startWork(pe *peState, peIdx int) bool {
	n := len(pe.kernels)
	for off := 0; off < n; off++ {
		ns := pe.kernels[(pe.rr+off)%n]
		f := ns.auto.next(ns.qs)
		if f == nil {
			continue
		}
		if !e.hasSpace(ns, f) {
			continue
		}
		// Consume inputs and commit state now.
		for in, cnt := range f.consume {
			q := ns.qs[in]
			for i := 0; i < cnt; i++ {
				q.pop()
			}
		}
		readW := readWordsOf(f)
		ns.auto.commit(f)
		if f.exceeded {
			e.exceptions[ns.node.Name()]++
		}
		m := e.opts.Machine.PE
		dur := float64(readW*m.ReadCost+f.cycles+f.writeWords()*m.WriteCost) / float64(m.CyclesPerSec)
		pe.busy = true
		pe.pending = f
		pe.pendingNode = ns
		pe.rr = (pe.rr + off + 1) % n
		if e.measuring {
			pe.stats.Firings++
			pe.stats.Read += float64(readW*m.ReadCost) / float64(m.CyclesPerSec)
			pe.stats.Run += float64(f.cycles) / float64(m.CyclesPerSec)
			pe.stats.Write += float64(f.writeWords()*m.WriteCost) / float64(m.CyclesPerSec)
			nst := e.nodeStats[ns.node.Name()]
			if nst == nil {
				nst = &PEStats{}
				e.nodeStats[ns.node.Name()] = nst
			}
			nst.Firings++
			nst.Read += float64(readW*m.ReadCost) / float64(m.CyclesPerSec)
			nst.Run += float64(f.cycles) / float64(m.CyclesPerSec)
			nst.Write += float64(f.writeWords()*m.WriteCost) / float64(m.CyclesPerSec)
		}
		if e.trace != nil {
			const traceHardCap = 1 << 22
			if len(e.trace.Events) < e.opts.TraceLimit && len(e.trace.Events) < traceHardCap {
				e.trace.Events = append(e.trace.Events, TraceEvent{
					Start: e.now, Duration: dur, PE: peIdx,
					Node: ns.node.Name(), Label: f.label,
				})
			} else {
				e.trace.Dropped++
			}
		}
		e.push(event{t: e.now + dur, kind: 1, idx: peIdx})
		return true
	}
	return false
}

// readWordsOf sums the words a firing consumes. Called after next() but
// before the queues are popped it could use the queue contents; to keep
// it simple the firing records only counts, so we approximate token
// reads as one word and data reads by the consumed queue heads — which
// startWork captures by summing before popping.
func readWordsOf(f *firing) int64 {
	// Set by hasSpace/startWork path via closure below; see note.
	return f.readWordsCache
}

func (e *engine) hasSpace(ns *nodeState, f *firing) bool {
	// Compute read words while heads are still queued.
	var readW int64
	for in, cnt := range f.consume {
		q := ns.qs[in]
		for i := 0; i < cnt; i++ {
			readW += q.items[i].words
		}
	}
	f.readWordsCache = readW

	for out, items := range f.produce {
		for _, d := range ns.outs[out] {
			dq := e.nodes[d.node].qs[d.input]
			if dq.space() < len(items) {
				return false
			}
		}
	}
	return true
}

// complete delivers the finished firing's outputs.
func (e *engine) complete(pe *peState, peIdx int) {
	f, ns := pe.pending, pe.pendingNode
	pe.busy = false
	pe.pending, pe.pendingNode = nil, nil
	for out, items := range f.produce {
		for _, d := range ns.outs[out] {
			dq := e.nodes[d.node].qs[d.input]
			for _, it := range items {
				dq.push(it)
			}
		}
	}
	_ = peIdx
}
