package mapping

import (
	"math"

	"blockpar/internal/graph"
)

// Placement positions PEs on a 2-D grid. The paper mentions a
// simulated-annealing placement "implemented, but not integrated within
// the simulator"; here it is integrated as an optional post-pass that
// minimizes the traffic-weighted Manhattan distance between
// communicating PEs.
type Placement struct {
	// GridW, GridH are the grid dimensions.
	GridW, GridH int
	// At maps PE index to grid slot (y*GridW + x).
	At []int
}

// Coord returns the grid coordinates of a PE.
func (p *Placement) Coord(pe int) (x, y int) {
	slot := p.At[pe]
	return slot % p.GridW, slot / p.GridW
}

// CommCost is the traffic-weighted Manhattan distance of all inter-PE
// edges under the placement.
func CommCost(g *graph.Graph, a *Assignment, p *Placement) float64 {
	var cost float64
	for _, e := range g.Edges() {
		fromPE, ok1 := a.PEOf[e.From.Node()]
		toPE, ok2 := a.PEOf[e.To.Node()]
		if !ok1 || !ok2 || fromPE == toPE {
			continue
		}
		x1, y1 := p.Coord(fromPE)
		x2, y2 := p.Coord(toPE)
		dist := math.Abs(float64(x1-x2)) + math.Abs(float64(y1-y2))
		cost += dist * float64(e.From.Words())
	}
	return cost
}

// annealRNG is a small deterministic xorshift generator so placement is
// reproducible without math/rand seeding ceremony.
type annealRNG uint64

func (r *annealRNG) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = annealRNG(x)
	return x
}

func (r *annealRNG) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *annealRNG) float() float64 { return float64(r.next()%(1<<53)) / (1 << 53) }

// Anneal places the assignment's PEs on the smallest square grid that
// fits, then improves the placement by simulated annealing over slot
// swaps. It is deterministic for a given seed.
func Anneal(g *graph.Graph, a *Assignment, seed uint64) *Placement {
	side := 1
	for side*side < a.NumPEs {
		side++
	}
	p := &Placement{GridW: side, GridH: side, At: make([]int, a.NumPEs)}
	for i := range p.At {
		p.At[i] = i
	}
	if a.NumPEs < 2 {
		return p
	}

	rng := annealRNG(seed | 1)
	cost := CommCost(g, a, p)
	temp := cost/float64(a.NumPEs) + 1
	const iters = 4000
	for i := 0; i < iters; i++ {
		pe1 := rng.intn(a.NumPEs)
		pe2 := rng.intn(a.NumPEs)
		if pe1 == pe2 {
			continue
		}
		p.At[pe1], p.At[pe2] = p.At[pe2], p.At[pe1]
		next := CommCost(g, a, p)
		if next <= cost || rng.float() < math.Exp((cost-next)/temp) {
			cost = next
		} else {
			p.At[pe1], p.At[pe2] = p.At[pe2], p.At[pe1] // revert
		}
		temp *= 0.999
	}
	return p
}
