package kernel

import (
	"fmt"

	"blockpar/internal/conn"
	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/token"
)

// ShareBuffer builds the windowed-sharing buffer of the generalized-
// connection subsystem: one 2-D circular ring (identical FSM to Buffer)
// whose completed windows are delivered to N consumers at once. Each
// consumer output carries the same scan-order window stream; every
// emitted span is one arena allocation with one retained reference per
// extra consumer, so sharing N ways costs no copies and one ring instead
// of N. The compiler lowers a declared share connection whose consumers
// need identical window plans onto this kernel.
func ShareBuffer(name string, plan BufferPlan, ways int) *graph.Node {
	if plan.WinW < 1 || plan.WinH < 1 || plan.StepX < 1 || plan.StepY < 1 {
		panic(fmt.Sprintf("kernel: invalid share-buffer plan %+v", plan))
	}
	if ways < 1 || ways > conn.MaxWays {
		panic(fmt.Sprintf("kernel: share-buffer ways %d out of range", ways))
	}
	n := graph.NewNode(name, graph.KindBuffer)
	n.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	n.RegisterMethod("share", fsmPerItem, plan.MemoryWords())
	n.RegisterMethodInput("share", "in")
	for i := 0; i < ways; i++ {
		out := fmt.Sprintf("out%d", i)
		n.CreateOutput(out, geom.Sz(plan.WinW, plan.WinH), geom.St(plan.StepX, plan.StepY))
		n.RegisterMethodOutput("share", out)
	}
	n.Attrs["label"] = fmt.Sprintf("share ×%d %s", ways, plan.Label())
	n.Attrs["conn"] = conn.Share.String()
	n.Behavior = &shareBehavior{plan: plan, ways: ways}
	return n
}

type shareBehavior struct {
	plan BufferPlan
	ways int
	outs []string
	ring frame.Window
	x, y int
}

func (b *shareBehavior) Clone() graph.Behavior {
	return &shareBehavior{plan: b.plan, ways: b.ways}
}

// AcceptsBatch implements graph.BatchAware: sample rows arrive whole.
func (b *shareBehavior) AcceptsBatch(input string) bool { return input == "in" }

func (b *shareBehavior) reset() {
	b.x, b.y = 0, 0
	if b.ring.W > 0 {
		for y := 0; y < b.ring.H; y++ {
			raw := b.ring.RowBytes(y)
			for i := range raw {
				raw[i] = 0
			}
		}
	}
}

// sendAll delivers one item to every consumer output. Data windows gain
// one retained reference per extra consumer; the held reference covers
// the first.
func (b *shareBehavior) sendAll(ctx graph.RunContext, it graph.Item) {
	if !it.IsToken && b.ways > 1 {
		it.Win.Retain(b.ways - 1)
	}
	for i := range b.outs {
		ctx.Send(b.outs[i], it)
	}
}

func (b *shareBehavior) Run(ctx graph.RunContext) error {
	if b.outs == nil {
		b.outs = indexedNames("out", b.ways)
	}
	p := b.plan
	for {
		it, ok := ctx.Recv("in")
		if !ok {
			return nil
		}
		if it.IsToken {
			switch it.Tok.Kind {
			case token.EndOfLine:
				if b.x != p.DataW {
					return fmt.Errorf("kernel: share buffer %q got EOL after %d of %d samples",
						ctx.Node().Name(), b.x, p.DataW)
				}
				b.x = 0
				b.y++
			case token.EndOfFrame:
				if b.y != p.DataH {
					return fmt.Errorf("kernel: share buffer %q got EOF after %d of %d rows",
						ctx.Node().Name(), b.y, p.DataH)
				}
				b.reset()
				b.sendAll(ctx, it)
			default:
				b.sendAll(ctx, it)
			}
			continue
		}
		n := it.BatchN()
		if it.Win.H != 1 || (n == 1 && it.Win.W != 1) || (n > 1 && it.B.Bw != 1) {
			return fmt.Errorf("kernel: share buffer %q expects 1x1 samples, got %v",
				ctx.Node().Name(), it)
		}
		if b.x+n > p.DataW || b.y >= p.DataH {
			return fmt.Errorf("kernel: share buffer %q overflow at (%d,%d)+%d for %dx%d region",
				ctx.Node().Name(), b.x, b.y, n, p.DataW, p.DataH)
		}
		if b.ring.W == 0 {
			b.ring = frame.NewWindowKind(it.Win.Kind, p.DataW, p.WinH)
		} else if b.ring.Kind != it.Win.Kind {
			return fmt.Errorf("kernel: share buffer %q element kind changed mid-stream (%v -> %v)",
				ctx.Node().Name(), b.ring.Kind, it.Win.Kind)
		}
		x0 := b.x
		b.ingest(it, n)
		it.Win.Release()
		b.emitCompleted(ctx, x0, b.x)
	}
}

func (b *shareBehavior) ingest(it graph.Item, n int) {
	es := b.ring.Kind.Bytes()
	dst := b.ring.RowBytes(b.y % b.plan.WinH)
	if n == 1 || int(it.B.Sx) == 1 {
		copy(dst[b.x*es:(b.x+n)*es], it.Win.RowBytes(0))
	} else {
		for j := 0; j < n; j++ {
			copy(dst[(b.x+j)*es:(b.x+j+1)*es], it.B.Window(it.Win, j).RowBytes(0))
		}
	}
	b.x += n
}

// emitCompleted mirrors bufferBehavior.emitCompleted: one dense span per
// completed window range, delivered to every consumer as the same item.
func (b *shareBehavior) emitCompleted(ctx graph.RunContext, x0, x1 int) {
	p := b.plan
	wy := b.y - p.WinH + 1
	if wy < 0 || wy%p.StepY != 0 || wy/p.StepY >= p.OutputRows() {
		return
	}
	nwin := p.WindowsPerRow()
	if nwin == 0 {
		return
	}
	first := x0 - p.WinW + 1
	if first < 0 {
		first = 0
	}
	if r := first % p.StepX; r != 0 {
		first += p.StepX - r
	}
	last := x1 - p.WinW
	if m := (nwin - 1) * p.StepX; last > m {
		last = m
	}
	if first > last {
		return
	}
	last -= (last - first) % p.StepX
	count := (last-first)/p.StepX + 1
	spanW := (count-1)*p.StepX + p.WinW
	win := frame.AllocKind(b.ring.Kind, spanW, p.WinH)
	es := b.ring.Kind.Bytes()
	for dy := 0; dy < p.WinH; dy++ {
		src := b.ring.RowBytes((wy + dy) % p.WinH)
		copy(win.RowBytes(dy), src[first*es:(first+spanW)*es])
	}
	b.sendAll(ctx, graph.BatchItem(win, graph.Batch{
		N: int32(count), Sx: int32(p.StepX), Bw: int32(p.WinW),
	}))
	if last == (nwin-1)*p.StepX {
		b.sendAll(ctx, graph.TokenItem(token.EOL(int64(wy/p.StepY))))
	}
}

// SharePlanOf returns the plan and fan-out of a ShareBuffer node,
// distinguishing it from the compiler's single-consumer Buffer.
func SharePlanOf(n *graph.Node) (BufferPlan, int, bool) {
	b, ok := n.Behavior.(*shareBehavior)
	if !ok {
		return BufferPlan{}, 0, false
	}
	return b.plan, b.ways, true
}
