package registry

import (
	"fmt"
	"net"
	"sync"
	"time"

	"blockpar/internal/wire"
)

// Member is one registered worker as the fleet sees it.
type Member struct {
	Name         string
	Addr         string  // data-plane address frontends dial for sessions
	CyclesPerSec float64 // capacity in machine-model cycles/sec (PEs × PE clock)
	Executor     string
	Pipelines    []string // compiled-pipeline cache inventory at registration

	// Last heartbeat-reported load; zero until the first heartbeat.
	Sessions         uint32
	LoadCyclesPerSec float64

	// Draining marks a worker that announced planned maintenance:
	// placement skips it and frontends migrate its sessions off.
	Draining bool
}

// EventKind tags a membership event.
type EventKind uint8

const (
	// EventJoin announces a new or replaced member.
	EventJoin EventKind = iota + 1
	// EventLeave announces a deregistered, evicted, or replaced member.
	EventLeave
	// EventDrain announces a member that began draining for planned
	// maintenance: stop placing there and migrate its sessions off. The
	// member stays in the fleet until it deregisters or its lease lapses.
	EventDrain
)

func (k EventKind) String() string {
	switch k {
	case EventJoin:
		return "join"
	case EventLeave:
		return "leave"
	case EventDrain:
		return "drain"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one membership change. Subscribers see a Join for every
// member already present when they subscribed, then live changes in
// order.
type Event struct {
	Kind   EventKind
	Member Member
}

// FleetOptions configures a Fleet.
type FleetOptions struct {
	// Frontend names this fleet's owner in registration handshakes.
	Frontend string
	// Lease is how long a registration stays valid without a
	// heartbeat. Zero selects DefaultLease.
	Lease time.Duration
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// DefaultLease is the membership lease granted to registering workers.
// Heartbeats arrive at a third of it, so a member survives two lost
// heartbeats — transient blips don't churn the placement ring.
const DefaultLease = 5 * time.Second

// Fleet tracks registered workers for one frontend. Workers register
// over the wire (Serve) or directly (Register); membership changes
// fan out to subscribers, which is how the dispatcher learns about
// join/leave churn.
type Fleet struct {
	opts FleetOptions

	mu      sync.Mutex
	members map[string]*fleetMember
	subs    map[*subscription]struct{}
	conns   map[*wire.Conn]struct{}
	closed  bool

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

type fleetMember struct {
	Member
	expires time.Time
}

// NewFleet builds a fleet and starts its lease sweeper.
func NewFleet(opts FleetOptions) *Fleet {
	if opts.Lease <= 0 {
		opts.Lease = DefaultLease
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	f := &Fleet{
		opts:    opts,
		members: make(map[string]*fleetMember),
		subs:    make(map[*subscription]struct{}),
		conns:   make(map[*wire.Conn]struct{}),
		stop:    make(chan struct{}),
	}
	f.wg.Add(1)
	go f.sweep()
	return f
}

// Lease reports the configured membership lease.
func (f *Fleet) Lease() time.Duration { return f.opts.Lease }

// Close stops the sweeper, hangs up registration connections, and
// closes every subscription channel.
func (f *Fleet) Close() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.mu.Lock()
	f.closed = true
	for c := range f.conns {
		c.Close()
	}
	f.conns = map[*wire.Conn]struct{}{}
	subs := make([]*subscription, 0, len(f.subs))
	for s := range f.subs {
		subs = append(subs, s)
	}
	f.subs = map[*subscription]struct{}{}
	f.mu.Unlock()
	for _, s := range subs {
		s.close()
	}
	f.wg.Wait()
}

// Register adds or replaces a member and starts its lease. A
// re-registration with unchanged placement identity (addr, executor,
// capacity) just refreshes the lease and pipeline inventory; a changed
// identity is announced as Leave then Join so consumers re-dial.
func (f *Fleet) Register(m Member) error {
	if m.Name == "" {
		return fmt.Errorf("registry: member name required")
	}
	if m.Addr == "" {
		return fmt.Errorf("registry: member %q has no data-plane address", m.Name)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fmt.Errorf("registry: fleet closed")
	}
	old, exists := f.members[m.Name]
	fm := &fleetMember{Member: m, expires: time.Now().Add(f.opts.Lease)}
	f.members[m.Name] = fm
	switch {
	case !exists:
		f.opts.Logf("registry: %s joined (addr=%s capacity=%.3g cyc/s, %d pipelines cached)",
			m.Name, m.Addr, m.CyclesPerSec, len(m.Pipelines))
		f.publishLocked(Event{Kind: EventJoin, Member: m})
	case old.Addr != m.Addr || old.Executor != m.Executor || old.CyclesPerSec != m.CyclesPerSec:
		f.opts.Logf("registry: %s re-registered with new identity (addr %s -> %s)", m.Name, old.Addr, m.Addr)
		f.publishLocked(Event{Kind: EventLeave, Member: old.Member})
		f.publishLocked(Event{Kind: EventJoin, Member: m})
	default:
		// Same placement identity: silent lease + inventory refresh.
	}
	return nil
}

// Heartbeat renews a member's lease and records its reported load and
// drain intent; the false→true drain transition publishes an
// EventDrain so frontends migrate the member's sessions off. It
// reports false when the member is unknown (lease already expired),
// which tells the worker to re-register.
func (f *Fleet) Heartbeat(name string, sessions uint32, load float64, draining bool) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	fm, ok := f.members[name]
	if !ok {
		return false
	}
	fm.expires = time.Now().Add(f.opts.Lease)
	fm.Sessions = sessions
	fm.LoadCyclesPerSec = load
	if draining && !fm.Draining {
		fm.Draining = true
		f.opts.Logf("registry: %s draining for maintenance", name)
		f.publishLocked(Event{Kind: EventDrain, Member: fm.Member})
	}
	return true
}

// Deregister removes a member immediately and publishes its Leave.
// Unknown names are a no-op (drain can race lease expiry).
func (f *Fleet) Deregister(name, reason string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fm, ok := f.members[name]
	if !ok {
		return
	}
	delete(f.members, name)
	f.opts.Logf("registry: %s left (%s)", name, reason)
	f.publishLocked(Event{Kind: EventLeave, Member: fm.Member})
}

// Members returns a snapshot of the current membership, sorted by
// name.
func (f *Fleet) Members() []Member {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Member, 0, len(f.members))
	for _, fm := range f.members {
		out = append(out, fm.Member)
	}
	sortMembers(out)
	return out
}

func sortMembers(ms []Member) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j].Name < ms[j-1].Name; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

// Subscribe returns a channel of membership events, starting with a
// Join per current member, and a cancel function. Events are queued
// per subscriber without bounds, so a slow consumer delays only
// itself; cancel (or Fleet.Close) closes the channel.
func (f *Fleet) Subscribe() (<-chan Event, func()) {
	s := newSubscription()
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		s.close()
		return s.ch, func() {}
	}
	snapshot := make([]Member, 0, len(f.members))
	for _, fm := range f.members {
		snapshot = append(snapshot, fm.Member)
	}
	sortMembers(snapshot)
	for _, m := range snapshot {
		s.push(Event{Kind: EventJoin, Member: m})
	}
	f.subs[s] = struct{}{}
	f.mu.Unlock()
	cancel := func() {
		f.mu.Lock()
		_, live := f.subs[s]
		delete(f.subs, s)
		f.mu.Unlock()
		if live {
			s.close()
		}
	}
	return s.ch, cancel
}

func (f *Fleet) publishLocked(ev Event) {
	for s := range f.subs {
		s.push(ev)
	}
}

// sweep evicts members whose lease expired without a heartbeat.
func (f *Fleet) sweep() {
	defer f.wg.Done()
	period := f.opts.Lease / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-f.stop:
			return
		case now := <-tick.C:
			f.mu.Lock()
			for name, fm := range f.members {
				if now.After(fm.expires) {
					delete(f.members, name)
					f.opts.Logf("registry: %s lease expired, evicting", name)
					f.publishLocked(Event{Kind: EventLeave, Member: fm.Member})
				}
			}
			f.mu.Unlock()
		}
	}
}

// Serve accepts registration connections on ln until the fleet closes.
// Each worker runs the wire handshake, registers, then heartbeats; the
// connection dying leaves the member in place until its lease expires,
// so a network blip doesn't churn the ring.
func (f *Fleet) Serve(ln net.Listener) {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		go func() {
			<-f.stop
			ln.Close()
		}()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			f.wg.Add(1)
			go func() {
				defer f.wg.Done()
				f.handleConn(wire.NewConn(c))
			}()
		}
	}()
}

// handshakeTimeout bounds how long an accepted registration connection
// may sit silent before Hello/Register arrive.
const handshakeTimeout = 10 * time.Second

func (f *Fleet) handleConn(conn *wire.Conn) {
	defer conn.Close()
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.conns[conn] = struct{}{}
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		delete(f.conns, conn)
		f.mu.Unlock()
	}()

	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	if err := conn.AcceptHandshake(f.opts.Frontend, nil); err != nil {
		f.opts.Logf("registry: handshake from %s failed: %v", conn.RemoteAddr(), err)
		return
	}

	// The worker speaks first with Register; everything after renews or
	// ends that registration. One connection registers one member.
	var name string
	for {
		if name == "" {
			conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
		} else {
			// Two missed heartbeats past the lease means the peer is
			// gone; let the read fail rather than block forever.
			conn.SetReadDeadline(time.Now().Add(3 * f.opts.Lease))
		}
		m, err := conn.Read()
		if err != nil {
			return
		}
		switch msg := m.(type) {
		case *wire.Register:
			mem := Member{
				Name:         msg.Name,
				Addr:         msg.Addr,
				CyclesPerSec: msg.CyclesPerSec,
				Executor:     msg.Executor,
				Pipelines:    msg.Pipelines,
			}
			if err := f.Register(mem); err != nil {
				conn.Write(&wire.RegisterAck{Err: err.Error()})
				return
			}
			name = msg.Name
			if err := conn.Write(&wire.RegisterAck{LeaseMs: uint32(f.opts.Lease / time.Millisecond)}); err != nil {
				return
			}
		case *wire.Heartbeat:
			if name == "" {
				conn.Write(&wire.Error{Msg: "heartbeat before register"})
				return
			}
			if !f.Heartbeat(name, msg.Sessions, msg.CyclesPerSec, msg.Draining) {
				// Lease expired while the connection stayed up (e.g. a
				// long stall): make the worker re-register.
				conn.Write(&wire.Error{Msg: "membership lease expired, re-register"})
				return
			}
		case *wire.Deregister:
			if name != "" {
				f.Deregister(name, msg.Reason)
			}
			return
		default:
			f.opts.Logf("registry: unexpected %s on registration conn from %s", m.Type(), conn.RemoteAddr())
			return
		}
	}
}

// subscription is an unbounded event queue pumped into a channel, so
// fleet mutations never block on a slow subscriber.
type subscription struct {
	ch   chan Event
	quit chan struct{}
	mu   sync.Mutex
	cond *sync.Cond
	q    []Event
	done bool
}

func newSubscription() *subscription {
	s := &subscription{ch: make(chan Event), quit: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	go s.pump()
	return s
}

func (s *subscription) push(ev Event) {
	s.mu.Lock()
	if !s.done {
		s.q = append(s.q, ev)
		s.cond.Signal()
	}
	s.mu.Unlock()
}

func (s *subscription) close() {
	s.mu.Lock()
	if !s.done {
		s.done = true
		close(s.quit)
		s.cond.Signal()
	}
	s.mu.Unlock()
}

func (s *subscription) pump() {
	for {
		s.mu.Lock()
		for len(s.q) == 0 && !s.done {
			s.cond.Wait()
		}
		if s.done {
			// Cancellation drops queued events: the consumer has
			// already stopped listening.
			s.mu.Unlock()
			close(s.ch)
			return
		}
		ev := s.q[0]
		s.q = s.q[1:]
		s.mu.Unlock()
		select {
		case s.ch <- ev:
		case <-s.quit:
			close(s.ch)
			return
		}
	}
}
