package analysis_test

import (
	"testing"

	"blockpar/internal/analysis"
	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
)

func TestElemKindsPassThroughAndTyped(t *testing.T) {
	g := graph.New("elem")
	in := g.AddInput("in", geom.Sz(8, 8), geom.Sz(1, 1), geom.FInt(1))
	in.Output("out").Elem = frame.U8
	gain := g.Add(kernel.Gain("gain", 2))
	out := g.AddOutput("out", geom.Sz(1, 1))
	g.Connect(in, "out", gain, "in")
	g.Connect(gain, "out", out, "in")

	r, err := analysis.ElemKinds(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Out[in.Output("out")]; got != frame.U8 {
		t.Errorf("input emits %s, want u8", got)
	}
	if got := r.In[gain.Input("in")]; got != frame.U8 {
		t.Errorf("gain receives %s, want u8", got)
	}
	// Gain's arithmetic is float64 (elemToF64): it accepts the bytes but
	// emits doubles, so the output node receives f64.
	if got := r.Out[gain.Output("out")]; got != frame.F64 {
		t.Errorf("gain emits %s, want f64", got)
	}
	if got := r.In[out.Input("in")]; got != frame.F64 {
		t.Errorf("output receives %s, want f64", got)
	}
	if len(r.Violations) != 0 {
		t.Errorf("unexpected violations: %v", r.Violations)
	}
}

func TestElemKindsViolation(t *testing.T) {
	g := graph.New("elem")
	in := g.AddInput("in", geom.Sz(8, 8), geom.Sz(1, 1), geom.FInt(1))
	in.Output("out").Elem = frame.U8
	conv := g.Add(kernel.Convolution("conv", 3))
	coeff := g.AddInput("coeff", geom.Sz(3, 3), geom.Sz(3, 3), geom.FInt(1))
	out := g.AddOutput("out", geom.Sz(1, 1))
	g.Connect(in, "out", conv, "in")
	g.Connect(coeff, "out", conv, "coeff")
	g.Connect(conv, "out", out, "in")

	r, err := analysis.ElemKinds(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Violations) != 1 {
		t.Fatalf("got %d violations, want 1: %v", len(r.Violations), r.Violations)
	}
	v := r.Violations[0]
	if v.Edge.To != conv.Input("in") || v.Have != frame.U8 {
		t.Errorf("unexpected violation %v", v)
	}
}

func TestElemKindsF32Convolution(t *testing.T) {
	g := graph.New("elem")
	in := g.AddInput("in", geom.Sz(8, 8), geom.Sz(1, 1), geom.FInt(1))
	in.Output("out").Elem = frame.F32
	conv := g.Add(kernel.Convolution("conv", 3))
	coeff := g.AddInput("coeff", geom.Sz(3, 3), geom.Sz(3, 3), geom.FInt(1))
	out := g.AddOutput("out", geom.Sz(1, 1))
	g.Connect(in, "out", conv, "in")
	g.Connect(coeff, "out", conv, "coeff")
	g.Connect(conv, "out", out, "in")

	r, err := analysis.ElemKinds(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Violations) != 0 {
		t.Fatalf("unexpected violations: %v", r.Violations)
	}
	// Replicated coefficient input does not widen the data kind: the
	// f32 stream stays f32 through the convolution.
	if got := r.Out[conv.Output("out")]; got != frame.F32 {
		t.Errorf("conv emits %s, want f32", got)
	}
}
