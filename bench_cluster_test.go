package blockpar_test

// BenchmarkClusterLoopback prices the distributed execution path: the
// same suite apps streamed through an in-process runtime session versus
// a cluster session crossing the wire codec and a TCP loopback to a
// worker in the same process. The delta is pure transport cost —
// encode, kernel TCP round trip, arena decode — since both paths
// execute the identical compiled graph. BENCH_pr4.json records a
// snapshot.

import (
	"fmt"
	"testing"
	"time"

	"blockpar/internal/apps"
	"blockpar/internal/cluster"
	"blockpar/internal/machine"
	"blockpar/internal/runtime"
	"blockpar/internal/serve"
)

func streamFrames(b *testing.B, h serve.SessionHandle, frames int) {
	b.Helper()
	for f := 0; f < frames; f++ {
		if _, err := h.TryFeed(nil); err != nil {
			b.Fatalf("feed %d: %v", f, err)
		}
	}
	for f := 0; f < frames; f++ {
		res, err := h.Collect(30 * time.Second)
		if err != nil {
			b.Fatalf("collect %d: %v", f, err)
		}
		for _, ws := range res.Outputs {
			for _, w := range ws {
				w.Release()
			}
		}
	}
}

func BenchmarkClusterLoopback(b *testing.B) {
	const frames = 4
	for _, id := range []string{"1", "2", "5"} {
		if _, err := apps.ByID(id); err != nil {
			b.Fatal(err)
		}
		reg := serve.NewRegistry(machine.Embedded())
		if err := reg.AddSuite(id); err != nil {
			b.Fatal(err)
		}
		p, _ := reg.Get(id)

		b.Run(fmt.Sprintf("%s/inprocess", id), func(b *testing.B) {
			h, err := p.NewSession(runtime.SessionOptions{MaxInFlight: frames})
			if err != nil {
				b.Fatal(err)
			}
			defer h.Close()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				streamFrames(b, h, frames)
			}
		})
		b.Run(fmt.Sprintf("%s/cluster", id), func(b *testing.B) {
			w := cluster.NewWorker(reg, cluster.WorkerOptions{})
			d, stop, err := cluster.Loopback(w, cluster.DispatcherOptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer stop()
			h, err := d.Open(p, serve.OpenOptions{MaxInFlight: frames})
			if err != nil {
				b.Fatal(err)
			}
			defer h.Close()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				streamFrames(b, h, frames)
			}
		})
	}
}

// BenchmarkPartitionedLoopback prices the placement layer: the same
// apps streamed through one session split across a 2- and 3-worker
// loopback fleet, with cut-edge traffic relayed through the
// dispatcher. Against the whole-session cluster mode above, the delta
// is partition transport: per-cut-edge frames, credits, and the
// dispatcher relay hop. BENCH_pr6.json records a snapshot.
// BenchmarkRegisteredLoopback prices the registration plane: the same
// apps streamed through a self-registered 2-frontend/3-worker fleet
// placed by the consistent-hash ring (keyed sessions) versus the
// static single-worker cluster mode above. The delta is membership
// bookkeeping — ring lookup, admission accounting, heartbeat traffic
// sharing the process — on top of the identical wire path.
// BENCH_pr7.json records a snapshot.
func BenchmarkRegisteredLoopback(b *testing.B) {
	const frames = 4
	for _, id := range []string{"1", "2", "5"} {
		b.Run(fmt.Sprintf("%s/registered", id), func(b *testing.B) {
			c, err := cluster.StartRegisteredCluster(2, 3, cluster.RegisteredClusterConfig{
				MakeWorker: func(i int) *cluster.Worker {
					reg := serve.NewRegistry(machine.Embedded())
					if err := reg.AddSuite(id); err != nil {
						panic(err)
					}
					return cluster.NewWorker(reg, cluster.WorkerOptions{Name: fmt.Sprintf("bw%d", i)})
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			reg := serve.NewRegistry(machine.Embedded())
			if err := reg.AddSuite(id); err != nil {
				b.Fatal(err)
			}
			p, _ := reg.Get(id)
			h, err := c.Dispatchers[0].Open(p, serve.OpenOptions{MaxInFlight: frames, Key: "bench-" + id})
			if err != nil {
				b.Fatal(err)
			}
			defer h.Close()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				streamFrames(b, h, frames)
			}
		})
	}
}

func BenchmarkPartitionedLoopback(b *testing.B) {
	const frames = 4
	for _, id := range []string{"1", "2", "5"} {
		for _, workers := range []int{2, 3} {
			b.Run(fmt.Sprintf("%s/partitioned%d", id, workers), func(b *testing.B) {
				d, _, stop, err := cluster.LoopbackFleet(workers,
					cluster.DispatcherOptions{Partitions: workers},
					func(i int) *cluster.Worker {
						reg := serve.NewRegistry(machine.Embedded())
						if err := reg.AddSuite(id); err != nil {
							panic(err)
						}
						return cluster.NewWorker(reg, cluster.WorkerOptions{Name: fmt.Sprintf("w%d", i)})
					})
				if err != nil {
					b.Fatal(err)
				}
				defer stop()
				reg := serve.NewRegistry(machine.Embedded())
				if err := reg.AddSuite(id); err != nil {
					b.Fatal(err)
				}
				p, _ := reg.Get(id)
				h, err := d.Open(p, serve.OpenOptions{MaxInFlight: frames})
				if err != nil {
					b.Fatal(err)
				}
				defer h.Close()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					streamFrames(b, h, frames)
				}
			})
		}
	}
}
