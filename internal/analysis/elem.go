package analysis

import (
	"fmt"

	"blockpar/internal/frame"
	"blockpar/internal/graph"
)

// ElemResult is the element-kind view of a graph: the kind flowing out
// of every output port and into every input port, plus the edges where
// the arriving kind violates the consumer's declared constraints
// (graph.ElemTyped). It is the element-type twin of Analyze's geometric
// Result and drives transform.InsertConversions.
type ElemResult struct {
	Out map[*graph.Port]frame.Kind
	In  map[*graph.Port]frame.Kind
	// Violations lists edges whose consumer rejects the arriving kind.
	Violations []ElemViolation
}

// ElemViolation records one edge where the flowing element kind is not
// accepted by the consumer behavior.
type ElemViolation struct {
	Edge *graph.Edge
	Have frame.Kind
}

func (v ElemViolation) String() string {
	return fmt.Sprintf("edge %s carries %s, rejected by %s",
		v.Edge, v.Have, v.Edge.To.Node().Name())
}

// ElemKinds propagates element kinds through the graph in topological
// order. Application inputs are authoritative (Port.Elem on their "out"
// port); every other node derives its output kinds from the arriving
// ones: behaviors implementing graph.ElemTyped declare their mapping,
// all others are elem-polymorphic pass-throughs emitting the widest
// kind among their non-replicated data inputs. Feedback paths whose
// source has not been visited yet default to float64, matching the
// scalar feedback streams the runtime produces.
func ElemKinds(g *graph.Graph) (*ElemResult, error) {
	order, err := g.Topological()
	if err != nil {
		return nil, err
	}
	r := &ElemResult{
		Out: make(map[*graph.Port]frame.Kind),
		In:  make(map[*graph.Port]frame.Kind),
	}
	for _, n := range order {
		// Resolve what arrives on each input.
		dataIn := frame.F64
		seenData := false
		for _, p := range n.Inputs() {
			k := frame.F64
			if e := g.EdgeTo(p); e != nil {
				if got, ok := r.Out[e.From]; ok {
					k = got
				}
			}
			r.In[p] = k
			if p.Replicated {
				continue
			}
			if !seenData || k.Bytes() > dataIn.Bytes() {
				dataIn = k
			}
			seenData = true
		}
		et, _ := n.Behavior.(graph.ElemTyped)
		for _, o := range n.Outputs() {
			switch {
			case n.Kind == graph.KindInput:
				r.Out[o] = o.Elem
			case et != nil:
				r.Out[o] = et.ElemOut(o.Name, dataIn)
			default:
				r.Out[o] = dataIn
			}
		}
		if et != nil {
			for _, p := range n.Inputs() {
				if !et.ElemAccepts(p.Name, r.In[p]) {
					e := g.EdgeTo(p)
					if e == nil {
						continue
					}
					r.Violations = append(r.Violations, ElemViolation{Edge: e, Have: r.In[p]})
				}
			}
		}
	}
	return r, nil
}
