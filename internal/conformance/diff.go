package conformance

import (
	"fmt"
	"time"

	"blockpar/internal/core"
	"blockpar/internal/frame"
	"blockpar/internal/graph"
	"blockpar/internal/machine"
	"blockpar/internal/mapping"
	"blockpar/internal/runtime"
	"blockpar/internal/sim"
	"blockpar/internal/token"
	"blockpar/internal/transform"
)

// Variant is one compilation configuration the differential driver
// exercises: a PE budget (machine) and the buffer-striping choice.
type Variant struct {
	Name     string
	Machine  machine.Machine
	Striping bool
}

// Variants returns the default compilation matrix: three PE budgets
// (generous, paper-calibrated, deliberately starved) plus the shared
// round-robin buffer ablation.
func Variants() []Variant {
	return []Variant{
		{Name: "embedded", Machine: machine.Embedded(), Striping: true},
		{Name: "small", Machine: machine.Small(), Striping: true},
		{Name: "default", Machine: machine.Default(), Striping: true},
		{Name: "embedded-rr", Machine: machine.Embedded(), Striping: false},
	}
}

// CheckOptions configures one differential run.
type CheckOptions struct {
	// Frames per execution (default 2, so cross-frame kernel state and
	// end-of-frame boundaries are exercised).
	Frames int
	// Variants defaults to Variants().
	Variants []Variant
	// Backends selects the execution paths to diff against the oracle,
	// from Backends (below). Empty means every per-PR backend —
	// "cluster" spins a TCP loopback worker per variant, so it is
	// reserved for the nightly sweep and explicit opt-in.
	Backends []string
}

// Backends lists every execution path the differential driver can
// exercise: the batch goroutine runtime, the batch worker-pool
// executor, a streaming session, the timing simulator's functional
// stream, a cluster session over a loopback worker, a partitioned
// session split by the placement layer across a loopback fleet, and a
// self-registered two-frontend fleet placed by the consistent-hash
// ring.
func Backends() []string {
	return []string{"batch", "workers", "session", "sim", "cluster", "partitioned", "registered"}
}

// DefaultBackends is the per-PR subset: everything except the cluster
// loopback.
func DefaultBackends() []string {
	return []string{"batch", "workers", "session", "sim"}
}

func backendSet(names []string) (map[string]bool, error) {
	if len(names) == 0 {
		names = DefaultBackends()
	}
	all := make(map[string]bool, len(Backends()))
	for _, b := range Backends() {
		all[b] = true
	}
	set := make(map[string]bool, len(names))
	for _, b := range names {
		if !all[b] {
			return nil, fmt.Errorf("unknown conformance backend %q (have %v)", b, Backends())
		}
		set[b] = true
	}
	return set, nil
}

const execTimeout = 30 * time.Second

// Check runs one generated case through every execution path and
// every compilation variant, failing on the first divergence from the
// sequential oracle or any violated compiler invariant.
func Check(c *Case, opts CheckOptions) error {
	frames := opts.Frames
	if frames <= 0 {
		frames = 2
	}
	variants := opts.Variants
	if variants == nil {
		variants = Variants()
	}
	backends, err := backendSet(opts.Backends)
	if err != nil {
		return err
	}

	want, err := OracleFrames(c, frames)
	if err != nil {
		return err
	}

	for _, v := range variants {
		compiled, err := compileVariant(c, v)
		if err != nil {
			return err
		}
		if err := CheckInvariants(compiled); err != nil {
			return fmt.Errorf("%s: %w", v.Name, err)
		}
		// The sim cross-check consumes the batch run's stream, so "sim"
		// implies executing (but not re-judging) the batch backend.
		var res *runtime.Result
		if backends["batch"] || backends["sim"] {
			res, err = checkBatch(compiled.Graph, c.Sources, want, runtime.ExecGoroutines)
			if err != nil {
				return fmt.Errorf("%s: %w", v.Name, err)
			}
		}
		if backends["batch"] {
			if err := checkFirings(compiled, res, frames); err != nil {
				return fmt.Errorf("%s: %w", v.Name, err)
			}
		}
		if backends["workers"] {
			wres, err := checkBatch(compiled.Graph, c.Sources, want, runtime.ExecWorkers)
			if err != nil {
				return fmt.Errorf("%s: workers: %w", v.Name, err)
			}
			if err := checkFirings(compiled, wres, frames); err != nil {
				return fmt.Errorf("%s: workers: %w", v.Name, err)
			}
		}
		if backends["session"] {
			if err := checkSession(compiled.Graph, c.Sources, want); err != nil {
				return fmt.Errorf("%s: %w", v.Name, err)
			}
		}
		if backends["sim"] {
			if err := checkSim(compiled.Graph, v.Machine, frames, res); err != nil {
				return fmt.Errorf("%s: %w", v.Name, err)
			}
		}
		if backends["cluster"] {
			if err := checkCluster(compiled, c.Sources, want); err != nil {
				return fmt.Errorf("%s: cluster: %w", v.Name, err)
			}
		}
		if backends["partitioned"] {
			if err := checkPartitioned(compiled, c.Sources, want); err != nil {
				return fmt.Errorf("%s: partitioned: %w", v.Name, err)
			}
		}
		if backends["registered"] {
			if err := checkRegistered(compiled, c.Sources, want); err != nil {
				return fmt.Errorf("%s: registered: %w", v.Name, err)
			}
		}
	}
	return nil
}

// OracleFrames computes the reference per-frame outputs for a case.
func OracleFrames(c *Case, frames int) ([]map[string][]frame.Window, error) {
	oracle, err := NewOracle(c.Graph, c.Sources)
	if err != nil {
		return nil, err
	}
	want := make([]map[string][]frame.Window, frames)
	for f := 0; f < frames; f++ {
		w, err := oracle.Frame(int64(f))
		if err != nil {
			return nil, err
		}
		want[f] = w
	}
	return want, nil
}

func compileVariant(c *Case, v Variant) (*core.Compiled, error) {
	g := c.Graph.Clone()
	compiled, err := core.Compile(g, core.Config{
		Machine:        v.Machine,
		Align:          transform.Trim,
		Parallelize:    true,
		BufferStriping: v.Striping,
	})
	if err != nil {
		return nil, fmt.Errorf("%s: compile: %w", v.Name, err)
	}
	return compiled, nil
}

// checkBatch runs the compiled graph through the batch runtime on the
// given executor backend and compares every frame of every output
// byte-for-byte with the oracle. The template graph is cloned first:
// behaviors are stateful, so a compiled graph is an execution
// template, never run directly.
func checkBatch(template *graph.Graph, sources map[string]frame.Generator,
	want []map[string][]frame.Window, exec runtime.ExecutorKind) (*runtime.Result, error) {

	g := template.Clone()
	res, err := runtime.Run(g, runtime.Options{
		Frames: len(want), Sources: sources, Timeout: execTimeout,
		Executor: exec,
	})
	if err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}
	for _, out := range g.Outputs() {
		name := out.Name()
		slices := res.FrameSlices(name)
		if len(slices) != len(want) {
			return nil, fmt.Errorf("runtime: output %q completed %d frames, want %d", name, len(slices), len(want))
		}
		for f, got := range slices {
			if err := compareWindows(got, want[f][name]); err != nil {
				return nil, fmt.Errorf("runtime: output %q frame %d: %w", name, f, err)
			}
		}
	}
	return res, nil
}

// checkSession streams the same frames through a resident
// runtime.Session and compares the per-frame results.
func checkSession(template *graph.Graph, sources map[string]frame.Generator,
	want []map[string][]frame.Window) error {

	g := template.Clone()
	sess, err := runtime.NewSession(g, runtime.SessionOptions{
		Sources: sources, MaxInFlight: len(want),
	})
	if err != nil {
		return fmt.Errorf("session: %w", err)
	}
	defer sess.Close()
	for f := range want {
		if _, err := sess.Feed(nil); err != nil {
			return fmt.Errorf("session: feed %d: %w", f, err)
		}
	}
	for f := range want {
		res, err := sess.Collect(execTimeout)
		if err != nil {
			return fmt.Errorf("session: collect %d: %w", f, err)
		}
		if res.Seq != int64(f) {
			return fmt.Errorf("session: collected frame %d, want %d", res.Seq, f)
		}
		for _, out := range g.Outputs() {
			name := out.Name()
			if err := compareWindows(res.Outputs[name], want[f][name]); err != nil {
				return fmt.Errorf("session: output %q frame %d: %w", name, f, err)
			}
		}
	}
	if err := sess.Close(); err != nil {
		return fmt.Errorf("session: close: %w", err)
	}
	return nil
}

// checkSim cross-checks the value-free timing simulation's functional
// output (item/EOL/EOF tallies per output) against the batch runtime's
// actual stream, so the two engines' firing rules cannot drift apart.
func checkSim(template *graph.Graph, m machine.Machine, frames int, run *runtime.Result) error {
	g := template.Clone()
	simRes, err := sim.Simulate(g, mapping.OneToOne(g), sim.Options{
		Machine: m, Frames: frames,
	})
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	for _, out := range g.Outputs() {
		name := out.Name()
		var rt sim.OutputCount
		for _, it := range run.Outputs[name] {
			switch {
			case !it.IsToken:
				rt.Data++
			case it.Tok.Kind == token.EndOfLine:
				rt.EOL++
			case it.Tok.Kind == token.EndOfFrame:
				rt.EOF++
			}
		}
		if sm := simRes.OutputCounts[name]; sm != rt {
			return fmt.Errorf("sim: output %q stream structure %+v, runtime %+v", name, sm, rt)
		}
	}
	return nil
}

// checkFirings compares the batch runtime's actual method invocation
// counts with the analysis' predicted iteration grids — the §III-A
// numbers every buffer size and parallel degree is derived from.
// Kernels fed by round-robin flattened streams are skipped: their
// per-instance share is modeled as a flat total, not a grid.
func checkFirings(compiled *core.Compiled, res *runtime.Result, frames int) error {
	for _, n := range compiled.Graph.Nodes() {
		if n.Kind != graph.KindKernel {
			continue
		}
		if _, ok := n.Behavior.(graph.Invoker); !ok {
			continue
		}
		flat := false
		for _, p := range n.Inputs() {
			if compiled.Analysis.In[p].Flat {
				flat = true
			}
		}
		if flat {
			continue
		}
		ni := compiled.Analysis.NodeInfoOf(n)
		for _, m := range n.Methods() {
			mi, ok := ni.Methods[m.Name]
			if !ok {
				continue
			}
			wantN := mi.Invocations() * int64(frames)
			gotN := res.Firings[n.Name()][m.Name]
			if gotN != wantN {
				return fmt.Errorf("firings: %q.%s fired %d times over %d frames, analysis predicts %d",
					n.Name(), m.Name, gotN, frames, wantN)
			}
		}
	}
	return nil
}

func compareWindows(got, want []frame.Window) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d windows, want %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			return fmt.Errorf("window %d differs: got %v want %v", i, got[i], want[i])
		}
	}
	return nil
}
