package conformance

import (
	"fmt"

	"blockpar/internal/core"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
)

// CheckInvariants validates structural properties of a compiled graph
// that the paper's transformations must uphold, beyond the analysis'
// own problem detection:
//
//   - every inserted buffer double-buffers the larger window (§III-B):
//     its declared method memory equals 2·DataW·WinH, and its plan
//     agrees with both the arriving region and the consumer-facing
//     output port;
//   - every multi-input method's data triggers agree on aligned inset
//     and region after trim (§III-C);
//   - split and join fan-out is wired in instance order (§IV): out_i
//     feeds parallel instance i, in_i collects from instance i, and
//     column stripes tile the buffer contiguously left to right.
func CheckInvariants(c *core.Compiled) error {
	g := c.Graph
	for _, n := range g.Nodes() {
		var err error
		switch n.Kind {
		case graph.KindBuffer:
			err = checkBufferSizing(c, n)
		case graph.KindSplit, graph.KindReplicate:
			err = checkDistributionOrder(g, n)
		case graph.KindJoin:
			err = checkCollectionOrder(g, n)
		case graph.KindKernel:
			err = checkInsetAgreement(c, n)
		}
		if err != nil {
			return fmt.Errorf("invariant: %w", err)
		}
	}
	return nil
}

func checkBufferSizing(c *core.Compiled, n *graph.Node) error {
	if _, _, ok := kernel.SharePlanOf(n); ok {
		return checkShareSizing(c, n)
	}
	plan, ok := kernel.BufferPlanOf(n)
	if !ok {
		return fmt.Errorf("buffer %q carries no plan", n.Name())
	}
	m := n.Method("buffer")
	if m == nil {
		return fmt.Errorf("buffer %q has no buffer method", n.Name())
	}
	wantMem := int64(2 * plan.DataW * plan.WinH)
	if plan.MemoryWords() != wantMem {
		return fmt.Errorf("buffer %q plan memory %d words, want double-buffered 2·%d·%d = %d",
			n.Name(), plan.MemoryWords(), plan.DataW, plan.WinH, wantMem)
	}
	if m.Memory != wantMem {
		return fmt.Errorf("buffer %q declares %d memory words, want double-buffered %d",
			n.Name(), m.Memory, wantMem)
	}
	out := n.Output("out")
	if out.Size.W != plan.WinW || out.Size.H != plan.WinH ||
		out.Step.X != plan.StepX || out.Step.Y != plan.StepY {
		return fmt.Errorf("buffer %q output %v%v disagrees with plan %s",
			n.Name(), out.Size, out.Step, plan.Label())
	}
	// Plans are computed before trim alignment, so a buffer may cover
	// more than the trimmed stream that finally arrives — never less.
	in := c.Analysis.In[n.Input("in")]
	if !in.Flat && (in.Region.W > plan.DataW || in.Region.H > plan.DataH) {
		return fmt.Errorf("buffer %q plan covers %dx%d samples but %v arrive",
			n.Name(), plan.DataW, plan.DataH, in.Region)
	}
	return nil
}

// checkShareSizing verifies the windowed-sharing buffer invariants: the
// ring is double-buffered ONCE regardless of how many consumers read it
// (that is the point of the share lowering — N consumers, one ring),
// every consumer-facing output carries the identical plan geometry, and
// the declared fan-out matches the port count.
func checkShareSizing(c *core.Compiled, n *graph.Node) error {
	plan, ways, _ := kernel.SharePlanOf(n)
	m := n.Method("share")
	if m == nil {
		return fmt.Errorf("share buffer %q has no share method", n.Name())
	}
	outs := n.Outputs()
	if len(outs) != ways {
		return fmt.Errorf("share buffer %q declares %d ways but has %d outputs", n.Name(), ways, len(outs))
	}
	if ways < 2 {
		return fmt.Errorf("share buffer %q has %d ways, want at least 2", n.Name(), ways)
	}
	wantMem := int64(2 * plan.DataW * plan.WinH)
	if plan.MemoryWords() != wantMem {
		return fmt.Errorf("share buffer %q plan memory %d words, want double-buffered 2·%d·%d = %d",
			n.Name(), plan.MemoryWords(), plan.DataW, plan.WinH, wantMem)
	}
	if m.Memory != wantMem {
		return fmt.Errorf("share buffer %q declares %d memory words, want one double-buffered ring %d",
			n.Name(), m.Memory, wantMem)
	}
	for i, out := range outs {
		if want := fmt.Sprintf("out%d", i); out.Name != want {
			return fmt.Errorf("share buffer %q output %d named %q, want %q", n.Name(), i, out.Name, want)
		}
		if out.Size.W != plan.WinW || out.Size.H != plan.WinH ||
			out.Step.X != plan.StepX || out.Step.Y != plan.StepY {
			return fmt.Errorf("share buffer %q output %q %v%v disagrees with plan %s",
				n.Name(), out.Name, out.Size, out.Step, plan.Label())
		}
	}
	in := c.Analysis.In[n.Input("in")]
	if !in.Flat && (in.Region.W > plan.DataW || in.Region.H > plan.DataH) {
		return fmt.Errorf("share buffer %q plan covers %dx%d samples but %v arrive",
			n.Name(), plan.DataW, plan.DataH, in.Region)
	}
	return nil
}

// checkInsetAgreement verifies §III-C on the transformed graph: after
// trim alignment, every data trigger of a multi-input method must see
// the same region with the same aligned inset (stream inset plus the
// port's declared offset).
func checkInsetAgreement(c *core.Compiled, n *graph.Node) error {
	for _, m := range n.Methods() {
		var ports []*graph.Port
		for _, t := range m.DataTriggers() {
			p := n.Input(t.Input)
			if p != nil && !p.Replicated {
				ports = append(ports, p)
			}
		}
		if len(ports) < 2 {
			continue
		}
		flat := false
		for _, p := range ports {
			if c.Analysis.In[p].Flat {
				flat = true
			}
		}
		if flat {
			continue
		}
		first := c.Analysis.In[ports[0]]
		firstAligned := first.Inset.Add(ports[0].Offset)
		for _, p := range ports[1:] {
			info := c.Analysis.In[p]
			if info.Region != first.Region {
				return fmt.Errorf("%q.%s: input %q region %v, input %q region %v",
					n.Name(), m.Name, ports[0].Name, first.Region, p.Name, info.Region)
			}
			if aligned := info.Inset.Add(p.Offset); !aligned.Equal(firstAligned) {
				return fmt.Errorf("%q.%s: input %q aligned inset %v, input %q aligned inset %v",
					n.Name(), m.Name, ports[0].Name, firstAligned, p.Name, aligned)
			}
		}
	}
	return nil
}

// checkDistributionOrder verifies that a split (or replicate) kernel's
// out_i port feeds parallel instance i: round-robin reassembly and
// column-order joining silently scramble data if the fan-out is wired
// out of order.
func checkDistributionOrder(g *graph.Graph, n *graph.Node) error {
	// A programmer-declared scatter deals work to *different* downstream
	// kernels on its schedule — its branches are not parallel instances
	// of one base, so only the wiring shape is checked: ordered output
	// names, exactly one consumer per branch, declared ways respected.
	if sched, ok := kernel.ScatterSched(n); ok {
		if len(n.Outputs()) != sched.Ways {
			return fmt.Errorf("scatter %q declares %d ways but has %d outputs",
				n.Name(), sched.Ways, len(n.Outputs()))
		}
		for i, p := range n.Outputs() {
			if want := fmt.Sprintf("out%d", i); p.Name != want {
				return fmt.Errorf("scatter %q output %d named %q, want %q", n.Name(), i, p.Name, want)
			}
			if edges := g.EdgesFrom(p); len(edges) != 1 {
				return fmt.Errorf("scatter %q output %q has %d consumers, want 1", n.Name(), p.Name, len(edges))
			}
		}
		return nil
	}
	base := ""
	for i, p := range n.Outputs() {
		want := fmt.Sprintf("out%d", i)
		if p.Name != want {
			return fmt.Errorf("%s %q output %d named %q, want %q", n.Kind, n.Name(), i, p.Name, want)
		}
		edges := g.EdgesFrom(p)
		if len(edges) != 1 {
			return fmt.Errorf("%s %q output %q has %d consumers, want 1", n.Kind, n.Name(), p.Name, len(edges))
		}
		to := edges[0].To.Node()
		if to.Instance != i {
			return fmt.Errorf("%s %q output %q feeds instance %d of %q, want instance %d",
				n.Kind, n.Name(), p.Name, to.Instance, to.Base, i)
		}
		if base == "" {
			base = to.Base
		} else if to.Base != base {
			return fmt.Errorf("%s %q fans out to bases %q and %q", n.Kind, n.Name(), base, to.Base)
		}
	}
	if stripes, ok := kernel.SplitColumnsStripes(n); ok {
		for i := 1; i < len(stripes); i++ {
			if stripes[i].InStart >= stripes[i].InEnd || stripes[i].InStart <= stripes[i-1].InStart {
				return fmt.Errorf("split %q stripes not ordered left to right: %+v", n.Name(), stripes)
			}
			if stripes[i].OutStart != stripes[i-1].OutEnd {
				return fmt.Errorf("split %q stripe %d output [%d,%d) does not continue stripe %d ending at %d",
					n.Name(), i, stripes[i].OutStart, stripes[i].OutEnd, i-1, stripes[i-1].OutEnd)
			}
		}
	}
	return nil
}

// checkCollectionOrder verifies that a join kernel's in_i port is fed
// by parallel instance i of a single base kernel.
func checkCollectionOrder(g *graph.Graph, n *graph.Node) error {
	// A programmer-declared gather interleaves *different* upstream
	// branches by its own schedule — no instance/base relationship to
	// enforce, only the wiring shape.
	if sched, ok := kernel.GatherSched(n); ok {
		if len(n.Inputs()) != sched.Ways {
			return fmt.Errorf("gather %q declares %d ways but has %d inputs",
				n.Name(), sched.Ways, len(n.Inputs()))
		}
		for i, p := range n.Inputs() {
			if want := fmt.Sprintf("in%d", i); p.Name != want {
				return fmt.Errorf("gather %q input %d named %q, want %q", n.Name(), i, p.Name, want)
			}
			if g.EdgeTo(p) == nil {
				return fmt.Errorf("gather %q input %q unconnected", n.Name(), p.Name)
			}
		}
		return nil
	}
	base := ""
	for i, p := range n.Inputs() {
		want := fmt.Sprintf("in%d", i)
		if p.Name != want {
			return fmt.Errorf("join %q input %d named %q, want %q", n.Name(), i, p.Name, want)
		}
		e := g.EdgeTo(p)
		if e == nil {
			return fmt.Errorf("join %q input %q unconnected", n.Name(), p.Name)
		}
		from := e.From.Node()
		if from.Instance != i {
			return fmt.Errorf("join %q input %q fed by instance %d of %q, want instance %d",
				n.Name(), p.Name, from.Instance, from.Base, i)
		}
		if base == "" {
			base = from.Base
		} else if from.Base != base {
			return fmt.Errorf("join %q collects from bases %q and %q", n.Name(), base, from.Base)
		}
	}
	return nil
}
