module blockpar

go 1.22
