package sim

import (
	"testing"

	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
	"blockpar/internal/token"
)

// autoHarness drives an automaton directly: feed items into queues,
// repeatedly fire (checking output space is irrelevant here), and
// collect produced items per output.
type autoHarness struct {
	auto automaton
	qs   map[string]*queue
	out  map[string][]item
}

func newHarness(t *testing.T, n *graph.Node) *autoHarness {
	t.Helper()
	auto, err := newAutomaton(n)
	if err != nil {
		t.Fatal(err)
	}
	h := &autoHarness{auto: auto, qs: make(map[string]*queue), out: make(map[string][]item)}
	for _, p := range n.Inputs() {
		h.qs[p.Name] = &queue{cap: 1 << 20}
	}
	return h
}

func (h *autoHarness) feed(input string, items ...item) {
	for _, it := range items {
		h.qs[input].push(it)
	}
}

// drain fires the automaton until it stalls, applying consumes and
// collecting produces.
func (h *autoHarness) drain() {
	for {
		f := h.auto.next(h.qs)
		if f == nil {
			return
		}
		for in, cnt := range f.consume {
			for i := 0; i < cnt; i++ {
				h.qs[in].pop()
			}
		}
		h.auto.commit(f)
		for out, items := range f.produce {
			h.out[out] = append(h.out[out], items...)
		}
	}
}

// countKinds tallies data items, EOLs, and EOFs on an output.
func countKinds(items []item) (data, eol, eof int) {
	for _, it := range items {
		switch {
		case !it.isTok:
			data++
		case it.tok.Kind == token.EndOfLine:
			eol++
		case it.tok.Kind == token.EndOfFrame:
			eof++
		}
	}
	return data, eol, eof
}

// feedFrame pushes a scan-order frame of 1x1 samples with EOL/EOF.
func (h *autoHarness) feedFrame(input string, w, hgt int, frameSeq int64) {
	for y := 0; y < hgt; y++ {
		for x := 0; x < w; x++ {
			h.feed(input, dataItem(1))
		}
		h.feed(input, tokenItem(token.EOL(int64(y))))
	}
	h.feed(input, tokenItem(token.EOF(frameSeq)))
}

func TestBufferAutoEmissionCounts(t *testing.T) {
	const W, H, K = 10, 8, 3
	n := kernel.Buffer("B", kernel.BufferPlan{DataW: W, DataH: H, WinW: K, WinH: K, StepX: 1, StepY: 1})
	h := newHarness(t, n)
	for f := int64(0); f < 2; f++ {
		h.feedFrame("in", W, H, f)
	}
	h.drain()
	data, eol, eof := countKinds(h.out["out"])
	wantData := 2 * (W - K + 1) * (H - K + 1)
	wantEOL := 2 * (H - K + 1)
	if data != wantData || eol != wantEOL || eof != 2 {
		t.Errorf("buffer emitted %d/%d/%d, want %d/%d/2", data, eol, eof, wantData, wantEOL)
	}
	// Windows carry the full window words.
	for _, it := range h.out["out"] {
		if !it.isTok && it.words != K*K {
			t.Fatalf("window words = %d", it.words)
		}
	}
}

func TestSplitJoinRRAutoRoundTrip(t *testing.T) {
	const N = 3
	split := kernel.SplitRR("S", N, geom.Sz(1, 1))
	join := kernel.JoinRR("J", N, geom.Sz(1, 1))
	hs := newHarness(t, split)
	hj := newHarness(t, join)

	hs.feedFrame("in", 7, 2, 0)
	hs.drain()
	// Pipe each split branch into the join.
	for i := 0; i < N; i++ {
		out := "out" + string(rune('0'+i))
		in := "in" + string(rune('0'+i))
		hj.feed(in, hs.out[out]...)
	}
	hj.drain()
	data, eol, eof := countKinds(hj.out["out"])
	if data != 14 || eol != 2 || eof != 1 {
		t.Errorf("join emitted %d/%d/%d, want 14/2/1", data, eol, eof)
	}
	// Order: data items precede their frame's EOF.
	last := hj.out["out"][len(hj.out["out"])-1]
	if !last.isTok || last.tok.Kind != token.EndOfFrame {
		t.Errorf("stream does not end with EOF: %v", last)
	}
}

func TestColumnSplitAutoOverlapReplication(t *testing.T) {
	const W, H = 12, 4
	stripes := kernel.ColumnStripes(W, 3, 1, 2)
	split := kernel.SplitColumns("S", stripes, W)
	h := newHarness(t, split)
	h.feedFrame("in", W, H, 0)
	h.drain()
	d0, _, _ := countKinds(h.out["out0"])
	d1, _, _ := countKinds(h.out["out1"])
	// Stripe widths 7 + 7 = 14 per row; 2 overlap columns replicated.
	if d0 != stripes[0].InWidth()*H || d1 != stripes[1].InWidth()*H {
		t.Errorf("stripe data = %d/%d, want %d/%d", d0, d1, stripes[0].InWidth()*H, stripes[1].InWidth()*H)
	}
	if d0+d1 != (W+2)*H {
		t.Errorf("total = %d, want %d (overlap replicated)", d0+d1, (W+2)*H)
	}
}

func TestJoinColumnsAutoReassembly(t *testing.T) {
	counts := []int{3, 2}
	join := kernel.JoinColumns("J", counts, geom.Sz(1, 1))
	h := newHarness(t, join)
	// Two rows, then EOF on both branches.
	for row := int64(0); row < 2; row++ {
		for i, c := range counts {
			in := "in" + string(rune('0'+i))
			for j := 0; j < c; j++ {
				h.feed(in, dataItem(1))
			}
			h.feed(in, tokenItem(token.EOL(row)))
		}
	}
	h.feed("in0", tokenItem(token.EOF(0)))
	h.feed("in1", tokenItem(token.EOF(0)))
	h.drain()
	data, eol, eof := countKinds(h.out["out"])
	if data != 10 || eol != 2 || eof != 1 {
		t.Errorf("join emitted %d/%d/%d, want 10/2/1", data, eol, eof)
	}
}

func TestInsetAutoTrims(t *testing.T) {
	plan := kernel.InsetPlan{InW: 6, InH: 5, L: 1, R: 1, T: 1, B: 1}
	n := kernel.Inset("I", plan, geom.Sz(1, 1))
	h := newHarness(t, n)
	h.feedFrame("in", 6, 5, 0)
	h.drain()
	data, eol, eof := countKinds(h.out["out"])
	if data != 12 || eol != 3 || eof != 1 {
		t.Errorf("inset emitted %d/%d/%d, want 12/3/1", data, eol, eof)
	}
}

func TestPadAutoGrows(t *testing.T) {
	plan := kernel.PadPlan{InW: 4, InH: 3, L: 1, R: 2, T: 1, B: 1}
	n := kernel.Pad("P", plan)
	h := newHarness(t, n)
	h.feedFrame("in", 4, 3, 0)
	h.drain()
	data, eol, eof := countKinds(h.out["out"])
	wantData := plan.OutW() * plan.OutH() // 7*5
	if data != wantData || eol != plan.OutH() || eof != 1 {
		t.Errorf("pad emitted %d/%d/%d, want %d/%d/1", data, eol, eof, wantData, plan.OutH())
	}
}

func TestReplicateAutoBroadcasts(t *testing.T) {
	n := kernel.Replicate("R", 3, geom.Sz(5, 5))
	h := newHarness(t, n)
	h.feed("in", dataItem(25), tokenItem(token.EOF(0)))
	h.drain()
	for i := 0; i < 3; i++ {
		out := "out" + string(rune('0'+i))
		data, _, eof := countKinds(h.out[out])
		if data != 1 || eof != 1 {
			t.Errorf("branch %d got %d data, %d EOF", i, data, eof)
		}
	}
}

func TestGenericAutoHistogramTokens(t *testing.T) {
	n := kernel.Histogram("H", 8)
	h := newHarness(t, n)
	// Configure bins first (replicated input), then a 3x2 frame.
	h.feed("bins", dataItem(8), tokenItem(token.EOL(0)), tokenItem(token.EOF(0)))
	h.feedFrame("in", 3, 2, 0)
	h.drain()
	data, _, eof := countKinds(h.out["out"])
	// One partial histogram (8 words) and the EOF forwarded after it.
	if data != 1 || eof != 1 {
		t.Errorf("histogram emitted %d data, %d EOF; want 1, 1", data, eof)
	}
	if h.out["out"][0].words != 8 {
		t.Errorf("partial words = %d", h.out["out"][0].words)
	}
	// EOLs are absorbed (count has no outputs).
	_, eol, _ := countKinds(h.out["out"])
	if eol != 0 {
		t.Errorf("unexpected EOLs forwarded: %d", eol)
	}
}

func TestGenericAutoConfigBarrier(t *testing.T) {
	n := kernel.Histogram("H", 4)
	h := newHarness(t, n)
	// Data before bins: nothing may fire.
	h.feed("in", dataItem(1))
	f := h.auto.next(h.qs)
	if f != nil {
		t.Fatalf("data method fired before configuration: %v", f.label)
	}
	// Bins arrive: configureBins then count.
	h.feed("bins", dataItem(4))
	h.drain()
	if len(h.qs["in"].items) != 0 {
		t.Error("count did not fire after configuration")
	}
}

func TestFeedbackAutoInitialThenPass(t *testing.T) {
	n := kernel.Feedback("F", geom.Sz(1, 1), initialWindows(2))
	h := newHarness(t, n)
	h.drain() // emits initial values without input
	if d, _, _ := countKinds(h.out["out"]); d != 2 {
		t.Fatalf("initial emissions = %d, want 2", d)
	}
	h.feed("in", dataItem(1))
	h.drain()
	if d, _, _ := countKinds(h.out["out"]); d != 3 {
		t.Errorf("after passthrough = %d, want 3", d)
	}
}

func initialWindows(n int) []frame.Window {
	out := make([]frame.Window, n)
	for i := range out {
		out[i] = frame.Scalar(0)
	}
	return out
}
