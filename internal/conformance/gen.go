// Package conformance is the randomized differential-conformance
// harness: a seeded generator of valid block-parallel applications, a
// plain sequential oracle that executes the untransformed graph, and a
// differential driver that runs every generated graph through all
// execution paths (oracle, batch goroutine runtime, streaming
// sessions, HTTP serving, timing simulator) at several PE budgets and
// asserts byte-identical outputs, while invariant checkers validate
// the compiler's analysis on the fly. See docs/testing.md.
package conformance

import (
	"fmt"
	"math/rand"

	"blockpar/internal/analysis"
	"blockpar/internal/conn"
	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
	"blockpar/internal/machine"
)

// Case is one generated application: a programmer-level graph plus
// deterministic input generators, ready for the differential driver.
type Case struct {
	Seed    uint64
	Name    string
	Graph   *graph.Graph
	Sources map[string]frame.Generator
}

// Generate builds a random valid application from the seed. The same
// seed always yields the same graph, sources, and frame data, so any
// failure replays with -conformance.seed.
//
// The space covered: chains of windowed and pointwise kernels (valid
// window/step/offset combinations), two-branch diamonds whose halos
// disagree (exercising trim alignment), replicated inputs (convolution
// coefficients, FIR taps, histogram bins), control-token-triggered
// methods (histogram/merge on end-of-frame), multi-output kernels
// (Bayer), fan-out taps, downsample/upsample tails, random
// data-dependency edges, and the generalized-connection shapes of
// GenerateConn (strided scatter-gather chains, broadcast fan-outs,
// shared-window pairs). All graphs are feedback-free DAGs.
func Generate(seed uint64) *Case {
	rng := rand.New(rand.NewSource(int64(seed)))
	b := &builder{
		rng:     rng,
		sources: make(map[string]frame.Generator),
	}
	switch rng.Intn(12) {
	case 0:
		return b.bayerCase(seed)
	case 1:
		return b.scatterGatherCase(seed)
	case 2:
		return b.broadcastCase(seed)
	case 3:
		return b.shareCase(seed)
	}

	w := 8 + rng.Intn(17) // 8..24
	h := 6 + rng.Intn(9)  // 6..14
	b.g = graph.New(fmt.Sprintf("gen-%d", seed))
	samples := []int64{24_000, 48_000, 96_000}[rng.Intn(3)]
	b.in = b.g.AddInput("Input", geom.Sz(w, h), geom.Sz(1, 1),
		geom.F(samples, int64(w*h)))
	b.sources["Input"] = pickGen(rng)
	b.head, b.headPort, b.rw, b.rh = b.in, "out", w, h

	b.unaryChain(1 + rng.Intn(2))
	if b.rw >= 9 && b.rh >= 9 && rng.Intn(2) == 0 {
		b.diamond()
	}
	b.unaryChain(rng.Intn(2))

	// A tap output observing the mid-stream exercises output fan-out.
	if rng.Intn(3) == 0 {
		tap := b.g.AddOutput("tap", geom.Sz(1, 1))
		b.g.Connect(b.head, b.headPort, tap, "in")
	}

	switch {
	case rng.Intn(4) == 0:
		b.histogramTail()
	case b.rw >= 6 && b.rh >= 6 && rng.Intn(4) == 0:
		b.downsampleTail()
	case rng.Intn(6) == 0:
		b.upsampleTail()
	default:
		out := b.g.AddOutput("result", geom.Sz(1, 1))
		b.g.Connect(b.head, b.headPort, out, "in")
	}

	b.maybeDep()
	b.capRates()
	return &Case{Seed: seed, Name: b.g.Name, Graph: b.g, Sources: b.sources}
}

type builder struct {
	rng     *rand.Rand
	g       *graph.Graph
	sources map[string]frame.Generator
	in      *graph.Node

	// head is the current stream end; rw×rh its region in samples.
	head     *graph.Node
	headPort string
	rw, rh   int

	names int
}

func (b *builder) name(base string) string {
	b.names++
	return fmt.Sprintf("%s-%d", base, b.names)
}

func pickGen(rng *rand.Rand) frame.Generator {
	switch rng.Intn(3) {
	case 0:
		return frame.Gradient
	case 1:
		return frame.Checker
	default:
		return frame.LCG
	}
}

// push appends a kernel consuming the head stream on the named input.
func (b *builder) push(n *graph.Node, input string) {
	b.g.Add(n)
	b.g.Connect(b.head, b.headPort, n, input)
	b.head, b.headPort = n, "out"
}

func (b *builder) unaryChain(k int) {
	for i := 0; i < k; i++ {
		b.unaryStage()
	}
}

func (b *builder) unaryStage() {
	var cands []func()
	if b.rw >= 7 && b.rh >= 7 {
		cands = append(cands,
			func() { b.windowed(kernel.Median(b.name("Median3"), 3), 3, 3) },
			func() { b.morph(3) },
			func() { b.conv(3) },
		)
	}
	if b.rw >= 11 && b.rh >= 11 {
		cands = append(cands, func() { b.conv(5) })
	}
	if b.rw >= 7 {
		cands = append(cands, func() { b.fir(3) })
	}
	cands = append(cands, b.gain, b.threshold)
	cands[b.rng.Intn(len(cands))]()
}

// windowed pushes a k×k (or taps×1) sliding kernel and shrinks the
// tracked region by its halo.
func (b *builder) windowed(n *graph.Node, hw, hh int) {
	b.push(n, "in")
	b.rw -= hw - 1
	b.rh -= hh - 1
}

func (b *builder) conv(k int) {
	n := kernel.Convolution(b.name(fmt.Sprintf("Conv%d", k)), k)
	coeffName := b.name("Coeff")
	coeffIn := b.g.AddInput(coeffName, geom.Sz(k, k), geom.Sz(k, k), b.in.Rate)
	coeff := frame.LCG(b.rng.Int63n(1000), k, k)
	b.sources[coeffName] = fixedGen(coeff)
	b.windowed(n, k, k)
	b.g.Connect(coeffIn, "out", n, "coeff")
}

func (b *builder) morph(k int) {
	op := kernel.MorphOp(b.rng.Intn(2))
	b.windowed(kernel.Morphology(b.name("Morph"), k, op), k, k)
}

func (b *builder) fir(taps int) {
	n := kernel.FIR(b.name(fmt.Sprintf("FIR%d", taps)), taps)
	tapsName := b.name("Taps")
	tapsIn := b.g.AddInput(tapsName, geom.Sz(taps, 1), geom.Sz(taps, 1), b.in.Rate)
	tw := frame.LCG(b.rng.Int63n(1000), taps, 1)
	b.sources[tapsName] = fixedGen(tw)
	b.windowed(n, taps, 1)
	b.g.Connect(tapsIn, "out", n, "taps")
}

func (b *builder) gain() {
	factor := []float64{0.25, 0.5, 1.5, 2}[b.rng.Intn(4)]
	b.push(kernel.Gain(b.name("Gain"), factor), "in")
}

func (b *builder) threshold() {
	t := float64(b.rng.Intn(200))
	b.push(kernel.Threshold(b.name("Threshold"), t, 0, 255), "in")
}

// diamond splits the head stream into two branches of unary stages and
// rejoins them with a two-input pointwise kernel. Branch halos usually
// differ, so trim alignment must insert the Figure 3 inset kernels.
func (b *builder) diamond() {
	src, srcPort, rw, rh := b.head, b.headPort, b.rw, b.rh

	b.head, b.headPort, b.rw, b.rh = src, srcPort, rw, rh
	b.unaryChain(b.rng.Intn(3))
	aNode, aPort, aw, ah := b.head, b.headPort, b.rw, b.rh

	b.head, b.headPort, b.rw, b.rh = src, srcPort, rw, rh
	b.unaryChain(b.rng.Intn(3))
	bNode, bPort, bw, bh := b.head, b.headPort, b.rw, b.rh

	var join *graph.Node
	var in0, in1 string
	if b.rng.Intn(2) == 0 {
		join = kernel.Subtract(b.name("Subtract"))
		in0, in1 = "in0", "in1"
	} else {
		join = kernel.Magnitude(b.name("Magnitude"))
		in0, in1 = "gx", "gy"
	}
	b.g.Add(join)
	b.g.Connect(aNode, aPort, join, in0)
	b.g.Connect(bNode, bPort, join, in1)
	b.head, b.headPort = join, "out"
	// Library halos are symmetric per axis, so the trimmed
	// intersection is just the smaller coverage in each dimension.
	b.rw, b.rh = min(aw, bw), min(ah, bh)
}

func (b *builder) histogramTail() {
	bins := []int{8, 16, 32}[b.rng.Intn(3)]
	hist := kernel.Histogram(b.name("Histogram"), bins)
	binsName := b.name("Bins")
	binsIn := b.g.AddInput(binsName, geom.Sz(bins, 1), geom.Sz(bins, 1), b.in.Rate)
	edges := frame.UniformBins(bins, 0, 512)
	ew := frame.NewWindow(bins, 1)
	copy(ew.Pix, edges)
	b.sources[binsName] = fixedGen(ew)

	b.push(hist, "in")
	b.g.Connect(binsIn, "out", hist, "bins")

	merge := kernel.Merge(b.name("Merge"), bins)
	b.push(merge, "in")
	// The serial reduction must stay at one instance (§IV-B).
	b.g.AddDep(b.in, merge)

	out := b.g.AddOutput("result", geom.Sz(bins, 1))
	b.g.Connect(b.head, b.headPort, out, "in")
}

func (b *builder) downsampleTail() {
	b.push(kernel.Downsample(b.name("Down2"), 2), "in")
	out := b.g.AddOutput("result", geom.Sz(1, 1))
	b.g.Connect(b.head, b.headPort, out, "in")
}

func (b *builder) upsampleTail() {
	b.push(kernel.Upsample(b.name("Up2"), 2), "in")
	out := b.g.AddOutput("result", geom.Sz(2, 2))
	b.g.Connect(b.head, b.headPort, out, "in")
}

// maybeDep adds a random data-dependency edge from an earlier kernel
// (or the input) to a later kernel, capping the sink's parallelism.
func (b *builder) maybeDep() {
	if b.rng.Intn(3) != 0 {
		return
	}
	var kernels []*graph.Node
	for _, n := range b.g.Nodes() {
		if n.Kind == graph.KindKernel {
			kernels = append(kernels, n)
		}
	}
	if len(kernels) == 0 {
		return
	}
	to := kernels[b.rng.Intn(len(kernels))]
	if b.rng.Intn(2) == 0 {
		b.g.AddDep(b.in, to)
		return
	}
	order, err := b.g.Topological()
	if err != nil {
		return
	}
	for _, n := range order {
		if n == to {
			break
		}
		if n.Kind == graph.KindKernel && b.rng.Intn(2) == 0 {
			b.g.AddDep(n, to)
			return
		}
	}
}

// capRates halves the input rates until no kernel needs more than a
// modest parallel degree on the weakest machine the driver compiles
// for, keeping generated pipelines cheap to execute.
func (b *builder) capRates() {
	small := machine.Small()
	for tries := 0; tries < 8; tries++ {
		res, err := analysis.Analyze(b.g)
		if err != nil {
			return // surfaced later by the driver
		}
		maxDeg := 1
		for _, n := range b.g.Nodes() {
			if n.Kind != graph.KindKernel {
				continue
			}
			if d := res.DegreeFor(n, small); d > maxDeg {
				maxDeg = d
			}
		}
		if maxDeg <= 8 {
			return
		}
		for _, in := range b.g.Inputs() {
			in.Rate = in.Rate.Div(geom.FInt(2))
		}
	}
}

func (b *builder) bayerCase(seed uint64) *Case {
	w := 8 + 2*b.rng.Intn(7) // even 8..20
	h := 6 + 2*b.rng.Intn(5) // even 6..14
	b.g = graph.New(fmt.Sprintf("gen-%d", seed))
	samples := []int64{24_000, 48_000}[b.rng.Intn(2)]
	b.in = b.g.AddInput("Input", geom.Sz(w, h), geom.Sz(1, 1),
		geom.F(samples, int64(w*h)))
	b.sources["Input"] = frame.Bayer

	bay := b.g.Add(kernel.BayerDemosaic(b.name("Demosaic")))
	b.g.Connect(b.in, "out", bay, "in")
	for _, plane := range []string{"r", "g", "b"} {
		out := b.g.AddOutput(plane, geom.Sz(2, 2))
		b.g.Connect(bay, plane, out, "in")
	}
	b.capRates()
	return &Case{Seed: seed, Name: b.g.Name, Graph: b.g, Sources: b.sources}
}

// GenerateConn builds a random generalized-connection case: a strided
// scatter-gather chain, a broadcast fan-out, or a shared-window
// consumer pair. The per-PR conn-smoke run draws from this space
// directly; Generate also lands here for a slice of its seeds.
func GenerateConn(seed uint64) *Case {
	rng := rand.New(rand.NewSource(int64(seed) ^ 0x636f6e6e)) // "conn"
	b := &builder{rng: rng, sources: make(map[string]frame.Generator)}
	switch rng.Intn(3) {
	case 0:
		return b.scatterGatherCase(seed)
	case 1:
		return b.broadcastCase(seed)
	default:
		return b.shareCase(seed)
	}
}

// scatterGatherCase deals a stream across distinct per-branch kernels
// on a strided schedule and recombines it. The gather's stride is drawn
// independently of the scatter's, so mismatched-schedule permutations
// are part of the covered space.
func (b *builder) scatterGatherCase(seed uint64) *Case {
	rng := b.rng
	ways := 2 + rng.Intn(2)         // 2..3
	stride := 1 + rng.Intn(2)       // 1..2
	cycles := 2 + rng.Intn(3)       // row = 2..4 whole cycles
	w := ways * stride * cycles * 2 // even cycles keep stride-1 gathers aligned too
	h := 4 + rng.Intn(5)            // 4..8
	gstride := []int{1, stride}[rng.Intn(2)]

	b.g = graph.New(fmt.Sprintf("gen-%d", seed))
	samples := []int64{24_000, 48_000}[rng.Intn(2)]
	b.in = b.g.AddInput("Input", geom.Sz(w, h), geom.Sz(1, 1),
		geom.F(samples, int64(w*h)))
	b.sources["Input"] = pickGen(rng)

	sc := b.g.Add(kernel.Scatter(b.name("Deal"), conn.Schedule{Ways: ways, Stride: stride}, geom.Sz(1, 1)))
	ga := b.g.Add(kernel.Gather(b.name("Merge"), conn.Schedule{Ways: ways, Stride: gstride}, geom.Sz(1, 1)))
	b.g.Connect(b.in, "out", sc, "in")
	for i := 0; i < ways; i++ {
		var n *graph.Node
		if rng.Intn(2) == 0 {
			n = kernel.Gain(b.name("Gain"), []float64{0.25, 0.5, 1.5, 2}[rng.Intn(4)])
		} else {
			n = kernel.Threshold(b.name("Threshold"), float64(rng.Intn(200)), 0, 255)
		}
		b.g.Add(n)
		b.g.Connect(sc, fmt.Sprintf("out%d", i), n, "in")
		b.g.Connect(n, "out", ga, fmt.Sprintf("in%d", i))
	}
	out := b.g.AddOutput("result", geom.Sz(1, 1))
	b.g.Connect(ga, "out", out, "in")
	b.capRates()
	return &Case{Seed: seed, Name: b.g.Name, Graph: b.g, Sources: b.sources}
}

// broadcastCase fans one stream out to several distinct pointwise
// consumers through a declared broadcast connection, each observed by
// its own output — the zero-copy fan-out that may span partitions.
func (b *builder) broadcastCase(seed uint64) *Case {
	rng := b.rng
	w := 8 + rng.Intn(9) // 8..16
	h := 6 + rng.Intn(5) // 6..10
	b.g = graph.New(fmt.Sprintf("gen-%d", seed))
	samples := []int64{24_000, 48_000}[rng.Intn(2)]
	b.in = b.g.AddInput("Input", geom.Sz(w, h), geom.Sz(1, 1),
		geom.F(samples, int64(w*h)))
	b.sources["Input"] = pickGen(rng)
	b.head, b.headPort, b.rw, b.rh = b.in, "out", w, h
	if rng.Intn(2) == 0 {
		b.gain()
	}

	src, srcPort := b.head, b.headPort
	fan := 2 + rng.Intn(2) // 2..3
	tos := make([]*graph.Port, fan)
	for i := 0; i < fan; i++ {
		var n *graph.Node
		if rng.Intn(2) == 0 {
			n = kernel.Gain(b.name("Gain"), []float64{0.25, 0.5, 1.5, 2}[rng.Intn(4)])
		} else {
			n = kernel.Threshold(b.name("Threshold"), float64(rng.Intn(200)), 0, 255)
		}
		b.g.Add(n)
		b.g.Connect(src, srcPort, n, "in")
		tos[i] = n.Input("in")
		out := b.g.AddOutput(fmt.Sprintf("out%d", i), geom.Sz(1, 1))
		b.g.Connect(n, "out", out, "in")
	}
	b.g.AddConn("bcast", conn.Broadcast, src.Output(srcPort), tos)
	b.capRates()
	return &Case{Seed: seed, Name: b.g.Name, Graph: b.g, Sources: b.sources}
}

// shareCase feeds two windowed consumers with identical 3×3 sliding
// geometry from one stream under a declared share connection, so the
// compiler lowers the pair onto a single shared ring, then rejoins
// their outputs pointwise.
func (b *builder) shareCase(seed uint64) *Case {
	rng := b.rng
	w := 10 + rng.Intn(7) // 10..16
	h := 8 + rng.Intn(5)  // 8..12
	b.g = graph.New(fmt.Sprintf("gen-%d", seed))
	samples := []int64{24_000, 48_000}[rng.Intn(2)]
	b.in = b.g.AddInput("Input", geom.Sz(w, h), geom.Sz(1, 1),
		geom.F(samples, int64(w*h)))
	b.sources["Input"] = pickGen(rng)
	b.head, b.headPort, b.rw, b.rh = b.in, "out", w, h
	if rng.Intn(2) == 0 {
		b.gain()
	}
	src, srcPort := b.head, b.headPort

	mk3 := []func() *graph.Node{
		func() *graph.Node { return kernel.Median(b.name("Median3"), 3) },
		func() *graph.Node {
			n := kernel.Convolution(b.name("Conv3"), 3)
			coeffName := b.name("Coeff")
			coeffIn := b.g.AddInput(coeffName, geom.Sz(3, 3), geom.Sz(3, 3), b.in.Rate)
			b.sources[coeffName] = fixedGen(frame.LCG(b.rng.Int63n(1000), 3, 3))
			b.g.Add(n)
			b.g.Connect(coeffIn, "out", n, "coeff")
			return n
		},
		func() *graph.Node { return kernel.Morphology(b.name("Morph"), 3, kernel.MorphOp(b.rng.Intn(2))) },
	}
	first := rng.Intn(len(mk3))
	second := (first + 1 + rng.Intn(len(mk3)-1)) % len(mk3)
	pair := make([]*graph.Node, 2)
	for i, pick := range []int{first, second} {
		n := mk3[pick]()
		if b.g.Node(n.Name()) == nil {
			b.g.Add(n)
		}
		b.g.Connect(src, srcPort, n, "in")
		pair[i] = n
	}
	b.g.AddConn("shared3", conn.Share, src.Output(srcPort),
		[]*graph.Port{pair[0].Input("in"), pair[1].Input("in")})

	join := b.g.Add(kernel.Subtract(b.name("Subtract")))
	b.g.Connect(pair[0], "out", join, "in0")
	b.g.Connect(pair[1], "out", join, "in1")
	out := b.g.AddOutput("result", geom.Sz(1, 1))
	b.g.Connect(join, "out", out, "in")
	b.capRates()
	return &Case{Seed: seed, Name: b.g.Name, Graph: b.g, Sources: b.sources}
}

func fixedGen(w frame.Window) frame.Generator {
	return func(seq int64, fw, fh int) frame.Window { return w.Clone() }
}
